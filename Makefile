# Development entry points for rcuda-go. Everything is stdlib-only Go; no
# external tools are required beyond the toolchain.

GO ?= go

.PHONY: all build test race verify lint vet chaos migrate-chaos soak bench bench-batch bench-scale bench-scale-smoke bench-sched bench-sched-smoke fuzz pool repro figures experiments clean help

all: build test

help:
	@echo "Targets:"
	@echo "  build        compile and vet everything"
	@echo "  test         run all tests"
	@echo "  race         run all tests under the race detector"
	@echo "  verify       tier-1 gate: build + test + race on data path + chaos suite"
	@echo "  lint         go vet + rcuda-vet invariant analyzers + gofmt diff check"
	@echo "  vet          rcuda-vet only: seededrand/wiremsg/locknet/errcode invariants"
	@echo "  chaos        fault-injection suite (scripted + 50 seeded plans) under -race"
	@echo "  migrate-chaos  live-migration suite: source killed at every protocol phase, under -race"
	@echo "  soak         10k mixed ops at ~1% fault rate, leak-checked, under -race"
	@echo "  bench        run all benchmarks"
	@echo "  bench-batch  run the batched-path inference bench, refresh BENCH_batching.json"
	@echo "  bench-scale  run the 10^4-10^5 session scale harness, refresh BENCH_loadscale.json"
	@echo "  bench-scale-smoke  CI freshness check: re-run the <=10^4 scale scenarios"
	@echo "  bench-sched  run the WFQ-vs-FIFO starvation bench, refresh BENCH_sched.json"
	@echo "  bench-sched-smoke  CI freshness check: re-run the scheduler scenarios"
	@echo "  fuzz         short fuzzing pass over the wire-protocol decoders"
	@echo "  pool         broker demo: 3 local daemons, one killed mid-batch"
	@echo "  repro        regenerate every table and figure of the paper on stdout"
	@echo "  figures      render the figures as SVGs under figs/"
	@echo "  experiments  refresh EXPERIMENTS.md"
	@echo "  clean        remove figs/ and the test cache"

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

# Lint: go vet, the repo's own invariant analyzers, and a gofmt
# cleanliness check (stdlib tooling only).
lint: vet
	$(GO) vet ./...
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi

# rcuda-vet: the custom static-analysis suite (DESIGN.md section 13).
# Nonzero exit on any determinism, wire-protocol, or lock-discipline
# violation; there is no suppression mechanism — fix the code.
vet:
	$(GO) run ./cmd/rcuda-vet ./...

# Tier-1 verification: full build + tests, the invariant analyzers, the
# concurrent data-path packages (transport framing, middleware streaming +
# batching, pool broker + its autoscaler, the scale harness, the full-stack
# workloads) under the race detector, and the deterministic fault-injection
# suite.
verify: build test vet chaos
	$(GO) test -race ./internal/transport/... ./internal/rcuda/... ./internal/broker/... ./internal/sched/... ./internal/loadgen/... ./internal/workload/...

# Chaos suite: every fault kind's transport semantics, the retry policy, and
# the MM/FFT case studies under scripted and 50 consecutive seeded fault
# plans — results must be bit-exact after recovery. -count=1 defeats the
# test cache so the seeds actually rerun.
chaos:
	$(GO) test -race -count=1 \
		-run 'Chaos|Faulty|Fault|Retry|Truncat|Reattach|Session|Plan|KeepFor' \
		./internal/transport/... ./internal/rcuda/... ./internal/faults/...

# Migration chaos: checkpoint round-trips, the daemon-to-daemon transfer,
# a source-daemon kill swept across every phase boundary of the migration
# dialogue, standby-checkpoint failover, and scale-down drain-by-migration —
# all under -race, bit-exact results asserted after every recovery.
migrate-chaos:
	$(GO) test -race -count=1 \
		-run 'Migrat|Standby|Checkpoint|RestoreState|ContextState' \
		./internal/rcuda/... ./internal/broker/... ./internal/loadgen/... \
		./internal/protocol/... ./internal/gpu/...

# Soak: 10k mixed operations through a ~1% seeded fault rate, then a
# goroutine-leak check. Skipped by -short runs; takes ~10-30s under -race.
soak:
	$(GO) test -race -count=1 -run 'Soak' -timeout 10m ./internal/rcuda/

bench:
	$(GO) test -bench=. -benchmem ./...

# Deterministic batched-path trajectory: the DNN inference loop over both
# testbed networks, batched and unbatched, on the simulation clock. Commit
# the refreshed BENCH_batching.json so regressions show up in review.
bench-batch:
	$(GO) run ./cmd/rcuda-bench-batch -out BENCH_batching.json

# Deterministic scale trajectory: 10^4-session smoke scenarios plus the
# 10^5-session autoscaled run, all on the virtual clock. Commit the
# refreshed BENCH_loadscale.json so placement-behavior drift shows up in
# review.
bench-scale:
	$(GO) run ./cmd/rcuda-loadgen -out BENCH_loadscale.json

# CI freshness check: re-run only the scenarios at or under 10^4 sessions
# and fail if the committed BENCH_loadscale.json does not match.
bench-scale-smoke:
	$(GO) run ./cmd/rcuda-loadgen -check -cap 10000 -out BENCH_loadscale.json

# Deterministic scheduler bench: the mixed-tenant starvation scenario under
# FIFO vs WFQ on the virtual clock, plus weighted-share proportionality.
# The command enforces the fairness gates (realtime p99 >= 5x better at
# <= 10% throughput delta) and two-run determinism before writing. Commit
# the refreshed BENCH_sched.json so scheduling drift shows up in review.
bench-sched:
	$(GO) run ./cmd/rcuda-bench-sched -out BENCH_sched.json

# CI freshness check: re-run the scheduler scenarios (seconds of virtual
# time, fast on the wall clock) and fail if BENCH_sched.json is stale.
bench-sched-smoke:
	$(GO) run ./cmd/rcuda-bench-sched -check -out BENCH_sched.json

# Short fuzzing pass over the wire-protocol decoders.
fuzz:
	$(GO) test -fuzz=FuzzDecodeRequest -fuzztime=30s ./internal/protocol/
	$(GO) test -fuzz=FuzzDecodeStatsReply -fuzztime=30s ./internal/protocol/
	$(GO) test -fuzz=FuzzTryDecodeSessionRestore -fuzztime=30s ./internal/protocol/
	$(GO) test -fuzz=FuzzDecodeCheckpoint -fuzztime=30s ./internal/protocol/

# Broker demo: spawn three local daemons, run a verified MM/FFT batch through
# the pool, and kill one server mid-job to show failover with clean results.
pool:
	$(GO) run ./cmd/rcuda-broker -spawn 3 -kill -jobs 9

# Regenerate every table and figure of the paper on stdout.
repro:
	$(GO) run ./cmd/rcuda-repro -all

# Render the figures as SVG files under figs/.
figures:
	$(GO) run ./cmd/rcuda-repro -svg figs

# Refresh the paper-vs-reproduction comparison document.
experiments:
	$(GO) run ./cmd/rcuda-repro -experiments > EXPERIMENTS.md

clean:
	rm -rf figs
	$(GO) clean -testcache
