# Development entry points for rcuda-go. Everything is stdlib-only Go; no
# external tools are required beyond the toolchain.

GO ?= go

.PHONY: all build test race verify bench fuzz repro figures experiments clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

# Tier-1 verification: full build + tests, plus the concurrent data-path
# packages (transport framing, middleware streaming) under the race detector.
verify: build test
	$(GO) test -race ./internal/transport/... ./internal/rcuda/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzzing pass over the wire-protocol decoders.
fuzz:
	$(GO) test -fuzz=FuzzDecodeRequest -fuzztime=30s ./internal/protocol/

# Regenerate every table and figure of the paper on stdout.
repro:
	$(GO) run ./cmd/rcuda-repro -all

# Render the figures as SVG files under figs/.
figures:
	$(GO) run ./cmd/rcuda-repro -svg figs

# Refresh the paper-vs-reproduction comparison document.
experiments:
	$(GO) run ./cmd/rcuda-repro -experiments > EXPERIMENTS.md

clean:
	rm -rf figs
	$(GO) clean -testcache
