// Benchmarks regenerating every table and figure of the paper, one bench
// per artifact, plus ablations for the design choices DESIGN.md calls out.
// Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports a domain metric alongside time/op where one is
// meaningful (e.g. the worst cross-validation error for Table IV).
package rcuda

import (
	"net"
	"testing"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/cluster"
	"rcuda/internal/contention"
	"rcuda/internal/cudart"
	"rcuda/internal/gpu"
	"rcuda/internal/kernels"
	"rcuda/internal/netsim"
	"rcuda/internal/perfmodel"
	"rcuda/internal/protocol"
	mw "rcuda/internal/rcuda"
	"rcuda/internal/report"
	"rcuda/internal/transport"
	"rcuda/internal/vclock"
	"rcuda/internal/workload"
)

// benchConfig keeps the simulated campaigns fast and deterministic.
func benchConfig() report.Config { return report.Config{Reps: 3, Seed: 1, Sigma: 0.004} }

// BenchmarkTableI measures regenerating the message-breakdown table from
// the protocol encoders (Table I).
func BenchmarkTableI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := report.TableI(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure2 runs the traced functional remote matrix multiplication
// behind the sequence diagram of Figure 2 (full middleware, real data).
func BenchmarkFigure2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := report.Figure2(64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3 reproduces the GigaE ping-pong characterization.
func BenchmarkFigure3(b *testing.B) {
	benchFigureLatency(b, netsim.GigaE())
}

// BenchmarkFigure4 reproduces the 40GI ping-pong characterization.
func BenchmarkFigure4(b *testing.B) {
	benchFigureLatency(b, netsim.IB40G())
}

func benchFigureLatency(b *testing.B, link *netsim.Link) {
	b.Helper()
	b.ReportAllocs()
	cfg := benchConfig()
	var bw float64
	for i := 0; i < b.N; i++ {
		out, err := cfg.FigureLatency(link)
		if err != nil {
			b.Fatal(err)
		}
		_ = out
		pp := &netsim.PingPong{Link: link}
		fit, err := netsim.FitLarge(pp.MeasureLarge([]int64{64 << 20, 256 << 20, 1 << 30}, 3))
		if err != nil {
			b.Fatal(err)
		}
		bw = netsim.EffectiveBandwidth(fit)
	}
	b.ReportMetric(bw, "MB/s")
}

// BenchmarkTableII evaluates the per-call transfer estimates at the paper's
// reference sizes.
func BenchmarkTableII(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := report.TableII(4096, 2048); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTableIII evaluates the testbed per-copy transfer grid.
func BenchmarkTableIII(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := report.TableIII(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTableIV runs the full simulated measurement campaign on both
// testbed networks and cross-validates both estimation models. The
// reported metric is the worst absolute MM error (the paper bounds it at
// 2.2%).
func BenchmarkTableIV(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	ge, ib := netsim.GigaE(), netsim.IB40G()
	var worstMM float64
	for i := 0; i < b.N; i++ {
		geMeas, err := workload.MeasureSeries(calib.MM, workload.Remote,
			workload.Options{Link: ge, Noise: netsim.NewNoise(cfg.Seed, cfg.Sigma)}, cfg.Reps)
		if err != nil {
			b.Fatal(err)
		}
		ibMeas, err := workload.MeasureSeries(calib.MM, workload.Remote,
			workload.Options{Link: ib, Noise: netsim.NewNoise(cfg.Seed+1, cfg.Sigma)}, cfg.Reps)
		if err != nil {
			b.Fatal(err)
		}
		rows, err := perfmodel.CrossValidate(calib.MM, ge, ib, geMeas, ibMeas)
		if err != nil {
			b.Fatal(err)
		}
		worstMM = 0
		for _, r := range rows {
			if e := r.RelativeErrorPc; e > worstMM || -e > worstMM {
				if e < 0 {
					e = -e
				}
				worstMM = e
			}
		}
	}
	b.ReportMetric(worstMM, "worst-MM-err-%")
}

// BenchmarkTableV evaluates the target-network per-copy transfer grid.
func BenchmarkTableV(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := report.TableV(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTableVI produces the full measured-vs-estimated grid: CPU and
// local-GPU baselines, testbed measurements, and 2 models × 5 networks of
// projections for both case studies.
func BenchmarkTableVI(b *testing.B) {
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.TableVIData(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5 renders the Table VI series under the GigaE-based model
// (both case studies), the data behind Figure 5.
func BenchmarkFigure5(b *testing.B) {
	benchFigureSeries(b, "GigaE")
}

// BenchmarkFigure6 renders the series under the 40GI-based model (Figure 6).
func BenchmarkFigure6(b *testing.B) {
	benchFigureSeries(b, "40GI")
}

func benchFigureSeries(b *testing.B, model string) {
	b.Helper()
	b.ReportAllocs()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		for _, cs := range []calib.CaseStudy{calib.MM, calib.FFT} {
			if _, err := cfg.FigureSeries(cs, model); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Ablations ---------------------------------------------------------------

// BenchmarkAblationNagle compares small-message round trips with Nagle's
// algorithm disabled (the paper's configuration) and enabled, quantifying
// why the middleware explicitly controls frame emission.
func BenchmarkAblationNagle(b *testing.B) {
	for _, nagle := range []bool{false, true} {
		name := "disabled"
		if nagle {
			name = "enabled"
		}
		b.Run(name, func(b *testing.B) {
			pp := &netsim.PingPong{Link: netsim.GigaE(), Nagle: nagle}
			var total time.Duration
			for i := 0; i < b.N; i++ {
				total += pp.RoundTrip(8)
			}
			b.ReportMetric(float64(total.Microseconds())/float64(b.N), "sim-us/rtt")
		})
	}
}

// BenchmarkAblationPreinit compares a cold CUDA context (local application
// start) against the rCUDA daemon's pre-initialized context — the reason a
// remote GPU over 40GI beats the local GPU at m=4096.
func BenchmarkAblationPreinit(b *testing.B) {
	mod, err := kernels.ModuleFor(calib.MM)
	if err != nil {
		b.Fatal(err)
	}
	for _, pre := range []bool{false, true} {
		name := "cold"
		if pre {
			name = "preinitialized"
		}
		b.Run(name, func(b *testing.B) {
			var simTime time.Duration
			for i := 0; i < b.N; i++ {
				clk := vclock.NewSim()
				dev := gpu.New(gpu.Config{Clock: clk})
				var opts []cudart.LocalOption
				if pre {
					opts = append(opts, cudart.Preinitialized())
				}
				rt, err := cudart.OpenLocal(dev, mod, opts...)
				if err != nil {
					b.Fatal(err)
				}
				_ = rt.Close()
				simTime += clk.Now()
			}
			b.ReportMetric(float64(simTime.Milliseconds())/float64(b.N), "sim-ms/open")
		})
	}
}

// BenchmarkAblationChunking compares the paper's single-message synchronous
// memcpy against splitting the payload into 1 MiB chunks (one message
// each): chunking multiplies per-message overhead without helping a
// synchronous protocol, motivating the single-frame design.
func BenchmarkAblationChunking(b *testing.B) {
	link := netsim.GigaE()
	const payload = 64 << 20 // one MM 4096 matrix
	for _, chunked := range []bool{false, true} {
		name := "single-message"
		if chunked {
			name = "chunked-1MiB"
		}
		b.Run(name, func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				if chunked {
					const chunk = 1 << 20
					for off := 0; off < payload; off += chunk {
						total += link.WireTime(chunk+20) + link.WireTime(4)
					}
				} else {
					total += link.WireTime(payload+20) + link.WireTime(4)
				}
			}
			b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "sim-ms/copy")
		})
	}
}

// BenchmarkMiddlewareRoundTrip measures the real (wall-clock) cost of one
// remote cudaMalloc round trip through the full client/server stack over an
// in-process pipe with a zero-latency clock — the middleware's own
// processing overhead, separate from any network model.
func BenchmarkMiddlewareRoundTrip(b *testing.B) {
	clk := vclock.NewSim()
	dev := gpu.New(gpu.Config{Clock: clk})
	srv := mw.NewServer(dev)
	cliEnd, srvEnd := transport.Pipe(netsim.AHT(), clk, nil)
	go func() { _ = srv.ServeConn(srvEnd) }()
	mod, err := kernels.ModuleFor(calib.MM)
	if err != nil {
		b.Fatal(err)
	}
	img, err := mod.Binary()
	if err != nil {
		b.Fatal(err)
	}
	client, err := mw.Open(cliEnd, img)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ptr, err := client.Malloc(4096)
		if err != nil {
			b.Fatal(err)
		}
		if err := client.Free(ptr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRemoteGEMMFunctional drives a complete functional remote matrix
// multiplication (m=128) through the middleware per iteration.
func BenchmarkRemoteGEMMFunctional(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := workload.Run(calib.MM, 128, workload.Remote, workload.Options{
			Link:       netsim.IB40G(),
			Functional: true,
			Seed:       int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if !r.Verified {
			b.Fatal("unverified run")
		}
	}
	b.SetBytes(3 * 4 * 128 * 128)
}

// BenchmarkProtocolEncodeDecode measures the wire codec on a bulk memcpy.
func BenchmarkProtocolEncodeDecode(b *testing.B) {
	data := make([]byte, 1<<20)
	req := &protocol.MemcpyToDeviceRequest{Dst: 0x100, Data: data}
	b.ReportAllocs()
	b.SetBytes(int64(req.WireSize()))
	for i := 0; i < b.N; i++ {
		enc := req.Encode(make([]byte, 0, req.WireSize()))
		if _, err := protocol.DecodeRequest(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAsyncOverlap quantifies the asynchronous extension (the
// paper's future work): a chunked remote FFT run serialized vs
// double-buffered on two streams. The metric is the modeled makespan.
func BenchmarkAblationAsyncOverlap(b *testing.B) {
	for _, overlapped := range []bool{false, true} {
		name := "synchronous"
		if overlapped {
			name = "double-buffered"
		}
		b.Run(name, func(b *testing.B) {
			var mk time.Duration
			for i := 0; i < b.N; i++ {
				var err error
				mk, err = chunkedRemoteFFT(overlapped)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(mk.Microseconds()), "sim-us/makespan")
		})
	}
}

// chunkedRemoteFFT runs 8 chunks of 256 transforms through the middleware
// over simulated 40GI, optionally double-buffered.
func chunkedRemoteFFT(overlapped bool) (time.Duration, error) {
	clk := vclock.NewSim()
	dev := gpu.New(gpu.Config{Clock: clk})
	srv := mw.NewServer(dev)
	cliEnd, srvEnd := transport.Pipe(netsim.IB40G(), clk, nil)
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(srvEnd) }()
	mod, err := kernels.ModuleFor(calib.FFT)
	if err != nil {
		return 0, err
	}
	img, err := mod.Binary()
	if err != nil {
		return 0, err
	}
	client, err := mw.Open(cliEnd, img)
	if err != nil {
		return 0, err
	}
	defer func() { _ = client.Close(); <-done }()

	const chunkBatch = 256
	chunkBytes := uint32(chunkBatch * 4096)
	bufs := make([]cudart.DevicePtr, 2)
	for i := range bufs {
		if bufs[i], err = client.Malloc(chunkBytes); err != nil {
			return 0, err
		}
	}
	data := make([]byte, chunkBytes)
	start := clk.Now()
	if overlapped {
		var streams [2]cudart.Stream
		for i := range streams {
			if streams[i], err = client.StreamCreate(); err != nil {
				return 0, err
			}
		}
		for c := 0; c < 8; c++ {
			buf, s := bufs[c%2], streams[c%2]
			if err := client.MemcpyToDeviceAsync(buf, data, s); err != nil {
				return 0, err
			}
			if err := client.LaunchAsync(kernels.FFTKernel,
				cudart.Dim3{X: chunkBatch}, cudart.Dim3{X: 64}, 0,
				gpu.PackParams(uint32(buf), chunkBatch, 0), s); err != nil {
				return 0, err
			}
		}
		if err := client.DeviceSynchronize(); err != nil {
			return 0, err
		}
	} else {
		for c := 0; c < 8; c++ {
			buf := bufs[c%2]
			if err := client.MemcpyToDevice(buf, data); err != nil {
				return 0, err
			}
			if err := client.Launch(kernels.FFTKernel,
				cudart.Dim3{X: chunkBatch}, cudart.Dim3{X: 64}, 0,
				gpu.PackParams(uint32(buf), chunkBatch, 0)); err != nil {
				return 0, err
			}
		}
	}
	return clk.Now() - start, nil
}

// BenchmarkMemcpyPipeline measures the pipelined chunked-memcpy data path
// against the paper's single-frame protocol. The sim sub-benchmarks report
// the modeled time of one 64 MiB host-to-device copy: on 40GI the chunked
// path approaches max(network, PCIe) where the legacy path pays their sum;
// on GigaE the per-message excess makes chunking a net loss, which is why
// it is opt-in. The tcp sub-benchmarks run the same copy in both directions
// over a real loopback socket and report allocations — the pooled zero-copy
// framing is what keeps allocs/op flat regardless of payload size.
func BenchmarkMemcpyPipeline(b *testing.B) {
	mod, err := kernels.ModuleFor(calib.MM)
	if err != nil {
		b.Fatal(err)
	}
	img, err := mod.Binary()
	if err != nil {
		b.Fatal(err)
	}
	const size = 64 << 20

	for _, link := range []*netsim.Link{netsim.GigaE(), netsim.IB40G()} {
		for _, mode := range []string{"legacy", "chunked", "chunked+retry"} {
			mode := mode
			b.Run("sim/"+link.Name()+"/"+mode, func(b *testing.B) {
				clk := vclock.NewSim()
				dev := gpu.New(gpu.Config{Clock: clk})
				srv := mw.NewServer(dev)
				cliEnd, srvEnd := transport.Pipe(link, clk, nil)
				go func() { _ = srv.ServeConn(srvEnd) }()
				var opts []mw.ClientOption
				if mode != "legacy" {
					opts = append(opts, mw.WithChunkedTransfers(1, protocol.DefaultChunkSize))
				}
				if mode == "chunked+retry" {
					// Measures the retry engine's bookkeeping on a
					// fault-free path; the dialer is never invoked.
					opts = append(opts,
						mw.WithRetry(4, 200*time.Microsecond),
						mw.WithReconnect(func() (transport.Conn, error) {
							c2, s2 := transport.Pipe(link, clk, nil)
							go func() { _ = srv.ServeConn(s2) }()
							return c2, nil
						}))
				}
				client, err := mw.Open(cliEnd, img, opts...)
				if err != nil {
					b.Fatal(err)
				}
				defer client.Close()
				ptr, err := client.Malloc(size)
				if err != nil {
					b.Fatal(err)
				}
				data := make([]byte, size)
				b.SetBytes(size)
				b.ResetTimer()
				var sim time.Duration
				for i := 0; i < b.N; i++ {
					start := clk.Now()
					if err := client.MemcpyToDevice(ptr, data); err != nil {
						b.Fatal(err)
					}
					sim += clk.Now() - start
				}
				b.ReportMetric(float64(sim.Microseconds())/float64(b.N)/1000, "sim-ms/copy")
			})
		}
	}

	// 16 MiB keeps payload+framing within the buffer pool's largest class;
	// beyond it the frames fall back to the GC as designed.
	const tcpSize = 16 << 20
	for _, mode := range []string{"legacy", "chunked", "chunked+retry"} {
		mode := mode
		b.Run("tcp/"+mode, func(b *testing.B) {
			dev := gpu.New(gpu.Config{Clock: vclock.NewSim()})
			srv := mw.NewServer(dev)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			serveDone := make(chan error, 1)
			go func() { serveDone <- srv.Serve(ln) }()
			conn, err := transport.DialTCP(ln.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			var opts []mw.ClientOption
			if mode != "legacy" {
				opts = append(opts, mw.WithChunkedTransfers(1, protocol.DefaultChunkSize))
			}
			if mode == "chunked+retry" {
				addr := ln.Addr().String()
				opts = append(opts,
					mw.WithRetry(4, 200*time.Microsecond),
					mw.WithReconnect(func() (transport.Conn, error) { return transport.DialTCP(addr) }))
			}
			client, err := mw.Open(conn, img, opts...)
			if err != nil {
				b.Fatal(err)
			}
			ptr, err := client.Malloc(tcpSize)
			if err != nil {
				b.Fatal(err)
			}
			data := make([]byte, tcpSize)
			b.SetBytes(2 * tcpSize)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := client.MemcpyToDevice(ptr, data); err != nil {
					b.Fatal(err)
				}
				if err := client.MemcpyToHost(data, ptr); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			_ = client.Close()
			_ = srv.Close()
			<-serveDone
		})
	}
}

// BenchmarkClusterSweep runs the GPU-count sizing study (the paper's
// future-work question) over a 64-job trace on a 16-node cluster. The
// metric is the number of GPUs the cluster actually needs.
func BenchmarkClusterSweep(b *testing.B) {
	link := netsim.IB40G()
	trace := cluster.GenerateTrace(cluster.TraceConfig{
		Jobs: 64, MeanInterarrival: 30 * time.Second, MMFraction: 0.8, Seed: 1,
	})
	cfg := cluster.Config{Nodes: 16, Network: link, Policy: cluster.LeastLoaded}
	b.ReportAllocs()
	var need int
	for i := 0; i < b.N; i++ {
		var err error
		need, _, _, err = cluster.RequiredGPUs(cfg, trace, 0.10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(need), "GPUs-required")
}

// BenchmarkContentionSweep runs the event-level multi-client contention
// study behind Figure 9: 1-8 clients sharing one GPU server over 40GI.
// The metric is the mean per-client slowdown at 8 clients.
func BenchmarkContentionSweep(b *testing.B) {
	b.ReportAllocs()
	var slow8 float64
	for i := 0; i < b.N; i++ {
		results, err := contention.Sweep(contention.Params{
			CS: calib.MM, Size: 8192, Link: netsim.IB40G(),
		}, 8)
		if err != nil {
			b.Fatal(err)
		}
		slow8 = contention.Slowdown(results)[7]
	}
	b.ReportMetric(slow8, "slowdown@8")
}
