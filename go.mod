module rcuda

go 1.22
