package rcuda_test

import (
	"fmt"
	"log"

	"rcuda"
)

// ExampleNewSimSession runs a tiny matrix product on a simulated remote GPU
// over the 40 Gbps InfiniBand model and reports the result and the modeled
// time regime.
func ExampleNewSimSession() {
	link, err := rcuda.NetworkByName("40GI")
	if err != nil {
		log.Fatal(err)
	}
	mod, err := rcuda.CaseStudyModule(rcuda.MM)
	if err != nil {
		log.Fatal(err)
	}
	img, err := mod.Binary()
	if err != nil {
		log.Fatal(err)
	}
	sess, err := rcuda.NewSimSession(link, img, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	const m = 16
	a := make([]float32, m*m)
	b := make([]float32, m*m)
	for i := range a {
		a[i], b[i] = 1, 2 // all-ones times all-twos
	}
	var ptrs [3]rcuda.DevicePtr
	for i := range ptrs {
		p, err := sess.Client.Malloc(4 * m * m)
		if err != nil {
			log.Fatal(err)
		}
		ptrs[i] = p
	}
	must(sess.Client.MemcpyToDevice(ptrs[0], rcuda.Float32Bytes(a)))
	must(sess.Client.MemcpyToDevice(ptrs[1], rcuda.Float32Bytes(b)))
	must(sess.Client.Launch(rcuda.SgemmKernel,
		rcuda.Dim3{X: 1}, rcuda.Dim3{X: 16}, 0,
		rcuda.PackParams(uint32(ptrs[0]), uint32(ptrs[1]), uint32(ptrs[2]), m)))
	out := make([]byte, 4*m*m)
	must(sess.Client.MemcpyToHost(out, ptrs[2]))

	fmt.Printf("C[0,0] = %.0f\n", rcuda.BytesFloat32(out)[0])
	fmt.Printf("virtual time advanced: %v\n", sess.Clock.Now() > 0)
	// Output:
	// C[0,0] = 32
	// virtual time advanced: true
}

// ExampleBuildModel reproduces the paper's estimation flow: simulate
// measurements on 1 Gbps Ethernet, build the model, and predict the
// execution time on 40 Gbps InfiniBand.
func ExampleBuildModel() {
	gigaE, err := rcuda.NetworkByName("GigaE")
	if err != nil {
		log.Fatal(err)
	}
	ib40, err := rcuda.NetworkByName("40GI")
	if err != nil {
		log.Fatal(err)
	}
	// Noiseless measurement campaign (seed 0 disables jitter).
	measured, err := rcuda.MeasureRemote(rcuda.MM, gigaE, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	model, err := rcuda.BuildModel(rcuda.MM, gigaE, measured)
	if err != nil {
		log.Fatal(err)
	}
	est, err := model.Estimate(ib40, 8192)
	if err != nil {
		log.Fatal(err)
	}
	// The paper measured 9.34 s on the real 40GI testbed (Table IV).
	fmt.Printf("predicted 40GI time for m=8192: %.1f s\n", est.Seconds())
	// Output:
	// predicted 40GI time for m=8192: 9.4 s
}

// ExampleNetworkByName lists the effective bandwidth of every interconnect
// the paper studies.
func ExampleNetworkByName() {
	for _, n := range rcuda.Networks() {
		fmt.Printf("%s: %.1f MB/s\n", n.Name(), n.Bandwidth())
	}
	// Output:
	// GigaE: 112.4 MB/s
	// 40GI: 1367.1 MB/s
	// 10GE: 880.0 MB/s
	// 10GI: 970.0 MB/s
	// Myr: 750.0 MB/s
	// F-HT: 1442.0 MB/s
	// A-HT: 2884.0 MB/s
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
