package rcuda

import (
	"math"
	"net"
	"testing"

	"rcuda/internal/calib"
)

// The façade must support the full quickstart flow over real TCP.
func TestPublicAPIQuickstart(t *testing.T) {
	dev := NewDevice()
	server := NewServer(dev)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- server.Serve(ln) }()

	mod, err := CaseStudyModule(MM)
	if err != nil {
		t.Fatal(err)
	}
	img, err := mod.Binary()
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(ln.Addr().String(), img)
	if err != nil {
		t.Fatal(err)
	}

	const m = 16
	a := make([]float32, m*m)
	b := make([]float32, m*m)
	for i := range a {
		a[i], b[i] = 1, 1
	}
	nbytes := uint32(4 * m * m)
	var ptrs [3]DevicePtr
	for i := range ptrs {
		p, err := client.Malloc(nbytes)
		if err != nil {
			t.Fatal(err)
		}
		ptrs[i] = p
	}
	if err := client.MemcpyToDevice(ptrs[0], Float32Bytes(a)); err != nil {
		t.Fatal(err)
	}
	if err := client.MemcpyToDevice(ptrs[1], Float32Bytes(b)); err != nil {
		t.Fatal(err)
	}
	if err := client.Launch(SgemmKernel, Dim3{X: 1}, Dim3{X: 16}, 0,
		PackParams(uint32(ptrs[0]), uint32(ptrs[1]), uint32(ptrs[2]), m)); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, nbytes)
	if err := client.MemcpyToHost(out, ptrs[2]); err != nil {
		t.Fatal(err)
	}
	for i, v := range BytesFloat32(out) {
		if v != m { // all-ones product: every element is m
			t.Fatalf("C[%d] = %g, want %d", i, v, m)
		}
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPINetworks(t *testing.T) {
	nets := Networks()
	if len(nets) != 7 {
		t.Fatalf("Networks() returned %d, want 7", len(nets))
	}
	ge, err := NetworkByName("GigaE")
	if err != nil {
		t.Fatal(err)
	}
	if ge.Bandwidth() != 112.4 {
		t.Fatalf("GigaE bandwidth %v", ge.Bandwidth())
	}
	if _, err := NetworkByName("carrier-pigeon"); err == nil {
		t.Fatal("unknown network must error")
	}
}

func TestPublicAPIProblemSizes(t *testing.T) {
	if got := ProblemSizes(MM); len(got) != 8 || got[0] != 4096 {
		t.Fatalf("MM sizes %v", got)
	}
	if got := ProblemSizes(FFT); len(got) != 7 || got[0] != 2048 {
		t.Fatalf("FFT sizes %v", got)
	}
}

// The public measurement + modeling flow must reproduce the paper's shape:
// measure on GigaE, predict 40GI within a few percent.
func TestPublicAPIModelFlow(t *testing.T) {
	ge, err := NetworkByName("GigaE")
	if err != nil {
		t.Fatal(err)
	}
	ib, err := NetworkByName("40GI")
	if err != nil {
		t.Fatal(err)
	}
	measured, err := MeasureRemote(MM, ge, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(measured) != 8 {
		t.Fatalf("measured %d sizes", len(measured))
	}
	model, err := BuildModel(MM, ge, measured)
	if err != nil {
		t.Fatal(err)
	}
	est, err := model.Estimate(ib, 8192)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := calib.PaperMeasured(calib.MM, "40GI", 8192)
	if rel := math.Abs(est.Seconds()-want.Seconds()) / want.Seconds(); rel > 0.05 {
		t.Fatalf("public model flow predicts %v for 40GI@8192, paper measured %v (%.1f%% off)",
			est, want, rel*100)
	}
}

func TestPublicAPISimClock(t *testing.T) {
	clk := NewSimClock()
	dev := NewSimDevice(clk)
	if dev.MemoryBytes() == 0 {
		t.Fatal("sim device must have memory")
	}
	if clk.Now() != 0 {
		t.Fatal("fresh sim clock must start at zero")
	}
}

func TestSimSessionFacade(t *testing.T) {
	link, err := NetworkByName("40GI")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := CaseStudyModule(MM)
	if err != nil {
		t.Fatal(err)
	}
	img, err := mod.Binary()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSimSession(link, img, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := sess.Clock.Now()
	ptr, err := sess.Client.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Clock.Now() == before {
		t.Fatal("simulated session must advance virtual time")
	}
	if err := sess.Client.Free(ptr); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if sess.Device.MemoryInUse() != 0 {
		t.Fatal("session close must release device memory")
	}
	// A bogus module fails cleanly.
	if _, err := NewSimSession(link, []byte("junk"), nil); err == nil {
		t.Fatal("bogus module must fail")
	}
}
