package rcuda

import (
	"fmt"

	mw "rcuda/internal/rcuda"
	"rcuda/internal/transport"
	"rcuda/internal/vclock"
)

// SimSession is an in-process rCUDA deployment on a virtual clock: a
// simulated device, a daemon serving it, and a connected client, joined by
// a simulated interconnect. It is the deterministic twin of a real
// TCP deployment — time advances only through the network, PCIe, and
// kernel models, so Clock.Now() deltas are the modeled execution times the
// paper reports.
type SimSession struct {
	// Client is the remote runtime; it satisfies Runtime, AsyncRuntime,
	// and the device-management surface.
	Client *Client
	// Device is the server-side GPU.
	Device *Device
	// Clock is the session's virtual time source.
	Clock *SimClock

	server    *Server
	transport *transport.PipeEnd
	serveDone chan error
}

// NewSimSession starts a simulated deployment over the given interconnect
// and opens a session with the given GPU module image. Options: a nil
// noise runs deterministically.
func NewSimSession(link *Network, module []byte, noise *Noise) (*SimSession, error) {
	clk := vclock.NewSim()
	dev := NewSimDevice(clk)
	server := mw.NewServer(dev)
	cliEnd, srvEnd := transport.Pipe(link, clk, noise)
	serveDone := make(chan error, 1)
	go func() { serveDone <- server.ServeConn(srvEnd) }()

	client, err := mw.Open(cliEnd, module)
	if err != nil {
		_ = cliEnd.Close()
		<-serveDone
		return nil, fmt.Errorf("rcuda: open simulated session: %w", err)
	}
	return &SimSession{
		Client:    client,
		Device:    dev,
		Clock:     clk,
		server:    server,
		transport: cliEnd,
		serveDone: serveDone,
	}, nil
}

// Close finalizes the session and waits for the server side to wind down,
// returning the first error from either side.
func (s *SimSession) Close() error {
	closeErr := s.Client.Close()
	srvErr := <-s.serveDone
	if closeErr != nil {
		return closeErr
	}
	return srvErr
}
