// Netplanner answers the cluster-design question that motivates the paper:
// given a GPU workload and a candidate interconnect, should the cluster
// keep a GPU in every node, or can it virtualize a few remote GPUs?
//
// It measures the workload on a reference network with the simulator,
// builds the estimation model, and prints the predicted execution time and
// verdict for the chosen network — the paper's "tool to determine the
// behavior of our proposal over different interconnects with no need of
// the physical equipment".
//
// Usage:
//
//	netplanner [-case MM|FFT] [-size 8192] [-net 10GI]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"rcuda"
	"rcuda/internal/perfmodel"
)

func main() {
	caseName := flag.String("case", "MM", "workload: MM (matrix product) or FFT (batched 512-point FFT)")
	size := flag.Int("size", 8192, "problem size (matrix dimension or FFT batch; one of the paper's sizes)")
	netName := flag.String("net", "10GI", "candidate interconnect (GigaE, 40GI, 10GE, 10GI, Myr, F-HT, A-HT)")
	flag.Parse()

	var cs rcuda.CaseStudy
	switch *caseName {
	case "MM":
		cs = rcuda.MM
	case "FFT":
		cs = rcuda.FFT
	default:
		log.Fatalf("unknown case study %q (MM or FFT)", *caseName)
	}
	target, err := rcuda.NetworkByName(*netName)
	if err != nil {
		log.Fatal(err)
	}

	// Reference measurements on the 40 Gbps InfiniBand testbed network.
	source, err := rcuda.NetworkByName("40GI")
	if err != nil {
		log.Fatal(err)
	}
	measured, err := rcuda.MeasureRemote(cs, source, 30, 7)
	if err != nil {
		log.Fatal(err)
	}
	model, err := rcuda.BuildModel(cs, source, measured)
	if err != nil {
		log.Fatal(err)
	}

	e, err := perfmodel.Eligible(model, target, *size)
	if err != nil {
		log.Fatalf("%v (the model covers sizes %v)", err, rcuda.ProblemSizes(cs))
	}

	fmt.Printf("workload:        %s, size %d\n", cs, *size)
	fmt.Printf("interconnect:    %s (%.0f MB/s effective one-way)\n", target.Name(), target.Bandwidth())
	fmt.Printf("local CPU:       %v (8 cores, high performance libraries)\n", round(e.CPU))
	fmt.Printf("local GPU:       %v\n", round(e.LocalGPU))
	fmt.Printf("remote GPU est.: %v over %s\n", round(e.Remote), target.Name())
	fmt.Println()
	switch {
	case !e.GPUWorth:
		fmt.Println("verdict: NOT GPU-ELIGIBLE — the CPU beats even a local GPU; keep it on the CPU.")
	case e.RemoteOK:
		fmt.Printf("verdict: VIRTUALIZE — a remote GPU over %s is %.0f%% faster than the CPU;\n",
			target.Name(), e.SpeedupPc)
		fmt.Println("a cluster with a few shared GPUs serves this workload well.")
	default:
		fmt.Printf("verdict: LOCAL GPU ONLY — the workload wants a GPU, but %s is too slow\n", target.Name())
		fmt.Println("to remote it; either use a faster interconnect or keep per-node GPUs.")
	}

	// Extra planning facts from the model.
	if cross, ok := perfmodel.CrossoverSize(model, target); ok {
		fmt.Printf("\ncrossover: the remote GPU starts beating the CPU at size %d on %s\n",
			cross, target.Name())
	} else {
		fmt.Printf("\ncrossover: the remote GPU never beats the CPU on %s at the studied sizes\n",
			target.Name())
	}
	if bw, ok := perfmodel.MinimumBandwidth(model, *size); ok {
		fmt.Printf("bandwidth floor: any interconnect above %.0f MB/s one-way makes size %d worth remoting\n",
			bw, *size)
	} else {
		fmt.Printf("bandwidth floor: no interconnect speed makes size %d worth remoting\n", *size)
	}
}

func round(d time.Duration) time.Duration { return d.Round(time.Millisecond) }
