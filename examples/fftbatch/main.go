// Fftbatch sweeps the paper's second case study — batches of 512-point
// FFTs — and shows the opposite conclusion from matmul: the FFT's O(n log n)
// compute over O(n) data is too transfer-heavy for GPU offload, local or
// remote. It also verifies a small batch end to end through the real
// middleware (numerics checked against the CPU FFT).
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"rcuda"
	"rcuda/internal/calib"
	"rcuda/internal/workload"
)

func main() {
	ib40, err := rcuda.NetworkByName("40GI")
	if err != nil {
		log.Fatal(err)
	}

	// First, a functional run: a real batch of 128 transforms through the
	// full client/server stack over the simulated 40 Gbps InfiniBand.
	r, err := workload.Run(calib.FFT, 128, workload.Remote, workload.Options{
		Link:       ib40,
		Functional: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional check: batch=128 over %s, verified=%v, simulated time %v\n\n",
		r.Network, r.Verified, r.Total)

	// Then the paper-scale sweep with the estimation model.
	measured, err := rcuda.MeasureRemote(rcuda.FFT, ib40, 30, 2)
	if err != nil {
		log.Fatal(err)
	}
	model, err := rcuda.BuildModel(rcuda.FFT, ib40, measured)
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "batch\tCPU (ms)\tlocal GPU (ms)\t40GI (ms)\tA-HT est (ms)\tGPU-eligible\tremote worth it")
	aht, err := rcuda.NetworkByName("A-HT")
	if err != nil {
		log.Fatal(err)
	}
	for _, batch := range rcuda.ProblemSizes(rcuda.FFT) {
		cpu, err := workload.Run(calib.FFT, batch, workload.CPU, workload.Options{})
		if err != nil {
			log.Fatal(err)
		}
		gpu, err := workload.Run(calib.FFT, batch, workload.LocalGPU, workload.Options{})
		if err != nil {
			log.Fatal(err)
		}
		est, err := model.Estimate(aht, batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%d\t%.2f\t%.2f\t%.2f\t%.2f\t%v\t%v\n",
			batch,
			cpu.Total.Seconds()*1e3, gpu.Total.Seconds()*1e3,
			measured[batch]*1e3, est.Seconds()*1e3,
			gpu.Total < cpu.Total, est < cpu.Total)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEven on the fastest modeled interconnect (A-HT, 2884 MB/s) the remote")
	fmt.Println("FFT loses to the 8-core CPU — and so does the local GPU: the data")
	fmt.Println("transfer dominates. As the paper concludes, problems that are not")
	fmt.Println("GPU-eligible locally gain nothing from GPU remoting.")
}
