// Matmul sweeps the paper's matrix-product case study: it "measures" the
// remote execution on the two testbed networks with the calibrated
// simulator, builds the estimation model, and projects the execution time
// onto every HPC interconnect — reproducing the left-hand plots of
// Figures 5 and 6 and answering the paper's question: is a remote GPU
// worth it for this workload? (For MM: yes, on every HPC network.)
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"rcuda"
	"rcuda/internal/calib"
	"rcuda/internal/workload"
)

func main() {
	gigaE, err := rcuda.NetworkByName("GigaE")
	if err != nil {
		log.Fatal(err)
	}

	// Measure the case study over GigaE (30 reps, seeded noise), then
	// build the estimation model from those measurements alone.
	measured, err := rcuda.MeasureRemote(rcuda.MM, gigaE, 30, 1)
	if err != nil {
		log.Fatal(err)
	}
	model, err := rcuda.BuildModel(rcuda.MM, gigaE, measured)
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "m\tCPU (s)\tlocal GPU (s)\tGigaE (s)\t10GE\t10GI\tMyr\tF-HT\tA-HT\tbest choice")
	for _, size := range rcuda.ProblemSizes(rcuda.MM) {
		cpu, err := workload.Run(calib.MM, size, workload.CPU, workload.Options{})
		if err != nil {
			log.Fatal(err)
		}
		gpu, err := workload.Run(calib.MM, size, workload.LocalGPU, workload.Options{})
		if err != nil {
			log.Fatal(err)
		}
		row := fmt.Sprintf("%d\t%.2f\t%.2f\t%.2f", size, cpu.Total.Seconds(), gpu.Total.Seconds(), measured[size])
		best, bestT := "CPU", cpu.Total.Seconds()
		if gpu.Total.Seconds() < bestT {
			best, bestT = "local GPU", gpu.Total.Seconds()
		}
		for _, name := range []string{"10GE", "10GI", "Myr", "F-HT", "A-HT"} {
			link, err := rcuda.NetworkByName(name)
			if err != nil {
				log.Fatal(err)
			}
			est, err := model.Estimate(link, size)
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf("\t%.2f", est.Seconds())
			if est.Seconds() < bestT {
				best, bestT = "rCUDA/"+name, est.Seconds()
			}
		}
		fmt.Fprintf(w, "%s\t%s\n", row, best)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe matrix product is compute-bound (O(m³) work over O(m²) data):")
	fmt.Println("a virtualized remote GPU beats the 8-core CPU on every HPC network,")
	fmt.Println("and on fast interconnects it runs within a few percent of a local GPU.")
}
