// Clusterplan answers the paper's cluster-sizing question (left as future
// work there): given a cluster, an interconnect, and a job mix, how many
// GPUs does the cluster actually need?
//
// It generates a synthetic trace of GPU jobs, simulates the rCUDA
// deployment with every possible accelerator count under a global
// least-loaded scheduler, compares against the fully equipped
// one-GPU-per-node cluster, and prints the smallest count whose makespan
// lands within the tolerance.
//
// Usage:
//
//	clusterplan [-nodes 16] [-jobs 64] [-interarrival 30s] [-mm 0.8]
//	            [-net 40GI] [-tolerance 0.1] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"rcuda"
	"rcuda/internal/cluster"
)

func main() {
	nodes := flag.Int("nodes", 16, "cluster node count")
	jobs := flag.Int("jobs", 64, "jobs in the trace")
	interarrival := flag.Duration("interarrival", 30*time.Second, "mean job interarrival time")
	mmFrac := flag.Float64("mm", 0.8, "fraction of matrix-product jobs (rest are FFT batches)")
	netName := flag.String("net", "40GI", "interconnect")
	tolerance := flag.Float64("tolerance", 0.10, "acceptable makespan slowdown vs a GPU in every node")
	seed := flag.Int64("seed", 1, "trace seed")
	traceFile := flag.String("trace", "", "JSON job trace to load instead of generating one")
	flag.Parse()

	link, err := rcuda.NetworkByName(*netName)
	if err != nil {
		log.Fatal(err)
	}
	var trace []cluster.Job
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		trace, err = cluster.LoadTrace(f)
		_ = f.Close()
		if err != nil {
			log.Fatal(err)
		}
		*jobs = len(trace)
	} else {
		trace = cluster.GenerateTrace(cluster.TraceConfig{
			Jobs:             *jobs,
			MeanInterarrival: *interarrival,
			MMFraction:       *mmFrac,
			Seed:             *seed,
		})
	}
	cfg := cluster.Config{Nodes: *nodes, Network: link, Policy: cluster.LeastLoaded}

	sweep, err := cluster.SweepGPUs(cfg, trace)
	if err != nil {
		log.Fatal(err)
	}
	localCfg := cfg
	localCfg.Network = nil
	local, err := cluster.Simulate(localCfg, trace)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d nodes, %d jobs (%.0f%% MM) over %s, mean interarrival %v\n\n",
		*nodes, *jobs, *mmFrac*100, link.Name(), *interarrival)
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "GPUs\tmakespan\tmean turnaround\tp95 turnaround\tmean queue\tmean GPU util")
	for _, r := range sweep {
		var util float64
		for _, u := range r.Utilization {
			util += u
		}
		util /= float64(len(r.Utilization))
		fmt.Fprintf(w, "%d\t%v\t%v\t%v\t%v\t%.0f%%\n",
			r.GPUs, r.Makespan.Round(time.Second),
			r.MeanTurnaround.Round(time.Second), r.P95Turnaround.Round(time.Second),
			r.MeanQueueDelay.Round(time.Second), util*100)
	}
	fmt.Fprintf(w, "%d (local)\t%v\t%v\t%v\t%v\t-\n",
		*nodes, local.Makespan.Round(time.Second),
		local.MeanTurnaround.Round(time.Second), local.P95Turnaround.Round(time.Second),
		local.MeanQueueDelay.Round(time.Second))
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	gpus, remote, localMk, err := cluster.RequiredGPUs(cfg, trace, *tolerance)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nverdict: %d of %d nodes need a GPU (makespan %v vs %v fully equipped, tolerance %.0f%%)\n",
		gpus, *nodes, remote.Round(time.Second), localMk.Round(time.Second), *tolerance*100)
	fmt.Printf("capital saved: %d GPUs (%.0f%% of the fully equipped configuration)\n",
		*nodes-gpus, float64(*nodes-gpus)/float64(*nodes)*100)

	// Price the recommended configuration against the fully equipped one
	// using the paper's power figures (a GPU draws ~25% of a node).
	cfg.GPUs = gpus
	savings, err := cluster.CompareCost(cfg, trace, cluster.DefaultCostModel())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("economics:  acquisition %.1f%% cheaper, energy %.1f%% lower, makespan %.1f%% longer\n",
		savings.AcquisitionPc, savings.EnergyPc, savings.SlowdownPc)
	fmt.Printf("            (shared: %.0f Wh over %v; fully equipped: %.0f Wh over %v)\n",
		savings.Shared.EnergyWh, savings.Shared.Makespan.Round(time.Second),
		savings.Local.EnergyWh, savings.Local.Makespan.Round(time.Second))
}
