// Pipeline demonstrates the asynchronous extension (the paper defers
// "asynchronous transfers" to future work): it runs a chunked batch of
// 512-point FFTs on the remote GPU twice — first serialized with
// synchronous calls, then double-buffered with two CUDA streams so each
// chunk's PCIe transfer overlaps the previous chunk's kernel — and reports
// the modeled speedup, with the timings measured by CUDA events on the
// device.
package main

import (
	"fmt"
	"log"
	"time"

	"rcuda"
	"rcuda/internal/fft"
)

const (
	chunks     = 8
	chunkBatch = 256 // transforms per chunk
)

func main() {
	link, err := rcuda.NetworkByName("40GI")
	if err != nil {
		log.Fatal(err)
	}
	sync, err := run(link, false)
	if err != nil {
		log.Fatal(err)
	}
	async, err := run(link, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batched FFT, %d chunks x %d transforms over %s:\n", chunks, chunkBatch, link.Name())
	fmt.Printf("  synchronous (paper's model):   %v\n", sync.Round(time.Microsecond))
	fmt.Printf("  double-buffered (2 streams):   %v\n", async.Round(time.Microsecond))
	fmt.Printf("  overlap speedup:               %.2fx\n", float64(sync)/float64(async))
	fmt.Println("\nThe device-side PCIe copies overlap kernels of the other stream;")
	fmt.Println("the wire itself stays synchronous, as in the paper's protocol.")
}

// run executes the chunked workload and returns the simulated makespan.
func run(link *rcuda.Network, overlapped bool) (time.Duration, error) {
	mod, err := rcuda.CaseStudyModule(rcuda.FFT)
	if err != nil {
		return 0, err
	}
	img, err := mod.Binary()
	if err != nil {
		return 0, err
	}
	sess, err := rcuda.NewSimSession(link, img, nil)
	if err != nil {
		return 0, err
	}
	defer func() { _ = sess.Close() }()
	client, clk := sess.Client, sess.Clock

	chunkBytes := uint32(chunkBatch * fft.BytesPerTransform)
	bufs := make([]rcuda.DevicePtr, 2)
	for i := range bufs {
		p, err := client.Malloc(chunkBytes)
		if err != nil {
			return 0, err
		}
		bufs[i] = p
	}
	data := make([]byte, chunkBytes)

	start := clk.Now()
	if overlapped {
		streams := make([]rcuda.Stream, 2)
		for i := range streams {
			s, err := client.StreamCreate()
			if err != nil {
				return 0, err
			}
			streams[i] = s
		}
		for c := 0; c < chunks; c++ {
			buf, s := bufs[c%2], streams[c%2]
			if err := client.MemcpyToDeviceAsync(buf, data, s); err != nil {
				return 0, err
			}
			if err := client.LaunchAsync(rcuda.FFTKernel,
				rcuda.Dim3{X: chunkBatch}, rcuda.Dim3{X: 64}, 0,
				rcuda.PackParams(uint32(buf), chunkBatch, 0), s); err != nil {
				return 0, err
			}
		}
		if err := client.DeviceSynchronize(); err != nil {
			return 0, err
		}
	} else {
		for c := 0; c < chunks; c++ {
			buf := bufs[c%2]
			if err := client.MemcpyToDevice(buf, data); err != nil {
				return 0, err
			}
			if err := client.Launch(rcuda.FFTKernel,
				rcuda.Dim3{X: chunkBatch}, rcuda.Dim3{X: 64}, 0,
				rcuda.PackParams(uint32(buf), chunkBatch, 0)); err != nil {
				return 0, err
			}
		}
	}
	elapsed := clk.Now() - start
	for _, p := range bufs {
		if err := client.Free(p); err != nil {
			return 0, err
		}
	}
	return elapsed, nil
}
