// Stencil runs an iterative Jacobi heat-equation solver on a remote GPU —
// the kind of computational-fluid-dynamics workload the paper's
// introduction motivates, and the best case for GPU remoting: the grid
// crosses the network once in each direction while every one of the
// hundreds of iterations costs only a ~70-byte launch message (the
// ping-pong buffers swap client-side).
//
// The run is functional (results verified against a host solver) and
// timed on the virtual clock, so the example also prints how the
// per-iteration wire overhead compares across interconnects.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"rcuda"
	"rcuda/internal/kernels"
)

const (
	width      = 128
	height     = 128
	iterations = 400
)

func main() {
	fmt.Printf("Jacobi heat solver, %dx%d grid, %d iterations\n\n", width, height, iterations)
	fmt.Println("network   total(sim)   per-iteration   grid transfers")
	for _, name := range []string{"GigaE", "40GI", "A-HT"} {
		link, err := rcuda.NetworkByName(name)
		if err != nil {
			log.Fatal(err)
		}
		total, verified, err := solveRemote(link)
		if err != nil {
			log.Fatal(err)
		}
		if !verified {
			log.Fatalf("%s: device result diverged from the host solver", name)
		}
		fmt.Printf("%-8s  %-10v   %-13v  2 (once up, once down)\n",
			name, total.Round(time.Microsecond), (total / iterations).Round(time.Microsecond))
	}
	fmt.Println("\nverified: device grids match the host solver bit-for-bit tolerance 1e-4")
	fmt.Println("An iterative solver amortizes the upload over hundreds of launches, so")
	fmt.Println("even 1 Gbps Ethernet adds little — the opposite of the FFT case study.")
}

// solveRemote runs the full solve through the middleware over the given
// simulated interconnect and verifies the result against the host solver.
func solveRemote(link *rcuda.Network) (time.Duration, bool, error) {
	img, err := kernels.JacobiModuleImage()
	if err != nil {
		return 0, false, err
	}
	sess, err := rcuda.NewSimSession(link, img, nil)
	if err != nil {
		return 0, false, err
	}
	defer func() { _ = sess.Close() }()
	client, clk := sess.Client, sess.Clock

	// Initial condition: cold grid, hot top edge.
	grid := make([]float32, width*height)
	for j := 0; j < width; j++ {
		grid[j] = 100
	}
	bytes := uint32(4 * len(grid))

	start := clk.Now()
	src, err := client.Malloc(bytes)
	if err != nil {
		return 0, false, err
	}
	dst, err := client.Malloc(bytes)
	if err != nil {
		return 0, false, err
	}
	if err := client.MemcpyToDevice(src, rcuda.Float32Bytes(grid)); err != nil {
		return 0, false, err
	}
	// Seed the ping-pong buffer's boundary with a device-to-device copy —
	// 16 bytes on the wire instead of another 64 KiB upload.
	if err := client.MemcpyDeviceToDevice(dst, src, bytes); err != nil {
		return 0, false, err
	}
	for iter := 0; iter < iterations; iter++ {
		if err := client.Launch(kernels.JacobiKernel,
			rcuda.Dim3{X: width / 16, Y: height / 16}, rcuda.Dim3{X: 16, Y: 16}, 0,
			rcuda.PackParams(uint32(src), uint32(dst), width, height)); err != nil {
			return 0, false, err
		}
		src, dst = dst, src
	}
	out := make([]byte, bytes)
	if err := client.MemcpyToHost(out, src); err != nil {
		return 0, false, err
	}
	for _, p := range []rcuda.DevicePtr{src, dst} {
		if err := client.Free(p); err != nil {
			return 0, false, err
		}
	}
	elapsed := clk.Now() - start

	// Host verification.
	want := grid
	for iter := 0; iter < iterations; iter++ {
		want = kernels.JacobiCPU(want, width, height)
	}
	got := rcuda.BytesFloat32(out)
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-4 {
			return elapsed, false, nil
		}
	}
	return elapsed, true, nil
}
