// Quickstart: start an rCUDA server on localhost, connect a client over
// real TCP, and run a small matrix multiplication on the "remote" GPU —
// the application code only sees the CUDA-like Runtime interface.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"

	"rcuda"
)

func main() {
	// 1. The server side: a node that owns a GPU runs the daemon.
	dev := rcuda.NewDevice()
	server := rcuda.NewServer(dev)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := server.Serve(ln); err != nil {
			log.Fatal(err)
		}
	}()
	defer server.Close()
	fmt.Println("rCUDA daemon serving", dev.Name(), "on", ln.Addr())

	// 2. The client side: any node in the cluster opens a session by
	// sending its GPU module, then uses the remote GPU as if local.
	mod, err := rcuda.CaseStudyModule(rcuda.MM)
	if err != nil {
		log.Fatal(err)
	}
	img, err := mod.Binary()
	if err != nil {
		log.Fatal(err)
	}
	client, err := rcuda.Dial(ln.Addr().String(), img)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	maj, min := client.Capability()
	fmt.Printf("connected: remote device reports compute capability %d.%d\n", maj, min)

	// 3. C = A·B on the remote GPU.
	const m = 32
	rng := rand.New(rand.NewSource(1))
	a := make([]float32, m*m)
	b := make([]float32, m*m)
	for i := range a {
		a[i] = rng.Float32()
		b[i] = rng.Float32()
	}
	nbytes := uint32(4 * m * m)
	aPtr := mustMalloc(client, nbytes)
	bPtr := mustMalloc(client, nbytes)
	cPtr := mustMalloc(client, nbytes)
	must(client.MemcpyToDevice(aPtr, rcuda.Float32Bytes(a)))
	must(client.MemcpyToDevice(bPtr, rcuda.Float32Bytes(b)))
	must(client.Launch(rcuda.SgemmKernel,
		rcuda.Dim3{X: m / 16, Y: m / 16}, rcuda.Dim3{X: 16, Y: 16}, 0,
		rcuda.PackParams(uint32(aPtr), uint32(bPtr), uint32(cPtr), m)))
	out := make([]byte, nbytes)
	must(client.MemcpyToHost(out, cPtr))
	for _, p := range []rcuda.DevicePtr{aPtr, bPtr, cPtr} {
		must(client.Free(p))
	}

	c := rcuda.BytesFloat32(out)
	fmt.Printf("C[0,0] = %.4f, C[%d,%d] = %.4f — computed on the remote GPU\n",
		c[0], m-1, m-1, c[m*m-1])
}

func mustMalloc(rt rcuda.Runtime, n uint32) rcuda.DevicePtr {
	p, err := rt.Malloc(n)
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
