// Package rcuda is a pure-Go reproduction of the rCUDA middleware and the
// performance study of "Performance of CUDA Virtualized Remote GPUs in High
// Performance Clusters" (Duato, Peña, Silla, Mayo, Quintana-Ortí —
// ICPP 2011).
//
// It provides:
//
//   - A CUDA Runtime API subset (Runtime) with two interchangeable
//     implementations: a local runtime over a simulated Tesla C1060, and a
//     remote client that forwards every call to an rCUDA server over TCP or
//     over a simulated interconnect.
//   - The rCUDA server daemon (Server), which time-multiplexes one GPU
//     across concurrent clients, one pre-initialized CUDA context each.
//   - Models of the seven networks the paper studies (Network), the two
//     case studies (matrix product and batched 512-point FFT), and the
//     paper's estimation methodology (fixed-time extraction,
//     cross-validation, HPC-network projection).
//
// This file is a façade over the internal packages; see DESIGN.md for the
// architecture and EXPERIMENTS.md for the paper-vs-reproduction results.
package rcuda

import (
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/cudart"
	"rcuda/internal/gpu"
	"rcuda/internal/kernels"
	"rcuda/internal/netsim"
	"rcuda/internal/perfmodel"
	mw "rcuda/internal/rcuda"
	"rcuda/internal/trace"
	"rcuda/internal/transport"
	"rcuda/internal/vclock"
	"rcuda/internal/workload"
)

// Core types, re-exported from the internal packages.
type (
	// Runtime is the CUDA Runtime API subset rCUDA virtualizes. Both the
	// local GPU runtime and the remote client satisfy it.
	Runtime = cudart.Runtime
	// DevicePtr is a 32-bit device address.
	DevicePtr = cudart.DevicePtr
	// Dim3 is a kernel launch geometry triple.
	Dim3 = cudart.Dim3
	// Device is a simulated CUDA device.
	Device = gpu.Device
	// DeviceConfig parameterizes a simulated device.
	DeviceConfig = gpu.Config
	// Module is a loadable GPU module.
	Module = gpu.Module
	// Server is the rCUDA daemon.
	Server = mw.Server
	// Client is the remote runtime.
	Client = mw.Client
	// Network models one cluster interconnect.
	Network = netsim.Link
	// Noise is a deterministic measurement-jitter source.
	Noise = netsim.Noise
	// Clock abstracts simulated or wall time.
	Clock = vclock.Clock
	// SimClock is a deterministic virtual clock.
	SimClock = vclock.Sim
	// Stream is a CUDA stream handle (zero = the default stream).
	Stream = cudart.Stream
	// Event is a CUDA event handle.
	Event = cudart.Event
	// AsyncRuntime extends Runtime with streams, async copies and events.
	AsyncRuntime = cudart.AsyncRuntime
	// CaseStudy selects one of the paper's two workloads.
	CaseStudy = calib.CaseStudy
	// Model is the paper's network-performance estimation model.
	Model = perfmodel.Model
	// TraceRecorder records the client-server dialogue (Figure 2).
	TraceRecorder = trace.Recorder
	// TrackedRuntime adds cudaGetLastError/cudaPeekAtLastError semantics
	// to any Runtime; create one with Track.
	TrackedRuntime = cudart.TrackedRuntime
	// ClientOption configures the remote client (batching, chunked
	// transfers, retry/reconnect).
	ClientOption = mw.ClientOption
)

// WithBatching coalesces fire-and-forget calls (async copies, launches,
// event records, memsets) into one wire frame that flushes at the next
// synchronizing call, and caches immutable device-query replies for the
// lifetime of the connection. Zero arguments select the defaults
// (DefaultBatchOps ops / DefaultBatchBytes bytes per frame).
func WithBatching(maxOps, maxBytes int) ClientOption { return mw.WithBatching(maxOps, maxBytes) }

// Default per-frame batching limits (see DESIGN.md §11 for why the byte
// cap stays below GigaE's small-message regime).
const (
	DefaultBatchOps   = mw.DefaultBatchOps
	DefaultBatchBytes = mw.DefaultBatchBytes
)

// WithChunkedTransfers streams copies at or above the threshold as
// pipelined chunks so the server overlaps the wire with PCIe. Pays off on
// fast interconnects only; see DESIGN.md §7.
func WithChunkedTransfers(threshold, chunkSize int) ClientOption {
	return mw.WithChunkedTransfers(threshold, chunkSize)
}

// WithRetry retries idempotent calls with exponential backoff after
// transient transport faults.
func WithRetry(maxAttempts int, backoff time.Duration) ClientOption {
	return mw.WithRetry(maxAttempts, backoff)
}

// WithReconnect redials through the given function and reattaches the
// durable session when the connection is lost mid-run. Reconnecting
// invalidates any cached device-query replies.
func WithReconnect(dial func() (transport.Conn, error)) ClientOption {
	return mw.WithReconnect(dial)
}

// WithSchedClass declares the session's scheduling class and weight in
// the hello, for daemons running the multi-tenant scheduler (rcudad
// -sched). Daemons without the scheduler accept and ignore it. Weight 0
// keeps the server's default; class SchedBatch is what an undeclared
// session gets.
func WithSchedClass(class, weight uint32) ClientOption {
	return mw.WithSchedClass(class, weight)
}

// Scheduling classes for WithSchedClass, in descending priority.
const (
	SchedRealtime   = mw.SchedRealtime
	SchedBatch      = mw.SchedBatch
	SchedBestEffort = mw.SchedBestEffort
)

// Track wraps a runtime (local or remote) with CUDA's sticky-error
// protocol.
func Track(rt Runtime) *TrackedRuntime { return cudart.Track(rt) }

// The two case studies.
const (
	MM  = calib.MM
	FFT = calib.FFT
)

// NewDevice creates a simulated Tesla C1060 running on wall time, suitable
// for serving real TCP clients.
func NewDevice() *Device {
	return gpu.New(gpu.Config{Clock: vclock.NewWall()})
}

// NewSimDevice creates a simulated device on a virtual clock, for
// deterministic discrete-event runs.
func NewSimDevice(clock Clock) *Device {
	return gpu.New(gpu.Config{Clock: clock})
}

// NewSimClock returns a fresh virtual clock at time zero.
func NewSimClock() *SimClock { return vclock.NewSim() }

// NewServer creates an rCUDA daemon for the device.
func NewServer(dev *Device) *Server { return mw.NewServer(dev) }

// Dial connects to an rCUDA server over TCP (Nagle disabled, as in the
// paper) and opens a session with the given GPU module image.
func Dial(addr string, module []byte, opts ...ClientOption) (*Client, error) {
	conn, err := transport.DialTCP(addr)
	if err != nil {
		return nil, err
	}
	c, err := mw.Open(conn, module, opts...)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	return c, nil
}

// OpenLocal initializes the CUDA runtime directly on a local device with
// the application's module loaded — the paper's "local GPU" baseline.
func OpenLocal(dev *Device, module *Module) (Runtime, error) {
	return cudart.OpenLocal(dev, module)
}

// CaseStudyModule returns the registered GPU module of a case study
// (Volkov SGEMM or the batched 512-point FFT).
func CaseStudyModule(cs CaseStudy) (*Module, error) { return kernels.ModuleFor(cs) }

// Kernel names of the case-study modules.
const (
	SgemmKernel = kernels.SgemmKernel
	FFTKernel   = kernels.FFTKernel
)

// PackParams packs 32-bit kernel parameters the way the launch message
// carries them.
func PackParams(vals ...uint32) []byte { return gpu.PackParams(vals...) }

// Float32Bytes serializes float32 data to device byte order.
func Float32Bytes(xs []float32) []byte { return cudart.Float32Bytes(xs) }

// BytesFloat32 deserializes device bytes to float32 data.
func BytesFloat32(b []byte) []float32 { return cudart.BytesFloat32(b) }

// Networks returns every interconnect of the paper: GigaE, 40GI, 10GE,
// 10GI, Myr, F-HT, A-HT.
func Networks() []*Network { return netsim.All() }

// NetworkByName resolves an interconnect by its table name.
func NetworkByName(name string) (*Network, error) { return netsim.ByName(name) }

// ProblemSizes returns the problem sizes the paper evaluates for a case
// study (matrix dimensions for MM, batch counts for FFT).
func ProblemSizes(cs CaseStudy) []int { return calib.Sizes(cs) }

// BuildModel derives the paper's estimation model from measured execution
// times (size → time in seconds) on a source network.
func BuildModel(cs CaseStudy, source *Network, measuredSeconds map[int]float64) (*Model, error) {
	meas := make(map[int]time.Duration, len(measuredSeconds))
	for size, s := range measuredSeconds {
		meas[size] = time.Duration(s * float64(time.Second))
	}
	return perfmodel.Build(cs, source, meas)
}

// MeasureRemote simulates the paper's measurement campaign: it runs the
// case study through the full middleware over the given network for every
// paper problem size and returns mean execution times in seconds.
func MeasureRemote(cs CaseStudy, link *Network, reps int, seed int64) (map[int]float64, error) {
	var noise *Noise
	if seed != 0 {
		noise = netsim.NewNoise(seed, 0.004)
	}
	series, err := workload.MeasureSeries(cs, workload.Remote,
		workload.Options{Link: link, Noise: noise}, reps)
	if err != nil {
		return nil, err
	}
	out := make(map[int]float64, len(series))
	for size, d := range series {
		out[size] = d.Seconds()
	}
	return out, nil
}
