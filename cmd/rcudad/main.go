// Command rcudad is the rCUDA server daemon: it owns the node's (simulated)
// GPU and serves CUDA requests from remote clients over TCP, exactly as the
// paper's "GPU network service listening for requests on a TCP port".
//
// Each accepted connection gets its own pre-initialized CUDA context, so
// concurrent clients time-share the GPU and no client pays the CUDA
// environment start-up delay.
//
// Usage:
//
//	rcudad [-listen :8308] [-mem 4096] [-quiet]
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"rcuda/internal/gpu"
	_ "rcuda/internal/kernels" // register the case-study GPU modules
	"rcuda/internal/rcuda"
	"rcuda/internal/vclock"
)

func main() {
	listen := flag.String("listen", ":8308", "TCP address to listen on")
	memMiB := flag.Uint64("mem", 4096, "device memory in MiB (Tesla C1060: 4096)")
	gpus := flag.Int("gpus", 1, "number of GPUs this node serves")
	spread := flag.Bool("spread", false, "start sessions on the GPUs round robin instead of device 0")
	quiet := flag.Bool("quiet", false, "suppress per-session logging")
	flag.Parse()
	if *gpus < 1 {
		log.Fatalf("rcudad: -gpus %d must be at least 1", *gpus)
	}

	logger := log.New(os.Stderr, "rcudad: ", log.LstdFlags)
	clock := vclock.NewWall()
	devs := make([]*gpu.Device, *gpus)
	for i := range devs {
		devs[i] = gpu.New(gpu.Config{
			Clock:       clock,
			MemoryBytes: *memMiB << 20,
		})
	}
	dev := devs[0]

	opts := []rcuda.ServerOption{rcuda.WithDevices(devs[1:]...)}
	if *spread {
		opts = append(opts, rcuda.WithSessionSpread())
	}
	if !*quiet {
		opts = append(opts, rcuda.WithLogger(logger))
	}
	srv := rcuda.NewServer(dev, opts...)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	logger.Printf("serving %d x %s (%d MiB each) on %s, modules: %v",
		*gpus, dev.Name(), *memMiB, ln.Addr(), gpu.RegisteredModules())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		logger.Print("shutting down")
		_ = srv.Close()
	}()

	if err := srv.Serve(ln); err != nil {
		logger.Fatalf("serve: %v", err)
	}
}
