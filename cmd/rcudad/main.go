// Command rcudad is the rCUDA server daemon: it owns the node's (simulated)
// GPU and serves CUDA requests from remote clients over TCP, exactly as the
// paper's "GPU network service listening for requests on a TCP port".
//
// Each accepted connection gets its own pre-initialized CUDA context, so
// concurrent clients time-share the GPU and no client pays the CUDA
// environment start-up delay.
//
// The hardening flags bound what any one client can take from the shared
// node: -max-sessions/-max-conns/-queue-depth gate admission,
// -session-mem/-max-allocs cap a session's device memory, -req-deadline
// kills stalled connections, and -parked-ttl reclaims abandoned durable
// sessions. SIGUSR1 prints an operational stats snapshot; on SIGINT/SIGTERM
// the daemon drains gracefully within -drain-grace and prints a final
// snapshot.
//
// -sched turns on the per-device scheduler: ops dispatch through a
// weighted fair queue with realtime > batch > besteffort priority classes
// (clients declare a class in their session hello), yielding the device
// only at op boundaries so results stay bit-exact; -class-weights tunes the
// class multipliers. Per-class queue waits and served/preempted counters
// appear in the SIGUSR1 snapshot and the stats probe's class block.
//
// The migration flags make the daemon a live-migration peer: -session-id-base
// carves out a disjoint durable-id range so restored sessions never collide
// with locally minted ones, -standby-peer streams periodic checkpoints of
// parked sessions to a named peer so clients can resume there if this daemon
// dies, and -migrate-chunk tunes the outbound checkpoint stream.
//
// Usage:
//
//	rcudad [-listen :8308] [-mem 4096] [-quiet] [hardening flags]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rcuda/internal/gpu"
	_ "rcuda/internal/kernels" // register the case-study GPU modules
	"rcuda/internal/rcuda"
	"rcuda/internal/sched"
	"rcuda/internal/transport"
	"rcuda/internal/vclock"
)

// logSnapshot prints the operator view of the daemon: cumulative counters
// plus live session and device-occupancy gauges.
func logSnapshot(logger *log.Logger, snap rcuda.StatsSnapshot) {
	logger.Printf("stats: sessions live=%d parked=%d started=%d requests=%d reattaches=%d",
		snap.SessionsLive, snap.SessionsParkedNow, snap.SessionsStarted, snap.Requests, snap.Reattaches)
	logger.Printf("stats: rejected conns=%d sessions=%d quota-denials=%d watchdog-kills=%d evictions=%d forced-closes=%d",
		snap.RejectedConns, snap.RejectedSessions, snap.QuotaDenials, snap.WatchdogKills, snap.Evictions, snap.ForcedCloses)
	logger.Printf("stats: batch frames=%d ops=%d replays=%d",
		snap.BatchFrames, snap.BatchedOps, snap.BatchReplays)
	logger.Printf("stats: migrations out=%d bytes=%d failed=%d restored-in=%d",
		snap.Migrations, snap.MigrationBytes, snap.MigrationFailures, snap.RestoreFromCheckpoint)
	for i, du := range snap.Devices {
		logger.Printf("stats: device %d %q: %d bytes in %d allocations, %d sessions, busy %v",
			i, du.Name, du.BytesInUse, du.Allocations, du.Sessions, du.Busy)
	}
	for _, cu := range snap.Classes {
		logger.Printf("stats: class %s: %d sessions, served=%d preempted=%d wait p50=%v p99=%v",
			cu.Class, cu.Sessions, cu.Served, cu.Preempted, cu.WaitP50, cu.WaitP99)
	}
}

// parseClassWeights decodes "realtime,batch,besteffort" multipliers; a zero
// entry keeps that class's default.
func parseClassWeights(s string) ([sched.NumClasses]uint32, error) {
	var w [sched.NumClasses]uint32
	parts := strings.Split(s, ",")
	if len(parts) != sched.NumClasses {
		return w, fmt.Errorf("-class-weights wants %d comma-separated values, got %q", sched.NumClasses, s)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 32)
		if err != nil {
			return w, fmt.Errorf("-class-weights %q: %v", s, err)
		}
		w[i] = uint32(v)
	}
	return w, nil
}

func main() {
	listen := flag.String("listen", ":8308", "TCP address to listen on")
	memMiB := flag.Uint64("mem", 4096, "device memory in MiB (Tesla C1060: 4096)")
	gpus := flag.Int("gpus", 1, "number of GPUs this node serves")
	devices := flag.Int("devices", 0, "alias for -gpus (broker deployments use this name); 0 defers to -gpus")
	spread := flag.Bool("spread", false, "start sessions on the GPUs round robin instead of device 0")
	quiet := flag.Bool("quiet", false, "suppress per-session logging")

	maxSessions := flag.Int("max-sessions", 0, "max concurrent sessions, attached or parked (0 = unlimited)")
	maxConns := flag.Int("max-conns", 0, "max concurrently served connections (0 = unlimited)")
	queueDepth := flag.Int("queue-depth", 0, "handshakes that may queue for a session slot instead of being rejected")
	queueWait := flag.Duration("queue-wait", time.Second, "how long a queued handshake waits for a slot")
	sessionMemMiB := flag.Uint64("session-mem", 0, "per-session device memory cap in MiB (0 = unlimited)")
	maxAllocs := flag.Int("max-allocs", 0, "per-session live allocation cap (0 = unlimited)")
	reqDeadline := flag.Duration("req-deadline", 0, "request watchdog: kill connections idle or stalled past this (0 = off)")
	parkedTTL := flag.Duration("parked-ttl", 0, "destroy parked durable sessions not reattached within this (0 = keep until shutdown)")
	drainGrace := flag.Duration("drain-grace", rcuda.DefaultCloseGrace, "how long shutdown lets in-flight sessions finish")

	schedPolicy := flag.String("sched", "", "per-device scheduler: \"wfq\" for weighted fair queueing with priority classes, \"fifo\" for explicit arrival order, empty = scheduler off (legacy pass-through)")
	classWeights := flag.String("class-weights", "", "comma-separated realtime,batch,besteffort class weight multipliers (default 100,10,1); requires -sched")

	sessionIDBase := flag.Uint64("session-id-base", 0, "mint durable session ids above this; daemons that exchange sessions by migration need disjoint ranges")
	migrateChunk := flag.Uint("migrate-chunk", 0, "chunk size in bytes for outbound migration streams (0 = protocol default)")
	standbyPeer := flag.String("standby-peer", "", "host:port of a peer daemon to stream standby checkpoints of parked sessions to")
	standbyEvery := flag.Duration("standby-interval", time.Second, "how often parked sessions are swept to -standby-peer")
	flag.Parse()
	if *devices != 0 {
		if *devices < 1 {
			log.Fatalf("rcudad: -devices %d must be at least 1", *devices)
		}
		*gpus = *devices
	}
	if *gpus < 1 {
		log.Fatalf("rcudad: -gpus %d must be at least 1", *gpus)
	}

	logger := log.New(os.Stderr, "rcudad: ", log.LstdFlags)
	clock := vclock.NewWall()
	devs := make([]*gpu.Device, *gpus)
	for i := range devs {
		devs[i] = gpu.New(gpu.Config{
			Clock:       clock,
			MemoryBytes: *memMiB << 20,
		})
	}
	dev := devs[0]

	opts := []rcuda.ServerOption{
		rcuda.WithDevices(devs[1:]...),
		rcuda.WithMaxSessions(*maxSessions),
		rcuda.WithMaxConns(*maxConns),
		rcuda.WithAdmissionQueue(*queueDepth, *queueWait),
		rcuda.WithSessionMemoryLimit(*sessionMemMiB << 20),
		rcuda.WithMaxAllocsPerSession(*maxAllocs),
		rcuda.WithRequestDeadline(*reqDeadline),
		rcuda.WithParkedSessionTTL(*parkedTTL),
	}
	if *spread {
		opts = append(opts, rcuda.WithSessionSpread())
	}
	if *schedPolicy != "" {
		policy, err := sched.ParsePolicy(*schedPolicy)
		if err != nil {
			log.Fatalf("rcudad: %v", err)
		}
		opts = append(opts, rcuda.WithScheduler(policy))
		if *classWeights != "" {
			w, err := parseClassWeights(*classWeights)
			if err != nil {
				log.Fatalf("rcudad: %v", err)
			}
			opts = append(opts, rcuda.WithClassWeights(w))
		}
	} else if *classWeights != "" {
		log.Fatal("rcudad: -class-weights requires -sched")
	}
	if *sessionIDBase > 0 {
		opts = append(opts, rcuda.WithSessionIDBase(*sessionIDBase))
	}
	if *migrateChunk > 0 {
		opts = append(opts, rcuda.WithMigrateChunkSize(uint32(*migrateChunk)))
	}
	if *standbyPeer != "" {
		peer := *standbyPeer
		opts = append(opts, rcuda.WithStandbyPeer(
			func() (transport.Conn, error) { return transport.DialTCP(peer) },
			*standbyEvery))
	}
	if !*quiet {
		opts = append(opts, rcuda.WithLogger(logger))
	}
	srv := rcuda.NewServer(dev, opts...)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	logger.Printf("serving %d x %s (%d MiB each) on %s, modules: %v",
		*gpus, dev.Name(), *memMiB, ln.Addr(), gpu.RegisteredModules())

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGUSR1)
	go func() {
		for s := range sig {
			if s == syscall.SIGUSR1 {
				logSnapshot(logger, srv.StatsSnapshot())
				continue
			}
			logger.Printf("shutting down, draining for up to %v", *drainGrace)
			ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
			if err := srv.Drain(ctx); err != nil {
				logger.Printf("drain: %v", err)
			}
			cancel()
			return
		}
	}()

	if err := srv.Serve(ln); err != nil {
		logger.Fatalf("serve: %v", err)
	}
	logSnapshot(logger, srv.StatsSnapshot())
}
