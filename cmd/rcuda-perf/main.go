// Command rcuda-perf measures the real (wall-clock) performance of a live
// rCUDA daemon over TCP — the deployment-side analogue of the paper's
// methodology: per-call round-trip latencies for the control operations
// and effective throughput for bulk memory copies.
//
// Start a daemon first (cmd/rcudad), then:
//
//	rcuda-perf -server localhost:8308 -reps 250
//	rcuda-perf -server localhost:8308 -op memcpy -bytes 67108864 -reps 30
//
// The defaults mirror the paper's ping-pong configuration: 250 repetitions
// averaged for small messages, minimum-of-N for bulk transfers.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"rcuda"
	"rcuda/internal/stats"
)

func main() {
	server := flag.String("server", "localhost:8308", "rCUDA daemon address")
	op := flag.String("op", "all", "operation to measure: sync, malloc, memcpy, launch, all")
	bytes := flag.Int("bytes", 1<<20, "payload size for memcpy measurements")
	reps := flag.Int("reps", 250, "repetitions per measurement")
	flag.Parse()

	mod, err := rcuda.CaseStudyModule(rcuda.MM)
	if err != nil {
		log.Fatal(err)
	}
	img, err := mod.Binary()
	if err != nil {
		log.Fatal(err)
	}
	client, err := rcuda.Dial(*server, img)
	if err != nil {
		log.Fatalf("connect to %s: %v (start cmd/rcudad first)", *server, err)
	}
	defer client.Close()
	maj, min := client.Capability()
	fmt.Printf("connected to %s — remote device compute capability %d.%d\n\n", *server, maj, min)

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "operation\treps\tmean\tmin\tmedian\tmax\tthroughput")
	defer w.Flush()

	run := func(name string, fn func() error, payload int64) {
		samples := make([]float64, 0, *reps)
		for i := 0; i < *reps; i++ {
			start := time.Now()
			if err := fn(); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			samples = append(samples, time.Since(start).Seconds())
		}
		s, err := stats.Summarize(samples)
		if err != nil {
			log.Fatal(err)
		}
		tp := "-"
		if payload > 0 {
			tp = fmt.Sprintf("%.1f MB/s", float64(payload)/s.Min/(1<<20))
		}
		fmt.Fprintf(w, "%s\t%d\t%v\t%v\t%v\t%v\t%s\n",
			name, s.N, dur(s.Mean), dur(s.Min), dur(s.Median), dur(s.Max), tp)
	}

	doSync := func() {
		run("cudaDeviceSynchronize", client.DeviceSynchronize, 0)
	}
	doMalloc := func() {
		run("cudaMalloc+cudaFree", func() error {
			p, err := client.Malloc(4096)
			if err != nil {
				return err
			}
			return client.Free(p)
		}, 0)
	}
	doMemcpy := func() {
		buf := make([]byte, *bytes)
		ptr, err := client.Malloc(uint32(*bytes))
		if err != nil {
			log.Fatal(err)
		}
		run(fmt.Sprintf("cudaMemcpy H2D %dB", *bytes), func() error {
			return client.MemcpyToDevice(ptr, buf)
		}, int64(*bytes))
		run(fmt.Sprintf("cudaMemcpy D2H %dB", *bytes), func() error {
			return client.MemcpyToHost(buf, ptr)
		}, int64(*bytes))
		if err := client.Free(ptr); err != nil {
			log.Fatal(err)
		}
	}
	doLaunch := func() {
		const m = 32
		nbytes := uint32(4 * m * m)
		var ptrs [3]rcuda.DevicePtr
		for i := range ptrs {
			p, err := client.Malloc(nbytes)
			if err != nil {
				log.Fatal(err)
			}
			ptrs[i] = p
		}
		if err := client.MemcpyToDevice(ptrs[0], make([]byte, nbytes)); err != nil {
			log.Fatal(err)
		}
		if err := client.MemcpyToDevice(ptrs[1], make([]byte, nbytes)); err != nil {
			log.Fatal(err)
		}
		run("cudaLaunch sgemmNN m=32", func() error {
			return client.Launch(rcuda.SgemmKernel, rcuda.Dim3{X: 2, Y: 2}, rcuda.Dim3{X: 16, Y: 16}, 0,
				rcuda.PackParams(uint32(ptrs[0]), uint32(ptrs[1]), uint32(ptrs[2]), m))
		}, 0)
		for _, p := range ptrs {
			if err := client.Free(p); err != nil {
				log.Fatal(err)
			}
		}
	}

	switch *op {
	case "sync":
		doSync()
	case "malloc":
		doMalloc()
	case "memcpy":
		doMemcpy()
	case "launch":
		doLaunch()
	case "all":
		doSync()
		doMalloc()
		doMemcpy()
		doLaunch()
	default:
		log.Fatalf("unknown -op %q (sync, malloc, memcpy, launch, all)", *op)
	}
}

func dur(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second)).Round(time.Microsecond)
}
