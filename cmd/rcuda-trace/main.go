// Command rcuda-trace runs one functional remote matrix multiplication
// through the full middleware over a simulated interconnect, recording
// every client-server message, and prints the sequence diagram and phase
// breakdown of the paper's Figure 2.
//
// Usage:
//
//	rcuda-trace [-size 64]
package main

import (
	"flag"
	"fmt"
	"log"

	"rcuda/internal/report"
)

func main() {
	size := flag.Int("size", 64, "matrix dimension (multiple of 16, ≤ 1024)")
	flag.Parse()

	out, err := report.Figure2(*size)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}
