package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if c := run([]string{"-list"}, &out, &errb); c != 0 {
		t.Fatalf("-list exit = %d, want 0 (stderr: %s)", c, errb.String())
	}
	for _, name := range []string{"seededrand", "wiremsg", "locknet", "errcode"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out.String())
		}
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if c := run([]string{"-C", "../..", "./internal/vclock"}, &out, &errb); c != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", c, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run printed findings:\n%s", out.String())
	}
}

func TestLoadErrorExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if c := run([]string{"-C", "../..", "./does-not-exist"}, &out, &errb); c != 2 {
		t.Fatalf("bad pattern exit = %d, want 2", c)
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if c := run([]string{"-no-such-flag"}, &out, &errb); c != 2 {
		t.Fatalf("bad flag exit = %d, want 2", c)
	}
}
