// Command rcuda-vet runs the repo's custom static-analysis suite: four
// analyzers (seededrand, wiremsg, locknet, errcode) that enforce the
// project's determinism, wire-protocol, and concurrency invariants on top
// of go/ast and go/types — no third-party analysis framework.
//
// Usage:
//
//	rcuda-vet [flags] [packages]
//
// Packages default to ./... relative to the current directory. Findings
// print one per line as file:line:col: analyzer: message. Exit status is 0
// when the tree is clean, 1 when any analyzer reports a finding, and 2 on
// a usage or load error. Each analyzer has an enable flag (-seededrand,
// -wiremsg, -locknet, -errcode), all true by default, so CI can bisect a
// regression to one invariant:
//
//	rcuda-vet -wiremsg=false -errcode=false ./...
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rcuda/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rcuda-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: rcuda-vet [flags] [packages]")
		fmt.Fprintln(stderr, "Runs the rcuda invariant analyzers; packages default to ./...")
		fs.PrintDefaults()
	}

	all := analysis.Analyzers(analysis.DefaultConfig())
	enabled := make(map[string]*bool, len(all))
	for _, a := range all {
		enabled[a.Name] = fs.Bool(a.Name, true, "run the "+a.Name+" analyzer: "+a.Doc)
	}
	dir := fs.String("C", ".", "load packages as if started in this `directory`")
	list := fs.Bool("list", false, "list the analyzers and exit")

	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var active []*analysis.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	ds, err := analysis.Vet(*dir, patterns, active)
	if err != nil {
		fmt.Fprintln(stderr, "rcuda-vet:", err)
		return 2
	}
	for _, d := range ds {
		fmt.Fprintln(stdout, d.String())
	}
	if len(ds) > 0 {
		fmt.Fprintf(stderr, "rcuda-vet: %d finding(s)\n", len(ds))
		return 1
	}
	return 0
}
