// Command rcuda-pingpong characterizes an interconnect the way Section IV
// of the paper does: a ping-pong test sweeping payload sizes, averaging 250
// repetitions for small payloads and taking the minimum of 100 for large
// ones, then fitting the linear end-to-end latency function and deriving
// the effective one-way bandwidth. It regenerates Figure 3 (-net GigaE) and
// Figure 4 (-net 40GI).
//
// Usage:
//
//	rcuda-pingpong [-net GigaE] [-seed 1] [-sigma 0.004] [-nagle]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rcuda/internal/netsim"
	"rcuda/internal/report"
)

func main() {
	netName := flag.String("net", "GigaE", "network to characterize (GigaE, 40GI, 10GE, 10GI, Myr, F-HT, A-HT)")
	seed := flag.Int64("seed", 1, "noise seed")
	sigma := flag.Float64("sigma", 0.004, "relative measurement noise (0 disables)")
	nagle := flag.Bool("nagle", false, "re-enable the modeled Nagle delay the paper disables")
	flag.Parse()

	link, err := netsim.ByName(*netName)
	if err != nil {
		log.Fatal(err)
	}
	if *nagle {
		// Show the stall the paper avoids by disabling Nagle's algorithm.
		pp := &netsim.PingPong{Link: link, Noise: netsim.NewNoise(*seed, *sigma), Nagle: true}
		fmt.Printf("Nagle enabled: 8-byte round trip on %s = %v (the delay the paper's middleware avoids)\n\n",
			link.Name(), pp.RoundTrip(8))
	}
	cfg := report.Config{Reps: 1, Seed: *seed, Sigma: *sigma}
	out, err := cfg.FigureLatency(link)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprint(os.Stdout, out)
}
