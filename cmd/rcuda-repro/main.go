// Command rcuda-repro regenerates every table and figure of the paper from
// the reproduction stack.
//
// Usage:
//
//	rcuda-repro -all                 # everything, in paper order
//	rcuda-repro -table 4             # one table (1-6)
//	rcuda-repro -figure 5            # one figure (2-6)
//	rcuda-repro -experiments         # EXPERIMENTS.md content (paper vs ours)
//
// Flags -reps, -seed and -sigma control the simulated measurement campaign
// (default: the paper's 30 repetitions, seed 1, 0.4% noise).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rcuda/internal/calib"
	"rcuda/internal/netsim"
	"rcuda/internal/report"
)

func main() {
	table := flag.Int("table", 0, "print one table (1-6)")
	figure := flag.Int("figure", 0, "print one figure (2-6)")
	all := flag.Bool("all", false, "print every table and figure")
	experiments := flag.Bool("experiments", false, "print the EXPERIMENTS.md document")
	reps := flag.Int("reps", 30, "repetitions per measured data point")
	seed := flag.Int64("seed", 1, "noise seed")
	sigma := flag.Float64("sigma", 0.004, "relative measurement noise (0 disables)")
	mmSize := flag.Int("mm", 4096, "MM size at which Table II is evaluated")
	fftBatch := flag.Int("fft", 2048, "FFT batch at which Table II is evaluated")
	svgDir := flag.String("svg", "", "write every figure as SVG files into this directory")
	flag.Parse()

	cfg := report.Config{Reps: *reps, Seed: *seed, Sigma: *sigma}
	out := os.Stdout

	emit := func(s string, err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, s)
	}

	if *experiments {
		emit(cfg.Experiments())
		return
	}
	if *svgDir != "" {
		paths, err := cfg.WriteSVGs(*svgDir)
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range paths {
			fmt.Fprintln(out, p)
		}
		return
	}
	if !*all && *table == 0 && *figure == 0 {
		*all = true
	}

	printTable := func(n int) {
		switch n {
		case 1:
			emit(report.TableI(), nil)
		case 2:
			emit(report.TableII(*mmSize, *fftBatch), nil)
		case 3:
			emit(report.TableIII(), nil)
		case 4:
			emit(cfg.TableIV())
		case 5:
			emit(report.TableV(), nil)
		case 6:
			emit(cfg.TableVI())
		default:
			log.Fatalf("unknown table %d (1-6)", n)
		}
	}
	printFigure := func(n int) {
		switch n {
		case 2:
			emit(report.Figure2(64))
		case 3:
			emit(cfg.FigureLatency(netsim.GigaE()))
		case 4:
			emit(cfg.FigureLatency(netsim.IB40G()))
		case 5:
			emit(cfg.FigureSeries(calib.MM, "GigaE"))
			emit(cfg.FigureSeries(calib.FFT, "GigaE"))
		case 6:
			emit(cfg.FigureSeries(calib.MM, "40GI"))
			emit(cfg.FigureSeries(calib.FFT, "40GI"))
		case 7:
			emit(cfg.Figure7(8))
		case 8:
			emit(cfg.Figure8(*mmSize, *fftBatch, 24))
		case 9:
			emit(cfg.Figure9(8))
		default:
			log.Fatalf("unknown figure %d (2-9; 7-9 are extensions)", n)
		}
	}

	if *table != 0 {
		printTable(*table)
	}
	if *figure != 0 {
		printFigure(*figure)
	}
	if *all {
		printTable(1)
		printFigure(2)
		printFigure(3)
		printFigure(4)
		printTable(2)
		printTable(3)
		printTable(4)
		printTable(5)
		printTable(6)
		printFigure(5)
		printFigure(6)
		printFigure(7)
		printFigure(8)
		printFigure(9)
	}
}
