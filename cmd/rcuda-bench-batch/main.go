// Command rcuda-bench-batch benchmarks the batched data path: it runs the
// DNN inference-loop workload through the full middleware over the two
// testbed interconnects, batched and unbatched, on the simulation clock —
// so the numbers are deterministic and comparable across commits — and
// writes the trajectory to a JSON file (BENCH_batching.json in the repo)
// for regression tracking.
//
//	rcuda-bench-batch                  # print the table, refresh BENCH_batching.json
//	rcuda-bench-batch -out ""          # print only
//	rcuda-bench-batch -requests 128    # heavier serving loop
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"rcuda/internal/netsim"
	"rcuda/internal/perfmodel"
	"rcuda/internal/workload"
)

// benchResult is one (network, mode) cell of the trajectory.
type benchResult struct {
	Network   string `json:"network"`
	Batched   bool   `json:"batched"`
	ElapsedUS int64  `json:"elapsed_us"`
	Messages  int64  `json:"messages"`
	BytesSent int64  `json:"bytes_sent"`
	BytesRecv int64  `json:"bytes_recv"`
	Digest    string `json:"digest"`
	Verified  bool   `json:"verified"`
	// ModelUS is perfmodel's analytic wire time for the same session; the
	// gap to ElapsedUS is the device residual, near zero by construction.
	ModelUS int64 `json:"model_us"`
}

type benchFile struct {
	Workload string        `json:"workload"`
	Layers   int           `json:"layers"`
	Requests int           `json:"requests"`
	Polls    int           `json:"polls"`
	Seed     int64         `json:"seed"`
	Results  []benchResult `json:"results"`
	// SpeedupGigaE/Speedup40GI are the headline batched-over-unbatched
	// whole-session ratios, the numbers regressions watch.
	SpeedupGigaE float64 `json:"speedup_gigae"`
	Speedup40GI  float64 `json:"speedup_40gi"`
}

func main() {
	out := flag.String("out", "BENCH_batching.json", "trajectory file to write; empty disables")
	layers := flag.Int("layers", workload.DefaultInferenceLayers, "dense layers per request")
	requests := flag.Int("requests", workload.DefaultInferenceRequests, "requests per session")
	polls := flag.Int("polls", workload.DefaultInferencePolls, "event polls per request")
	seed := flag.Int64("seed", 7, "weight/input generation seed")
	flag.Parse()

	file := benchFile{
		Workload: "dnn-inference-loop",
		Layers:   *layers, Requests: *requests, Polls: *polls, Seed: *seed,
	}
	elapsed := map[string]map[bool]float64{}

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "network\tmode\telapsed\tmessages\tbytes out/in\tdigest")
	for _, link := range netsim.Testbed() {
		for _, batched := range []bool{false, true} {
			rep, err := workload.RunInference(workload.InferenceOptions{
				Link: link, Batched: batched,
				Layers: *layers, Requests: *requests, Polls: *polls, Seed: *seed,
			})
			if err != nil {
				log.Fatalf("%s batched=%v: %v", link.Name(), batched, err)
			}
			if !rep.Verified {
				log.Fatalf("%s batched=%v: output not bit-exact against the oracle", link.Name(), batched)
			}
			mode := "unbatched"
			if batched {
				mode = "batched"
			}
			fmt.Fprintf(w, "%s\t%s\t%v\t%d\t%d/%d\t%016x\n",
				link.Name(), mode, rep.Elapsed, rep.Messages, rep.BytesSent, rep.BytesRecv, rep.Digest)
			if elapsed[link.Name()] == nil {
				elapsed[link.Name()] = map[bool]float64{}
			}
			elapsed[link.Name()][batched] = float64(rep.Elapsed)
			file.Results = append(file.Results, benchResult{
				Network:   link.Name(),
				Batched:   batched,
				ElapsedUS: rep.Elapsed.Microseconds(),
				Messages:  rep.Messages,
				BytesSent: rep.BytesSent,
				BytesRecv: rep.BytesRecv,
				Digest:    fmt.Sprintf("%016x", rep.Digest),
				Verified:  rep.Verified,
				ModelUS:   perfmodel.InferenceNetTime(link, rep.Spec).Microseconds(),
			})
		}
	}
	w.Flush()

	file.SpeedupGigaE = round2(elapsed["GigaE"][false] / elapsed["GigaE"][true])
	file.Speedup40GI = round2(elapsed["40GI"][false] / elapsed["40GI"][true])
	fmt.Printf("\nspeedup batched vs unbatched: GigaE %.2fx, 40GI %.2fx\n",
		file.SpeedupGigaE, file.Speedup40GI)

	if *out == "" {
		return
	}
	blob, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func round2(x float64) float64 { return float64(int(x*100+0.5)) / 100 }
