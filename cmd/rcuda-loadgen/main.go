// Command rcuda-loadgen is the scale-test harness: it drives the broker's
// placement, spill, and failover paths with 10^4–10^6 simulated sessions on
// a virtual clock (internal/loadgen), closed-loop with the elastic
// autoscaler, and writes the deterministic trajectory to a JSON file
// (BENCH_loadscale.json in the repo) for regression tracking.
//
// Scenarios are fixed and seeded, so the file is byte-reproducible:
//
//	rcuda-loadgen                     # run all scenarios, refresh BENCH_loadscale.json
//	rcuda-loadgen -out ""             # print only
//	rcuda-loadgen -check -cap 10000   # CI: re-run scenarios ≤ cap sessions and
//	                                  # fail if the committed file is stale
//	rcuda-loadgen -sessions 1000000   # ad-hoc extra run at a given scale (print only)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"rcuda/internal/broker"
	"rcuda/internal/faults"
	"rcuda/internal/loadgen"
	"rcuda/internal/protocol"
)

// scenario is one named, fully-pinned load-generation run. build returns a
// fresh Config each call because fault plans are stateful.
type scenario struct {
	name  string
	build func() loadgen.Config
}

// mix is the standard offered class mix: long durable training sessions
// and short best-effort inference sessions, 1:3.
func mix() []loadgen.Class {
	return []loadgen.Class{
		{Name: "train", Weight: 1, HoldMean: 40 * time.Millisecond, Durable: true},
		{Name: "infer", Weight: 3, HoldMean: 8 * time.Millisecond, Durable: false},
	}
}

func scenarios() []scenario {
	return []scenario{
		{name: "smoke-poisson", build: func() loadgen.Config {
			return loadgen.Config{
				Seed: 1, Sessions: 10_000, Arrival: loadgen.Poisson, Rate: 20_000,
				Classes: mix(), InitialDaemons: 4, DaemonCapacity: 64,
				Autoscale: &broker.AutoscalerConfig{
					Min: 4, Max: 32, DaemonCapacity: 64, Cooldown: 250 * time.Millisecond,
				},
			}
		}},
		{name: "smoke-bursty-chaos", build: func() loadgen.Config {
			return loadgen.Config{
				Seed: 2, Sessions: 10_000, Arrival: loadgen.BurstyOnOff, Rate: 12_000,
				BurstFactor: 5, Classes: mix(), InitialDaemons: 4, DaemonCapacity: 64,
				Autoscale: &broker.AutoscalerConfig{
					Min: 4, Max: 32, DaemonCapacity: 64, Cooldown: 250 * time.Millisecond,
				},
				FaultPlan: faults.Seeded(3, faults.Config{
					ResetRate: 0.004, StallRate: 0.01, LatencyRate: 0.05,
				}),
			}
		}},
		// Long-hold, all-durable load with a strong burst: the autoscaler
		// grows the fleet into the bursts, and on the off-phases scale-down
		// faces daemons still holding live sessions — which it drains by
		// live-migrating the residents instead of vetoing the retirement.
		{name: "scale-down-migrate", build: func() loadgen.Config {
			return loadgen.Config{
				Seed: 5, Sessions: 10_000, Arrival: loadgen.BurstyOnOff, Rate: 6_000,
				BurstOnMean: 400 * time.Millisecond, BurstOffMean: 400 * time.Millisecond,
				BurstFactor:    6,
				Classes:        []loadgen.Class{{Name: "train", Weight: 1, HoldMean: 120 * time.Millisecond, Durable: true}},
				InitialDaemons: 2, DaemonCapacity: 32,
				Autoscale: &broker.AutoscalerConfig{
					Min: 2, Max: 48, DaemonCapacity: 32, Cooldown: 100 * time.Millisecond,
					DownThreshold: 0.6,
				},
			}
		}},
		// Mixed scheduling classes through class-aware placement at 10^5
		// scale: sporadic realtime inference, the batch bulk, best-effort
		// scavengers. The probe loop feeds per-class daemon gauges to the
		// placer, so realtime sessions are steered toward daemons with
		// realtime headroom — the fleet-level half of the PR 10 scheduler
		// (the per-device half is BENCH_sched.json).
		{name: "scale-100k-classes", build: func() loadgen.Config {
			return loadgen.Config{
				Seed: 6, Sessions: 100_000, Arrival: loadgen.Poisson, Rate: 40_000,
				Classes: []loadgen.Class{
					{Name: "rt", Weight: 1, HoldMean: 5 * time.Millisecond, Durable: true, SchedClass: protocol.SchedClassRealtime},
					{Name: "batch", Weight: 2, HoldMean: 40 * time.Millisecond, Durable: true, SchedClass: protocol.SchedClassBatch},
					{Name: "scavenge", Weight: 1, HoldMean: 20 * time.Millisecond, Durable: false, SchedClass: protocol.SchedClassBestEffort},
				},
				Policy:         broker.ClassAware,
				InitialDaemons: 4, DaemonCapacity: 64,
				Autoscale: &broker.AutoscalerConfig{
					Min: 4, Max: 64, DaemonCapacity: 64, Cooldown: 250 * time.Millisecond,
				},
			}
		}},
		{name: "scale-100k", build: func() loadgen.Config {
			return loadgen.Config{
				Seed: 3, Sessions: 100_000, Arrival: loadgen.Poisson, Rate: 60_000,
				Classes: mix(), InitialDaemons: 4, DaemonCapacity: 64,
				Autoscale: &broker.AutoscalerConfig{
					Min: 4, Max: 64, DaemonCapacity: 64, Cooldown: 250 * time.Millisecond,
				},
				FaultPlan: faults.Seeded(4, faults.Config{
					ResetRate: 0.002, StallRate: 0.01,
				}),
			}
		}},
	}
}

// scenarioResult is one scenario's row in the bench file. Everything in it
// derives from seeded virtual-clock runs, so re-running a scenario must
// reproduce its row byte for byte.
type scenarioResult struct {
	Name           string  `json:"name"`
	Sessions       int     `json:"sessions"`
	Arrival        string  `json:"arrival"`
	ElapsedMS      int64   `json:"elapsed_ms"`
	PlacedPerSec   float64 `json:"placed_per_sec"`
	QueueWaitP50US int64   `json:"queue_wait_p50_us"`
	QueueWaitP99US int64   `json:"queue_wait_p99_us"`
	Completed      int64   `json:"completed"`
	LostDurable    int64   `json:"lost_durable"`
	LostNonDurable int64   `json:"lost_non_durable"`
	Spills         int64   `json:"spills"`
	Failovers      int64   `json:"failovers"`
	Markdowns      int64   `json:"markdowns"`
	Markups        int64   `json:"markups"`
	Retirements    int64   `json:"retirements"`
	Migrations     int64   `json:"migrations"`
	RetireVetoes   int64   `json:"retire_vetoes"`
	ScaleUps       int64   `json:"scale_ups"`
	ScaleDowns     int64   `json:"scale_downs"`
	Faults         int64   `json:"faults"`
	PeakDaemons    int     `json:"peak_daemons"`
	FinalDaemons   int     `json:"final_daemons"`
	// DaemonsOverTime is the autoscaler trajectory, one fleet size per
	// trajectory sample (1s of virtual time apart).
	DaemonsOverTime []int `json:"daemons_over_time"`
	// Classes breaks queue waits down per offered class; present only for
	// scenarios that declare scheduling classes, so legacy rows are
	// byte-stable.
	Classes []classResult `json:"classes,omitempty"`
}

// classResult is one class's row in a scenario result.
type classResult struct {
	Name       string `json:"name"`
	SchedClass string `json:"sched_class"`
	Sessions   int    `json:"sessions"`
	Placements int64  `json:"placements"`
	WaitP50US  int64  `json:"wait_p50_us"`
	WaitP99US  int64  `json:"wait_p99_us"`
}

// schedClassName names a protocol scheduling-class wire code.
func schedClassName(code uint32) string {
	switch code {
	case protocol.SchedClassRealtime:
		return "realtime"
	case protocol.SchedClassBatch:
		return "batch"
	case protocol.SchedClassBestEffort:
		return "besteffort"
	default:
		return "unspecified"
	}
}

type benchFile struct {
	Harness   string           `json:"harness"`
	Scenarios []scenarioResult `json:"scenarios"`
}

func toResult(name string, r *loadgen.Result) scenarioResult {
	sr := scenarioResult{
		Name:           name,
		Sessions:       r.Sessions,
		Arrival:        r.Arrival,
		ElapsedMS:      r.Elapsed.Milliseconds(),
		PlacedPerSec:   round2(r.PlacedPerSec),
		QueueWaitP50US: r.QueueWaitP50.Microseconds(),
		QueueWaitP99US: r.QueueWaitP99.Microseconds(),
		Completed:      r.Completed,
		LostDurable:    r.LostDurable,
		LostNonDurable: r.LostNonDurable,
		Spills:         r.Pool.Spills,
		Failovers:      r.Pool.Failovers,
		Markdowns:      r.Pool.Markdowns,
		Markups:        r.Pool.Markups,
		Retirements:    r.Pool.Retirements,
		Migrations:     r.Pool.Migrations,
		RetireVetoes:   r.Autoscaler.RetireVetoes,
		ScaleUps:       r.Autoscaler.ScaleUps,
		ScaleDowns:     r.Autoscaler.ScaleDowns,
		Faults:         r.Faults,
		PeakDaemons:    r.PeakDaemons,
		FinalDaemons:   r.DaemonsFinal,
	}
	for _, s := range r.Trajectory {
		sr.DaemonsOverTime = append(sr.DaemonsOverTime, s.Daemons)
	}
	for _, c := range r.Classes {
		if c.SchedClass == protocol.SchedClassUnspecified {
			continue
		}
		sr.Classes = append(sr.Classes, classResult{
			Name:       c.Name,
			SchedClass: schedClassName(c.SchedClass),
			Sessions:   c.Sessions,
			Placements: c.Placements,
			WaitP50US:  c.WaitP50.Microseconds(),
			WaitP99US:  c.WaitP99.Microseconds(),
		})
	}
	return sr
}

func runScenario(sc scenario) scenarioResult {
	cfg := sc.build()
	r, err := loadgen.Run(cfg)
	if err != nil {
		log.Fatalf("%s: %v", sc.name, err)
	}
	if r.LostDurable != 0 {
		log.Fatalf("%s: %d durable sessions lost — failover invariant broken", sc.name, r.LostDurable)
	}
	if r.Unplaced != 0 {
		log.Fatalf("%s: %d sessions never placed — scenario is under-provisioned", sc.name, r.Unplaced)
	}
	return toResult(sc.name, r)
}

func printRow(w *tabwriter.Writer, sr scenarioResult) {
	fmt.Fprintf(w, "%s\t%d\t%.0f/s\t%dµs\t%dµs\t%d→%d peak %d\t%d\t%d\t%d\n",
		sr.Name, sr.Sessions, sr.PlacedPerSec, sr.QueueWaitP50US, sr.QueueWaitP99US,
		sr.DaemonsOverTime[0], sr.FinalDaemons, sr.PeakDaemons,
		sr.Spills, sr.Failovers, sr.LostNonDurable)
}

func main() {
	out := flag.String("out", "BENCH_loadscale.json", "bench file to write (or verify with -check); empty disables")
	check := flag.Bool("check", false, "re-run scenarios within -cap and fail if the bench file is stale")
	cap := flag.Int("cap", 10_000, "with -check, only re-run scenarios of at most this many sessions")
	adhoc := flag.Int("sessions", 0, "additionally run an ad-hoc scenario at this scale (print only)")
	flag.Parse()

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "scenario\tsessions\tplaced\tp50 wait\tp99 wait\tdaemons\tspills\tfailovers\tlost")

	if *check {
		checkFresh(*out, *cap, w)
		return
	}

	var file benchFile
	file.Harness = "loadgen-v1"
	for _, sc := range scenarios() {
		sr := runScenario(sc)
		printRow(w, sr)
		file.Scenarios = append(file.Scenarios, sr)
	}
	w.Flush()

	if *adhoc > 0 {
		runAdhoc(*adhoc)
	}

	if *out == "" {
		return
	}
	blob, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// checkFresh re-runs every scenario small enough for the cap and compares
// its row against the committed bench file; any drift — code changed the
// numbers but the file was not regenerated — is a failure. Rows above the
// cap are only checked for presence (the full run regenerates them).
func checkFresh(path string, cap int, w *tabwriter.Writer) {
	blob, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("read %s: %v (run `make bench-scale` to generate it)", path, err)
	}
	var file benchFile
	if err := json.Unmarshal(blob, &file); err != nil {
		log.Fatalf("parse %s: %v", path, err)
	}
	committed := make(map[string]scenarioResult, len(file.Scenarios))
	for _, sr := range file.Scenarios {
		committed[sr.Name] = sr
	}

	stale := false
	for _, sc := range scenarios() {
		want, ok := committed[sc.name]
		if !ok {
			fmt.Printf("MISSING %s: not in %s\n", sc.name, path)
			stale = true
			continue
		}
		if want.Sessions > cap {
			fmt.Printf("skip %s: %d sessions over the %d check cap\n", sc.name, want.Sessions, cap)
			continue
		}
		got := runScenario(sc)
		printRow(w, got)
		if !equalResults(got, want) {
			gj, _ := json.Marshal(got)
			wj, _ := json.Marshal(want)
			fmt.Printf("STALE %s:\n  committed: %s\n  recomputed: %s\n", sc.name, wj, gj)
			stale = true
		}
	}
	w.Flush()
	if stale {
		log.Fatalf("%s is stale: run `make bench-scale` and commit the result", path)
	}
	fmt.Printf("%s is fresh\n", path)
}

func equalResults(a, b scenarioResult) bool {
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	return string(aj) == string(bj)
}

// runAdhoc runs one extra scenario at the requested scale — the nightly
// million-session run — and prints it without touching the bench file.
func runAdhoc(sessions int) {
	start := time.Now()
	r, err := loadgen.Run(loadgen.Config{
		Seed: 9, Sessions: sessions, Arrival: loadgen.Poisson,
		Rate: 100_000, Classes: mix(), InitialDaemons: 8, DaemonCapacity: 64,
		Autoscale: &broker.AutoscalerConfig{
			Min: 8, Max: 128, DaemonCapacity: 64, Cooldown: 250 * time.Millisecond,
		},
	})
	if err != nil {
		log.Fatalf("adhoc: %v", err)
	}
	if r.LostDurable != 0 {
		log.Fatalf("adhoc: %d durable sessions lost", r.LostDurable)
	}
	fmt.Printf("\nadhoc %d sessions: %.0f placements/s virtual, p99 wait %v, peak %d daemons, wall %v\n",
		sessions, r.PlacedPerSec, r.QueueWaitP99, r.PeakDaemons, time.Since(start).Round(time.Millisecond))
}

func round2(x float64) float64 { return float64(int(x*100+0.5)) / 100 }
