// Command rcuda-broker runs a batch of verified GPU jobs through a live pool
// of rCUDA daemons — the deployment-side analogue of the paper's cluster
// sizing study: instead of simulating how many jobs N remote GPU servers can
// absorb, it places real sessions on real daemons and reports the placement,
// spill, and failover accounting.
//
// Point it at running daemons (cmd/rcudad):
//
//	rcuda-broker -servers host1:8308,host2:8308 -policy least-loaded -jobs 12
//
// or let it spawn an in-process pool for a self-contained demo, killing one
// server mid-batch to exercise failover:
//
//	rcuda-broker -spawn 3 -kill -jobs 9
//
// or live-migrating a staged session between two daemons after the batch:
//
//	rcuda-broker -spawn 2 -migrate
//
// Every job generates its own input data, runs MM or FFT on the placed
// server, and verifies the result against a CPU oracle; a batch only counts
// as clean when every job verifies.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"rcuda/internal/broker"
	"rcuda/internal/calib"
	"rcuda/internal/cudart"
	"rcuda/internal/gpu"
	"rcuda/internal/kernels"
	"rcuda/internal/rcuda"
	"rcuda/internal/transport"
	"rcuda/internal/vclock"
	"rcuda/internal/workload"
)

type spawned struct {
	srv  *rcuda.Server
	ln   net.Listener
	addr string
}

func spawnServer(gpus int) (*spawned, error) {
	opts := []rcuda.ServerOption{rcuda.WithCloseGrace(200 * time.Millisecond)}
	if gpus > 1 {
		extra := make([]*gpu.Device, gpus-1)
		for i := range extra {
			extra[i] = gpu.New(gpu.Config{Clock: vclock.NewWall()})
		}
		opts = append(opts, rcuda.WithDevices(extra...))
	}
	srv := rcuda.NewServer(gpu.New(gpu.Config{Clock: vclock.NewWall()}), opts...)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() { _ = srv.Serve(ln) }()
	return &spawned{srv: srv, ln: ln, addr: ln.Addr().String()}, nil
}

func main() {
	servers := flag.String("servers", "", "comma-separated daemon addresses; empty spawns an in-process pool")
	spawn := flag.Int("spawn", 3, "number of in-process daemons to spawn when -servers is empty")
	gpus := flag.Int("gpus", 1, "devices per spawned daemon")
	policyName := flag.String("policy", "least-loaded", "placement policy: least-loaded, round-robin, network-aware, class-aware")
	jobs := flag.Int("jobs", 9, "number of jobs in the batch (alternating MM and FFT)")
	mm := flag.Int("mm", 64, "MM matrix dimension (multiple of 16)")
	fftBatch := flag.Int("fft", 8, "FFT batch size")
	probe := flag.Duration("probe", 100*time.Millisecond, "background health-probe interval")
	kill := flag.Bool("kill", false, "kill one spawned server mid-batch to exercise failover")
	migrate := flag.Bool("migrate", false, "after the batch, live-migrate a staged session between spawned servers and verify its state survived")
	flag.Parse()

	policy, err := broker.ParsePolicy(*policyName)
	if err != nil {
		log.Fatal(err)
	}

	var eps []broker.Endpoint
	var local []*spawned
	if *servers != "" {
		if *kill || *migrate {
			log.Fatal("-kill and -migrate only apply to spawned servers")
		}
		for _, addr := range strings.Split(*servers, ",") {
			addr := strings.TrimSpace(addr)
			eps = append(eps, broker.Endpoint{
				Name: addr,
				Dial: func() (transport.Conn, error) { return transport.DialTCP(addr) },
			})
		}
	} else {
		if *spawn < 1 {
			log.Fatalf("-spawn %d: need at least one server", *spawn)
		}
		for i := 0; i < *spawn; i++ {
			s, err := spawnServer(*gpus)
			if err != nil {
				log.Fatal(err)
			}
			local = append(local, s)
			addr := s.addr
			eps = append(eps, broker.Endpoint{
				Name: fmt.Sprintf("local-%d", i),
				Dial: func() (transport.Conn, error) { return transport.DialTCP(addr) },
			})
			log.Printf("spawned %s at %s (%d device(s))", eps[i].Name, addr, *gpus)
		}
		defer func() {
			for _, s := range local {
				_ = s.srv.Close()
			}
		}()
	}

	pool, err := broker.New(eps,
		broker.WithPolicy(policy),
		broker.WithProbeInterval(*probe))
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	pool.Refresh()

	// With -kill, the first job placed on the last spawned server pulls the
	// server out from under itself before doing its work, so the session is
	// lost mid-run and the pool must replay the job elsewhere.
	killed := false
	victimName := ""
	if *kill {
		if len(local) < 2 {
			log.Fatal("-kill needs at least two spawned servers")
		}
		victimName = eps[len(local)-1].Name
	}
	killVictim := func() {
		victim := local[len(local)-1]
		log.Printf("killing %s mid-job", victimName)
		_ = victim.ln.Close()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_ = victim.srv.Drain(ctx)
	}

	start := time.Now()
	failed := 0
	for i := 0; i < *jobs; i++ {
		cs, size := calib.MM, *mm
		if i%2 == 1 {
			cs, size = calib.FFT, *fftBatch
		}
		mod, err := kernels.ModuleFor(cs)
		if err != nil {
			log.Fatal(err)
		}
		img, err := mod.Binary()
		if err != nil {
			log.Fatal(err)
		}
		seed := int64(i) + 1
		err = pool.Run(img, broker.JobSpec{CS: cs, Size: size}, func(rt cudart.Runtime) error {
			if !killed && victimName != "" {
				if s, ok := rt.(*broker.Session); ok && s.Endpoint == victimName {
					killed = true
					killVictim()
				}
			}
			ok, err := workload.ExecuteFunctional(cs, size, rt, seed)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("job %d failed verification", i)
			}
			return nil
		})
		if err != nil {
			log.Printf("job %d (%v size %d): %v", i, cs, size, err)
			failed++
			continue
		}
		log.Printf("job %d (%v size %d): verified", i, cs, size)
	}
	elapsed := time.Since(start)

	fmt.Printf("\nbatch: %d jobs, %d failed, wall time %v, policy %s\n\n",
		*jobs, failed, elapsed.Round(time.Millisecond), policy)

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "endpoint\tup\tdevices\tsessions\tparked\tbytes\tbusy\tlast error")
	for _, st := range pool.Endpoints() {
		busy := time.Duration(st.BusyNanos).Round(time.Microsecond)
		lastErr := st.LastErr
		if lastErr == "" {
			lastErr = "-"
		}
		fmt.Fprintf(w, "%s\t%t\t%d\t%d\t%d\t%d\t%v\t%s\n",
			st.Name, st.Up, st.Devices, st.SessionsLive, st.SessionsParked,
			st.BytesInUse, busy, lastErr)
	}
	w.Flush()

	if *migrate {
		if err := migrateDemo(pool, local); err != nil {
			log.Printf("migrate demo: %v", err)
			failed++
		}
	}

	s := pool.Stats()
	fmt.Printf("\nplacements %d, spills %d, failovers %d, probes %d (%d failed), markdowns %d, markups %d\n",
		s.Placements, s.Spills, s.Failovers, s.Probes, s.ProbeFailures, s.Markdowns, s.Markups)
	fmt.Printf("migrations %d (%d bytes, %d failed), restores from checkpoint %d\n",
		s.Migrations, s.MigrationBytes, s.MigrationFailures, s.RestoreFromCheckpoint)
	if failed > 0 {
		os.Exit(1)
	}
}

// migrateDemo opens a durable session on one spawned daemon, uploads a
// payload, live-migrates the session to a pool-picked peer, and reads the
// payload back through the re-pointed route — proving the device state
// crossed daemons bit for bit with nothing replayed.
func migrateDemo(pool *broker.Pool, local []*spawned) error {
	if len(local) < 2 {
		return fmt.Errorf("-migrate needs at least two spawned servers")
	}
	mod, err := kernels.ModuleFor(calib.MM)
	if err != nil {
		return err
	}
	img, err := mod.Binary()
	if err != nil {
		return err
	}
	sess, err := pool.Open(img, broker.JobSpec{})
	if err != nil {
		return err
	}
	defer sess.Close()
	payload := make([]byte, 1<<16)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	ptr, err := sess.Malloc(uint32(len(payload)))
	if err != nil {
		return err
	}
	if err := sess.MemcpyToDevice(ptr, payload); err != nil {
		return err
	}
	// The pool holds handles to the spawned daemons, so it can drive the
	// source directly; find the one hosting the session.
	var src *rcuda.Server
	for i, s := range local {
		if fmt.Sprintf("local-%d", i) == sess.Endpoint {
			src = s.srv
		}
	}
	if src == nil {
		return fmt.Errorf("session landed on unknown endpoint %q", sess.Endpoint)
	}
	from := sess.Endpoint
	if err := pool.Migrate(sess, src); err != nil {
		return err
	}
	got := make([]byte, len(payload))
	if err := sess.MemcpyToHost(got, ptr); err != nil {
		return err
	}
	for i := range got {
		if got[i] != payload[i] {
			return fmt.Errorf("payload byte %d corrupted across migration", i)
		}
	}
	log.Printf("migrated session %d from %s to %s, %d-byte payload intact",
		sess.SessionID(), from, sess.Endpoint, len(payload))
	return nil
}
