// Command rcuda-bench-sched quantifies the PR 10 scheduler's headline
// result: the mixed-tenant starvation scenario — one greedy bulk tenant
// with a deep async pipeline sharing a device with latency-sensitive
// realtime tenants — under FIFO (the paper's arrival-order baseline) and
// under WFQ with priority classes. The scheduler must cut the realtime
// class's p99 queue wait by at least 5x while serving the same aggregate
// throughput within 10%: fairness is not allowed to cost bandwidth.
//
// Every scenario runs on sched.Simulate's virtual clock, so results are a
// pure function of the seed; each scenario is run twice and must reproduce
// byte for byte before it is written. The committed artifact is
// BENCH_sched.json:
//
//	rcuda-bench-sched                  # run all scenarios, refresh BENCH_sched.json
//	rcuda-bench-sched -out ""          # print only
//	rcuda-bench-sched -check           # CI: re-run and fail if the file is stale
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"rcuda/internal/sched"
)

// scenario is one named, fully-pinned tenant mix. Both policies run the
// same mix from the same seed, so the only variable is the grant order.
type scenario struct {
	name  string
	seed  int64
	dur   time.Duration
	mix   func() []sched.TenantSpec
	gates gates
}

// gates are the per-scenario acceptance thresholds; zero disables a gate.
type gates struct {
	// minP99Improvement is the minimum fifoP99/wfqP99 ratio for the
	// realtime class.
	minP99Improvement float64
	// maxThroughputDelta bounds |served_wfq - served_fifo| / served_fifo.
	maxThroughputDelta float64
	// servedRatio, when non-zero, asserts tenant 0's served count is this
	// multiple of tenant 1's under WFQ, within servedRatioTol.
	servedRatio    float64
	servedRatioTol float64
}

// bulkTenant is the greedy pipeline: a batch-class tenant whose backlog
// keeps the device saturated — exactly what FIFO makes everyone wait
// behind.
func bulkTenant(backlog int, opCost time.Duration) sched.TenantSpec {
	return sched.TenantSpec{
		Name: "bulk", Class: sched.Batch, Weight: 1,
		OpCost: opCost, Backlog: backlog,
	}
}

func scenarios() []scenario {
	return []scenario{
		// The headline: one bulk tenant with a 64-deep pipeline of 500µs
		// ops, eight realtime tenants each firing a sporadic 50µs op every
		// ~2ms. Under FIFO every realtime op queues behind the whole
		// pipeline; under WFQ the realtime class's 100x weight lifts it past
		// the backlog at the next op boundary.
		{
			name: "starvation-1bulk-8rt", seed: 7, dur: 5 * time.Second,
			mix: func() []sched.TenantSpec {
				ts := []sched.TenantSpec{bulkTenant(64, 500*time.Microsecond)}
				for i := 0; i < 8; i++ {
					ts = append(ts, sched.TenantSpec{
						Name: fmt.Sprintf("rt-%d", i), Class: sched.Realtime, Weight: 1,
						OpCost: 50 * time.Microsecond, MeanGap: 2 * time.Millisecond,
					})
				}
				return ts
			},
			gates: gates{minP99Improvement: 5, maxThroughputDelta: 0.10},
		},
		// Same shape at 32 tenants: the improvement must hold when the
		// latency-sensitive population itself carries real load.
		{
			name: "starvation-1bulk-32rt", seed: 11, dur: 5 * time.Second,
			mix: func() []sched.TenantSpec {
				ts := []sched.TenantSpec{bulkTenant(64, 500*time.Microsecond)}
				for i := 0; i < 32; i++ {
					ts = append(ts, sched.TenantSpec{
						Name: fmt.Sprintf("rt-%d", i), Class: sched.Realtime, Weight: 1,
						OpCost: 50 * time.Microsecond, MeanGap: 8 * time.Millisecond,
					})
				}
				return ts
			},
			gates: gates{minP99Improvement: 5, maxThroughputDelta: 0.10},
		},
		// Weight proportionality inside one class: two saturating batch
		// tenants at 2:1 session weights must split the device 2:1 under
		// WFQ (FIFO splits it 1:1 — recorded for contrast).
		{
			name: "weighted-share-2to1", seed: 3, dur: 2 * time.Second,
			mix: func() []sched.TenantSpec {
				heavy := bulkTenant(16, 200*time.Microsecond)
				heavy.Name, heavy.Weight = "heavy", 2
				light := bulkTenant(16, 200*time.Microsecond)
				light.Name, light.Weight = "light", 1
				return []sched.TenantSpec{heavy, light}
			},
			gates: gates{maxThroughputDelta: 0.10, servedRatio: 2, servedRatioTol: 0.05},
		},
	}
}

// classRow is one class's outcome under one policy.
type classRow struct {
	Class     string `json:"class"`
	Served    uint64 `json:"served"`
	WaitP50US int64  `json:"wait_p50_us"`
	WaitP99US int64  `json:"wait_p99_us"`
	WaitMaxUS int64  `json:"wait_max_us"`
}

// policyRow is one policy's outcome on a scenario.
type policyRow struct {
	TotalServed uint64     `json:"total_served"`
	BusyFrac    float64    `json:"busy_frac"`
	Preemptions uint64     `json:"preemptions"`
	Classes     []classRow `json:"classes"`
}

// scenarioResult is one scenario's row in the bench file.
type scenarioResult struct {
	Name       string    `json:"name"`
	Seed       int64     `json:"seed"`
	DurationMS int64     `json:"duration_ms"`
	Tenants    int       `json:"tenants"`
	FIFO       policyRow `json:"fifo"`
	WFQ        policyRow `json:"wfq"`
	// RTP99ImprovementX is fifo/wfq for the realtime class's p99 queue
	// wait — the headline number (0 when the mix has no realtime class).
	RTP99ImprovementX float64 `json:"rt_p99_improvement_x,omitempty"`
	// ThroughputDeltaFrac is |wfq-fifo|/fifo over total served ops.
	ThroughputDeltaFrac float64 `json:"throughput_delta_frac"`
}

type benchFile struct {
	Harness   string           `json:"harness"`
	Scenarios []scenarioResult `json:"scenarios"`
}

func toPolicyRow(r *sched.SimResult) policyRow {
	row := policyRow{
		TotalServed: r.TotalServed,
		BusyFrac:    round4(r.BusyFrac),
		Preemptions: r.Preemptions,
	}
	for _, c := range r.Classes {
		row.Classes = append(row.Classes, classRow{
			Class:     c.Class.String(),
			Served:    c.Served,
			WaitP50US: c.WaitP50.Microseconds(),
			WaitP99US: c.WaitP99.Microseconds(),
			WaitMaxUS: c.WaitMax.Microseconds(),
		})
	}
	return row
}

// classP99 extracts one class's p99 wait from a run, 0 if absent.
func classP99(r *sched.SimResult, class sched.Class) time.Duration {
	for _, c := range r.Classes {
		if c.Class == class {
			return c.WaitP99
		}
	}
	return 0
}

// simulateTwice runs the config twice and insists the runs agree byte for
// byte — the determinism contract the freshness check depends on.
func simulateTwice(name string, cfg sched.SimConfig) *sched.SimResult {
	a := sched.Simulate(cfg)
	b := sched.Simulate(cfg)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		log.Fatalf("%s: two identically-seeded %s runs diverged:\n%s\n%s", name, cfg.Policy, ja, jb)
	}
	return a
}

func runScenario(sc scenario) scenarioResult {
	base := sched.SimConfig{Seed: sc.seed, Duration: sc.dur, Tenants: sc.mix()}
	fifoCfg, wfqCfg := base, base
	fifoCfg.Policy, wfqCfg.Policy = sched.FIFO, sched.WFQ
	fifoCfg.Tenants, wfqCfg.Tenants = sc.mix(), sc.mix()
	fifo := simulateTwice(sc.name, fifoCfg)
	wfq := simulateTwice(sc.name, wfqCfg)

	sr := scenarioResult{
		Name:       sc.name,
		Seed:       sc.seed,
		DurationMS: sc.dur.Milliseconds(),
		Tenants:    len(base.Tenants),
		FIFO:       toPolicyRow(fifo),
		WFQ:        toPolicyRow(wfq),
	}
	if fifo.TotalServed > 0 {
		delta := float64(int64(wfq.TotalServed) - int64(fifo.TotalServed))
		if delta < 0 {
			delta = -delta
		}
		sr.ThroughputDeltaFrac = round4(delta / float64(fifo.TotalServed))
	}
	fifoP99, wfqP99 := classP99(fifo, sched.Realtime), classP99(wfq, sched.Realtime)
	if wfqP99 > 0 {
		sr.RTP99ImprovementX = round2(float64(fifoP99) / float64(wfqP99))
	}

	// Acceptance gates: the bench refuses to write a result that breaks
	// the PR's fairness claims, so a regression fails CI loudly rather
	// than silently rewriting the artifact.
	g := sc.gates
	if g.minP99Improvement > 0 && sr.RTP99ImprovementX < g.minP99Improvement {
		log.Fatalf("%s: realtime p99 improved only %.2fx (fifo %v, wfq %v), want >= %.0fx",
			sc.name, sr.RTP99ImprovementX, fifoP99, wfqP99, g.minP99Improvement)
	}
	if g.maxThroughputDelta > 0 && sr.ThroughputDeltaFrac > g.maxThroughputDelta {
		log.Fatalf("%s: throughput delta %.4f exceeds %.2f (fifo %d, wfq %d served)",
			sc.name, sr.ThroughputDeltaFrac, g.maxThroughputDelta, fifo.TotalServed, wfq.TotalServed)
	}
	if g.servedRatio > 0 {
		a, b := wfq.Tenants[0].Served, wfq.Tenants[1].Served
		ratio := float64(a) / float64(b)
		if ratio < g.servedRatio*(1-g.servedRatioTol) || ratio > g.servedRatio*(1+g.servedRatioTol) {
			log.Fatalf("%s: served ratio %.3f (%d:%d) outside %.1f±%.0f%%",
				sc.name, ratio, a, b, g.servedRatio, g.servedRatioTol*100)
		}
	}
	return sr
}

func printRow(w *tabwriter.Writer, sr scenarioResult) {
	rtFIFO, rtWFQ := int64(0), int64(0)
	for _, c := range sr.FIFO.Classes {
		if c.Class == "realtime" {
			rtFIFO = c.WaitP99US
		}
	}
	for _, c := range sr.WFQ.Classes {
		if c.Class == "realtime" {
			rtWFQ = c.WaitP99US
		}
	}
	fmt.Fprintf(w, "%s\t%d\t%dµs\t%dµs\t%.1fx\t%.2f%%\t%d\n",
		sr.Name, sr.Tenants, rtFIFO, rtWFQ, sr.RTP99ImprovementX,
		sr.ThroughputDeltaFrac*100, sr.WFQ.Preemptions)
}

func main() {
	out := flag.String("out", "BENCH_sched.json", "bench file to write (or verify with -check); empty disables")
	check := flag.Bool("check", false, "re-run scenarios and fail if the bench file is stale")
	flag.Parse()

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "scenario\ttenants\trt p99 fifo\trt p99 wfq\timprovement\tthpt delta\tpreemptions")

	var file benchFile
	file.Harness = "sched-bench-v1"
	for _, sc := range scenarios() {
		sr := runScenario(sc)
		printRow(w, sr)
		file.Scenarios = append(file.Scenarios, sr)
	}
	w.Flush()

	if *out == "" {
		return
	}
	blob, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if *check {
		committed, err := os.ReadFile(*out)
		if err != nil {
			log.Fatalf("read %s: %v (run `make bench-sched` to generate it)", *out, err)
		}
		if string(committed) != string(blob) {
			log.Fatalf("%s is stale: run `make bench-sched` and commit the result", *out)
		}
		fmt.Printf("%s is fresh\n", *out)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func round2(x float64) float64 { return float64(int(x*100+0.5)) / 100 }

func round4(x float64) float64 { return float64(int(x*10000+0.5)) / 10000 }
