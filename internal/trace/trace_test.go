package trace

import (
	"strings"
	"testing"
	"time"

	"rcuda/internal/protocol"
	"rcuda/internal/vclock"
)

func TestPhaseMapping(t *testing.T) {
	cases := map[protocol.Op]Phase{
		protocol.OpInit:              PhaseInit,
		protocol.OpMalloc:            PhaseAlloc,
		protocol.OpMemcpyToDevice:    PhaseInput,
		protocol.OpLaunch:            PhaseKernel,
		protocol.OpDeviceSynchronize: PhaseKernel,
		protocol.OpMemcpyToHost:      PhaseOutput,
		protocol.OpFree:              PhaseRelease,
		protocol.OpFinalize:          PhaseFinalize,
	}
	for op, want := range cases {
		if got := PhaseOf(op); got != want {
			t.Errorf("PhaseOf(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestPhaseStrings(t *testing.T) {
	for p := PhaseInit; p < numPhases; p++ {
		if s := p.String(); s == "" || strings.HasPrefix(s, "Phase(") {
			t.Fatalf("phase %d has no name", p)
		}
	}
	if Phase(99).String() != "Phase(99)" {
		t.Fatal("unknown phase formatting")
	}
}

func TestRecorderTimeline(t *testing.T) {
	clk := vclock.NewSim()
	rec := NewRecorder(clk)

	clk.Sleep(10 * time.Millisecond)
	rec.Call(protocol.OpInit, 21490, 12)
	clk.Sleep(5 * time.Millisecond)
	rec.Call(protocol.OpMalloc, 8, 8)
	clk.Sleep(100 * time.Millisecond)
	rec.Call(protocol.OpMemcpyToDevice, 1<<20, 4)
	clk.Sleep(50 * time.Millisecond)
	rec.Call(protocol.OpLaunch, 68, 4)
	clk.Sleep(80 * time.Millisecond)
	rec.Call(protocol.OpMemcpyToHost, 20, 1<<20)
	clk.Sleep(time.Millisecond)
	rec.Call(protocol.OpFree, 8, 4)
	rec.Call(protocol.OpFinalize, 4, 0)

	events := rec.Events()
	if len(events) != 7 {
		t.Fatalf("recorded %d events, want 7", len(events))
	}
	if events[0].At != 10*time.Millisecond {
		t.Fatalf("first event at %v", events[0].At)
	}

	bd := rec.PhaseBreakdown(0)
	if len(bd) != int(numPhases) {
		t.Fatalf("breakdown has %d phases", len(bd))
	}
	get := func(p Phase) Breakdown { return bd[p] }
	if got := get(PhaseInit).Time; got != 10*time.Millisecond {
		t.Fatalf("init phase %v", got)
	}
	if got := get(PhaseInput).Time; got != 100*time.Millisecond {
		t.Fatalf("input phase %v", got)
	}
	if got := get(PhaseKernel).Time; got != 50*time.Millisecond {
		t.Fatalf("kernel phase %v", got)
	}
	if got := get(PhaseOutput).Time; got != 80*time.Millisecond {
		t.Fatalf("output phase %v", got)
	}
	if get(PhaseInput).SendBytes != 1<<20 {
		t.Fatal("input bytes")
	}
	if get(PhaseOutput).RecvBytes != 1<<20 {
		t.Fatal("output bytes")
	}
	var total time.Duration
	for _, b := range bd {
		total += b.Time
	}
	if total != clk.Now() {
		t.Fatalf("phase times sum to %v, clock at %v", total, clk.Now())
	}
}

func TestRenderContainsPhasesAndOps(t *testing.T) {
	rec := NewRecorder(vclock.NewSim())
	rec.Call(protocol.OpInit, 21490, 12)
	rec.Call(protocol.OpMalloc, 8, 8)
	rec.Call(protocol.OpLaunch, 68, 4)
	out := rec.Render()
	for _, want := range []string{"Initialization", "Memory allocation", "Kernel execution", "cudaMalloc", "cudaLaunch", "21490"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyRecorder(t *testing.T) {
	rec := NewRecorder(vclock.NewSim())
	if len(rec.Events()) != 0 {
		t.Fatal("fresh recorder has events")
	}
	bd := rec.PhaseBreakdown(0)
	for _, b := range bd {
		if b.Calls != 0 || b.Time != 0 {
			t.Fatalf("empty breakdown has data: %+v", b)
		}
	}
	if out := rec.Render(); !strings.Contains(out, "Client") {
		t.Fatal("render header missing")
	}
}

func TestCSVExport(t *testing.T) {
	clk := vclock.NewSim()
	rec := NewRecorder(clk)
	clk.Sleep(time.Millisecond)
	rec.Call(protocol.OpMalloc, 8, 8)
	out := rec.CSV()
	if !strings.Contains(out, "op,phase,send_bytes,recv_bytes,completed_us") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, `"cudaMalloc","Memory allocation",8,8,1000.0`) {
		t.Fatalf("missing event row:\n%s", out)
	}
}
