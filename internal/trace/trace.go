// Package trace records the client–server dialogue of an rCUDA session and
// renders it as the paper's Figure 2: the sequence of messages a kernel
// execution exchanges, grouped into the seven phases of Section III
// (initialization, memory allocation, input data transfer, kernel
// execution, output data transfer, memory release, finalization).
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"rcuda/internal/protocol"
	"rcuda/internal/vclock"
)

// Phase is one of the seven execution phases of Section III.
type Phase int

// Execution phases in order.
const (
	PhaseInit Phase = iota
	PhaseAlloc
	PhaseInput
	PhaseKernel
	PhaseOutput
	PhaseRelease
	PhaseFinalize
	numPhases
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseInit:
		return "Initialization"
	case PhaseAlloc:
		return "Memory allocation"
	case PhaseInput:
		return "Input data transfer"
	case PhaseKernel:
		return "Kernel execution"
	case PhaseOutput:
		return "Output data transfer"
	case PhaseRelease:
		return "Memory release"
	case PhaseFinalize:
		return "Finalization"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// PhaseOf maps a protocol operation to its phase.
func PhaseOf(op protocol.Op) Phase {
	switch op {
	case protocol.OpInit:
		return PhaseInit
	case protocol.OpMalloc:
		return PhaseAlloc
	case protocol.OpMemcpyToDevice:
		return PhaseInput
	case protocol.OpLaunch, protocol.OpDeviceSynchronize:
		return PhaseKernel
	case protocol.OpMemcpyToHost:
		return PhaseOutput
	case protocol.OpFree:
		return PhaseRelease
	default:
		return PhaseFinalize
	}
}

// Event is one completed remote call.
type Event struct {
	Op        protocol.Op
	SendBytes int
	RecvBytes int
	// At is the clock instant the call completed.
	At time.Duration
}

// Recorder implements rcuda.Observer: it timestamps every remote call on
// the given clock. It is safe for concurrent use.
type Recorder struct {
	clock vclock.Clock

	mu     sync.Mutex
	events []Event
}

// NewRecorder creates a recorder stamping events on c.
func NewRecorder(c vclock.Clock) *Recorder { return &Recorder{clock: c} }

// Call implements the observer contract.
func (r *Recorder) Call(op protocol.Op, sentBytes, recvBytes int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, Event{
		Op:        op,
		SendBytes: sentBytes,
		RecvBytes: recvBytes,
		At:        r.clock.Now(),
	})
}

// Events returns a copy of the recorded events in completion order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Breakdown aggregates per-phase wall time (the interval from the previous
// event's completion to this one's) and traffic.
type Breakdown struct {
	Phase     Phase
	Calls     int
	SendBytes int64
	RecvBytes int64
	Time      time.Duration
}

// PhaseBreakdown summarizes the recording per phase, in phase order. The
// first event's interval is measured from the given session start instant.
func (r *Recorder) PhaseBreakdown(sessionStart time.Duration) []Breakdown {
	events := r.Events()
	out := make([]Breakdown, numPhases)
	for i := range out {
		out[i].Phase = Phase(i)
	}
	prev := sessionStart
	for _, e := range events {
		b := &out[PhaseOf(e.Op)]
		b.Calls++
		b.SendBytes += int64(e.SendBytes)
		b.RecvBytes += int64(e.RecvBytes)
		b.Time += e.At - prev
		prev = e.At
	}
	return out
}

// CSV renders the recorded events as comma-separated lines — one event per
// row with its operation, payload sizes, and completion instant in
// microseconds — for external plotting of the Figure 2 timeline.
func (r *Recorder) CSV() string {
	var sb strings.Builder
	sb.WriteString("op,phase,send_bytes,recv_bytes,completed_us\n")
	for _, e := range r.Events() {
		fmt.Fprintf(&sb, "%q,%q,%d,%d,%.1f\n",
			e.Op, PhaseOf(e.Op), e.SendBytes, e.RecvBytes,
			float64(e.At)/float64(time.Microsecond))
	}
	return sb.String()
}

// Render draws the session as an ASCII sequence diagram in the style of
// Figure 2: one arrow pair per remote call, annotated with payload sizes,
// grouped under phase headings.
func (r *Recorder) Render() string {
	var sb strings.Builder
	sb.WriteString("Client                                            Server\n")
	sb.WriteString("  |                                                  |\n")
	var lastPhase Phase = -1
	for _, e := range r.Events() {
		if p := PhaseOf(e.Op); p != lastPhase {
			fmt.Fprintf(&sb, "  |-- %s %s\n", p, strings.Repeat("-", max(0, 44-len(p.String()))))
			lastPhase = p
		}
		fmt.Fprintf(&sb, "  |--- %-22s (%6d B) --------------->|\n", e.Op, e.SendBytes)
		if e.RecvBytes > 0 {
			fmt.Fprintf(&sb, "  |<-- result %28s (%6d B) ---|\n", "", e.RecvBytes)
		}
		fmt.Fprintf(&sb, "  |   t=%-12s %31s|\n", e.At, "")
	}
	return sb.String()
}
