//go:build !race

package transport

const raceDetectorEnabled = false
