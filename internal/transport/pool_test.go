package transport

import "testing"

func TestPoolClassBuckets(t *testing.T) {
	cases := []struct {
		n    int
		want int
	}{
		{0, 0},
		{1, 0},
		{64, 0},
		{65, 1},
		{128, 1},
		{1 << 20, 20 - minPoolClass},
		{1 << maxPoolClass, maxPoolClass - minPoolClass},
		{1<<maxPoolClass + 1, -1},
	}
	for _, c := range cases {
		if got := poolClass(c.n); got != c.want {
			t.Errorf("poolClass(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestGetBufferCapacityAndReuse(t *testing.T) {
	buf, _ := GetBuffer(100)
	if len(buf) != 0 || cap(buf) < 100 {
		t.Fatalf("GetBuffer(100): len %d cap %d", len(buf), cap(buf))
	}
	if cap(buf) != 128 {
		t.Fatalf("GetBuffer(100) should round up to the 128 B class, got cap %d", cap(buf))
	}
	PutBuffer(buf)
	again, hit := GetBuffer(70)
	if !hit && !raceDetectorEnabled {
		t.Fatal("a just-recycled buffer of the same class must be a pool hit")
	}
	if cap(again) != 128 {
		t.Fatalf("reused buffer cap %d, want 128", cap(again))
	}
}

func TestGetBufferOversizeUnpooled(t *testing.T) {
	n := 1<<maxPoolClass + 1
	buf, hit := GetBuffer(n)
	if hit {
		t.Fatal("oversize request cannot be a pool hit")
	}
	if cap(buf) != n {
		t.Fatalf("oversize buffer cap %d, want exactly %d", cap(buf), n)
	}
	// PutBuffer must silently drop it rather than poison a bucket.
	PutBuffer(buf)
}

func TestPutBufferDropsUndersized(t *testing.T) {
	// A sub-class slice (e.g. a frame payload resliced below its class
	// floor) must not go back: a later Get of its apparent class would
	// receive a too-small buffer.
	odd := make([]byte, 0, 100) // class says 128, capacity says 100
	PutBuffer(odd)
	buf, hit := GetBuffer(128)
	for hit && cap(buf) >= 128 {
		// Drain anything valid other tests left in the bucket.
		buf, hit = GetBuffer(128)
	}
	if hit {
		t.Fatalf("pool served an undersized buffer: cap %d", cap(buf))
	}
}
