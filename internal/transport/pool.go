package transport

import (
	"math/bits"
	"sync"
)

// Frame-buffer pool shared by every connection in the process. Frames are
// the hot allocation of the data path — one per message in each direction —
// and memcpy payloads make them large, so recycling them removes nearly all
// steady-state garbage from the middleware. Buffers are bucketed by
// power-of-two capacity so a request for n bytes reuses any buffer of the
// next class up.
const (
	minPoolClass = 6  // 64 B — below this, pooling costs more than it saves
	maxPoolClass = 26 // 64 MiB — beyond this, let the GC handle it
)

var framePools [maxPoolClass - minPoolClass + 1]sync.Pool

// holderPool recycles the *[]byte boxes the frame pools store. Pooling the
// box keeps Get/Put allocation-free in steady state: a pointer moves in and
// out of a sync.Pool without boxing, whereas a bare slice header would be
// re-boxed (one allocation) on every Put.
var holderPool = sync.Pool{New: func() any { return new([]byte) }}

// poolClass returns the bucket index for a buffer of n bytes, or -1 when n
// is too large to pool.
func poolClass(n int) int {
	if n <= 0 {
		return 0
	}
	c := bits.Len(uint(n - 1)) // ceil(log2 n)
	if c < minPoolClass {
		c = minPoolClass
	}
	if c > maxPoolClass {
		return -1
	}
	return c - minPoolClass
}

// GetBuffer returns a zero-length buffer with capacity at least n, reusing
// a pooled one when available. hit reports whether the pool had one.
func GetBuffer(n int) (buf []byte, hit bool) {
	c := poolClass(n)
	if c < 0 {
		return make([]byte, 0, n), false
	}
	if v := framePools[c].Get(); v != nil {
		h := v.(*[]byte)
		b := *h
		*h = nil
		holderPool.Put(h)
		return b[:0], true
	}
	return make([]byte, 0, 1<<(c+minPoolClass)), false
}

// PutBuffer recycles a buffer obtained from GetBuffer (or any buffer the
// caller no longer needs). Oversize and undersize buffers are dropped.
func PutBuffer(b []byte) {
	c := poolClass(cap(b))
	if c < 0 || cap(b) < 1<<(c+minPoolClass) {
		// A buffer smaller than its class's floor would under-serve the
		// next Get of that class; only perfectly-classed buffers go back.
		return
	}
	h := holderPool.Get().(*[]byte)
	*h = b[:0]
	framePools[c].Put(h)
}
