package transport

import (
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"

	"rcuda/internal/faults"
	"rcuda/internal/netsim"
	"rcuda/internal/protocol"
	"rcuda/internal/vclock"
)

// tcpPair returns two connected TCPConns over a real loopback socket.
func tcpPair(t *testing.T) (a, b *TCPConn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			t.Error(err)
			close(accepted)
			return
		}
		accepted <- c
	}()
	ca, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cb, ok := <-accepted
	if !ok {
		t.Fatal("accept failed")
	}
	a, b = NewTCPConn(ca), NewTCPConn(cb)
	t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
	return a, b
}

// TestFaultyConnInjectsReset drives a scripted reset and checks the typed
// error, the inner close, and the fault counter.
func TestFaultyConnInjectsReset(t *testing.T) {
	a, b := tcpPair(t)
	fc := NewFaultyConn(a, faults.Script(
		faults.Injection{Op: 1, Dir: faults.DirSend, Decision: faults.Decision{Kind: faults.KindReset}},
	))
	if err := fc.Send(&protocol.MallocRequest{Size: 1}); err != nil {
		t.Fatalf("clean op 0: %v", err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatalf("peer recv of clean frame: %v", err)
	}
	err := fc.Send(&protocol.MallocRequest{Size: 2})
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("op 1: got %v, want ErrInjectedReset", err)
	}
	// The inner connection must be dead: the peer sees EOF.
	if _, err := b.Recv(); !errors.Is(err, io.EOF) {
		t.Fatalf("peer after reset: got %v, want EOF", err)
	}
	if st := fc.Stats(); st.FaultsInjected != 1 {
		t.Fatalf("FaultsInjected = %d, want 1", st.FaultsInjected)
	}
}

// TestFaultyConnTruncatesFrameOnWire checks the satellite contract: a
// frame cut mid-payload surfaces on the peer as ErrTruncatedFrame, which
// wraps io.ErrUnexpectedEOF.
func TestFaultyConnTruncatesFrameOnWire(t *testing.T) {
	a, b := tcpPair(t)
	fc := NewFaultyConn(a, faults.Script(
		faults.Injection{Op: 0, Dir: faults.DirSend, Decision: faults.Decision{Kind: faults.KindTruncate, KeepBytes: 10}},
	))
	err := fc.Send(&protocol.MemcpyToDeviceRequest{Dst: 1, Data: make([]byte, 64)})
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("local side: got %v, want ErrInjectedReset", err)
	}
	_, rerr := b.Recv()
	if !errors.Is(rerr, ErrTruncatedFrame) {
		t.Fatalf("peer: got %v, want ErrTruncatedFrame", rerr)
	}
	if !errors.Is(rerr, io.ErrUnexpectedEOF) {
		t.Fatalf("peer: %v does not wrap io.ErrUnexpectedEOF", rerr)
	}
}

// TestTCPRecvClassifiesTruncation exercises the raw classification without
// FaultyConn: a header promising more payload than arrives, and a torn
// header, both map to ErrTruncatedFrame; a clean close stays io.EOF.
func TestTCPRecvClassifiesTruncation(t *testing.T) {
	cut := func(t *testing.T, raw []byte, wantTruncated bool) {
		t.Helper()
		a, b := tcpPair(t)
		if _, err := a.c.Write(raw); err != nil {
			t.Fatal(err)
		}
		_ = a.Close()
		_, err := b.Recv()
		if wantTruncated {
			if !errors.Is(err, ErrTruncatedFrame) || !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("got %v, want ErrTruncatedFrame wrapping io.ErrUnexpectedEOF", err)
			}
		} else if !errors.Is(err, io.EOF) || errors.Is(err, ErrTruncatedFrame) {
			t.Fatalf("got %v, want plain io.EOF", err)
		}
	}
	t.Run("mid-payload", func(t *testing.T) { cut(t, []byte{10, 0, 0, 0, 1, 2, 3}, true) })
	t.Run("zero-payload-bytes", func(t *testing.T) { cut(t, []byte{4, 0, 0, 0}, true) })
	t.Run("mid-header", func(t *testing.T) { cut(t, []byte{9, 0}, true) })
	t.Run("clean-close", func(t *testing.T) { cut(t, nil, false) })
}

// TestFaultyConnPartialWriteIsTransparent checks a split frame reassembles
// byte-identically on the peer.
func TestFaultyConnPartialWriteIsTransparent(t *testing.T) {
	a, b := tcpPair(t)
	fc := NewFaultyConn(a, faults.Script(
		faults.Injection{Op: 0, Dir: faults.DirSend, Decision: faults.Decision{Kind: faults.KindPartialWrite, KeepBytes: 7}},
	))
	msg := &protocol.MemcpyToDeviceRequest{Dst: 9, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	if err := fc.Send(msg); err != nil {
		t.Fatalf("split send: %v", err)
	}
	payload, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	req, err := protocol.DecodeRequest(payload)
	if err != nil {
		t.Fatalf("peer decode after split: %v", err)
	}
	got, ok := req.(*protocol.MemcpyToDeviceRequest)
	if !ok || got.Dst != 9 || len(got.Data) != 8 {
		t.Fatalf("peer decoded %#v", req)
	}
	if st := fc.Stats(); st.FaultsInjected != 1 {
		t.Fatalf("FaultsInjected = %d, want 1", st.FaultsInjected)
	}
}

// TestFaultyConnStallSurfacesDeadline checks a stall fails with the
// os.ErrDeadlineExceeded class retry logic keys on.
func TestFaultyConnStallSurfacesDeadline(t *testing.T) {
	a, _ := tcpPair(t)
	fc := NewFaultyConn(a, faults.Script(
		faults.Injection{Op: 0, Dir: faults.DirRecv, Decision: faults.Decision{Kind: faults.KindStall, Delay: time.Millisecond}},
	))
	start := time.Now()
	_, err := fc.Recv()
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("got %v, want os.ErrDeadlineExceeded", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("stall did not block for its delay")
	}
}

// TestFaultyConnPreservesPipeCapabilities checks wrapping a PipeEnd keeps
// the simulated-clock interfaces and that injected resets work there too.
func TestFaultyConnPreservesPipeCapabilities(t *testing.T) {
	clk := vclock.NewSim()
	cli, srv := Pipe(netsim.IB40G(), clk, nil)
	fc := NewFaultyConn(cli, faults.Script(
		faults.Injection{Op: 1, Dir: faults.DirSend, Decision: faults.Decision{Kind: faults.KindReset}},
	))
	if _, ok := fc.(TimedReceiver); !ok {
		t.Fatal("wrapped pipe lost TimedReceiver")
	}
	if _, ok := fc.(ScheduledSender); !ok {
		t.Fatal("wrapped pipe lost ScheduledSender")
	}
	if err := fc.Send(&protocol.SyncRequest{}); err != nil {
		t.Fatalf("clean pipe send: %v", err)
	}
	if _, err := srv.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := fc.Send(&protocol.SyncRequest{}); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("got %v, want ErrInjectedReset", err)
	}
	if _, err := srv.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("peer after pipe reset: got %v, want ErrClosed", err)
	}
}

// TestFaultyConnPipeTruncationMalformsPeerDecode checks the pipe's
// truncation analogue: the peer receives a short payload that fails to
// decode, and the connection is closed.
func TestFaultyConnPipeTruncationMalformsPeerDecode(t *testing.T) {
	clk := vclock.NewSim()
	cli, srv := Pipe(netsim.IB40G(), clk, nil)
	fc := NewFaultyConn(cli, faults.Script(
		faults.Injection{Op: 0, Dir: faults.DirSend, Decision: faults.Decision{Kind: faults.KindTruncate, KeepBytes: 6}},
	))
	err := fc.Send(&protocol.MemcpyToDeviceRequest{Dst: 1, Data: make([]byte, 32)})
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("local: got %v, want ErrInjectedReset", err)
	}
	payload, rerr := srv.Recv()
	if rerr != nil {
		t.Fatalf("pipe truncation should deliver the short payload, got %v", rerr)
	}
	if len(payload) != 6 {
		t.Fatalf("peer got %d bytes, want 6", len(payload))
	}
	if _, derr := protocol.DecodeRequest(payload); derr == nil {
		t.Fatal("truncated payload decoded cleanly")
	}
	if _, err := srv.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("connection survived truncation: %v", err)
	}
}

// TestFaultyConnCleanPassThrough runs a seeded plan with zero rates plus a
// nil plan and checks both are transparent.
func TestFaultyConnCleanPassThrough(t *testing.T) {
	for _, plan := range []*faults.Plan{nil, faults.Seeded(1, faults.Config{})} {
		a, b := tcpPair(t)
		fc := NewFaultyConn(a, plan)
		for i := 0; i < 10; i++ {
			if err := fc.Send(&protocol.FreeRequest{DevPtr: uint32(i)}); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Recv(); err != nil {
				t.Fatal(err)
			}
		}
		if st := fc.Stats(); st.FaultsInjected != 0 || st.MessagesSent != 10 {
			t.Fatalf("pass-through stats: %+v", st)
		}
	}
}
