package transport

import (
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"rcuda/internal/faults"
	"rcuda/internal/protocol"
)

// ErrInjectedReset marks a connection torn down by an injected fault, the
// deterministic stand-in for a peer RST or abrupt process death. Retry
// logic classifies it exactly like a real connection reset.
var ErrInjectedReset = errors.New("transport: injected connection reset")

// truncatedSender is implemented by connections that can emit a frame cut
// short on the wire; the peer then observes a genuine truncation.
type truncatedSender interface {
	sendTruncated(m protocol.Message, keep int) error
}

// splitSender is implemented by connections that can emit one frame across
// two raw writes, exercising the peer's mid-frame reassembly.
type splitSender interface {
	sendSplit(m protocol.Message, firstN int) error
}

// FaultyConn wraps a Conn and injects the faults a faults.Plan schedules:
// connection resets, mid-frame truncations, latency spikes, partial
// writes, and stalls. With a nil or empty plan it is a transparent
// pass-through, so the same construction serves fault-free control runs.
//
// Faults are injected per operation, before the underlying Send or Recv.
// Kinds that tear the connection down (reset, truncate, stall) close the
// inner connection so both sides converge on a dead transport, exactly as
// a real network fault would leave them.
type FaultyConn struct {
	inner    Conn
	plan     *faults.Plan
	injected atomic.Int64
}

var _ Conn = (*FaultyConn)(nil)

// NewFaultyConn wraps inner with the given fault plan. When inner supports
// the simulated-clock extensions (TimedReceiver, ScheduledSender — the
// PipeEnd capabilities), the returned Conn preserves them so the chunked
// data path keeps its deterministic timing.
func NewFaultyConn(inner Conn, plan *faults.Plan) Conn {
	fc := &FaultyConn{inner: inner, plan: plan}
	_, timed := inner.(TimedReceiver)
	_, sched := inner.(ScheduledSender)
	if timed && sched {
		return &faultyPipeConn{fc}
	}
	return fc
}

// Inner returns the wrapped connection.
func (f *FaultyConn) Inner() Conn { return f.inner }

// SetOpTimeout implements DeadlineCapable by forwarding to the wrapped
// connection, so a server watchdog sees through the fault layer; a no-op
// when the inner connection has no deadline support.
func (f *FaultyConn) SetOpTimeout(d time.Duration) {
	if dc, ok := f.inner.(DeadlineCapable); ok {
		dc.SetOpTimeout(d)
	}
}

// sendFaulted applies d to a send of m and reports whether the operation
// was fully handled (err then being its result).
func (f *FaultyConn) sendFaulted(d faults.Decision, m protocol.Message) (handled bool, err error) {
	if d.Kind == faults.KindNone {
		return false, nil
	}
	f.injected.Add(1)
	switch d.Kind {
	case faults.KindLatency:
		time.Sleep(d.Delay)
		return false, nil
	case faults.KindStall:
		// A stalled send blocks until the operation deadline would fire,
		// then surfaces as a timeout on a connection in unknown state.
		time.Sleep(d.Delay)
		_ = f.inner.Close()
		return true, fmt.Errorf("transport: send stalled %v: %w", d.Delay, os.ErrDeadlineExceeded)
	case faults.KindPartialWrite:
		if sp, ok := f.inner.(splitSender); ok {
			return true, sp.sendSplit(m, d.KeepFor(m.WireSize()+frameHeaderSize))
		}
		return false, nil // no byte stream to split; deliver cleanly
	case faults.KindTruncate:
		if ts, ok := f.inner.(truncatedSender); ok {
			if err := ts.sendTruncated(m, d.KeepFor(m.WireSize())); err != nil {
				return true, err
			}
			return true, fmt.Errorf("transport: frame truncated on the wire: %w", ErrInjectedReset)
		}
		fallthrough
	case faults.KindReset:
		_ = f.inner.Close()
		return true, fmt.Errorf("transport: send: %w", ErrInjectedReset)
	default:
		return false, nil
	}
}

// recvFaulted applies d to a receive and reports whether the operation was
// fully handled (err then being its result).
func (f *FaultyConn) recvFaulted(d faults.Decision) (handled bool, err error) {
	if d.Kind == faults.KindNone {
		return false, nil
	}
	f.injected.Add(1)
	switch d.Kind {
	case faults.KindLatency:
		time.Sleep(d.Delay)
		return false, nil
	case faults.KindStall:
		time.Sleep(d.Delay)
		_ = f.inner.Close()
		return true, fmt.Errorf("transport: recv stalled %v: %w", d.Delay, os.ErrDeadlineExceeded)
	case faults.KindTruncate:
		// The local read tears mid-frame: the payload is lost and the
		// connection is no longer frame-aligned, so it must die.
		_ = f.inner.Close()
		return true, fmt.Errorf("transport: recv: %w", ErrTruncatedFrame)
	case faults.KindReset:
		_ = f.inner.Close()
		return true, fmt.Errorf("transport: recv: %w", ErrInjectedReset)
	default:
		return false, nil
	}
}

// Send implements Conn.
func (f *FaultyConn) Send(m protocol.Message) error {
	if handled, err := f.sendFaulted(f.plan.Next(faults.DirSend), m); handled {
		return err
	}
	return f.inner.Send(m)
}

// Recv implements Conn.
func (f *FaultyConn) Recv() ([]byte, error) {
	if handled, err := f.recvFaulted(f.plan.Next(faults.DirRecv)); handled {
		return nil, err
	}
	return f.inner.Recv()
}

// Close implements Conn.
func (f *FaultyConn) Close() error { return f.inner.Close() }

// Stats implements Conn, reporting the inner connection's counters plus
// the faults injected here.
func (f *FaultyConn) Stats() Stats {
	st := f.inner.Stats()
	st.FaultsInjected += f.injected.Load()
	return st
}

// faultyPipeConn extends FaultyConn with the simulated-clock capabilities
// of the wrapped PipeEnd.
type faultyPipeConn struct {
	*FaultyConn
}

var (
	_ Conn            = (*faultyPipeConn)(nil)
	_ TimedReceiver   = (*faultyPipeConn)(nil)
	_ ScheduledSender = (*faultyPipeConn)(nil)
)

// RecvTimed implements TimedReceiver.
func (f *faultyPipeConn) RecvTimed() ([]byte, time.Duration, error) {
	if handled, err := f.recvFaulted(f.plan.Next(faults.DirRecv)); handled {
		return nil, 0, err
	}
	return f.inner.(TimedReceiver).RecvTimed()
}

// SendAt implements ScheduledSender.
func (f *faultyPipeConn) SendAt(m protocol.Message, notBefore time.Duration) error {
	if handled, err := f.sendFaulted(f.plan.Next(faults.DirSend), m); handled {
		return err
	}
	return f.inner.(ScheduledSender).SendAt(m, notBefore)
}
