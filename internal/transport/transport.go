// Package transport carries rCUDA protocol messages between client and
// server. Two implementations exist:
//
//   - TCP: real sockets via net, with Nagle's algorithm disabled exactly as
//     the paper does ("we disabled the TCP-layer congestion control
//     algorithm ... to avoid unnecessary delays introduced by ... Nagle's
//     algorithm"). Used by the rcudad daemon and the integration tests.
//
//   - Pipe: an in-process connection whose sends advance a simulation clock
//     by the modeled wire time of the chosen interconnect, turning a full
//     client/server execution into a deterministic discrete-event run over
//     any of the paper's seven networks.
//
// Both carry the length-prefixed frames of package protocol; the simulated
// wire charges only the Table I payload bytes (framing overhead is part of
// the measured latency curves the link models reproduce).
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rcuda/internal/netsim"
	"rcuda/internal/protocol"
	"rcuda/internal/vclock"
)

// Conn is a reliable, message-oriented duplex connection.
type Conn interface {
	// Send transmits one protocol message.
	Send(m protocol.Message) error
	// Recv blocks for the next incoming message payload. It returns
	// io.EOF after the peer closes.
	Recv() ([]byte, error)
	// Close releases the connection. Safe to call more than once.
	Close() error
	// Stats reports cumulative traffic counters.
	Stats() Stats
}

// Stats counts a connection's traffic in Table I payload bytes.
type Stats struct {
	MessagesSent int64
	MessagesRecv int64
	BytesSent    int64
	BytesRecv    int64
}

// counters is embedded by implementations; all fields are atomics.
type counters struct {
	msgsSent, msgsRecv   atomic.Int64
	bytesSent, bytesRecv atomic.Int64
}

func (c *counters) onSend(n int) {
	c.msgsSent.Add(1)
	c.bytesSent.Add(int64(n))
}

func (c *counters) onRecv(n int) {
	c.msgsRecv.Add(1)
	c.bytesRecv.Add(int64(n))
}

func (c *counters) Stats() Stats {
	return Stats{
		MessagesSent: c.msgsSent.Load(),
		MessagesRecv: c.msgsRecv.Load(),
		BytesSent:    c.bytesSent.Load(),
		BytesRecv:    c.bytesRecv.Load(),
	}
}

// --- TCP ---------------------------------------------------------------------

// TCPConn is a Conn over a real socket.
type TCPConn struct {
	counters
	c         net.Conn
	opTimeout atomic.Int64 // nanoseconds; 0 disables deadlines
}

var _ Conn = (*TCPConn)(nil)

// DialTCP connects to an rCUDA server, disabling Nagle's algorithm.
func DialTCP(addr string) (*TCPConn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewTCPConn(c), nil
}

// NewTCPConn wraps an established socket (e.g. one accepted by the server
// daemon), disabling Nagle's algorithm when the socket is TCP.
func NewTCPConn(c net.Conn) *TCPConn {
	if tc, ok := c.(*net.TCPConn); ok {
		// Explicitly control the instant a frame is sent out, as the
		// paper's middleware does. (This is also Go's default, but the
		// middleware must not depend on it.)
		_ = tc.SetNoDelay(true)
	}
	return &TCPConn{c: c}
}

// SetOpTimeout bounds every subsequent Send and Recv individually; a hung
// peer then surfaces as a deadline error instead of blocking the
// application forever. Zero (the default) disables deadlines. Safe to call
// concurrently with in-flight operations; it affects operations started
// afterwards.
func (t *TCPConn) SetOpTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.opTimeout.Store(int64(d))
}

// armDeadline applies the per-op deadline via the given setter.
func (t *TCPConn) armDeadline(set func(time.Time) error) error {
	d := time.Duration(t.opTimeout.Load())
	if d == 0 {
		return set(time.Time{})
	}
	return set(time.Now().Add(d))
}

// Send implements Conn.
func (t *TCPConn) Send(m protocol.Message) error {
	if err := t.armDeadline(t.c.SetWriteDeadline); err != nil {
		return err
	}
	if err := protocol.WriteFrame(t.c, m); err != nil {
		return err
	}
	t.onSend(m.WireSize())
	return nil
}

// Recv implements Conn.
func (t *TCPConn) Recv() ([]byte, error) {
	if err := t.armDeadline(t.c.SetReadDeadline); err != nil {
		return nil, err
	}
	payload, err := protocol.ReadFrame(t.c)
	if err != nil {
		return nil, err
	}
	t.onRecv(len(payload))
	return payload, nil
}

// Close implements Conn.
func (t *TCPConn) Close() error { return t.c.Close() }

// --- Simulated pipe -----------------------------------------------------------

// ErrClosed is returned by operations on a closed simulated connection.
var ErrClosed = errors.New("transport: connection closed")

// pipeBuffer bounds in-flight messages per direction. The protocol is
// strictly request/response, so even a small buffer never blocks.
const pipeBuffer = 16

// PipeEnd is one end of a simulated connection.
type PipeEnd struct {
	counters
	link      *netsim.Link
	clock     vclock.Clock
	noise     *netsim.Noise
	out       chan []byte
	in        chan []byte
	done      chan struct{}
	closeOnce *sync.Once
	peer      *PipeEnd
}

var _ Conn = (*PipeEnd)(nil)

// Pipe creates a connected pair of simulated connection ends over the given
// interconnect. Every Send advances the shared clock by the link's modeled
// wire time for the message's payload size (perturbed by noise, which may
// be nil), then delivers the payload to the peer.
func Pipe(link *netsim.Link, clock vclock.Clock, noise *netsim.Noise) (client, server *PipeEnd) {
	ab := make(chan []byte, pipeBuffer)
	ba := make(chan []byte, pipeBuffer)
	done := make(chan struct{})
	once := new(sync.Once)
	a := &PipeEnd{link: link, clock: clock, noise: noise, out: ab, in: ba, done: done, closeOnce: once}
	b := &PipeEnd{link: link, clock: clock, noise: noise, out: ba, in: ab, done: done, closeOnce: once}
	a.peer, b.peer = b, a
	return a, b
}

// Send implements Conn: it charges the modeled one-way wire latency on the
// shared clock and enqueues the payload at the peer.
func (p *PipeEnd) Send(m protocol.Message) error {
	payload := m.Encode(make([]byte, 0, m.WireSize()))
	if len(payload) != m.WireSize() {
		return fmt.Errorf("transport: %T encoded %d bytes, declared %d", m, len(payload), m.WireSize())
	}
	wire := p.link.WireTime(int64(len(payload)))
	if p.noise != nil {
		wire = p.noise.Perturb(wire)
	}
	select {
	case <-p.done:
		return ErrClosed
	default:
	}
	p.clock.Sleep(wire)
	select {
	case p.out <- payload:
		p.onSend(len(payload))
		return nil
	case <-p.done:
		return ErrClosed
	}
}

// Recv implements Conn.
func (p *PipeEnd) Recv() ([]byte, error) {
	select {
	case payload := <-p.in:
		p.onRecv(len(payload))
		return payload, nil
	case <-p.done:
		// Drain anything that raced with Close so shutdown is orderly.
		select {
		case payload := <-p.in:
			p.onRecv(len(payload))
			return payload, nil
		default:
			return nil, errClosedEOF()
		}
	}
}

// errClosedEOF distinguishes orderly shutdown; callers treat it like EOF.
func errClosedEOF() error { return ErrClosed }

// Close implements Conn. Closing either end terminates both directions.
func (p *PipeEnd) Close() error {
	p.closeOnce.Do(func() { close(p.done) })
	return nil
}

// Link returns the interconnect this pipe simulates.
func (p *PipeEnd) Link() *netsim.Link { return p.link }
