// Package transport carries rCUDA protocol messages between client and
// server. Two implementations exist:
//
//   - TCP: real sockets via net, with Nagle's algorithm disabled exactly as
//     the paper does ("we disabled the TCP-layer congestion control
//     algorithm ... to avoid unnecessary delays introduced by ... Nagle's
//     algorithm"). Used by the rcudad daemon and the integration tests.
//
//   - Pipe: an in-process connection whose sends advance a simulation clock
//     by the modeled wire time of the chosen interconnect, turning a full
//     client/server execution into a deterministic discrete-event run over
//     any of the paper's seven networks.
//
// Both carry the length-prefixed frames of package protocol; the simulated
// wire charges only the Table I payload bytes (framing overhead is part of
// the measured latency curves the link models reproduce).
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"rcuda/internal/netsim"
	"rcuda/internal/protocol"
	"rcuda/internal/vclock"
)

// Conn is a reliable, message-oriented duplex connection.
type Conn interface {
	// Send transmits one protocol message.
	Send(m protocol.Message) error
	// Recv blocks for the next incoming message payload. It returns
	// io.EOF after the peer closes. The returned slice may reuse pooled
	// storage and is only valid until the next Recv on this connection;
	// callers that keep payload bytes longer must copy them out.
	Recv() ([]byte, error)
	// Close releases the connection. Safe to call more than once.
	Close() error
	// Stats reports cumulative traffic counters.
	Stats() Stats
}

// TimedReceiver is implemented by connections that can report when each
// message arrived on the connection's clock. The chunked-memcpy server
// books PCIe pushes at the chunk's arrival instant so network and PCIe
// stages overlap deterministically on the simulated clock.
type TimedReceiver interface {
	// RecvTimed is Recv plus the message's arrival instant.
	RecvTimed() ([]byte, time.Duration, error)
}

// DeadlineCapable is implemented by connections whose individual Send and
// Recv operations can be bounded in time. The rCUDA server's request
// watchdog arms this so a peer that stalls mid-frame surfaces as
// os.ErrDeadlineExceeded instead of pinning a handler goroutine forever.
type DeadlineCapable interface {
	// SetOpTimeout bounds every subsequent Send and Recv individually;
	// zero disables the bound.
	SetOpTimeout(d time.Duration)
}

// ScheduledSender is implemented by connections that can hold a message
// until an instant on the connection's clock. The chunked-memcpy server
// streams device-to-host chunks at their modeled PCIe-completion times.
type ScheduledSender interface {
	// SendAt advances the connection's clock to notBefore (never backwards)
	// and then sends as usual.
	SendAt(m protocol.Message, notBefore time.Duration) error
}

// Stats counts a connection's traffic in Table I payload bytes, plus the
// frame-buffer pool's effectiveness on this connection.
type Stats struct {
	MessagesSent int64
	MessagesRecv int64
	BytesSent    int64
	BytesRecv    int64
	// PoolHits and PoolMisses count frame-buffer requests served from the
	// pool versus freshly allocated (sends and receives combined).
	PoolHits   int64
	PoolMisses int64
	// FaultsInjected counts deliberate faults a FaultyConn applied to this
	// connection; always zero on a plain connection.
	FaultsInjected int64
}

// counters is embedded by implementations; all fields are atomics.
type counters struct {
	msgsSent, msgsRecv   atomic.Int64
	bytesSent, bytesRecv atomic.Int64
	poolHits, poolMisses atomic.Int64
}

func (c *counters) onSend(n int) {
	c.msgsSent.Add(1)
	c.bytesSent.Add(int64(n))
}

func (c *counters) onRecv(n int) {
	c.msgsRecv.Add(1)
	c.bytesRecv.Add(int64(n))
}

func (c *counters) onPool(hit bool) {
	if hit {
		c.poolHits.Add(1)
	} else {
		c.poolMisses.Add(1)
	}
}

func (c *counters) Stats() Stats {
	return Stats{
		MessagesSent: c.msgsSent.Load(),
		MessagesRecv: c.msgsRecv.Load(),
		BytesSent:    c.bytesSent.Load(),
		BytesRecv:    c.bytesRecv.Load(),
		PoolHits:     c.poolHits.Load(),
		PoolMisses:   c.poolMisses.Load(),
	}
}

// ErrTruncatedFrame reports a frame that ended mid-flight: the peer (or an
// injected fault) tore the connection down after the length prefix promised
// more bytes than ever arrived. It wraps io.ErrUnexpectedEOF, so existing
// errors.Is checks against that sentinel keep working, while retry logic
// can classify the loss precisely.
var ErrTruncatedFrame = fmt.Errorf("transport: truncated frame: %w", io.ErrUnexpectedEOF)

// isStreamEnd reports an EOF-like read failure (the only errors ReadFull
// and Peek can return when the stream simply stops short).
func isStreamEnd(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// --- TCP ---------------------------------------------------------------------

// frameHeaderSize mirrors the protocol package's length prefix.
const frameHeaderSize = 4

// TCPConn is a Conn over a real socket. Like the protocol it carries, it
// is half-duplex per direction: one goroutine sending and one receiving.
type TCPConn struct {
	counters
	c         net.Conn
	br        *bufio.Reader
	opTimeout atomic.Int64 // nanoseconds; 0 disables deadlines

	fw       protocol.FrameWriter // send-side framing state, reused across Sends
	lastRecv []byte               // previous Recv's pooled payload, recycled on the next Recv
}

var (
	_ Conn            = (*TCPConn)(nil)
	_ DeadlineCapable = (*TCPConn)(nil)
)

// DialTCP connects to an rCUDA server, disabling Nagle's algorithm.
func DialTCP(addr string) (*TCPConn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewTCPConn(c), nil
}

// NewTCPConn wraps an established socket (e.g. one accepted by the server
// daemon), disabling Nagle's algorithm when the socket is TCP.
func NewTCPConn(c net.Conn) *TCPConn {
	if tc, ok := c.(*net.TCPConn); ok {
		// Explicitly control the instant a frame is sent out, as the
		// paper's middleware does. (This is also Go's default, but the
		// middleware must not depend on it.)
		_ = tc.SetNoDelay(true)
	}
	return &TCPConn{c: c, br: bufio.NewReaderSize(c, 1<<16)}
}

// SetOpTimeout bounds every subsequent Send and Recv individually; a hung
// peer then surfaces as a deadline error instead of blocking the
// application forever. Zero (the default) disables deadlines. Safe to call
// concurrently with in-flight operations; it affects operations started
// afterwards.
func (t *TCPConn) SetOpTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.opTimeout.Store(int64(d))
}

// armDeadline applies the per-op deadline via the given setter.
func (t *TCPConn) armDeadline(set func(time.Time) error) error {
	d := time.Duration(t.opTimeout.Load())
	if d == 0 {
		return set(time.Time{})
	}
	return set(time.Now().Add(d))
}

// Send implements Conn. Segmented messages (bulk memcpy payloads) are
// gathered with a single vectored write — the payload bytes go from the
// caller's slice to the socket without an intermediate copy; everything
// else is framed into a reused scratch buffer.
func (t *TCPConn) Send(m protocol.Message) error {
	if err := t.armDeadline(t.c.SetWriteDeadline); err != nil {
		return err
	}
	if err := t.fw.WriteFrame(t.c, m); err != nil {
		return err
	}
	t.onSend(m.WireSize())
	return nil
}

// Recv implements Conn. The payload is read into a pooled buffer that is
// recycled on the next Recv — see the Conn contract.
func (t *TCPConn) Recv() ([]byte, error) {
	if err := t.armDeadline(t.c.SetReadDeadline); err != nil {
		return nil, err
	}
	if t.lastRecv != nil {
		PutBuffer(t.lastRecv)
		t.lastRecv = nil
	}
	// Peek the header through bufio instead of protocol.ReadFrameHeader:
	// reading into a local array through the io.Reader interface would make
	// the array escape, one allocation per message.
	hdr, err := t.br.Peek(frameHeaderSize)
	if err != nil {
		// A clean close lands exactly between frames and surfaces as io.EOF
		// with nothing buffered; a close inside the header is a truncation.
		if got := t.br.Buffered(); got > 0 && isStreamEnd(err) {
			return nil, fmt.Errorf("%w: %d of %d header bytes", ErrTruncatedFrame, got, frameHeaderSize)
		}
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr))
	if n > protocol.MaxFrameSize {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit %d", n, protocol.MaxFrameSize)
	}
	if _, err := t.br.Discard(frameHeaderSize); err != nil {
		return nil, err
	}
	buf, hit := GetBuffer(n)
	t.onPool(hit)
	buf = buf[:n]
	if got, err := io.ReadFull(t.br, buf); err != nil {
		PutBuffer(buf)
		if isStreamEnd(err) {
			return nil, fmt.Errorf("%w: %d of %d payload bytes", ErrTruncatedFrame, got, n)
		}
		return nil, err
	}
	t.lastRecv = buf
	t.onRecv(n)
	return buf, nil
}

// Close implements Conn.
func (t *TCPConn) Close() error { return t.c.Close() }

// encodeFrame renders the full length-prefixed frame of m into a fresh
// buffer; the fault paths below need the raw bytes to cut or split.
func encodeFrame(m protocol.Message) ([]byte, error) {
	buf := make([]byte, frameHeaderSize, frameHeaderSize+m.WireSize())
	binary.LittleEndian.PutUint32(buf, uint32(m.WireSize()))
	buf = m.Encode(buf)
	if len(buf) != frameHeaderSize+m.WireSize() {
		return nil, fmt.Errorf("transport: %T encoded %d bytes, declared %d",
			m, len(buf)-frameHeaderSize, m.WireSize())
	}
	return buf, nil
}

// sendTruncated implements truncatedSender: it emits the frame header plus
// only the first keep payload bytes, then tears the connection down, so
// the peer observes a mid-frame truncation.
func (t *TCPConn) sendTruncated(m protocol.Message, keep int) error {
	buf, err := encodeFrame(m)
	if err != nil {
		return err
	}
	if err := t.armDeadline(t.c.SetWriteDeadline); err != nil {
		return err
	}
	if keep < 0 {
		keep = 0
	}
	if keep > m.WireSize()-1 {
		keep = m.WireSize() - 1
	}
	_, werr := t.c.Write(buf[:frameHeaderSize+keep])
	cerr := t.c.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// sendSplit implements splitSender: the frame goes out whole but across
// two raw writes split at firstN frame bytes, exercising the peer's
// mid-frame reassembly without corrupting anything.
func (t *TCPConn) sendSplit(m protocol.Message, firstN int) error {
	buf, err := encodeFrame(m)
	if err != nil {
		return err
	}
	if err := t.armDeadline(t.c.SetWriteDeadline); err != nil {
		return err
	}
	if firstN <= 0 || firstN >= len(buf) {
		firstN = len(buf) / 2
	}
	if _, err := t.c.Write(buf[:firstN]); err != nil {
		return err
	}
	if _, err := t.c.Write(buf[firstN:]); err != nil {
		return err
	}
	t.onSend(m.WireSize())
	return nil
}

// --- Simulated pipe -----------------------------------------------------------

// ErrClosed is returned by operations on a closed simulated connection.
var ErrClosed = errors.New("transport: connection closed")

// pipeBuffer bounds in-flight messages per direction. The protocol is
// strictly request/response, so even a small buffer never blocks.
const pipeBuffer = 16

// pipeMsg is one in-flight message: its encoded payload plus the clock
// instant its network transfer completed. The arrival stamp is recorded by
// the sender — the client races ahead of the server when streaming chunks,
// so reading the clock at receive time would observe a later (and
// scheduling-dependent) instant.
type pipeMsg struct {
	payload []byte
	at      time.Duration
}

// PipeEnd is one end of a simulated connection. Like TCPConn it is
// half-duplex per direction: one goroutine sending, one receiving.
type PipeEnd struct {
	counters
	link      *netsim.Link
	clock     vclock.Clock
	noise     *netsim.Noise
	out       chan pipeMsg
	in        chan pipeMsg
	done      chan struct{}
	closeOnce *sync.Once
	peer      *PipeEnd
	lastRecv  []byte       // previous Recv's pooled payload, recycled on the next Recv
	opTimeout atomic.Int64 // nanoseconds; 0 disables deadlines
}

var (
	_ Conn            = (*PipeEnd)(nil)
	_ TimedReceiver   = (*PipeEnd)(nil)
	_ ScheduledSender = (*PipeEnd)(nil)
	_ DeadlineCapable = (*PipeEnd)(nil)
)

// SetOpTimeout implements DeadlineCapable. The simulated clock only
// advances while a peer is actively sending, so a stalled peer would block
// a Recv forever on any clock; the bound therefore runs on wall time — the
// frame of reference in which a hung goroutine actually hangs — while
// clean operations keep their deterministic simulated timing.
func (p *PipeEnd) SetOpTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.opTimeout.Store(int64(d))
}

// opDeadline returns a channel that fires when the configured per-op bound
// expires, plus the timer to stop; both are nil with deadlines disabled.
func (p *PipeEnd) opDeadline() (<-chan time.Time, *time.Timer) {
	d := time.Duration(p.opTimeout.Load())
	if d == 0 {
		return nil, nil
	}
	t := time.NewTimer(d)
	return t.C, t
}

// Pipe creates a connected pair of simulated connection ends over the given
// interconnect. Every Send advances the shared clock by the link's modeled
// wire time for the message's payload size (perturbed by noise, which may
// be nil), then delivers the payload to the peer.
func Pipe(link *netsim.Link, clock vclock.Clock, noise *netsim.Noise) (client, server *PipeEnd) {
	ab := make(chan pipeMsg, pipeBuffer)
	ba := make(chan pipeMsg, pipeBuffer)
	done := make(chan struct{})
	once := new(sync.Once)
	a := &PipeEnd{link: link, clock: clock, noise: noise, out: ab, in: ba, done: done, closeOnce: once}
	b := &PipeEnd{link: link, clock: clock, noise: noise, out: ba, in: ab, done: done, closeOnce: once}
	a.peer, b.peer = b, a
	return a, b
}

// Send implements Conn: it charges the modeled one-way wire latency on the
// shared clock and enqueues the payload at the peer, stamped with its
// arrival instant.
func (p *PipeEnd) Send(m protocol.Message) error {
	buf, hit := GetBuffer(m.WireSize())
	p.onPool(hit)
	payload := m.Encode(buf)
	if len(payload) != m.WireSize() {
		return fmt.Errorf("transport: %T encoded %d bytes, declared %d", m, len(payload), m.WireSize())
	}
	wire := p.link.WireTime(int64(len(payload)))
	if p.noise != nil {
		wire = p.noise.Perturb(wire)
	}
	select {
	case <-p.done:
		return ErrClosed
	default:
	}
	p.clock.Sleep(wire)
	expired, timer := p.opDeadline()
	if timer != nil {
		defer timer.Stop()
	}
	select {
	case p.out <- pipeMsg{payload: payload, at: p.clock.Now()}:
		p.onSend(len(payload))
		return nil
	case <-p.done:
		return ErrClosed
	case <-expired:
		return fmt.Errorf("transport: pipe send: %w", os.ErrDeadlineExceeded)
	}
}

// advancer is the optional clock capability SendAt needs; vclock.Sim has
// it, wall clocks do not (real time cannot be jumped forward).
type advancer interface {
	AdvanceTo(t time.Duration)
}

// SendAt implements ScheduledSender: it first moves the clock forward to
// notBefore (a no-op if already past, or if the clock cannot jump) and then
// sends as usual, so the message's wire transfer is modeled as starting no
// earlier than notBefore.
func (p *PipeEnd) SendAt(m protocol.Message, notBefore time.Duration) error {
	if adv, ok := p.clock.(advancer); ok {
		adv.AdvanceTo(notBefore)
	}
	return p.Send(m)
}

// Recv implements Conn; see RecvTimed.
func (p *PipeEnd) Recv() ([]byte, error) {
	payload, _, err := p.RecvTimed()
	return payload, err
}

// RecvTimed implements TimedReceiver. The payload occupies a pooled buffer
// that is recycled on the next receive — see the Conn contract.
func (p *PipeEnd) RecvTimed() ([]byte, time.Duration, error) {
	if p.lastRecv != nil {
		PutBuffer(p.lastRecv)
		p.lastRecv = nil
	}
	deliver := func(msg pipeMsg) ([]byte, time.Duration, error) {
		p.lastRecv = msg.payload
		p.onRecv(len(msg.payload))
		return msg.payload, msg.at, nil
	}
	expired, timer := p.opDeadline()
	if timer != nil {
		defer timer.Stop()
	}
	select {
	case msg := <-p.in:
		return deliver(msg)
	case <-expired:
		return nil, 0, fmt.Errorf("transport: pipe recv: %w", os.ErrDeadlineExceeded)
	case <-p.done:
		// Drain anything that raced with Close so shutdown is orderly.
		select {
		case msg := <-p.in:
			return deliver(msg)
		default:
			return nil, 0, errClosedEOF()
		}
	}
}

// errClosedEOF distinguishes orderly shutdown; callers treat it like EOF.
func errClosedEOF() error { return ErrClosed }

// sendTruncated implements truncatedSender for the simulated pipe. The
// pipe has no byte stream to cut mid-frame, so truncation delivers the
// first keep payload bytes as the message and then closes the connection:
// the peer decodes a short, malformed payload — the same observable
// outcome a torn frame has after reassembly.
func (p *PipeEnd) sendTruncated(m protocol.Message, keep int) error {
	buf, hit := GetBuffer(m.WireSize())
	p.onPool(hit)
	payload := m.Encode(buf)
	if keep < 0 {
		keep = 0
	}
	if keep > len(payload)-1 {
		keep = len(payload) - 1
	}
	if keep < 0 {
		keep = 0
	}
	payload = payload[:keep]
	wire := p.link.WireTime(int64(len(payload)))
	if p.noise != nil {
		wire = p.noise.Perturb(wire)
	}
	select {
	case <-p.done:
		return ErrClosed
	default:
	}
	p.clock.Sleep(wire)
	select {
	case p.out <- pipeMsg{payload: payload, at: p.clock.Now()}:
		p.onSend(len(payload))
	case <-p.done:
	}
	return p.Close()
}

// Close implements Conn. Closing either end terminates both directions.
func (p *PipeEnd) Close() error {
	p.closeOnce.Do(func() { close(p.done) })
	return nil
}

// Link returns the interconnect this pipe simulates.
func (p *PipeEnd) Link() *netsim.Link { return p.link }
