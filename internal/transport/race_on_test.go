//go:build race

package transport

// Under the race detector sync.Pool deliberately drops a fraction of Puts
// to shake out races, so steady-state recycling cannot be asserted exactly.
const raceDetectorEnabled = true
