package transport

import (
	"bytes"
	"errors"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"rcuda/internal/netsim"
	"rcuda/internal/protocol"
	"rcuda/internal/vclock"
)

func TestTCPRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := ln.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		srv := NewTCPConn(c)
		defer srv.Close()
		payload, err := srv.Recv()
		if err != nil {
			t.Error(err)
			return
		}
		req, err := protocol.DecodeRequest(payload)
		if err != nil {
			t.Error(err)
			return
		}
		m, ok := req.(*protocol.MallocRequest)
		if !ok || m.Size != 4096 {
			t.Errorf("server decoded %#v", req)
			return
		}
		if err := srv.Send(&protocol.MallocResponse{DevPtr: 0x100}); err != nil {
			t.Error(err)
		}
	}()

	cli, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Send(&protocol.MallocRequest{Size: 4096}); err != nil {
		t.Fatal(err)
	}
	payload, err := cli.Recv()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := protocol.DecodeMallocResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.DevPtr != 0x100 {
		t.Fatalf("devptr = %#x", resp.DevPtr)
	}
	wg.Wait()

	st := cli.Stats()
	if st.MessagesSent != 1 || st.MessagesRecv != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.BytesSent != 8 || st.BytesRecv != 8 {
		t.Fatalf("Table I byte accounting: %+v, want 8/8 for cudaMalloc", st)
	}
}

func TestDialTCPFailure(t *testing.T) {
	if _, err := DialTCP("127.0.0.1:1"); err == nil {
		t.Fatal("dialing a dead port must fail")
	}
}

func TestPipeChargesWireTime(t *testing.T) {
	clk := vclock.NewSim()
	link := netsim.IB40G()
	cli, srv := Pipe(link, clk, nil)
	defer cli.Close()

	req := &protocol.MallocRequest{Size: 64}
	if err := cli.Send(req); err != nil {
		t.Fatal(err)
	}
	want := link.WireTime(int64(req.WireSize()))
	if got := clk.Now(); got != want {
		t.Fatalf("send advanced clock by %v, want %v", got, want)
	}
	payload, err := srv.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != 8 {
		t.Fatalf("payload %d bytes, want 8", len(payload))
	}
	// Recv itself costs nothing: the sender already paid the latency.
	if got := clk.Now(); got != want {
		t.Fatalf("recv advanced clock to %v, want %v", got, want)
	}
}

func TestPipeBulkPayloadTiming(t *testing.T) {
	clk := vclock.NewSim()
	link := netsim.GigaE()
	cli, srv := Pipe(link, clk, nil)
	defer cli.Close()

	data := bytes.Repeat([]byte{7}, 8<<20) // an FFT-sized 8 MiB copy
	req := &protocol.MemcpyToDeviceRequest{Dst: 0x100, Data: data}
	go func() {
		if err := cli.Send(req); err != nil {
			t.Error(err)
		}
	}()
	payload, err := srv.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != req.WireSize() {
		t.Fatalf("payload %d, want %d", len(payload), req.WireSize())
	}
	got := clk.Now()
	want := link.WireTime(int64(req.WireSize()))
	if got != want {
		t.Fatalf("bulk send charged %v, want %v (includes TCP excess)", got, want)
	}
	// GigaE at 8 MiB must show the TCP-window excess over the pure
	// bandwidth model.
	if got <= link.PayloadTime(int64(req.WireSize())) {
		t.Fatal("GigaE bulk wire time should exceed the bandwidth-only model")
	}
}

func TestPipeRequestResponse(t *testing.T) {
	clk := vclock.NewSim()
	cli, srv := Pipe(netsim.TenGigE(), clk, netsim.NewNoise(1, 0.01))
	defer cli.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			payload, err := srv.Recv()
			if err != nil {
				return
			}
			req, err := protocol.DecodeRequest(payload)
			if err != nil {
				t.Error(err)
				return
			}
			switch r := req.(type) {
			case *protocol.FreeRequest:
				if err := srv.Send(&protocol.FreeResponse{}); err != nil {
					t.Error(err)
					return
				}
				_ = r
			case *protocol.FinalizeRequest:
				return
			}
		}
	}()

	for i := 0; i < 10; i++ {
		if err := cli.Send(&protocol.FreeRequest{DevPtr: 0x100}); err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.Send(&protocol.FinalizeRequest{}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if clk.Now() == 0 {
		t.Fatal("request/response traffic must advance the simulated clock")
	}
	st := cli.Stats()
	if st.MessagesSent != 11 || st.MessagesRecv != 10 {
		t.Fatalf("client stats %+v", st)
	}
}

func TestPipeCloseUnblocksRecv(t *testing.T) {
	clk := vclock.NewSim()
	cli, srv := Pipe(netsim.AHT(), clk, nil)

	errc := make(chan error, 1)
	go func() {
		_, err := srv.Recv()
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // let Recv block
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Recv after close must fail")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
	if err := cli.Send(&protocol.SyncRequest{}); err == nil {
		t.Fatal("Send after close must fail")
	}
	if err := srv.Close(); err != nil {
		t.Fatal("closing the other end must be fine")
	}
}

func TestPipeDrainsInFlightOnClose(t *testing.T) {
	clk := vclock.NewSim()
	cli, srv := Pipe(netsim.AHT(), clk, nil)
	if err := cli.Send(&protocol.SyncRequest{}); err != nil {
		t.Fatal(err)
	}
	_ = cli.Close()
	// The message was already on the wire; the peer may still read it.
	if _, err := srv.Recv(); err != nil {
		t.Fatalf("in-flight message lost on close: %v", err)
	}
	if _, err := srv.Recv(); err == nil {
		t.Fatal("second Recv after close must fail")
	}
}

func TestPipeLink(t *testing.T) {
	cli, _ := Pipe(netsim.Myrinet10G(), vclock.NewSim(), nil)
	defer cli.Close()
	if cli.Link().Name() != "Myr" {
		t.Fatalf("Link() = %s", cli.Link().Name())
	}
}

// TestTCPMidFrameStallTimeout covers the nastier stall: the peer sends a
// frame header promising a payload and then goes silent, so the deadline
// must fire during the buffered body read, not just while waiting for the
// header.
func TestTCPMidFrameStallTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		// A 4-byte header declaring a 4 KiB payload that never comes.
		if _, err := c.Write([]byte{0x00, 0x10, 0x00, 0x00}); err != nil {
			return
		}
		time.Sleep(2 * time.Second)
	}()

	cli, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SetOpTimeout(50 * time.Millisecond)

	start := time.Now()
	_, err = cli.Recv()
	if err == nil {
		t.Fatal("Recv of a half-sent frame must time out")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("got %v, want a timeout error", err)
	}
	if elapsed := time.Since(start); elapsed > 1*time.Second {
		t.Fatalf("timeout took %v, want ~50ms", elapsed)
	}
}

// TestTCPSendTimeout stalls the receive side until the kernel socket
// buffers fill, so a bulk vectored Send must surface the deadline instead
// of blocking forever.
func TestTCPSendTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c // never read from it
		}
	}()

	cli, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if tc, ok := cli.c.(*net.TCPConn); ok {
		_ = tc.SetWriteBuffer(4 << 10) // keep the kernel's slack small
	}
	cli.SetOpTimeout(100 * time.Millisecond)

	// With nobody reading, repeated bulk sends must eventually block on a
	// full socket buffer and trip the write deadline.
	data := bytes.Repeat([]byte{3}, 4<<20)
	var sendErr error
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if sendErr = cli.Send(&protocol.MemcpyToDeviceRequest{Dst: 0x100, Data: data}); sendErr != nil {
			break
		}
	}
	if sendErr == nil {
		t.Fatal("Send never blocked against a stalled reader")
	}
	var nerr net.Error
	if !errors.As(sendErr, &nerr) || !nerr.Timeout() {
		t.Fatalf("got %v, want a timeout error", sendErr)
	}
	srv := <-accepted
	srv.Close()
}

// TestTCPPoolStats checks that steady-state traffic is served from the
// frame-buffer pool: the first request of a class may miss, every recycled
// round after that must hit.
func TestTCPPoolStats(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		srv := NewTCPConn(c)
		defer srv.Close()
		for {
			if _, err := srv.Recv(); err != nil {
				return
			}
			if err := srv.Send(&protocol.SyncResponse{}); err != nil {
				return
			}
		}
	}()

	cli, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	const rounds = 8
	for i := 0; i < rounds; i++ {
		if err := cli.Send(&protocol.SyncRequest{}); err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	st := cli.Stats()
	// One pool request per Recv (the send side reuses FrameWriter storage).
	if got := st.PoolHits + st.PoolMisses; got != rounds {
		t.Fatalf("pool requests = %d, want %d (stats %+v)", got, rounds, st)
	}
	// The race detector's sync.Pool drops Puts at random, so only assert
	// strict steady-state recycling in a normal build.
	if !raceDetectorEnabled && st.PoolHits < rounds-1 {
		t.Fatalf("steady state must recycle: %+v", st)
	}
}

func TestTCPOpTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c // accept and then never respond
		}
	}()

	cli, err := DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SetOpTimeout(50 * time.Millisecond)

	start := time.Now()
	_, err = cli.Recv()
	if err == nil {
		t.Fatal("Recv from a silent peer must time out")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("got %v, want a timeout error", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v, want ~50ms", elapsed)
	}

	// Disabling the timeout restores blocking semantics: a response now
	// arrives fine.
	cli.SetOpTimeout(0)
	srvConn := <-accepted
	srv := NewTCPConn(srvConn)
	defer srv.Close()
	if err := srv.Send(&protocol.SyncResponse{}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Recv(); err != nil {
		t.Fatalf("Recv after clearing timeout: %v", err)
	}
	// Negative values are clamped to "disabled".
	cli.SetOpTimeout(-time.Second)
	if err := srv.Send(&protocol.SyncResponse{}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Recv(); err != nil {
		t.Fatalf("Recv with clamped negative timeout: %v", err)
	}
}

// TestPipeOpDeadline checks the simulated pipe honors DeadlineCapable: a
// receive with no sender and a send into a full, undrained pipe must both
// fail with os.ErrDeadlineExceeded once armed, and the connection itself
// must survive (a deadline is a watchdog signal, not a teardown).
func TestPipeOpDeadline(t *testing.T) {
	clk := vclock.NewSim()
	cli, srv := Pipe(netsim.IB40G(), clk, nil)
	defer cli.Close()
	defer srv.Close()

	var dc DeadlineCapable = srv // compile-time capability check
	dc.SetOpTimeout(20 * time.Millisecond)

	start := time.Now()
	_, err := srv.Recv()
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("idle recv got %v, want os.ErrDeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("deadline fired after %v, want promptly", waited)
	}

	// Disarming restores indefinite blocking: a frame sent afterwards is
	// received normally on the same, still-healthy connection.
	dc.SetOpTimeout(0)
	if err := cli.Send(&protocol.MallocRequest{Size: 64}); err != nil {
		t.Fatal(err)
	}
	payload, err := srv.Recv()
	if err != nil {
		t.Fatalf("recv after deadline: %v", err)
	}
	if _, err := protocol.DecodeRequest(payload); err != nil {
		t.Fatalf("decode after deadline: %v", err)
	}
}
