package plot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func simpleChart() *Chart {
	return &Chart{
		Title:  "Execution time",
		XLabel: "size",
		YLabel: "seconds",
		Series: []Series{
			{Name: "CPU", X: []float64{1, 2, 3}, Y: []float64{2, 4, 6}},
			{Name: "GPU", X: []float64{1, 2, 3}, Y: []float64{3, 3.5, 4}},
		},
	}
}

func TestSVGIsWellFormedXML(t *testing.T) {
	out, err := simpleChart().SVG(640, 420)
	if err != nil {
		t.Fatal(err)
	}
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG does not parse as XML: %v", err)
		}
	}
}

func TestSVGContainsSeriesAndLabels(t *testing.T) {
	out, err := simpleChart().SVG(640, 420)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Execution time", "CPU", "GPU", "seconds", "<polyline"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Fatalf("%d polylines, want 2", got)
	}
}

func TestSVGDeterministic(t *testing.T) {
	a, err := simpleChart().SVG(640, 420)
	if err != nil {
		t.Fatal(err)
	}
	b, err := simpleChart().SVG(640, 420)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical charts must render identically")
	}
}

func TestSVGValidation(t *testing.T) {
	if _, err := (&Chart{}).SVG(640, 420); err == nil {
		t.Fatal("empty chart must fail")
	}
	if _, err := simpleChart().SVG(10, 10); err == nil {
		t.Fatal("tiny canvas must fail")
	}
	ragged := &Chart{Series: []Series{{Name: "r", X: []float64{1, 2}, Y: []float64{1}}}}
	if _, err := ragged.SVG(640, 420); err == nil {
		t.Fatal("ragged series must fail")
	}
	logNeg := &Chart{LogY: true, Series: []Series{{Name: "n", X: []float64{1}, Y: []float64{-1}}}}
	if _, err := logNeg.SVG(640, 420); err == nil {
		t.Fatal("negative value on log axis must fail")
	}
}

func TestEscape(t *testing.T) {
	c := simpleChart()
	c.Title = "a < b & c > d"
	out, err := c.SVG(640, 420)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "a < b & c") {
		t.Fatal("markup characters must be escaped")
	}
	if !strings.Contains(out, "a &lt; b &amp; c &gt; d") {
		t.Fatal("escaped title missing")
	}
}

func TestScaleMapping(t *testing.T) {
	s, err := newScale([]float64{0, 100}, false, 100, 500)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := s.pix(0), s.pix(100)
	if lo >= hi {
		t.Fatal("pixel mapping must be increasing")
	}
	mid := s.pix(50)
	if mid <= lo || mid >= hi {
		t.Fatal("midpoint must map inside the range")
	}
	if math.Abs(mid-(lo+hi)/2) > 0.5 {
		t.Fatalf("linear scale midpoint %v, want %v", mid, (lo+hi)/2)
	}
}

func TestLogScaleMapping(t *testing.T) {
	s, err := newScale([]float64{1, 10000}, true, 0, 400)
	if err != nil {
		t.Fatal(err)
	}
	// Log spacing: decades are equidistant.
	d1 := s.pix(10) - s.pix(1)
	d2 := s.pix(100) - s.pix(10)
	if math.Abs(d1-d2) > 0.5 {
		t.Fatalf("log decades not equidistant: %v vs %v", d1, d2)
	}
	ticks := s.ticks()
	if len(ticks) < 4 {
		t.Fatalf("log ticks %v, want a tick per decade", ticks)
	}
}

func TestFlatSeries(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "flat", X: []float64{1, 2}, Y: []float64{5, 5}}}}
	if _, err := c.SVG(640, 420); err != nil {
		t.Fatalf("flat series must render: %v", err)
	}
}

func TestNiceStep(t *testing.T) {
	cases := map[float64]float64{
		0.7: 1, 1.3: 2, 3.0: 5, 7.0: 10, 23: 50, 0.023: 0.05,
	}
	for raw, want := range cases {
		if got := niceStep(raw); math.Abs(got-want) > want*1e-9 {
			t.Fatalf("niceStep(%g) = %g, want %g", raw, got, want)
		}
	}
	if niceStep(0) != 1 {
		t.Fatal("degenerate step")
	}
}

func TestTickLabels(t *testing.T) {
	cases := map[float64]string{
		2000000: "2M", 50000: "50k", 42: "42", 3: "3", 0.25: "0.25",
	}
	for v, want := range cases {
		if got := tickLabel(v); got != want {
			t.Fatalf("tickLabel(%g) = %q, want %q", v, got, want)
		}
	}
}

func TestSortedByX(t *testing.T) {
	s := SortedByX(Series{Name: "s", X: []float64{3, 1, 2}, Y: []float64{30, 10, 20}})
	for i, want := range []float64{1, 2, 3} {
		if s.X[i] != want || s.Y[i] != want*10 {
			t.Fatalf("sorted series wrong at %d: %+v", i, s)
		}
	}
}

// Property: every in-range data point maps strictly inside the plot frame.
func TestPixInsideFrameProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
		}
		s, err := newScale(vals, false, 100, 500)
		if err != nil {
			return false
		}
		for _, v := range vals {
			p := s.pix(v)
			if p < 100 || p > 500 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
