// Package plot renders simple line charts as standalone SVG documents
// using only the standard library, so the reproduction can emit the
// paper's figures as figures (cmd/rcuda-repro -svg).
//
// The feature set is exactly what Figures 3-9 need: multiple named series,
// linear or logarithmic axes, nice-number ticks, a legend, and
// deterministic output (byte-identical for identical input).
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named polyline.
type Series struct {
	Name string
	X, Y []float64
}

// Chart describes a figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool
	LogY   bool
	Series []Series
}

// Layout constants (pixels).
const (
	marginLeft   = 70
	marginRight  = 150 // room for the legend
	marginTop    = 40
	marginBottom = 50
)

// palette holds distinguishable series colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e",
	"#9467bd", "#8c564b", "#17becf", "#7f7f7f",
}

// SVG renders the chart at the given canvas size.
func (c *Chart) SVG(width, height int) (string, error) {
	if width < 200 || height < 150 {
		return "", fmt.Errorf("plot: canvas %dx%d too small", width, height)
	}
	if len(c.Series) == 0 {
		return "", fmt.Errorf("plot: no series")
	}
	var xs, ys []float64
	for _, s := range c.Series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			return "", fmt.Errorf("plot: series %q has %d x and %d y values", s.Name, len(s.X), len(s.Y))
		}
		xs = append(xs, s.X...)
		ys = append(ys, s.Y...)
	}
	xScale, err := newScale(xs, c.LogX, marginLeft, width-marginRight)
	if err != nil {
		return "", fmt.Errorf("plot: x axis: %w", err)
	}
	yScale, err := newScale(ys, c.LogY, height-marginBottom, marginTop) // inverted: SVG y grows down
	if err != nil {
		return "", fmt.Errorf("plot: y axis: %w", err)
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&sb, `<text x="%d" y="22" font-size="15" font-family="sans-serif" text-anchor="middle">%s</text>`+"\n",
		width/2, escape(c.Title))

	// Axes box.
	fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="black"/>`+"\n",
		marginLeft, marginTop, width-marginLeft-marginRight, height-marginTop-marginBottom)

	// Ticks and grid.
	for _, t := range xScale.ticks() {
		px := xScale.pix(t)
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#dddddd"/>`+"\n",
			px, marginTop, px, height-marginBottom)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" font-size="11" font-family="sans-serif" text-anchor="middle">%s</text>`+"\n",
			px, height-marginBottom+16, tickLabel(t))
	}
	for _, t := range yScale.ticks() {
		py := yScale.pix(t)
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n",
			marginLeft, py, width-marginRight, py)
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" font-size="11" font-family="sans-serif" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, py+4, tickLabel(t))
	}

	// Axis labels.
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="12" font-family="sans-serif" text-anchor="middle">%s</text>`+"\n",
		(marginLeft+width-marginRight)/2, height-12, escape(c.XLabel))
	fmt.Fprintf(&sb, `<text x="16" y="%d" font-size="12" font-family="sans-serif" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		(marginTop+height-marginBottom)/2, (marginTop+height-marginBottom)/2, escape(c.YLabel))

	// Series polylines and legend.
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		var pts []string
		for j := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xScale.pix(s.X[j]), yScale.pix(s.Y[j])))
		}
		fmt.Fprintf(&sb, `<polyline fill="none" stroke="%s" stroke-width="1.8" points="%s"/>`+"\n",
			color, strings.Join(pts, " "))
		ly := marginTop + 14 + i*16
		fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="3"/>`+"\n",
			width-marginRight+10, ly, width-marginRight+30, ly, color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="11" font-family="sans-serif">%s</text>`+"\n",
			width-marginRight+36, ly+4, escape(s.Name))
	}
	sb.WriteString("</svg>\n")
	return sb.String(), nil
}

// scale maps data values to pixel coordinates, linearly or in log10 space.
type scale struct {
	lo, hi float64 // data range (log10-transformed when log)
	p0, p1 float64 // pixel range
	log    bool
}

func newScale(vals []float64, log bool, p0, p1 int) (*scale, error) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if log {
			if v <= 0 {
				return nil, fmt.Errorf("non-positive value %g on a log axis", v)
			}
			v = math.Log10(v)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo == hi { // a flat series still needs a span
		lo, hi = lo-1, hi+1
	}
	// Pad 2% so points do not sit on the frame.
	pad := (hi - lo) * 0.02
	return &scale{lo: lo - pad, hi: hi + pad, p0: float64(p0), p1: float64(p1), log: log}, nil
}

// pix maps a data value to its pixel coordinate.
func (s *scale) pix(v float64) float64 {
	if s.log {
		v = math.Log10(v)
	}
	frac := (v - s.lo) / (s.hi - s.lo)
	return s.p0 + frac*(s.p1-s.p0)
}

// ticks returns nice tick positions in data space.
func (s *scale) ticks() []float64 {
	if s.log {
		var out []float64
		for e := math.Floor(s.lo); e <= math.Ceil(s.hi); e++ {
			v := math.Pow(10, e)
			if math.Log10(v) >= s.lo && math.Log10(v) <= s.hi {
				out = append(out, v)
			}
		}
		return out
	}
	span := s.hi - s.lo
	step := niceStep(span / 5)
	start := math.Ceil(s.lo/step) * step
	var out []float64
	for v := start; v <= s.hi+step/1e6; v += step {
		out = append(out, v)
	}
	return out
}

// niceStep rounds a raw step to 1, 2, or 5 times a power of ten.
func niceStep(raw float64) float64 {
	if raw <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	frac := raw / mag
	switch {
	case frac <= 1:
		return mag
	case frac <= 2:
		return 2 * mag
	case frac <= 5:
		return 5 * mag
	default:
		return 10 * mag
	}
}

// tickLabel formats a tick value compactly.
func tickLabel(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.0fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	case av >= 10 || v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

// escape guards text nodes against markup characters.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// SortedByX returns a copy of the series with points ordered by X, which
// polyline rendering requires.
func SortedByX(s Series) Series {
	idx := make([]int, len(s.X))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
	out := Series{Name: s.Name, X: make([]float64, len(idx)), Y: make([]float64, len(idx))}
	for i, j := range idx {
		out.X[i], out.Y[i] = s.X[j], s.Y[j]
	}
	return out
}
