package netsim

import (
	"testing"
	"time"
)

func TestTCPModelSegments(t *testing.T) {
	m := GigaETCPModel()
	cases := map[int64]int{
		0: 1, 1: 1, 1460: 1, 1461: 2, 7856: 6, 21490: 15,
	}
	for payload, want := range cases {
		if got := m.Segments(payload); got != want {
			t.Fatalf("Segments(%d) = %d, want %d", payload, got, want)
		}
	}
}

func TestTCPModelFlights(t *testing.T) {
	m := GigaETCPModel() // initial window 1, doubling
	cases := map[int]int{
		1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 15: 4, 16: 5,
	}
	for segs, want := range cases {
		if got := m.Flights(segs); got != want {
			t.Fatalf("Flights(%d) = %d, want %d", segs, got, want)
		}
	}
	if m.Flights(0) != 1 {
		t.Fatal("zero segments still cost one flight")
	}
}

// The headline check: the mechanistic model reproduces the paper's
// measured 21,490-byte module transfer (338.7 µs) within a few percent —
// 15 segments in 4 slow-start flights, 3 RTT stalls.
func TestTCPModelPredictsModuleTransfer(t *testing.T) {
	m := GigaETCPModel()
	got, err := m.OneWay(21490)
	if err != nil {
		t.Fatal(err)
	}
	us := got.Seconds() * 1e6
	if us < 320 || us > 360 {
		t.Fatalf("predicted %0.1f µs for the 21 KB module, measured 338.7 µs", us)
	}
}

func TestTCPModelMinimalFrame(t *testing.T) {
	m := GigaETCPModel()
	got, err := m.OneWay(4)
	if err != nil {
		t.Fatal(err)
	}
	// A single-segment message is base latency plus negligible
	// serialization: the measured 22.2 µs anchor.
	us := got.Seconds() * 1e6
	if us < 22 || us > 23 {
		t.Fatalf("predicted %0.1f µs for a 4-byte message, measured 22.2 µs", us)
	}
}

func TestTCPModelMonotone(t *testing.T) {
	m := GigaETCPModel()
	var prev time.Duration
	for payload := int64(1); payload <= 64*1024; payload *= 2 {
		got, err := m.OneWay(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got < prev {
			t.Fatalf("latency decreased at %d bytes", payload)
		}
		prev = got
	}
}

func TestTCPModelStaircase(t *testing.T) {
	// The model must show the staircase the paper plots: a payload just
	// past a flight boundary jumps by one RTT.
	m := GigaETCPModel()
	justUnder, err := m.OneWay(int64(m.MSS)) // 1 segment, 1 flight
	if err != nil {
		t.Fatal(err)
	}
	justOver, err := m.OneWay(int64(m.MSS) + 1) // 2 segments, 2 flights
	if err != nil {
		t.Fatal(err)
	}
	jump := justOver - justUnder
	rtt := 2 * m.BaseLatency
	if jump < rtt || jump > rtt+10*time.Microsecond {
		t.Fatalf("flight-boundary jump = %v, want ≈ one RTT (%v)", jump, rtt)
	}
}

func TestTCPModelExplainsAnchors(t *testing.T) {
	m := GigaETCPModel()
	worst, err := m.ExplainAnchors()
	if err != nil {
		t.Fatal(err)
	}
	// The mechanistic model cannot capture per-run measurement noise (the
	// 12-byte anchor reads 44.4 µs against a ~22 µs mechanism), but it
	// must land within 2x everywhere and explain the overall shape.
	if worst > 1.0 {
		t.Fatalf("worst anchor deviation %.0f%%, want within 100%%", worst*100)
	}
}

func TestTCPModelValidation(t *testing.T) {
	if _, err := (TCPMicroModel{}).OneWay(100); err == nil {
		t.Fatal("zero model must fail")
	}
	if _, err := (TCPMicroModel{BaseLatency: time.Microsecond, WireMBps: 100, MSS: 0, InitialWindow: 1}).OneWay(1); err == nil {
		t.Fatal("zero MSS must fail")
	}
}

func TestGigaEMechanisticLink(t *testing.T) {
	mech := GigaEMechanistic()
	measured := GigaE()
	if !mech.Characterized() {
		t.Fatal("mechanistic link must be characterized")
	}
	// Bulk behavior is identical.
	if mech.PayloadTime(64<<20) != measured.PayloadTime(64<<20) {
		t.Fatal("bulk payload time must match the measured link")
	}
	if mech.WireTime(8<<20) != measured.WireTime(8<<20) {
		t.Fatal("bulk wire time must match the measured link")
	}
	// Small-message behavior comes from the model: the module transfer
	// lands near the measured anchor.
	mechUS := mech.SmallMessageTime(21490).Seconds() * 1e6
	if mechUS < 320 || mechUS > 360 {
		t.Fatalf("mechanistic 21KB latency %.1f µs, measured 338.7", mechUS)
	}
	// And the two links agree within 2x across the control-message range
	// (the measured table carries noise the model cannot know).
	for _, payload := range []int64{4, 64, 512, 4096, 7856, 21490} {
		a := mech.SmallMessageTime(payload).Seconds()
		b := measured.SmallMessageTime(payload).Seconds()
		if a > 2*b || b > 2*a {
			t.Fatalf("mechanistic vs measured at %dB: %.1fµs vs %.1fµs", payload, a*1e6, b*1e6)
		}
	}
}
