package netsim

import (
	"errors"
	"time"

	"rcuda/internal/stats"
)

// PingPong replays the paper's latency-characterization methodology against
// a simulated link: a customized ping-pong test over TCP sockets with
// Nagle's algorithm disabled. Small payloads are summarized by the average
// of many repetitions (250 in the paper); large payloads by the minimum
// (100 repetitions), which strips transient jitter and exposes the linear
// bandwidth regime.
type PingPong struct {
	Link  *Link
	Noise *Noise
	// Nagle, when true, re-enables the modeled Nagle delay that the paper
	// explicitly disables: small sends wait for the delayed-ACK timer.
	Nagle bool
}

// nagleDelay approximates the sender-side stall Nagle's algorithm introduces
// on sub-MSS messages when the previous segment is unacknowledged: the
// classic interaction with delayed ACKs costs on the order of the delayed
// ACK timer. Only small messages are affected.
const nagleDelay = 40 * time.Millisecond

const mss = 1460 // Ethernet TCP maximum segment size in bytes

// RoundTrip returns one simulated ping-pong round trip for a payload of the
// given size: two one-way wire times plus noise (plus the Nagle stall when
// enabled and the payload is below one MSS).
func (p *PingPong) RoundTrip(bytes int64) time.Duration {
	t := p.Link.WireTime(bytes) * 2
	if p.Nagle && bytes < mss {
		t += nagleDelay
	}
	return p.Noise.Perturb(t)
}

// OneWay returns half of one simulated round trip, the quantity the paper
// reports as end-to-end latency ("bandwidth is extracted from the measured
// round-trip time divided by two").
func (p *PingPong) OneWay(bytes int64) time.Duration {
	return p.RoundTrip(bytes) / 2
}

// MeasureSmall runs reps round trips for every size and returns the average
// one-way latency per size in µs, reproducing the left-hand plots of
// Figures 3 and 4.
func (p *PingPong) MeasureSmall(sizes []int64, reps int) []stats.Point {
	out := make([]stats.Point, 0, len(sizes))
	for _, sz := range sizes {
		samples := make([]float64, reps)
		for i := range samples {
			samples[i] = float64(p.OneWay(sz)) / float64(time.Microsecond)
		}
		out = append(out, stats.Point{X: float64(sz), Y: stats.Mean(samples)})
	}
	return out
}

// MeasureLarge runs reps round trips for every size and returns the minimum
// one-way latency per size in ms, reproducing the right-hand plots of
// Figures 3 and 4.
func (p *PingPong) MeasureLarge(sizes []int64, reps int) []stats.Point {
	out := make([]stats.Point, 0, len(sizes))
	for _, sz := range sizes {
		samples := make([]float64, reps)
		for i := range samples {
			samples[i] = float64(p.OneWay(sz)) / float64(time.Millisecond)
		}
		out = append(out, stats.Point{X: BytesToMiB(sz), Y: stats.Min(samples)})
	}
	return out
}

// FitLarge performs the paper's linear regression of one-way latency (ms)
// against payload size (MiB) over measured large-payload points, yielding
// the f/g-style transfer-time function for this link.
func FitLarge(points []stats.Point) (stats.Linear, error) {
	if len(points) < 2 {
		return stats.Linear{}, errors.New("netsim: need at least two points to fit")
	}
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, pt := range points {
		xs[i], ys[i] = pt.X, pt.Y
	}
	return stats.FitLinear(xs, ys)
}

// EffectiveBandwidth derives the one-way throughput (MiB/s) implied by a
// fitted large-payload latency function, evaluated asymptotically as the
// inverse slope.
func EffectiveBandwidth(fit stats.Linear) float64 {
	if fit.Slope <= 0 {
		return 0
	}
	return 1e3 / fit.Slope
}
