// Package netsim models the cluster interconnects of the paper.
//
// Two real networks were characterized with ping-pong tests in the paper:
// 1 Gbps Ethernet (GigaE) and 40 Gbps InfiniBand (40GI). Their behavior is
// reproduced here from the published data: the small-message end-to-end
// latency anchor points of Table II (the left-hand plots of Figures 3 and
// 4), the large-payload linear regressions f(n) = 8.9n − 0.3 ms and
// g(n) = 0.7n + 2.8 ms, and the effective one-way bandwidths of 112.4 and
// 1367.1 MB/s. Five further HPC networks (10-Gigabit iWARP Ethernet,
// 10 Gbps InfiniBand, Myrinet-10G, and FPGA-/ASIC-based HyperTransport) are
// modeled from their published effective bandwidths only, exactly as the
// paper does.
//
// A Link distinguishes three notions of time:
//
//   - SmallMessageTime: the measured (interpolated) end-to-end latency of a
//     short control message — what Table II charges to cudaMalloc and
//     friends.
//   - PayloadTime: the idealized bandwidth-only transfer time of a bulk
//     payload — what Tables III and V charge to each cudaMemcpy.
//   - WireTime: what the simulated wire actually takes. For GigaE it adds a
//     TCP-window excess term on mid-size payloads; this systematic gap
//     between the wire and the linear model is what produces the paper's
//     large FFT cross-validation errors while leaving the MM errors near 1%.
//
// Throughout this package, "MB" follows the paper's usage and means MiB
// (2^20 bytes): the paper lists a 4·4096² = 64 MiB matrix as "64 MB" and its
// GigaE transfer as 569.4 ms at 112.4 MB/s, which is consistent only with
// binary megabytes.
package netsim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"rcuda/internal/stats"
)

// MiB is the paper's "MB": 2^20 bytes.
const MiB = 1 << 20

// BytesToMiB converts a byte count to the paper's MB unit.
func BytesToMiB(bytes int64) float64 { return float64(bytes) / MiB }

// Link models one interconnect.
type Link struct {
	name string
	// smallCurve interpolates measured one-way latency in µs for control
	// messages; nil for networks known only by bandwidth.
	smallCurve *stats.Curve
	// smallMax is the largest message size (bytes) covered by smallCurve.
	smallMax float64
	// bandwidthMBps is the effective one-way bandwidth in MiB/s.
	bandwidthMBps float64
	// regression is the published large-payload end-to-end latency fit
	// (ms as a function of MiB); nil when the paper gives none.
	regression *stats.Linear
	// excess returns extra wire milliseconds on a bulk payload of the
	// given MiB size beyond the bandwidth-only time (TCP window effects);
	// nil means the wire matches the bandwidth model exactly.
	excess func(mib float64) float64
}

// Name returns the network's short name as used in the paper's tables.
func (l *Link) Name() string { return l.name }

// Bandwidth returns the effective one-way bandwidth in MiB/s.
func (l *Link) Bandwidth() float64 { return l.bandwidthMBps }

// Regression returns the published large-payload latency fit (milliseconds
// as a function of payload MiB) and whether one exists for this network.
func (l *Link) Regression() (stats.Linear, bool) {
	if l.regression == nil {
		return stats.Linear{}, false
	}
	return *l.regression, true
}

// Characterized reports whether the link has measured small-message data
// (true for the two real testbed networks, false for the five modeled ones).
func (l *Link) Characterized() bool { return l.smallCurve != nil }

// SmallMessageTime returns the modeled one-way latency of a control message
// of the given size. For characterized networks it interpolates the measured
// curve (Figures 3/4, left); for bandwidth-only networks it falls back to
// the bandwidth model.
func (l *Link) SmallMessageTime(bytes int64) time.Duration {
	if l.smallCurve != nil && float64(bytes) <= l.smallMax {
		return microseconds(l.smallCurve.Eval(float64(bytes)))
	}
	return l.PayloadTime(bytes)
}

// PayloadTime returns the idealized bandwidth-only transfer time for a bulk
// payload, t = size / bandwidth. This is the per-copy cost of Tables III
// and V and the quantity the estimation model subtracts and adds.
func (l *Link) PayloadTime(bytes int64) time.Duration {
	ms := BytesToMiB(bytes) / l.bandwidthMBps * 1e3
	return milliseconds(ms)
}

// WireTime returns the time the simulated wire actually takes to move a
// message one way. Control-message sizes use the measured curve; bulk sizes
// use the bandwidth model plus any TCP excess.
func (l *Link) WireTime(bytes int64) time.Duration {
	if l.smallCurve != nil && float64(bytes) <= l.smallMax {
		return microseconds(l.smallCurve.Eval(float64(bytes)))
	}
	t := l.PayloadTime(bytes)
	if l.excess != nil {
		t += milliseconds(l.excess(BytesToMiB(bytes)))
	}
	return t
}

func microseconds(us float64) time.Duration {
	return time.Duration(us * float64(time.Microsecond))
}

func milliseconds(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

// mustCurve builds an interpolation curve from anchor points, panicking on
// programmer error (the anchors are package constants).
func mustCurve(pts []stats.Point) *stats.Curve {
	c, err := stats.NewCurve(pts)
	if err != nil {
		panic(fmt.Sprintf("netsim: bad anchor table: %v", err))
	}
	return c
}

// maxX returns the largest anchor X.
func maxX(pts []stats.Point) float64 {
	m := pts[0].X
	for _, p := range pts[1:] {
		if p.X > m {
			m = p.X
		}
	}
	return m
}

// Small-message one-way latency anchors (bytes → µs), read off the paper's
// Table II, which in turn interpolates the measured left-hand plots of
// Figures 3 and 4. The non-monotonic 12-byte GigaE point is in the measured
// data (the paper discusses the irregular small-payload response of TCP).
var (
	gigaESmallAnchors = []stats.Point{
		{X: 4, Y: 22.2}, {X: 8, Y: 22.2}, {X: 12, Y: 44.4}, {X: 20, Y: 22.4},
		{X: 52, Y: 23.1}, {X: 58, Y: 23.2}, {X: 7856, Y: 233.9}, {X: 21490, Y: 338.7},
	}
	ib40SmallAnchors = []stats.Point{
		{X: 4, Y: 27.9}, {X: 8, Y: 27.9}, {X: 12, Y: 20.0}, {X: 20, Y: 27.8},
		{X: 52, Y: 27.9}, {X: 58, Y: 27.9}, {X: 7856, Y: 39.5}, {X: 21490, Y: 80.9},
	}
)

// gigaETCPExcess models the extra wire time (ms) that TCP window dynamics
// add to a GigaE bulk transfer of n MiB beyond the bandwidth-only model.
// The hump peaks around 8–32 MiB — exactly the FFT working-set range — and
// decays into the noise at the ≥192 MiB transfers of the MM case study,
// reproducing the paper's observation that the extracted "fixed time" is
// network-independent for MM but diverges for FFT.
func gigaETCPExcess(mib float64) float64 {
	return 2.8*mib*math.Exp(-mib/20) + 16*math.Exp(-mib/150)
}

// GigaE returns the 1 Gbps Ethernet testbed network: measured small-message
// curve, f(n) = 8.9n − 0.3 ms large-payload fit, 112.4 MB/s effective
// one-way bandwidth, and a TCP-window excess on mid-size payloads.
func GigaE() *Link {
	return &Link{
		name:          "GigaE",
		smallCurve:    mustCurve(gigaESmallAnchors),
		smallMax:      maxX(gigaESmallAnchors),
		bandwidthMBps: 112.4,
		regression:    &stats.Linear{Slope: 8.9, Intercept: -0.3, R: 1.0},
		excess:        gigaETCPExcess,
	}
}

// IB40G returns the 40 Gbps InfiniBand testbed network: measured
// small-message curve, g(n) = 0.7n + 2.8 ms large-payload fit, and
// 1367.1 MB/s effective one-way bandwidth.
func IB40G() *Link {
	return &Link{
		name:          "40GI",
		smallCurve:    mustCurve(ib40SmallAnchors),
		smallMax:      maxX(ib40SmallAnchors),
		bandwidthMBps: 1367.1,
		regression:    &stats.Linear{Slope: 0.7, Intercept: 2.8, R: 1.0},
	}
}

// TenGigE returns the 10-Gigabit iWARP Ethernet target network (NetEffect
// NE010e adapters, 880 MB/s one-way effective bandwidth, per Rashti &
// Afsahi).
func TenGigE() *Link { return &Link{name: "10GE", bandwidthMBps: 880} }

// IB10G returns the 10 Gbps InfiniBand target network (Mellanox
// MHEA28-XT HCAs, "roughly 970 MB/s").
func IB10G() *Link { return &Link{name: "10GI", bandwidthMBps: 970} }

// Myrinet10G returns the Myrinet-10G target network (Myri 10G-PCIE-8A-C
// NICs, 750 MB/s effective).
func Myrinet10G() *Link { return &Link{name: "Myr", bandwidthMBps: 750} }

// FHT returns the FPGA-based HyperTransport network: a 16-bit link at
// 400 MHz (12.8 Gb/s raw) at 88% packet efficiency (64-byte packets with
// 8-byte headers), i.e. 1442 MB/s effective.
func FHT() *Link { return &Link{name: "F-HT", bandwidthMBps: 1442} }

// AHT returns the ASIC-based HyperTransport network, assumed in the paper
// to double the FPGA bandwidth: 2884 MB/s effective.
func AHT() *Link { return &Link{name: "A-HT", bandwidthMBps: 2884} }

// Custom builds a bandwidth-only network model for an interconnect the
// paper does not cover, so the estimation methodology can be applied to
// any cluster fabric given its effective one-way bandwidth in MiB/s —
// "a tool to determine the behavior of our proposal over different
// interconnects with no need of the physical equipment".
func Custom(name string, bandwidthMBps float64) (*Link, error) {
	if name == "" {
		return nil, fmt.Errorf("netsim: custom network needs a name")
	}
	if bandwidthMBps <= 0 {
		return nil, fmt.Errorf("netsim: custom network %q needs a positive bandwidth, got %g", name, bandwidthMBps)
	}
	return &Link{name: name, bandwidthMBps: bandwidthMBps}, nil
}

// Testbed returns the two physically measured networks, GigaE and 40GI.
func Testbed() []*Link { return []*Link{GigaE(), IB40G()} }

// Targets returns the five modeled HPC networks of Section VI in the
// paper's order: 10GE, 10GI, Myr, F-HT, A-HT.
func Targets() []*Link {
	return []*Link{TenGigE(), IB10G(), Myrinet10G(), FHT(), AHT()}
}

// All returns every network the paper considers, testbed first.
func All() []*Link { return append(Testbed(), Targets()...) }

// ByName resolves a network by its table name (case-sensitive, e.g. "GigaE",
// "40GI", "10GE", "10GI", "Myr", "F-HT", "A-HT").
func ByName(name string) (*Link, error) {
	for _, l := range All() {
		if l.Name() == name {
			return l, nil
		}
	}
	known := make([]string, 0, 7)
	for _, l := range All() {
		known = append(known, l.Name())
	}
	sort.Strings(known)
	return nil, fmt.Errorf("netsim: unknown network %q (known: %v)", name, known)
}
