package netsim

import (
	"fmt"
	"math"
	"time"

	"rcuda/internal/stats"
)

// TCPMicroModel explains the "non-linear time response with the data
// payload" the paper observes for small messages on the GigaE network
// (Figure 3, left): for small transfers "the TCP window size and,
// therefore, the number of TCP frames and ACKs that have to be
// transmitted, introduce a delay that cannot be hidden".
//
// The model is mechanistic: a payload of n bytes becomes ⌈n/MSS⌉ segments;
// the sender transmits them in slow-start flights (the congestion window
// starts at InitialWindow segments and doubles per acknowledged flight),
// and every flight but the last stalls for one round trip waiting for its
// ACK. One-way time is then
//
//	base latency + serialization(n) + (flights − 1) · RTT.
//
// The empirical anchor table in this package remains the source of truth
// for simulation (it *is* the measurement); the micro-model's role is
// explanatory, and a test checks it reproduces the measured anchors to
// within modeling tolerance — including the large 21 KB module transfer,
// which it predicts within a few percent.
type TCPMicroModel struct {
	// BaseLatency is the one-way latency of a minimal frame: NIC, driver,
	// switch, and protocol-stack traversal.
	BaseLatency time.Duration
	// WireMBps is the link's serialization rate in MiB/s (raw Ethernet
	// payload rate, before TCP effects).
	WireMBps float64
	// MSS is the TCP maximum segment size.
	MSS int
	// InitialWindow is the slow-start initial congestion window in
	// segments (RFC 2581-era TCP on 2.6.18 kernels used 1-2).
	InitialWindow int
}

// GigaETCPModel returns the micro-model parameterized for the paper's
// testbed: measured 22.2 µs minimal one-way latency, 112.4 MB/s effective
// payload rate, standard Ethernet MSS, and an initial window of one
// segment.
func GigaETCPModel() TCPMicroModel {
	return TCPMicroModel{
		BaseLatency:   22200 * time.Nanosecond,
		WireMBps:      112.4,
		MSS:           1460,
		InitialWindow: 1,
	}
}

func (m TCPMicroModel) validate() error {
	if m.BaseLatency <= 0 || m.WireMBps <= 0 || m.MSS <= 0 || m.InitialWindow <= 0 {
		return fmt.Errorf("netsim: incomplete TCP micro-model %+v", m)
	}
	return nil
}

// Segments returns the number of TCP segments a payload needs.
func (m TCPMicroModel) Segments(payload int64) int {
	if payload <= 0 {
		return 1 // even an empty message occupies one frame
	}
	return int((payload + int64(m.MSS) - 1) / int64(m.MSS))
}

// Flights returns the number of slow-start flights needed to move the
// given number of segments, with the window doubling per flight.
func (m TCPMicroModel) Flights(segments int) int {
	if segments <= 0 {
		return 1
	}
	window := m.InitialWindow
	flights := 0
	for segments > 0 {
		flights++
		segments -= window
		if window < 1<<20 {
			window *= 2
		}
	}
	return flights
}

// OneWay models the one-way latency of a payload: base latency plus
// serialization plus one RTT stall per flight beyond the first.
func (m TCPMicroModel) OneWay(payload int64) (time.Duration, error) {
	if err := m.validate(); err != nil {
		return 0, err
	}
	serialization := time.Duration(float64(payload) / (m.WireMBps * (1 << 20)) * float64(time.Second))
	stalls := m.Flights(m.Segments(payload)) - 1
	rtt := 2 * m.BaseLatency
	return m.BaseLatency + serialization + time.Duration(stalls)*rtt, nil
}

// GigaEMechanistic returns a GigaE link whose small-message latencies come
// from the TCP micro-model instead of the measured anchor table — an
// ablation showing how far first principles get without the testbed. Bulk
// payload behavior (bandwidth and TCP-window excess) is unchanged.
func GigaEMechanistic() *Link {
	m := GigaETCPModel()
	pts := make([]stats.Point, 0, 64)
	// Sample the staircase densely enough that interpolation preserves
	// the flight boundaries across the control-message range.
	for payload := int64(4); payload <= 22*1024; payload += 64 {
		t, err := m.OneWay(payload)
		if err != nil {
			panic(fmt.Sprintf("netsim: mechanistic model: %v", err))
		}
		pts = append(pts, stats.Point{X: float64(payload), Y: t.Seconds() * 1e6})
	}
	base := GigaE()
	return &Link{
		name:          "GigaE-mech",
		smallCurve:    mustCurve(pts),
		smallMax:      pts[len(pts)-1].X,
		bandwidthMBps: base.bandwidthMBps,
		regression:    base.regression,
		excess:        base.excess,
	}
}

// ExplainAnchors compares the micro-model's predictions against the
// package's measured GigaE anchor table, returning the worst relative
// deviation. Small anchors carry measurement noise the mechanistic model
// cannot know (the paper's own plot is irregular below 100 bytes), so
// anchors below one MSS are compared against the base latency band rather
// than point values.
func (m TCPMicroModel) ExplainAnchors() (worstRel float64, err error) {
	for _, anchor := range gigaESmallAnchors {
		predicted, err := m.OneWay(int64(anchor.X))
		if err != nil {
			return 0, err
		}
		got := predicted.Seconds() * 1e6 // µs
		rel := math.Abs(got-anchor.Y) / anchor.Y
		if rel > worstRel {
			worstRel = rel
		}
	}
	return worstRel, nil
}
