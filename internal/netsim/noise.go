package netsim

import (
	"math/rand"
	"sync"
	"time"
)

// Noise is a deterministic, seeded source of measurement variability. It is
// applied multiplicatively to modeled durations, emulating the run-to-run
// jitter the paper reports (standard deviations up to 22.7 µs on GigaE
// small-message latencies and up to 1.0 s on the largest MM executions).
// A nil *Noise is valid and means "no noise".
type Noise struct {
	mu    sync.Mutex
	rng   *rand.Rand
	sigma float64
	// Latency-spike schedule (see NewNoiseWithSpikes): every spikeEvery-th
	// Perturb call additionally pays spike on top of its jittered duration.
	spikeEvery int
	spike      time.Duration
	calls      int
}

// NewNoise returns a noise source with the given seed and relative standard
// deviation (e.g. 0.008 for 0.8%). A sigma of 0 yields a pass-through
// source that still consumes no randomness.
func NewNoise(seed int64, sigma float64) *Noise {
	return &Noise{rng: rand.New(rand.NewSource(seed)), sigma: sigma}
}

// NewNoiseWithSpikes returns a noise source that, in addition to the
// Gaussian jitter of NewNoise, adds a deterministic latency spike to every
// every-th perturbed duration — the simulated-transport analogue of the
// fault layer's KindLatency, modeling periodic congestion on a shared
// link. every <= 0 disables spikes.
func NewNoiseWithSpikes(seed int64, sigma float64, every int, spike time.Duration) *Noise {
	n := NewNoise(seed, sigma)
	if every > 0 && spike > 0 {
		n.spikeEvery, n.spike = every, spike
	}
	return n
}

// Perturb scales d by a factor drawn from N(1, sigma), clamped to [0.5, 1.5]
// so a single extreme draw cannot produce a negative or absurd latency.
func (n *Noise) Perturb(d time.Duration) time.Duration {
	if n == nil || (n.sigma == 0 && n.spikeEvery == 0) {
		return d
	}
	var spike time.Duration
	n.mu.Lock()
	f := 1.0
	if n.sigma != 0 {
		f = 1 + n.rng.NormFloat64()*n.sigma
	}
	if n.spikeEvery > 0 {
		n.calls++
		if n.calls%n.spikeEvery == 0 {
			spike = n.spike
		}
	}
	n.mu.Unlock()
	if f < 0.5 {
		f = 0.5
	} else if f > 1.5 {
		f = 1.5
	}
	return time.Duration(float64(d)*f) + spike
}

// Factor returns one multiplicative jitter factor without an associated
// duration, for callers that perturb scalar milliseconds.
func (n *Noise) Factor() float64 {
	if n == nil || n.sigma == 0 {
		return 1
	}
	n.mu.Lock()
	f := 1 + n.rng.NormFloat64()*n.sigma
	n.mu.Unlock()
	if f < 0.5 {
		f = 0.5
	} else if f > 1.5 {
		f = 1.5
	}
	return f
}
