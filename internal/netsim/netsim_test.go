package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"rcuda/internal/stats"
)

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

// Table II anchors: the small-message model must return exactly the paper's
// interpolated values at the anchor sizes.
func TestGigaESmallMessageAnchors(t *testing.T) {
	l := GigaE()
	cases := map[int64]float64{
		4: 22.2, 8: 22.2, 12: 44.4, 20: 22.4, 52: 23.1, 58: 23.2,
		7856: 233.9, 21490: 338.7,
	}
	for sz, want := range cases {
		approx(t, us(l.SmallMessageTime(sz)), want, 0.05, "GigaE small msg")
	}
}

func TestIB40SmallMessageAnchors(t *testing.T) {
	l := IB40G()
	cases := map[int64]float64{
		4: 27.9, 8: 27.9, 12: 20.0, 20: 27.8, 52: 27.9, 58: 27.9,
		7856: 39.5, 21490: 80.9,
	}
	for sz, want := range cases {
		approx(t, us(l.SmallMessageTime(sz)), want, 0.05, "40GI small msg")
	}
}

// Table III, MM column: a 64 MB copy takes 569.4 ms on GigaE and 46.8 ms on
// 40GI under the bandwidth-only payload model.
func TestPayloadTimeMatchesTableIII(t *testing.T) {
	mm := map[int64][2]float64{ // bytes -> {GigaE ms, 40GI ms}
		64 * MiB:   {569.4, 46.8},
		144 * MiB:  {1281.1, 105.3},
		256 * MiB:  {2277.6, 187.3},
		400 * MiB:  {3558.7, 292.6},
		576 * MiB:  {5124.6, 421.3},
		784 * MiB:  {6975.1, 573.5},
		1024 * MiB: {9110.3, 749.0},
		1296 * MiB: {11530.2, 948.0},
	}
	ge, ib := GigaE(), IB40G()
	for bytes, want := range mm {
		approx(t, ms(ge.PayloadTime(bytes)), want[0], want[0]*0.001, "GigaE payload")
		approx(t, ms(ib.PayloadTime(bytes)), want[1], want[1]*0.002, "40GI payload")
	}
}

// Table III, FFT column (8 MB batch=2048 up to 64 MB batch=16384).
func TestPayloadTimeFFTSizes(t *testing.T) {
	ge, ib := GigaE(), IB40G()
	approx(t, ms(ge.PayloadTime(8*MiB)), 71.2, 0.1, "GigaE 8MB")
	approx(t, ms(ib.PayloadTime(8*MiB)), 5.9, 0.1, "40GI 8MB")
	approx(t, ms(ge.PayloadTime(48*MiB)), 427.0, 0.5, "GigaE 48MB")
	approx(t, ms(ib.PayloadTime(48*MiB)), 35.1, 0.1, "40GI 48MB")
}

// Table V: payload times on the five target networks.
func TestPayloadTimeTargetsMatchTableV(t *testing.T) {
	want := map[string]map[int64]float64{
		"10GE": {64 * MiB: 72.7, 1296 * MiB: 1472.7, 8 * MiB: 9.1},
		"10GI": {64 * MiB: 66.0, 1296 * MiB: 1336.1, 8 * MiB: 8.2},
		"Myr":  {64 * MiB: 85.3, 1296 * MiB: 1728.0, 8 * MiB: 10.7},
		"F-HT": {64 * MiB: 44.4, 1296 * MiB: 898.8, 8 * MiB: 5.5},
		"A-HT": {64 * MiB: 22.2, 1296 * MiB: 449.4, 8 * MiB: 2.8},
	}
	for name, cases := range want {
		l, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for bytes, wantMS := range cases {
			approx(t, ms(l.PayloadTime(bytes)), wantMS, wantMS*0.01+0.05, name+" payload")
		}
	}
}

func TestRegressionsPublished(t *testing.T) {
	f, ok := GigaE().Regression()
	if !ok {
		t.Fatal("GigaE must publish its regression")
	}
	approx(t, f.Eval(64), 8.9*64-0.3, 1e-9, "f(64)")
	g, ok := IB40G().Regression()
	if !ok {
		t.Fatal("40GI must publish its regression")
	}
	approx(t, g.Eval(64), 0.7*64+2.8, 1e-9, "g(64)")
	if _, ok := TenGigE().Regression(); ok {
		t.Fatal("modeled networks have no measured regression")
	}
}

func TestWireTimeGigaEIncludesTCPExcess(t *testing.T) {
	l := GigaE()
	// At 8 MiB (FFT batch 2048) the wire is markedly slower than the
	// bandwidth model — this is the source of the paper's 33.9% FFT
	// cross-validation error.
	wire := ms(l.WireTime(8 * MiB))
	model := ms(l.PayloadTime(8 * MiB))
	if wire-model < 20 || wire-model > 45 {
		t.Fatalf("GigaE 8MiB wire excess = %.1f ms, want 20-45 ms", wire-model)
	}
	// At MM sizes (>= 192 MiB per execution, 64+ MiB per copy) the excess
	// must be small relative to the transfer: the paper's MM fixed times
	// are nearly network-independent.
	wire, model = ms(l.WireTime(256*MiB)), ms(l.PayloadTime(256*MiB))
	if rel := (wire - model) / model; rel > 0.01 {
		t.Fatalf("GigaE 256MiB relative excess = %.3f, want <= 1%%", rel)
	}
}

func TestWireTime40GIMatchesBandwidthModel(t *testing.T) {
	l := IB40G()
	for _, bytes := range []int64{8 * MiB, 64 * MiB, 1296 * MiB} {
		if got, want := l.WireTime(bytes), l.PayloadTime(bytes); got != want {
			t.Fatalf("40GI wire time %v != payload time %v at %d bytes", got, want, bytes)
		}
	}
}

func TestWireTimeMonotoneLargePayloads(t *testing.T) {
	for _, l := range All() {
		prev := time.Duration(0)
		for bytes := int64(1 * MiB); bytes <= 1400*MiB; bytes += 50 * MiB {
			cur := l.WireTime(bytes)
			if cur < prev {
				t.Fatalf("%s: wire time decreased from %v to %v at %d bytes", l.Name(), prev, cur, bytes)
			}
			prev = cur
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"GigaE", "40GI", "10GE", "10GI", "Myr", "F-HT", "A-HT"} {
		l, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if l.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, l.Name())
		}
	}
	if _, err := ByName("token-ring"); err == nil {
		t.Fatal("want error for unknown network")
	}
}

func TestAllOrderingAndCount(t *testing.T) {
	all := All()
	if len(all) != 7 {
		t.Fatalf("All() returned %d networks, want 7", len(all))
	}
	wantOrder := []string{"GigaE", "40GI", "10GE", "10GI", "Myr", "F-HT", "A-HT"}
	for i, l := range all {
		if l.Name() != wantOrder[i] {
			t.Fatalf("All()[%d] = %s, want %s", i, l.Name(), wantOrder[i])
		}
	}
}

func TestBandwidthsOrdering(t *testing.T) {
	// Sanity on the published bandwidth hierarchy:
	// Myr < 10GE < 10GI < GigaE*12 < F-HT < A-HT, and 40GI sits between
	// F-HT and A-HT... simply assert the exact published values.
	want := map[string]float64{
		"GigaE": 112.4, "40GI": 1367.1, "10GE": 880, "10GI": 970,
		"Myr": 750, "F-HT": 1442, "A-HT": 2884,
	}
	for name, bw := range want {
		l, _ := ByName(name)
		approx(t, l.Bandwidth(), bw, 1e-9, name+" bandwidth")
	}
}

func TestCharacterized(t *testing.T) {
	if !GigaE().Characterized() || !IB40G().Characterized() {
		t.Fatal("testbed networks must be characterized")
	}
	for _, l := range Targets() {
		if l.Characterized() {
			t.Fatalf("%s should not be characterized", l.Name())
		}
	}
}

func TestNoiseDeterministic(t *testing.T) {
	a := NewNoise(42, 0.01)
	b := NewNoise(42, 0.01)
	for i := 0; i < 100; i++ {
		if a.Perturb(time.Second) != b.Perturb(time.Second) {
			t.Fatal("same seed must produce the same jitter sequence")
		}
	}
}

func TestNoiseNilAndZeroSigma(t *testing.T) {
	var n *Noise
	if n.Perturb(time.Second) != time.Second {
		t.Fatal("nil noise must be pass-through")
	}
	if n.Factor() != 1 {
		t.Fatal("nil noise factor must be 1")
	}
	z := NewNoise(1, 0)
	if z.Perturb(time.Second) != time.Second {
		t.Fatal("zero-sigma noise must be pass-through")
	}
}

func TestNoiseBounded(t *testing.T) {
	n := NewNoise(7, 10) // absurd sigma to force clamping
	for i := 0; i < 1000; i++ {
		d := n.Perturb(time.Second)
		if d < time.Second/2 || d > 3*time.Second/2 {
			t.Fatalf("perturbed duration %v escaped the [0.5s, 1.5s] clamp", d)
		}
	}
}

func TestNoiseSpikesFireOnSchedule(t *testing.T) {
	const every = 5
	const spike = 10 * time.Millisecond
	// Zero sigma isolates the spike schedule: only every fifth call pays.
	n := NewNoiseWithSpikes(3, 0, every, spike)
	for i := 1; i <= 20; i++ {
		got := n.Perturb(time.Millisecond)
		want := time.Millisecond
		if i%every == 0 {
			want += spike
		}
		if got != want {
			t.Fatalf("call %d perturbed to %v, want %v", i, got, want)
		}
	}
	// With sigma the spike still lands deterministically on schedule.
	a := NewNoiseWithSpikes(9, 0.01, every, spike)
	b := NewNoiseWithSpikes(9, 0.01, every, spike)
	spiked := 0
	for i := 1; i <= 100; i++ {
		da, db := a.Perturb(time.Millisecond), b.Perturb(time.Millisecond)
		if da != db {
			t.Fatal("same seed must produce the same spiked sequence")
		}
		if da >= spike {
			spiked++
		}
	}
	if spiked != 100/every {
		t.Fatalf("%d spikes in 100 calls, want %d", spiked, 100/every)
	}
	// Disabled schedules are plain noise.
	if d := NewNoiseWithSpikes(1, 0, 0, spike).Perturb(time.Second); d != time.Second {
		t.Fatalf("every=0 must disable spikes, got %v", d)
	}
}

func TestNoisePropertyNonNegative(t *testing.T) {
	f := func(seed int64, millis uint16) bool {
		n := NewNoise(seed, 0.05)
		d := time.Duration(millis) * time.Millisecond
		return n.Perturb(d) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPingPongRecoversBandwidth(t *testing.T) {
	// Run the paper's methodology end to end on the simulated 40GI link:
	// measure large payloads, fit a line, and check the implied bandwidth.
	pp := &PingPong{Link: IB40G(), Noise: NewNoise(1, 0.005)}
	sizes := []int64{8 * MiB, 16 * MiB, 32 * MiB, 64 * MiB, 128 * MiB, 256 * MiB}
	pts := pp.MeasureLarge(sizes, 100)
	fit, err := FitLarge(pts)
	if err != nil {
		t.Fatal(err)
	}
	bw := EffectiveBandwidth(fit)
	if math.Abs(bw-1367.1) > 40 {
		t.Fatalf("recovered bandwidth %.1f MB/s, want ~1367.1", bw)
	}
	if fit.R < 0.999 {
		t.Fatalf("correlation %.5f, paper reports 1.0", fit.R)
	}
}

func TestPingPongGigaERecoversBandwidth(t *testing.T) {
	pp := &PingPong{Link: GigaE(), Noise: NewNoise(2, 0.005)}
	sizes := []int64{64 * MiB, 128 * MiB, 256 * MiB, 512 * MiB, 1024 * MiB}
	pts := pp.MeasureLarge(sizes, 50)
	fit, err := FitLarge(pts)
	if err != nil {
		t.Fatal(err)
	}
	bw := EffectiveBandwidth(fit)
	if math.Abs(bw-112.4) > 5 {
		t.Fatalf("recovered bandwidth %.1f MB/s, want ~112.4", bw)
	}
}

func TestPingPongSmallAverages(t *testing.T) {
	pp := &PingPong{Link: GigaE(), Noise: NewNoise(3, 0.01)}
	pts := pp.MeasureSmall([]int64{4, 8, 20}, 250)
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	// The 250-run average must land near the model's 22.2-22.4 µs.
	for _, p := range pts {
		if p.Y < 21 || p.Y > 24 {
			t.Fatalf("small-message average %v µs at %v bytes out of range", p.Y, p.X)
		}
	}
}

func TestNagleStallsSmallMessages(t *testing.T) {
	withNagle := &PingPong{Link: GigaE(), Nagle: true}
	without := &PingPong{Link: GigaE()}
	d := withNagle.RoundTrip(8) - without.RoundTrip(8)
	if d < 30*time.Millisecond {
		t.Fatalf("Nagle stall on 8-byte message = %v, want >= 30 ms", d)
	}
	// Above one MSS Nagle does not apply.
	if withNagle.RoundTrip(4096) != without.RoundTrip(4096) {
		t.Fatal("Nagle must not affect payloads above one MSS")
	}
}

func TestFitLargeTooFewPoints(t *testing.T) {
	if _, err := FitLarge(nil); err == nil {
		t.Fatal("want error for no points")
	}
}

func TestEffectiveBandwidthDegenerate(t *testing.T) {
	// Flat or negative slope yields zero bandwidth rather than dividing
	// by zero.
	if bw := EffectiveBandwidth(stats.Linear{Slope: 0, Intercept: 5}); bw != 0 {
		t.Fatalf("flat fit bandwidth = %v, want 0", bw)
	}
	if bw := EffectiveBandwidth(stats.Linear{Slope: -1}); bw != 0 {
		t.Fatalf("negative-slope fit bandwidth = %v, want 0", bw)
	}
	approx(t, EffectiveBandwidth(stats.Linear{Slope: 8.9}), 112.36, 0.01, "GigaE slope to bandwidth")
}

func TestCustomNetwork(t *testing.T) {
	l, err := Custom("100GbE", 11000)
	if err != nil {
		t.Fatal(err)
	}
	if l.Name() != "100GbE" || l.Characterized() {
		t.Fatalf("custom link %v", l)
	}
	// Payload arithmetic follows the bandwidth exactly.
	approx(t, ms(l.PayloadTime(11000*MiB)), 1000, 0.5, "custom payload time")
	if l.WireTime(64*MiB) != l.PayloadTime(64*MiB) {
		t.Fatal("custom links have no TCP excess")
	}
	if _, err := Custom("", 1); err == nil {
		t.Fatal("empty name must fail")
	}
	if _, err := Custom("x", 0); err == nil {
		t.Fatal("zero bandwidth must fail")
	}
	if _, err := Custom("x", -3); err == nil {
		t.Fatal("negative bandwidth must fail")
	}
}
