package netsim

import (
	"testing"
	"time"
)

func BenchmarkWireTimeGigaE(b *testing.B) {
	l := GigaE()
	b.ReportAllocs()
	var sink time.Duration
	for i := 0; i < b.N; i++ {
		sink += l.WireTime(int64(i%64) << 20)
	}
	benchSink = sink
}

func BenchmarkSmallMessageTime(b *testing.B) {
	l := GigaE()
	b.ReportAllocs()
	var sink time.Duration
	for i := 0; i < b.N; i++ {
		sink += l.SmallMessageTime(int64(4 + i%21000))
	}
	benchSink = sink
}

func BenchmarkPingPongRoundTrip(b *testing.B) {
	pp := &PingPong{Link: IB40G(), Noise: NewNoise(1, 0.005)}
	b.ReportAllocs()
	var sink time.Duration
	for i := 0; i < b.N; i++ {
		sink += pp.RoundTrip(8 << 20)
	}
	benchSink = sink
}

func BenchmarkTCPMicroModel(b *testing.B) {
	m := GigaETCPModel()
	b.ReportAllocs()
	var sink time.Duration
	for i := 0; i < b.N; i++ {
		d, err := m.OneWay(int64(i % 65536))
		if err != nil {
			b.Fatal(err)
		}
		sink += d
	}
	benchSink = sink
}

// benchSink defeats dead-code elimination in benchmarks.
var benchSink time.Duration
