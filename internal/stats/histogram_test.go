package stats

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewDurationHistogram()
	if h.N() != 0 || h.Percentile(99) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram: n=%d p99=%v mean=%v max=%v", h.N(), h.Percentile(99), h.Mean(), h.Max())
	}
}

func TestHistogramZeros(t *testing.T) {
	h := NewDurationHistogram()
	for i := 0; i < 100; i++ {
		h.Record(0)
	}
	h.Record(time.Millisecond)
	if got := h.Percentile(50); got != 0 {
		t.Fatalf("p50 of mostly-zero sample = %v, want 0", got)
	}
	if got := h.Percentile(100); got != time.Millisecond {
		t.Fatalf("p100 = %v, want 1ms (exact max)", got)
	}
}

// TestHistogramPercentileAccuracy checks the quantized percentile against
// the exact one on a heavy-tailed sample: error must stay within one bucket
// (under ~19%, one growth step).
func TestHistogramPercentileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewDurationHistogram()
	var xs []time.Duration
	for i := 0; i < 50000; i++ {
		d := time.Duration(rng.ExpFloat64() * float64(3*time.Millisecond))
		xs = append(xs, d)
		h.Record(d)
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	for _, p := range []float64{50, 90, 99, 99.9} {
		rank := int(p/100*float64(len(xs))) - 1
		if rank < 0 {
			rank = 0
		}
		exact := xs[rank]
		got := h.Percentile(p)
		ratio := float64(got) / float64(exact)
		if ratio < 0.95 || ratio > 1.25 {
			t.Fatalf("p%.1f = %v vs exact %v (ratio %.3f)", p, got, exact, ratio)
		}
	}
	if h.Max() != xs[len(xs)-1] {
		t.Fatalf("max %v, want %v", h.Max(), xs[len(xs)-1])
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := NewDurationHistogram()
	// Durations exactly on bucket bounds must land deterministically; the
	// recorded percentile of a single sample is at most one bucket above it.
	for _, d := range []time.Duration{time.Microsecond, 2 * time.Microsecond, time.Second} {
		h := NewDurationHistogram()
		h.Record(d)
		got := h.Percentile(100)
		if got < d || float64(got) > float64(d)*1.2 {
			t.Fatalf("single sample %v reported as %v", d, got)
		}
	}
	_ = h
}

func TestHistogramMerge(t *testing.T) {
	a, b, both := NewDurationHistogram(), NewDurationHistogram(), NewDurationHistogram()
	for i := 1; i <= 1000; i++ {
		d := time.Duration(i) * 10 * time.Microsecond
		both.Record(d)
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	a.Merge(b)
	if a.N() != both.N() || a.Max() != both.Max() {
		t.Fatalf("merged n=%d max=%v, want n=%d max=%v", a.N(), a.Max(), both.N(), both.Max())
	}
	for _, p := range []float64{50, 99} {
		if a.Percentile(p) != both.Percentile(p) {
			t.Fatalf("p%.0f merged %v != direct %v", p, a.Percentile(p), both.Percentile(p))
		}
	}
}

func TestHistogramMeanExact(t *testing.T) {
	h := NewDurationHistogram()
	h.Record(time.Millisecond)
	h.Record(3 * time.Millisecond)
	if got := h.Mean(); got != 2*time.Millisecond {
		t.Fatalf("mean = %v, want 2ms", got)
	}
}
