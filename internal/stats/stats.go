// Package stats implements the small statistical toolbox the paper's
// methodology relies on: least-squares linear regression with correlation
// coefficient (used to fit the large-payload latency functions f and g),
// summary statistics (mean, standard deviation, min/max — used to report
// measurement variability), and piecewise-linear interpolation (used to
// evaluate the measured small-message latency curves at arbitrary sizes).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when an operation needs more samples than
// were provided.
var ErrInsufficientData = errors.New("stats: insufficient data")

// ErrMismatchedLengths is returned when paired samples differ in length.
var ErrMismatchedLengths = errors.New("stats: x and y have different lengths")

// Linear is a least-squares fit y ≈ Slope*x + Intercept.
type Linear struct {
	Slope     float64
	Intercept float64
	// R is the Pearson correlation coefficient of the fitted data. The
	// paper reports r = 1.0 for both latency regressions.
	R float64
}

// Eval evaluates the fitted line at x.
func (l Linear) Eval(x float64) float64 { return l.Slope*x + l.Intercept }

// FitLinear computes the least-squares regression line through (x[i], y[i]).
// It needs at least two points with distinct x values.
func FitLinear(x, y []float64) (Linear, error) {
	if len(x) != len(y) {
		return Linear{}, ErrMismatchedLengths
	}
	if len(x) < 2 {
		return Linear{}, ErrInsufficientData
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Linear{}, errors.New("stats: all x values identical")
	}
	slope := sxy / sxx
	fit := Linear{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R = sxy / math.Sqrt(sxx*syy)
	} else {
		// A perfectly flat response is perfectly correlated with the
		// fitted (flat) line.
		fit.R = 1
	}
	return fit, nil
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N              int
	Mean, StdDev   float64
	Min, Max       float64
	Median         float64
	Sum            float64
	CoefficientVar float64 // StdDev/Mean; 0 when Mean == 0
}

// Summarize computes descriptive statistics. StdDev is the sample standard
// deviation (n-1 denominator), matching how measurement papers report
// variability; for a single sample it is zero.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrInsufficientData
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, v := range xs {
		s.Sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, v := range xs {
			d := v - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	if s.Mean != 0 {
		s.CoefficientVar = s.StdDev / s.Mean
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s, nil
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// Min returns the smallest element. It panics on an empty slice, mirroring
// the contract of the built-in min over a fixed argument list.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest element. It panics on an empty slice.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// RelativeError returns (estimated-measured)/measured, the signed error rate
// the paper reports in Table IV. measured must be non-zero.
func RelativeError(estimated, measured float64) float64 {
	return (estimated - measured) / measured
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of the sample using
// linear interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrInsufficientData
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile outside [0, 100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1], nil
	}
	frac := rank - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo]), nil
}

// Point is a node of a piecewise-linear curve.
type Point struct{ X, Y float64 }

// Curve is a piecewise-linear interpolator over a set of anchor points,
// used to evaluate the measured small-message latency plots (Figures 3 and
// 4, left) at arbitrary message sizes, exactly as the paper interpolates
// "if the exact value was not available".
type Curve struct {
	pts []Point
}

// NewCurve builds an interpolator from anchor points. Points are sorted by
// X; duplicate X values are rejected. At least one point is required.
func NewCurve(pts []Point) (*Curve, error) {
	if len(pts) == 0 {
		return nil, ErrInsufficientData
	}
	sorted := append([]Point(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].X < sorted[j].X })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].X == sorted[i-1].X {
			return nil, errors.New("stats: duplicate X in curve anchors")
		}
	}
	return &Curve{pts: sorted}, nil
}

// Eval interpolates linearly between the two anchors that bracket x. Outside
// the anchor range the curve is extrapolated along its first/last segment
// (or clamped when there is a single anchor).
func (c *Curve) Eval(x float64) float64 {
	pts := c.pts
	if len(pts) == 1 {
		return pts[0].Y
	}
	// Find the segment. sort.Search returns the first anchor with X >= x.
	i := sort.Search(len(pts), func(i int) bool { return pts[i].X >= x })
	switch {
	case i == 0:
		i = 1
	case i == len(pts):
		i = len(pts) - 1
	}
	a, b := pts[i-1], pts[i]
	t := (x - a.X) / (b.X - a.X)
	return a.Y + t*(b.Y-a.Y)
}

// Domain reports the [min, max] X range covered by actual anchors.
func (c *Curve) Domain() (lo, hi float64) {
	return c.pts[0].X, c.pts[len(c.pts)-1].X
}
