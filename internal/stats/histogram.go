package stats

import (
	"math"
	"time"
)

// DurationHistogram accumulates durations into logarithmic buckets so that
// percentiles over very large samples (the load generator records one
// queue-wait per simulated session, up to 10^6 of them) cost O(1) memory
// and stay exactly reproducible. Bucket k covers
// [unit·growth^(k-1), unit·growth^k); with the default quarter-octave
// growth the relative quantization error of a reported percentile is under
// ~9%, which is far below the run-to-run spread any real load test shows.
//
// The zero value is not ready for use; call NewDurationHistogram.
type DurationHistogram struct {
	unit    time.Duration
	growth  float64
	bounds  []time.Duration // upper bound of each bucket, ascending
	counts  []uint64        // len(bounds)+2: [<unit], buckets..., [overflow]
	n       uint64
	sum     float64 // seconds, to survive >292y aggregate totals
	max     time.Duration
	nonZero uint64
}

// histogramBuckets spans unit..unit·growth^buckets; 160 quarter-octave
// buckets over a 1µs unit reach ~1.2e6 s, beyond any plausible queue wait.
const histogramBuckets = 160

// NewDurationHistogram returns a histogram with 1µs resolution floor and
// quarter-octave (2^¼ ≈ 1.19x) bucket growth.
func NewDurationHistogram() *DurationHistogram {
	h := &DurationHistogram{unit: time.Microsecond, growth: math.Pow(2, 0.25)}
	h.bounds = make([]time.Duration, histogramBuckets)
	b := float64(h.unit)
	for i := range h.bounds {
		b *= h.growth
		h.bounds[i] = time.Duration(b)
	}
	h.counts = make([]uint64, len(h.bounds)+2)
	return h
}

// Record adds one duration. Negative durations count as zero.
func (h *DurationHistogram) Record(d time.Duration) {
	h.n++
	if d <= 0 {
		h.counts[0]++
		return
	}
	h.nonZero++
	h.sum += d.Seconds()
	if d > h.max {
		h.max = d
	}
	if d < h.unit {
		h.counts[0]++
		return
	}
	// Index by logarithm, then correct for rounding against the exact
	// bounds so bucket membership never depends on floating-point luck at
	// the edges.
	i := int(math.Log(float64(d)/float64(h.unit)) / math.Log(h.growth))
	if i < 0 {
		i = 0
	}
	if i >= len(h.bounds) {
		h.counts[len(h.counts)-1]++
		return
	}
	for i > 0 && d <= h.bounds[i-1] {
		i--
	}
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	if i >= len(h.bounds) {
		h.counts[len(h.counts)-1]++
		return
	}
	h.counts[i+1]++
}

// N returns the number of recorded durations.
func (h *DurationHistogram) N() uint64 { return h.n }

// Max returns the largest recorded duration.
func (h *DurationHistogram) Max() time.Duration { return h.max }

// Mean returns the arithmetic mean of the recorded durations (exact, not
// quantized), or zero when empty.
func (h *DurationHistogram) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.n) * float64(time.Second))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) as the upper bound
// of the bucket holding the p-th ranked sample — a deterministic,
// slightly conservative estimate. Samples below the resolution floor
// report zero; the overflow bucket reports the exact maximum.
func (h *DurationHistogram) Percentile(p float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	// Rank of the target sample, 1-based, ceiling: p99 of 200 samples is
	// sample 198.
	rank := uint64(math.Ceil(p / 100 * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			switch {
			case i == 0:
				return 0
			case i == len(h.counts)-1:
				return h.max
			default:
				b := h.bounds[i-1]
				if b > h.max {
					return h.max
				}
				return b
			}
		}
	}
	return h.max
}

// Merge adds other's samples into h. Both histograms must come from
// NewDurationHistogram (identical bucket layout).
func (h *DurationHistogram) Merge(other *DurationHistogram) {
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.n += other.n
	h.nonZero += other.nonZero
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}
