package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestFitLinearExact(t *testing.T) {
	// Points exactly on y = 8.9x - 0.3, the paper's GigaE regression.
	x := []float64{1, 8, 64, 256, 1024}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 8.9*v - 0.3
	}
	fit, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, fit.Slope, 8.9, 1e-9, "slope")
	approx(t, fit.Intercept, -0.3, 1e-9, "intercept")
	approx(t, fit.R, 1.0, 1e-12, "correlation")
}

func TestFitLinearNoisy(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5}
	y := []float64{0.1, 1.9, 4.1, 5.9, 8.1, 9.9} // ~ y = 2x with noise
	fit, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, fit.Slope, 2.0, 0.05, "slope")
	if fit.R < 0.999 {
		t.Fatalf("correlation %g too low for near-linear data", fit.R)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Fatal("want error for a single point")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("want error for mismatched lengths")
	}
	if _, err := FitLinear([]float64{3, 3}, []float64{1, 2}); err == nil {
		t.Fatal("want error for constant x")
	}
}

func TestFitLinearFlatData(t *testing.T) {
	fit, err := FitLinear([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, fit.Slope, 0, 1e-12, "slope of flat data")
	approx(t, fit.R, 1, 1e-12, "flat data is a perfect flat fit")
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, s.Mean, 5, 1e-12, "mean")
	approx(t, s.StdDev, math.Sqrt(32.0/7.0), 1e-12, "sample stddev")
	approx(t, s.Min, 2, 0, "min")
	approx(t, s.Max, 9, 0, "max")
	approx(t, s.Median, 4.5, 1e-12, "median")
	if s.N != 8 {
		t.Fatalf("N = %d, want 8", s.N)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, s.StdDev, 0, 0, "stddev of one sample")
	approx(t, s.Median, 3.5, 0, "median of one sample")
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Fatal("want error for empty sample")
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	approx(t, Mean(xs), 2.25, 1e-12, "mean")
	approx(t, Min(xs), -1, 0, "min")
	approx(t, Max(xs), 7, 0, "max")
	approx(t, Mean(nil), 0, 0, "mean of empty")
}

func TestRelativeError(t *testing.T) {
	// Paper Table IV, MM 4096 with the GigaE model: est 2.08s vs meas 2.03s.
	e := RelativeError(2.08, 2.03)
	approx(t, e*100, 2.46, 0.01, "relative error %")
}

func TestCurveInterpolation(t *testing.T) {
	c, err := NewCurve([]Point{{0, 0}, {10, 100}, {20, 100}})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, c.Eval(5), 50, 1e-12, "mid-segment")
	approx(t, c.Eval(15), 100, 1e-12, "flat segment")
	approx(t, c.Eval(0), 0, 1e-12, "left anchor")
	approx(t, c.Eval(20), 100, 1e-12, "right anchor")
	// Extrapolation continues the terminal segments.
	approx(t, c.Eval(-5), -50, 1e-12, "left extrapolation")
	approx(t, c.Eval(25), 100, 1e-12, "right extrapolation on flat tail")
}

func TestCurveUnsortedInput(t *testing.T) {
	c, err := NewCurve([]Point{{10, 100}, {0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, c.Eval(5), 50, 1e-12, "anchors must be sorted internally")
}

func TestCurveErrors(t *testing.T) {
	if _, err := NewCurve(nil); err == nil {
		t.Fatal("want error for empty anchors")
	}
	if _, err := NewCurve([]Point{{1, 1}, {1, 2}}); err == nil {
		t.Fatal("want error for duplicate X")
	}
}

func TestCurveSingleAnchor(t *testing.T) {
	c, err := NewCurve([]Point{{4, 22.2}})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, c.Eval(-100), 22.2, 0, "single anchor clamps")
	approx(t, c.Eval(100), 22.2, 0, "single anchor clamps")
}

func TestCurveDomain(t *testing.T) {
	c, _ := NewCurve([]Point{{4, 1}, {58, 2}, {21490, 3}})
	lo, hi := c.Domain()
	if lo != 4 || hi != 21490 {
		t.Fatalf("Domain() = (%g, %g), want (4, 21490)", lo, hi)
	}
}

// Property: a regression over points generated from a line recovers it.
func TestFitLinearProperty(t *testing.T) {
	f := func(slope, intercept int8, seed uint8) bool {
		s, b := float64(slope), float64(intercept)
		x := make([]float64, 10)
		y := make([]float64, 10)
		for i := range x {
			x[i] = float64(i) + float64(seed%7)
			y[i] = s*x[i] + b
		}
		fit, err := FitLinear(x, y)
		if err != nil {
			return false
		}
		return math.Abs(fit.Slope-s) < 1e-6 && math.Abs(fit.Intercept-b) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Curve.Eval is exact at every anchor, and monotone inputs between
// two anchors yield values between the anchors' Y (for monotone curves).
func TestCurveAnchorExactProperty(t *testing.T) {
	f := func(ys []uint16) bool {
		if len(ys) == 0 {
			return true
		}
		pts := make([]Point, len(ys))
		for i, y := range ys {
			pts[i] = Point{X: float64(i), Y: float64(y)}
		}
		c, err := NewCurve(pts)
		if err != nil {
			return false
		}
		for _, p := range pts {
			if math.Abs(c.Eval(p.X)-p.Y) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize invariants — Min <= Mean <= Max, StdDev >= 0.
func TestSummarizeInvariantsProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.StdDev >= 0 &&
			s.Min <= s.Median && s.Median <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5} // unsorted on purpose
	for _, c := range []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {90, 4.6},
	} {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, got, c.want, 1e-12, "percentile")
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Fatal("Percentile mutated its input")
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Fatal("empty sample must fail")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Fatal("negative percentile must fail")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("percentile above 100 must fail")
	}
	one, err := Percentile([]float64{7}, 99)
	if err != nil || one != 7 {
		t.Fatalf("single sample percentile = %v, %v", one, err)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []int16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, err := Percentile(xs, pa)
		if err != nil {
			return false
		}
		vb, err := Percentile(xs, pb)
		if err != nil {
			return false
		}
		return va <= vb+1e-9 && va >= Min(xs)-1e-9 && vb <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
