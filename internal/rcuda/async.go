package rcuda

import (
	"fmt"
	"time"

	"rcuda/internal/cudart"
	"rcuda/internal/gpu"
	"rcuda/internal/protocol"
	"rcuda/internal/transport"
)

// This file carries the asynchronous extension across the wire: the client
// methods implementing cudart.AsyncRuntime and the server dispatch for the
// stream/event operations. The paper defers asynchronous transfers to
// future work; here asynchrony lives on the server's device (stream
// overlap between the PCIe copy engine and the compute engine) while the
// wire remains synchronous request/response.

var _ cudart.AsyncRuntime = (*Client)(nil)

// dispatchAsync handles the extended requests. It reports handled=false
// for requests that belong to the synchronous dispatcher.
func (s *Server) dispatchAsync(conn transport.Conn, ctx *gpu.Context, req protocol.Request) (handled bool, err error) {
	switch r := req.(type) {
	case *protocol.StreamCreateRequest:
		stream, opErr := ctx.StreamCreate()
		return true, conn.Send(&protocol.StreamCreateResponse{Err: code(opErr), Stream: stream})
	case *protocol.StreamOpRequest:
		var opErr error
		switch r.Code {
		case protocol.OpStreamDestroy:
			opErr = ctx.StreamDestroy(r.Stream)
		case protocol.OpStreamQuery:
			ready, err := ctx.StreamReady(r.Stream)
			if err == nil && !ready {
				err = cudart.ErrorNotReady
			}
			opErr = err
		default:
			opErr = ctx.StreamSynchronize(r.Stream)
		}
		return true, conn.Send(&protocol.SyncResponse{Err: code(opErr)})
	case *protocol.MemcpyToDeviceAsyncRequest:
		opErr := ctx.CopyToDeviceAsync(r.Dst, r.Data, r.Stream)
		return true, conn.Send(&protocol.MemcpyToDeviceResponse{Err: code(opErr)})
	case *protocol.MemcpyToHostAsyncRequest:
		data, opErr := ctx.CopyToHostAsync(r.Src, r.Size, r.Stream)
		return true, conn.Send(&protocol.MemcpyToHostResponse{Data: data, Err: code(opErr)})
	case *protocol.EventCreateRequest:
		event, opErr := ctx.EventCreate()
		return true, conn.Send(&protocol.EventCreateResponse{Err: code(opErr), Event: event})
	case *protocol.EventRecordRequest:
		return true, conn.Send(&protocol.SyncResponse{Err: code(ctx.EventRecord(r.Event, r.Stream))})
	case *protocol.EventOpRequest:
		var opErr error
		switch r.Code {
		case protocol.OpEventDestroy:
			opErr = ctx.EventDestroy(r.Event)
		case protocol.OpEventQuery:
			ready, err := ctx.EventReady(r.Event)
			if err == nil && !ready {
				err = cudart.ErrorNotReady
			}
			opErr = err
		default:
			opErr = ctx.EventSynchronize(r.Event)
		}
		return true, conn.Send(&protocol.SyncResponse{Err: code(opErr)})
	case *protocol.EventElapsedRequest:
		elapsed, opErr := ctx.EventElapsed(r.Start, r.End)
		return true, conn.Send(&protocol.EventElapsedResponse{
			Err:         code(opErr),
			ElapsedNano: uint64(elapsed),
		})
	default:
		return false, nil
	}
}

// --- Client side --------------------------------------------------------------

// StreamCreate implements cudart.AsyncRuntime.
func (c *Client) StreamCreate() (cudart.Stream, error) {
	payload, err := c.roundTrip(&protocol.StreamCreateRequest{})
	if err != nil {
		return 0, err
	}
	resp, err := protocol.DecodeStreamCreateResponse(payload)
	if err != nil {
		return 0, err
	}
	if err := cudart.Error(resp.Err).AsError(); err != nil {
		return 0, err
	}
	return cudart.Stream(resp.Stream), nil
}

// streamOp issues a destroy/synchronize and decodes the bare result code.
func (c *Client) streamOp(op protocol.Op, stream cudart.Stream) error {
	payload, err := c.roundTrip(&protocol.StreamOpRequest{Code: op, Stream: uint32(stream)})
	if err != nil {
		return err
	}
	resp, err := protocol.DecodeSyncResponse(payload)
	if err != nil {
		return err
	}
	return cudart.Error(resp.Err).AsError()
}

// StreamSynchronize implements cudart.AsyncRuntime.
func (c *Client) StreamSynchronize(s cudart.Stream) error {
	return c.streamOp(protocol.OpStreamSynchronize, s)
}

// StreamDestroy implements cudart.AsyncRuntime.
func (c *Client) StreamDestroy(s cudart.Stream) error {
	return c.streamOp(protocol.OpStreamDestroy, s)
}

// StreamQuery implements cudart.AsyncRuntime: nil means the stream has
// drained; cudaErrorNotReady means work is still pending on the server GPU.
func (c *Client) StreamQuery(s cudart.Stream) error {
	return c.streamOp(protocol.OpStreamQuery, s)
}

// EventQuery implements cudart.AsyncRuntime with the same protocol.
func (c *Client) EventQuery(e cudart.Event) error {
	return c.eventOp(protocol.OpEventQuery, e)
}

// MemcpyToDeviceAsync implements cudart.AsyncRuntime. With batching it
// coalesces — enqueue copies src during encoding, so the buffer is free to
// reuse on return just as cudaMemcpyAsync from pageable memory allows.
func (c *Client) MemcpyToDeviceAsync(dst cudart.DevicePtr, src []byte, s cudart.Stream) error {
	req := &protocol.MemcpyToDeviceAsyncRequest{
		Dst: uint32(dst), Stream: uint32(s), Data: src,
	}
	if c.batching {
		return c.enqueue(req)
	}
	payload, err := c.roundTrip(req)
	if err != nil {
		return err
	}
	resp, err := protocol.DecodeMemcpyToDeviceResponse(payload)
	if err != nil {
		return err
	}
	return cudart.Error(resp.Err).AsError()
}

// MemcpyToHostAsync implements cudart.AsyncRuntime. The wire returns the
// data with the acknowledgement; it is guaranteed meaningful to the
// application only after the stream synchronizes, as with cudaMemcpyAsync.
func (c *Client) MemcpyToHostAsync(dst []byte, src cudart.DevicePtr, s cudart.Stream) error {
	payload, err := c.roundTrip(&protocol.MemcpyToHostAsyncRequest{
		Src: uint32(src), Size: uint32(len(dst)), Stream: uint32(s),
	})
	if err != nil {
		return err
	}
	resp, err := protocol.DecodeMemcpyToHostResponse(payload)
	if err != nil {
		return err
	}
	if err := cudart.Error(resp.Err).AsError(); err != nil {
		return err
	}
	if len(resp.Data) != len(dst) {
		return fmt.Errorf("rcuda: async memcpy returned %d bytes, want %d", len(resp.Data), len(dst))
	}
	copy(dst, resp.Data)
	return nil
}

// LaunchAsync implements cudart.AsyncRuntime, reusing the launch message's
// stream field.
func (c *Client) LaunchAsync(name string, grid, block cudart.Dim3, shared uint32, params []byte, s cudart.Stream) error {
	req := &protocol.LaunchRequest{
		BlockDim:   [3]uint32{block.X, block.Y, block.Z},
		GridDim:    [2]uint32{grid.X, grid.Y},
		SharedSize: shared,
		Stream:     uint32(s),
		Name:       name,
		Params:     params,
	}
	if c.batching {
		return c.enqueue(req)
	}
	payload, err := c.roundTrip(req)
	if err != nil {
		return err
	}
	resp, err := protocol.DecodeLaunchResponse(payload)
	if err != nil {
		return err
	}
	return cudart.Error(resp.Err).AsError()
}

// EventCreate implements cudart.AsyncRuntime.
func (c *Client) EventCreate() (cudart.Event, error) {
	payload, err := c.roundTrip(&protocol.EventCreateRequest{})
	if err != nil {
		return 0, err
	}
	resp, err := protocol.DecodeEventCreateResponse(payload)
	if err != nil {
		return 0, err
	}
	if err := cudart.Error(resp.Err).AsError(); err != nil {
		return 0, err
	}
	return cudart.Event(resp.Event), nil
}

// EventRecord implements cudart.AsyncRuntime; fire-and-forget, so it
// coalesces under batching.
func (c *Client) EventRecord(e cudart.Event, s cudart.Stream) error {
	req := &protocol.EventRecordRequest{Event: uint32(e), Stream: uint32(s)}
	if c.batching {
		return c.enqueue(req)
	}
	payload, err := c.roundTrip(req)
	if err != nil {
		return err
	}
	resp, err := protocol.DecodeSyncResponse(payload)
	if err != nil {
		return err
	}
	return cudart.Error(resp.Err).AsError()
}

// eventOp issues a synchronize/destroy and decodes the bare result code.
func (c *Client) eventOp(op protocol.Op, e cudart.Event) error {
	payload, err := c.roundTrip(&protocol.EventOpRequest{Code: op, Event: uint32(e)})
	if err != nil {
		return err
	}
	resp, err := protocol.DecodeSyncResponse(payload)
	if err != nil {
		return err
	}
	return cudart.Error(resp.Err).AsError()
}

// EventSynchronize implements cudart.AsyncRuntime.
func (c *Client) EventSynchronize(e cudart.Event) error {
	return c.eventOp(protocol.OpEventSynchronize, e)
}

// EventDestroy implements cudart.AsyncRuntime.
func (c *Client) EventDestroy(e cudart.Event) error {
	return c.eventOp(protocol.OpEventDestroy, e)
}

// EventElapsed implements cudart.AsyncRuntime.
func (c *Client) EventElapsed(start, end cudart.Event) (time.Duration, error) {
	payload, err := c.roundTrip(&protocol.EventElapsedRequest{Start: uint32(start), End: uint32(end)})
	if err != nil {
		return 0, err
	}
	resp, err := protocol.DecodeEventElapsedResponse(payload)
	if err != nil {
		return 0, err
	}
	if err := cudart.Error(resp.Err).AsError(); err != nil {
		return 0, err
	}
	return time.Duration(resp.ElapsedNano), nil
}
