package rcuda

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/cudart"
	"rcuda/internal/faults"
	"rcuda/internal/gpu"
	"rcuda/internal/kernels"
	"rcuda/internal/protocol"
	"rcuda/internal/transport"
	"rcuda/internal/vclock"
)

// The migration suite drives the daemon-to-daemon checkpoint stream end to
// end: a session's device state moves between two live TCP servers and the
// client resumes on the destination with zero replayed work. The chaos
// tests kill the source at every phase boundary of the migration dialogue
// and demand the session stays intact and bit-exact wherever it ends up.

// startMigrateServer is startTCPServer with server options.
func startMigrateServer(t *testing.T, opts ...ServerOption) (*Server, string, func()) {
	t.Helper()
	dev := gpu.New(gpu.Config{Clock: vclock.NewWall()})
	srv := NewServer(dev, opts...)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	cleanup := func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
	return srv, ln.Addr().String(), cleanup
}

// switcher is a re-pointable dial target: the test plays broker, re-aiming
// the client's reconnect dialer at the destination after a migration.
type switcher struct{ addr atomic.Value }

func newSwitcher(addr string) *switcher {
	sw := &switcher{}
	sw.addr.Store(addr)
	return sw
}

func (sw *switcher) point(addr string) { sw.addr.Store(addr) }

func (sw *switcher) dial() (transport.Conn, error) {
	return transport.DialTCP(sw.addr.Load().(string))
}

// dialTo returns a clean dial function for a migration stream.
func dialTo(addr string) func() (transport.Conn, error) {
	return func() (transport.Conn, error) { return transport.DialTCP(addr) }
}

// openSwitchClient opens a durable retrying client whose reconnects follow
// the switcher's current target.
func openSwitchClient(t *testing.T, sw *switcher, module []byte, extra ...ClientOption) *Client {
	t.Helper()
	conn, err := sw.dial()
	if err != nil {
		t.Fatal(err)
	}
	opts := append([]ClientOption{
		WithRetry(8, 200*time.Microsecond),
		WithReconnect(sw.dial),
	}, extra...)
	client, err := Open(conn, module, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return client
}

// registryLen counts the server's live durable sessions.
func registryLen(s *Server) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, sess := range s.registry {
		if !sess.destroyed {
			n++
		}
	}
	return n
}

// waitSettled polls until the server holds exactly want live sessions, all
// parked. A destination settles asynchronously after a killed migration:
// the source observes the dead connection and returns before the
// destination's handler has aborted its partial state (or parked its
// committed copy), so assertions about the destination must wait.
func waitSettled(t *testing.T, srv *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.mu.Lock()
		n, parked := 0, true
		for _, sess := range srv.registry {
			if !sess.destroyed {
				n++
				if sess.attached {
					parked = false
				}
			}
		}
		srv.mu.Unlock()
		if n == want && parked {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never settled at %d parked sessions (have %d, parked=%v)", want, n, parked)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// stagedWorkload is a case-study workload split in two so a migration can
// land between its halves: stage1 builds device state on the source, stage2
// finishes the computation and reads the result back — on the destination.
type stagedWorkload struct {
	stage1 func(t *testing.T, c *Client) []cudart.DevicePtr
	stage2 func(t *testing.T, c *Client, ptrs []cudart.DevicePtr) []byte
}

func (w stagedWorkload) run(t *testing.T, c *Client) []byte {
	t.Helper()
	return w.stage2(t, c, w.stage1(t, c))
}

// mmStaged splits the paper's matrix-multiply case study: inputs land on
// the device before the migration, the sgemm launch and readback run after.
func mmStaged(seed int64) stagedWorkload {
	const m = 32
	return stagedWorkload{
		stage1: func(t *testing.T, c *Client) []cudart.DevicePtr {
			t.Helper()
			rng := rand.New(rand.NewSource(seed))
			a := make([]float32, m*m)
			b := make([]float32, m*m)
			for i := range a {
				a[i] = rng.Float32()
				b[i] = rng.Float32()
			}
			nbytes := uint32(4 * m * m)
			ptrs := make([]cudart.DevicePtr, 3)
			for i := range ptrs {
				p, err := c.Malloc(nbytes)
				if err != nil {
					t.Fatalf("malloc: %v", err)
				}
				ptrs[i] = p
			}
			if err := c.MemcpyToDevice(ptrs[0], cudart.Float32Bytes(a)); err != nil {
				t.Fatalf("copy A: %v", err)
			}
			if err := c.MemcpyToDevice(ptrs[1], cudart.Float32Bytes(b)); err != nil {
				t.Fatalf("copy B: %v", err)
			}
			return ptrs
		},
		stage2: func(t *testing.T, c *Client, ptrs []cudart.DevicePtr) []byte {
			t.Helper()
			// The first call after a migration may land on the quiesce-closed
			// connection; sgemm overwrites C, so insisting is overwrite-safe.
			insist(t, "sgemm launch", func() error {
				return c.Launch(kernels.SgemmKernel, cudart.Dim3{X: 2, Y: 2}, cudart.Dim3{X: 16, Y: 16}, 0,
					gpu.PackParams(uint32(ptrs[0]), uint32(ptrs[1]), uint32(ptrs[2]), m))
			})
			out := make([]byte, 4*m*m)
			if err := c.MemcpyToHost(out, ptrs[2]); err != nil {
				t.Fatalf("copy C: %v", err)
			}
			return out
		},
	}
}

// fftStaged splits the batched-FFT case study the other way around: the
// transform has already run when the migration strikes, so the checkpoint
// must carry the computed spectrum bit-exactly.
func fftStaged(seed int64) stagedWorkload {
	const batch = 4
	const points = 512
	return stagedWorkload{
		stage1: func(t *testing.T, c *Client) []cudart.DevicePtr {
			t.Helper()
			rng := rand.New(rand.NewSource(seed))
			signal := make([]complex64, batch*points)
			for i := range signal {
				signal[i] = complex(rng.Float32()*2-1, rng.Float32()*2-1)
			}
			data := cudart.Complex64Bytes(signal)
			ptr, err := c.Malloc(uint32(len(data)))
			if err != nil {
				t.Fatalf("malloc: %v", err)
			}
			if err := c.MemcpyToDevice(ptr, data); err != nil {
				t.Fatalf("copy signal: %v", err)
			}
			if err := c.Launch(kernels.FFTKernel, cudart.Dim3{X: batch}, cudart.Dim3{X: 64}, 0,
				gpu.PackParams(uint32(ptr), batch, 0)); err != nil {
				t.Fatalf("fft launch: %v", err)
			}
			return []cudart.DevicePtr{ptr}
		},
		stage2: func(t *testing.T, c *Client, ptrs []cudart.DevicePtr) []byte {
			t.Helper()
			out := make([]byte, 4*2*batch*points)
			if err := c.MemcpyToHost(out, ptrs[0]); err != nil {
				t.Fatalf("copy spectrum: %v", err)
			}
			return out
		},
	}
}

// goldenStaged runs a staged workload over a clean single server.
func goldenStaged(t *testing.T, module []byte, w stagedWorkload) []byte {
	t.Helper()
	_, addr, cleanup := startTCPServer(t)
	defer cleanup()
	client := openChaosClient(t, addr, nil, module)
	defer client.Close()
	return w.run(t, client)
}

// TestMigrateSessionRoundTrip live-migrates an attached session between two
// TCP daemons mid-workload: the client keeps its handle, the switcher plays
// broker, and both case studies must finish bit-exact with the unmigrated
// golden run — with every migration counter accounting for the move.
func TestMigrateSessionRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		module []byte
		w      stagedWorkload
	}{
		{"mm", moduleImage(t, calib.MM), mmStaged(11)},
		{"fft", moduleImage(t, calib.FFT), fftStaged(11)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := goldenStaged(t, tc.module, tc.w)

			src, srcAddr, cleanupSrc := startMigrateServer(t)
			defer cleanupSrc()
			dst, dstAddr, cleanupDst := startMigrateServer(t)
			defer cleanupDst()
			sw := newSwitcher(srcAddr)
			client := openSwitchClient(t, sw, tc.module)
			defer client.Close()

			ptrs := tc.w.stage1(t, client)
			id := client.SessionID()
			if id == 0 {
				t.Fatal("reconnecting client negotiated no durable session")
			}
			n, err := src.MigrateSession(id, dialTo(dstAddr))
			if err != nil {
				t.Fatalf("migrate: %v", err)
			}
			if n <= 0 {
				t.Fatalf("migration streamed %d bytes", n)
			}
			sw.point(dstAddr)
			got := tc.w.stage2(t, client, ptrs)
			if !bytes.Equal(got, want) {
				t.Fatal("result diverged across migration")
			}

			ss, ds := src.Stats(), dst.Stats()
			if ss.Migrations != 1 || ss.MigrationBytes != n || ss.MigrationFailures != 0 {
				t.Fatalf("source stats %+v", ss)
			}
			if ds.RestoreFromCheckpoint != 1 || ds.Reattaches != 1 {
				t.Fatalf("destination stats %+v", ds)
			}
			if registryLen(src) != 0 || registryLen(dst) != 1 {
				t.Fatalf("session lives on %d src / %d dst copies", registryLen(src), registryLen(dst))
			}
			// Zero replay: the one reconnect reattached; nothing re-executed.
			if cs := client.Stats(); cs.Reconnects != 1 || cs.Migrations != 0 {
				t.Fatalf("client stats %+v", cs)
			}
		})
	}
}

// TestMigrateSessionShapes round-trips the session states the checkpoint
// format must carry faithfully: an empty session, allocations spread across
// devices, in-flight async work, and a quota charged to the brim.
func TestMigrateSessionShapes(t *testing.T) {
	module := moduleImage(t, calib.MM)
	pattern := func(n int, seed int64) []byte {
		rng := rand.New(rand.NewSource(seed))
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	readback := func(t *testing.T, c *Client, ptr cudart.DevicePtr, want []byte) {
		t.Helper()
		got := make([]byte, len(want))
		if err := c.MemcpyToHost(got, ptr); err != nil {
			t.Fatalf("readback: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("device contents diverged across migration")
		}
	}
	quotaLimit := 2 * gpu.AllocCharge(1024)

	cases := []struct {
		name string
		opts func() []ServerOption
		// setup builds pre-migration state and returns the post-migration
		// verifier.
		setup func(t *testing.T, c *Client) func(t *testing.T, c *Client)
	}{
		{
			name: "empty-session",
			setup: func(t *testing.T, c *Client) func(*testing.T, *Client) {
				return func(t *testing.T, c *Client) {
					// An empty checkpoint still restores a usable context.
					data := pattern(256, 1)
					ptr := insistMalloc(t, c, 256)
					if err := c.MemcpyToDevice(ptr, data); err != nil {
						t.Fatalf("post-migration memcpy: %v", err)
					}
					readback(t, c, ptr, data)
				}
			},
		},
		{
			name: "multi-device-allocations",
			opts: func() []ServerOption {
				return []ServerOption{WithDevices(gpu.New(gpu.Config{Clock: vclock.NewWall()}))}
			},
			setup: func(t *testing.T, c *Client) func(*testing.T, *Client) {
				d0, d1 := pattern(1024, 2), pattern(2048, 3)
				p0, err := c.Malloc(1024)
				if err != nil {
					t.Fatal(err)
				}
				if err := c.MemcpyToDevice(p0, d0); err != nil {
					t.Fatal(err)
				}
				if err := c.SetDevice(1); err != nil {
					t.Fatal(err)
				}
				p1, err := c.Malloc(2048)
				if err != nil {
					t.Fatal(err)
				}
				if err := c.MemcpyToDevice(p1, d1); err != nil {
					t.Fatal(err)
				}
				return func(t *testing.T, c *Client) {
					// The checkpoint restores device 1 as current.
					readback(t, c, p1, d1)
					if err := c.SetDevice(0); err != nil {
						t.Fatalf("set device 0: %v", err)
					}
					readback(t, c, p0, d0)
				}
			},
		},
		{
			name: "pending-async-work",
			setup: func(t *testing.T, c *Client) func(*testing.T, *Client) {
				data := pattern(2048, 4)
				ptr, err := c.Malloc(2048)
				if err != nil {
					t.Fatal(err)
				}
				stream, err := c.StreamCreate()
				if err != nil {
					t.Fatal(err)
				}
				if err := c.MemcpyToDeviceAsync(ptr, data, stream); err != nil {
					t.Fatal(err)
				}
				ev, err := c.EventCreate()
				if err != nil {
					t.Fatal(err)
				}
				if err := c.EventRecord(ev, stream); err != nil {
					t.Fatal(err)
				}
				// No synchronization: the stream and event timelines migrate
				// with work still notionally in flight.
				return func(t *testing.T, c *Client) {
					if err := c.StreamSynchronize(stream); err != nil {
						t.Fatalf("stream sync after migration: %v", err)
					}
					if err := c.EventSynchronize(ev); err != nil {
						t.Fatalf("event sync after migration: %v", err)
					}
					readback(t, c, ptr, data)
				}
			},
		},
		{
			name: "quota-at-limit",
			opts: func() []ServerOption {
				return []ServerOption{WithSessionMemoryLimit(quotaLimit)}
			},
			setup: func(t *testing.T, c *Client) func(*testing.T, *Client) {
				data := pattern(1024, 5)
				p1, err := c.Malloc(1024)
				if err != nil {
					t.Fatal(err)
				}
				if err := c.MemcpyToDevice(p1, data); err != nil {
					t.Fatal(err)
				}
				p2, err := c.Malloc(1024)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := c.Malloc(1024); !errors.Is(err, cudart.ErrorMemoryAllocation) {
					t.Fatalf("over-quota malloc before migration: %v", err)
				}
				return func(t *testing.T, c *Client) {
					// The idempotent readback heals the connection first, so
					// the malloc's refusal below is the quota speaking.
					readback(t, c, p1, data)
					// Quota accounting derives from the restored allocations,
					// so the limit still binds on the destination.
					if _, err := c.Malloc(1024); !errors.Is(err, cudart.ErrorMemoryAllocation) {
						t.Fatalf("over-quota malloc after migration: %v", err)
					}
					if err := c.Free(p2); err != nil {
						t.Fatalf("free: %v", err)
					}
					if _, err := c.Malloc(1024); err != nil {
						t.Fatalf("malloc inside freed quota: %v", err)
					}
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var srcOpts, dstOpts []ServerOption
			if tc.opts != nil {
				srcOpts, dstOpts = tc.opts(), tc.opts()
			}
			src, srcAddr, cleanupSrc := startMigrateServer(t, srcOpts...)
			defer cleanupSrc()
			dst, dstAddr, cleanupDst := startMigrateServer(t, dstOpts...)
			defer cleanupDst()
			sw := newSwitcher(srcAddr)
			client := openSwitchClient(t, sw, module)
			defer client.Close()

			verify := tc.setup(t, client)
			n, err := src.MigrateSession(client.SessionID(), dialTo(dstAddr))
			if err != nil {
				t.Fatalf("migrate: %v", err)
			}
			sw.point(dstAddr)
			verify(t, client)

			if ss := src.Stats(); ss.Migrations != 1 || ss.MigrationBytes != n {
				t.Fatalf("source stats %+v", ss)
			}
			if ds := dst.Stats(); ds.RestoreFromCheckpoint != 1 {
				t.Fatalf("destination stats %+v", ds)
			}
		})
	}
}

// TestMigrateBatchDedupWindowSurvives checks exactly-once execution across
// a migration: the batch sequence/codes window travels in the checkpoint,
// so a batch replayed against the destination is answered from remembered
// codes without re-executing — proven by replaying a non-idempotent FFT
// launch whose double execution would change the spectrum.
func TestMigrateBatchDedupWindowSurvives(t *testing.T) {
	module := moduleImage(t, calib.FFT)
	src, srcAddr, cleanupSrc := startMigrateServer(t)
	defer cleanupSrc()
	dst, dstAddr, cleanupDst := startMigrateServer(t)
	defer cleanupDst()
	sw := newSwitcher(srcAddr)
	client := openSwitchClient(t, sw, module, WithBatching(0, 0))
	defer client.Close()

	const batch = 4
	const points = 512
	rng := rand.New(rand.NewSource(13))
	signal := make([]complex64, batch*points)
	for i := range signal {
		signal[i] = complex(rng.Float32()*2-1, rng.Float32()*2-1)
	}
	data := cudart.Complex64Bytes(signal)
	ptr, err := client.Malloc(uint32(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if err := client.MemcpyToDevice(ptr, data); err != nil {
		t.Fatal(err)
	}
	launch := &protocol.LaunchRequest{
		GridDim:  [2]uint32{batch, 1},
		BlockDim: [3]uint32{64, 1, 1},
		Name:     kernels.FFTKernel,
		Params:   gpu.PackParams(uint32(ptr), batch, 0),
	}
	// The launch coalesces into a batch that the readback's sync point
	// flushes.
	if err := client.Launch(kernels.FFTKernel, cudart.Dim3{X: batch}, cudart.Dim3{X: 64}, 0, launch.Params); err != nil {
		t.Fatal(err)
	}
	spectrum := make([]byte, len(data))
	if err := client.MemcpyToHost(spectrum, ptr); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(spectrum, data) {
		t.Fatal("batched fft launch never executed")
	}
	seq := client.batchSeq
	if seq == 0 {
		t.Fatal("no batch was flushed")
	}

	id := client.SessionID()
	if _, err := src.MigrateSession(id, dialTo(dstAddr)); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	sw.point(dstAddr)
	if err := client.DeviceSynchronize(); err != nil {
		t.Fatalf("reattach at destination: %v", err)
	}

	// The restored session's dedup window matches the source's.
	dst.mu.Lock()
	sess := dst.registry[id]
	gotSeq, gotCodes := sess.lastBatchSeq, append([]uint32(nil), sess.lastBatchCodes...)
	dst.mu.Unlock()
	if gotSeq != seq {
		t.Fatalf("restored batch seq %d, want %d", gotSeq, seq)
	}
	if len(gotCodes) != 1 || gotCodes[0] != 0 {
		t.Fatalf("restored batch codes %v", gotCodes)
	}

	// Replay the flushed batch — as a client whose response was lost in the
	// cutover would. The destination must answer from the migrated window
	// without running the transform again.
	if err := client.conn.Send(&protocol.BatchRequest{Seq: seq, Subs: [][]byte{launch.Encode(nil)}}); err != nil {
		t.Fatal(err)
	}
	raw, err := client.conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := protocol.DecodeBatchResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != 0 || len(resp.Codes) != 1 || resp.Codes[0] != 0 {
		t.Fatalf("replayed batch response %+v", resp)
	}
	if ds := dst.Stats(); ds.BatchReplays != 1 {
		t.Fatalf("destination stats %+v", ds)
	}
	after := make([]byte, len(data))
	if err := client.MemcpyToHost(after, ptr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, spectrum) {
		t.Fatal("replayed batch re-executed the fft: spectrum changed")
	}
}

// TestMigrateRedirect pins the client to the source past the migration: raw
// reattaches get the typed CodeSessionMigrated redirect, the client surfaces
// ErrSessionMigrated without latching the session lost, and re-pointing the
// dialer heals everything with the data intact.
func TestMigrateRedirect(t *testing.T) {
	module := moduleImage(t, calib.MM)
	src, srcAddr, cleanupSrc := startMigrateServer(t)
	defer cleanupSrc()
	dst, dstAddr, cleanupDst := startMigrateServer(t)
	defer cleanupDst()
	sw := newSwitcher(srcAddr)
	client := openSwitchClient(t, sw, module, WithRetry(3, 100*time.Microsecond))
	defer client.Close()

	data := []byte{9, 8, 7, 6, 5, 4, 3, 2}
	ptr, err := client.Malloc(uint32(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if err := client.MemcpyToDevice(ptr, data); err != nil {
		t.Fatal(err)
	}
	id := client.SessionID()
	if _, err := src.MigrateSession(id, dialTo(dstAddr)); err != nil {
		t.Fatalf("migrate: %v", err)
	}

	// A raw reattach at the source gets the typed redirect.
	conn, err := transport.DialTCP(srcAddr)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(&protocol.ReattachRequest{Session: id}); err != nil {
		t.Fatal(err)
	}
	raw, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := protocol.DecodeReattachResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != protocol.CodeSessionMigrated {
		t.Fatalf("reattach answered %d, want CodeSessionMigrated", resp.Err)
	}
	_ = conn.Close()

	// The still-mispointed client surfaces the redirect as a typed error.
	out := make([]byte, len(data))
	err = client.MemcpyToHost(out, ptr)
	if err == nil {
		t.Fatal("operation succeeded against a migrated-away session")
	}
	if !errors.Is(err, ErrSessionMigrated) {
		t.Fatalf("error %v does not wrap ErrSessionMigrated", err)
	}
	if cs := client.Stats(); cs.Migrations == 0 {
		t.Fatalf("client never counted the redirect: %+v", cs)
	}

	// Re-pointing the route heals the session — same allocation, same bytes,
	// nothing replayed.
	sw.point(dstAddr)
	if err := client.MemcpyToHost(out, ptr); err != nil {
		t.Fatalf("readback after re-point: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("device contents diverged across redirect")
	}
	if ds := dst.Stats(); ds.Reattaches != 1 {
		t.Fatalf("destination stats %+v", ds)
	}
}

// TestMigrateClaimErrors covers the checkpoint/migrate claim refusals: an
// attached session is busy, an unknown id refuses outright, and a migrated
// id answers with the typed redirect error on every later claim.
func TestMigrateClaimErrors(t *testing.T) {
	module := moduleImage(t, calib.MM)
	src, srcAddr, cleanupSrc := startMigrateServer(t)
	defer cleanupSrc()
	dst, dstAddr, cleanupDst := startMigrateServer(t)
	defer cleanupDst()
	sw := newSwitcher(srcAddr)
	client := openSwitchClient(t, sw, module)
	defer client.Close()

	id := client.SessionID()
	if got := src.DurableSessions(); len(got) != 1 || got[0] != id {
		t.Fatalf("durable sessions %v, want [%d]", got, id)
	}
	if _, err := src.CheckpointSession(id); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("checkpoint of attached session: %v", err)
	}
	if _, err := src.CheckpointSession(id + 100); err == nil || errors.Is(err, ErrServerBusy) || errors.Is(err, ErrSessionMigrated) {
		t.Fatalf("checkpoint of unknown session: %v", err)
	}
	if _, err := src.MigrateSession(id, dialTo(dstAddr)); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if _, err := src.CheckpointSession(id); !errors.Is(err, ErrSessionMigrated) {
		t.Fatalf("checkpoint of migrated session: %v", err)
	}
	if _, err := src.MigrateSession(id, dialTo(dstAddr)); !errors.Is(err, ErrSessionMigrated) {
		t.Fatalf("re-migrate of migrated session: %v", err)
	}
	if len(src.DurableSessions()) != 0 {
		t.Fatalf("source still lists sessions: %v", src.DurableSessions())
	}
	if got := dst.DurableSessions(); len(got) != 1 || got[0] != id {
		t.Fatalf("destination sessions %v, want [%d]", got, id)
	}
	// Only migration attempts count as failures; bare checkpoint claim
	// refusals are the caller's problem.
	if ss := src.Stats(); ss.MigrationFailures != 1 {
		t.Fatalf("refused re-migrate never counted: %+v", ss)
	}
}

// TestMigrateChaosKillsEveryPhase is the migration acceptance chaos test:
// the source daemon's transfer connection is killed at every operation of
// the migration dialogue — hello, begin, each chunk, commit, commit-ack.
// After every kill the session must still be intact exactly once somewhere,
// a clean retry must move it, and the matrix-multiply must finish bit-exact
// with the golden run.
func TestMigrateChaosKillsEveryPhase(t *testing.T) {
	module := moduleImage(t, calib.MM)
	w := mmStaged(23)
	const chunkSize = 4096
	want := goldenStaged(t, module, w)

	// Dry run to learn the dialogue's chunk count for this state shape.
	chunks := func() int {
		src, srcAddr, cleanupSrc := startMigrateServer(t, WithMigrateChunkSize(chunkSize))
		defer cleanupSrc()
		_, dstAddr, cleanupDst := startMigrateServer(t)
		defer cleanupDst()
		sw := newSwitcher(srcAddr)
		client := openSwitchClient(t, sw, module)
		defer client.Close()
		w.stage1(t, client)
		n, err := src.MigrateSession(client.SessionID(), dialTo(dstAddr))
		if err != nil {
			t.Fatalf("dry-run migrate: %v", err)
		}
		return int(protocol.Chunks(uint32(n), chunkSize))
	}()
	if chunks < 2 {
		t.Fatalf("state too small for a chunked stream: %d chunks", chunks)
	}

	for op := 0; op < faults.MigrateOps(chunks); op++ {
		t.Run(fmt.Sprintf("reset-at-op-%d", op), func(t *testing.T) {
			src, srcAddr, cleanupSrc := startMigrateServer(t, WithMigrateChunkSize(chunkSize))
			defer cleanupSrc()
			dst, dstAddr, cleanupDst := startMigrateServer(t)
			defer cleanupDst()
			sw := newSwitcher(srcAddr)
			client := openSwitchClient(t, sw, module)
			defer client.Close()

			ptrs := w.stage1(t, client)
			id := client.SessionID()
			plan := faults.MigrateResetAt(op)
			if _, err := src.MigrateSession(id, faultyDialer(dstAddr, plan)); err == nil {
				t.Fatal("migration survived an injected connection kill")
			}
			if plan.Injected() == 0 {
				t.Fatalf("kill never fired; migration op indices drifted (history %v)", plan.History())
			}
			if ss := src.Stats(); ss.MigrationFailures == 0 || ss.Migrations != 0 {
				t.Fatalf("source stats after failed migration: %+v", ss)
			}
			if registryLen(src) != 1 {
				t.Fatal("failed migration destroyed the source session")
			}
			// Before the commit frame lands the destination holds nothing; a
			// kill of the commit acknowledgement alone leaves a committed
			// standby copy there — replaceable, never client-visible.
			wantDst := 0
			if op == faults.MigrateOpCommitAck(chunks) {
				wantDst = 1
			}
			waitSettled(t, dst, wantDst)

			// A clean retry moves the session; the workload finishes bit-exact.
			if _, err := src.MigrateSession(id, dialTo(dstAddr)); err != nil {
				t.Fatalf("clean retry after kill at op %d: %v", op, err)
			}
			sw.point(dstAddr)
			if got := w.stage2(t, client, ptrs); !bytes.Equal(got, want) {
				t.Fatalf("result diverged after kill at op %d (history %v)", op, plan.History())
			}
			if registryLen(dst) != 1 || registryLen(src) != 0 {
				t.Fatalf("session copies after retry: src=%d dst=%d", registryLen(src), registryLen(dst))
			}
		})
	}
}

// TestMigrateScriptedFaults drives the three named failure injectors —
// die-after-begin, truncated chunk, stall before commit — against the FFT
// case study, whose computed spectrum must survive each failed transfer and
// arrive bit-exact after the retry.
func TestMigrateScriptedFaults(t *testing.T) {
	module := moduleImage(t, calib.FFT)
	w := fftStaged(9)
	const chunkSize = 4096
	want := goldenStaged(t, module, w)

	chunks := func() int {
		src, srcAddr, cleanupSrc := startMigrateServer(t, WithMigrateChunkSize(chunkSize))
		defer cleanupSrc()
		_, dstAddr, cleanupDst := startMigrateServer(t)
		defer cleanupDst()
		sw := newSwitcher(srcAddr)
		client := openSwitchClient(t, sw, module)
		defer client.Close()
		w.stage1(t, client)
		n, err := src.MigrateSession(client.SessionID(), dialTo(dstAddr))
		if err != nil {
			t.Fatalf("dry-run migrate: %v", err)
		}
		return int(protocol.Chunks(uint32(n), chunkSize))
	}()

	cases := []struct {
		name string
		plan *faults.Plan
	}{
		{"die-after-begin", faults.MigrateDieAfterBegin()},
		{"truncate-chunk", faults.MigrateTruncateChunk(1)},
		{"stall-before-commit", faults.MigrateStallBeforeCommit(chunks, time.Millisecond)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src, srcAddr, cleanupSrc := startMigrateServer(t, WithMigrateChunkSize(chunkSize))
			defer cleanupSrc()
			dst, dstAddr, cleanupDst := startMigrateServer(t)
			defer cleanupDst()
			sw := newSwitcher(srcAddr)
			client := openSwitchClient(t, sw, module)
			defer client.Close()

			ptrs := w.stage1(t, client)
			id := client.SessionID()
			if _, err := src.MigrateSession(id, faultyDialer(dstAddr, tc.plan)); err == nil {
				t.Fatal("migration survived the scripted fault")
			}
			if tc.plan.Injected() == 0 {
				t.Fatal("scripted fault never fired; op indices drifted")
			}
			if registryLen(src) != 1 {
				t.Fatal("failed migration destroyed the source session")
			}
			waitSettled(t, dst, 0)
			if _, err := src.MigrateSession(id, dialTo(dstAddr)); err != nil {
				t.Fatalf("clean retry: %v", err)
			}
			sw.point(dstAddr)
			if got := w.stage2(t, client, ptrs); !bytes.Equal(got, want) {
				t.Fatalf("spectrum diverged (history %v)", tc.plan.History())
			}
		})
	}
}

// TestStandbyCheckpointFailover exercises the periodic standby path: a
// parked session's checkpoint streams to a peer, a reattach-and-rewrite
// refreshes the copy, and when the source dies the client resumes on the
// peer from the fresh checkpoint — reattach instead of replay.
func TestStandbyCheckpointFailover(t *testing.T) {
	module := moduleImage(t, calib.MM)
	dst, dstAddr, cleanupDst := startMigrateServer(t)
	defer cleanupDst()
	src, srcAddr, cleanupSrc := startMigrateServer(t, WithStandbyPeer(dialTo(dstAddr), 5*time.Millisecond))
	srcClosed := false
	defer func() {
		if !srcClosed {
			cleanupSrc()
		}
	}()
	sw := newSwitcher(srcAddr)
	client := openSwitchClient(t, sw, module)
	defer client.Close()

	waitRestores := func(n int64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for dst.Stats().RestoreFromCheckpoint < n {
			if time.Now().After(deadline) {
				t.Fatalf("standby copy #%d never arrived: %+v", n, dst.Stats())
			}
			time.Sleep(time.Millisecond)
		}
	}

	stale := []byte("generation-one-state")
	ptr, err := client.Malloc(uint32(len(stale)))
	if err != nil {
		t.Fatal(err)
	}
	if err := client.MemcpyToDevice(ptr, stale); err != nil {
		t.Fatal(err)
	}
	// Park by dropping the connection; the sweep copies the parked session.
	_ = client.conn.Close()
	waitRestores(1)

	// Reattach, mutate, re-park: the next sweep must refresh the standby.
	fresh := []byte("generation-two-state")
	if err := client.MemcpyToDevice(ptr, fresh); err != nil {
		t.Fatalf("rewrite after reattach: %v", err)
	}
	_ = client.conn.Close()
	waitRestores(2)

	// The source dies; the re-pointed client resumes on the peer and must
	// see the fresh generation, not the stale first copy.
	cleanupSrc()
	srcClosed = true
	sw.point(dstAddr)
	out := make([]byte, len(fresh))
	if err := client.MemcpyToHost(out, ptr); err != nil {
		t.Fatalf("readback on standby peer: %v", err)
	}
	if !bytes.Equal(out, fresh) {
		t.Fatalf("standby served %q, want %q", out, fresh)
	}
	if ds := dst.Stats(); ds.Reattaches != 1 || ds.RestoreFromCheckpoint < 2 {
		t.Fatalf("destination stats %+v", ds)
	}
	if ss := src.Stats(); ss.MigrationBytes == 0 || ss.Migrations != 0 {
		t.Fatalf("standby copies miscounted: %+v", ss)
	}
}
