package rcuda

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"rcuda/internal/calib"
	"rcuda/internal/cudart"
	"rcuda/internal/gpu"
	"rcuda/internal/netsim"
	"rcuda/internal/transport"
	"rcuda/internal/vclock"
)

// startMultiGPUSession serves a daemon owning n devices over a simulated
// pipe and returns the opened client plus the devices.
func startMultiGPUSession(t *testing.T, n int) (*Client, []*gpu.Device, func()) {
	t.Helper()
	clk := vclock.NewSim()
	devs := make([]*gpu.Device, n)
	for i := range devs {
		devs[i] = gpu.New(gpu.Config{Clock: clk})
	}
	srv := NewServer(devs[0], WithDevices(devs[1:]...))
	cliEnd, srvEnd := transport.Pipe(netsim.IB40G(), clk, nil)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := srv.ServeConn(srvEnd); err != nil {
			t.Errorf("server: %v", err)
		}
	}()
	client, err := Open(cliEnd, moduleImage(t, calib.MM))
	if err != nil {
		t.Fatal(err)
	}
	return client, devs, func() { _ = client.Close(); wg.Wait() }
}

func TestDeviceCountAndSelection(t *testing.T) {
	client, devs, cleanup := startMultiGPUSession(t, 3)
	defer cleanup()

	n, err := client.DeviceCount()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("device count = %d, want 3", n)
	}

	// Allocate twice on device 0, switch to device 2, allocate once.
	p0a, err := client.Malloc(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	p0b, err := client.Malloc(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.SetDevice(2); err != nil {
		t.Fatal(err)
	}
	p2, err := client.Malloc(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if devs[0].MemoryInUse() == 0 || devs[2].MemoryInUse() == 0 {
		t.Fatal("allocations must land on the selected devices")
	}
	if devs[1].MemoryInUse() != 0 {
		t.Fatal("device 1 was never selected")
	}
	// Pointers belong to their device's context: p0b's address exists
	// only on device 0, so freeing it while device 2 is current fails.
	if err := client.Free(p0b); !errors.Is(err, cudart.ErrorInvalidDevicePointer) {
		t.Fatalf("cross-device free = %v, want cudaErrorInvalidDevicePointer", err)
	}
	if err := client.Free(p2); err != nil {
		t.Fatal(err)
	}
	if err := client.SetDevice(0); err != nil {
		t.Fatal(err)
	}
	for _, p := range []cudart.DevicePtr{p0a, p0b} {
		if err := client.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if devs[0].MemoryInUse() != 0 || devs[2].MemoryInUse() != 0 {
		t.Fatal("frees must return both devices to zero")
	}
}

func TestSetDeviceOutOfRange(t *testing.T) {
	client, _, cleanup := startMultiGPUSession(t, 2)
	defer cleanup()
	if err := client.SetDevice(2); !errors.Is(err, cudart.ErrorInvalidValue) {
		t.Fatalf("SetDevice(2) = %v, want cudaErrorInvalidValue", err)
	}
	if err := client.SetDevice(-1); !errors.Is(err, cudart.ErrorInvalidValue) {
		t.Fatalf("SetDevice(-1) = %v, want cudaErrorInvalidValue", err)
	}
}

func TestDisconnectReleasesAllDevices(t *testing.T) {
	client, devs, cleanup := startMultiGPUSession(t, 2)
	if _, err := client.Malloc(64); err != nil {
		t.Fatal(err)
	}
	if err := client.SetDevice(1); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Malloc(64); err != nil {
		t.Fatal(err)
	}
	cleanup()
	for i, d := range devs {
		if d.MemoryInUse() != 0 {
			t.Fatalf("device %d leaked %d bytes after session end", i, d.MemoryInUse())
		}
	}
}

func TestRemoteDeviceProperties(t *testing.T) {
	client, devs, cleanup := startMultiGPUSession(t, 1)
	defer cleanup()
	p, err := client.DeviceProperties()
	if err != nil {
		t.Fatal(err)
	}
	want := devs[0].Properties()
	if p != want {
		t.Fatalf("remote properties %+v, want %+v", p, want)
	}
}

func TestRemoteMemsetAndD2D(t *testing.T) {
	client, _, cleanup := startMultiGPUSession(t, 1)
	defer cleanup()

	const n = 256
	src, _ := client.Malloc(n)
	dst, _ := client.Malloc(n)
	if err := client.Memset(src, 0x5A, n); err != nil {
		t.Fatal(err)
	}
	if err := client.MemcpyDeviceToDevice(dst, src, n); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, n)
	if err := client.MemcpyToHost(out, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, bytes.Repeat([]byte{0x5A}, n)) {
		t.Fatal("remote memset + D2D produced wrong data")
	}
	// Error paths carry CUDA codes.
	if err := client.Memset(0, 1, 4); !errors.Is(err, cudart.ErrorInvalidDevicePointer) {
		t.Fatalf("remote null memset = %v", err)
	}
	if err := client.MemcpyDeviceToDevice(dst, src, n+1); !errors.Is(err, cudart.ErrorInvalidDevicePointer) {
		t.Fatalf("remote overrun D2D = %v", err)
	}
}

// A D2D copy moves only 16 bytes over the wire regardless of the payload —
// the reason to keep intermediate results on the remote GPU.
func TestD2DWireTraffic(t *testing.T) {
	clk := vclock.NewSim()
	dev := gpu.New(gpu.Config{Clock: clk})
	srv := NewServer(dev)
	cliEnd, srvEnd := transport.Pipe(netsim.GigaE(), clk, nil)
	go func() { _ = srv.ServeConn(srvEnd) }()
	client, err := Open(cliEnd, moduleImage(t, calib.MM))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const n = 8 << 20
	src, _ := client.Malloc(n)
	dst, _ := client.Malloc(n)
	before := cliEnd.Stats().BytesSent
	if err := client.MemcpyDeviceToDevice(dst, src, n); err != nil {
		t.Fatal(err)
	}
	sent := cliEnd.Stats().BytesSent - before
	if sent != 16 {
		t.Fatalf("D2D sent %d bytes over the wire, want 16", sent)
	}
}

func TestSessionSpreadAcrossDevices(t *testing.T) {
	clk := vclock.NewSim()
	devs := []*gpu.Device{
		gpu.New(gpu.Config{Clock: clk}),
		gpu.New(gpu.Config{Clock: clk}),
	}
	srv := NewServer(devs[0], WithDevices(devs[1]), WithSessionSpread())

	openSession := func() (*Client, func()) {
		cliEnd, srvEnd := transport.Pipe(netsim.IB40G(), clk, nil)
		done := make(chan error, 1)
		go func() { done <- srv.ServeConn(srvEnd) }()
		client, err := Open(cliEnd, moduleImage(t, calib.MM))
		if err != nil {
			t.Fatal(err)
		}
		return client, func() { _ = client.Close(); <-done }
	}

	c1, close1 := openSession()
	c2, close2 := openSession()
	defer close1()
	defer close2()
	if _, err := c1.Malloc(64); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Malloc(64); err != nil {
		t.Fatal(err)
	}
	// With spreading, the two sessions' allocations land on different
	// devices without either calling SetDevice.
	if devs[0].MemoryInUse() == 0 || devs[1].MemoryInUse() == 0 {
		t.Fatalf("sessions did not spread: dev0 %d B, dev1 %d B",
			devs[0].MemoryInUse(), devs[1].MemoryInUse())
	}
}

func TestDefaultPlacementIsDeviceZero(t *testing.T) {
	clk := vclock.NewSim()
	devs := []*gpu.Device{
		gpu.New(gpu.Config{Clock: clk}),
		gpu.New(gpu.Config{Clock: clk}),
	}
	srv := NewServer(devs[0], WithDevices(devs[1]))
	for i := 0; i < 2; i++ {
		cliEnd, srvEnd := transport.Pipe(netsim.IB40G(), clk, nil)
		done := make(chan error, 1)
		go func() { done <- srv.ServeConn(srvEnd) }()
		client, err := Open(cliEnd, moduleImage(t, calib.MM))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.Malloc(64); err != nil {
			t.Fatal(err)
		}
		_ = client.Close()
		<-done
	}
	if devs[1].MemoryInUse() != 0 {
		t.Fatal("without spreading, sessions must default to device 0 (CUDA semantics)")
	}
}
