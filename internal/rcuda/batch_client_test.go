package rcuda

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"rcuda/internal/blas"
	"rcuda/internal/calib"
	"rcuda/internal/cudart"
	"rcuda/internal/faults"
	"rcuda/internal/gpu"
	"rcuda/internal/kernels"
	"rcuda/internal/netsim"
	"rcuda/internal/transport"
	"rcuda/internal/vclock"
)

// startBatchSession is startSimSession with client options, returning the
// client's transport end so tests can count wire messages.
func startBatchSession(t *testing.T, link *netsim.Link, srvOpts []ServerOption, cliOpts ...ClientOption) (*Client, *Server, transport.Conn, func()) {
	t.Helper()
	clk := vclock.NewSim()
	dev := gpu.New(gpu.Config{Clock: clk})
	srv := NewServer(dev, srvOpts...)
	cliEnd, srvEnd := transport.Pipe(link, clk, nil)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := srv.ServeConn(srvEnd); err != nil {
			t.Errorf("server: %v", err)
		}
	}()
	client, err := Open(cliEnd, moduleImage(t, calib.MM), cliOpts...)
	if err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		_ = client.Close()
		wg.Wait()
	}
	return client, srv, cliEnd, cleanup
}

// sgemmBatched runs one 16x16 matrix product through the async path —
// copies, launch, and event record coalescible — and returns the device
// result with the CPU oracle's. The device kernel and the oracle share the
// same Sgemm routine, so the comparison is bit-exact.
func sgemmBatched(t *testing.T, client *Client, seed int64) (got, want []byte) {
	t.Helper()
	const m = 16
	rng := rand.New(rand.NewSource(seed))
	a := make([]float32, m*m)
	b := make([]float32, m*m)
	for i := range a {
		a[i] = rng.Float32()*2 - 1
		b[i] = rng.Float32()*2 - 1
	}
	nbytes := uint32(4 * m * m)
	ptrs := make([]cudart.DevicePtr, 3)
	for i := range ptrs {
		p, err := client.Malloc(nbytes)
		if err != nil {
			t.Fatal(err)
		}
		ptrs[i] = p
	}
	stream, err := client.StreamCreate()
	if err != nil {
		t.Fatal(err)
	}
	event, err := client.EventCreate()
	if err != nil {
		t.Fatal(err)
	}
	if err := client.MemcpyToDeviceAsync(ptrs[0], cudart.Float32Bytes(a), stream); err != nil {
		t.Fatal(err)
	}
	if err := client.MemcpyToDeviceAsync(ptrs[1], cudart.Float32Bytes(b), stream); err != nil {
		t.Fatal(err)
	}
	if err := client.LaunchAsync(kernels.SgemmKernel,
		cudart.Dim3{X: 1, Y: 1}, cudart.Dim3{X: 16, Y: 16}, 0,
		gpu.PackParams(uint32(ptrs[0]), uint32(ptrs[1]), uint32(ptrs[2]), m), stream); err != nil {
		t.Fatal(err)
	}
	if err := client.EventRecord(event, stream); err != nil {
		t.Fatal(err)
	}
	if err := client.EventSynchronize(event); err != nil {
		t.Fatalf("sync after batched work: %v", err)
	}
	got = make([]byte, nbytes)
	if err := client.MemcpyToHost(got, ptrs[2]); err != nil {
		t.Fatal(err)
	}
	if err := client.EventDestroy(event); err != nil {
		t.Fatal(err)
	}
	if err := client.StreamDestroy(stream); err != nil {
		t.Fatal(err)
	}
	for _, p := range ptrs {
		if err := client.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	wantF := make([]float32, m*m)
	if err := blas.Sgemm(m, m, m, a, b, wantF); err != nil {
		t.Fatal(err)
	}
	return got, cudart.Float32Bytes(wantF)
}

// TestBatchedSessionCoalescesAndStaysCorrect drives a full matrix product
// through a batching client: the two async uploads, the launch, and the
// event record must ride one wire frame, and the numerical result must be
// bit-identical to the oracle.
func TestBatchedSessionCoalescesAndStaysCorrect(t *testing.T) {
	client, srv, cliEnd, cleanup := startBatchSession(t, netsim.GigaE(), nil, WithBatching(0, 0))
	defer cleanup()

	before := cliEnd.Stats().MessagesSent
	got, want := sgemmBatched(t, client, 1)
	if !bytes.Equal(got, want) {
		t.Fatal("batched result differs from the CPU oracle")
	}
	cs := client.Stats()
	if cs.OpsCoalesced != 4 || cs.BatchesFlushed != 1 {
		t.Fatalf("client batching stats %+v, want 4 coalesced in 1 flush", cs)
	}
	ss := srv.Stats()
	if ss.BatchFrames != 1 || ss.BatchedOps != 4 || ss.BatchReplays != 0 {
		t.Fatalf("server batching stats %+v", ss)
	}
	// 16 synchronous calls would send 16 requests; coalescing 4 of them
	// into one frame leaves 13 — 3 round trips saved.
	sent := cliEnd.Stats().MessagesSent - before
	if wantSent := int64(13); sent != wantSent {
		t.Fatalf("batched session sent %d messages, want %d", sent, wantSent)
	}
}

// TestUnbatchedSessionUnchanged pins the default path: without WithBatching
// the same workload batches nothing and touches no batch counter.
func TestUnbatchedSessionUnchanged(t *testing.T) {
	client, srv, _, cleanup := startBatchSession(t, netsim.GigaE(), nil)
	defer cleanup()

	got, want := sgemmBatched(t, client, 1)
	if !bytes.Equal(got, want) {
		t.Fatal("unbatched result differs from the CPU oracle")
	}
	cs := client.Stats()
	if cs.OpsCoalesced != 0 || cs.BatchesFlushed != 0 || cs.CacheHits != 0 || cs.CacheMisses != 0 {
		t.Fatalf("unbatched client touched batch/cache counters: %+v", cs)
	}
	if ss := srv.Stats(); ss.BatchFrames != 0 || ss.BatchedOps != 0 {
		t.Fatalf("unbatched server executed batches: %+v", ss)
	}
}

// TestBatchDeferredErrorSurfacesAtSyncPoint checks the CUDA async-error
// model: a bad batched launch returns nil at call time, fails the next
// synchronizing call, and is consumed by it.
func TestBatchDeferredErrorSurfacesAtSyncPoint(t *testing.T) {
	client, _, _, cleanup := startBatchSession(t, netsim.GigaE(), nil, WithBatching(0, 0))
	defer cleanup()

	if err := client.LaunchAsync("no-such-kernel", cudart.Dim3{X: 1}, cudart.Dim3{X: 1}, 0, nil, 0); err != nil {
		t.Fatalf("batched launch reported synchronously: %v", err)
	}
	if err := client.DeviceSynchronize(); !errors.Is(err, cudart.ErrorLaunchFailure) {
		t.Fatalf("sync after bad batched launch: %v, want launch failure", err)
	}
	// The error was consumed; the session stays usable.
	if err := client.DeviceSynchronize(); err != nil {
		t.Fatalf("second sync still failing: %v", err)
	}
}

// TestBatchFlushThresholds checks the size-triggered flush: with a two-op
// budget, the third coalesced call cannot ride the first frame.
func TestBatchFlushThresholds(t *testing.T) {
	client, srv, _, cleanup := startBatchSession(t, netsim.GigaE(), nil, WithBatching(2, 0))
	defer cleanup()

	event, err := client.EventCreate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := client.EventRecord(event, 0); err != nil {
			t.Fatal(err)
		}
	}
	cs := client.Stats()
	if cs.BatchesFlushed != 1 || cs.OpsCoalesced != 3 {
		t.Fatalf("stats after third record %+v, want 1 threshold flush", cs)
	}
	if err := client.EventSynchronize(event); err != nil {
		t.Fatal(err)
	}
	if cs := client.Stats(); cs.BatchesFlushed != 2 {
		t.Fatalf("stats after sync %+v, want the remainder flushed", cs)
	}
	if ss := srv.Stats(); ss.BatchFrames != 2 || ss.BatchedOps != 3 {
		t.Fatalf("server stats %+v", ss)
	}
	if err := client.EventDestroy(event); err != nil {
		t.Fatal(err)
	}
}

// TestBatchByteThresholdFlush checks the byte-budget trigger with a budget
// one async copy always exceeds.
func TestBatchByteThresholdFlush(t *testing.T) {
	client, _, _, cleanup := startBatchSession(t, netsim.GigaE(), nil, WithBatching(0, 64))
	defer cleanup()

	ptr, err := client.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := client.StreamCreate()
	if err != nil {
		t.Fatal(err)
	}
	if err := client.MemcpyToDeviceAsync(ptr, make([]byte, 256), stream); err != nil {
		t.Fatal(err)
	}
	if cs := client.Stats(); cs.BatchesFlushed != 1 {
		t.Fatalf("stats %+v, want immediate byte-threshold flush", cs)
	}
	if err := client.StreamSynchronize(stream); err != nil {
		t.Fatal(err)
	}
	if err := client.StreamDestroy(stream); err != nil {
		t.Fatal(err)
	}
	if err := client.Free(ptr); err != nil {
		t.Fatal(err)
	}
}

// TestChaosReconnectMidBatch injects a connection reset into the batch
// exchange itself: the server has executed the frame but the response is
// lost. The client must reattach and re-send the identical frame, and the
// server must answer it from the replay state without executing anything
// twice — the result stays bit-exact and the frame-executed counter stays
// at one.
func TestChaosReconnectMidBatch(t *testing.T) {
	srv, addr, cleanup := startTCPServer(t)
	defer cleanup()

	// Ops 4-9: three mallocs; 10/11: stream create; 12/13: event create;
	// the four coalesced calls touch no wire; op 14: batch send; op 15:
	// batch recv — inject the reset there, after the server executed.
	plan := faults.Script(
		faults.Injection{Op: opsOpenDurable + 11, Dir: faults.DirRecv, Decision: faults.Decision{Kind: faults.KindReset}},
	)
	dial := faultyDialer(addr, plan)
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	client, err := Open(conn, moduleImage(t, calib.MM),
		WithBatching(0, 0), WithRetry(4, 100*time.Microsecond), WithReconnect(dial))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	got, want := sgemmBatched(t, client, 7)
	if plan.Injected() == 0 {
		t.Fatal("scripted fault never fired; op indices drifted")
	}
	if !bytes.Equal(got, want) {
		t.Fatal("result after mid-batch reconnect differs from the CPU oracle")
	}
	cs := client.Stats()
	if cs.ConnFaults != 1 || cs.Reconnects != 1 || cs.Recovered != 1 {
		t.Fatalf("client stats %+v", cs)
	}
	ss := srv.Stats()
	if ss.BatchFrames != 1 || ss.BatchReplays != 1 || ss.BatchedOps != 4 {
		t.Fatalf("server stats %+v: replayed batch must not re-execute", ss)
	}
	if ss.Reattaches != 1 {
		t.Fatalf("server stats %+v, want one reattach", ss)
	}
}

// TestChaosResetBeforeBatchSend loses the connection before the batch
// frame reaches the server: no replay state exists, so the retry must
// execute the batch for the first time after reattaching.
func TestChaosResetBeforeBatchSend(t *testing.T) {
	srv, addr, cleanup := startTCPServer(t)
	defer cleanup()

	plan := faults.Script(
		faults.Injection{Op: opsOpenDurable + 10, Dir: faults.DirSend, Decision: faults.Decision{Kind: faults.KindReset}},
	)
	dial := faultyDialer(addr, plan)
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	client, err := Open(conn, moduleImage(t, calib.MM),
		WithBatching(0, 0), WithRetry(4, 100*time.Microsecond), WithReconnect(dial))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	got, want := sgemmBatched(t, client, 9)
	if plan.Injected() == 0 {
		t.Fatal("scripted fault never fired; op indices drifted")
	}
	if !bytes.Equal(got, want) {
		t.Fatal("result after pre-send reset differs from the CPU oracle")
	}
	if ss := srv.Stats(); ss.BatchFrames != 1 || ss.BatchReplays != 0 {
		t.Fatalf("server stats %+v: lost frame must execute exactly once", ss)
	}
}
