package rcuda

import (
	"time"

	"rcuda/internal/protocol"
	"rcuda/internal/sched"
	"rcuda/internal/stats"
)

// This file wires the per-device multi-tenant scheduler (internal/sched)
// into the daemon. With WithScheduler enabled, every device-touching
// request passes through the device's sched.Queue: the handler acquires
// the device for one op (blocking until the virtual-time scheduler grants
// it), dispatches, and releases at the op boundary — the only preemption
// point, so execution inside an op stays bit-exact. Sessions declare a
// class and weight in their extended hello; both survive park/reattach
// (same struct) and live migration (checkpoint fields).

// Scheduling class wire codes, re-exported so applications configuring a
// client do not import internal/protocol.
const (
	SchedRealtime   = protocol.SchedClassRealtime
	SchedBatch      = protocol.SchedClassBatch
	SchedBestEffort = protocol.SchedClassBestEffort
)

// WithScheduler enables the multi-tenant device scheduler with the given
// policy. sched.FIFO gates dispatch in strict arrival order (the paper's
// behavior, made explicit); sched.WFQ is weighted fair queueing over
// estimated op cost with priority classes. Without this option requests
// dispatch exactly as before: unscheduled, in each connection's own loop.
func WithScheduler(policy sched.Policy) ServerOption {
	return func(s *Server) {
		s.schedOn = true
		s.schedCfg.Policy = policy
	}
}

// WithClassWeights overrides sched.DefaultClassWeights for this daemon's
// queues; zero entries keep the default for that class. Implies nothing
// unless WithScheduler is also given.
func WithClassWeights(w [sched.NumClasses]uint32) ServerOption {
	return func(s *Server) { s.schedCfg.ClassWeights = w }
}

// classFromWire maps a hello/checkpoint class code to the scheduler's
// class; unspecified (and anything unrecognized, which decoders reject
// anyway) reads as the Batch default.
func classFromWire(code uint32) sched.Class {
	switch code {
	case protocol.SchedClassRealtime:
		return sched.Realtime
	case protocol.SchedClassBestEffort:
		return sched.BestEffort
	default:
		return sched.Batch
	}
}

// classToWire maps a scheduler class back to its wire code.
func classToWire(c sched.Class) uint32 {
	switch c {
	case sched.Realtime:
		return protocol.SchedClassRealtime
	case sched.BestEffort:
		return protocol.SchedClassBestEffort
	default:
		return protocol.SchedClassBatch
	}
}

// classifySchedOp decides whether a request must hold the device (gated)
// and, if so, which cost-model bucket estimates it. Session control
// (hello, reattach, finalize), monitoring, and device discovery never
// touch device state and bypass the queue.
func classifySchedOp(req protocol.Request) (kind sched.OpKind, bytes int, gated bool) {
	switch r := req.(type) {
	case *protocol.SessionHelloRequest, *protocol.StatsQueryRequest,
		*protocol.FinalizeRequest, *protocol.ReattachRequest,
		*protocol.GetDeviceCountRequest, *protocol.SetDeviceRequest,
		*protocol.GetDevicePropertiesRequest:
		return 0, 0, false
	case *protocol.LaunchRequest:
		return sched.KindLaunch, 0, true
	case *protocol.MemcpyToDeviceRequest:
		return sched.KindCopy, len(r.Data), true
	case *protocol.MemcpyToHostRequest:
		return sched.KindCopy, int(r.Size), true
	case *protocol.MemcpyToDeviceAsyncRequest:
		return sched.KindCopy, len(r.Data), true
	case *protocol.MemcpyToHostAsyncRequest:
		return sched.KindCopy, int(r.Size), true
	case *protocol.MemcpyD2DRequest:
		return sched.KindCopy, int(r.Size), true
	case *protocol.MemsetRequest:
		return sched.KindCopy, int(r.Size), true
	case *protocol.MemcpyStreamBeginRequest:
		// One grant covers the whole chunked transfer: it is a single op at
		// the scheduler's granularity, like the one-frame copy it replaces.
		return sched.KindCopy, int(r.Total), true
	case *protocol.SyncRequest:
		return sched.KindSync, 0, true
	case *protocol.BatchRequest:
		return sched.KindBatch, 0, true
	default:
		// Stream/event bookkeeping and anything added later: cheap, but it
		// reads device timelines, so it holds the device.
		return sched.KindOther, 0, true
	}
}

// flowOn returns the session's scheduling handle on device d, registering
// it on first use. Only the session's handler goroutine calls this.
func (ss *session) flowOn(d int) *sched.Session {
	if fl, ok := ss.flows[d]; ok {
		return fl
	}
	fl := ss.srv.queues[d].Register(ss.schedClass, ss.schedWeight)
	if ss.flows == nil {
		ss.flows = make(map[int]*sched.Session)
	}
	ss.flows[d] = fl
	return fl
}

// applySchedParams updates the session's class/weight from an extended
// hello or a restored checkpoint, moving the per-class attached gauge and
// re-classing any flows already registered. moveGauge is false when the
// session is not attached yet (checkpoint restore); the gauge then moves
// when the session attaches. Only the handler goroutine (or the restore
// path, before the session is shared) calls this.
func (s *Server) applySchedParams(sess *session, wireClass, weight uint32, moveGauge bool) {
	class := sess.schedClass
	if wireClass != protocol.SchedClassUnspecified {
		class = classFromWire(wireClass)
	}
	if weight == 0 {
		// Zero is "unspecified" on the wire (the scheduler reads a weight of
		// 0 as 1 anyway), so a bare hello never resets a declared weight.
		weight = sess.schedWeight
	}
	if class == sess.schedClass && weight == sess.schedWeight {
		return
	}
	if moveGauge && class != sess.schedClass {
		s.classAttached[sess.schedClass%sched.NumClasses].Add(-1)
		s.classAttached[class%sched.NumClasses].Add(1)
	}
	sess.schedClass = class
	sess.schedWeight = weight
	if s.schedOn {
		// All flows of one session live on this server's queues; SetClass
		// re-tags each under its own queue's lock.
		for d, fl := range sess.flows {
			s.queues[d].SetClass(fl, class, weight)
		}
	}
}

// ClassUsage is one scheduling class's slice of a StatsSnapshot, merged
// across the daemon's devices.
type ClassUsage struct {
	Class sched.Class
	// Sessions counts attached sessions that declared the class.
	Sessions int
	// Served counts ops granted; Preempted counts op-boundary yields where
	// a session of this class with more work queued lost the device.
	Served    uint64
	Preempted uint64
	// WaitP50 and WaitP99 are queue-wait percentiles on the devices'
	// clocks; WaitMax is the worst grant delay observed.
	WaitP50 time.Duration
	WaitP99 time.Duration
	WaitMax time.Duration
}

// classUsage merges the per-device queue snapshots into per-class rows.
// Returns nil when the scheduler is off.
func (s *Server) classUsage() []ClassUsage {
	if !s.schedOn {
		return nil
	}
	var served, preempted [sched.NumClasses]uint64
	var waits [sched.NumClasses]*stats.DurationHistogram
	for i := range waits {
		waits[i] = stats.NewDurationHistogram()
	}
	for _, q := range s.queues {
		snap := q.Snapshot()
		for i := range snap {
			served[i] += snap[i].Served
			preempted[i] += snap[i].Preempted
			waits[i].Merge(snap[i].Waits)
		}
	}
	out := make([]ClassUsage, 0, sched.NumClasses)
	for i := range waits {
		out = append(out, ClassUsage{
			Class:     sched.Class(i),
			Sessions:  int(clampGauge(s.classAttached[i].Load())),
			Served:    served[i],
			Preempted: preempted[i],
			WaitP50:   waits[i].Percentile(50),
			WaitP99:   waits[i].Percentile(99),
			WaitMax:   waits[i].Max(),
		})
	}
	return out
}
