package rcuda

import "rcuda/internal/gpu"

// Client-side caching of immutable replies. AI-style request loops poll
// cudaGetDeviceProperties and cudaGetDeviceCount on every iteration (to
// size launches, pick shapes); against a remote GPU each poll is a full
// round trip for an answer that cannot change while the session is pinned
// to one daemon. WithBatching therefore enables a per-session cache of
// those replies.
//
// Coherence rule: the cache is valid exactly as long as the connection that
// filled it. Any reconnect — even a reattach to the same durable session —
// invalidates it, because the retry machinery cannot prove the replacement
// connection reached an identical daemon. A broker re-placement or failover
// constructs a fresh Client and therefore starts with an empty cache by
// construction. Stale properties from a previous daemon are impossible.

// cacheCurrentDevice is the curDev sentinel for "the server-chosen initial
// device": before the first SetDevice the client does not know which device
// index a session-spread server started it on, so its properties are cached
// under this key rather than assumed to be device 0's.
const cacheCurrentDevice = -1

// invalidateCache drops every cached reply; called whenever the connection
// the cache was filled over is replaced.
func (c *Client) invalidateCache() {
	c.devCountOK = false
	c.props = nil
}

// cachedDeviceCount serves DeviceCount from the cache, reporting ok=false
// on a miss (or with caching disabled).
func (c *Client) cachedDeviceCount() (int, bool) {
	if !c.caching || !c.devCountOK {
		return 0, false
	}
	c.cstats.cacheHits.Add(1)
	return c.devCount, true
}

// storeDeviceCount fills the device-count cache after a server reply.
func (c *Client) storeDeviceCount(n int) {
	if !c.caching {
		return
	}
	c.cstats.cacheMisses.Add(1)
	c.devCount = n
	c.devCountOK = true
}

// cachedProperties serves DeviceProperties for the currently selected
// device from the cache.
func (c *Client) cachedProperties() (gpu.Properties, bool) {
	if !c.caching {
		return gpu.Properties{}, false
	}
	p, ok := c.props[c.curDev]
	if ok {
		c.cstats.cacheHits.Add(1)
	}
	return p, ok
}

// storeProperties fills the properties cache for the currently selected
// device after a server reply.
func (c *Client) storeProperties(p gpu.Properties) {
	if !c.caching {
		return
	}
	c.cstats.cacheMisses.Add(1)
	if c.props == nil {
		c.props = make(map[int]gpu.Properties)
	}
	c.props[c.curDev] = p
}
