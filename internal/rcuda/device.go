package rcuda

import (
	"rcuda/internal/cudart"
	"rcuda/internal/gpu"
	"rcuda/internal/protocol"
)

// Client-side device management: the remote runtime exposes the server's
// whole accelerator set, so one session can discover, select, and use any
// of the GPUs a server node owns (Figure 1 of the paper).

var _ cudart.DeviceRuntime = (*Client)(nil)

// DeviceCount implements cudart.DeviceRuntime. The answer cannot change
// while the session is pinned to one daemon, so with caching enabled only
// the first call per connection pays a round trip (see cache.go).
func (c *Client) DeviceCount() (int, error) {
	if n, ok := c.cachedDeviceCount(); ok {
		return n, nil
	}
	payload, err := c.roundTrip(&protocol.GetDeviceCountRequest{})
	if err != nil {
		return 0, err
	}
	resp, err := protocol.DecodeGetDeviceCountResponse(payload)
	if err != nil {
		return 0, err
	}
	if err := cudart.Error(resp.Err).AsError(); err != nil {
		return 0, err
	}
	c.storeDeviceCount(int(resp.Count))
	return int(resp.Count), nil
}

// SetDevice implements cudart.DeviceRuntime: subsequent allocations,
// copies, and launches target the selected server GPU on its own
// pre-initialized context.
func (c *Client) SetDevice(device int) error {
	// A synchronous exchange on purpose even under batching: pending
	// batched ops must execute on the previously selected device, and
	// roundTrip's sync point guarantees exactly that ordering.
	payload, err := c.roundTrip(&protocol.SetDeviceRequest{Device: uint32(device)})
	if err != nil {
		return err
	}
	resp, err := protocol.DecodeSyncResponse(payload)
	if err != nil {
		return err
	}
	if err := cudart.Error(resp.Err).AsError(); err != nil {
		return err
	}
	c.curDev = device
	return nil
}

// DeviceProperties implements cudart.DeviceRuntime, served from the
// per-connection cache after the first reply for each selected device.
func (c *Client) DeviceProperties() (gpu.Properties, error) {
	if p, ok := c.cachedProperties(); ok {
		return p, nil
	}
	payload, err := c.roundTrip(&protocol.GetDevicePropertiesRequest{})
	if err != nil {
		return gpu.Properties{}, err
	}
	resp, err := protocol.DecodeGetDevicePropertiesResponse(payload)
	if err != nil {
		return gpu.Properties{}, err
	}
	if err := cudart.Error(resp.Err).AsError(); err != nil {
		return gpu.Properties{}, err
	}
	p := gpu.Properties{
		Name:            resp.Name,
		MemoryBytes:     resp.MemoryBytes,
		CapabilityMajor: resp.CapabilityMajor,
		CapabilityMinor: resp.CapabilityMinor,
		Multiprocessors: resp.Multiprocessors,
		ClockMHz:        resp.ClockMHz,
		MemoryMBps:      resp.MemoryMBps,
	}
	c.storeProperties(p)
	return p, nil
}

// Memset implements cudart.DeviceRuntime; a fire-and-forget write, so it
// coalesces under batching.
func (c *Client) Memset(ptr cudart.DevicePtr, value byte, size uint32) error {
	req := &protocol.MemsetRequest{
		DevPtr: uint32(ptr), Value: uint32(value), Size: size,
	}
	if c.batching {
		return c.enqueue(req)
	}
	payload, err := c.roundTrip(req)
	if err != nil {
		return err
	}
	resp, err := protocol.DecodeSyncResponse(payload)
	if err != nil {
		return err
	}
	return cudart.Error(resp.Err).AsError()
}

// MemcpyDeviceToDevice implements cudart.DeviceRuntime: the copy stays on
// the server GPU, so only 16 bytes plus a result code cross the network —
// the payoff of keeping intermediate results in remote device memory.
func (c *Client) MemcpyDeviceToDevice(dst, src cudart.DevicePtr, size uint32) error {
	payload, err := c.roundTrip(&protocol.MemcpyD2DRequest{
		Dst: uint32(dst), Src: uint32(src), Size: size,
	})
	if err != nil {
		return err
	}
	resp, err := protocol.DecodeSyncResponse(payload)
	if err != nil {
		return err
	}
	return cudart.Error(resp.Err).AsError()
}
