package rcuda

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"rcuda/internal/cudart"
	"rcuda/internal/protocol"
	"rcuda/internal/transport"
)

// ServerStats are cumulative daemon counters, suitable for an operator
// dashboard or load-balancing decisions across GPU servers.
type ServerStats struct {
	// SessionsStarted counts accepted client sessions, including ones
	// that failed the handshake.
	SessionsStarted int64
	// SessionsActive counts sessions currently being served.
	SessionsActive int64
	// Requests counts post-handshake requests across all sessions.
	Requests int64
	// BytesReceived and BytesSent count Table I payload bytes across all
	// sessions, including the handshake.
	BytesReceived int64
	BytesSent     int64
	// Reattaches counts connections that resumed a parked durable session.
	Reattaches int64
	// SessionsParked counts durable sessions whose connection died and
	// whose state was kept for a reattach (cumulative, not a gauge).
	SessionsParked int64
	// RejectedConns counts connections refused by the concurrency cap
	// (WithMaxConns).
	RejectedConns int64
	// RejectedSessions counts handshakes refused by the session cap or
	// whose admission-queue wait expired (WithMaxSessions).
	RejectedSessions int64
	// QuotaDenials counts cudaMalloc requests refused by a per-session
	// quota (WithSessionMemoryLimit, WithMaxAllocsPerSession).
	QuotaDenials int64
	// WatchdogKills counts connections killed because a transport
	// operation overran the request deadline (WithRequestDeadline).
	WatchdogKills int64
	// Evictions counts parked durable sessions destroyed by the TTL
	// garbage collector (WithParkedSessionTTL).
	Evictions int64
	// ForcedCloses counts connections force-closed because a drain or
	// Close deadline expired before they finished.
	ForcedCloses int64
	// StatsQueries counts StatsQuery requests answered, both broker health
	// probes and in-session queries.
	StatsQueries int64
	// BatchFrames counts OpBatch frames executed (replays excluded) and
	// BatchedOps the sub-operations they carried — the round trips the
	// batching layer saved are BatchedOps − BatchFrames.
	BatchFrames int64
	BatchedOps  int64
	// BatchReplays counts batches answered from the per-session dedup state
	// without re-execution (a client retried after losing the response).
	BatchReplays int64
	// Migrations counts sessions live-migrated away to another daemon, and
	// MigrationBytes the checkpoint bytes streamed out (moves and standby
	// copies both).
	Migrations     int64
	MigrationBytes int64
	// MigrationFailures counts outbound migrations and standby copies that
	// failed; the session stays intact and reattachable here.
	MigrationFailures int64
	// RestoreFromCheckpoint counts sessions this daemon materialized from
	// an inbound checkpoint stream (a migration's destination half, or a
	// peer's standby copy).
	RestoreFromCheckpoint int64
}

// serverCounters backs Server.Stats with atomics.
type serverCounters struct {
	sessionsStarted  atomic.Int64
	sessionsActive   atomic.Int64
	requests         atomic.Int64
	bytesReceived    atomic.Int64
	bytesSent        atomic.Int64
	reattaches       atomic.Int64
	sessionsParked   atomic.Int64
	rejectedConns    atomic.Int64
	rejectedSessions atomic.Int64
	quotaDenials     atomic.Int64
	watchdogKills    atomic.Int64
	evictions        atomic.Int64
	forcedCloses     atomic.Int64
	statsQueries     atomic.Int64
	batchFrames      atomic.Int64
	batchedOps       atomic.Int64
	batchReplays     atomic.Int64

	migrations            atomic.Int64
	migrationBytes        atomic.Int64
	migrationFailures     atomic.Int64
	restoreFromCheckpoint atomic.Int64
}

// Stats returns a snapshot of the daemon's counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		SessionsStarted: s.counters.sessionsStarted.Load(),
		SessionsActive:  s.counters.sessionsActive.Load(),
		Requests:        s.counters.requests.Load(),
		BytesReceived:   s.counters.bytesReceived.Load(),
		BytesSent:       s.counters.bytesSent.Load(),
		Reattaches:      s.counters.reattaches.Load(),
		SessionsParked:  s.counters.sessionsParked.Load(),

		RejectedConns:    s.counters.rejectedConns.Load(),
		RejectedSessions: s.counters.rejectedSessions.Load(),
		QuotaDenials:     s.counters.quotaDenials.Load(),
		WatchdogKills:    s.counters.watchdogKills.Load(),
		Evictions:        s.counters.evictions.Load(),
		ForcedCloses:     s.counters.forcedCloses.Load(),
		StatsQueries:     s.counters.statsQueries.Load(),
		BatchFrames:      s.counters.batchFrames.Load(),
		BatchedOps:       s.counters.batchedOps.Load(),
		BatchReplays:     s.counters.batchReplays.Load(),

		Migrations:            s.counters.migrations.Load(),
		MigrationBytes:        s.counters.migrationBytes.Load(),
		MigrationFailures:     s.counters.migrationFailures.Load(),
		RestoreFromCheckpoint: s.counters.restoreFromCheckpoint.Load(),
	}
}

// DeviceUsage reports one device's live allocator state and scheduling
// gauges.
type DeviceUsage struct {
	Name        string
	BytesInUse  uint64
	Allocations int
	// Sessions counts sessions currently holding a context on the device.
	Sessions int
	// Busy is the cumulative time the daemon spent executing requests on
	// the device, measured on the device's own clock.
	Busy time.Duration
}

// StatsSnapshot is a point-in-time operational view of the daemon: the
// cumulative counters plus live gauges an operator needs to judge whether
// the hardening limits are doing their job.
type StatsSnapshot struct {
	ServerStats
	// SessionsLive counts sessions currently attached to a connection.
	SessionsLive int64
	// SessionsParkedNow counts durable sessions currently parked awaiting
	// a reattach (a gauge, unlike the cumulative SessionsParked).
	SessionsParkedNow int
	// Devices reports each device's allocator occupancy.
	Devices []DeviceUsage
	// Classes reports per-scheduling-class queue accounting, merged across
	// the daemon's devices. Nil when the scheduler is off (see sched.go).
	Classes []ClassUsage
}

// StatsSnapshot captures the daemon's current operational state.
func (s *Server) StatsSnapshot() StatsSnapshot {
	snap := StatsSnapshot{
		ServerStats:       s.Stats(),
		SessionsLive:      s.counters.sessionsActive.Load(),
		SessionsParkedNow: s.parkedNow(),
	}
	for i, dev := range s.devs {
		snap.Devices = append(snap.Devices, DeviceUsage{
			Name:        dev.Properties().Name,
			BytesInUse:  dev.MemoryInUse(),
			Allocations: dev.Allocations(),
			Sessions:    int(clampGauge(s.devSessions[i].Load())),
			Busy:        time.Duration(clampGauge(s.devBusy[i].Load())),
		})
	}
	snap.Classes = s.classUsage()
	return snap
}

// parkedNow counts durable sessions currently parked awaiting a reattach.
func (s *Server) parkedNow() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, sess := range s.registry {
		if !sess.attached && !sess.destroyed {
			n++
		}
	}
	return n
}

// clampGauge floors a gauge at zero. The accounting pairs every decrement
// with a prior increment, so a negative value would be a bug; clamping
// keeps a momentarily torn read during shutdown from ever reaching an
// operator or the wire as a giant unsigned number.
func clampGauge(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}

// statsReply builds the trimmed wire form of the daemon's snapshot for
// StatsQuery: the live gauges a broker's placement policy ranks servers
// by, without the cumulative counter block.
func (s *Server) statsReply() *protocol.StatsReply {
	r := &protocol.StatsReply{
		SessionsLive:   uint32(clampGauge(s.attached.Load())),
		SessionsParked: uint32(s.parkedNow()),
	}
	for i, dev := range s.devs {
		r.Devices = append(r.Devices, protocol.DeviceStats{
			BytesInUse:  dev.MemoryInUse(),
			Allocations: uint32(clampGauge(int64(dev.Allocations()))),
			Sessions:    uint32(clampGauge(s.devSessions[i].Load())),
			BusyNanos:   uint64(clampGauge(s.devBusy[i].Load())),
		})
	}
	if usage := s.classUsage(); usage != nil {
		// The wire's class rows are indexed by wire code - 1: realtime,
		// batch, besteffort.
		r.HasClasses = true
		for _, cu := range usage {
			r.Classes[classToWire(cu.Class)-1] = protocol.ClassLoad{
				Sessions:     uint32(clampGauge(int64(cu.Sessions))),
				P99WaitNanos: uint64(cu.WaitP99),
			}
		}
	}
	return r
}

// serveStatsConn serves a probe-only connection: one whose opening message
// was a StatsQuery instead of an init or reattach payload. The connection
// carries nothing but further stats queries — a broker keeps one open per
// endpoint and polls it — and never touches session admission, so probing
// works even on a server that is refusing new sessions. A clean close by
// the prober ends the loop without error.
func (s *Server) serveStatsConn(conn transport.Conn, first *protocol.StatsQueryRequest) error {
	_ = first
	for {
		s.counters.statsQueries.Add(1)
		if err := conn.Send(s.statsReply()); err != nil {
			return fmt.Errorf("rcuda: stats send: %w", err)
		}
		payload, err := conn.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return fmt.Errorf("rcuda: stats recv: %w", err)
		}
		if _, ok := protocol.TryDecodeStatsQuery(payload); !ok {
			return fmt.Errorf("rcuda: non-stats request on a stats connection")
		}
	}
}

// QueryStats asks the server this client's connection leads to for its
// live load snapshot — an in-session counterpart of the broker's probe.
// Like every Runtime call it is a synchronous exchange on the session's
// connection; under WithRetry it is retried as an idempotent read.
func (c *Client) QueryStats() (*protocol.StatsReply, error) {
	payload, err := c.roundTrip(&protocol.StatsQueryRequest{})
	if err != nil {
		return nil, err
	}
	resp, err := protocol.DecodeStatsReply(payload)
	if err != nil {
		return nil, err
	}
	if err := cudart.Error(resp.Err).AsError(); err != nil {
		return nil, err
	}
	return resp, nil
}

// ClientStats are cumulative per-client resilience counters.
type ClientStats struct {
	// ConnFaults counts operations interrupted by a connection-level
	// failure (reset, truncation, stall, EOF).
	ConnFaults int64
	// Retries counts re-executions of idempotent operations after a fault.
	Retries int64
	// Reconnects counts successful redial-and-reattach cycles.
	Reconnects int64
	// Recovered counts operations that ultimately succeeded on a retry.
	Recovered int64
	// BatchesFlushed counts OpBatch frames sent and OpsCoalesced the calls
	// that rode in them instead of paying their own round trip
	// (WithBatching).
	BatchesFlushed int64
	OpsCoalesced   int64
	// CacheHits and CacheMisses count immutable-reply lookups served from
	// and filled into the client cache (device count and properties).
	CacheHits   int64
	CacheMisses int64
	// Migrations counts reattaches redirected with CodeSessionMigrated and
	// followed to the session's new home — each is a recovery that replayed
	// nothing.
	Migrations int64
}

// clientCounters backs Client.Stats with atomics so observers can poll a
// client that is mid-operation on another goroutine.
type clientCounters struct {
	connFaults     atomic.Int64
	retries        atomic.Int64
	reconnects     atomic.Int64
	recovered      atomic.Int64
	batchesFlushed atomic.Int64
	opsCoalesced   atomic.Int64
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	migrations     atomic.Int64
}

// Stats returns a snapshot of the client's resilience counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		ConnFaults:     c.cstats.connFaults.Load(),
		Retries:        c.cstats.retries.Load(),
		Reconnects:     c.cstats.reconnects.Load(),
		Recovered:      c.cstats.recovered.Load(),
		BatchesFlushed: c.cstats.batchesFlushed.Load(),
		OpsCoalesced:   c.cstats.opsCoalesced.Load(),
		CacheHits:      c.cstats.cacheHits.Load(),
		CacheMisses:    c.cstats.cacheMisses.Load(),
		Migrations:     c.cstats.migrations.Load(),
	}
}
