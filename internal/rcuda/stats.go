package rcuda

import "sync/atomic"

// ServerStats are cumulative daemon counters, suitable for an operator
// dashboard or load-balancing decisions across GPU servers.
type ServerStats struct {
	// SessionsStarted counts accepted client sessions, including ones
	// that failed the handshake.
	SessionsStarted int64
	// SessionsActive counts sessions currently being served.
	SessionsActive int64
	// Requests counts post-handshake requests across all sessions.
	Requests int64
	// BytesReceived and BytesSent count Table I payload bytes across all
	// sessions, including the handshake.
	BytesReceived int64
	BytesSent     int64
}

// serverCounters backs Server.Stats with atomics.
type serverCounters struct {
	sessionsStarted atomic.Int64
	sessionsActive  atomic.Int64
	requests        atomic.Int64
	bytesReceived   atomic.Int64
	bytesSent       atomic.Int64
}

// Stats returns a snapshot of the daemon's counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		SessionsStarted: s.counters.sessionsStarted.Load(),
		SessionsActive:  s.counters.sessionsActive.Load(),
		Requests:        s.counters.requests.Load(),
		BytesReceived:   s.counters.bytesReceived.Load(),
		BytesSent:       s.counters.bytesSent.Load(),
	}
}
