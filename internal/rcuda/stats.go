package rcuda

import "sync/atomic"

// ServerStats are cumulative daemon counters, suitable for an operator
// dashboard or load-balancing decisions across GPU servers.
type ServerStats struct {
	// SessionsStarted counts accepted client sessions, including ones
	// that failed the handshake.
	SessionsStarted int64
	// SessionsActive counts sessions currently being served.
	SessionsActive int64
	// Requests counts post-handshake requests across all sessions.
	Requests int64
	// BytesReceived and BytesSent count Table I payload bytes across all
	// sessions, including the handshake.
	BytesReceived int64
	BytesSent     int64
	// Reattaches counts connections that resumed a parked durable session.
	Reattaches int64
	// SessionsParked counts durable sessions whose connection died and
	// whose state was kept for a reattach (cumulative, not a gauge).
	SessionsParked int64
}

// serverCounters backs Server.Stats with atomics.
type serverCounters struct {
	sessionsStarted atomic.Int64
	sessionsActive  atomic.Int64
	requests        atomic.Int64
	bytesReceived   atomic.Int64
	bytesSent       atomic.Int64
	reattaches      atomic.Int64
	sessionsParked  atomic.Int64
}

// Stats returns a snapshot of the daemon's counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		SessionsStarted: s.counters.sessionsStarted.Load(),
		SessionsActive:  s.counters.sessionsActive.Load(),
		Requests:        s.counters.requests.Load(),
		BytesReceived:   s.counters.bytesReceived.Load(),
		BytesSent:       s.counters.bytesSent.Load(),
		Reattaches:      s.counters.reattaches.Load(),
		SessionsParked:  s.counters.sessionsParked.Load(),
	}
}

// ClientStats are cumulative per-client resilience counters.
type ClientStats struct {
	// ConnFaults counts operations interrupted by a connection-level
	// failure (reset, truncation, stall, EOF).
	ConnFaults int64
	// Retries counts re-executions of idempotent operations after a fault.
	Retries int64
	// Reconnects counts successful redial-and-reattach cycles.
	Reconnects int64
	// Recovered counts operations that ultimately succeeded on a retry.
	Recovered int64
}

// clientCounters backs Client.Stats with atomics so observers can poll a
// client that is mid-operation on another goroutine.
type clientCounters struct {
	connFaults atomic.Int64
	retries    atomic.Int64
	reconnects atomic.Int64
	recovered  atomic.Int64
}

// Stats returns a snapshot of the client's resilience counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		ConnFaults: c.cstats.connFaults.Load(),
		Retries:    c.cstats.retries.Load(),
		Reconnects: c.cstats.reconnects.Load(),
		Recovered:  c.cstats.recovered.Load(),
	}
}
