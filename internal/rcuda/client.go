package rcuda

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"rcuda/internal/cudart"
	"rcuda/internal/gpu"
	"rcuda/internal/protocol"
	"rcuda/internal/transport"
)

// Client is the client side of the middleware: a cudart.Runtime whose every
// method is a remote procedure call to an rCUDA server. Applications built
// against cudart.Runtime cannot tell it from a local GPU — the paper's
// "illusion of being a real GPU".
//
// A Client is not safe for concurrent use by multiple goroutines: the
// protocol is strictly synchronous request/response, matching the paper's
// scope (asynchronous transfers are explicitly future work there).
//
// Close tears the session down: it sends the finalization message, closes
// the transport, and detaches the observer. After Close — which is
// idempotent — every Runtime method fails with cudart.ErrorInitialization,
// mirroring how the CUDA runtime reports calls after cudaDeviceReset.
type Client struct {
	conn     transport.Conn
	capMajor uint32
	capMinor uint32
	closed   atomic.Bool
	// Chunked-transfer tuning; chunkThreshold 0 disables the chunked
	// protocol entirely (the wire-compatible Table I default).
	chunkThreshold int
	chunkSize      uint32
	// hooks for tracing; nil-safe.
	observer Observer
	// Retry/reconnect policy (see WithRetry and WithReconnect). The
	// mutable connection state shares the Client's single-goroutine
	// contract; only the counters are read concurrently via Stats.
	retryMax     int
	retryBackoff time.Duration
	retryRNG     *rand.Rand
	dial         func() (transport.Conn, error)
	sessionID    uint64
	durable      bool
	connBroken   bool
	lost         bool
	cstats       clientCounters
	// Batching state (see batch.go). pendSubs holds the encoded sub-ops of
	// the open batch; deferredErr is the oldest unreported batched-call
	// failure, surfaced at the next sync point.
	batching      bool
	batchMaxOps   int
	batchMaxBytes int
	pendSubs      [][]byte
	pendBytes     int
	batchSeq      uint64
	deferredErr   error
	// Immutable-reply cache (see cache.go). curDev tracks the device index
	// selected with SetDevice, keying the properties cache.
	caching    bool
	devCount   int
	devCountOK bool
	props      map[int]gpu.Properties
	curDev     int
	// Scheduling parameters declared in the session hello (WithSchedClass);
	// both zero means a bare hello.
	schedClass  uint32
	schedWeight uint32
}

var _ cudart.Runtime = (*Client)(nil)

// Observer receives a notification for every remote call a client makes.
// Package trace implements it to reproduce the paper's Figure 2.
type Observer interface {
	// Call reports one completed remote call with its Table I payload
	// sizes.
	Call(op protocol.Op, sentBytes, recvBytes int)
}

// ClientOption configures Open.
type ClientOption func(*Client)

// WithObserver attaches a call observer.
func WithObserver(o Observer) ClientOption {
	return func(c *Client) { c.observer = o }
}

// WithSchedClass declares the session's scheduling class and weight
// (SchedRealtime, SchedBatch, SchedBestEffort; weight 0 reads as 1) to a
// daemon running the multi-tenant scheduler. The declaration rides the
// session hello, so Open sends one even without WithReconnect — which
// also makes the session durable, a strict upgrade. Servers without the
// scheduler accept and ignore the extended hello.
func WithSchedClass(class, weight uint32) ClientOption {
	return func(c *Client) {
		c.schedClass = class
		c.schedWeight = weight
	}
}

// DefaultChunkThreshold is the transfer size at which WithChunkedTransfers
// switches to the chunked protocol when no explicit threshold is given:
// four default-size chunks, below which the extra round trip of the
// Begin acknowledgement outweighs the overlap.
const DefaultChunkThreshold = 4 * protocol.DefaultChunkSize

// WithChunkedTransfers opts in to the pipelined chunked-memcpy protocol
// for transfers of at least threshold bytes, split into chunkSize-byte
// chunks; the server overlaps each chunk's PCIe push with the next chunk's
// network transfer. threshold <= 0 selects DefaultChunkThreshold and
// chunkSize <= 0 selects protocol.DefaultChunkSize. Without this option
// every transfer uses the classic single-frame messages, whose byte
// accounting matches Table I of the paper.
func WithChunkedTransfers(threshold, chunkSize int) ClientOption {
	return func(c *Client) {
		if threshold <= 0 {
			threshold = DefaultChunkThreshold
		}
		if chunkSize <= 0 {
			chunkSize = protocol.DefaultChunkSize
		}
		c.chunkThreshold = threshold
		c.chunkSize = uint32(chunkSize)
	}
}

// Open establishes a session: it connects the client side of the middleware
// over an existing transport connection and performs the initialization
// exchange, locating and sending the application's GPU module.
func Open(conn transport.Conn, module []byte, opts ...ClientOption) (*Client, error) {
	// The jitter source is seeded, not time-derived, so a fault scenario
	// replays with identical backoff decisions.
	c := &Client{conn: conn, retryRNG: rand.New(rand.NewSource(1)), curDev: cacheCurrentDevice}
	for _, o := range opts {
		o(c)
	}
	req := &protocol.InitRequest{Module: module}
	if err := conn.Send(req); err != nil {
		return nil, fmt.Errorf("rcuda: init send: %w", err)
	}
	payload, err := conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("rcuda: init recv: %w", err)
	}
	resp, err := protocol.DecodeInitResponse(payload)
	if err != nil {
		return nil, fmt.Errorf("rcuda: init decode: %w", err)
	}
	c.observe(protocol.OpInit, req.WireSize(), resp.WireSize())
	if resp.Err == protocol.CodeServerBusy {
		return nil, fmt.Errorf("rcuda: server refused admission: %w", ErrServerBusy)
	}
	if err := cudart.Error(resp.Err).AsError(); err != nil {
		return nil, fmt.Errorf("rcuda: server rejected initialization: %w", err)
	}
	c.capMajor, c.capMinor = resp.CapabilityMajor, resp.CapabilityMinor
	if c.dial != nil || c.schedClass != 0 || c.schedWeight != 0 {
		if err := c.helloDurable(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// helloDurable upgrades the freshly initialized session to a durable one
// so a later reconnect can reattach to it. It runs on the still-healthy
// initial connection and is not itself retried.
func (c *Client) helloDurable() error {
	hello := &protocol.SessionHelloRequest{Class: c.schedClass, Weight: c.schedWeight}
	if err := c.conn.Send(hello); err != nil {
		return fmt.Errorf("rcuda: session hello send: %w", err)
	}
	payload, err := c.conn.Recv()
	if err != nil {
		return fmt.Errorf("rcuda: session hello recv: %w", err)
	}
	resp, err := protocol.DecodeSessionHelloResponse(payload)
	if err != nil {
		return fmt.Errorf("rcuda: session hello decode: %w", err)
	}
	c.observe(protocol.OpSessionHello, hello.WireSize(), len(payload))
	if refuse := cudart.Error(resp.Err).AsError(); refuse != nil {
		return fmt.Errorf("rcuda: server refused durable session: %w", refuse)
	}
	c.sessionID = resp.Session
	c.durable = true
	return nil
}

func (c *Client) observe(op protocol.Op, sent, recv int) {
	if c.observer != nil {
		c.observer.Call(op, sent, recv)
	}
}

// roundTrip sends a request and returns the raw response payload. The
// exchange runs under the retry policy: a connection fault mid-exchange
// re-runs the whole request on a replacement connection when the
// operation is idempotent.
func (c *Client) roundTrip(req protocol.Request) ([]byte, error) {
	if c.closed.Load() {
		return nil, cudart.ErrorInitialization
	}
	// Every synchronous exchange is a sync point for the batching layer:
	// pending coalesced work must reach the server first so the wire keeps
	// the program's call order, and a deferred batched-call failure surfaces
	// here instead of the exchange running.
	if err := c.syncPoint(); err != nil {
		return nil, err
	}
	var payload []byte
	err := c.runRetry(req.Op(), func() error {
		if err := c.conn.Send(req); err != nil {
			return fmt.Errorf("rcuda: %v send: %w", req.Op(), err)
		}
		p, err := c.conn.Recv()
		if err != nil {
			return fmt.Errorf("rcuda: %v recv: %w", req.Op(), err)
		}
		payload = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.observe(req.Op(), req.WireSize(), len(payload))
	return payload, nil
}

// Malloc implements cudart.Runtime.
func (c *Client) Malloc(size uint32) (cudart.DevicePtr, error) {
	payload, err := c.roundTrip(&protocol.MallocRequest{Size: size})
	if err != nil {
		return 0, err
	}
	resp, err := protocol.DecodeMallocResponse(payload)
	if err != nil {
		return 0, err
	}
	if err := cudart.Error(resp.Err).AsError(); err != nil {
		return 0, err
	}
	return cudart.DevicePtr(resp.DevPtr), nil
}

// Free implements cudart.Runtime.
func (c *Client) Free(ptr cudart.DevicePtr) error {
	payload, err := c.roundTrip(&protocol.FreeRequest{DevPtr: uint32(ptr)})
	if err != nil {
		return err
	}
	resp, err := protocol.DecodeFreeResponse(payload)
	if err != nil {
		return err
	}
	return cudart.Error(resp.Err).AsError()
}

// MemcpyToDevice implements cudart.Runtime.
func (c *Client) MemcpyToDevice(dst cudart.DevicePtr, src []byte) error {
	if c.chunkThreshold > 0 && len(src) >= c.chunkThreshold {
		// The chunked path bypasses roundTrip, so it takes its sync point
		// here before the transfer starts.
		if err := c.syncPoint(); err != nil {
			return err
		}
		// Retry restarts the whole transfer from Begin: the server-side
		// rewrite of the same bytes to the same region is idempotent.
		return c.runRetry(protocol.OpMemcpyToDevice, func() error {
			return c.memcpyToDeviceChunked(dst, src)
		})
	}
	payload, err := c.roundTrip(&protocol.MemcpyToDeviceRequest{Dst: uint32(dst), Data: src})
	if err != nil {
		return err
	}
	resp, err := protocol.DecodeMemcpyToDeviceResponse(payload)
	if err != nil {
		return err
	}
	return cudart.Error(resp.Err).AsError()
}

// MemcpyToHost implements cudart.Runtime. The response payload is decoded
// straight into dst, so the call allocates nothing for the data itself.
func (c *Client) MemcpyToHost(dst []byte, src cudart.DevicePtr) error {
	if c.chunkThreshold > 0 && len(dst) >= c.chunkThreshold {
		if err := c.syncPoint(); err != nil {
			return err
		}
		return c.runRetry(protocol.OpMemcpyToHost, func() error {
			return c.memcpyToHostChunked(dst, src)
		})
	}
	payload, err := c.roundTrip(&protocol.MemcpyToHostRequest{
		Src:  uint32(src),
		Size: uint32(len(dst)),
	})
	if err != nil {
		return err
	}
	errCode, err := protocol.DecodeMemcpyToHostResponseInto(payload, dst)
	if cudaErr := cudart.Error(errCode).AsError(); cudaErr != nil {
		return cudaErr
	}
	return err
}

// Launch implements cudart.Runtime. cudaLaunch is asynchronous by
// definition, so with batching enabled it coalesces instead of paying a
// round trip; its server-side error surfaces at the next sync point.
func (c *Client) Launch(name string, grid, block cudart.Dim3, shared uint32, params []byte) error {
	req := &protocol.LaunchRequest{
		BlockDim:   [3]uint32{block.X, block.Y, block.Z},
		GridDim:    [2]uint32{grid.X, grid.Y},
		SharedSize: shared,
		Name:       name,
		Params:     params,
	}
	if c.batching {
		return c.enqueue(req)
	}
	payload, err := c.roundTrip(req)
	if err != nil {
		return err
	}
	resp, err := protocol.DecodeLaunchResponse(payload)
	if err != nil {
		return err
	}
	return cudart.Error(resp.Err).AsError()
}

// DeviceSynchronize implements cudart.Runtime.
func (c *Client) DeviceSynchronize() error {
	payload, err := c.roundTrip(&protocol.SyncRequest{})
	if err != nil {
		return err
	}
	resp, err := protocol.DecodeSyncResponse(payload)
	if err != nil {
		return err
	}
	return cudart.Error(resp.Err).AsError()
}

// Capability implements cudart.Runtime, returning the compute capability
// received during initialization.
func (c *Client) Capability() (major, minor uint32) { return c.capMajor, c.capMinor }

// Close implements cudart.Runtime: it sends the finalization message (the
// daemon quits servicing this execution and releases its resources),
// closes the transport, and detaches the observer. It is idempotent; see
// the Client contract for post-Close behavior.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	// A broken durable session is revived just long enough to deliver the
	// finalization, so the server releases it instead of parking it until
	// daemon shutdown. Best-effort: an unreachable server leaves the
	// parked session to the daemon's own cleanup.
	if c.connBroken && !c.lost {
		if err := c.reconnect(); err != nil {
			c.lost = true
		}
	}
	// Close is the final sync point: pending batched work is flushed so its
	// effects land before finalization, and a deferred batched-call failure
	// gets its last chance to reach the application.
	var flushErr error
	if c.batching && !c.lost {
		flushErr = c.syncPoint()
	}
	req := &protocol.FinalizeRequest{}
	sendErr := c.conn.Send(req)
	if sendErr == nil {
		c.observe(protocol.OpFinalize, req.WireSize(), 0)
	}
	c.observer = nil
	closeErr := c.conn.Close()
	if flushErr != nil {
		return flushErr
	}
	if sendErr != nil {
		return sendErr
	}
	return closeErr
}
