package rcuda

import (
	"fmt"

	"rcuda/internal/cudart"
	"rcuda/internal/protocol"
	"rcuda/internal/transport"
)

// Client is the client side of the middleware: a cudart.Runtime whose every
// method is a remote procedure call to an rCUDA server. Applications built
// against cudart.Runtime cannot tell it from a local GPU — the paper's
// "illusion of being a real GPU".
//
// A Client is not safe for concurrent use by multiple goroutines: the
// protocol is strictly synchronous request/response, matching the paper's
// scope (asynchronous transfers are explicitly future work there).
type Client struct {
	conn     transport.Conn
	capMajor uint32
	capMinor uint32
	closed   bool
	// hooks for tracing; nil-safe.
	observer Observer
}

var _ cudart.Runtime = (*Client)(nil)

// Observer receives a notification for every remote call a client makes.
// Package trace implements it to reproduce the paper's Figure 2.
type Observer interface {
	// Call reports one completed remote call with its Table I payload
	// sizes.
	Call(op protocol.Op, sentBytes, recvBytes int)
}

// ClientOption configures Open.
type ClientOption func(*Client)

// WithObserver attaches a call observer.
func WithObserver(o Observer) ClientOption {
	return func(c *Client) { c.observer = o }
}

// Open establishes a session: it connects the client side of the middleware
// over an existing transport connection and performs the initialization
// exchange, locating and sending the application's GPU module.
func Open(conn transport.Conn, module []byte, opts ...ClientOption) (*Client, error) {
	c := &Client{conn: conn}
	for _, o := range opts {
		o(c)
	}
	req := &protocol.InitRequest{Module: module}
	if err := conn.Send(req); err != nil {
		return nil, fmt.Errorf("rcuda: init send: %w", err)
	}
	payload, err := conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("rcuda: init recv: %w", err)
	}
	resp, err := protocol.DecodeInitResponse(payload)
	if err != nil {
		return nil, fmt.Errorf("rcuda: init decode: %w", err)
	}
	c.observe(protocol.OpInit, req.WireSize(), resp.WireSize())
	if err := cudart.Error(resp.Err).AsError(); err != nil {
		return nil, fmt.Errorf("rcuda: server rejected initialization: %w", err)
	}
	c.capMajor, c.capMinor = resp.CapabilityMajor, resp.CapabilityMinor
	return c, nil
}

func (c *Client) observe(op protocol.Op, sent, recv int) {
	if c.observer != nil {
		c.observer.Call(op, sent, recv)
	}
}

// roundTrip sends a request and returns the raw response payload.
func (c *Client) roundTrip(req protocol.Request) ([]byte, error) {
	if c.closed {
		return nil, cudart.ErrorInitialization
	}
	if err := c.conn.Send(req); err != nil {
		return nil, fmt.Errorf("rcuda: %v send: %w", req.Op(), err)
	}
	payload, err := c.conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("rcuda: %v recv: %w", req.Op(), err)
	}
	c.observe(req.Op(), req.WireSize(), len(payload))
	return payload, nil
}

// Malloc implements cudart.Runtime.
func (c *Client) Malloc(size uint32) (cudart.DevicePtr, error) {
	payload, err := c.roundTrip(&protocol.MallocRequest{Size: size})
	if err != nil {
		return 0, err
	}
	resp, err := protocol.DecodeMallocResponse(payload)
	if err != nil {
		return 0, err
	}
	if err := cudart.Error(resp.Err).AsError(); err != nil {
		return 0, err
	}
	return cudart.DevicePtr(resp.DevPtr), nil
}

// Free implements cudart.Runtime.
func (c *Client) Free(ptr cudart.DevicePtr) error {
	payload, err := c.roundTrip(&protocol.FreeRequest{DevPtr: uint32(ptr)})
	if err != nil {
		return err
	}
	resp, err := protocol.DecodeFreeResponse(payload)
	if err != nil {
		return err
	}
	return cudart.Error(resp.Err).AsError()
}

// MemcpyToDevice implements cudart.Runtime.
func (c *Client) MemcpyToDevice(dst cudart.DevicePtr, src []byte) error {
	payload, err := c.roundTrip(&protocol.MemcpyToDeviceRequest{Dst: uint32(dst), Data: src})
	if err != nil {
		return err
	}
	resp, err := protocol.DecodeMemcpyToDeviceResponse(payload)
	if err != nil {
		return err
	}
	return cudart.Error(resp.Err).AsError()
}

// MemcpyToHost implements cudart.Runtime.
func (c *Client) MemcpyToHost(dst []byte, src cudart.DevicePtr) error {
	payload, err := c.roundTrip(&protocol.MemcpyToHostRequest{
		Src:  uint32(src),
		Size: uint32(len(dst)),
	})
	if err != nil {
		return err
	}
	resp, err := protocol.DecodeMemcpyToHostResponse(payload)
	if err != nil {
		return err
	}
	if err := cudart.Error(resp.Err).AsError(); err != nil {
		return err
	}
	if len(resp.Data) != len(dst) {
		return fmt.Errorf("rcuda: memcpy returned %d bytes, want %d", len(resp.Data), len(dst))
	}
	copy(dst, resp.Data)
	return nil
}

// Launch implements cudart.Runtime.
func (c *Client) Launch(name string, grid, block cudart.Dim3, shared uint32, params []byte) error {
	payload, err := c.roundTrip(&protocol.LaunchRequest{
		BlockDim:   [3]uint32{block.X, block.Y, block.Z},
		GridDim:    [2]uint32{grid.X, grid.Y},
		SharedSize: shared,
		Name:       name,
		Params:     params,
	})
	if err != nil {
		return err
	}
	resp, err := protocol.DecodeLaunchResponse(payload)
	if err != nil {
		return err
	}
	return cudart.Error(resp.Err).AsError()
}

// DeviceSynchronize implements cudart.Runtime.
func (c *Client) DeviceSynchronize() error {
	payload, err := c.roundTrip(&protocol.SyncRequest{})
	if err != nil {
		return err
	}
	resp, err := protocol.DecodeSyncResponse(payload)
	if err != nil {
		return err
	}
	return cudart.Error(resp.Err).AsError()
}

// Capability implements cudart.Runtime, returning the compute capability
// received during initialization.
func (c *Client) Capability() (major, minor uint32) { return c.capMajor, c.capMinor }

// Close implements cudart.Runtime: it sends the finalization message (the
// daemon quits servicing this execution and releases its resources) and
// closes the transport.
func (c *Client) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	req := &protocol.FinalizeRequest{}
	sendErr := c.conn.Send(req)
	if sendErr == nil {
		c.observe(protocol.OpFinalize, req.WireSize(), 0)
	}
	closeErr := c.conn.Close()
	if sendErr != nil {
		return sendErr
	}
	return closeErr
}
