package rcuda

import (
	"context"
	"sync"
	"testing"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/gpu"
	"rcuda/internal/netsim"
	"rcuda/internal/protocol"
	"rcuda/internal/transport"
	"rcuda/internal/vclock"
)

// probeStats opens a probe-only connection to srv over a fresh pipe, runs
// one query, and closes.
func probeStats(t *testing.T, srv *Server, clk vclock.Clock) *protocol.StatsReply {
	t.Helper()
	cliEnd, srvEnd := transport.Pipe(netsim.IB40G(), clk, nil)
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(srvEnd) }()
	if err := cliEnd.Send(&protocol.StatsQueryRequest{}); err != nil {
		t.Fatal(err)
	}
	payload, err := cliEnd.Recv()
	if err != nil {
		t.Fatal(err)
	}
	reply, err := protocol.DecodeStatsReply(payload)
	if err != nil {
		t.Fatal(err)
	}
	_ = cliEnd.Close()
	if err := <-done; err != nil {
		t.Fatalf("stats conn: %v", err)
	}
	return reply
}

// TestStatsProbeReportsLiveLoad drives a session through allocations and a
// kernel and checks a probe connection sees the load: attached session,
// per-device context counts, memory in use, and accumulated busy time.
func TestStatsProbeReportsLiveLoad(t *testing.T) {
	clk := vclock.NewSim()
	devs := []*gpu.Device{
		gpu.New(gpu.Config{Clock: clk}),
		gpu.New(gpu.Config{Clock: clk}),
	}
	srv := NewServer(devs[0], WithDevices(devs[1]))

	empty := probeStats(t, srv, clk)
	if empty.SessionsLive != 0 || len(empty.Devices) != 2 {
		t.Fatalf("idle reply = %+v", empty)
	}
	for i, d := range empty.Devices {
		if d.BytesInUse != 0 || d.Sessions != 0 || d.BusyNanos != 0 {
			t.Fatalf("idle device %d = %+v", i, d)
		}
	}

	cliEnd, srvEnd := transport.Pipe(netsim.IB40G(), clk, nil)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := srv.ServeConn(srvEnd); err != nil {
			t.Errorf("server: %v", err)
		}
	}()
	client, err := Open(cliEnd, moduleImage(t, calib.MM))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Malloc(1 << 20); err != nil {
		t.Fatal(err)
	}
	if err := client.SetDevice(1); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Malloc(1 << 10); err != nil {
		t.Fatal(err)
	}

	loaded := probeStats(t, srv, clk)
	if loaded.SessionsLive != 1 {
		t.Fatalf("SessionsLive = %d, want 1", loaded.SessionsLive)
	}
	if loaded.Devices[0].Sessions != 1 || loaded.Devices[1].Sessions != 1 {
		t.Fatalf("device sessions = %d,%d, want 1,1",
			loaded.Devices[0].Sessions, loaded.Devices[1].Sessions)
	}
	if loaded.Devices[0].BytesInUse < 1<<20 || loaded.Devices[1].BytesInUse < 1<<10 {
		t.Fatalf("bytes in use = %d,%d", loaded.Devices[0].BytesInUse, loaded.Devices[1].BytesInUse)
	}
	if loaded.Devices[0].BusyNanos == 0 {
		t.Fatal("device 0 served a malloc but reports zero busy time")
	}

	// The in-session query sees the same numbers through the client API.
	inSession, err := client.QueryStats()
	if err != nil {
		t.Fatal(err)
	}
	if inSession.SessionsLive != 1 || inSession.Devices[0].BytesInUse != loaded.Devices[0].BytesInUse {
		t.Fatalf("in-session reply %+v disagrees with probe %+v", inSession, loaded)
	}

	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	drained := probeStats(t, srv, clk)
	if drained.SessionsLive != 0 || drained.Devices[0].Sessions != 0 || drained.Devices[1].Sessions != 0 {
		t.Fatalf("post-close reply = %+v, want all session gauges zero", drained)
	}
	if drained.Devices[0].BytesInUse != 0 {
		t.Fatalf("post-close bytes in use = %d", drained.Devices[0].BytesInUse)
	}
	if srv.Stats().StatsQueries < 3 {
		t.Fatalf("StatsQueries = %d, want >= 3", srv.Stats().StatsQueries)
	}
	_ = srv.Close()
}

// TestStatsProbePersistentConnection keeps one probe connection open across
// several queries, the way the broker's prober does.
func TestStatsProbePersistentConnection(t *testing.T) {
	clk := vclock.NewSim()
	srv := NewServer(gpu.New(gpu.Config{Clock: clk}))
	cliEnd, srvEnd := transport.Pipe(netsim.IB40G(), clk, nil)
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(srvEnd) }()
	for i := 0; i < 5; i++ {
		if err := cliEnd.Send(&protocol.StatsQueryRequest{}); err != nil {
			t.Fatal(err)
		}
		payload, err := cliEnd.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := protocol.DecodeStatsReply(payload); err != nil {
			t.Fatal(err)
		}
	}
	_ = cliEnd.Close()
	if err := <-done; err != nil {
		t.Fatalf("stats conn: %v", err)
	}
	if got := srv.Stats().StatsQueries; got != 5 {
		t.Fatalf("StatsQueries = %d, want 5", got)
	}
	_ = srv.Close()
}

// TestStatsProbeServedPastConnCap checks monitoring keeps working on a
// server whose connection cap is exhausted: the probe is answered where a
// session handshake would be refused busy.
func TestStatsProbeServedPastConnCap(t *testing.T) {
	clk := vclock.NewSim()
	srv := NewServer(gpu.New(gpu.Config{Clock: clk}), WithMaxConns(1))

	// Occupy the single conn slot with a real session.
	cliEnd, srvEnd := transport.Pipe(netsim.IB40G(), clk, nil)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.ServeConn(srvEnd)
	}()
	client, err := Open(cliEnd, moduleImage(t, calib.MM))
	if err != nil {
		t.Fatal(err)
	}

	reply := probeStats(t, srv, clk)
	if reply.SessionsLive != 1 {
		t.Fatalf("over-cap probe: SessionsLive = %d, want 1", reply.SessionsLive)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	_ = srv.Close()
}

// TestStatsSnapshotRacesDrain hammers StatsSnapshot and wire probes while
// sessions churn and the server drains: no deadlock, and no gauge may ever
// go negative or wrap. Run under -race (make verify includes this package).
func TestStatsSnapshotRacesDrain(t *testing.T) {
	clk := vclock.NewWall()
	devs := []*gpu.Device{
		gpu.New(gpu.Config{Clock: clk}),
		gpu.New(gpu.Config{Clock: clk}),
	}
	srv := NewServer(devs[0], WithDevices(devs[1]), WithSessionSpread())
	img := moduleImage(t, calib.MM)

	const clients = 6
	var sessions sync.WaitGroup
	for i := 0; i < clients; i++ {
		cliEnd, srvEnd := transport.Pipe(netsim.IB40G(), clk, nil)
		sessions.Add(2)
		go func() {
			defer sessions.Done()
			_ = srv.ServeConn(srvEnd)
			// Mirror Serve's accept loop: the transport dies with the
			// handler, so a client mid-handshake unblocks even when
			// ServeConn refused the connection outright.
			_ = srvEnd.Close()
		}()
		go func() {
			defer sessions.Done()
			client, err := Open(cliEnd, img)
			if err != nil {
				return // the drain may refuse late openers; that's the point
			}
			for j := 0; j < 50; j++ {
				ptr, err := client.Malloc(4 << 10)
				if err != nil {
					break
				}
				if err := client.Free(ptr); err != nil {
					break
				}
			}
			_ = client.Close()
		}()
	}

	checkReply := func(r *protocol.StatsReply) {
		if r.SessionsLive > clients {
			t.Errorf("SessionsLive = %d, beyond the %d clients (negative gauge wrapped?)", r.SessionsLive, clients)
		}
		for i, d := range r.Devices {
			if d.Sessions > clients {
				t.Errorf("device %d sessions = %d, beyond the %d clients", i, d.Sessions, clients)
			}
		}
	}
	stop := make(chan struct{})
	var observers sync.WaitGroup
	observers.Add(1)
	go func() {
		defer observers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := srv.StatsSnapshot()
			if snap.SessionsParkedNow < 0 {
				t.Errorf("SessionsParkedNow = %d", snap.SessionsParkedNow)
			}
			for i, du := range snap.Devices {
				if du.Sessions < 0 || du.Busy < 0 {
					t.Errorf("device %d gauges went negative: %+v", i, du)
				}
			}
			checkReply(srv.statsReply())
		}
	}()

	// Let the churn overlap the drain, then shut down with a bounded grace.
	time.Sleep(5 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	if err := srv.Drain(ctx); err != nil && ctx.Err() == nil {
		t.Errorf("drain: %v", err)
	}
	cancel()
	sessions.Wait()
	close(stop)
	observers.Wait()

	final := srv.statsReply()
	if final.SessionsLive != 0 {
		t.Fatalf("post-drain SessionsLive = %d", final.SessionsLive)
	}
	for i, d := range final.Devices {
		if d.Sessions != 0 {
			t.Fatalf("post-drain device %d sessions = %d", i, d.Sessions)
		}
	}
}
