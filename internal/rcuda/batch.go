package rcuda

import (
	"fmt"

	"rcuda/internal/cudart"
	"rcuda/internal/gpu"
	"rcuda/internal/protocol"
	"rcuda/internal/transport"
)

// This file makes the data path RTT-efficient for small-call-dominated
// workloads — the AI-style traffic of thousands of tiny kernel launches,
// async copies, and event records where the paper's one-round-trip-per-call
// protocol pays almost pure network latency. With WithBatching the client
// coalesces consecutive fire-and-forget calls into one protocol.BatchRequest
// and flushes it on the first sync point: any call that needs an answer
// (StreamSynchronize, EventSynchronize, a memcpy to host, ...), a full
// batch, or Close. The server executes the sub-ops in order and answers
// with one combined response.
//
// Failure semantics follow CUDA's asynchronous model: a batched call
// returns nil immediately, and an error it produces on the server surfaces
// at the next sync point (like a failed cudaLaunch surfacing at
// cudaDeviceSynchronize). Replay safety under retry/reconnect comes from
// the batch sequence number: the server keeps the last executed sequence
// and its result codes per session, and answers a re-sent batch from them
// without executing anything twice.

// Batching defaults: a flush every DefaultBatchOps coalesced calls or once
// DefaultBatchBytes of encoded sub-ops are pending, whichever comes first.
// The ops cap keeps a single frame's combined response proportional in
// size; the byte cap keeps batching from turning many small sends into one
// bandwidth-bound jumbo frame — on GigaE-class links a frame past the
// small-message regime (~21 KB) pays a TCP-window excess of milliseconds,
// far more than the round trips batching saves, so the default stays
// comfortably below it.
const (
	DefaultBatchOps   = 64
	DefaultBatchBytes = 16 << 10
)

// WithBatching coalesces consecutive fire-and-forget operations (kernel
// launches, async host-to-device copies, event records, memsets) into
// single wire frames, and enables the client-side cache of immutable
// replies (device count and properties). maxOps <= 0 selects
// DefaultBatchOps and maxBytes <= 0 selects DefaultBatchBytes; maxOps is
// clamped to protocol.MaxBatchOps.
func WithBatching(maxOps, maxBytes int) ClientOption {
	return func(c *Client) {
		if maxOps <= 0 {
			maxOps = DefaultBatchOps
		}
		if maxOps > protocol.MaxBatchOps {
			maxOps = protocol.MaxBatchOps
		}
		if maxBytes <= 0 {
			maxBytes = DefaultBatchBytes
		}
		c.batching = true
		c.caching = true
		c.batchMaxOps = maxOps
		c.batchMaxBytes = maxBytes
	}
}

// enqueue coalesces one fire-and-forget request into the pending batch,
// flushing when a threshold is reached. The request is encoded immediately,
// so the caller's buffers (an async copy's source) are free to reuse on
// return, exactly as with an unbatched send.
func (c *Client) enqueue(req protocol.Request) error {
	if c.closed.Load() {
		return cudart.ErrorInitialization
	}
	if c.lost {
		return fmt.Errorf("rcuda: %v: %w", req.Op(), ErrSessionLost)
	}
	raw := req.Encode(nil)
	c.pendSubs = append(c.pendSubs, raw)
	c.pendBytes += 4 + len(raw)
	c.cstats.opsCoalesced.Add(1)
	c.observe(req.Op(), req.WireSize(), 0)
	if len(c.pendSubs) >= c.batchMaxOps || c.pendBytes >= c.batchMaxBytes {
		return c.flushBatch()
	}
	return nil
}

// flushBatch sends the pending sub-ops as one OpBatch exchange under the
// retry policy. The pending queue empties whether or not the exchange
// succeeds — a batch is never re-coalesced — and a sub-op failure reported
// by the server parks in deferredErr for the next sync point.
func (c *Client) flushBatch() error {
	if len(c.pendSubs) == 0 {
		return nil
	}
	// The sequence is fixed before the first attempt so a retry re-sends
	// the identical frame and the server's dedup can recognize it.
	c.batchSeq++
	req := &protocol.BatchRequest{Seq: c.batchSeq, Subs: c.pendSubs}
	n := len(c.pendSubs)
	c.pendSubs = nil
	c.pendBytes = 0
	var payload []byte
	err := c.runRetry(protocol.OpBatch, func() error {
		if err := c.conn.Send(req); err != nil {
			return fmt.Errorf("rcuda: batch send: %w", err)
		}
		p, err := c.conn.Recv()
		if err != nil {
			return fmt.Errorf("rcuda: batch recv: %w", err)
		}
		payload = p
		return nil
	})
	if err != nil {
		return err
	}
	c.cstats.batchesFlushed.Add(1)
	c.observe(protocol.OpBatch, req.WireSize(), len(payload))
	resp, err := protocol.DecodeBatchResponse(payload)
	if err != nil {
		return err
	}
	if len(resp.Codes) != n {
		return fmt.Errorf("rcuda: batch response carries %d codes for %d sub-ops", len(resp.Codes), n)
	}
	if batchErr := cudart.Error(resp.Err).AsError(); batchErr != nil && c.deferredErr == nil {
		c.deferredErr = batchErr
	}
	return nil
}

// syncPoint runs before every synchronous exchange: it flushes pending
// batched work so the wire keeps the program's call order, then surfaces
// the oldest deferred batch error, consuming it — CUDA's sticky-async-error
// model, where a failed launch reports at the next synchronizing call.
func (c *Client) syncPoint() error {
	if !c.batching {
		return nil
	}
	if err := c.flushBatch(); err != nil {
		return err
	}
	if err := c.deferredErr; err != nil {
		c.deferredErr = nil
		return err
	}
	return nil
}

// --- Server side --------------------------------------------------------------

// dispatchBatch executes one coalesced frame. A frame whose sequence
// matches the last executed one is a client retry of an exchange whose
// response was lost; it is answered from the remembered codes without
// executing anything, keeping replayed batches exactly-once on the device.
func (s *Server) dispatchBatch(conn transport.Conn, sess *session, r *protocol.BatchRequest) error {
	if sess.lastBatchCodes != nil && r.Seq == sess.lastBatchSeq {
		s.counters.batchReplays.Add(1)
		return conn.Send(&protocol.BatchResponse{
			Err:   firstNonzero(sess.lastBatchCodes),
			Codes: sess.lastBatchCodes,
		})
	}
	subs, err := r.Requests()
	if err != nil {
		return fmt.Errorf("rcuda: batch: %w", err)
	}
	codes := make([]uint32, len(subs))
	for i, sub := range subs {
		ctx := sess.context()
		var opErr error
		switch q := sub.(type) {
		case *protocol.LaunchRequest:
			grid := gpu.Dim3{X: q.GridDim[0], Y: q.GridDim[1], Z: 1}
			block := gpu.Dim3{X: q.BlockDim[0], Y: q.BlockDim[1], Z: q.BlockDim[2]}
			opErr = ctx.LaunchAsync(q.Name, grid, block, q.SharedSize, q.Params, q.Stream)
		case *protocol.MemcpyToDeviceAsyncRequest:
			opErr = ctx.CopyToDeviceAsync(q.Dst, q.Data, q.Stream)
		case *protocol.EventRecordRequest:
			opErr = ctx.EventRecord(q.Event, q.Stream)
		case *protocol.MemsetRequest:
			opErr = ctx.Memset(q.DevPtr, byte(q.Value), q.Size)
		default:
			// The decoder admits only batchable sub-ops; reaching here means
			// the protocol and this dispatcher disagree on that set.
			return fmt.Errorf("rcuda: unbatchable sub-op %v in batch", sub.Op())
		}
		codes[i] = code(opErr)
	}
	sess.lastBatchSeq = r.Seq
	sess.lastBatchCodes = codes
	s.counters.batchFrames.Add(1)
	s.counters.batchedOps.Add(int64(len(subs)))
	return conn.Send(&protocol.BatchResponse{Err: firstNonzero(codes), Codes: codes})
}

// firstNonzero returns the first failing sub-op code, or zero.
func firstNonzero(codes []uint32) uint32 {
	for _, c := range codes {
		if c != 0 {
			return c
		}
	}
	return 0
}
