package rcuda

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/cudart"
	"rcuda/internal/gpu"
	"rcuda/internal/netsim"
	"rcuda/internal/protocol"
	"rcuda/internal/transport"
	"rcuda/internal/vclock"
)

// startChunkedSession is startSimSession with chunked transfers enabled on
// the client.
func startChunkedSession(t *testing.T, link *netsim.Link, threshold, chunkSize int) (*Client, *gpu.Device, *vclock.Sim, func()) {
	t.Helper()
	clk := vclock.NewSim()
	dev := gpu.New(gpu.Config{Clock: clk})
	srv := NewServer(dev)
	cliEnd, srvEnd := transport.Pipe(link, clk, nil)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := srv.ServeConn(srvEnd); err != nil {
			t.Errorf("server: %v", err)
		}
	}()
	client, err := Open(cliEnd, moduleImage(t, calib.MM), WithChunkedTransfers(threshold, chunkSize))
	if err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		_ = client.Close()
		wg.Wait()
	}
	return client, dev, clk, cleanup
}

func TestChunkedMemcpyRoundTrip(t *testing.T) {
	// Threshold below the transfer size and a chunk size that does not
	// divide it, so the final short chunk is exercised.
	const size = 1<<20 + 12345
	client, _, _, cleanup := startChunkedSession(t, netsim.IB40G(), 1<<16, 1<<18)
	defer cleanup()

	src := make([]byte, size)
	rng := rand.New(rand.NewSource(7))
	rng.Read(src)

	ptr, err := client.Malloc(size)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.MemcpyToDevice(ptr, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, size)
	if err := client.MemcpyToHost(dst, ptr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatal("chunked round trip corrupted the payload")
	}
	// Below the threshold the legacy single-frame path must still work.
	small := src[:1024]
	if err := client.MemcpyToDevice(ptr, small); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(small))
	if err := client.MemcpyToHost(got, ptr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(small, got) {
		t.Fatal("legacy round trip corrupted the payload")
	}
	if err := client.Free(ptr); err != nil {
		t.Fatal(err)
	}
}

// TestChunkedTransferOverlapsNetworkAndPCIe is the tentpole's timing
// regression: on the simulated clock a large chunked host-to-device copy
// must cost close to max(network, PCIe) — within 15% of the pipelined
// lower bound — while the legacy path costs their sum.
func TestChunkedTransferOverlapsNetworkAndPCIe(t *testing.T) {
	const (
		size      = 64 << 20
		chunkSize = 1 << 20
	)
	link := netsim.IB40G()

	// Pipelined lower bound: all chunk frames cross the wire back to back
	// (the network is busy the whole time) and the last chunk's PCIe push
	// happens after its arrival — the transfer cannot beat
	// max(network total, PCIe total) + one chunk of the other stage.
	chunkWire := link.WireTime(int64(chunkSize + 12))
	netTotal := time.Duration(size/chunkSize) * chunkWire
	dev := gpu.New(gpu.Config{Clock: vclock.NewSim()})
	pcieTotal := dev.PCIeTime(size)
	bound := netTotal
	if pcieTotal > bound {
		bound = pcieTotal
	}

	measure := func(chunked bool) time.Duration {
		t.Helper()
		var client *Client
		var clk *vclock.Sim
		var cleanup func()
		if chunked {
			client, _, clk, cleanup = startChunkedSession(t, link, chunkSize, chunkSize)
		} else {
			client, _, clk, cleanup = startSimSession(t, link)
		}
		defer cleanup()
		ptr, err := client.Malloc(size)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, size)
		before := clk.Now()
		if err := client.MemcpyToDevice(ptr, data); err != nil {
			t.Fatal(err)
		}
		if err := client.DeviceSynchronize(); err != nil {
			t.Fatal(err)
		}
		return clk.Now() - before
	}

	chunkedTime := measure(true)
	legacyTime := measure(false)

	// The legacy path strictly serializes the stages: one big frame on the
	// wire, then the full PCIe push.
	legacyBound := link.WireTime(size+20) + pcieTotal
	if legacyTime < legacyBound {
		t.Fatalf("legacy transfer %v beat the serialized bound %v", legacyTime, legacyBound)
	}
	if limit := bound * 115 / 100; chunkedTime > limit {
		t.Fatalf("chunked transfer %v exceeds 115%% of pipelined bound %v (net %v, pcie %v)",
			chunkedTime, bound, netTotal, pcieTotal)
	}
	if chunkedTime >= legacyTime {
		t.Fatalf("chunked transfer %v not faster than legacy %v", chunkedTime, legacyTime)
	}
	t.Logf("64 MiB over 40GI: chunked %v, legacy %v, bound %v (net %v, pcie %v)",
		chunkedTime, legacyTime, bound, netTotal, pcieTotal)
}

// TestChunkedDeviceToHostOverlap checks the mirror direction: the server
// overlaps chunk k's network send with chunk k+1's PCIe read.
func TestChunkedDeviceToHostOverlap(t *testing.T) {
	const (
		size      = 64 << 20
		chunkSize = 1 << 20
	)
	link := netsim.IB40G()
	client, dev, clk, cleanup := startChunkedSession(t, link, chunkSize, chunkSize)
	defer cleanup()

	ptr, err := client.Malloc(size)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, size)
	before := clk.Now()
	if err := client.MemcpyToHost(dst, ptr); err != nil {
		t.Fatal(err)
	}
	elapsed := clk.Now() - before

	chunkWire := link.WireTime(int64(chunkSize + 12))
	netTotal := time.Duration(size/chunkSize) * chunkWire
	pcieTotal := dev.PCIeTime(size)
	bound := netTotal
	if pcieTotal > bound {
		bound = pcieTotal
	}
	serialized := netTotal + pcieTotal
	if limit := bound * 115 / 100; elapsed > limit {
		t.Fatalf("chunked D2H %v exceeds 115%% of pipelined bound %v", elapsed, bound)
	}
	if elapsed >= serialized {
		t.Fatalf("chunked D2H %v shows no overlap (serialized %v)", elapsed, serialized)
	}
}

func TestChunkedTransferBadRegionRejectedBeforeData(t *testing.T) {
	client, _, _, cleanup := startChunkedSession(t, netsim.IB40G(), 1<<16, 1<<16)
	defer cleanup()

	ptr, err := client.Malloc(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	// Transfer larger than the allocation: the server must reject it in
	// the Begin acknowledgement, before any chunk moves.
	data := make([]byte, 1<<18)
	err = client.MemcpyToDevice(ptr, data)
	if !errors.Is(err, cudart.ErrorInvalidDevicePointer) {
		t.Fatalf("oversize chunked transfer: got %v, want %v", err, cudart.ErrorInvalidDevicePointer)
	}
	if err := client.MemcpyToHost(data, ptr); !errors.Is(err, cudart.ErrorInvalidDevicePointer) {
		t.Fatalf("oversize chunked read: got %v, want %v", err, cudart.ErrorInvalidDevicePointer)
	}
	// The rejection must leave the session coherent.
	ok := make([]byte, 1<<16)
	if err := client.MemcpyToDevice(ptr, ok); err != nil {
		t.Fatalf("session broken after rejected transfer: %v", err)
	}
	if err := client.Free(ptr); err != nil {
		t.Fatal(err)
	}
}

// TestChunkedObserverSeesOneCall asserts a chunked transfer is observed as
// the single cudaMemcpy it replaces, with the full chunked byte volume.
func TestChunkedObserverSeesOneCall(t *testing.T) {
	const size = 1 << 20
	clk := vclock.NewSim()
	dev := gpu.New(gpu.Config{Clock: clk})
	srv := NewServer(dev)
	cliEnd, srvEnd := transport.Pipe(netsim.IB40G(), clk, nil)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.ServeConn(srvEnd)
	}()
	obs := &recordingObserver{}
	client, err := Open(cliEnd, moduleImage(t, calib.MM),
		WithObserver(obs), WithChunkedTransfers(size, size/4))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = client.Close()
		wg.Wait()
	}()

	ptr, err := client.Malloc(size)
	if err != nil {
		t.Fatal(err)
	}
	obs.calls = nil
	obs.sent, obs.recv = 0, 0
	if err := client.MemcpyToDevice(ptr, make([]byte, size)); err != nil {
		t.Fatal(err)
	}
	if len(obs.calls) != 1 || obs.calls[0] != protocol.OpMemcpyToDevice {
		t.Fatalf("observed calls %v, want one cudaMemcpy (to device)", obs.calls)
	}
	begin := (&protocol.MemcpyStreamBeginRequest{}).WireSize()
	end := (&protocol.MemcpyStreamEndRequest{}).WireSize()
	wantSent := begin + end + 4*(12+size/4)
	if obs.sent != wantSent {
		t.Fatalf("observed %d bytes sent, want %d", obs.sent, wantSent)
	}
	if obs.recv != 8 { // Begin ack + End status
		t.Fatalf("observed %d bytes received, want 8", obs.recv)
	}
}

// TestRuntimeMethodsFailCleanlyAfterClose exercises every Runtime and
// AsyncRuntime method after Close; each must fail with the initialization
// error, per the Client contract.
func TestRuntimeMethodsFailCleanlyAfterClose(t *testing.T) {
	client, _, _, cleanup := startChunkedSession(t, netsim.IB40G(), 1<<10, 1<<10)
	cleanup()

	big := make([]byte, 2048) // above the chunked threshold
	calls := map[string]func() error{
		"Malloc":                 func() error { _, err := client.Malloc(64); return err },
		"Free":                   func() error { return client.Free(4) },
		"MemcpyToDevice":         func() error { return client.MemcpyToDevice(4, []byte{1}) },
		"MemcpyToDevice/chunked": func() error { return client.MemcpyToDevice(4, big) },
		"MemcpyToHost":           func() error { return client.MemcpyToHost(make([]byte, 1), 4) },
		"MemcpyToHost/chunked":   func() error { return client.MemcpyToHost(big, 4) },
		"Launch": func() error {
			return client.Launch("k", cudart.Dim3{X: 1}, cudart.Dim3{X: 1}, 0, nil)
		},
		"DeviceSynchronize":   func() error { return client.DeviceSynchronize() },
		"StreamCreate":        func() error { _, err := client.StreamCreate(); return err },
		"StreamDestroy":       func() error { return client.StreamDestroy(1) },
		"StreamSynchronize":   func() error { return client.StreamSynchronize(1) },
		"StreamQuery":         func() error { return client.StreamQuery(1) },
		"MemcpyToDeviceAsync": func() error { return client.MemcpyToDeviceAsync(4, []byte{1}, 1) },
		"MemcpyToHostAsync":   func() error { return client.MemcpyToHostAsync(make([]byte, 1), 4, 1) },
		"LaunchAsync": func() error {
			return client.LaunchAsync("k", cudart.Dim3{X: 1}, cudart.Dim3{X: 1}, 0, nil, 1)
		},
		"EventCreate":          func() error { _, err := client.EventCreate(); return err },
		"EventRecord":          func() error { return client.EventRecord(1, 0) },
		"EventSynchronize":     func() error { return client.EventSynchronize(1) },
		"EventQuery":           func() error { return client.EventQuery(1) },
		"EventDestroy":         func() error { return client.EventDestroy(1) },
		"EventElapsed":         func() error { _, err := client.EventElapsed(1, 2); return err },
		"DeviceCount":          func() error { _, err := client.DeviceCount(); return err },
		"SetDevice":            func() error { return client.SetDevice(0) },
		"DeviceProperties":     func() error { _, err := client.DeviceProperties(); return err },
		"Memset":               func() error { return client.Memset(4, 0, 1) },
		"MemcpyDeviceToDevice": func() error { return client.MemcpyDeviceToDevice(4, 8, 1) },
	}
	for name, call := range calls {
		if err := call(); !errors.Is(err, cudart.ErrorInitialization) {
			t.Errorf("%s after Close: got %v, want %v", name, err, cudart.ErrorInitialization)
		}
	}
	// Capability still answers from the cached handshake, and Close stays
	// idempotent.
	if maj, _ := client.Capability(); maj == 0 {
		t.Error("Capability lost after Close")
	}
	if err := client.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
