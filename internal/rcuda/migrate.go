package rcuda

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"rcuda/internal/cudart"
	"rcuda/internal/gpu"
	"rcuda/internal/protocol"
	"rcuda/internal/sched"
	"rcuda/internal/transport"
)

// This file implements live session migration: the source daemon serializes
// a quiesced durable session — device allocations and contents, stream and
// event timelines, the batch dedup window — into a protocol.Checkpoint and
// streams it straight to the destination daemon over the chunked path (the
// client never relays a byte). On commit the source destroys its copy and
// answers late reattaches with CodeSessionMigrated, so a redirected client
// redials through its (broker-updated) route and resumes with zero replay.
//
// The same dialogue doubles as the standby-checkpoint path: CheckpointTo
// copies a parked session to a peer without destroying it, and a periodic
// loop (WithStandbyPeer) refreshes peers so a pool can fail a dead daemon's
// sessions over by reattach instead of replay.

// ErrSessionMigrated reports that a reattach was redirected: the session
// was live-migrated to another daemon. Unlike ErrSessionEvicted nothing is
// lost — the client's next redial through an updated route reattaches at
// the session's new home — so this never latches ErrSessionLost.
var ErrSessionMigrated = errors.New("rcuda: session migrated")

// WithSessionIDBase starts durable session ids above base, so daemons that
// may exchange sessions by migration can carve out disjoint id ranges and
// a restored id can never collide with a locally minted one.
func WithSessionIDBase(base uint64) ServerOption {
	return func(s *Server) { s.nextSession = base }
}

// WithMigrateChunkSize overrides the chunk size of outbound migration
// streams; the default is protocol.DefaultChunkSize. Small values are for
// tests that want many chunk frames on the wire.
func WithMigrateChunkSize(n uint32) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.migrateChunk = n
		}
	}
}

// WithStandbyPeer starts a background loop that, every interval, streams a
// checkpoint of each parked durable session to the peer dialed by dial —
// but only sessions whose state changed since their last copy (a session
// is only mutated while attached, and parking stamps parkedAt). If this
// daemon then dies, a pool's route failover finds the sessions restored on
// the peer and clients reattach instead of replaying. A session that
// reattached here after its last copy has a stale standby until the next
// sweep refreshes it; the restored copy's batch window still deduplicates,
// and the interval bounds the staleness window.
func WithStandbyPeer(dial func() (transport.Conn, error), interval time.Duration) ServerOption {
	return func(s *Server) {
		if dial != nil && interval > 0 {
			s.standbyDial = dial
			s.standbyEvery = interval
		}
	}
}

// DurableSessions returns the ids of every live durable session (attached
// or parked), sorted — the set a drain-by-migration must relocate before
// its daemon can retire.
func (s *Server) DurableSessions() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]uint64, 0, len(s.registry))
	for id, sess := range s.registry {
		if !sess.destroyed {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// CheckpointSession serializes a parked durable session into a checkpoint
// without disturbing it. The session must be parked: an attached session
// is being mutated by its client and has no consistent instant to capture.
func (s *Server) CheckpointSession(id uint64) (*protocol.Checkpoint, error) {
	sess, err := s.claimParked(id)
	if err != nil {
		return nil, err
	}
	ckpt, err := s.buildCheckpoint(sess)
	s.mu.Lock()
	sess.migrating = false
	s.mu.Unlock()
	return ckpt, err
}

// MigrateSession moves session id to the daemon reached by dial: quiesce
// (force-parking a still-attached session by closing its connection),
// checkpoint, stream, commit. On success the local session is destroyed
// and its id tombstoned so late reattaches get CodeSessionMigrated; any
// failure leaves the session parked and reattachable right here. It
// returns the checkpoint bytes streamed.
func (s *Server) MigrateSession(id uint64, dial func() (transport.Conn, error)) (int64, error) {
	sess, err := s.quiesceForMigration(id)
	if err != nil {
		s.counters.migrationFailures.Add(1)
		return 0, err
	}
	n, err := s.streamSession(sess, dial)
	if err != nil {
		s.mu.Lock()
		sess.migrating = false
		s.mu.Unlock()
		s.counters.migrationFailures.Add(1)
		return 0, err
	}
	s.mu.Lock()
	delete(s.registry, id)
	if s.migrated == nil {
		s.migrated = make(map[uint64]struct{})
	}
	s.migrated[id] = struct{}{}
	s.mu.Unlock()
	s.destroySession(sess)
	s.counters.migrations.Add(1)
	s.counters.migrationBytes.Add(n)
	s.logf("rcuda: migrated session %d (%d bytes)", id, n)
	return n, nil
}

// CheckpointTo streams a copy of a parked session to a peer without
// destroying the local one — the standby-checkpoint primitive. The session
// is held parked (reattaches see busy) only for the duration of the copy.
func (s *Server) CheckpointTo(id uint64, dial func() (transport.Conn, error)) (int64, error) {
	sess, err := s.claimParked(id)
	if err != nil {
		s.counters.migrationFailures.Add(1)
		return 0, err
	}
	n, err := s.streamSession(sess, dial)
	s.mu.Lock()
	sess.migrating = false
	s.mu.Unlock()
	if err != nil {
		s.counters.migrationFailures.Add(1)
		return 0, err
	}
	s.counters.migrationBytes.Add(n)
	return n, nil
}

// claimParked marks a parked, unclaimed durable session as migrating so no
// reattach can splice onto it mid-capture.
func (s *Server) claimParked(id uint64) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, known := s.registry[id]
	switch {
	case !known || sess.destroyed:
		if _, gone := s.migrated[id]; gone {
			return nil, fmt.Errorf("rcuda: session %d already migrated: %w", id, ErrSessionMigrated)
		}
		return nil, fmt.Errorf("rcuda: unknown session %d", id)
	case sess.migrating:
		return nil, fmt.Errorf("rcuda: session %d already migrating: %w", id, ErrServerBusy)
	case sess.attached:
		return nil, fmt.Errorf("rcuda: session %d is attached: %w", id, ErrServerBusy)
	}
	sess.migrating = true
	return sess, nil
}

// quiesceForMigration claims session id for migration, force-parking a
// still-attached session: the migrating mark blocks reattach claims, the
// session's connection is closed, and the claim completes when the handler
// observes the dead transport and parks through the normal path — so the
// parked state is exactly what a crash would have left, already proven
// consistent by the reattach machinery.
func (s *Server) quiesceForMigration(id uint64) (*session, error) {
	timer := time.NewTimer(reattachWait)
	defer timer.Stop()
	claimed := false
	for {
		s.mu.Lock()
		sess, known := s.registry[id]
		if !known || sess.destroyed {
			_, gone := s.migrated[id]
			s.mu.Unlock()
			if gone {
				return nil, fmt.Errorf("rcuda: session %d already migrated: %w", id, ErrSessionMigrated)
			}
			return nil, fmt.Errorf("rcuda: unknown session %d", id)
		}
		if sess.migrating && !claimed {
			s.mu.Unlock()
			return nil, fmt.Errorf("rcuda: session %d already migrating: %w", id, ErrServerBusy)
		}
		sess.migrating = true
		claimed = true
		if !sess.attached {
			s.mu.Unlock()
			return sess, nil
		}
		conn := sess.conn
		parked := sess.parkCh
		s.mu.Unlock()
		if conn != nil {
			_ = conn.Close()
		}
		abort := func(err error) (*session, error) {
			s.mu.Lock()
			sess.migrating = false
			s.mu.Unlock()
			return nil, err
		}
		select {
		case <-parked:
			// Re-check under the lock; the next iteration claims it parked.
		case <-timer.C:
			return abort(fmt.Errorf("rcuda: quiesce of session %d timed out: %w", id, ErrServerBusy))
		case <-s.doneCh:
			return abort(errors.New("rcuda: server shutting down"))
		}
	}
}

// buildCheckpoint serializes a claimed session. The caller holds the
// migrating claim, so no handler goroutine is mutating the session.
func (s *Server) buildCheckpoint(sess *session) (*protocol.Checkpoint, error) {
	c := &protocol.Checkpoint{
		Session:      sess.id,
		Module:       sess.module.Name,
		CurDevice:    uint32(sess.cur),
		SchedClass:   classToWire(sess.schedClass),
		SchedWeight:  sess.schedWeight,
		LastBatchSeq: sess.lastBatchSeq,
	}
	if sess.lastBatchCodes != nil {
		c.LastBatchCodes = append([]uint32(nil), sess.lastBatchCodes...)
	}
	devs := make([]int, 0, len(sess.ctxs))
	for d := range sess.ctxs {
		devs = append(devs, d)
	}
	sort.Ints(devs)
	for _, d := range devs {
		st, err := sess.ctxs[d].ExportState()
		if err != nil {
			return nil, fmt.Errorf("rcuda: checkpoint session %d device %d: %w", sess.id, d, err)
		}
		dc := protocol.DeviceCheckpoint{
			Device: uint32(d),
			Timeline: protocol.TimelineCheckpoint{
				EngineDone: [2]uint64{uint64(st.Timeline.EngineDone[0]), uint64(st.Timeline.EngineDone[1])},
				NextStream: st.Timeline.NextStream,
				NextEvent:  st.Timeline.NextEvent,
			},
		}
		for _, al := range st.Allocs {
			dc.Allocs = append(dc.Allocs, protocol.AllocCheckpoint{Addr: al.Addr, Size: al.Size, Data: al.Data})
		}
		for _, m := range st.Timeline.Streams {
			dc.Timeline.Streams = append(dc.Timeline.Streams, protocol.TimelineEntry{ID: m.ID, Done: uint64(m.Done)})
		}
		for _, m := range st.Timeline.Events {
			dc.Timeline.Events = append(dc.Timeline.Events, protocol.TimelineEntry{ID: m.ID, Done: uint64(m.Done)})
		}
		c.Devices = append(c.Devices, dc)
	}
	return c, nil
}

// streamSession runs the source half of the daemon-to-daemon dialogue:
// SessionRestore handshake, MigrateBegin, unacknowledged chunks, and a
// MigrateCommit carrying the chunk count and digest the destination
// verifies before accepting the session.
func (s *Server) streamSession(sess *session, dial func() (transport.Conn, error)) (int64, error) {
	ckpt, err := s.buildCheckpoint(sess)
	if err != nil {
		return 0, err
	}
	payload := ckpt.Encode(nil)
	chunkSize := s.migrateChunk
	if chunkSize == 0 {
		chunkSize = protocol.DefaultChunkSize
	}
	conn, err := dial()
	if err != nil {
		return 0, fmt.Errorf("rcuda: migrate dial: %w", err)
	}
	defer func() { _ = conn.Close() }()

	if err := conn.Send(&protocol.SessionRestoreRequest{Session: sess.id}); err != nil {
		return 0, fmt.Errorf("rcuda: restore send: %w", err)
	}
	raw, err := conn.Recv()
	if err != nil {
		return 0, fmt.Errorf("rcuda: restore recv: %w", err)
	}
	hello, err := protocol.DecodeSessionRestoreResponse(raw)
	if err != nil {
		return 0, err
	}
	if err := refusal("restore", hello.Err); err != nil {
		return 0, err
	}

	total := uint32(len(payload))
	if err := conn.Send(&protocol.MigrateBeginRequest{Total: total, ChunkSize: chunkSize}); err != nil {
		return 0, fmt.Errorf("rcuda: migrate begin send: %w", err)
	}
	if raw, err = conn.Recv(); err != nil {
		return 0, fmt.Errorf("rcuda: migrate begin recv: %w", err)
	}
	ack, err := protocol.DecodeMigrateBeginResponse(raw)
	if err != nil {
		return 0, err
	}
	if err := refusal("migrate begin", ack.Err); err != nil {
		return 0, err
	}

	chunk := &protocol.MigrateChunk{}
	for off, seq := 0, uint32(0); off < len(payload); seq++ {
		end := off + int(chunkSize)
		if end > len(payload) {
			end = len(payload)
		}
		chunk.Seq, chunk.Data = seq, payload[off:end]
		if err := conn.Send(chunk); err != nil {
			return 0, fmt.Errorf("rcuda: migrate chunk %d send: %w", seq, err)
		}
		off = end
	}
	commit := &protocol.MigrateCommitRequest{
		Chunks: protocol.Chunks(total, chunkSize),
		Digest: protocol.MigrateDigest(payload),
	}
	if err := conn.Send(commit); err != nil {
		return 0, fmt.Errorf("rcuda: migrate commit send: %w", err)
	}
	if raw, err = conn.Recv(); err != nil {
		return 0, fmt.Errorf("rcuda: migrate commit recv: %w", err)
	}
	status, err := protocol.DecodeMigrateCommitResponse(raw)
	if err != nil {
		return 0, err
	}
	if err := refusal("migrate commit", status.Err); err != nil {
		return 0, err
	}
	return int64(len(payload)), nil
}

// refusal maps a migration acknowledgement's result code to an error.
func refusal(phase string, errCode uint32) error {
	if errCode == protocol.CodeServerBusy {
		return fmt.Errorf("rcuda: %s refused: %w", phase, ErrServerBusy)
	}
	if err := cudart.Error(errCode).AsError(); err != nil {
		return fmt.Errorf("rcuda: %s rejected: %w", phase, err)
	}
	return nil
}

// serveRestoreConn is the destination half: it admits the inbound session
// under the same caps a fresh init pays, reassembles the checkpoint from
// the chunk stream, verifies count and digest, materializes contexts at
// their original device addresses, and parks the session awaiting the
// redirected client's reattach. Every failure before the final commit
// acknowledgement leaves this daemon exactly as if the migration had never
// been attempted.
func (s *Server) serveRestoreConn(conn transport.Conn, rr *protocol.SessionRestoreRequest, withinConnCap bool) error {
	if !withinConnCap {
		s.counters.rejectedConns.Add(1)
		return s.refuseRestore(conn, rr.Session, ErrServerBusy)
	}
	if err := s.guard.acquireSession(s.doneCh); err != nil {
		s.counters.rejectedSessions.Add(1)
		return s.refuseRestore(conn, rr.Session, err)
	}
	sess := &session{
		srv:        s,
		ctxs:       map[int]*gpu.Context{},
		slotHeld:   s.guard.slots != nil,
		id:         rr.Session,
		durable:    true,
		attached:   true,
		standby:    true,
		parkCh:     make(chan struct{}),
		schedClass: sched.Batch,
	}
	var replaced *session
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.guard.releaseSession()
		return s.refuseRestore(conn, rr.Session, ErrServerBusy)
	}
	if old, exists := s.registry[rr.Session]; exists {
		// Only a parked standby copy — state this daemon materialized and no
		// client ever claimed — may be replaced by a fresher checkpoint. A
		// claimed or live session with the id refuses the restore.
		if !old.standby || old.attached || old.migrating {
			s.mu.Unlock()
			s.guard.releaseSession()
			return s.refuseRestore(conn, rr.Session, ErrServerBusy)
		}
		delete(s.registry, rr.Session)
		replaced = old
	}
	if s.registry == nil {
		s.registry = make(map[uint64]*session)
	}
	s.registry[rr.Session] = sess
	if rr.Session > s.nextSession {
		s.nextSession = rr.Session
	}
	// A session that migrated away can migrate back; the tombstones yield
	// to the live state.
	delete(s.migrated, rr.Session)
	delete(s.evicted, rr.Session)
	s.mu.Unlock()
	if replaced != nil {
		s.destroySession(replaced)
	}
	abort := func() {
		s.mu.Lock()
		delete(s.registry, sess.id)
		s.mu.Unlock()
		s.destroySession(sess)
	}

	if err := conn.Send(&protocol.SessionRestoreResponse{}); err != nil {
		abort()
		return err
	}
	err := s.recvCheckpoint(conn, sess)
	if err != nil {
		abort()
		return err
	}
	s.mu.Lock()
	sess.attached = false
	sess.parkedAt = time.Now()
	close(sess.parkCh)
	s.maybeStartGCLocked()
	s.mu.Unlock()
	s.counters.restoreFromCheckpoint.Add(1)
	s.logf("rcuda: restored session %d from checkpoint", sess.id)
	return conn.Send(&protocol.MigrateCommitResponse{})
}

// refuseRestore answers an inbound restore with the typed busy code.
func (s *Server) refuseRestore(conn transport.Conn, id uint64, why error) error {
	if sendErr := conn.Send(&protocol.SessionRestoreResponse{Err: protocol.CodeServerBusy}); sendErr != nil {
		return sendErr
	}
	return fmt.Errorf("rcuda: restore of session %d refused: %w", id, why)
}

// recvCheckpoint runs the Begin/chunks/Commit receive loop and materializes
// the verified checkpoint into sess. Protocol violations and transport
// faults return an error without sending a commit acknowledgement — the
// source observes the dead connection and keeps its copy.
func (s *Server) recvCheckpoint(conn transport.Conn, sess *session) error {
	raw, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("rcuda: migrate begin recv: %w", err)
	}
	req, err := protocol.DecodeRequest(raw)
	if err != nil {
		return fmt.Errorf("rcuda: malformed migrate message: %w", err)
	}
	begin, ok := req.(*protocol.MigrateBeginRequest)
	if !ok {
		return fmt.Errorf("rcuda: %v before MigrateBegin", req.Op())
	}
	buf := make([]byte, begin.Total)
	asm, err := protocol.NewChunkAssembler(begin.Total, begin.ChunkSize, buf)
	if err != nil {
		// Decoded Begin geometry is pre-validated; reaching here is a bug.
		_ = conn.Send(&protocol.MigrateBeginResponse{Err: uint32(cudart.ErrorInvalidValue)})
		return err
	}
	if err := conn.Send(&protocol.MigrateBeginResponse{}); err != nil {
		return err
	}
	var opErr error
	for {
		if raw, err = conn.Recv(); err != nil {
			return fmt.Errorf("rcuda: migrate chunk recv: %w", err)
		}
		if req, err = protocol.DecodeRequest(raw); err != nil {
			return fmt.Errorf("rcuda: malformed migrate message: %w", err)
		}
		switch r := req.(type) {
		case *protocol.MigrateChunk:
			if _, addErr := asm.Add(r.Stream()); addErr != nil && opErr == nil {
				opErr = addErr // keep draining to the commit frame
			}
		case *protocol.MigrateCommitRequest:
			if opErr == nil {
				opErr = s.commitCheckpoint(sess, asm, buf, r)
			}
			if opErr != nil {
				_ = conn.Send(&protocol.MigrateCommitResponse{Err: uint32(cudart.ErrorInvalidValue)})
				return fmt.Errorf("rcuda: restore of session %d failed: %w", sess.id, opErr)
			}
			return nil
		default:
			return fmt.Errorf("rcuda: %v inside a migration stream", req.Op())
		}
	}
}

// commitCheckpoint verifies the reassembled stream against the commit frame
// and materializes it.
func (s *Server) commitCheckpoint(sess *session, asm *protocol.ChunkAssembler, buf []byte, commit *protocol.MigrateCommitRequest) error {
	if !asm.Complete() {
		return fmt.Errorf("rcuda: commit with incomplete checkpoint stream")
	}
	if got := protocol.MigrateDigest(buf); got != commit.Digest {
		return fmt.Errorf("rcuda: checkpoint digest mismatch: %#x != %#x", got, commit.Digest)
	}
	ckpt, err := protocol.DecodeCheckpoint(buf)
	if err != nil {
		return err
	}
	if ckpt.Session != sess.id {
		return fmt.Errorf("rcuda: checkpoint names session %d, restore handshake said %d", ckpt.Session, sess.id)
	}
	return s.materializeCheckpoint(sess, ckpt)
}

// materializeCheckpoint rebuilds the checkpoint's contexts inside sess.
// Partially created contexts are left on the session; the caller's abort
// path destroys the session, releasing them.
func (s *Server) materializeCheckpoint(sess *session, c *protocol.Checkpoint) error {
	mod, err := gpu.LookupModule(c.Module)
	if err != nil {
		return err
	}
	sess.module = mod
	if int(c.CurDevice) >= len(s.devs) {
		return fmt.Errorf("rcuda: checkpoint selects device %d of %d", c.CurDevice, len(s.devs))
	}
	sess.cur = int(c.CurDevice)
	// The scheduling identity travels with the session: the restored
	// session is not attached yet, so no gauge moves — serveSession's
	// attach accounting picks the class up at reattach time.
	s.applySchedParams(sess, c.SchedClass, c.SchedWeight, false)
	newCtx := func(d int) (*gpu.Context, error) {
		if d >= len(s.devs) {
			return nil, fmt.Errorf("rcuda: checkpoint uses device %d of %d", d, len(s.devs))
		}
		if _, dup := sess.ctxs[d]; dup {
			return nil, fmt.Errorf("rcuda: checkpoint repeats device %d", d)
		}
		ctx := s.devs[d].NewContextPreinitialized()
		if err := ctx.LoadModule(mod); err != nil {
			_ = ctx.Destroy()
			return nil, err
		}
		sess.ctxs[d] = ctx
		s.devSessions[d].Add(1)
		return ctx, nil
	}
	for i := range c.Devices {
		dc := &c.Devices[i]
		ctx, err := newCtx(int(dc.Device))
		if err != nil {
			return err
		}
		st := &gpu.ContextState{
			Timeline: gpu.TimelineState{
				EngineDone: [2]time.Duration{time.Duration(dc.Timeline.EngineDone[0]), time.Duration(dc.Timeline.EngineDone[1])},
				NextStream: dc.Timeline.NextStream,
				NextEvent:  dc.Timeline.NextEvent,
			},
		}
		for _, al := range dc.Allocs {
			st.Allocs = append(st.Allocs, gpu.AllocState{Addr: al.Addr, Size: al.Size, Data: al.Data})
		}
		for _, m := range dc.Timeline.Streams {
			st.Timeline.Streams = append(st.Timeline.Streams, gpu.MarkState{ID: m.ID, Done: time.Duration(m.Done)})
		}
		for _, m := range dc.Timeline.Events {
			st.Timeline.Events = append(st.Timeline.Events, gpu.MarkState{ID: m.ID, Done: time.Duration(m.Done)})
		}
		if err := ctx.RestoreState(st); err != nil {
			return err
		}
	}
	if _, ok := sess.ctxs[sess.cur]; !ok {
		// An empty session checkpoints no device blocks; its current device
		// still needs a live context for the first post-reattach request.
		if _, err := newCtx(sess.cur); err != nil {
			return err
		}
	}
	sess.lastBatchSeq = c.LastBatchSeq
	if c.LastBatchCodes != nil {
		sess.lastBatchCodes = append([]uint32(nil), c.LastBatchCodes...)
	}
	return nil
}

// standbyLoop periodically refreshes the standby peer with checkpoints of
// parked sessions whose state changed since their last copy.
func (s *Server) standbyLoop(interval time.Duration, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.doneCh:
			return
		case <-t.C:
			s.standbySweep()
		}
	}
}

// standbySweep copies every stale parked session to the standby peer. A
// session is stale when its parkedAt differs from the instant of its last
// successful copy — it was reattached and re-parked since, so its state may
// have changed. Sessions a client is using, or that are mid-migration, are
// skipped and caught by a later sweep.
func (s *Server) standbySweep() {
	type cand struct {
		id       uint64
		parkedAt time.Time
	}
	s.mu.Lock()
	if s.standbyCopied == nil {
		s.standbyCopied = make(map[uint64]time.Time)
	}
	for id := range s.standbyCopied {
		if _, live := s.registry[id]; !live {
			delete(s.standbyCopied, id)
		}
	}
	var cands []cand
	for id, sess := range s.registry {
		if !sess.attached && !sess.destroyed && !sess.migrating && !sess.standby &&
			!sess.parkedAt.Equal(s.standbyCopied[id]) {
			cands = append(cands, cand{id, sess.parkedAt})
		}
	}
	s.mu.Unlock()
	sort.Slice(cands, func(i, j int) bool { return cands[i].id < cands[j].id })
	for _, c := range cands {
		if _, err := s.CheckpointTo(c.id, s.standbyDial); err != nil {
			s.logf("rcuda: standby checkpoint of session %d: %v", c.id, err)
			continue
		}
		s.mu.Lock()
		s.standbyCopied[c.id] = c.parkedAt
		s.mu.Unlock()
	}
}

// SessionID returns the durable session id negotiated at Open, or zero for
// a non-durable session. A broker keys migrations by it.
func (c *Client) SessionID() uint64 { return c.sessionID }
