package rcuda

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"rcuda/internal/cudart"
	"rcuda/internal/protocol"
	"rcuda/internal/transport"
)

// ErrSessionLost reports that a connection fault interrupted an operation
// whose effects on the server are unknown, or that the session could not
// be recovered at all. Idempotent calls are retried transparently and only
// surface it after every attempt is exhausted; non-idempotent calls (a
// kernel launch, an allocation) surface it immediately rather than risk
// executing twice, and the caller decides whether to re-issue them — the
// session itself heals on the next call if reconnection is possible.
var ErrSessionLost = errors.New("rcuda: session lost")

// maxBackoff caps the exponential retry backoff.
const maxBackoff = 250 * time.Millisecond

// WithRetry enables transparent retry of idempotent operations after
// connection faults: up to maxAttempts tries with exponential backoff
// (base backoff, doubled per retry, capped, with deterministic ±50%
// jitter). Non-idempotent operations are never retried; they fail with
// ErrSessionLost instead. Pair with WithReconnect to actually survive a
// dead connection — without it, retries can only exhaust.
func WithRetry(maxAttempts int, backoff time.Duration) ClientOption {
	return func(c *Client) {
		if maxAttempts < 1 {
			maxAttempts = 1
		}
		if backoff <= 0 {
			backoff = 200 * time.Microsecond
		}
		c.retryMax = maxAttempts
		c.retryBackoff = backoff
	}
}

// WithReconnect gives the client a way to replace a dead connection: dial
// must return a fresh connection to the same server. Open then negotiates
// a durable session (see protocol.SessionHelloRequest), and after a
// connection fault the client redials and reattaches to it, recovering
// every device handle and allocation.
func WithReconnect(dial func() (transport.Conn, error)) ClientOption {
	return func(c *Client) { c.dial = dial }
}

// isConnFault reports whether err is a connection-level failure — the
// class a retry on a fresh connection can heal — as opposed to a CUDA
// error or protocol violation, which would fail identically on any
// connection.
func isConnFault(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, transport.ErrClosed) ||
		errors.Is(err, transport.ErrInjectedReset) ||
		errors.Is(err, transport.ErrTruncatedFrame) ||
		errors.Is(err, os.ErrDeadlineExceeded) ||
		errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// opIdempotent reports whether re-executing op after a fault of unknown
// outcome is safe. Writes of caller-held bytes to a caller-chosen region
// and pure reads/queries are; anything that creates, destroys, or launches
// is not — a retried launch could run a kernel twice, a retried malloc
// could leak its first allocation.
func opIdempotent(op protocol.Op) bool {
	switch op {
	case protocol.OpMemcpyToDevice,
		protocol.OpMemcpyToHost,
		protocol.OpDeviceSynchronize,
		protocol.OpGetDeviceCount,
		protocol.OpSetDevice,
		protocol.OpGetDeviceProperties,
		protocol.OpMemset,
		protocol.OpStreamQuery,
		protocol.OpEventQuery,
		protocol.OpEventElapsed,
		protocol.OpStreamSynchronize,
		protocol.OpEventSynchronize,
		protocol.OpSessionHello,
		protocol.OpStatsQuery,
		// A batch carries launches and records — individually unsafe to
		// retry — but the server deduplicates by the frame's sequence
		// number and replays the stored result codes, so re-sending the
		// identical frame can never execute anything twice.
		protocol.OpBatch:
		return true
	default:
		return false
	}
}

// backoffSleep sleeps the exponential backoff for the given retry number
// (1-based) with deterministic jitter from the client's seeded generator.
func (c *Client) backoffSleep(retry int) {
	d := c.retryBackoff << (retry - 1)
	if d > maxBackoff || d <= 0 {
		d = maxBackoff
	}
	time.Sleep(time.Duration(float64(d) * (0.5 + c.retryRNG.Float64())))
}

// runRetry executes fn under the client's retry policy. fn performs one
// complete exchange (or one complete chunked transfer) on c.conn; runRetry
// classifies its error, replaces the connection when it died, and re-runs
// fn when the operation is idempotent.
func (c *Client) runRetry(op protocol.Op, fn func() error) error {
	if c.lost {
		return fmt.Errorf("rcuda: %v: %w", op, ErrSessionLost)
	}
	attempts := 1
	if c.retryMax > 1 && opIdempotent(op) {
		attempts = c.retryMax
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.cstats.retries.Add(1)
			c.backoffSleep(attempt)
		}
		if c.connBroken {
			if err := c.reconnect(); err != nil {
				if errors.Is(err, ErrSessionLost) {
					c.lost = true
					return fmt.Errorf("rcuda: %v: %w", op, err)
				}
				lastErr = err
				continue
			}
		}
		err := fn()
		if err == nil {
			if attempt > 0 {
				c.cstats.recovered.Add(1)
			}
			return nil
		}
		if !isConnFault(err) {
			return err
		}
		c.cstats.connFaults.Add(1)
		if c.durable {
			c.connBroken = true
		}
		lastErr = err
	}
	if c.retryMax > 1 {
		if opIdempotent(op) {
			return fmt.Errorf("rcuda: %v failed after %d attempts: %w: %w", op, attempts, ErrSessionLost, lastErr)
		}
		return fmt.Errorf("rcuda: %v interrupted: %w: %w", op, ErrSessionLost, lastErr)
	}
	return lastErr
}

// reconnect replaces a dead connection and reattaches to the durable
// session. Transient failures (redial refused, new connection dying during
// the reattach exchange) return a plain error so the retry loop can try
// again; a server that explicitly refuses the reattach — the session is
// gone — wraps ErrSessionLost, which latches the client as lost.
func (c *Client) reconnect() error {
	if c.dial == nil || !c.durable {
		return fmt.Errorf("rcuda: connection lost with no reconnect policy: %w", ErrSessionLost)
	}
	_ = c.conn.Close()
	conn, err := c.dial()
	if err != nil {
		return fmt.Errorf("rcuda: redial: %w", err)
	}
	if err := conn.Send(&protocol.ReattachRequest{Session: c.sessionID}); err != nil {
		_ = conn.Close()
		return fmt.Errorf("rcuda: reattach send: %w", err)
	}
	payload, err := conn.Recv()
	if err != nil {
		_ = conn.Close()
		return fmt.Errorf("rcuda: reattach recv: %w", err)
	}
	resp, err := protocol.DecodeReattachResponse(payload)
	if err != nil {
		_ = conn.Close()
		return fmt.Errorf("rcuda: reattach decode: %w", err)
	}
	switch {
	case resp.Err == protocol.CodeServerBusy:
		// Transient: the server is over its connection cap or the old
		// handler has not parked the session yet. Back off and redial —
		// the session still exists, so this must NOT latch ErrSessionLost.
		_ = conn.Close()
		return fmt.Errorf("rcuda: reattach refused: %w", ErrServerBusy)
	case resp.Err == protocol.CodeSessionMigrated:
		// Redirect: the session was live-migrated and the broker has
		// re-pointed this client's route, so the next redial lands on its
		// new home with every allocation intact. Nothing is lost and
		// nothing replays, so this must NOT latch ErrSessionLost.
		_ = conn.Close()
		c.cstats.migrations.Add(1)
		return fmt.Errorf("rcuda: reattach redirected: %w", ErrSessionMigrated)
	case resp.Err == protocol.CodeSessionEvicted:
		// Permanent: the parked-session GC reclaimed the session.
		_ = conn.Close()
		return fmt.Errorf("rcuda: reattach refused: %w: %w", ErrSessionEvicted, ErrSessionLost)
	default:
		if refuse := cudart.Error(resp.Err).AsError(); refuse != nil {
			_ = conn.Close()
			return fmt.Errorf("rcuda: server refused reattach (%v): %w", refuse, ErrSessionLost)
		}
	}
	c.conn = conn
	c.capMajor, c.capMinor = resp.CapabilityMajor, resp.CapabilityMinor
	c.connBroken = false
	// The immutable-reply cache is only trusted for the connection that
	// filled it; a replacement connection may lead anywhere.
	c.invalidateCache()
	c.cstats.reconnects.Add(1)
	return nil
}
