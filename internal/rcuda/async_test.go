package rcuda

import (
	"errors"
	"testing"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/cudart"
	"rcuda/internal/fft"
	"rcuda/internal/gpu"
	"rcuda/internal/kernels"
	"rcuda/internal/netsim"
	"rcuda/internal/transport"
	"rcuda/internal/vclock"
)

// The client must satisfy the extended runtime interface.
var _ cudart.AsyncRuntime = (*Client)(nil)

func TestRemoteStreamsAndEvents(t *testing.T) {
	client, _, _, cleanup := startSimSession(t, netsim.IB40G())
	defer cleanup()

	s, err := client.StreamCreate()
	if err != nil {
		t.Fatal(err)
	}
	if s == 0 {
		t.Fatal("stream handle must be non-zero")
	}
	start, err := client.EventCreate()
	if err != nil {
		t.Fatal(err)
	}
	end, err := client.EventCreate()
	if err != nil {
		t.Fatal(err)
	}

	// A tiny async GEMM pipeline on the remote GPU.
	const m = 16
	nbytes := uint32(4 * m * m)
	aPtr, _ := client.Malloc(nbytes)
	bPtr, _ := client.Malloc(nbytes)
	cPtr, _ := client.Malloc(nbytes)
	a := make([]float32, m*m)
	b := make([]float32, m*m)
	for i := range a {
		a[i], b[i] = 1, 2
	}
	if err := client.EventRecord(start, s); err != nil {
		t.Fatal(err)
	}
	if err := client.MemcpyToDeviceAsync(aPtr, cudart.Float32Bytes(a), s); err != nil {
		t.Fatal(err)
	}
	if err := client.MemcpyToDeviceAsync(bPtr, cudart.Float32Bytes(b), s); err != nil {
		t.Fatal(err)
	}
	if err := client.LaunchAsync(kernels.SgemmKernel, cudart.Dim3{X: 1}, cudart.Dim3{X: 16}, 0,
		gpu.PackParams(uint32(aPtr), uint32(bPtr), uint32(cPtr), m), s); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, nbytes)
	if err := client.MemcpyToHostAsync(out, cPtr, s); err != nil {
		t.Fatal(err)
	}
	if err := client.EventRecord(end, s); err != nil {
		t.Fatal(err)
	}
	if err := client.StreamSynchronize(s); err != nil {
		t.Fatal(err)
	}
	elapsed, err := client.EventElapsed(start, end)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatalf("elapsed %v must be positive", elapsed)
	}
	// All-ones times all-twos: every C element is 2m.
	for i, v := range cudart.BytesFloat32(out) {
		if v != 2*m {
			t.Fatalf("C[%d] = %g, want %d", i, v, 2*m)
		}
	}
	if err := client.EventDestroy(start); err != nil {
		t.Fatal(err)
	}
	if err := client.EventDestroy(end); err != nil {
		t.Fatal(err)
	}
	if err := client.StreamDestroy(s); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteAsyncErrors(t *testing.T) {
	client, _, _, cleanup := startSimSession(t, netsim.IB40G())
	defer cleanup()

	if err := client.StreamSynchronize(42); !errors.Is(err, cudart.ErrorInvalidValue) {
		t.Fatalf("bad remote stream sync = %v", err)
	}
	if err := client.StreamDestroy(0); !errors.Is(err, cudart.ErrorInvalidValue) {
		t.Fatalf("destroying remote default stream = %v", err)
	}
	if err := client.EventRecord(42, 0); !errors.Is(err, cudart.ErrorInvalidValue) {
		t.Fatalf("bad remote event record = %v", err)
	}
	if _, err := client.EventElapsed(5, 6); !errors.Is(err, cudart.ErrorInvalidValue) {
		t.Fatalf("bad remote elapsed = %v", err)
	}
	if err := client.MemcpyToDeviceAsync(0, []byte{1}, 0); !errors.Is(err, cudart.ErrorInvalidDevicePointer) {
		t.Fatalf("bad remote async memcpy = %v", err)
	}
}

// Double buffering on the server device: with two streams, the PCIe copies
// of one FFT chunk overlap the kernel of the other, so the device-side
// makespan is shorter than the serialized sum.
func TestRemoteDoubleBufferingOverlaps(t *testing.T) {
	const batch = 64 // per chunk
	chunkBytes := uint32(batch * fft.BytesPerTransform)

	run := func(streams bool) time.Duration {
		client, _, clk, cleanup := startSimSessionFFT(t)
		defer cleanup()
		ptrs := []cudart.DevicePtr{}
		for i := 0; i < 2; i++ {
			p, err := client.Malloc(chunkBytes)
			if err != nil {
				t.Fatal(err)
			}
			ptrs = append(ptrs, p)
		}
		data := make([]byte, chunkBytes)
		before := clk.Now()
		if streams {
			s1, _ := client.StreamCreate()
			s2, _ := client.StreamCreate()
			for i, s := range []cudart.Stream{s1, s2} {
				if err := client.MemcpyToDeviceAsync(ptrs[i], data, s); err != nil {
					t.Fatal(err)
				}
				if err := client.LaunchAsync(kernels.FFTKernel, cudart.Dim3{X: batch}, cudart.Dim3{X: 64}, 0,
					gpu.PackParams(uint32(ptrs[i]), batch, 0), s); err != nil {
					t.Fatal(err)
				}
			}
			if err := client.DeviceSynchronize(); err != nil {
				t.Fatal(err)
			}
		} else {
			for i := 0; i < 2; i++ {
				if err := client.MemcpyToDevice(ptrs[i], data); err != nil {
					t.Fatal(err)
				}
				if err := client.Launch(kernels.FFTKernel, cudart.Dim3{X: batch}, cudart.Dim3{X: 64}, 0,
					gpu.PackParams(uint32(ptrs[i]), batch, 0)); err != nil {
					t.Fatal(err)
				}
			}
		}
		return clk.Now() - before
	}

	sync := run(false)
	async := run(true)
	if async >= sync {
		t.Fatalf("double-buffered run (%v) should beat the serialized run (%v)", async, sync)
	}
}

// startSimSessionFFT mirrors startSimSession with the FFT module loaded.
func startSimSessionFFT(t *testing.T) (*Client, *gpu.Device, *vclock.Sim, func()) {
	t.Helper()
	clk := vclock.NewSim()
	dev := gpu.New(gpu.Config{Clock: clk})
	srv := NewServer(dev)
	cliEnd, srvEnd := transport.Pipe(netsim.IB40G(), clk, nil)
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(srvEnd) }()
	client, err := Open(cliEnd, moduleImage(t, calib.FFT))
	if err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		_ = client.Close()
		if err := <-done; err != nil {
			t.Errorf("server: %v", err)
		}
	}
	return client, dev, clk, cleanup
}

func TestRemoteQueries(t *testing.T) {
	client, _, clk, cleanup := startSimSessionFFT(t)
	defer cleanup()

	s, err := client.StreamCreate()
	if err != nil {
		t.Fatal(err)
	}
	e, err := client.EventCreate()
	if err != nil {
		t.Fatal(err)
	}
	if err := client.StreamQuery(s); err != nil {
		t.Fatalf("idle stream query = %v, want nil", err)
	}
	// Queue a kernel and record an event behind it.
	const batch = 64
	ptr, _ := client.Malloc(batch * fft.BytesPerTransform)
	if err := client.MemcpyToDeviceAsync(ptr, make([]byte, batch*fft.BytesPerTransform), s); err != nil {
		t.Fatal(err)
	}
	if err := client.LaunchAsync(kernels.FFTKernel, cudart.Dim3{X: batch}, cudart.Dim3{X: 64}, 0,
		gpu.PackParams(uint32(ptr), batch, 0), s); err != nil {
		t.Fatal(err)
	}
	if err := client.EventRecord(e, s); err != nil {
		t.Fatal(err)
	}
	if err := client.StreamQuery(s); !errors.Is(err, cudart.ErrorNotReady) {
		t.Fatalf("busy stream query = %v, want cudaErrorNotReady", err)
	}
	if err := client.EventQuery(e); !errors.Is(err, cudart.ErrorNotReady) {
		t.Fatalf("pending event query = %v, want cudaErrorNotReady", err)
	}
	// Let virtual time pass the queued work; queries flip to success.
	clk.Sleep(calib.KernelTime(calib.FFT, batch) + calib.PCIeTime(calib.FFT, batch))
	if err := client.StreamQuery(s); err != nil {
		t.Fatalf("drained stream query = %v, want nil", err)
	}
	if err := client.EventQuery(e); err != nil {
		t.Fatalf("fired event query = %v, want nil", err)
	}
	// Bad handles.
	if err := client.StreamQuery(42); !errors.Is(err, cudart.ErrorInvalidValue) {
		t.Fatalf("bad stream query = %v", err)
	}
	if err := client.EventQuery(42); !errors.Is(err, cudart.ErrorInvalidValue) {
		t.Fatalf("bad event query = %v", err)
	}
}
