package rcuda

import (
	"bytes"
	"context"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/cudart"
	"rcuda/internal/gpu"
	"rcuda/internal/transport"
	"rcuda/internal/vclock"
)

// startHardenedServer runs a daemon with the given hardening options on a
// loopback listener, returning the device for occupancy assertions.
func startHardenedServer(t *testing.T, opts ...ServerOption) (*Server, *gpu.Device, string, func()) {
	t.Helper()
	dev := gpu.New(gpu.Config{Clock: vclock.NewWall()})
	srv := NewServer(dev, opts...)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	cleanup := func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
	return srv, dev, ln.Addr().String(), cleanup
}

// openPlain dials addr and opens a non-durable client.
func openPlain(t *testing.T, addr string) (*Client, error) {
	t.Helper()
	conn, err := transport.DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	client, err := Open(conn, moduleImage(t, calib.MM))
	if err != nil {
		_ = conn.Close()
	}
	return client, err
}

// openDurable dials addr and opens a retrying, reconnecting client,
// returning the raw initial connection so tests can kill it abruptly.
func openDurable(t *testing.T, addr string, opts ...ClientOption) (*Client, transport.Conn) {
	t.Helper()
	dial := func() (transport.Conn, error) { return transport.DialTCP(addr) }
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	opts = append([]ClientOption{WithRetry(6, 200*time.Microsecond), WithReconnect(dial)}, opts...)
	client, err := Open(conn, moduleImage(t, calib.MM), opts...)
	if err != nil {
		t.Fatalf("open durable: %v", err)
	}
	return client, conn
}

// waitFor polls cond until it holds or the deadline trips.
func waitFor(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestAdmissionRejectsBeyondMaxSessions checks the session cap: the excess
// handshake gets the typed busy refusal, and a freed slot readmits.
func TestAdmissionRejectsBeyondMaxSessions(t *testing.T) {
	srv, _, addr, cleanup := startHardenedServer(t, WithMaxSessions(1))
	defer cleanup()

	first, err := openPlain(t, addr)
	if err != nil {
		t.Fatalf("first open: %v", err)
	}
	if _, err := openPlain(t, addr); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("second open got %v, want ErrServerBusy", err)
	}
	if st := srv.Stats(); st.RejectedSessions != 1 {
		t.Fatalf("RejectedSessions = %d, want 1", st.RejectedSessions)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	// The finalized session released its slot; admission works again.
	waitFor(t, "slot release", 2*time.Second, func() bool {
		third, err := openPlain(t, addr)
		if err != nil {
			return false
		}
		_ = third.Close()
		return true
	})
}

// TestAdmissionQueueAdmitsWhenSlotFrees checks the bounded FIFO: a
// handshake beyond the cap waits (instead of being rejected) and picks up
// the slot the finishing session frees.
func TestAdmissionQueueAdmitsWhenSlotFrees(t *testing.T) {
	srv, _, addr, cleanup := startHardenedServer(t,
		WithMaxSessions(1), WithAdmissionQueue(1, 5*time.Second))
	defer cleanup()

	first, err := openPlain(t, addr)
	if err != nil {
		t.Fatalf("first open: %v", err)
	}
	opened := make(chan error, 1)
	go func() {
		second, err := openPlain(t, addr)
		if err == nil {
			_ = second.Close()
		}
		opened <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the second handshake queue
	select {
	case err := <-opened:
		t.Fatalf("second open finished while the slot was held: %v", err)
	default:
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-opened:
		if err != nil {
			t.Fatalf("queued open: %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("queued handshake never admitted after the slot freed")
	}
	if st := srv.Stats(); st.RejectedSessions != 0 {
		t.Fatalf("RejectedSessions = %d, want 0 (the wait must not count)", st.RejectedSessions)
	}
}

// TestMaxConnsRejectsImmediately checks the hard connection cap.
func TestMaxConnsRejectsImmediately(t *testing.T) {
	srv, _, addr, cleanup := startHardenedServer(t, WithMaxConns(1))
	defer cleanup()

	first, err := openPlain(t, addr)
	if err != nil {
		t.Fatalf("first open: %v", err)
	}
	if _, err := openPlain(t, addr); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("over-cap open got %v, want ErrServerBusy", err)
	}
	if st := srv.Stats(); st.RejectedConns != 1 {
		t.Fatalf("RejectedConns = %d, want 1", st.RejectedConns)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "conn slot release", 2*time.Second, func() bool {
		c, err := openPlain(t, addr)
		if err != nil {
			return false
		}
		_ = c.Close()
		return true
	})
}

// TestSessionMemoryQuotaEdges exercises the quota boundary: an allocation
// landing exactly at the limit succeeds, one byte more is denied with
// cudaErrorMemoryAllocation, and freeing restores headroom.
func TestSessionMemoryQuotaEdges(t *testing.T) {
	const limit = 4096 // a multiple of the 256-byte allocator granularity
	srv, _, addr, cleanup := startHardenedServer(t, WithSessionMemoryLimit(limit))
	defer cleanup()
	client, err := openPlain(t, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	full, err := client.Malloc(limit) // exactly at the limit
	if err != nil {
		t.Fatalf("alloc at exact limit: %v", err)
	}
	if _, err := client.Malloc(1); !errors.Is(err, cudart.ErrorMemoryAllocation) {
		t.Fatalf("alloc beyond limit got %v, want ErrorMemoryAllocation", err)
	}
	if st := srv.Stats(); st.QuotaDenials != 1 {
		t.Fatalf("QuotaDenials = %d, want 1", st.QuotaDenials)
	}
	// Free-then-realloc: the accounting must observe the free.
	if err := client.Free(full); err != nil {
		t.Fatalf("free: %v", err)
	}
	again, err := client.Malloc(limit)
	if err != nil {
		t.Fatalf("realloc after free: %v", err)
	}
	// The denied malloc must not have corrupted the session: the region is
	// fully usable.
	pattern := bytes.Repeat([]byte{0xa5}, limit)
	if err := client.MemcpyToDevice(again, pattern); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := make([]byte, limit)
	if err := client.MemcpyToHost(out, again); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(out, pattern) {
		t.Fatal("read back diverged after a quota denial")
	}
}

// TestSessionQuotaSpansDevices checks the memory quota is charged across
// every device the session touches, not per context.
func TestSessionQuotaSpansDevices(t *testing.T) {
	clk := vclock.NewWall()
	second := gpu.New(gpu.Config{Clock: clk})
	dev := gpu.New(gpu.Config{Clock: clk})
	srv := NewServer(dev, WithDevices(second), WithSessionMemoryLimit(1024))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	client, err := openPlain(t, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if _, err := client.Malloc(512); err != nil {
		t.Fatalf("alloc on device 0: %v", err)
	}
	if err := client.SetDevice(1); err != nil {
		t.Fatalf("set device: %v", err)
	}
	onSecond, err := client.Malloc(512) // 1024 total: exactly at the limit
	if err != nil {
		t.Fatalf("alloc on device 1: %v", err)
	}
	if _, err := client.Malloc(256); !errors.Is(err, cudart.ErrorMemoryAllocation) {
		t.Fatalf("cross-device alloc beyond limit got %v, want ErrorMemoryAllocation", err)
	}
	if err := client.Free(onSecond); err != nil {
		t.Fatalf("free on device 1: %v", err)
	}
	if _, err := client.Malloc(256); err != nil {
		t.Fatalf("alloc after cross-device free: %v", err)
	}
}

// TestMaxAllocsPerSession checks the allocation-count quota.
func TestMaxAllocsPerSession(t *testing.T) {
	srv, _, addr, cleanup := startHardenedServer(t, WithMaxAllocsPerSession(3))
	defer cleanup()
	client, err := openPlain(t, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ptrs := make([]cudart.DevicePtr, 0, 3)
	for i := 0; i < 3; i++ {
		p, err := client.Malloc(256)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		ptrs = append(ptrs, p)
	}
	if _, err := client.Malloc(256); !errors.Is(err, cudart.ErrorMemoryAllocation) {
		t.Fatalf("4th alloc got %v, want ErrorMemoryAllocation", err)
	}
	if st := srv.Stats(); st.QuotaDenials != 1 {
		t.Fatalf("QuotaDenials = %d, want 1", st.QuotaDenials)
	}
	if err := client.Free(ptrs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Malloc(256); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
}

// TestChunkedStreamBeyondRegionKeepsSessionAlive drives a chunked transfer
// larger than its destination: the stream's Begin is refused up front (the
// quota-bounded allocation is the only region the client holds) and the
// session survives to run in-bounds transfers bit-exactly.
func TestChunkedStreamBeyondRegionKeepsSessionAlive(t *testing.T) {
	_, _, addr, cleanup := startHardenedServer(t, WithSessionMemoryLimit(1024))
	defer cleanup()
	conn, err := transport.DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	client, err := Open(conn, moduleImage(t, calib.MM), WithChunkedTransfers(1024, 512))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	region, err := client.Malloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	// 2048 bytes into a 1024-byte region: crosses the chunk threshold, so
	// it runs the streamed path, whose Begin must be refused.
	err = client.MemcpyToDevice(region, make([]byte, 2048))
	if err == nil {
		t.Fatal("oversized chunked write succeeded")
	}
	if errors.Is(err, ErrSessionLost) {
		t.Fatalf("oversized chunked write killed the session: %v", err)
	}
	pattern := bytes.Repeat([]byte{0x5a}, 1024)
	if err := client.MemcpyToDevice(region, pattern); err != nil {
		t.Fatalf("in-bounds chunked write after refusal: %v", err)
	}
	out := make([]byte, 1024)
	if err := client.MemcpyToHost(out, region); err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(out, pattern) {
		t.Fatal("read back diverged after stream refusal")
	}
}

// TestWatchdogParksStalledSession checks the request deadline: a client
// that goes silent mid-session has its connection killed within the
// deadline, its durable session parked, and its state intact across the
// reattach its next call performs.
func TestWatchdogParksStalledSession(t *testing.T) {
	srv, _, addr, cleanup := startHardenedServer(t, WithRequestDeadline(60*time.Millisecond))
	defer cleanup()
	client, _ := openDurable(t, addr)
	defer client.Close()

	pattern := bytes.Repeat([]byte{0xc3}, 512)
	ptr, err := client.Malloc(512)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.MemcpyToDevice(ptr, pattern); err != nil {
		t.Fatal(err)
	}

	// Go silent past the deadline: the watchdog kills the connection and
	// parks the session.
	waitFor(t, "watchdog kill", 2*time.Second, func() bool {
		return srv.Stats().WatchdogKills >= 1
	})
	if st := srv.Stats(); st.SessionsParked < 1 {
		t.Fatalf("stalled durable session was not parked: %+v", st)
	}

	// The next call reconnects, reattaches, and sees the same bytes.
	out := make([]byte, 512)
	if err := client.MemcpyToHost(out, ptr); err != nil {
		t.Fatalf("read after watchdog kill: %v", err)
	}
	if !bytes.Equal(out, pattern) {
		t.Fatal("device state lost across watchdog park/reattach")
	}
	if st := srv.Stats(); st.Reattaches < 1 {
		t.Fatalf("expected a reattach after the watchdog kill: %+v", st)
	}
}

// TestParkedSessionTTLEvictsAndReclaims checks the garbage collector: an
// abandoned durable session is destroyed after its TTL, its device memory
// fully reclaimed, and a late reattach gets the typed eviction error.
func TestParkedSessionTTLEvictsAndReclaims(t *testing.T) {
	srv, dev, addr, cleanup := startHardenedServer(t, WithParkedSessionTTL(50*time.Millisecond))
	defer cleanup()
	client, rawConn := openDurable(t, addr)

	if _, err := client.Malloc(4096); err != nil {
		t.Fatal(err)
	}
	if dev.MemoryInUse() == 0 {
		t.Fatal("allocation not visible on the device")
	}
	// Abandon: kill the connection without finalizing. The session parks,
	// then the TTL GC destroys it.
	_ = rawConn.Close()
	waitFor(t, "TTL eviction", 3*time.Second, func() bool {
		return srv.Stats().Evictions >= 1
	})
	if got := dev.MemoryInUse(); got != 0 {
		t.Fatalf("evicted session left %d bytes allocated, want 0", got)
	}

	// A reattach attempt after eviction must surface the typed error and
	// latch the session as lost.
	err := client.DeviceSynchronize()
	if !errors.Is(err, ErrSessionEvicted) {
		t.Fatalf("post-eviction call got %v, want ErrSessionEvicted", err)
	}
	if !errors.Is(err, ErrSessionLost) {
		t.Fatalf("eviction must latch ErrSessionLost, got %v", err)
	}
	_ = client.Close()
}

// TestDrainGracefulThenForced checks both drain modes: with no sessions in
// flight Drain returns nil immediately; with a silent client occupying a
// handler it force-closes the connection at the context deadline and still
// settles promptly.
func TestDrainGracefulThenForced(t *testing.T) {
	before := runtime.NumGoroutine()

	// Graceful: the only client finalizes before the drain.
	srv1, _, addr1, _ := startHardenedServer(t)
	c1, err := openPlain(t, addr1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	if err := srv1.Drain(ctx); err != nil {
		t.Fatalf("graceful drain: %v", err)
	}
	cancel()

	// Forced: a client holds its connection open without finalizing.
	srv2, _, addr2, _ := startHardenedServer(t)
	c2, err := openPlain(t, addr2)
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel2()
	start := time.Now()
	err = srv2.Drain(ctx2)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain returned %v, want DeadlineExceeded", err)
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("forced drain took %v, want prompt return after the deadline", took)
	}
	if st := srv2.Stats(); st.ForcedCloses < 1 {
		t.Fatalf("ForcedCloses = %d, want >= 1", st.ForcedCloses)
	}
	_ = c2.Close()

	// Close after Drain stays idempotent, and nothing leaked.
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "goroutines to settle", 5*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})
}

// TestCloseRacingActiveSession closes the server while a client is mid
// request stream: Close must return within its grace period, every parked
// or active session's memory must be reclaimed exactly once, and the
// client must observe a connection error rather than a hang.
func TestCloseRacingActiveSession(t *testing.T) {
	dev := gpu.New(gpu.Config{Clock: vclock.NewWall()})
	srv := NewServer(dev, WithCloseGrace(150*time.Millisecond))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	conn, err := transport.DialTCP(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client, err := Open(conn, moduleImage(t, calib.MM))
	if err != nil {
		t.Fatal(err)
	}
	ptr, err := client.Malloc(2048)
	if err != nil {
		t.Fatal(err)
	}
	clientDone := make(chan struct{})
	go func() {
		defer close(clientDone)
		buf := make([]byte, 2048)
		for i := 0; ; i++ {
			if err := client.MemcpyToDevice(ptr, buf); err != nil {
				return // the close tore the connection down, as expected
			}
		}
	}()

	time.Sleep(30 * time.Millisecond) // let the client get into its stride
	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatalf("close racing active session: %v", err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("close took %v, want bounded by the grace period", took)
	}
	select {
	case <-clientDone:
	case <-time.After(2 * time.Second):
		t.Fatal("client still running after server close")
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if got := dev.MemoryInUse(); got != 0 {
		t.Fatalf("server close left %d device bytes allocated", got)
	}
	// Second close is an idempotent no-op: the already-destroyed session
	// must not be destroyed again.
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestStatsSnapshotGauges checks the operator snapshot reports live
// sessions, parked sessions, and device occupancy.
func TestStatsSnapshotGauges(t *testing.T) {
	srv, _, addr, cleanup := startHardenedServer(t)
	defer cleanup()
	client, rawConn := openDurable(t, addr)
	defer client.Close()
	if _, err := client.Malloc(1000); err != nil {
		t.Fatal(err)
	}
	snap := srv.StatsSnapshot()
	if snap.SessionsLive != 1 {
		t.Fatalf("SessionsLive = %d, want 1", snap.SessionsLive)
	}
	if len(snap.Devices) != 1 || snap.Devices[0].Allocations != 1 {
		t.Fatalf("device usage %+v, want one allocation on one device", snap.Devices)
	}
	if snap.Devices[0].BytesInUse < 1000 {
		t.Fatalf("BytesInUse = %d, want >= 1000", snap.Devices[0].BytesInUse)
	}

	// Park the session and watch the gauge flip.
	_ = rawConn.Close()
	waitFor(t, "session to park", 2*time.Second, func() bool {
		snap := srv.StatsSnapshot()
		return snap.SessionsParkedNow == 1 && snap.SessionsLive == 0
	})
}

// TestHardenedChaosMultiClient is the end-to-end hardening scenario: a
// hostile client hammers the quota, stalls mid-session, and abandons its
// allocations, while a well-behaved client runs the paper's MM and FFT
// case studies on the same daemon. The protection layer must throttle and
// evict the hostile client, reclaim 100% of its memory, leave the good
// client's results bit-exact with a chaos-free golden run, and shut down
// with zero goroutine leaks.
func TestHardenedChaosMultiClient(t *testing.T) {
	before := runtime.NumGoroutine()
	mm := moduleImage(t, calib.MM)
	fftMod := moduleImage(t, calib.FFT)

	// Golden results from an unharmed, unlimited server.
	_, _, goldenAddr, goldenCleanup := startHardenedServer(t)
	wantMM := golden(t, goldenAddr, mm, runMMWorkload, 7)
	wantFFT := golden(t, goldenAddr, fftMod, runFFTWorkload, 8)
	goldenCleanup()

	srv, dev, addr, cleanup := startHardenedServer(t,
		WithSessionMemoryLimit(1<<20),
		WithMaxAllocsPerSession(64),
		WithRequestDeadline(100*time.Millisecond),
		WithParkedSessionTTL(80*time.Millisecond),
	)

	// Hostile client 1: allocate until the quota throttles it, then
	// abandon the connection with everything still allocated.
	hoarderDone := make(chan error, 1)
	go func() {
		hoarder, raw := openDurable(t, addr)
		denied := false
		for i := 0; i < 16; i++ {
			if _, err := hoarder.Malloc(256 << 10); err != nil {
				if !errors.Is(err, cudart.ErrorMemoryAllocation) {
					hoarderDone <- err
					return
				}
				denied = true
				break
			}
		}
		if !denied {
			hoarderDone <- errors.New("hoarder was never throttled by the quota")
			return
		}
		_ = raw.Close() // abandon without finalizing
		hoarderDone <- nil
	}()

	// Hostile client 2: go silent mid-session so the watchdog kills it,
	// then never come back — the parked session is the GC's problem.
	stallerDone := make(chan error, 1)
	go func() {
		staller, raw := openDurable(t, addr)
		if _, err := staller.Malloc(128 << 10); err != nil {
			stallerDone <- err
			return
		}
		time.Sleep(250 * time.Millisecond) // well past the request deadline
		// The conn must stay reachable through the sleep: if the GC
		// finalizes the abandoned socket first, the server sees a clean
		// EOF and parks the session before the watchdog can kill it.
		runtime.KeepAlive(raw)
		stallerDone <- nil
	}()

	// The well-behaved clients share the daemon with both hostiles. Each
	// finalizes promptly: an idle connection past the request deadline is
	// fair game for the watchdog, well-behaved or not.
	goodMM := openChaosClient(t, addr, nil, mm)
	gotMM := runMMWorkload(t, goodMM, 7)
	if err := goodMM.Close(); err != nil {
		t.Fatalf("good MM client close: %v", err)
	}
	goodFFT := openChaosClient(t, addr, nil, fftMod)
	gotFFT := runFFTWorkload(t, goodFFT, 8)
	if err := goodFFT.Close(); err != nil {
		t.Fatalf("good FFT client close: %v", err)
	}
	if !bytes.Equal(gotMM, wantMM) {
		t.Fatal("MM result diverged under hostile neighbors")
	}
	if !bytes.Equal(gotFFT, wantFFT) {
		t.Fatal("FFT result diverged under hostile neighbors")
	}
	for _, ch := range []chan error{hoarderDone, stallerDone} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("hostile client: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("hostile client never finished")
		}
	}

	// Both hostile sessions must be evicted and every hostile byte
	// reclaimed; the good client finalized cleanly, so the device drains
	// to zero.
	waitFor(t, "hostile sessions to be evicted", 5*time.Second, func() bool {
		return srv.Stats().Evictions >= 2
	})
	waitFor(t, "hostile memory reclamation", 5*time.Second, func() bool {
		return dev.MemoryInUse() == 0
	})

	st := srv.Stats()
	if st.QuotaDenials < 1 {
		t.Fatalf("QuotaDenials = %d, want >= 1", st.QuotaDenials)
	}
	if st.WatchdogKills < 1 {
		t.Fatalf("WatchdogKills = %d, want >= 1", st.WatchdogKills)
	}
	t.Logf("hardening chaos: %+v", st)

	cleanup()
	waitFor(t, "goroutines to settle", 5*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})
}
