package rcuda

import (
	"time"

	"rcuda/internal/cudart"
	"rcuda/internal/gpu"
)

// This file holds the server-hardening ServerOptions and the per-session
// quota arithmetic. The motivating deployment is the paper's Figure 1: one
// GPU server node shared by many remote clients. Without limits a single
// misbehaving client can exhaust the Tesla C1060's 4 GB, hold a handler
// goroutine hostage mid-frame, or abandon durable sessions whose
// allocations survive until daemon shutdown. Each knob below bounds one of
// those failure modes; all of them default to off, preserving the paper's
// original unlimited behavior.

// DefaultCloseGrace bounds how long Close lets in-flight requests finish
// before force-closing their connections. Override with WithCloseGrace.
const DefaultCloseGrace = 5 * time.Second

// WithMaxSessions caps how many sessions may exist at once, attached or
// parked — a parked durable session still pins its device allocations, so
// it counts. Handshakes beyond the cap are refused with a typed
// protocol.CodeServerBusy wire error (ErrServerBusy on the client) unless
// WithAdmissionQueue lets them wait for a freed slot. n <= 0 is unlimited.
func WithMaxSessions(n int) ServerOption {
	return func(s *Server) { s.maxSessions = n }
}

// WithMaxConns caps concurrently served connections. Unlike the session
// cap this is a hard bound with no queueing: the excess connection gets the
// busy rejection immediately and should redial after backoff. n <= 0 is
// unlimited.
func WithMaxConns(n int) ServerOption {
	return func(s *Server) { s.maxConns = n }
}

// WithAdmissionQueue lets up to depth handshakes wait in arrival order for
// a session slot instead of being rejected outright, each for at most
// wait (an accept deadline; <= 0 defaults to one second). Only meaningful
// together with WithMaxSessions.
func WithAdmissionQueue(depth int, wait time.Duration) ServerOption {
	return func(s *Server) {
		s.admitQueueDepth = depth
		s.admitQueueWait = wait
	}
}

// WithSessionMemoryLimit caps the device bytes one session may hold across
// all its per-device contexts, charged at the allocator's granularity
// (gpu.AllocCharge). A cudaMalloc that would breach the cap fails with
// cudaErrorMemoryAllocation — exactly what an exhausted device returns —
// so unmodified applications handle it natively. bytes <= 0 is unlimited.
func WithSessionMemoryLimit(bytes uint64) ServerOption {
	return func(s *Server) { s.sessionMemLimit = bytes }
}

// WithMaxAllocsPerSession caps live allocations per session, bounding
// allocator metadata against a client that mallocs in a loop. Breaches
// fail with cudaErrorMemoryAllocation. n <= 0 is unlimited.
func WithMaxAllocsPerSession(n int) ServerOption {
	return func(s *Server) { s.maxAllocsPerSession = n }
}

// WithRequestDeadline arms the request watchdog: every transport operation
// of a session — including the handshake and each frame of a chunked
// transfer — must complete within d, or the connection is killed with a
// deadline error. A client stalled mid-frame (the faults.KindStall
// scenario) therefore costs a bounded amount of handler time; its durable
// session is parked for reattach instead of leaking the goroutine. The
// deadline rides the transport's own support (TCP read/write deadlines, or
// the simulated pipe's wall-clock bound), so an idle durable client past
// the deadline is parked too — it reattaches transparently on its next
// call when it runs a reconnect policy. d <= 0 disables the watchdog.
func WithRequestDeadline(d time.Duration) ServerOption {
	return func(s *Server) { s.requestDeadline = d }
}

// WithParkedSessionTTL bounds how long a parked durable session survives
// without a reattach before the background garbage collector destroys it
// and reclaims its device memory. This replaces waiting for daemon
// shutdown as the only reclamation point. A reattach after eviction is
// refused with protocol.CodeSessionEvicted. d <= 0 disables the GC
// (parked sessions then live until Close, the original behavior).
func WithParkedSessionTTL(d time.Duration) ServerOption {
	return func(s *Server) { s.parkedTTL = d }
}

// WithCloseGrace sets how long Close lets in-flight requests finish before
// force-closing the stragglers' connections (default DefaultCloseGrace).
// Drain takes an explicit context instead.
func WithCloseGrace(d time.Duration) ServerOption {
	return func(s *Server) { s.closeGrace = d }
}

// sessionMemInUse sums the device bytes the session holds across every
// context it has created — one per device it selected — at allocator
// granularity. Only the session's own goroutine mutates the ctxs map, so
// iterating it here is race-free.
func (ss *session) sessionMemInUse() uint64 {
	var total uint64
	for _, ctx := range ss.ctxs {
		total += ctx.OwnedBytes()
	}
	return total
}

// sessionAllocs counts the session's live allocations across its contexts.
func (ss *session) sessionAllocs() int {
	n := 0
	for _, ctx := range ss.ctxs {
		n += ctx.OwnedCount()
	}
	return n
}

// checkQuota decides whether the session may allocate size more bytes.
// It returns the wire result code to refuse with, or cudart.Success. The
// accounting is derived from the contexts themselves rather than kept in a
// shadow counter, so it cannot drift across setDevice switches, frees, or
// reattaches.
func (s *Server) checkQuota(ss *session, size uint32) cudart.Error {
	if s.sessionMemLimit > 0 && ss.sessionMemInUse()+gpu.AllocCharge(size) > s.sessionMemLimit {
		return cudart.ErrorMemoryAllocation
	}
	if s.maxAllocsPerSession > 0 && ss.sessionAllocs()+1 > s.maxAllocsPerSession {
		return cudart.ErrorMemoryAllocation
	}
	return cudart.Success
}
