package rcuda

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/faults"
	"rcuda/internal/gpu"
	"rcuda/internal/protocol"
	"rcuda/internal/transport"
	"rcuda/internal/vclock"
)

// startTCPServer runs a daemon on a loopback listener and returns its
// address plus a cleanup that stops it.
func startTCPServer(t *testing.T) (*Server, string, func()) {
	t.Helper()
	dev := gpu.New(gpu.Config{Clock: vclock.NewWall()})
	srv := NewServer(dev)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	cleanup := func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
	return srv, ln.Addr().String(), cleanup
}

// faultyDialer dials the server and wraps every connection in the shared
// fault plan, so the plan's operation counter spans reconnects too.
func faultyDialer(addr string, plan *faults.Plan) func() (transport.Conn, error) {
	return func() (transport.Conn, error) {
		conn, err := transport.DialTCP(addr)
		if err != nil {
			return nil, err
		}
		return transport.NewFaultyConn(conn, plan), nil
	}
}

// Client-side operation indices for a scripted plan, counting every Send
// and Recv from the connection's first byte: the init exchange is ops 0-1
// and the durable-session hello is ops 2-3, so the first post-open request
// sends at op 4.
const opsOpenDurable = 4

// TestRetryRecoversIdempotentOpAfterReset injects a reset into a memcpy's
// response and checks the call transparently retries on a reattached
// session, with every counter accounting for the recovery.
func TestRetryRecoversIdempotentOpAfterReset(t *testing.T) {
	srv, addr, cleanup := startTCPServer(t)
	defer cleanup()

	// op 4/5: malloc; op 6: memcpy send; op 7: memcpy recv — inject there.
	plan := faults.Script(
		faults.Injection{Op: opsOpenDurable + 3, Dir: faults.DirRecv, Decision: faults.Decision{Kind: faults.KindReset}},
	)
	dial := faultyDialer(addr, plan)
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	client, err := Open(conn, moduleImage(t, calib.MM),
		WithRetry(4, 100*time.Microsecond), WithReconnect(dial))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	ptr, err := client.Malloc(uint32(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if err := client.MemcpyToDevice(ptr, data); err != nil {
		t.Fatalf("memcpy through injected reset: %v", err)
	}
	if plan.Injected() == 0 {
		t.Fatal("scripted fault never fired; op indices drifted")
	}
	out := make([]byte, len(data))
	if err := client.MemcpyToHost(out, ptr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatalf("read back %v, want %v", out, data)
	}

	cs := client.Stats()
	if cs.ConnFaults != 1 || cs.Reconnects != 1 || cs.Recovered != 1 || cs.Retries < 1 {
		t.Fatalf("client stats %+v", cs)
	}
	ss := srv.Stats()
	if ss.Reattaches != 1 || ss.SessionsParked != 1 {
		t.Fatalf("server stats %+v", ss)
	}
}

// TestNonIdempotentSurfacesSessionLostThenHeals kills the connection
// during a malloc: the malloc must fail with ErrSessionLost (its server
// outcome is unknown), but the session itself must heal — later calls
// reattach and find earlier allocations with their contents intact.
func TestNonIdempotentSurfacesSessionLostThenHeals(t *testing.T) {
	_, addr, cleanup := startTCPServer(t)
	defer cleanup()

	// op 4/5: malloc a; op 6/7: memcpy a; op 8: malloc b send — inject.
	plan := faults.Script(
		faults.Injection{Op: opsOpenDurable + 4, Dir: faults.DirSend, Decision: faults.Decision{Kind: faults.KindReset}},
	)
	dial := faultyDialer(addr, plan)
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	client, err := Open(conn, moduleImage(t, calib.MM),
		WithRetry(4, 100*time.Microsecond), WithReconnect(dial))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	data := []byte{9, 8, 7, 6, 5, 4, 3, 2}
	aPtr, err := client.Malloc(uint32(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if err := client.MemcpyToDevice(aPtr, data); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Malloc(64); !errors.Is(err, ErrSessionLost) {
		t.Fatalf("interrupted malloc: %v, want ErrSessionLost", err)
	}
	// The session heals on the next call, and a's bytes survived the park.
	out := make([]byte, len(data))
	if err := client.MemcpyToHost(out, aPtr); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if !bytes.Equal(out, data) {
		t.Fatalf("allocation lost across reattach: %v, want %v", out, data)
	}
	if _, err := client.Malloc(64); err != nil {
		t.Fatalf("malloc after heal: %v", err)
	}
	if cs := client.Stats(); cs.Reconnects != 1 {
		t.Fatalf("client stats %+v, want exactly one reconnect", cs)
	}
}

// TestReattachRefusedLatchesSessionLost points the reconnect dialer at a
// server that never saw the session: the reattach is refused, the client
// latches lost, and every further call fails fast with ErrSessionLost.
func TestReattachRefusedLatchesSessionLost(t *testing.T) {
	_, addr1, cleanup1 := startTCPServer(t)
	defer cleanup1()
	_, addr2, cleanup2 := startTCPServer(t)
	defer cleanup2()

	plan := faults.Script(
		faults.Injection{Op: opsOpenDurable, Dir: faults.DirSend, Decision: faults.Decision{Kind: faults.KindReset}},
	)
	// Initial connection to server 1, reconnects land on server 2.
	conn, err := transport.DialTCP(addr1)
	if err != nil {
		t.Fatal(err)
	}
	client, err := Open(transport.NewFaultyConn(conn, plan), moduleImage(t, calib.MM),
		WithRetry(3, 50*time.Microsecond), WithReconnect(faultyDialer(addr2, nil)))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.DeviceSynchronize(); !errors.Is(err, ErrSessionLost) {
		t.Fatalf("sync through refused reattach: %v, want ErrSessionLost", err)
	}
	start := time.Now()
	if err := client.DeviceSynchronize(); !errors.Is(err, ErrSessionLost) {
		t.Fatalf("post-latch call: %v, want ErrSessionLost", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("post-latch call did not fail fast")
	}
}

// TestBaselineErrorsUnchangedWithoutRetry pins the pre-existing contract:
// a client with no retry options surfaces the raw transport error, never
// ErrSessionLost.
func TestBaselineErrorsUnchangedWithoutRetry(t *testing.T) {
	_, addr, cleanup := startTCPServer(t)
	defer cleanup()

	// No durable hello without WithReconnect, so the first request sends
	// at op 2.
	plan := faults.Script(
		faults.Injection{Op: 2, Dir: faults.DirSend, Decision: faults.Decision{Kind: faults.KindReset}},
	)
	conn, err := transport.DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	client, err := Open(transport.NewFaultyConn(conn, plan), moduleImage(t, calib.MM))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	_, err = client.Malloc(64)
	if !errors.Is(err, transport.ErrInjectedReset) {
		t.Fatalf("got %v, want the raw transport error", err)
	}
	if errors.Is(err, ErrSessionLost) {
		t.Fatal("baseline client must not speak ErrSessionLost")
	}
	if cs := client.Stats(); cs.Retries != 0 || cs.Reconnects != 0 {
		t.Fatalf("baseline client retried: %+v", cs)
	}
}

// TestRetryWithoutReconnectExhausts runs retries with no dialer: the
// attempts burn down against a dead connection and the call reports
// ErrSessionLost after the configured attempt count.
func TestRetryWithoutReconnectExhausts(t *testing.T) {
	_, addr, cleanup := startTCPServer(t)
	defer cleanup()

	plan := faults.Script(
		faults.Injection{Op: 2, Dir: faults.DirSend, Decision: faults.Decision{Kind: faults.KindReset}},
	)
	conn, err := transport.DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	client, err := Open(transport.NewFaultyConn(conn, plan), moduleImage(t, calib.MM),
		WithRetry(3, 50*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.DeviceSynchronize(); !errors.Is(err, ErrSessionLost) {
		t.Fatalf("got %v, want ErrSessionLost after exhaustion", err)
	}
	if cs := client.Stats(); cs.Retries != 2 || cs.ConnFaults != 3 {
		t.Fatalf("client stats %+v, want 2 retries over 3 attempts", cs)
	}
}

// TestOpIdempotencyTable pins the retry classification: a drifted table
// could silently re-execute a launch or double an allocation after a
// fault of unknown outcome.
func TestOpIdempotencyTable(t *testing.T) {
	safe := []protocol.Op{
		protocol.OpMemcpyToDevice, protocol.OpMemcpyToHost,
		protocol.OpDeviceSynchronize, protocol.OpGetDeviceCount,
		protocol.OpSetDevice, protocol.OpGetDeviceProperties,
		protocol.OpMemset, protocol.OpStreamQuery, protocol.OpEventQuery,
		protocol.OpEventElapsed, protocol.OpStreamSynchronize,
		protocol.OpEventSynchronize, protocol.OpSessionHello,
		// Safe despite carrying launches: the server deduplicates replayed
		// batches by sequence number (see dispatchBatch).
		protocol.OpBatch,
	}
	unsafe := []protocol.Op{
		protocol.OpMalloc, protocol.OpFree, protocol.OpLaunch,
		protocol.OpStreamCreate, protocol.OpStreamDestroy,
		protocol.OpEventCreate, protocol.OpEventRecord,
		protocol.OpEventDestroy, protocol.OpMemcpyToDeviceAsync,
		protocol.OpMemcpyToHostAsync, protocol.OpMemcpyDeviceToDevice,
		protocol.OpInit, protocol.OpFinalize, protocol.OpSessionReattach,
	}
	for _, op := range safe {
		if !opIdempotent(op) {
			t.Errorf("%v must be idempotent", op)
		}
	}
	for _, op := range unsafe {
		if opIdempotent(op) {
			t.Errorf("%v must not be idempotent", op)
		}
	}
}
