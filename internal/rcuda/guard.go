package rcuda

import (
	"errors"
	"sync/atomic"
	"time"
)

// ErrServerBusy reports that the server's admission control refused this
// connection or session: the concurrent-connection cap, the session cap, or
// the admission queue's depth or accept deadline was exhausted. The
// condition is transient — a client with a retry policy backs off and
// redials; on the wire it travels as protocol.CodeServerBusy.
var ErrServerBusy = errors.New("rcuda: server busy")

// ErrSessionEvicted reports that a reattach named a durable session the
// server's parked-session garbage collector already reclaimed. Unlike
// ErrServerBusy it is permanent: the session's contexts and allocations are
// gone, so the client latches ErrSessionLost.
var ErrSessionEvicted = errors.New("rcuda: session evicted")

// guard is the server's admission controller. It bounds how many
// connections are being served concurrently (a hard cap, no queueing — a
// connection is cheap to retry) and how many sessions exist at once
// (attached or parked, since a parked session still pins device memory).
// Session admission can optionally queue: up to queueDepth handshakes park
// in FIFO arrival order for at most queueWait, picking up slots as running
// sessions are destroyed.
//
// The zero-value *guard (or nil limits) admits everything.
type guard struct {
	maxConns   int64
	queueDepth int64
	queueWait  time.Duration

	conns   atomic.Int64
	waiters atomic.Int64
	// slots is a counting semaphore with capacity maxSessions; a token in
	// the channel is an admitted session. Nil means unlimited.
	slots chan struct{}
}

// newGuard builds the admission state for the given limits; any limit <= 0
// is unlimited.
func newGuard(maxSessions, maxConns, queueDepth int, queueWait time.Duration) *guard {
	g := &guard{queueWait: queueWait}
	if maxConns > 0 {
		g.maxConns = int64(maxConns)
	}
	if queueDepth > 0 {
		g.queueDepth = int64(queueDepth)
	}
	if maxSessions > 0 {
		g.slots = make(chan struct{}, maxSessions)
	}
	return g
}

// admitConn counts a new connection against the concurrency cap and
// reports whether it is within bounds. The count is held either way (the
// rejection handshake itself occupies the connection briefly); the caller
// must pair it with releaseConn.
func (g *guard) admitConn() bool {
	n := g.conns.Add(1)
	return g.maxConns == 0 || n <= g.maxConns
}

// releaseConn returns a connection's slot.
func (g *guard) releaseConn() { g.conns.Add(-1) }

// acquireSession claims a session slot, queueing within the configured
// depth and deadline. done aborts a queued wait when the server shuts
// down. It returns ErrServerBusy when no slot can be had.
func (g *guard) acquireSession(done <-chan struct{}) error {
	if g.slots == nil {
		return nil
	}
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	if g.queueDepth == 0 {
		return ErrServerBusy
	}
	if g.waiters.Add(1) > g.queueDepth {
		g.waiters.Add(-1)
		return ErrServerBusy
	}
	defer g.waiters.Add(-1)
	wait := g.queueWait
	if wait <= 0 {
		wait = time.Second
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-timer.C:
		return ErrServerBusy
	case <-done:
		return ErrServerBusy
	}
}

// releaseSession returns a session slot, waking one queued handshake.
func (g *guard) releaseSession() {
	if g.slots != nil {
		<-g.slots
	}
}
