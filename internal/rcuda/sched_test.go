package rcuda

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/gpu"
	"rcuda/internal/protocol"
	"rcuda/internal/sched"
	"rcuda/internal/transport"
	"rcuda/internal/vclock"
)

// TestClassifySchedOp pins the gating table: session control, monitoring,
// and discovery bypass the device queue; everything that touches device
// state holds it for exactly one op.
func TestClassifySchedOp(t *testing.T) {
	cases := []struct {
		req   protocol.Request
		kind  sched.OpKind
		bytes int
		gated bool
	}{
		{&protocol.SessionHelloRequest{}, 0, 0, false},
		{&protocol.StatsQueryRequest{}, 0, 0, false},
		{&protocol.FinalizeRequest{}, 0, 0, false},
		{&protocol.ReattachRequest{Session: 1}, 0, 0, false},
		{&protocol.GetDeviceCountRequest{}, 0, 0, false},
		{&protocol.SetDeviceRequest{Device: 1}, 0, 0, false},
		{&protocol.GetDevicePropertiesRequest{}, 0, 0, false},
		{&protocol.LaunchRequest{Name: "k"}, sched.KindLaunch, 0, true},
		{&protocol.MemcpyToDeviceRequest{Data: make([]byte, 64)}, sched.KindCopy, 64, true},
		{&protocol.MemcpyToHostRequest{Size: 128}, sched.KindCopy, 128, true},
		{&protocol.MemcpyD2DRequest{Size: 32}, sched.KindCopy, 32, true},
		{&protocol.MemsetRequest{Size: 16}, sched.KindCopy, 16, true},
		{&protocol.MemcpyStreamBeginRequest{Total: 4096, ChunkSize: 256}, sched.KindCopy, 4096, true},
		{&protocol.SyncRequest{}, sched.KindSync, 0, true},
		{&protocol.BatchRequest{}, sched.KindBatch, 0, true},
		{&protocol.MallocRequest{Size: 8}, sched.KindOther, 0, true},
		{&protocol.EventCreateRequest{}, sched.KindOther, 0, true},
	}
	for _, tc := range cases {
		kind, n, gated := classifySchedOp(tc.req)
		if gated != tc.gated || (gated && (kind != tc.kind || n != tc.bytes)) {
			t.Errorf("%v: classified (%v, %d, %v), want (%v, %d, %v)",
				tc.req.Op(), kind, n, gated, tc.kind, tc.bytes, tc.gated)
		}
	}
}

// TestClassWireMapping pins the wire-code translation both ways, including
// the unspecified-means-Batch default.
func TestClassWireMapping(t *testing.T) {
	for _, c := range []sched.Class{sched.Realtime, sched.Batch, sched.BestEffort} {
		if got := classFromWire(classToWire(c)); got != c {
			t.Errorf("class %v round-trips to %v", c, got)
		}
	}
	if got := classFromWire(protocol.SchedClassUnspecified); got != sched.Batch {
		t.Errorf("unspecified maps to %v, want Batch", got)
	}
}

// openSchedClient opens a plain TCP client with extra options (typically
// WithSchedClass).
func openSchedClient(t *testing.T, addr string, module []byte, opts ...ClientOption) *Client {
	t.Helper()
	conn, err := transport.DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	client, err := Open(conn, module, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return client
}

// TestSchedulerServesWorkloads runs concurrent tenants of different
// classes through a WFQ-scheduled daemon: every workload must finish
// bit-exact with the unscheduled golden run, the per-class rows must
// account for the sessions and the ops they ran, and the stats probe must
// carry the class block.
func TestSchedulerServesWorkloads(t *testing.T) {
	module := moduleImage(t, calib.MM)
	want := func() []byte {
		_, addr, cleanup := startTCPServer(t)
		defer cleanup()
		client := openChaosClient(t, addr, nil, module)
		defer client.Close()
		return runMMWorkload(t, client, 7)
	}()

	srv, addr, cleanup := startMigrateServer(t,
		WithScheduler(sched.WFQ),
		WithClassWeights([sched.NumClasses]uint32{100, 10, 1}))
	defer cleanup()

	classes := []uint32{SchedRealtime, SchedBatch, SchedBestEffort, 0}
	var wg sync.WaitGroup
	results := make([][]byte, len(classes))
	for i, class := range classes {
		wg.Add(1)
		go func(i int, class uint32) {
			defer wg.Done()
			client := openSchedClient(t, addr, module, WithSchedClass(class, uint32(i+1)))
			defer client.Close()
			results[i] = runMMWorkload(t, client, 7)
		}(i, class)
	}
	wg.Wait()
	for i, got := range results {
		if !bytes.Equal(got, want) {
			t.Fatalf("tenant %d (class %d) diverged from the golden run", i, classes[i])
		}
	}

	// A finalize is one-way: Close returns before the handler detaches, so
	// the gauges drain asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	var snap StatsSnapshot
	for {
		snap = srv.StatsSnapshot()
		drained := true
		for _, cu := range snap.Classes {
			if cu.Sessions != 0 {
				drained = false
			}
		}
		if drained {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("class gauges never drained after close: %+v", snap.Classes)
		}
		time.Sleep(200 * time.Microsecond)
	}
	if len(snap.Classes) != sched.NumClasses {
		t.Fatalf("snapshot has %d class rows, want %d", len(snap.Classes), sched.NumClasses)
	}
	var served uint64
	for _, cu := range snap.Classes {
		served += cu.Served
	}
	if served == 0 {
		t.Fatal("no ops passed through the scheduler")
	}
	// Realtime and Batch both ran tenants (the bare-hello tenant defaults
	// to Batch), so their rows must have grants.
	if snap.Classes[sched.Realtime].Served == 0 || snap.Classes[sched.Batch].Served == 0 {
		t.Fatalf("class rows missing grants: %+v", snap.Classes)
	}
}

// TestStatsProbeCarriesClassBlock checks the wire side: a stats probe of a
// scheduler-enabled daemon answers with the per-class trailer, and the
// attached-session gauges land in the right class rows.
func TestStatsProbeCarriesClassBlock(t *testing.T) {
	module := moduleImage(t, calib.MM)
	_, addr, cleanup := startMigrateServer(t, WithScheduler(sched.WFQ))
	defer cleanup()

	client := openSchedClient(t, addr, module, WithSchedClass(SchedRealtime, 4))
	defer client.Close()
	if _, err := client.Malloc(64); err != nil {
		t.Fatal(err)
	}
	reply, err := client.QueryStats()
	if err != nil {
		t.Fatal(err)
	}
	if !reply.HasClasses {
		t.Fatal("scheduler-enabled daemon answered without the class block")
	}
	if got := reply.Classes[SchedRealtime-1].Sessions; got != 1 {
		t.Fatalf("realtime row counts %d sessions, want 1 (%+v)", got, reply.Classes)
	}
	if got := reply.Classes[SchedBatch-1].Sessions; got != 0 {
		t.Fatalf("batch row counts %d sessions, want 0 (%+v)", got, reply.Classes)
	}
}

// TestSchedulerOffKeepsLegacyReply pins back-compat: without WithScheduler
// the stats reply has no class block and the snapshot no class rows, so
// old brokers see byte-identical frames.
func TestSchedulerOffKeepsLegacyReply(t *testing.T) {
	module := moduleImage(t, calib.MM)
	srv, addr, cleanup := startTCPServer(t)
	defer cleanup()
	client := openChaosClient(t, addr, nil, module)
	defer client.Close()
	reply, err := client.QueryStats()
	if err != nil {
		t.Fatal(err)
	}
	if reply.HasClasses {
		t.Fatal("unscheduled daemon advertised a class block")
	}
	if snap := srv.StatsSnapshot(); snap.Classes != nil {
		t.Fatalf("unscheduled snapshot has class rows: %+v", snap.Classes)
	}
}

// TestSchedClassSurvivesMigration is the regression for the scheduling
// identity's migration path: a realtime tenant live-migrates mid-workload
// and must still be a realtime tenant on the destination — same class,
// same weight, counted in the destination's realtime gauge — with the
// workload finishing bit-exact.
func TestSchedClassSurvivesMigration(t *testing.T) {
	module := moduleImage(t, calib.MM)
	w := mmStaged(23)
	want := goldenStaged(t, module, w)

	src, srcAddr, cleanupSrc := startMigrateServer(t, WithScheduler(sched.WFQ))
	defer cleanupSrc()
	dst, dstAddr, cleanupDst := startMigrateServer(t, WithScheduler(sched.WFQ))
	defer cleanupDst()
	sw := newSwitcher(srcAddr)
	client := openSwitchClient(t, sw, module, WithSchedClass(SchedRealtime, 8))
	defer client.Close()

	ptrs := w.stage1(t, client)
	id := client.SessionID()
	if id == 0 {
		t.Fatal("no durable session")
	}
	sessionParams := func(s *Server) (sched.Class, uint32, bool) {
		s.mu.Lock()
		defer s.mu.Unlock()
		sess, ok := s.registry[id]
		if !ok {
			return 0, 0, false
		}
		return sess.schedClass, sess.schedWeight, true
	}
	if class, weight, ok := sessionParams(src); !ok || class != sched.Realtime || weight != 8 {
		t.Fatalf("source session params (%v, %d, %v), want (Realtime, 8, true)", class, weight, ok)
	}

	if _, err := src.MigrateSession(id, dialTo(dstAddr)); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if class, weight, ok := sessionParams(dst); !ok || class != sched.Realtime || weight != 8 {
		t.Fatalf("restored session params (%v, %d, %v), want (Realtime, 8, true)", class, weight, ok)
	}

	sw.point(dstAddr)
	if got := w.stage2(t, client, ptrs); !bytes.Equal(got, want) {
		t.Fatal("result diverged across migration")
	}
	// The reattached session lands in the destination's realtime gauge and
	// its post-migration ops pass through the destination's queues.
	snap := dst.StatsSnapshot()
	if snap.Classes[sched.Realtime].Sessions != 1 {
		t.Fatalf("destination realtime gauge %d, want 1 (%+v)", snap.Classes[sched.Realtime].Sessions, snap.Classes)
	}
	if snap.Classes[sched.Realtime].Served == 0 {
		t.Fatalf("destination served no realtime ops: %+v", snap.Classes)
	}
}

// TestBareHelloKeepsDeclaredParams pins the unspecified semantics: after a
// session declares a class and weight, a later bare hello (class 0,
// weight 0) must not reset either.
func TestBareHelloKeepsDeclaredParams(t *testing.T) {
	srv := NewServer(gpu.New(gpu.Config{Clock: vclock.NewWall()}), WithScheduler(sched.WFQ))
	sess := &session{srv: srv, schedClass: sched.Batch}
	srv.applySchedParams(sess, SchedBestEffort, 3, false)
	if sess.schedClass != sched.BestEffort || sess.schedWeight != 3 {
		t.Fatalf("declared params not applied: (%v, %d)", sess.schedClass, sess.schedWeight)
	}
	srv.applySchedParams(sess, protocol.SchedClassUnspecified, 0, false)
	if sess.schedClass != sched.BestEffort || sess.schedWeight != 3 {
		t.Fatalf("bare hello reset params to (%v, %d)", sess.schedClass, sess.schedWeight)
	}
}
