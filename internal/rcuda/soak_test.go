package rcuda

import (
	"bytes"
	"errors"
	"runtime"
	"testing"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/cudart"
	"rcuda/internal/faults"
	"rcuda/internal/gpu"
	"rcuda/internal/kernels"
)

// TestSoakMixedOpsUnderFaults pushes 10k mixed operations through a
// connection with a ~1% seeded fault rate and then checks the process is
// clean: every surviving read is bit-exact, the client recovered at least
// once, and no goroutines leaked across the churn of killed connections
// and reattached sessions. Skipped under -short; `make soak` runs it
// under -race.
func TestSoakMixedOpsUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	before := runtime.NumGoroutine()

	srv, addr, cleanup := startTCPServer(t)
	plan := faults.Seeded(1, faults.Config{
		ResetRate:        0.003,
		TruncateRate:     0.002,
		StallRate:        0.001,
		PartialWriteRate: 0.002,
		LatencyRate:      0.002,
		StallDelay:       time.Millisecond,
		LatencyDelay:     20 * time.Microsecond,
	})
	client := openChaosClient(t, addr, plan, moduleImage(t, calib.MM))

	const region = 4096 // crosses the 1024-byte chunk threshold
	fixed := insistMalloc(t, client, region)
	scratch := insistMalloc(t, client, 4*16*16)
	buf := make([]byte, region)
	out := make([]byte, region)

	const ops = 10000
	for i := 0; i < ops; i++ {
		switch i % 10 {
		case 0, 1, 2, 3, 4, 5:
			// Write a distinct pattern, read it straight back, compare.
			for j := range buf {
				buf[j] = byte(i + j)
			}
			if err := client.MemcpyToDevice(fixed, buf); err != nil {
				t.Fatalf("op %d write: %v", i, err)
			}
			if err := client.MemcpyToHost(out, fixed); err != nil {
				t.Fatalf("op %d read: %v", i, err)
			}
			if !bytes.Equal(out, buf) {
				t.Fatalf("op %d: read back diverged (faults so far: %d)", i, plan.Injected())
			}
		case 6, 7:
			if err := client.DeviceSynchronize(); err != nil {
				t.Fatalf("op %d sync: %v", i, err)
			}
		case 8:
			// A launch interrupted mid-fault may have run; sgemm overwrites
			// its output, so re-running or skipping both leave the session
			// healthy.
			err := client.Launch(kernels.SgemmKernel, cudart.Dim3{X: 1, Y: 1}, cudart.Dim3{X: 16, Y: 16}, 0,
				gpu.PackParams(uint32(scratch), uint32(scratch), uint32(scratch), 16))
			if err != nil && !errors.Is(err, ErrSessionLost) {
				t.Fatalf("op %d launch: %v", i, err)
			}
		case 9:
			ptr, err := client.Malloc(256)
			if err != nil {
				if errors.Is(err, ErrSessionLost) {
					continue // may have leaked server-side; tolerated
				}
				t.Fatalf("op %d malloc: %v", i, err)
			}
			if err := client.Free(ptr); err != nil && !errors.Is(err, ErrSessionLost) {
				t.Fatalf("op %d free: %v", i, err)
			}
		}
	}

	cs := client.Stats()
	if plan.Injected() == 0 || cs.Recovered == 0 {
		t.Fatalf("soak saw no faults or no recoveries: injected=%d stats=%+v", plan.Injected(), cs)
	}
	t.Logf("soak: %d ops, faults=%d client=%+v server-reattaches=%d",
		ops, plan.Injected(), cs, srv.Stats().Reattaches)

	if err := client.Close(); err != nil {
		t.Logf("client close: %v", err) // best-effort on a faulted conn
	}
	cleanup()

	// Goroutines wind down asynchronously after the listener closes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
