package rcuda

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/cudart"
	"rcuda/internal/faults"
	"rcuda/internal/gpu"
	"rcuda/internal/kernels"
)

// The chaos suite runs real workloads over a TCP connection that injects
// deterministic faults, and demands the results stay bit-exact with a
// fault-free golden run. Every scenario reproduces from its script or
// seed; a failure prints the plan history, which replays the exact fault
// sequence.

// openChaosClient opens a durable retrying client whose every connection
// (initial and reconnects) shares plan. Faults can hit the open handshake
// itself, so it retries the open on a fresh connection.
func openChaosClient(t *testing.T, addr string, plan *faults.Plan, module []byte) *Client {
	t.Helper()
	dial := faultyDialer(addr, plan)
	for attempt := 0; attempt < 20; attempt++ {
		conn, err := dial()
		if err != nil {
			continue
		}
		client, err := Open(conn, module,
			WithChunkedTransfers(1024, 512),
			WithRetry(8, 200*time.Microsecond),
			WithReconnect(dial))
		if err == nil {
			return client
		}
		_ = conn.Close()
	}
	t.Fatal("could not open a client in 20 attempts")
	return nil
}

// insist re-issues a non-idempotent call that ErrSessionLost interrupted.
// Chaos workloads only insist on calls whose repetition cannot change the
// result (overwriting launches, leak-only mallocs).
func insist(t *testing.T, what string, fn func() error) {
	t.Helper()
	for attempt := 0; attempt < 20; attempt++ {
		err := fn()
		if err == nil {
			return
		}
		if !errors.Is(err, ErrSessionLost) {
			t.Fatalf("%s: %v", what, err)
		}
	}
	t.Fatalf("%s: still failing after 20 re-issues", what)
}

// insistMalloc allocates through session-lost interruptions. A lost
// malloc may have allocated server-side; re-issuing leaks that region for
// the session's remainder, which the workload tolerates.
func insistMalloc(t *testing.T, client *Client, size uint32) cudart.DevicePtr {
	t.Helper()
	var ptr cudart.DevicePtr
	insist(t, "malloc", func() error {
		p, err := client.Malloc(size)
		if err == nil {
			ptr = p
		}
		return err
	})
	return ptr
}

// runMMWorkload drives the paper's matrix-multiply case study and returns
// the raw bytes of C. The sgemm kernel overwrites C, so a launch that is
// re-issued after ErrSessionLost cannot skew the result.
func runMMWorkload(t *testing.T, client *Client, seed int64) []byte {
	t.Helper()
	const m = 32
	rng := rand.New(rand.NewSource(seed))
	a := make([]float32, m*m)
	b := make([]float32, m*m)
	for i := range a {
		a[i] = rng.Float32()
		b[i] = rng.Float32()
	}
	nbytes := uint32(4 * m * m)
	aPtr := insistMalloc(t, client, nbytes)
	bPtr := insistMalloc(t, client, nbytes)
	cPtr := insistMalloc(t, client, nbytes)
	if err := client.MemcpyToDevice(aPtr, cudart.Float32Bytes(a)); err != nil {
		t.Fatalf("copy A: %v", err)
	}
	if err := client.MemcpyToDevice(bPtr, cudart.Float32Bytes(b)); err != nil {
		t.Fatalf("copy B: %v", err)
	}
	insist(t, "sgemm launch", func() error {
		return client.Launch(kernels.SgemmKernel, cudart.Dim3{X: 2, Y: 2}, cudart.Dim3{X: 16, Y: 16}, 0,
			gpu.PackParams(uint32(aPtr), uint32(bPtr), uint32(cPtr), m))
	})
	out := make([]byte, nbytes)
	if err := client.MemcpyToHost(out, cPtr); err != nil {
		t.Fatalf("copy C: %v", err)
	}
	return out
}

// runFFTWorkload drives the batched-FFT case study forward-only (a single
// overwite-free transform would not survive a double launch, so the
// launch is never insisted here — scripted scenarios place their faults
// in the bulk transfers instead) and returns the spectrum bytes.
func runFFTWorkload(t *testing.T, client *Client, seed int64) []byte {
	t.Helper()
	const batch = 4
	const points = 512
	rng := rand.New(rand.NewSource(seed))
	signal := make([]complex64, batch*points)
	for i := range signal {
		signal[i] = complex(rng.Float32()*2-1, rng.Float32()*2-1)
	}
	data := cudart.Complex64Bytes(signal)
	ptr, err := client.Malloc(uint32(len(data)))
	if err != nil {
		t.Fatalf("malloc: %v", err)
	}
	if err := client.MemcpyToDevice(ptr, data); err != nil {
		t.Fatalf("copy signal: %v", err)
	}
	if err := client.Launch(kernels.FFTKernel, cudart.Dim3{X: batch}, cudart.Dim3{X: 64}, 0,
		gpu.PackParams(uint32(ptr), batch, 0)); err != nil {
		t.Fatalf("fft launch: %v", err)
	}
	out := make([]byte, len(data))
	if err := client.MemcpyToHost(out, ptr); err != nil {
		t.Fatalf("copy spectrum: %v", err)
	}
	return out
}

// golden runs a workload over a clean connection and returns its result.
func golden(t *testing.T, addr string, module []byte, run func(*testing.T, *Client, int64) []byte, seed int64) []byte {
	t.Helper()
	client := openChaosClient(t, addr, nil, module)
	defer client.Close()
	return run(t, client, seed)
}

// TestChaosScriptedScenarios pins one fault to a precise point in each
// workload's dialogue and checks bit-exact recovery. Operation indexing
// (see opsOpenDurable): MM with 512-byte chunks sends Begin at op 10,
// chunks at 12-19, End at 20, End ack at 21; FFT's device-to-host stream
// receives its chunks at ops 46-77.
func TestChaosScriptedScenarios(t *testing.T) {
	mm := moduleImage(t, calib.MM)
	fftMod := moduleImage(t, calib.FFT)
	cases := []struct {
		name   string
		module []byte
		run    func(*testing.T, *Client, int64) []byte
		inject faults.Injection
	}{
		{
			name: "mm/reset-during-memcpy-chunks", module: mm, run: runMMWorkload,
			inject: faults.Injection{Op: 15, Dir: faults.DirSend, Decision: faults.Decision{Kind: faults.KindReset}},
		},
		{
			name: "mm/truncated-chunk", module: mm, run: runMMWorkload,
			inject: faults.Injection{Op: 16, Dir: faults.DirSend, Decision: faults.Decision{Kind: faults.KindTruncate, KeepBytes: 100}},
		},
		{
			name: "mm/stall-then-recover", module: mm, run: runMMWorkload,
			inject: faults.Injection{Op: 21, Dir: faults.DirRecv, Decision: faults.Decision{Kind: faults.KindStall, Delay: time.Millisecond}},
		},
		{
			name: "fft/reset-during-d2h-stream", module: fftMod, run: runFFTWorkload,
			inject: faults.Injection{Op: 50, Dir: faults.DirRecv, Decision: faults.Decision{Kind: faults.KindReset}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, addr, cleanup := startTCPServer(t)
			defer cleanup()
			const seed = 11
			want := golden(t, addr, tc.module, tc.run, seed)

			plan := faults.Script(tc.inject)
			client := openChaosClient(t, addr, plan, tc.module)
			defer client.Close()
			got := tc.run(t, client, seed)

			if plan.Injected() == 0 {
				t.Fatalf("fault never fired; op indices drifted (history %v)", plan.History())
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("result diverged after recovery (faults: %v)", plan.History())
			}
			if cs := client.Stats(); cs.Recovered == 0 {
				t.Fatalf("no recovery recorded: %+v (faults: %v)", cs, plan.History())
			}
		})
	}
}

// TestChaosSeededReplaysIdentically drives the MM workload under the same
// seeded plan twice: the injected fault sequences and the results must
// match event for event — the acceptance bar for reproducing any chaos
// failure from its seed.
func TestChaosSeededReplaysIdentically(t *testing.T) {
	module := moduleImage(t, calib.MM)
	cfg := faults.Config{
		ResetRate:    0.02,
		TruncateRate: 0.02,
		StallRate:    0.01,
		LatencyRate:  0.03,
		StallDelay:   time.Millisecond,
	}
	drive := func() ([]faults.Event, []byte) {
		_, addr, cleanup := startTCPServer(t)
		defer cleanup()
		plan := faults.Seeded(21, cfg)
		client := openChaosClient(t, addr, plan, module)
		defer client.Close()
		out := runMMWorkload(t, client, 21)
		return plan.History(), out
	}
	hist1, out1 := drive()
	hist2, out2 := drive()
	if !reflect.DeepEqual(hist1, hist2) {
		t.Fatalf("same seed, different fault sequences:\n run1 %v\n run2 %v", hist1, hist2)
	}
	if !bytes.Equal(out1, out2) {
		t.Fatal("same seed, different results")
	}
}

// TestChaosSeededSweep runs the MM workload under 50 consecutive seeds at
// ~8% fault rate; every run must finish with a bit-exact result. This is
// the flake gate the Makefile's verify target runs under -race.
func TestChaosSeededSweep(t *testing.T) {
	module := moduleImage(t, calib.MM)
	_, addr, cleanup := startTCPServer(t)
	defer cleanup()
	want := golden(t, addr, module, runMMWorkload, 5)

	cfg := faults.Config{
		ResetRate:        0.02,
		TruncateRate:     0.02,
		StallRate:        0.01,
		PartialWriteRate: 0.02,
		LatencyRate:      0.01,
		StallDelay:       time.Millisecond,
		LatencyDelay:     50 * time.Microsecond,
	}
	injected := int64(0)
	for seed := int64(1); seed <= 50; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			plan := faults.Seeded(seed, cfg)
			client := openChaosClient(t, addr, plan, module)
			defer client.Close()
			got := runMMWorkload(t, client, 5)
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d diverged (faults: %v)", seed, plan.History())
			}
			injected += plan.Injected()
		})
	}
	if injected == 0 {
		t.Fatal("50 seeds injected nothing; rates are broken")
	}
}
