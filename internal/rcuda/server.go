// Package rcuda implements the paper's middleware: a client library that
// satisfies the cudart.Runtime interface by forwarding every CUDA call to a
// remote server, and the GPU network service that executes those calls on
// the device it owns.
//
// The architecture follows Section III: the client sends one message per
// CUDA call and the server always answers with a 32-bit result code
// (possibly followed by data); the server daemon listens on a TCP port and
// time-multiplexes the GPU by serving each connection on its own CUDA
// context, which it pre-initializes so clients never pay the CUDA
// environment start-up delay.
package rcuda

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"rcuda/internal/cudart"
	"rcuda/internal/gpu"
	"rcuda/internal/protocol"
	"rcuda/internal/transport"
)

// Server is the rCUDA daemon: it owns one or more devices and serves GPU
// requests. Figure 1 of the paper shows server nodes with several
// accelerators; clients discover them with cudaGetDeviceCount and select
// with cudaSetDevice.
type Server struct {
	devs     []*gpu.Device
	logger   *log.Logger
	spread   bool
	counters serverCounters

	mu       sync.Mutex
	listener net.Listener
	closed   bool
	nextDev  int
	sessions sync.WaitGroup
	// registry maps durable session ids to their state so a reconnecting
	// client can reattach; see protocol.SessionHelloRequest.
	registry    map[uint64]*session
	nextSession uint64
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithLogger directs server diagnostics to the given logger; by default
// they are discarded, since per-request logging would distort timing.
func WithLogger(l *log.Logger) ServerOption {
	return func(s *Server) { s.logger = l }
}

// WithDevices attaches additional GPUs to the daemon beyond the primary one
// passed to NewServer.
func WithDevices(extra ...*gpu.Device) ServerOption {
	return func(s *Server) { s.devs = append(s.devs, extra...) }
}

// WithSessionSpread makes new sessions start on the daemon's devices round
// robin instead of all defaulting to device 0, spreading clients that never
// call cudaSetDevice across a multi-GPU server.
func WithSessionSpread() ServerOption {
	return func(s *Server) { s.spread = true }
}

// initialDevice picks the device a new session starts on.
func (s *Server) initialDevice() int {
	if !s.spread || len(s.devs) == 1 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.nextDev % len(s.devs)
	s.nextDev++
	return d
}

// NewServer creates a daemon for the given device.
func NewServer(dev *gpu.Device, opts ...ServerOption) *Server {
	s := &Server{devs: []*gpu.Device{dev}}
	for _, o := range opts {
		o(s)
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

// Serve accepts connections from ln until Close is called, spawning one
// session per connection — the paper's "spawning a different server process
// for each remote execution over a new GPU context".
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("rcuda: server closed")
	}
	s.listener = ln
	s.mu.Unlock()

	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("rcuda: accept: %w", err)
		}
		s.sessions.Add(1)
		go func() {
			defer s.sessions.Done()
			conn := transport.NewTCPConn(c)
			if err := s.ServeConn(conn); err != nil {
				s.logf("rcuda: session from %s: %v", c.RemoteAddr(), err)
			}
			_ = conn.Close()
		}()
	}
}

// Close stops accepting connections and waits for in-flight sessions.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.sessions.Wait()
	// Destroy parked durable sessions nobody reattached to.
	s.mu.Lock()
	orphans := make([]*session, 0, len(s.registry))
	for id, sess := range s.registry {
		delete(s.registry, id)
		if !sess.attached && !sess.destroyed {
			sess.destroyed = true
			orphans = append(orphans, sess)
		}
	}
	s.mu.Unlock()
	for _, sess := range orphans {
		sess.destroy()
	}
	return err
}

// makeDurable registers sess in the reattach registry, assigning its
// stable id on first request; repeated hellos are idempotent.
func (s *Server) makeDurable(sess *session) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !sess.durable {
		if s.registry == nil {
			s.registry = make(map[uint64]*session)
		}
		s.nextSession++
		sess.id = s.nextSession
		sess.durable = true
		sess.attached = true
		s.registry[sess.id] = sess
	}
	return sess.id
}

// session is the per-connection state: one lazily created, pre-initialized
// context per device the client has selected, plus the client's module so
// contexts on later-selected devices can load it.
type session struct {
	srv    *Server
	module *gpu.Module
	ctxs   map[int]*gpu.Context
	cur    int
	// Durable-session state, all guarded by srv.mu. A durable session
	// outlives its connection: when the connection dies without a clean
	// finalize, the session is parked (attached=false) with its contexts
	// intact until a reattach or daemon shutdown claims it.
	id        uint64
	durable   bool
	attached  bool
	destroyed bool
}

// context returns the context of the currently selected device.
func (ss *session) context() *gpu.Context { return ss.ctxs[ss.cur] }

// setDevice switches the session's current device, creating its context on
// first use.
func (ss *session) setDevice(d int) error {
	if d < 0 || d >= len(ss.srv.devs) {
		return cudart.ErrorInvalidValue
	}
	if _, ok := ss.ctxs[d]; !ok {
		ctx := ss.srv.devs[d].NewContextPreinitialized()
		if err := ctx.LoadModule(ss.module); err != nil {
			_ = ctx.Destroy()
			return err
		}
		ss.ctxs[d] = ctx
	}
	ss.cur = d
	return nil
}

// destroy releases every context the session created.
func (ss *session) destroy() {
	for _, ctx := range ss.ctxs {
		_ = ctx.Destroy()
	}
}

// ServeConn serves one client session on any transport (a real socket or a
// simulated pipe). It performs the initialization handshake, enters the
// request loop, and releases the session's contexts when the client
// finalizes or disconnects.
func (s *Server) ServeConn(conn transport.Conn) error {
	s.counters.sessionsStarted.Add(1)
	s.counters.sessionsActive.Add(1)
	defer s.counters.sessionsActive.Add(-1)
	defer func() {
		st := conn.Stats()
		// The conn's "sent" is the server's outbound traffic.
		s.counters.bytesSent.Add(st.BytesSent)
		s.counters.bytesReceived.Add(st.BytesRecv)
	}()

	sess, err := s.handshake(conn)
	if err != nil {
		return err
	}
	finalized := false
	defer func() { s.releaseSession(sess, finalized) }()

	for {
		payload, err := conn.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, transport.ErrClosed) {
				return nil // client went away; resources released by defer
			}
			return fmt.Errorf("rcuda: recv: %w", err)
		}
		req, err := protocol.DecodeRequest(payload)
		if err != nil {
			return fmt.Errorf("rcuda: malformed request: %w", err)
		}
		s.counters.requests.Add(1)
		done, err := s.dispatch(conn, sess, req)
		if err != nil {
			return err
		}
		if done {
			finalized = true
			return nil
		}
	}
}

// releaseSession runs when a connection ends. An unfinished durable
// session is parked — contexts, module, and allocations intact — for a
// later reattach; everything else (clean finalize, non-durable session,
// daemon shutting down) is destroyed.
func (s *Server) releaseSession(sess *session, finalized bool) {
	s.mu.Lock()
	if sess.durable && !finalized && !s.closed {
		sess.attached = false
		s.mu.Unlock()
		s.counters.sessionsParked.Add(1)
		return
	}
	if sess.durable {
		delete(s.registry, sess.id)
	}
	destroyed := sess.destroyed
	sess.destroyed = true
	s.mu.Unlock()
	if !destroyed {
		sess.destroy()
	}
}

// handshake consumes the initialization message: it resolves the client's
// GPU module and loads it into a fresh, pre-initialized context on the
// primary device. The daemon pre-initializes the CUDA environment, so the
// client does not pay that delay.
func (s *Server) handshake(conn transport.Conn) (*session, error) {
	payload, err := conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("rcuda: handshake recv: %w", err)
	}
	if r, ok := protocol.TryDecodeReattach(payload); ok {
		return s.reattachSession(conn, r)
	}
	initReq, err := protocol.DecodeInitRequest(payload)
	if err != nil {
		return nil, fmt.Errorf("rcuda: malformed init: %w", err)
	}
	initial := s.initialDevice()
	maj, min := s.devs[initial].Capability()
	mod, err := gpu.ResolveModule(initReq.Module)
	if err == nil {
		ctx := s.devs[initial].NewContextPreinitialized()
		if loadErr := ctx.LoadModule(mod); loadErr != nil {
			_ = ctx.Destroy()
			err = loadErr
		} else {
			if sendErr := conn.Send(&protocol.InitResponse{CapabilityMajor: maj, CapabilityMinor: min}); sendErr != nil {
				_ = ctx.Destroy()
				return nil, sendErr
			}
			return &session{srv: s, module: mod, ctxs: map[int]*gpu.Context{initial: ctx}, cur: initial}, nil
		}
	}
	sendErr := conn.Send(&protocol.InitResponse{
		CapabilityMajor: maj,
		CapabilityMinor: min,
		Err:             uint32(cudart.ErrorInitialization),
	})
	if sendErr != nil {
		return nil, sendErr
	}
	return nil, fmt.Errorf("rcuda: module load: %w", err)
}

// reattachWait bounds how long a reattaching connection waits for the
// session's previous connection to notice its own death and park the
// session. The wait is only taken in that narrow race; an unknown session
// is refused immediately.
const reattachWait = 2 * time.Second

// reattachSession splices a parked durable session onto a fresh
// connection. The session must exist and be detached; a session still
// marked attached means the old connection's server goroutine has not yet
// observed the fault, so the reattach polls briefly for the park.
func (s *Server) reattachSession(conn transport.Conn, r *protocol.ReattachRequest) (*session, error) {
	deadline := time.Now().Add(reattachWait)
	for {
		s.mu.Lock()
		sess, known := s.registry[r.Session]
		closed := s.closed
		if known && !closed && !sess.attached {
			sess.attached = true
			cur := sess.cur
			s.mu.Unlock()
			maj, min := s.devs[cur].Capability()
			if err := conn.Send(&protocol.ReattachResponse{CapabilityMajor: maj, CapabilityMinor: min}); err != nil {
				s.mu.Lock()
				sess.attached = false
				s.mu.Unlock()
				return nil, err
			}
			s.counters.reattaches.Add(1)
			return sess, nil
		}
		s.mu.Unlock()
		if !known || closed || time.Now().After(deadline) {
			_ = conn.Send(&protocol.ReattachResponse{Err: uint32(cudart.ErrorInitialization)})
			return nil, fmt.Errorf("rcuda: reattach refused for session %d (known=%v)", r.Session, known)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// dispatch executes one request and sends its response. It reports
// done=true on finalization.
func (s *Server) dispatch(conn transport.Conn, sess *session, req protocol.Request) (done bool, err error) {
	ctx := sess.context()
	switch r := req.(type) {
	case *protocol.MallocRequest:
		ptr, opErr := ctx.Malloc(r.Size)
		return false, conn.Send(&protocol.MallocResponse{
			Err:    code(opErr),
			DevPtr: ptr,
		})
	case *protocol.MemcpyToDeviceRequest:
		opErr := ctx.CopyToDevice(r.Dst, r.Data)
		return false, conn.Send(&protocol.MemcpyToDeviceResponse{Err: code(opErr)})
	case *protocol.MemcpyToHostRequest:
		buf, _ := transport.GetBuffer(int(r.Size))
		buf = buf[:r.Size]
		opErr := ctx.CopyToHostInto(buf, r.Src)
		if opErr != nil {
			transport.PutBuffer(buf)
			return false, conn.Send(&protocol.MemcpyToHostResponse{Err: code(opErr)})
		}
		sendErr := conn.Send(&protocol.MemcpyToHostResponse{Data: buf})
		transport.PutBuffer(buf)
		return false, sendErr
	case *protocol.LaunchRequest:
		grid := gpu.Dim3{X: r.GridDim[0], Y: r.GridDim[1], Z: 1}
		block := gpu.Dim3{X: r.BlockDim[0], Y: r.BlockDim[1], Z: r.BlockDim[2]}
		opErr := ctx.LaunchAsync(r.Name, grid, block, r.SharedSize, r.Params, r.Stream)
		return false, conn.Send(&protocol.LaunchResponse{Err: code(opErr)})
	case *protocol.FreeRequest:
		opErr := ctx.Free(r.DevPtr)
		return false, conn.Send(&protocol.FreeResponse{Err: code(opErr)})
	case *protocol.SyncRequest:
		return false, conn.Send(&protocol.SyncResponse{Err: code(ctx.Synchronize())})
	case *protocol.FinalizeRequest:
		return true, nil
	case *protocol.SessionHelloRequest:
		return false, conn.Send(&protocol.SessionHelloResponse{Session: s.makeDurable(sess)})
	case *protocol.ReattachRequest:
		// Reattach is only legal as a connection's opening message.
		return false, fmt.Errorf("rcuda: reattach inside an established session")
	default:
		if handled, err := s.dispatchAsync(conn, ctx, req); handled {
			return false, err
		}
		if handled, err := s.dispatchDevice(conn, sess, req); handled {
			return false, err
		}
		if handled, err := s.dispatchChunked(conn, sess, req); handled {
			return false, err
		}
		return false, fmt.Errorf("rcuda: unhandled request %T", req)
	}
}

// dispatchDevice handles device management and device-side memory requests.
func (s *Server) dispatchDevice(conn transport.Conn, sess *session, req protocol.Request) (handled bool, err error) {
	switch r := req.(type) {
	case *protocol.GetDeviceCountRequest:
		return true, conn.Send(&protocol.GetDeviceCountResponse{Count: uint32(len(s.devs))})
	case *protocol.SetDeviceRequest:
		return true, conn.Send(&protocol.SyncResponse{Err: code(sess.setDevice(int(r.Device)))})
	case *protocol.GetDevicePropertiesRequest:
		p := s.devs[sess.cur].Properties()
		return true, conn.Send(&protocol.GetDevicePropertiesResponse{
			MemoryBytes:     p.MemoryBytes,
			CapabilityMajor: p.CapabilityMajor,
			CapabilityMinor: p.CapabilityMinor,
			Multiprocessors: p.Multiprocessors,
			ClockMHz:        p.ClockMHz,
			MemoryMBps:      p.MemoryMBps,
			Name:            p.Name,
		})
	case *protocol.MemsetRequest:
		opErr := sess.context().Memset(r.DevPtr, byte(r.Value), r.Size)
		return true, conn.Send(&protocol.SyncResponse{Err: code(opErr)})
	case *protocol.MemcpyD2DRequest:
		opErr := sess.context().CopyDeviceToDevice(r.Dst, r.Src, r.Size)
		return true, conn.Send(&protocol.SyncResponse{Err: code(opErr)})
	default:
		return false, nil
	}
}

// code maps a device-layer error to its wire result code. The translation
// to cudaError_t reuses the cudart mapping so local and remote executions
// surface identical codes.
func code(err error) uint32 {
	return uint32(cudart.Code(mapToCudaError(err)))
}

func mapToCudaError(err error) error {
	var ce cudart.Error
	switch {
	case err == nil:
		return nil
	case errors.As(err, &ce):
		return ce
	case errors.Is(err, gpu.ErrOutOfMemory):
		return cudart.ErrorMemoryAllocation
	case errors.Is(err, gpu.ErrZeroSize):
		return cudart.ErrorInvalidValue
	case errors.Is(err, gpu.ErrInvalidDevPtr):
		return cudart.ErrorInvalidDevicePointer
	case errors.Is(err, gpu.ErrUnknownKernel):
		return cudart.ErrorLaunchFailure
	case errors.Is(err, gpu.ErrInvalidLaunch):
		return cudart.ErrorInvalidConfiguration
	case errors.Is(err, gpu.ErrInvalidStream), errors.Is(err, gpu.ErrInvalidEvent):
		return cudart.ErrorInvalidValue
	case errors.Is(err, gpu.ErrContextDestroyed), errors.Is(err, gpu.ErrUnknownModule):
		return cudart.ErrorInitialization
	default:
		return cudart.ErrorUnknown
	}
}
