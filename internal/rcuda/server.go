// Package rcuda implements the paper's middleware: a client library that
// satisfies the cudart.Runtime interface by forwarding every CUDA call to a
// remote server, and the GPU network service that executes those calls on
// the device it owns.
//
// The architecture follows Section III: the client sends one message per
// CUDA call and the server always answers with a 32-bit result code
// (possibly followed by data); the server daemon listens on a TCP port and
// time-multiplexes the GPU by serving each connection on its own CUDA
// context, which it pre-initializes so clients never pay the CUDA
// environment start-up delay.
//
// Beyond the paper, the server carries a protection layer for multi-tenant
// deployment: admission control (WithMaxSessions, WithMaxConns,
// WithAdmissionQueue), per-session quotas (WithSessionMemoryLimit,
// WithMaxAllocsPerSession), a request watchdog (WithRequestDeadline),
// TTL-based reclamation of abandoned durable sessions
// (WithParkedSessionTTL), and graceful shutdown (Drain, bounded Close).
// Every limit defaults to off.
package rcuda

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"rcuda/internal/cudart"
	"rcuda/internal/gpu"
	"rcuda/internal/protocol"
	"rcuda/internal/sched"
	"rcuda/internal/transport"
)

// Server is the rCUDA daemon: it owns one or more devices and serves GPU
// requests. Figure 1 of the paper shows server nodes with several
// accelerators; clients discover them with cudaGetDeviceCount and select
// with cudaSetDevice.
type Server struct {
	devs     []*gpu.Device
	logger   *log.Logger
	spread   bool
	counters serverCounters
	// Live load gauges behind the StatsQuery wire reply (see stats.go):
	// attached counts GPU sessions currently spliced to a connection
	// (probe-only connections excluded), devSessions counts sessions
	// holding a context on each device, devBusy accumulates each device's
	// dispatch time in nanoseconds of its own clock. The slices are sized
	// once in NewServer, after WithDevices has run.
	attached    atomic.Int64
	devSessions []atomic.Int64
	devBusy     []atomic.Int64

	// Hardening configuration (see limits.go); zero values disable.
	maxSessions         int
	maxConns            int
	admitQueueDepth     int
	admitQueueWait      time.Duration
	sessionMemLimit     uint64
	maxAllocsPerSession int
	requestDeadline     time.Duration
	parkedTTL           time.Duration
	closeGrace          time.Duration

	guard *guard
	// doneCh closes when shutdown begins, waking queued admissions and
	// reattach waiters.
	doneCh chan struct{}
	// handlers tracks every ServeConn in flight — including ones invoked
	// directly on a simulated pipe, which Serve's WaitGroup never sees.
	handlers sync.WaitGroup

	mu       sync.Mutex
	listener net.Listener
	closed   bool
	nextDev  int
	sessions sync.WaitGroup
	// conns holds every connection currently being served so Drain can
	// force-close stragglers past its deadline.
	conns map[transport.Conn]struct{}
	// registry maps durable session ids to their state so a reconnecting
	// client can reattach; see protocol.SessionHelloRequest.
	registry    map[uint64]*session
	nextSession uint64
	// evicted remembers durable sessions the parked-session GC reclaimed,
	// so a late reattach gets the typed eviction refusal instead of an
	// anonymous one. Ids are 8 bytes each and only abandoned sessions ever
	// land here, so the set stays small for any sane TTL.
	evicted map[uint64]struct{}
	gcStop  chan struct{}
	gcDone  chan struct{}
	// migrated remembers sessions live-migrated to another daemon, so a
	// late reattach gets the CodeSessionMigrated redirect (see migrate.go).
	migrated map[uint64]struct{}
	// migrateChunk is the outbound migration stream's chunk size
	// (WithMigrateChunkSize); zero means protocol.DefaultChunkSize.
	migrateChunk uint32
	// Standby-checkpoint loop state (WithStandbyPeer). standbyCopied maps a
	// session id to the parkedAt instant of its last successful copy,
	// guarded by mu.
	standbyDial   func() (transport.Conn, error)
	standbyEvery  time.Duration
	standbyDone   chan struct{}
	standbyCopied map[uint64]time.Time

	// Multi-tenant device scheduler (see sched.go in this package and
	// internal/sched). With schedOn, every device-touching request passes
	// through queues[dev] for one op; costs[dev] supplies the estimate.
	// classAttached counts attached sessions per declared class, feeding
	// the per-class stats rows. Sized in NewServer, after options.
	schedOn       bool
	schedCfg      sched.Config
	queues        []*sched.Queue
	costs         []*sched.CostModel
	classAttached [sched.NumClasses]atomic.Int64
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithLogger directs server diagnostics to the given logger; by default
// they are discarded, since per-request logging would distort timing.
func WithLogger(l *log.Logger) ServerOption {
	return func(s *Server) { s.logger = l }
}

// WithDevices attaches additional GPUs to the daemon beyond the primary one
// passed to NewServer.
func WithDevices(extra ...*gpu.Device) ServerOption {
	return func(s *Server) { s.devs = append(s.devs, extra...) }
}

// WithSessionSpread makes new sessions start on the daemon's devices round
// robin instead of all defaulting to device 0, spreading clients that never
// call cudaSetDevice across a multi-GPU server.
func WithSessionSpread() ServerOption {
	return func(s *Server) { s.spread = true }
}

// initialDevice picks the device a new session starts on.
func (s *Server) initialDevice() int {
	if !s.spread || len(s.devs) == 1 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.nextDev % len(s.devs)
	s.nextDev++
	return d
}

// NewServer creates a daemon for the given device.
func NewServer(dev *gpu.Device, opts ...ServerOption) *Server {
	s := &Server{
		devs:       []*gpu.Device{dev},
		closeGrace: DefaultCloseGrace,
		doneCh:     make(chan struct{}),
		conns:      make(map[transport.Conn]struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	s.guard = newGuard(s.maxSessions, s.maxConns, s.admitQueueDepth, s.admitQueueWait)
	s.devSessions = make([]atomic.Int64, len(s.devs))
	s.devBusy = make([]atomic.Int64, len(s.devs))
	if s.schedOn {
		s.queues = make([]*sched.Queue, len(s.devs))
		s.costs = make([]*sched.CostModel, len(s.devs))
		for i, d := range s.devs {
			dev := d
			s.queues[i] = sched.NewQueue(s.schedCfg, dev.Clock())
			s.costs[i] = sched.NewCostModel(func(bytes int) time.Duration {
				return dev.PCIeTime(int64(bytes))
			})
		}
	}
	if s.standbyDial != nil {
		s.standbyDone = make(chan struct{})
		go s.standbyLoop(s.standbyEvery, s.standbyDone)
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

// Serve accepts connections from ln until Close is called, spawning one
// session per connection — the paper's "spawning a different server process
// for each remote execution over a new GPU context".
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("rcuda: server closed")
	}
	s.listener = ln
	s.mu.Unlock()

	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("rcuda: accept: %w", err)
		}
		s.sessions.Add(1)
		go func() {
			defer s.sessions.Done()
			conn := transport.NewTCPConn(c)
			if err := s.ServeConn(conn); err != nil {
				s.logf("rcuda: session from %s: %v", c.RemoteAddr(), err)
			}
			_ = conn.Close()
		}()
	}
}

// beginShutdown flips the server into its terminal state exactly once:
// stop accepting, wake queued admissions and reattach waiters, stop the
// parked-session GC. It returns the listener's close error.
func (s *Server) beginShutdown() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	close(s.doneCh)
	gcStop, gcDone := s.gcStop, s.gcDone
	s.gcStop, s.gcDone = nil, nil
	standbyDone := s.standbyDone
	s.standbyDone = nil
	s.mu.Unlock()
	if gcStop != nil {
		close(gcStop)
		<-gcDone
	}
	if standbyDone != nil {
		<-standbyDone // woken by doneCh
	}
	if ln != nil {
		return ln.Close()
	}
	return nil
}

// sweepOrphans destroys every parked durable session nobody reattached to.
// Safe to call repeatedly; destroySession guards double destruction.
func (s *Server) sweepOrphans() {
	s.mu.Lock()
	orphans := make([]*session, 0, len(s.registry))
	for id, sess := range s.registry {
		delete(s.registry, id)
		if !sess.attached {
			orphans = append(orphans, sess)
		}
	}
	s.mu.Unlock()
	for _, sess := range orphans {
		s.destroySession(sess)
	}
}

// Drain gracefully shuts the server down: it stops accepting, lets
// in-flight sessions run to completion, and — once ctx expires — force
// closes the stragglers' connections so no handler goroutine outlives the
// drain by more than one blocked transport operation. Parked durable
// sessions are destroyed either way. It returns ctx.Err() when force
// closing was needed, nil for a fully graceful drain.
func (s *Server) Drain(ctx context.Context) error {
	lnErr := s.beginShutdown()
	settled := make(chan struct{})
	go func() {
		s.sessions.Wait()
		s.handlers.Wait()
		close(settled)
	}()
	var forcedErr error
	select {
	case <-settled:
	case <-ctx.Done():
		forcedErr = ctx.Err()
		s.mu.Lock()
		stragglers := make([]transport.Conn, 0, len(s.conns))
		for c := range s.conns {
			stragglers = append(stragglers, c)
		}
		s.mu.Unlock()
		for _, c := range stragglers {
			_ = c.Close()
			s.counters.forcedCloses.Add(1)
		}
		// A closed transport unblocks the handler's pending op, so this
		// terminates promptly.
		<-settled
	}
	s.sweepOrphans()
	if lnErr != nil {
		return lnErr
	}
	return forcedErr
}

// Close stops accepting connections and shuts down within a bounded grace
// period (WithCloseGrace, default DefaultCloseGrace): in-flight requests
// get the grace to finish, then their connections are force-closed. Unlike
// Drain, a forced close is not reported as an error — Close's contract is
// simply "the server is down when I return".
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.closeGrace)
	defer cancel()
	err := s.Drain(ctx)
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}

// makeDurable registers sess in the reattach registry, assigning its
// stable id on first request; repeated hellos are idempotent.
func (s *Server) makeDurable(sess *session) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !sess.durable {
		if s.registry == nil {
			s.registry = make(map[uint64]*session)
		}
		s.nextSession++
		sess.id = s.nextSession
		sess.durable = true
		sess.attached = true
		sess.parkCh = make(chan struct{})
		s.registry[sess.id] = sess
	}
	return sess.id
}

// session is the per-connection state: one lazily created, pre-initialized
// context per device the client has selected, plus the client's module so
// contexts on later-selected devices can load it.
type session struct {
	srv    *Server
	module *gpu.Module
	ctxs   map[int]*gpu.Context
	cur    int
	// slotHeld records whether this session occupies an admission slot;
	// written once at creation, before the session is shared.
	slotHeld bool
	// Durable-session state, all guarded by srv.mu. A durable session
	// outlives its connection: when the connection dies without a clean
	// finalize, the session is parked (attached=false) with its contexts
	// intact until a reattach, TTL eviction, or daemon shutdown claims it.
	id       uint64
	durable  bool
	attached bool
	// parkCh closes when the session parks, waking reattach waiters; a
	// fresh channel is made each time the session (re)attaches.
	parkCh   chan struct{}
	parkedAt time.Time
	// destroyed is guarded by srv.mu and flips exactly once.
	destroyed bool
	// conn is the connection currently serving the session (nil while
	// parked), guarded by srv.mu; migration closes it to force-park a
	// still-attached session.
	conn transport.Conn
	// migrating marks the session claimed by a migration or standby copy:
	// reattaches are refused busy until the claim resolves. Guarded by
	// srv.mu.
	migrating bool
	// standby marks state this daemon materialized from a checkpoint that
	// no client has claimed yet; a fresher inbound checkpoint may replace
	// it. Cleared on the first successful reattach. Guarded by srv.mu.
	standby bool
	// Batch replay protection (see dispatchBatch): the sequence and result
	// codes of the last executed batch. Only the session's single handler
	// goroutine touches them, and they survive park/reattach so a batch
	// replayed across a reconnect is still deduplicated.
	lastBatchSeq   uint64
	lastBatchCodes []uint32
	// Scheduling identity (see sched.go): class and weight from the
	// session's extended hello (or restored checkpoint), and the session's
	// flow handle per device queue. schedClass must be set explicitly at
	// every creation site — the zero Class is Realtime, the default is
	// Batch. flows is touched only by the session's handler goroutine; the
	// class/weight pair survives park/reattach with the struct and
	// migration via the checkpoint.
	schedClass  sched.Class
	schedWeight uint32
	flows       map[int]*sched.Session
}

// context returns the context of the currently selected device.
func (ss *session) context() *gpu.Context { return ss.ctxs[ss.cur] }

// setDevice switches the session's current device, creating its context on
// first use.
func (ss *session) setDevice(d int) error {
	if d < 0 || d >= len(ss.srv.devs) {
		return cudart.ErrorInvalidValue
	}
	if _, ok := ss.ctxs[d]; !ok {
		ctx := ss.srv.devs[d].NewContextPreinitialized()
		if err := ctx.LoadModule(ss.module); err != nil {
			_ = ctx.Destroy()
			return err
		}
		ss.ctxs[d] = ctx
		ss.srv.devSessions[d].Add(1)
	}
	ss.cur = d
	return nil
}

// destroy releases every context the session created.
func (ss *session) destroy() {
	for _, ctx := range ss.ctxs {
		_ = ctx.Destroy()
	}
}

// destroySession destroys sess exactly once: its contexts (and with them
// every device allocation) are released and its admission slot is freed.
// All destruction paths — clean finalize, disconnect of a non-durable
// session, TTL eviction, orphan sweep — funnel through here.
func (s *Server) destroySession(sess *session) {
	s.mu.Lock()
	already := sess.destroyed
	sess.destroyed = true
	s.mu.Unlock()
	if already {
		return
	}
	// Safe without s.mu for the same reason sess.destroy is: every path
	// here runs after the session's handler goroutine has exited (or never
	// existed), so nobody is still adding contexts.
	for d := range sess.ctxs {
		s.devSessions[d].Add(-1)
	}
	sess.destroy()
	if sess.slotHeld {
		s.guard.releaseSession()
	}
}

// ServeConn serves one client session on any transport (a real socket or a
// simulated pipe). It performs the initialization handshake, enters the
// request loop, and releases the session's contexts when the client
// finalizes or disconnects. With a request deadline configured, every
// transport operation of the session runs under the watchdog.
func (s *Server) ServeConn(conn transport.Conn) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("rcuda: server closed")
	}
	s.handlers.Add(1)
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.handlers.Done()
	}()

	s.counters.sessionsStarted.Add(1)
	s.counters.sessionsActive.Add(1)
	defer s.counters.sessionsActive.Add(-1)
	defer func() {
		st := conn.Stats()
		// The conn's "sent" is the server's outbound traffic.
		s.counters.bytesSent.Add(st.BytesSent)
		s.counters.bytesReceived.Add(st.BytesRecv)
	}()

	if s.requestDeadline > 0 {
		if dc, ok := conn.(transport.DeadlineCapable); ok {
			dc.SetOpTimeout(s.requestDeadline)
		}
	}
	withinConnCap := s.guard.admitConn()
	defer s.guard.releaseConn()

	err := s.serveSession(conn, withinConnCap)
	if err != nil && errors.Is(err, os.ErrDeadlineExceeded) {
		s.counters.watchdogKills.Add(1)
	}
	return err
}

// serveSession runs the handshake and request loop of one connection. A
// connection that opened with a stats probe has no session; handshake has
// already served it to completion and returns nil for both values.
func (s *Server) serveSession(conn transport.Conn, withinConnCap bool) error {
	sess, err := s.handshake(conn, withinConnCap)
	if err != nil {
		return err
	}
	if sess == nil {
		return nil
	}
	s.mu.Lock()
	sess.conn = conn
	s.mu.Unlock()
	s.attached.Add(1)
	s.classAttached[sess.schedClass%sched.NumClasses].Add(1)
	finalized := false
	defer func() {
		// sess.schedClass is handler-goroutine-owned and this defer runs on
		// that goroutine, so it sees any mid-life hello re-class.
		s.classAttached[sess.schedClass%sched.NumClasses].Add(-1)
		s.attached.Add(-1)
		s.releaseSession(sess, finalized)
	}()

	for {
		payload, err := conn.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, transport.ErrClosed) {
				return nil // client went away; resources released by defer
			}
			return fmt.Errorf("rcuda: recv: %w", err)
		}
		req, err := protocol.DecodeRequest(payload)
		if err != nil {
			return fmt.Errorf("rcuda: malformed request: %w", err)
		}
		s.counters.requests.Add(1)
		// Busy accounting: the wall (or simulated) time dispatch holds the
		// session's current device, charged to that device's own clock so a
		// broker's least-loaded ranking sees the same quantity the cluster
		// model's per-GPU completion times accumulate.
		dev := sess.cur
		clk := s.devs[dev].Clock()
		// With the scheduler on, a device-touching op waits for its grant
		// before dispatch and yields at the op boundary after — the
		// scheduler's only preemption point (see sched.go).
		var fl *sched.Session
		var kind sched.OpKind
		if s.schedOn {
			if k, bytes, gated := classifySchedOp(req); gated {
				kind = k
				fl = sess.flowOn(dev)
				if aerr := s.queues[dev].Acquire(fl, s.costs[dev].Estimate(k, bytes), s.doneCh); aerr != nil {
					return aerr
				}
			}
		}
		t0 := clk.Now()
		done, err := s.dispatch(conn, sess, req)
		busy := clk.Now() - t0
		if fl != nil {
			s.queues[dev].Release(fl, busy)
			s.costs[dev].Observe(kind, busy)
		}
		if busy > 0 {
			s.devBusy[dev].Add(int64(busy))
		}
		if err != nil {
			return err
		}
		if done {
			finalized = true
			return nil
		}
	}
}

// releaseSession runs when a connection ends. An unfinished durable
// session is parked — contexts, module, and allocations intact — for a
// later reattach; everything else (clean finalize, non-durable session,
// daemon shutting down) is destroyed.
func (s *Server) releaseSession(sess *session, finalized bool) {
	s.mu.Lock()
	sess.conn = nil
	if sess.durable && !finalized && !s.closed && !sess.destroyed {
		sess.attached = false
		sess.parkedAt = time.Now()
		close(sess.parkCh)
		s.maybeStartGCLocked()
		s.mu.Unlock()
		s.counters.sessionsParked.Add(1)
		return
	}
	if sess.durable {
		delete(s.registry, sess.id)
	}
	s.mu.Unlock()
	s.destroySession(sess)
}

// maybeStartGCLocked lazily starts the parked-session garbage collector —
// only once, only when a TTL is configured, and never after shutdown
// began. Caller holds s.mu.
func (s *Server) maybeStartGCLocked() {
	if s.parkedTTL <= 0 || s.gcStop != nil || s.closed {
		return
	}
	s.gcStop = make(chan struct{})
	s.gcDone = make(chan struct{})
	interval := s.parkedTTL / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	go s.gcLoop(s.gcStop, s.gcDone, interval)
}

// gcLoop periodically evicts parked sessions whose TTL expired, until
// shutdown stops it.
func (s *Server) gcLoop(stop, done chan struct{}, interval time.Duration) {
	defer close(done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			s.evictExpired()
		}
	}
}

// evictExpired destroys every parked session older than the TTL, recording
// it in the eviction tombstones so a late reattach gets the typed refusal.
func (s *Server) evictExpired() {
	now := time.Now()
	s.mu.Lock()
	var victims []*session
	for id, sess := range s.registry {
		if !sess.attached && !sess.destroyed && now.Sub(sess.parkedAt) >= s.parkedTTL {
			delete(s.registry, id)
			if s.evicted == nil {
				s.evicted = make(map[uint64]struct{})
			}
			s.evicted[id] = struct{}{}
			victims = append(victims, sess)
		}
	}
	s.mu.Unlock()
	for _, sess := range victims {
		s.destroySession(sess)
		s.counters.evictions.Add(1)
		s.logf("rcuda: evicted parked session %d after TTL %v", sess.id, s.parkedTTL)
	}
}

// refuseBusy answers the connection's opening message with the typed busy
// code in whichever response shape the client expects.
func refuseBusy(conn transport.Conn, reattach bool) error {
	if reattach {
		return conn.Send(&protocol.ReattachResponse{Err: protocol.CodeServerBusy})
	}
	return conn.Send(&protocol.InitResponse{Err: protocol.CodeServerBusy})
}

// handshake consumes the initialization message under admission control:
// it resolves the client's GPU module and loads it into a fresh,
// pre-initialized context on the primary device. The daemon pre-initializes
// the CUDA environment, so the client does not pay that delay.
func (s *Server) handshake(conn transport.Conn, withinConnCap bool) (*session, error) {
	payload, err := conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("rcuda: handshake recv: %w", err)
	}
	// A stats probe is answered before any admission decision: monitoring
	// must keep working on a server that is refusing new sessions, and a
	// probe connection never consumes a session slot.
	if q, isProbe := protocol.TryDecodeStatsQuery(payload); isProbe {
		return nil, s.serveStatsConn(conn, q)
	}
	// An inbound migration stream from a peer daemon (see migrate.go). It
	// is admitted like a fresh init — connection cap here, session slot
	// inside — and never returns a session: the restored session parks
	// awaiting the redirected client's reattach.
	if rr, isRestore := protocol.TryDecodeSessionRestore(payload); isRestore {
		return nil, s.serveRestoreConn(conn, rr, withinConnCap)
	}
	r, isReattach := protocol.TryDecodeReattach(payload)
	if !withinConnCap {
		s.counters.rejectedConns.Add(1)
		if sendErr := refuseBusy(conn, isReattach); sendErr != nil {
			return nil, sendErr
		}
		return nil, fmt.Errorf("rcuda: connection refused: %w", ErrServerBusy)
	}
	if isReattach {
		// A reattach resumes a session that already holds its admission
		// slot; only the connection cap applies.
		return s.reattachSession(conn, r)
	}
	initReq, err := protocol.DecodeInitRequest(payload)
	if err != nil {
		return nil, fmt.Errorf("rcuda: malformed init: %w", err)
	}
	if admitErr := s.guard.acquireSession(s.doneCh); admitErr != nil {
		s.counters.rejectedSessions.Add(1)
		if sendErr := refuseBusy(conn, false); sendErr != nil {
			return nil, sendErr
		}
		return nil, fmt.Errorf("rcuda: session refused: %w", admitErr)
	}
	sess, err := s.admitSession(conn, initReq)
	if err != nil {
		// The slot was claimed but no session materialized to carry it.
		s.guard.releaseSession()
		return nil, err
	}
	return sess, nil
}

// admitSession completes the handshake of an admitted init request.
func (s *Server) admitSession(conn transport.Conn, initReq *protocol.InitRequest) (*session, error) {
	initial := s.initialDevice()
	maj, min := s.devs[initial].Capability()
	mod, err := gpu.ResolveModule(initReq.Module)
	if err == nil {
		ctx := s.devs[initial].NewContextPreinitialized()
		if loadErr := ctx.LoadModule(mod); loadErr != nil {
			_ = ctx.Destroy()
			err = loadErr
		} else {
			if sendErr := conn.Send(&protocol.InitResponse{CapabilityMajor: maj, CapabilityMinor: min}); sendErr != nil {
				_ = ctx.Destroy()
				return nil, sendErr
			}
			s.devSessions[initial].Add(1)
			return &session{
				srv:        s,
				module:     mod,
				ctxs:       map[int]*gpu.Context{initial: ctx},
				cur:        initial,
				slotHeld:   s.guard.slots != nil,
				schedClass: sched.Batch,
			}, nil
		}
	}
	sendErr := conn.Send(&protocol.InitResponse{
		CapabilityMajor: maj,
		CapabilityMinor: min,
		Err:             uint32(cudart.ErrorInitialization),
	})
	if sendErr != nil {
		return nil, sendErr
	}
	return nil, fmt.Errorf("rcuda: module load: %w", err)
}

// reattachWait bounds how long a reattaching connection waits for the
// session's previous connection to notice its own death and park the
// session. The wait is only taken in that narrow race; an unknown session
// is refused immediately.
const reattachWait = 2 * time.Second

// reattachSession splices a parked durable session onto a fresh
// connection. The session must exist and be detached; a session still
// marked attached means the old connection's server goroutine has not yet
// observed the fault, so the reattach blocks on the session's park
// notification — no polling — until the park, the wait bound, or server
// shutdown wakes it.
func (s *Server) reattachSession(conn transport.Conn, r *protocol.ReattachRequest) (*session, error) {
	timer := time.NewTimer(reattachWait)
	defer timer.Stop()
	for {
		s.mu.Lock()
		sess, known := s.registry[r.Session]
		_, wasEvicted := s.evicted[r.Session]
		_, wasMigrated := s.migrated[r.Session]
		closed := s.closed
		migrating := known && sess.migrating
		if known && !closed && !sess.attached && !migrating {
			sess.attached = true
			sess.standby = false
			sess.parkCh = make(chan struct{})
			cur := sess.cur
			s.mu.Unlock()
			maj, min := s.devs[cur].Capability()
			if err := conn.Send(&protocol.ReattachResponse{CapabilityMajor: maj, CapabilityMinor: min}); err != nil {
				// The splice failed on the wire; park the session again so
				// another reattach (or the GC) can claim it.
				s.mu.Lock()
				sess.attached = false
				sess.parkedAt = time.Now()
				close(sess.parkCh)
				s.maybeStartGCLocked()
				s.mu.Unlock()
				return nil, err
			}
			s.counters.reattaches.Add(1)
			return sess, nil
		}
		var parked <-chan struct{}
		if known && sess.attached {
			parked = sess.parkCh
		}
		s.mu.Unlock()
		switch {
		case wasMigrated:
			// Redirect: the session lives on, on another daemon. The broker
			// has re-pointed the client's route; the next redial lands there.
			_ = conn.Send(&protocol.ReattachResponse{Err: protocol.CodeSessionMigrated})
			return nil, fmt.Errorf("rcuda: reattach redirected: session %d: %w", r.Session, ErrSessionMigrated)
		case wasEvicted:
			_ = conn.Send(&protocol.ReattachResponse{Err: protocol.CodeSessionEvicted})
			return nil, fmt.Errorf("rcuda: reattach refused: session %d: %w", r.Session, ErrSessionEvicted)
		case !known || closed:
			_ = conn.Send(&protocol.ReattachResponse{Err: uint32(cudart.ErrorInitialization)})
			return nil, fmt.Errorf("rcuda: reattach refused for session %d (known=%v)", r.Session, known)
		case migrating:
			// Mid-migration: transient from the client's perspective — after
			// the commit this id answers with the migrated redirect instead.
			_ = conn.Send(&protocol.ReattachResponse{Err: protocol.CodeServerBusy})
			return nil, fmt.Errorf("rcuda: reattach during migration of session %d: %w", r.Session, ErrServerBusy)
		}
		select {
		case <-parked:
			// Claimed on the next loop iteration.
		case <-timer.C:
			// Still attached after the full wait: the old connection never
			// died. Transient from the client's perspective — busy.
			_ = conn.Send(&protocol.ReattachResponse{Err: protocol.CodeServerBusy})
			return nil, fmt.Errorf("rcuda: reattach timed out for attached session %d: %w", r.Session, ErrServerBusy)
		case <-s.doneCh:
			// Loop observes closed and refuses.
		}
	}
}

// dispatch executes one request and sends its response. It reports
// done=true on finalization.
func (s *Server) dispatch(conn transport.Conn, sess *session, req protocol.Request) (done bool, err error) {
	ctx := sess.context()
	switch r := req.(type) {
	case *protocol.MallocRequest:
		if denial := s.checkQuota(sess, r.Size); denial != cudart.Success {
			s.counters.quotaDenials.Add(1)
			return false, conn.Send(&protocol.MallocResponse{Err: uint32(denial)})
		}
		ptr, opErr := ctx.Malloc(r.Size)
		return false, conn.Send(&protocol.MallocResponse{
			Err:    code(opErr),
			DevPtr: ptr,
		})
	case *protocol.MemcpyToDeviceRequest:
		opErr := ctx.CopyToDevice(r.Dst, r.Data)
		return false, conn.Send(&protocol.MemcpyToDeviceResponse{Err: code(opErr)})
	case *protocol.MemcpyToHostRequest:
		buf, _ := transport.GetBuffer(int(r.Size))
		buf = buf[:r.Size]
		opErr := ctx.CopyToHostInto(buf, r.Src)
		if opErr != nil {
			transport.PutBuffer(buf)
			return false, conn.Send(&protocol.MemcpyToHostResponse{Err: code(opErr)})
		}
		sendErr := conn.Send(&protocol.MemcpyToHostResponse{Data: buf})
		transport.PutBuffer(buf)
		return false, sendErr
	case *protocol.LaunchRequest:
		grid := gpu.Dim3{X: r.GridDim[0], Y: r.GridDim[1], Z: 1}
		block := gpu.Dim3{X: r.BlockDim[0], Y: r.BlockDim[1], Z: r.BlockDim[2]}
		opErr := ctx.LaunchAsync(r.Name, grid, block, r.SharedSize, r.Params, r.Stream)
		return false, conn.Send(&protocol.LaunchResponse{Err: code(opErr)})
	case *protocol.FreeRequest:
		opErr := ctx.Free(r.DevPtr)
		return false, conn.Send(&protocol.FreeResponse{Err: code(opErr)})
	case *protocol.SyncRequest:
		return false, conn.Send(&protocol.SyncResponse{Err: code(ctx.Synchronize())})
	case *protocol.FinalizeRequest:
		return true, nil
	case *protocol.SessionHelloRequest:
		s.applySchedParams(sess, r.Class, r.Weight, true)
		return false, conn.Send(&protocol.SessionHelloResponse{Session: s.makeDurable(sess)})
	case *protocol.StatsQueryRequest:
		s.counters.statsQueries.Add(1)
		return false, conn.Send(s.statsReply())
	case *protocol.BatchRequest:
		return false, s.dispatchBatch(conn, sess, r)
	case *protocol.ReattachRequest:
		// Reattach is only legal as a connection's opening message.
		return false, fmt.Errorf("rcuda: reattach inside an established session")
	default:
		if handled, err := s.dispatchAsync(conn, ctx, req); handled {
			return false, err
		}
		if handled, err := s.dispatchDevice(conn, sess, req); handled {
			return false, err
		}
		if handled, err := s.dispatchChunked(conn, sess, req); handled {
			return false, err
		}
		return false, fmt.Errorf("rcuda: unhandled request %T", req)
	}
}

// dispatchDevice handles device management and device-side memory requests.
func (s *Server) dispatchDevice(conn transport.Conn, sess *session, req protocol.Request) (handled bool, err error) {
	switch r := req.(type) {
	case *protocol.GetDeviceCountRequest:
		return true, conn.Send(&protocol.GetDeviceCountResponse{Count: uint32(len(s.devs))})
	case *protocol.SetDeviceRequest:
		return true, conn.Send(&protocol.SyncResponse{Err: code(sess.setDevice(int(r.Device)))})
	case *protocol.GetDevicePropertiesRequest:
		p := s.devs[sess.cur].Properties()
		return true, conn.Send(&protocol.GetDevicePropertiesResponse{
			MemoryBytes:     p.MemoryBytes,
			CapabilityMajor: p.CapabilityMajor,
			CapabilityMinor: p.CapabilityMinor,
			Multiprocessors: p.Multiprocessors,
			ClockMHz:        p.ClockMHz,
			MemoryMBps:      p.MemoryMBps,
			Name:            p.Name,
		})
	case *protocol.MemsetRequest:
		opErr := sess.context().Memset(r.DevPtr, byte(r.Value), r.Size)
		return true, conn.Send(&protocol.SyncResponse{Err: code(opErr)})
	case *protocol.MemcpyD2DRequest:
		opErr := sess.context().CopyDeviceToDevice(r.Dst, r.Src, r.Size)
		return true, conn.Send(&protocol.SyncResponse{Err: code(opErr)})
	default:
		return false, nil
	}
}

// code maps a device-layer error to its wire result code. The translation
// to cudaError_t reuses the cudart mapping so local and remote executions
// surface identical codes.
func code(err error) uint32 {
	return uint32(cudart.Code(mapToCudaError(err)))
}

func mapToCudaError(err error) error {
	var ce cudart.Error
	switch {
	case err == nil:
		return nil
	case errors.As(err, &ce):
		return ce
	case errors.Is(err, gpu.ErrOutOfMemory):
		return cudart.ErrorMemoryAllocation
	case errors.Is(err, gpu.ErrZeroSize):
		return cudart.ErrorInvalidValue
	case errors.Is(err, gpu.ErrInvalidDevPtr):
		return cudart.ErrorInvalidDevicePointer
	case errors.Is(err, gpu.ErrUnknownKernel):
		return cudart.ErrorLaunchFailure
	case errors.Is(err, gpu.ErrInvalidLaunch):
		return cudart.ErrorInvalidConfiguration
	case errors.Is(err, gpu.ErrInvalidStream), errors.Is(err, gpu.ErrInvalidEvent):
		return cudart.ErrorInvalidValue
	case errors.Is(err, gpu.ErrContextDestroyed), errors.Is(err, gpu.ErrUnknownModule):
		return cudart.ErrorInitialization
	default:
		return cudart.ErrorUnknown
	}
}
