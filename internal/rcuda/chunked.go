package rcuda

import (
	"fmt"
	"time"

	"rcuda/internal/cudart"
	"rcuda/internal/gpu"
	"rcuda/internal/protocol"
	"rcuda/internal/transport"
)

// This file implements both halves of the pipelined chunked-memcpy data
// path (see internal/protocol/chunked.go for the message flow). The client
// splits a bulk transfer into chunks; the server books each chunk's PCIe
// push at its network-arrival instant on a dedicated stream, so on the
// simulated clock the transfer costs about max(network, PCIe) instead of
// network + PCIe. A whole chunked transfer is observed as the single
// cudaMemcpy call it replaces.

// --- Client ------------------------------------------------------------------

// memcpyToDeviceChunked streams src to the device through the chunked
// protocol. Each chunk's Data aliases src directly, so on a vectored
// transport the payload goes from the caller's buffer to the wire with no
// intermediate copy.
func (c *Client) memcpyToDeviceChunked(dst cudart.DevicePtr, src []byte) error {
	if c.closed.Load() {
		return cudart.ErrorInitialization
	}
	total := uint32(len(src))
	begin := &protocol.MemcpyStreamBeginRequest{
		Ptr:       uint32(dst),
		Total:     total,
		Kind:      protocol.KindHostToDevice,
		ChunkSize: c.chunkSize,
	}
	sent, recv := begin.WireSize(), 0
	if err := c.conn.Send(begin); err != nil {
		return fmt.Errorf("rcuda: stream begin send: %w", err)
	}
	payload, err := c.conn.Recv()
	if err != nil {
		return fmt.Errorf("rcuda: stream begin recv: %w", err)
	}
	ack, err := protocol.DecodeMemcpyStreamBeginResponse(payload)
	if err != nil {
		return err
	}
	recv += len(payload)
	if ackErr := cudart.Error(ack.Err).AsError(); ackErr != nil {
		c.observe(protocol.OpMemcpyToDevice, sent, recv)
		return ackErr
	}
	chunk := &protocol.MemcpyStreamChunk{}
	for off, seq := 0, uint32(0); off < len(src); seq++ {
		end := off + int(c.chunkSize)
		if end > len(src) {
			end = len(src)
		}
		chunk.Seq, chunk.Data = seq, src[off:end]
		if err := c.conn.Send(chunk); err != nil {
			return fmt.Errorf("rcuda: stream chunk %d send: %w", seq, err)
		}
		sent += chunk.WireSize()
		off = end
	}
	endReq := &protocol.MemcpyStreamEndRequest{Chunks: protocol.Chunks(total, c.chunkSize)}
	if err := c.conn.Send(endReq); err != nil {
		return fmt.Errorf("rcuda: stream end send: %w", err)
	}
	sent += endReq.WireSize()
	if payload, err = c.conn.Recv(); err != nil {
		return fmt.Errorf("rcuda: stream end recv: %w", err)
	}
	status, err := protocol.DecodeMemcpyStreamEndResponse(payload)
	if err != nil {
		return err
	}
	recv += len(payload)
	c.observe(protocol.OpMemcpyToDevice, sent, recv)
	return cudart.Error(status.Err).AsError()
}

// memcpyToHostChunked reads device memory into dst through the chunked
// protocol: after the server acknowledges, the chunks stream in without
// per-chunk acknowledgements and are assembled directly into dst.
func (c *Client) memcpyToHostChunked(dst []byte, src cudart.DevicePtr) error {
	if c.closed.Load() {
		return cudart.ErrorInitialization
	}
	total := uint32(len(dst))
	begin := &protocol.MemcpyStreamBeginRequest{
		Ptr:       uint32(src),
		Total:     total,
		Kind:      protocol.KindDeviceToHost,
		ChunkSize: c.chunkSize,
	}
	sent, recv := begin.WireSize(), 0
	if err := c.conn.Send(begin); err != nil {
		return fmt.Errorf("rcuda: stream begin send: %w", err)
	}
	payload, err := c.conn.Recv()
	if err != nil {
		return fmt.Errorf("rcuda: stream begin recv: %w", err)
	}
	ack, err := protocol.DecodeMemcpyStreamBeginResponse(payload)
	if err != nil {
		return err
	}
	recv += len(payload)
	if ackErr := cudart.Error(ack.Err).AsError(); ackErr != nil {
		c.observe(protocol.OpMemcpyToHost, sent, recv)
		return ackErr
	}
	asm, err := protocol.NewChunkAssembler(total, c.chunkSize, dst)
	if err != nil {
		return err
	}
	for i, n := uint32(0), protocol.Chunks(total, c.chunkSize); i < n; i++ {
		if payload, err = c.conn.Recv(); err != nil {
			return fmt.Errorf("rcuda: stream chunk recv: %w", err)
		}
		chunk, err := protocol.DecodeMemcpyStreamChunk(payload)
		if err != nil {
			return err
		}
		if _, err := asm.Add(chunk); err != nil {
			return err
		}
		recv += len(payload)
	}
	if payload, err = c.conn.Recv(); err != nil {
		return fmt.Errorf("rcuda: stream end recv: %w", err)
	}
	status, err := protocol.DecodeMemcpyStreamEndResponse(payload)
	if err != nil {
		return err
	}
	recv += len(payload)
	c.observe(protocol.OpMemcpyToHost, sent, recv)
	if statusErr := cudart.Error(status.Err).AsError(); statusErr != nil {
		return statusErr
	}
	if !asm.Complete() {
		return fmt.Errorf("rcuda: stream ended with incomplete transfer")
	}
	return nil
}

// --- Server ------------------------------------------------------------------

// dispatchChunked handles the chunked-transfer requests. A Begin runs the
// whole sub-protocol inline; a chunk or end outside a transfer means the
// client and server have lost framing, which is fatal for the session.
func (s *Server) dispatchChunked(conn transport.Conn, sess *session, req protocol.Request) (handled bool, err error) {
	switch r := req.(type) {
	case *protocol.MemcpyStreamBeginRequest:
		return true, s.serveMemcpyStream(conn, sess, r)
	case *protocol.MemcpyStreamChunk, *protocol.MemcpyStreamEndRequest:
		return true, fmt.Errorf("rcuda: %v outside a chunked transfer", req.Op())
	default:
		return false, nil
	}
}

// recvArrival receives the next message together with its arrival instant.
// Transports without arrival stamps (real sockets) fall back to the device
// clock, where the degraded synchronous copy path ignores the instant
// anyway.
func recvArrival(conn transport.Conn, dev *gpu.Device) ([]byte, time.Duration, error) {
	if tr, ok := conn.(transport.TimedReceiver); ok {
		return tr.RecvTimed()
	}
	payload, err := conn.Recv()
	return payload, dev.Clock().Now(), err
}

// sendReady sends a message whose payload is only available at the given
// instant (a chunk completing its PCIe read). Transports that cannot
// schedule sends just send immediately.
func sendReady(conn transport.Conn, m protocol.Message, ready time.Duration) error {
	if ss, ok := conn.(transport.ScheduledSender); ok {
		return ss.SendAt(m, ready)
	}
	return conn.Send(m)
}

// serveMemcpyStream services one chunked transfer end to end. Recoverable
// failures (bad region, device errors) are reported in the Begin
// acknowledgement or the End status; only transport and framing failures
// end the session.
func (s *Server) serveMemcpyStream(conn transport.Conn, sess *session, begin *protocol.MemcpyStreamBeginRequest) error {
	ctx := sess.context()
	dev := s.srvDevice(sess)
	if err := ctx.ValidRegion(begin.Ptr, begin.Total); err != nil {
		return conn.Send(&protocol.MemcpyStreamBeginResponse{Err: code(err)})
	}
	stream, err := ctx.StreamCreate()
	if err != nil {
		return conn.Send(&protocol.MemcpyStreamBeginResponse{Err: code(err)})
	}
	if err := conn.Send(&protocol.MemcpyStreamBeginResponse{}); err != nil {
		return err
	}
	if begin.Kind == protocol.KindHostToDevice {
		return s.serveStreamToDevice(conn, ctx, dev, stream, begin)
	}
	return s.serveStreamToHost(conn, ctx, dev, stream, begin)
}

// srvDevice returns the device of the session's selected context.
func (s *Server) srvDevice(sess *session) *gpu.Device { return s.devs[sess.cur] }

// serveStreamToDevice overlaps receiving chunk k+1 from the network with
// pushing chunk k across the PCIe link: each chunk's copy is booked on the
// transfer's stream at the chunk's arrival instant, and the closing End
// waits for the stream to drain.
func (s *Server) serveStreamToDevice(conn transport.Conn, ctx *gpu.Context, dev *gpu.Device, stream uint32, begin *protocol.MemcpyStreamBeginRequest) error {
	asm, err := protocol.NewChunkAssembler(begin.Total, begin.ChunkSize, nil)
	if err != nil {
		// Decoded Begin fields are pre-validated; reaching here is a bug.
		return err
	}
	var opErr error
	for {
		payload, at, err := recvArrival(conn, dev)
		if err != nil {
			return fmt.Errorf("rcuda: stream recv: %w", err)
		}
		req, err := protocol.DecodeRequest(payload)
		if err != nil {
			return fmt.Errorf("rcuda: malformed stream message: %w", err)
		}
		switch r := req.(type) {
		case *protocol.MemcpyStreamChunk:
			off, addErr := asm.Add(r)
			if addErr != nil {
				if opErr == nil {
					opErr = addErr
				}
				continue // keep draining to the End message
			}
			if opErr == nil {
				_, copyErr := ctx.CopyToDeviceAsyncAt(begin.Ptr+uint32(off), r.Data, stream, at)
				opErr = copyErr
			}
		case *protocol.MemcpyStreamEndRequest:
			// Sequence violations are reported in the End status rather
			// than killing the session: frames stay message-aligned, so
			// the dialogue is still coherent after a rejected transfer.
			if opErr == nil {
				opErr = asm.Finish(r)
			}
			if syncErr := ctx.StreamDestroy(stream); opErr == nil {
				opErr = syncErr
			}
			return conn.Send(&protocol.MemcpyStreamEndResponse{Err: code(opErr)})
		default:
			return fmt.Errorf("rcuda: %v inside a chunked transfer", req.Op())
		}
	}
}

// serveStreamToHost streams device memory back to the client. Every
// chunk's PCIe read is booked up front — back to back on the transfer's
// stream, starting at the acknowledged Begin — and each chunk is sent the
// moment its read completes, so chunk k's network transfer overlaps chunk
// k+1's PCIe read on the simulated clock.
func (s *Server) serveStreamToHost(conn transport.Conn, ctx *gpu.Context, dev *gpu.Device, stream uint32, begin *protocol.MemcpyStreamBeginRequest) error {
	start := dev.Clock().Now()
	n := protocol.Chunks(begin.Total, begin.ChunkSize)
	chunk := &protocol.MemcpyStreamChunk{}
	var sendErr error
	for seq := uint32(0); seq < n; seq++ {
		off := seq * begin.ChunkSize
		size := begin.Total - off
		if size > begin.ChunkSize {
			size = begin.ChunkSize
		}
		buf, _ := transport.GetBuffer(int(size))
		buf = buf[:size]
		ready, err := ctx.CopyToHostAsyncAt(buf, begin.Ptr+off, stream, start)
		if err != nil {
			// Unreachable after Begin validation short of a destroyed
			// context; the client still expects n chunks, so the session
			// cannot be salvaged.
			return fmt.Errorf("rcuda: chunked read at %#x: %w", begin.Ptr+off, err)
		}
		chunk.Seq, chunk.Data = seq, buf
		sendErr = sendReady(conn, chunk, ready)
		transport.PutBuffer(buf)
		if sendErr != nil {
			return fmt.Errorf("rcuda: stream chunk %d send: %w", seq, sendErr)
		}
	}
	opErr := ctx.StreamDestroy(stream)
	return conn.Send(&protocol.MemcpyStreamEndResponse{Err: code(opErr)})
}
