package rcuda

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"rcuda/internal/blas"
	"rcuda/internal/calib"
	"rcuda/internal/cudart"
	"rcuda/internal/gpu"
	"rcuda/internal/kernels"
	"rcuda/internal/netsim"
	"rcuda/internal/protocol"
	"rcuda/internal/transport"
	"rcuda/internal/vclock"
)

func moduleImage(t *testing.T, cs calib.CaseStudy) []byte {
	t.Helper()
	mod, err := kernels.ModuleFor(cs)
	if err != nil {
		t.Fatal(err)
	}
	img, err := mod.Binary()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// startSimSession spins up a server on one end of a simulated pipe and
// returns an opened client on the other end.
func startSimSession(t *testing.T, link *netsim.Link) (*Client, *gpu.Device, *vclock.Sim, func()) {
	t.Helper()
	clk := vclock.NewSim()
	dev := gpu.New(gpu.Config{Clock: clk})
	srv := NewServer(dev)
	cliEnd, srvEnd := transport.Pipe(link, clk, nil)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := srv.ServeConn(srvEnd); err != nil {
			t.Errorf("server: %v", err)
		}
	}()
	client, err := Open(cliEnd, moduleImage(t, calib.MM))
	if err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		_ = client.Close()
		wg.Wait()
	}
	return client, dev, clk, cleanup
}

func TestRemoteGEMMOverSimulatedNetwork(t *testing.T) {
	client, dev, _, cleanup := startSimSession(t, netsim.IB40G())
	defer cleanup()

	const m = 32
	rng := rand.New(rand.NewSource(1))
	a := make([]float32, m*m)
	b := make([]float32, m*m)
	for i := range a {
		a[i] = rng.Float32()
		b[i] = rng.Float32()
	}
	nbytes := uint32(4 * m * m)
	aPtr, err := client.Malloc(nbytes)
	if err != nil {
		t.Fatal(err)
	}
	bPtr, err := client.Malloc(nbytes)
	if err != nil {
		t.Fatal(err)
	}
	cPtr, err := client.Malloc(nbytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.MemcpyToDevice(aPtr, cudart.Float32Bytes(a)); err != nil {
		t.Fatal(err)
	}
	if err := client.MemcpyToDevice(bPtr, cudart.Float32Bytes(b)); err != nil {
		t.Fatal(err)
	}
	if err := client.Launch(kernels.SgemmKernel, cudart.Dim3{X: 2, Y: 2}, cudart.Dim3{X: 16, Y: 16}, 0,
		gpu.PackParams(uint32(aPtr), uint32(bPtr), uint32(cPtr), m)); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, nbytes)
	if err := client.MemcpyToHost(out, cPtr); err != nil {
		t.Fatal(err)
	}
	want := make([]float32, m*m)
	if err := blas.SgemmNaive(m, m, m, a, b, want); err != nil {
		t.Fatal(err)
	}
	for i, v := range cudart.BytesFloat32(out) {
		if math.Abs(float64(v-want[i])) > 1e-3 {
			t.Fatalf("C[%d] = %g, want %g", i, v, want[i])
		}
	}
	for _, p := range []cudart.DevicePtr{aPtr, bPtr, cPtr} {
		if err := client.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := dev.MemoryInUse(); got != 0 {
		t.Fatalf("device memory in use after frees: %d", got)
	}
}

func TestRemoteErrorsCarryCudaCodes(t *testing.T) {
	client, _, _, cleanup := startSimSession(t, netsim.IB40G())
	defer cleanup()

	if _, err := client.Malloc(0); !errors.Is(err, cudart.ErrorInvalidValue) {
		t.Fatalf("Malloc(0) = %v, want cudaErrorInvalidValue", err)
	}
	if err := client.Free(cudart.DevicePtr(0xdead)); !errors.Is(err, cudart.ErrorInvalidDevicePointer) {
		t.Fatalf("bad Free = %v, want cudaErrorInvalidDevicePointer", err)
	}
	if err := client.Launch("no_such_kernel", cudart.Dim3{}, cudart.Dim3{}, 0, nil); !errors.Is(err, cudart.ErrorLaunchFailure) {
		t.Fatalf("bad launch = %v, want cudaErrorLaunchFailure", err)
	}
	if err := client.MemcpyToDevice(0, []byte{1}); !errors.Is(err, cudart.ErrorInvalidDevicePointer) {
		t.Fatalf("null memcpy = %v, want cudaErrorInvalidDevicePointer", err)
	}
	if err := client.DeviceSynchronize(); err != nil {
		t.Fatalf("sync: %v", err)
	}
}

func TestHandshakeCapability(t *testing.T) {
	client, _, _, cleanup := startSimSession(t, netsim.GigaE())
	defer cleanup()
	maj, min := client.Capability()
	if maj != 1 || min != 3 {
		t.Fatalf("capability %d.%d, want 1.3", maj, min)
	}
}

func TestServerRejectsUnknownModule(t *testing.T) {
	clk := vclock.NewSim()
	dev := gpu.New(gpu.Config{Clock: clk})
	srv := NewServer(dev)
	cliEnd, srvEnd := transport.Pipe(netsim.IB40G(), clk, nil)

	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(srvEnd) }()
	_, err := Open(cliEnd, []byte("not a module image"))
	if err == nil {
		t.Fatal("Open with a bogus module must fail")
	}
	if srvErr := <-done; srvErr == nil {
		t.Fatal("server must report the failed handshake")
	}
	_ = cliEnd.Close()
	if got := dev.MemoryInUse(); got != 0 {
		t.Fatalf("leaked %d bytes after failed handshake", got)
	}
}

func TestAbruptDisconnectReleasesResources(t *testing.T) {
	clk := vclock.NewSim()
	dev := gpu.New(gpu.Config{Clock: clk})
	srv := NewServer(dev)
	cliEnd, srvEnd := transport.Pipe(netsim.IB40G(), clk, nil)

	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(srvEnd) }()
	client, err := Open(cliEnd, moduleImage(t, calib.MM))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Malloc(1 << 20); err != nil {
		t.Fatal(err)
	}
	// Drop the transport without finalizing, as a crashed client would.
	_ = cliEnd.Close()
	if err := <-done; err != nil {
		t.Fatalf("server should treat disconnect as orderly: %v", err)
	}
	if got := dev.MemoryInUse(); got != 0 {
		t.Fatalf("server leaked %d bytes after abrupt disconnect", got)
	}
}

func TestClientUseAfterClose(t *testing.T) {
	client, _, _, cleanup := startSimSession(t, netsim.IB40G())
	cleanup()
	if _, err := client.Malloc(64); err == nil {
		t.Fatal("calls after Close must fail")
	}
	if err := client.Close(); err != nil {
		t.Fatal("Close must be idempotent")
	}
	_ = client
}

func TestSimulatedTimingMatchesLinkModel(t *testing.T) {
	link := netsim.IB40G()
	client, _, clk, cleanup := startSimSession(t, link)
	defer cleanup()

	before := clk.Now()
	ptr, err := client.Malloc(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := clk.Now() - before
	// A cudaMalloc is an 8-byte request plus an 8-byte response.
	want := link.WireTime(8) * 2
	if elapsed != want {
		t.Fatalf("remote malloc took %v of simulated time, want %v", elapsed, want)
	}
	_ = client.Free(ptr)
}

// Observer recording for trace support.
type recordingObserver struct {
	calls []protocol.Op
	sent  int
	recv  int
}

func (r *recordingObserver) Call(op protocol.Op, sent, recv int) {
	r.calls = append(r.calls, op)
	r.sent += sent
	r.recv += recv
}

func TestObserverSeesEveryCall(t *testing.T) {
	clk := vclock.NewSim()
	dev := gpu.New(gpu.Config{Clock: clk})
	srv := NewServer(dev)
	cliEnd, srvEnd := transport.Pipe(netsim.IB40G(), clk, nil)
	go func() { _ = srv.ServeConn(srvEnd) }()

	obs := &recordingObserver{}
	client, err := Open(cliEnd, moduleImage(t, calib.MM), WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	ptr, _ := client.Malloc(256)
	_ = client.MemcpyToDevice(ptr, make([]byte, 256))
	_ = client.Free(ptr)
	_ = client.Close()

	want := []protocol.Op{protocol.OpInit, protocol.OpMalloc, protocol.OpMemcpyToDevice, protocol.OpFree, protocol.OpFinalize}
	if len(obs.calls) != len(want) {
		t.Fatalf("observed %v, want %v", obs.calls, want)
	}
	for i := range want {
		if obs.calls[i] != want[i] {
			t.Fatalf("call %d = %v, want %v", i, obs.calls[i], want[i])
		}
	}
	// Init sends x+4 = 21486+4 bytes; Table I accounting must accumulate.
	if obs.sent < 21490 {
		t.Fatalf("observer saw %d bytes sent, want at least the module", obs.sent)
	}
}

func TestServeOverRealTCP(t *testing.T) {
	dev := gpu.New(gpu.Config{Clock: vclock.NewWall()})
	srv := NewServer(dev)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	// Several concurrent clients share the daemon, each on its own
	// context — the paper's time-multiplexing of one GPU.
	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			errs <- runRemoteGEMM(ln.Addr().String(), seed)
		}(int64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		t.Fatal(err)
	}
	if got := dev.MemoryInUse(); got != 0 {
		t.Fatalf("device memory leaked across sessions: %d", got)
	}
}

func runRemoteGEMM(addr string, seed int64) error {
	conn, err := transport.DialTCP(addr)
	if err != nil {
		return err
	}
	mod, err := kernels.ModuleFor(calib.MM)
	if err != nil {
		return err
	}
	img, err := mod.Binary()
	if err != nil {
		return err
	}
	client, err := Open(conn, img)
	if err != nil {
		return err
	}
	defer client.Close()

	const m = 16
	rng := rand.New(rand.NewSource(seed))
	a := make([]float32, m*m)
	b := make([]float32, m*m)
	for i := range a {
		a[i] = rng.Float32()
		b[i] = rng.Float32()
	}
	nbytes := uint32(4 * m * m)
	aPtr, err := client.Malloc(nbytes)
	if err != nil {
		return err
	}
	bPtr, err := client.Malloc(nbytes)
	if err != nil {
		return err
	}
	cPtr, err := client.Malloc(nbytes)
	if err != nil {
		return err
	}
	if err := client.MemcpyToDevice(aPtr, cudart.Float32Bytes(a)); err != nil {
		return err
	}
	if err := client.MemcpyToDevice(bPtr, cudart.Float32Bytes(b)); err != nil {
		return err
	}
	if err := client.Launch(kernels.SgemmKernel, cudart.Dim3{X: 1}, cudart.Dim3{X: 16}, 0,
		gpu.PackParams(uint32(aPtr), uint32(bPtr), uint32(cPtr), m)); err != nil {
		return err
	}
	out := make([]byte, nbytes)
	if err := client.MemcpyToHost(out, cPtr); err != nil {
		return err
	}
	want := make([]float32, m*m)
	if err := blas.SgemmNaive(m, m, m, a, b, want); err != nil {
		return err
	}
	for i, v := range cudart.BytesFloat32(out) {
		if math.Abs(float64(v-want[i])) > 1e-3 {
			return errors.New("remote GEMM result mismatch")
		}
	}
	for _, p := range []cudart.DevicePtr{aPtr, bPtr, cPtr} {
		if err := client.Free(p); err != nil {
			return err
		}
	}
	return nil
}

func TestServerCloseIsIdempotentAndFast(t *testing.T) {
	dev := gpu.New(gpu.Config{Clock: vclock.NewWall()})
	srv := NewServer(dev)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	time.Sleep(20 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after Close", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	// Serving again on a closed server must fail immediately.
	ln2, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln2.Close()
	if err := srv.Serve(ln2); err == nil {
		t.Fatal("Serve on closed server must fail")
	}
}

func TestServerStats(t *testing.T) {
	clk := vclock.NewSim()
	dev := gpu.New(gpu.Config{Clock: clk})
	srv := NewServer(dev)
	if st := srv.Stats(); st.SessionsStarted != 0 || st.Requests != 0 {
		t.Fatalf("fresh server stats %+v", st)
	}
	cliEnd, srvEnd := transport.Pipe(netsim.IB40G(), clk, nil)
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(srvEnd) }()
	client, err := Open(cliEnd, moduleImage(t, calib.MM))
	if err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.SessionsActive != 1 {
		t.Fatalf("active sessions = %d, want 1", st.SessionsActive)
	}
	ptr, _ := client.Malloc(256)
	_ = client.MemcpyToDevice(ptr, make([]byte, 256))
	_ = client.Free(ptr)
	_ = client.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.SessionsStarted != 1 || st.SessionsActive != 0 {
		t.Fatalf("session accounting %+v", st)
	}
	// malloc + memcpy + free + finalize = 4 post-handshake requests.
	if st.Requests != 4 {
		t.Fatalf("requests = %d, want 4", st.Requests)
	}
	// Inbound traffic includes the 21490-byte module plus the memcpy.
	if st.BytesReceived < 21490+256 {
		t.Fatalf("bytes received = %d, too small", st.BytesReceived)
	}
	if st.BytesSent == 0 {
		t.Fatal("server must have sent responses")
	}
}

// A stress test: many goroutines hammer one device through separate
// sessions while the race detector watches.
func TestConcurrentSessionsStress(t *testing.T) {
	dev := gpu.New(gpu.Config{Clock: vclock.NewWall()})
	srv := NewServer(dev)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				if err := runRemoteGEMM(ln.Addr().String(), seed*10+int64(rep)); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(int64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	<-serveDone
	if dev.MemoryInUse() != 0 {
		t.Fatalf("leaked %d bytes across %d stress sessions", dev.MemoryInUse(), workers*3)
	}
	if st := srv.Stats(); st.SessionsStarted != workers*3 {
		t.Fatalf("sessions started = %d, want %d", st.SessionsStarted, workers*3)
	}
}

// rawMessage lets tests inject arbitrary bytes as a protocol frame.
type rawMessage []byte

func (m rawMessage) Encode(dst []byte) []byte { return append(dst, m...) }
func (m rawMessage) WireSize() int            { return len(m) }

// A corrupt frame after the handshake must end the session with an error —
// and still release every server-side resource.
func TestServerRejectsCorruptFrameAndCleansUp(t *testing.T) {
	clk := vclock.NewSim()
	dev := gpu.New(gpu.Config{Clock: clk})
	srv := NewServer(dev)
	cliEnd, srvEnd := transport.Pipe(netsim.IB40G(), clk, nil)
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(srvEnd) }()

	client, err := Open(cliEnd, moduleImage(t, calib.MM))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Malloc(1 << 20); err != nil {
		t.Fatal(err)
	}
	// Inject garbage directly on the transport.
	if err := cliEnd.Send(rawMessage{0xde, 0xad, 0xbe, 0xef, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("server must report the malformed request")
	}
	_ = cliEnd.Close()
	if got := dev.MemoryInUse(); got != 0 {
		t.Fatalf("server leaked %d bytes after protocol error", got)
	}
}

// A truncated frame (valid op, wrong length) is equally fatal and clean.
func TestServerRejectsTruncatedRequest(t *testing.T) {
	clk := vclock.NewSim()
	dev := gpu.New(gpu.Config{Clock: clk})
	srv := NewServer(dev)
	cliEnd, srvEnd := transport.Pipe(netsim.IB40G(), clk, nil)
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(srvEnd) }()

	if _, err := Open(cliEnd, moduleImage(t, calib.MM)); err != nil {
		t.Fatal(err)
	}
	// OpMalloc with a missing size field.
	truncated := (&protocol.MallocRequest{Size: 8}).Encode(nil)[:4]
	if err := cliEnd.Send(rawMessage(truncated)); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("server must report the truncated request")
	}
	_ = cliEnd.Close()
	if dev.MemoryInUse() != 0 {
		t.Fatal("resources leaked after truncated request")
	}
}

func TestRemoteEventSynchronize(t *testing.T) {
	client, _, _, cleanup := startSimSession(t, netsim.IB40G())
	defer cleanup()
	e, err := client.EventCreate()
	if err != nil {
		t.Fatal(err)
	}
	if err := client.EventRecord(e, 0); err != nil {
		t.Fatal(err)
	}
	if err := client.EventSynchronize(e); err != nil {
		t.Fatal(err)
	}
	if err := client.EventSynchronize(99); !errors.Is(err, cudart.ErrorInvalidValue) {
		t.Fatalf("sync on bogus event = %v", err)
	}
	if err := client.EventDestroy(e); err != nil {
		t.Fatal(err)
	}
}

// lockedBuffer synchronizes the test's log sink against the server's
// session goroutines.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func (b *lockedBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

func TestServerLoggerReceivesSessionErrors(t *testing.T) {
	var buf lockedBuffer
	logger := log.New(&buf, "", 0)
	dev := gpu.New(gpu.Config{Clock: vclock.NewWall()})
	srv := NewServer(dev, WithLogger(logger))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	// A client that sends garbage instead of an init frame.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	tc := transport.NewTCPConn(conn)
	if err := tc.Send(rawMessage{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	_ = tc.Close()

	// Give the session goroutine a moment to log, then shut down.
	deadline := time.Now().Add(2 * time.Second)
	for buf.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	if !strings.Contains(buf.String(), "session") {
		t.Fatalf("logger saw nothing about the failed session: %q", buf.String())
	}
}

func TestMapToCudaErrorTable(t *testing.T) {
	cases := map[error]cudart.Error{
		gpu.ErrOutOfMemory:      cudart.ErrorMemoryAllocation,
		gpu.ErrZeroSize:         cudart.ErrorInvalidValue,
		gpu.ErrInvalidDevPtr:    cudart.ErrorInvalidDevicePointer,
		gpu.ErrUnknownKernel:    cudart.ErrorLaunchFailure,
		gpu.ErrInvalidLaunch:    cudart.ErrorInvalidConfiguration,
		gpu.ErrInvalidStream:    cudart.ErrorInvalidValue,
		gpu.ErrInvalidEvent:     cudart.ErrorInvalidValue,
		gpu.ErrContextDestroyed: cudart.ErrorInitialization,
		gpu.ErrUnknownModule:    cudart.ErrorInitialization,
		errors.New("anything"):  cudart.ErrorUnknown,
	}
	for in, want := range cases {
		if got := mapToCudaError(fmt.Errorf("wrapped: %w", in)); got != error(want) {
			t.Fatalf("mapToCudaError(%v) = %v, want %v", in, got, want)
		}
	}
	if mapToCudaError(nil) != nil {
		t.Fatal("nil must stay nil")
	}
	// Pre-mapped cudart errors pass through unchanged.
	if mapToCudaError(cudart.ErrorInvalidValue) != error(cudart.ErrorInvalidValue) {
		t.Fatal("cudart errors must pass through")
	}
}

func TestRemoteLaunchConfigurationValidation(t *testing.T) {
	client, _, _, cleanup := startSimSession(t, netsim.IB40G())
	defer cleanup()
	err := client.Launch(kernels.SgemmKernel, cudart.Dim3{X: 1}, cudart.Dim3{X: 64, Y: 64}, 0, nil)
	if !errors.Is(err, cudart.ErrorInvalidConfiguration) {
		t.Fatalf("4096-thread block = %v, want cudaErrorInvalidConfiguration", err)
	}
}
