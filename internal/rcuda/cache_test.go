package rcuda

import (
	"testing"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/faults"
	"rcuda/internal/gpu"
	"rcuda/internal/netsim"
	"rcuda/internal/vclock"
)

// TestDeviceQueryCacheServesRepeatedPolls pins the cache behavior an
// inference loop depends on: repeated device count/properties polls cost
// one round trip each in total, not each time.
func TestDeviceQueryCacheServesRepeatedPolls(t *testing.T) {
	client, _, cliEnd, cleanup := startBatchSession(t, netsim.GigaE(), nil, WithBatching(0, 0))
	defer cleanup()

	before := cliEnd.Stats().MessagesSent
	var firstName string
	for i := 0; i < 5; i++ {
		n, err := client.DeviceCount()
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("device count %d, want 1", n)
		}
		p, err := client.DeviceProperties()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			firstName = p.Name
		} else if p.Name != firstName {
			t.Fatalf("cached properties drifted: %q vs %q", p.Name, firstName)
		}
	}
	if sent := cliEnd.Stats().MessagesSent - before; sent != 2 {
		t.Fatalf("10 polls sent %d messages, want 2", sent)
	}
	cs := client.Stats()
	if cs.CacheMisses != 2 || cs.CacheHits != 8 {
		t.Fatalf("cache stats %+v, want 2 misses and 8 hits", cs)
	}
}

// TestCachePerDeviceProperties checks that properties are cached per
// selected device on a multi-GPU server, keyed by cudaSetDevice.
func TestCachePerDeviceProperties(t *testing.T) {
	clk := vclock.NewSim()
	second := gpu.New(gpu.Config{Clock: clk, Name: "Tesla C1060 (second)"})
	srvOpts := []ServerOption{WithDevices(second)}
	client, _, _, cleanup := startBatchSession(t, netsim.GigaE(), srvOpts, WithBatching(0, 0))
	defer cleanup()

	if err := client.SetDevice(1); err != nil {
		t.Fatal(err)
	}
	p1, err := client.DeviceProperties()
	if err != nil {
		t.Fatal(err)
	}
	if p1.Name != "Tesla C1060 (second)" {
		t.Fatalf("device 1 properties %q", p1.Name)
	}
	if err := client.SetDevice(0); err != nil {
		t.Fatal(err)
	}
	p0, err := client.DeviceProperties()
	if err != nil {
		t.Fatal(err)
	}
	if p0.Name == p1.Name {
		t.Fatal("device 0 served device 1's cached properties")
	}
	// Both devices cached now; two more polls are pure hits.
	if _, err := client.DeviceProperties(); err != nil {
		t.Fatal(err)
	}
	if err := client.SetDevice(1); err != nil {
		t.Fatal(err)
	}
	if _, err := client.DeviceProperties(); err != nil {
		t.Fatal(err)
	}
	cs := client.Stats()
	if cs.CacheMisses != 2 || cs.CacheHits != 2 {
		t.Fatalf("cache stats %+v, want 2 misses and 2 hits", cs)
	}
}

// TestCacheInvalidatedAcrossReconnect checks the coherence rule: a cache
// filled over one connection must not survive onto its replacement, even
// when the reattach lands on the same daemon.
func TestCacheInvalidatedAcrossReconnect(t *testing.T) {
	_, addr, cleanup := startTCPServer(t)
	defer cleanup()

	// Op 4/5 fills the properties cache; op 6: sync send; op 7: sync recv —
	// inject the reset there to force a reattach.
	plan := faults.Script(
		faults.Injection{Op: opsOpenDurable + 3, Dir: faults.DirRecv, Decision: faults.Decision{Kind: faults.KindReset}},
	)
	dial := faultyDialer(addr, plan)
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	client, err := Open(conn, moduleImage(t, calib.MM),
		WithBatching(0, 0), WithRetry(4, 100*time.Microsecond), WithReconnect(dial))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if _, err := client.DeviceProperties(); err != nil {
		t.Fatal(err)
	}
	if err := client.DeviceSynchronize(); err != nil {
		t.Fatalf("sync through injected reset: %v", err)
	}
	if plan.Injected() == 0 {
		t.Fatal("scripted fault never fired; op indices drifted")
	}
	if _, err := client.DeviceProperties(); err != nil {
		t.Fatal(err)
	}
	cs := client.Stats()
	if cs.Reconnects != 1 {
		t.Fatalf("client stats %+v, want one reconnect", cs)
	}
	if cs.CacheMisses != 2 || cs.CacheHits != 0 {
		t.Fatalf("cache stats %+v: the reconnect must have invalidated the cache", cs)
	}
}
