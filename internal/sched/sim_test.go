package sched

import (
	"testing"
	"time"
)

// starvationConfig is the benchmark scenario at test scale: one greedy
// bulk tenant with a deep pipeline against latency-sensitive realtime
// tenants issuing sporadic small ops.
func starvationConfig(policy Policy) SimConfig {
	cfg := SimConfig{
		Seed:     11,
		Policy:   policy,
		Duration: 2 * time.Second,
		Tenants: []TenantSpec{
			{Name: "bulk", Class: Batch, OpCost: 2 * time.Millisecond, Backlog: 32},
		},
	}
	for i := 0; i < 4; i++ {
		cfg.Tenants = append(cfg.Tenants, TenantSpec{
			Name:    "rt",
			Class:   Realtime,
			OpCost:  200 * time.Microsecond,
			MeanGap: 25 * time.Millisecond,
		})
	}
	return cfg
}

// TestStarvationScenarioSmoke: WFQ must cut the realtime class's p99 queue
// wait by a large factor at near-identical aggregate throughput — the
// BENCH_sched.json acceptance property at reduced scale.
func TestStarvationScenarioSmoke(t *testing.T) {
	fifo := Simulate(starvationConfig(FIFO))
	wfq := Simulate(starvationConfig(WFQ))

	p99 := func(r *SimResult, c Class) time.Duration {
		for _, cr := range r.Classes {
			if cr.Class == c {
				return cr.WaitP99
			}
		}
		t.Fatalf("%v has no class %v row", r.Policy, c)
		return 0
	}
	fp, wp := p99(fifo, Realtime), p99(wfq, Realtime)
	if wp <= 0 || fp <= 0 {
		t.Fatalf("degenerate p99s: fifo=%v wfq=%v", fp, wp)
	}
	if ratio := float64(fp) / float64(wp); ratio < 5 {
		t.Fatalf("WFQ p99 improvement %.1fx, want >= 5x (fifo=%v wfq=%v)", ratio, fp, wp)
	}
	// Equal aggregate throughput: the device is saturated by the bulk
	// tenant either way.
	tf, tw := float64(fifo.TotalServed), float64(wfq.TotalServed)
	if diff := (tw - tf) / tf; diff < -0.10 || diff > 0.10 {
		t.Fatalf("throughput moved %.1f%%: fifo=%d wfq=%d", diff*100, fifo.TotalServed, wfq.TotalServed)
	}
	if wfq.Preemptions == 0 {
		t.Fatal("WFQ starvation run recorded no preemptions")
	}
}

// TestSimulateDeterministic: byte-identical results across repeated runs
// of the same seed, and different seeds actually differ.
func TestSimulateDeterministic(t *testing.T) {
	a := Simulate(starvationConfig(WFQ))
	b := Simulate(starvationConfig(WFQ))
	if a.TotalServed != b.TotalServed || a.Preemptions != b.Preemptions || a.BusyFrac != b.BusyFrac {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	for i := range a.Tenants {
		if a.Tenants[i] != b.Tenants[i] {
			t.Fatalf("tenant %d diverged: %+v vs %+v", i, a.Tenants[i], b.Tenants[i])
		}
	}
	cfg := starvationConfig(WFQ)
	cfg.Seed++
	c := Simulate(cfg)
	same := c.TotalServed == a.TotalServed
	for i := range c.Tenants {
		if c.Tenants[i] != a.Tenants[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical trajectories")
	}
}

// TestSimulateEmpty: degenerate configs return an empty result, not a hang.
func TestSimulateEmpty(t *testing.T) {
	if r := Simulate(SimConfig{}); r.TotalServed != 0 || len(r.Tenants) != 0 {
		t.Fatalf("empty config produced %+v", r)
	}
}
