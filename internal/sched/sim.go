package sched

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"rcuda/internal/stats"
)

// This file is the scheduler's deterministic proving ground: a
// goroutine-free event-driven simulation of one device shared by a tenant
// mix, driving the exact same decision core the live Queue uses. Every
// random draw comes from per-tenant streams derived from one master seed,
// so a scenario is a pure function of its SimConfig — the property
// BENCH_sched.json's two-run determinism check relies on.

// TenantSpec describes one simulated session.
type TenantSpec struct {
	// Name labels the tenant in results.
	Name string
	// Class and Weight are the tenant's scheduling parameters.
	Class  Class
	Weight uint32
	// OpCost is the service time of each of the tenant's ops.
	OpCost time.Duration
	// Backlog > 0 makes the tenant closed-loop with that many ops always
	// queued — the greedy bulk tenant with a deep async pipeline.
	Backlog int
	// MeanGap > 0 makes the tenant open-loop: single ops arrive with
	// exponentially distributed gaps of this mean — the latency-sensitive
	// tenant issuing sporadic small launches.
	MeanGap time.Duration
}

// SimConfig parameterizes one Simulate run.
type SimConfig struct {
	// Seed derives every tenant's arrival stream.
	Seed int64
	// Policy and ClassWeights configure the scheduler under test.
	Policy       Policy
	ClassWeights [NumClasses]uint32
	// Duration is the arrival window: ops arriving inside it are counted,
	// the queue then drains.
	Duration time.Duration
	// Tenants is the mix sharing the device.
	Tenants []TenantSpec
}

// TenantResult is one tenant's outcome.
type TenantResult struct {
	Name   string
	Class  Class
	Served uint64
	// Wait statistics for the tenant's ops: arrival to grant.
	WaitP50  time.Duration
	WaitP99  time.Duration
	WaitMax  time.Duration
	WaitMean time.Duration
}

// ClassResult merges the tenants of one class.
type ClassResult struct {
	Class    Class
	Served   uint64
	WaitP50  time.Duration
	WaitP99  time.Duration
	WaitMax  time.Duration
	WaitMean time.Duration
}

// SimResult is a Simulate run's outcome.
type SimResult struct {
	Policy      Policy
	Tenants     []TenantResult
	Classes     []ClassResult
	TotalServed uint64
	// BusyFrac is the device's utilization over the arrival window —
	// equal-aggregate-throughput comparisons key off it and TotalServed.
	BusyFrac float64
	// Preemptions counts op-boundary yields across all classes.
	Preemptions uint64
}

// simEvent is a heap entry: an op arrival or a service completion.
type simEvent struct {
	at  time.Duration
	seq uint64 // deterministic tie-break for equal instants
	// complete is true for a service completion of the running op;
	// otherwise this is tenant's next arrival.
	complete bool
	tenant   *simTenant
}

type simEventHeap []simEvent

func (h simEventHeap) Len() int { return len(h) }
func (h simEventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h simEventHeap) Swap(i, j int)    { h[i], h[j] = h[j], h[i] }
func (h *simEventHeap) Push(x any)      { *h = append(*h, x.(simEvent)) }
func (h *simEventHeap) Pop() any        { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *simEventHeap) push(e simEvent) { heap.Push(h, e) }
func (h *simEventHeap) pop() simEvent   { return heap.Pop(h).(simEvent) }

// simTenant is one tenant's live state. A closed-loop tenant keeps its
// whole Backlog enqueued in the core — the deep async pipeline whose queue
// depth is exactly what FIFO makes everyone else wait behind.
type simTenant struct {
	flow
	spec   TenantSpec
	rng    *rand.Rand
	waits  *stats.DurationHistogram
	served uint64
}

// Simulate runs the tenant mix against the scheduler and reports per-tenant
// and per-class waits. It is deterministic: same config, same result.
func Simulate(cfg SimConfig) *SimResult {
	if cfg.Duration <= 0 || len(cfg.Tenants) == 0 {
		return &SimResult{Policy: cfg.Policy}
	}
	c := newCore(Config{Policy: cfg.Policy, ClassWeights: cfg.ClassWeights})
	var evq simEventHeap
	var evSeq uint64
	schedule := func(at time.Duration, complete bool, t *simTenant) {
		evq.push(simEvent{at: at, seq: evSeq, complete: complete, tenant: t})
		evSeq++
	}

	tenants := make([]*simTenant, len(cfg.Tenants))
	for i, spec := range cfg.Tenants {
		t := &simTenant{
			spec:  spec,
			rng:   rand.New(rand.NewSource(cfg.Seed + int64(i) + 1)),
			waits: stats.NewDurationHistogram(),
		}
		t.flow = flow{class: spec.Class % NumClasses, weight: spec.Weight}
		t.owner = t
		tenants[i] = t
		// The closed-loop pipeline is full from t=0: every backlog op sits
		// in the core at once, so arrival-order policies see (and charge
		// latecomers for) the whole pipeline depth.
		for k := 0; k < spec.Backlog; k++ {
			c.enqueue(&t.flow, spec.OpCost, 0)
		}
		if spec.MeanGap > 0 {
			schedule(t.nextGap(), false, t)
		}
	}

	var now time.Duration
	var busy time.Duration
	var running *simTenant
	var runningOp *op

	// start grants o the device at instant now.
	start := func(o *op) {
		t := o.f.owner.(*simTenant)
		t.waits.Record(now - o.enqueuedAt)
		t.served++
		running = t
		runningOp = o
		end := now + t.spec.OpCost
		if capped := cfg.Duration; now < capped {
			w := t.spec.OpCost
			if end > capped {
				w = capped - now
			}
			busy += w
		}
		schedule(end, true, t)
	}
	// dispatch starts the next granted op if the device is idle.
	dispatch := func() {
		if running != nil {
			return
		}
		if o := c.pick(); o != nil {
			start(o)
		}
	}

	// Kick the device: a pure closed-loop mix has no arrival events, only
	// the completion chain this first grant starts.
	dispatch()

	for evq.Len() > 0 {
		ev := evq.pop()
		now = ev.at
		t := ev.tenant
		if !ev.complete {
			// Open-loop arrival of one op.
			if now > cfg.Duration {
				continue // arrival window over; stop generating
			}
			c.enqueue(&t.flow, t.spec.OpCost, now)
			schedule(now+t.nextGap(), false, t)
			dispatch()
			continue
		}
		// Completion of t's running op.
		c.charge(runningOp, t.spec.OpCost)
		running = nil
		runningOp = nil
		if t.spec.Backlog > 0 && now < cfg.Duration {
			// Closed loop: the pipeline refills instantly at the boundary.
			c.enqueue(&t.flow, t.spec.OpCost, now)
		}
		dispatch()
	}

	res := &SimResult{Policy: cfg.Policy}
	classW := [NumClasses]*stats.DurationHistogram{}
	classServed := [NumClasses]uint64{}
	for i := range classW {
		classW[i] = stats.NewDurationHistogram()
	}
	for _, t := range tenants {
		name := t.spec.Name
		if name == "" {
			name = fmt.Sprintf("tenant-%s", t.class)
		}
		res.Tenants = append(res.Tenants, TenantResult{
			Name:     name,
			Class:    t.class,
			Served:   t.served,
			WaitP50:  t.waits.Percentile(50),
			WaitP99:  t.waits.Percentile(99),
			WaitMax:  t.waits.Max(),
			WaitMean: t.waits.Mean(),
		})
		res.TotalServed += t.served
		classW[t.class].Merge(t.waits)
		classServed[t.class] += t.served
	}
	for i := range classW {
		if classServed[i] == 0 {
			continue
		}
		res.Classes = append(res.Classes, ClassResult{
			Class:    Class(i),
			Served:   classServed[i],
			WaitP50:  classW[i].Percentile(50),
			WaitP99:  classW[i].Percentile(99),
			WaitMax:  classW[i].Max(),
			WaitMean: classW[i].Mean(),
		})
	}
	for i := range c.preempted {
		res.Preemptions += c.preempted[i]
	}
	res.BusyFrac = float64(busy) / float64(cfg.Duration)
	return res
}

// nextGap draws the tenant's next exponential interarrival gap.
func (t *simTenant) nextGap() time.Duration {
	g := time.Duration(t.rng.ExpFloat64() * float64(t.spec.MeanGap))
	if g < time.Nanosecond {
		g = time.Nanosecond
	}
	return g
}
