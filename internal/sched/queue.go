package sched

import (
	"errors"
	"sync"
	"time"

	"rcuda/internal/stats"
	"rcuda/internal/vclock"
)

// ErrQueueClosed reports an Acquire aborted by server shutdown.
var ErrQueueClosed = errors.New("sched: queue closed by shutdown")

// Session is a flow handle: one rcuda session's scheduling identity on one
// device's Queue. Handles are created with Queue.Register; an idle handle
// (no op pending, device not held) is referenced by nothing inside the
// Queue, so dropping it releases everything.
type Session struct {
	flow
	// cur is the session's in-flight op, from Acquire to the matching
	// Release. The rcuda dialogue is synchronous, so a live session has at
	// most one. Guarded by the Queue mutex.
	cur *op
	// grant is closed by Release when the queue hands this session the
	// device; remade for every contended Acquire. Guarded by the Queue
	// mutex.
	grant chan struct{}
	// granted distinguishes a won grant from an aborted wait when both
	// race; guarded by the Queue mutex.
	granted bool
}

// ClassStats is one class's slice of a Queue (or merged) snapshot.
type ClassStats struct {
	// Class names the row.
	Class Class
	// Served counts ops granted for the class; Preempted counts op
	// boundaries where a running session of this class yielded the device
	// to another flow while it had more work queued.
	Served    uint64
	Preempted uint64
	// Waits is the class's queue-wait distribution: the time from an op's
	// arrival at the scheduler to its grant, on the queue's clock.
	Waits *stats.DurationHistogram
}

// Queue schedules one device among its sessions. Every gated op passes
// through Acquire (blocks until the scheduler grants the device) and
// Release (yields it at the op boundary — the preemption point). The
// internal mutex is held only across bookkeeping, never across a blocking
// operation, so a stalled tenant cannot wedge the scheduler; rcuda-vet's
// locknet analyzer enforces this shape.
type Queue struct {
	clock vclock.Clock

	mu     sync.Mutex
	c      core
	holder *Session
	waits  [NumClasses]*stats.DurationHistogram
	served [NumClasses]uint64
}

// NewQueue creates a device queue. The clock is the device's own time
// source, so queue waits are measured in the same units the busy gauges
// accumulate; nil selects a wall clock.
func NewQueue(cfg Config, clock vclock.Clock) *Queue {
	if clock == nil {
		clock = vclock.NewWall()
	}
	q := &Queue{clock: clock, c: newCore(cfg)}
	for i := range q.waits {
		q.waits[i] = stats.NewDurationHistogram()
	}
	return q
}

// Register creates a flow handle with the given class and weight. A weight
// of 0 reads as 1; callers should have bounds-checked weight against
// MaxWeight (the wire decoders do).
func (q *Queue) Register(class Class, weight uint32) *Session {
	s := &Session{flow: flow{class: class % NumClasses, weight: weight}}
	s.owner = s
	return s
}

// SetClass re-classes a flow, taking effect from its next op. The rcuda
// server calls this when a session's hello upgrades its class mid-life,
// and when a migrated-in session restores its checkpointed class.
func (q *Queue) SetClass(s *Session, class Class, weight uint32) {
	q.mu.Lock()
	s.class = class % NumClasses
	s.weight = weight
	q.mu.Unlock()
}

// Acquire blocks until the scheduler grants s the device for one op of the
// given estimated cost. done aborts the wait (server shutdown). The caller
// must pair every successful Acquire with exactly one Release.
func (q *Queue) Acquire(s *Session, cost time.Duration, done <-chan struct{}) error {
	q.mu.Lock()
	if q.holder == nil {
		// Idle device: the queue invariant (Release grants the next waiter
		// before clearing the holder) means nobody is waiting — grant
		// immediately with zero wait.
		s.cur = q.c.enqueue(&s.flow, cost, 0)
		q.c.pick()
		q.holder = s
		q.served[s.class]++
		q.waits[s.class].Record(0)
		q.mu.Unlock()
		return nil
	}
	s.cur = q.c.enqueue(&s.flow, cost, q.clock.Now())
	s.grant = make(chan struct{})
	s.granted = false
	grant := s.grant
	q.mu.Unlock()

	select {
	case <-grant:
		return nil
	case <-done:
		q.mu.Lock()
		if s.granted {
			// Lost the race: the grant landed while shutdown woke us. Own
			// the device for a moment and pass it on cleanly.
			q.mu.Unlock()
			q.Release(s, 0)
			return ErrQueueClosed
		}
		q.c.remove(s.cur)
		s.cur = nil
		q.mu.Unlock()
		return ErrQueueClosed
	}
}

// Release yields the device at an op boundary, charging the op's actual
// service time to the flow and granting the next waiter, if any — the
// scheduler's preemption point.
func (q *Queue) Release(s *Session, actual time.Duration) {
	var grant chan struct{}
	q.mu.Lock()
	if s.cur != nil {
		q.c.charge(s.cur, actual)
		s.cur = nil
	}
	if next := q.c.pick(); next != nil {
		ns := next.f.owner.(*Session)
		wait := q.clock.Now() - next.enqueuedAt
		if wait < 0 {
			wait = 0
		}
		q.served[ns.class]++
		q.waits[ns.class].Record(wait)
		ns.granted = true
		q.holder = ns
		grant = ns.grant
	} else {
		q.holder = nil
	}
	q.mu.Unlock()
	if grant != nil {
		close(grant)
	}
}

// Snapshot returns the queue's per-class accounting. The histograms are
// deep copies, safe to merge across devices.
func (q *Queue) Snapshot() [NumClasses]ClassStats {
	var out [NumClasses]ClassStats
	q.mu.Lock()
	for i := range out {
		h := stats.NewDurationHistogram()
		h.Merge(q.waits[i])
		out[i] = ClassStats{
			Class:     Class(i),
			Served:    q.served[i],
			Preempted: q.c.preempted[i],
			Waits:     h,
		}
	}
	q.mu.Unlock()
	return out
}
