package sched

import (
	"sync"
	"time"
)

// OpKind buckets requests for cost estimation. The scheduler does not need
// per-kernel accuracy — WFQ self-corrects by charging actual service time
// at release (core.charge) — it needs a stable relative ordering of op
// costs so virtual finish tags are meaningful at enqueue time.
type OpKind uint8

// Op-cost buckets.
const (
	// KindLaunch covers kernel launches (sync and async).
	KindLaunch OpKind = iota
	// KindCopy covers host/device memory movement; its prior scales with
	// the payload via the device's PCIe timing model.
	KindCopy
	// KindSync covers synchronization points, whose cost is the drain of
	// previously queued asynchronous work.
	KindSync
	// KindBatch covers OpBatch frames: many launches charged as one
	// scheduling quantum (the preemption point stays between frames).
	KindBatch
	// KindOther covers cheap bookkeeping ops (mallocs, frees, events).
	KindOther
	numKinds
)

// CostModel estimates per-kind op service time. Priors come from the
// device's timing model (the perfmodel/gpu calibration: copies at PCIe
// bandwidth, launches at a nominal kernel time); every observed dispatch
// refines the kind's estimate with an EWMA, so the model tracks the actual
// tenant mix. Safe for concurrent use.
type CostModel struct {
	// copyTime converts a payload size to a PCIe transfer prior; nil
	// falls back to the launch prior.
	copyTime func(bytes int) time.Duration

	mu  sync.Mutex
	ewa [numKinds]time.Duration
}

// DefaultOpCost is the prior for compute-ish ops before any observation:
// the order of the paper's small-kernel service times.
const DefaultOpCost = 100 * time.Microsecond

// ewmaShift is the EWMA decay: new = old + (obs-old)/2^ewmaShift.
const ewmaShift = 3

// NewCostModel creates a cost model. copyTime maps a copy payload to its
// estimated PCIe time (gpu.Device.PCIeTime); nil disables the copy prior.
func NewCostModel(copyTime func(bytes int) time.Duration) *CostModel {
	return &CostModel{copyTime: copyTime}
}

// Estimate returns the expected service time of an op of the given kind
// moving the given payload bytes (0 for non-copies).
func (m *CostModel) Estimate(kind OpKind, bytes int) time.Duration {
	if kind >= numKinds {
		kind = KindOther
	}
	m.mu.Lock()
	est := m.ewa[kind]
	m.mu.Unlock()
	if est > 0 {
		return est
	}
	if kind == KindCopy && m.copyTime != nil && bytes > 0 {
		return m.copyTime(bytes)
	}
	if kind == KindOther {
		return DefaultOpCost / 10
	}
	return DefaultOpCost
}

// Observe folds an op's measured service time into its kind's estimate.
func (m *CostModel) Observe(kind OpKind, actual time.Duration) {
	if actual <= 0 || kind >= numKinds {
		return
	}
	m.mu.Lock()
	if m.ewa[kind] == 0 {
		m.ewa[kind] = actual
	} else {
		m.ewa[kind] += (actual - m.ewa[kind]) >> ewmaShift
	}
	m.mu.Unlock()
}
