package sched

import (
	"sync"
	"testing"
	"time"

	"rcuda/internal/vclock"
)

// TestQueueUncontended: a lone session acquires with zero wait and its
// class accounting shows the grant.
func TestQueueUncontended(t *testing.T) {
	q := NewQueue(Config{Policy: WFQ}, vclock.NewSim())
	s := q.Register(Realtime, 1)
	done := make(chan struct{})
	for i := 0; i < 3; i++ {
		if err := q.Acquire(s, time.Millisecond, done); err != nil {
			t.Fatalf("acquire: %v", err)
		}
		q.Release(s, time.Millisecond)
	}
	snap := q.Snapshot()
	if snap[Realtime].Served != 3 {
		t.Fatalf("served = %d, want 3", snap[Realtime].Served)
	}
	if snap[Realtime].Waits.N() != 3 || snap[Realtime].Waits.Max() != 0 {
		t.Fatalf("uncontended waits: n=%d max=%v", snap[Realtime].Waits.N(), snap[Realtime].Waits.Max())
	}
}

// TestQueueConcurrent hammers one queue from many goroutines under -race:
// every acquire must be granted exactly once and the per-class serviced
// counts must add up.
func TestQueueConcurrent(t *testing.T) {
	q := NewQueue(Config{Policy: WFQ}, vclock.NewWall())
	done := make(chan struct{})
	const workers = 8
	const opsEach = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := q.Register(Class(w%NumClasses), uint32(w+1))
			for i := 0; i < opsEach; i++ {
				if err := q.Acquire(s, 10*time.Microsecond, done); err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				q.Release(s, 10*time.Microsecond)
			}
		}()
	}
	wg.Wait()
	snap := q.Snapshot()
	var total uint64
	for _, cs := range snap {
		total += cs.Served
	}
	if total != workers*opsEach {
		t.Fatalf("served %d ops, want %d", total, workers*opsEach)
	}
}

// TestQueueShutdownUnblocks: a waiter parked behind a held device returns
// ErrQueueClosed when done closes, without wedging the queue.
func TestQueueShutdownUnblocks(t *testing.T) {
	q := NewQueue(Config{Policy: WFQ}, vclock.NewWall())
	holder := q.Register(Batch, 1)
	waiterErr := make(chan error, 1)
	done := make(chan struct{})
	if err := q.Acquire(holder, time.Millisecond, done); err != nil {
		t.Fatalf("holder acquire: %v", err)
	}
	waiter := q.Register(Batch, 1)
	go func() { waiterErr <- q.Acquire(waiter, time.Millisecond, done) }()
	// Give the waiter time to park, then shut down.
	time.Sleep(10 * time.Millisecond)
	close(done)
	select {
	case err := <-waiterErr:
		if err != ErrQueueClosed {
			t.Fatalf("waiter returned %v, want ErrQueueClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never unblocked after shutdown")
	}
	// The holder's release must still work cleanly.
	q.Release(holder, time.Millisecond)
}

// TestQueueGrantAfterShutdownRace: if the grant lands while the waiter is
// aborting, the waiter must pass the device on instead of stranding it.
func TestQueueGrantAfterShutdownRace(t *testing.T) {
	for i := 0; i < 50; i++ {
		q := NewQueue(Config{Policy: WFQ}, vclock.NewWall())
		holder := q.Register(Batch, 1)
		done := make(chan struct{})
		if err := q.Acquire(holder, time.Microsecond, done); err != nil {
			t.Fatalf("holder acquire: %v", err)
		}
		waiter := q.Register(Batch, 1)
		errCh := make(chan error, 1)
		go func() { errCh <- q.Acquire(waiter, time.Microsecond, done) }()
		go close(done)
		go q.Release(holder, time.Microsecond)
		if err := <-errCh; err == nil {
			// The grant won the race; the waiter owns the device and must
			// yield it like any granted session.
			q.Release(waiter, 0)
		}
		// Whatever the race outcome, a third session must still be able to
		// acquire: the device was not stranded.
		third := q.Register(Realtime, 1)
		ok := make(chan error, 1)
		go func() { ok <- q.Acquire(third, time.Microsecond, make(chan struct{})) }()
		select {
		case err := <-ok:
			if err != nil {
				t.Fatalf("third acquire: %v", err)
			}
			q.Release(third, 0)
		case <-time.After(2 * time.Second):
			t.Fatal("device stranded after shutdown race")
		}
	}
}

// TestQueueSetClass re-classes a session mid-life; subsequent grants are
// accounted to the new class.
func TestQueueSetClass(t *testing.T) {
	q := NewQueue(Config{Policy: WFQ}, vclock.NewSim())
	s := q.Register(Batch, 1)
	done := make(chan struct{})
	if err := q.Acquire(s, time.Millisecond, done); err != nil {
		t.Fatal(err)
	}
	q.Release(s, time.Millisecond)
	q.SetClass(s, Realtime, 7)
	if err := q.Acquire(s, time.Millisecond, done); err != nil {
		t.Fatal(err)
	}
	q.Release(s, time.Millisecond)
	snap := q.Snapshot()
	if snap[Batch].Served != 1 || snap[Realtime].Served != 1 {
		t.Fatalf("served batch=%d realtime=%d, want 1 and 1", snap[Batch].Served, snap[Realtime].Served)
	}
}

// TestQueueWaitMeasuredOnClock: waits are measured on the queue's own
// clock — a simulated clock advanced between enqueue and grant shows up in
// the histogram.
func TestQueueWaitMeasuredOnClock(t *testing.T) {
	clk := vclock.NewSim()
	q := NewQueue(Config{Policy: WFQ}, clk)
	holder := q.Register(Batch, 1)
	done := make(chan struct{})
	if err := q.Acquire(holder, time.Millisecond, done); err != nil {
		t.Fatal(err)
	}
	waiter := q.Register(Realtime, 1)
	got := make(chan error, 1)
	go func() { got <- q.Acquire(waiter, time.Millisecond, done) }()
	// Wait until the waiter has parked in the queue, then advance the
	// virtual clock and release.
	for {
		q.mu.Lock()
		parked := len(q.c.queue) == 1
		q.mu.Unlock()
		if parked {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	clk.Sleep(5 * time.Millisecond)
	q.Release(holder, time.Millisecond)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	q.Release(waiter, 0)
	snap := q.Snapshot()
	if w := snap[Realtime].Waits.Max(); w < 5*time.Millisecond {
		t.Fatalf("recorded wait %v, want >= 5ms of simulated clock", w)
	}
}
