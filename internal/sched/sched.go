// Package sched is the daemon's per-device multi-tenant scheduler. The
// paper's server time-multiplexes one GPU across many remote clients in
// strict arrival order, which lets a single greedy tenant — one that keeps
// a deep pipeline of launches queued — starve every latency-sensitive
// session behind it. This package replaces arrival order with virtual-time
// weighted fair queueing over *estimated op cost*, layered with priority
// classes, while preserving the middleware's bit-exactness guarantee: the
// scheduler only ever reorders work at op boundaries (between kernel
// launches, copies, and the like), never inside one.
//
// Three layers share one decision core:
//
//   - core (this file): a deterministic, lock-free start-time fair queueing
//     state machine. Every flow (one session on one device) carries a
//     virtual finish tag; the next op granted is the waiting op with the
//     smallest tag, ties broken by arrival sequence. Priority classes are
//     weight multipliers (DefaultClassWeights), so `realtime` dominates
//     `batch` dominates `besteffort` without ever starving the lowest
//     class — a fairness-owed besteffort flow still drains at its share.
//   - Queue (queue.go): the concurrent wrapper the rcuda server gates
//     dispatch through, recording per-class queue-wait histograms and
//     serviced/preemption counters. Its mutex is never held across any
//     blocking call (enforced by the locknet analyzer).
//   - Simulate (sim.go): a goroutine-free event-driven harness that drives
//     the same core on a virtual clock, giving the reproducible
//     FIFO-vs-WFQ starvation numbers in BENCH_sched.json.
package sched

import (
	"fmt"
	"time"
)

// Class is a session's scheduling class. The zero value is Realtime; the
// ordering of the constants is the priority ordering, which also indexes
// the per-class weight and accounting arrays.
type Class uint8

// Scheduling classes, highest priority first.
const (
	// Realtime is for latency-sensitive sessions (interactive inference,
	// the paper's many-small-launches AI traffic shape).
	Realtime Class = iota
	// Batch is the default class: throughput-oriented but deadline-aware.
	Batch
	// BestEffort yields to everything else, receiving only the share its
	// (low) class weight guarantees.
	BestEffort
	// NumClasses sizes per-class arrays.
	NumClasses = 3
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Realtime:
		return "realtime"
	case Batch:
		return "batch"
	case BestEffort:
		return "besteffort"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ParseClass maps a class name (as printed by String) to its value.
func ParseClass(s string) (Class, error) {
	switch s {
	case "realtime":
		return Realtime, nil
	case "batch":
		return Batch, nil
	case "besteffort":
		return BestEffort, nil
	default:
		return 0, fmt.Errorf("sched: unknown class %q", s)
	}
}

// Policy selects the grant order.
type Policy int

// Policies.
const (
	// FIFO grants ops strictly in arrival order — the paper's original
	// behavior, kept as the benchmark baseline.
	FIFO Policy = iota
	// WFQ grants the waiting op with the smallest virtual finish tag,
	// weighted by class and session weight.
	WFQ
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case WFQ:
		return "wfq"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy maps a policy name (as printed by String) to its value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "fifo":
		return FIFO, nil
	case "wfq":
		return WFQ, nil
	default:
		return 0, fmt.Errorf("sched: unknown policy %q", s)
	}
}

// DefaultClassWeights are the per-class weight multipliers: a realtime op
// accrues virtual time 100x slower than a besteffort op of equal cost, so
// it is effectively always ahead — but the lowest class still owns 1 part
// in 111 of a saturated device, which is what keeps it starvation-free.
var DefaultClassWeights = [NumClasses]uint32{100, 10, 1}

// MaxWeight bounds a session's own weight; the wire decoders reject
// anything larger, so virtual-time arithmetic cannot be driven to
// degenerate precision by a hostile hello.
const MaxWeight = 1 << 16

// Config parameterizes a Queue or a core.
type Config struct {
	// Policy selects FIFO or WFQ; the zero value is FIFO.
	Policy Policy
	// ClassWeights overrides DefaultClassWeights; zero entries keep the
	// default for that class.
	ClassWeights [NumClasses]uint32
}

// classWeights resolves the effective per-class multipliers.
func (cfg Config) classWeights() [NumClasses]uint32 {
	w := cfg.ClassWeights
	for i := range w {
		if w[i] == 0 {
			w[i] = DefaultClassWeights[i]
		}
	}
	return w
}

// flow is one session's scheduling identity on one device. It is embedded
// in the exported handle types (Session, sim tenants) and owned by a
// single core; all fields are guarded by whatever guards that core.
type flow struct {
	// owner points back to the handle embedding this flow (a *Session, or
	// a simulation tenant); set once at creation, it lets the picker hand
	// back the caller's own type without an index.
	owner any

	class  Class
	weight uint32
	// vtail is the virtual finish tag of the flow's most recently admitted
	// op; the next op's start tag is max(core vtime, vtail), so a flow's
	// own ops serialize in virtual time while an idle flow re-enters at
	// the current virtual time instead of collecting credit while absent.
	vtail float64
	// queued counts the flow's ops currently waiting in the core — a
	// session with an asynchronous pipeline keeps several queued, and a
	// grant to someone else while queued > 0 is what the preemption
	// counter records.
	queued int
}

// op is one queued unit of work: the scheduler's granularity and therefore
// the preemption granularity — ops are never split or reordered within a
// flow, which is what keeps execution bit-exact.
type op struct {
	f      *flow
	vstart float64
	vfin   float64
	seq    uint64
	cost   time.Duration
	// enqueuedAt is the clock instant the op arrived, recorded by the
	// Queue/sim for wait accounting.
	enqueuedAt time.Duration
}

// core is the deterministic scheduling state machine shared by the
// concurrent Queue and the simulation harness. It is not safe for
// concurrent use; Queue guards it with its mutex.
type core struct {
	policy Policy
	classW [NumClasses]uint32
	// vtime is the virtual clock: the start tag of the op most recently
	// granted. It is non-decreasing (asserted by the unit tests).
	vtime float64
	// seq numbers op arrivals; the deterministic tie-break.
	seq uint64
	// queue holds the waiting ops in arrival order. Scans are linear: the
	// queue length is bounded by the ops concurrently outstanding on one
	// device, far below any regime where a heap would matter.
	queue []*op
	// last is the flow granted most recently; used for preemption
	// accounting (see pick).
	last *flow
	// preempted counts, per class, grants where the previously running
	// flow had more work queued and the device was handed to another flow
	// anyway — a yield at an op boundary.
	preempted [NumClasses]uint64
}

func newCore(cfg Config) core {
	return core{policy: cfg.Policy, classW: cfg.classWeights()}
}

// effWeight is the flow's effective WFQ weight: class multiplier times
// session weight (session weight 0 reads as 1).
func (c *core) effWeight(f *flow) float64 {
	w := f.weight
	if w == 0 {
		w = 1
	}
	cw := c.classW[f.class%NumClasses]
	return float64(cw) * float64(w)
}

// enqueue adds an op of the given estimated cost for f at clock instant
// at, stamping its virtual tags and arrival sequence.
func (c *core) enqueue(f *flow, cost, at time.Duration) *op {
	if cost < 0 {
		cost = 0
	}
	o := &op{f: f, cost: cost, seq: c.seq, enqueuedAt: at}
	c.seq++
	o.vstart = c.vtime
	if f.vtail > o.vstart {
		o.vstart = f.vtail
	}
	o.vfin = o.vstart + float64(cost)/c.effWeight(f)
	f.vtail = o.vfin
	f.queued++
	c.queue = append(c.queue, o)
	return o
}

// better reports whether a should be granted before b under the policy.
// The order is total and deterministic: virtual finish tag, then class
// priority, then arrival sequence (unique).
func (c *core) better(a, b *op) bool {
	if c.policy == WFQ {
		if a.vfin != b.vfin {
			return a.vfin < b.vfin
		}
		if a.f.class != b.f.class {
			return a.f.class < b.f.class
		}
	}
	return a.seq < b.seq
}

// pick removes and returns the next op to grant, nil when none waits. It
// advances the virtual clock to the granted op's start tag and accounts a
// preemption against the previously running flow if that flow wanted the
// device back and lost it.
func (c *core) pick() *op {
	if len(c.queue) == 0 {
		c.last = nil
		return nil
	}
	best := 0
	for i := 1; i < len(c.queue); i++ {
		if c.better(c.queue[i], c.queue[best]) {
			best = i
		}
	}
	o := c.queue[best]
	c.queue = append(c.queue[:best], c.queue[best+1:]...)
	o.f.queued--
	if o.vstart > c.vtime {
		c.vtime = o.vstart
	}
	if c.last != nil && c.last != o.f && c.last.queued > 0 {
		c.preempted[c.last.class%NumClasses]++
	}
	c.last = o.f
	return o
}

// charge settles a completed op against its flow using the actual service
// time: the difference to the estimate shifts the flow's tail tag, so a
// mispredicted cost cannot permanently skew a flow's share. The tail never
// retreats below the op's own start, keeping virtual time monotone for
// the flow's future ops.
func (c *core) charge(o *op, actual time.Duration) {
	if actual < 0 {
		actual = 0
	}
	f := o.f
	f.vtail += (float64(actual) - float64(o.cost)) / c.effWeight(f)
	if f.vtail < o.vstart {
		f.vtail = o.vstart
	}
}

// remove drops a still-queued op (an aborted Acquire).
func (c *core) remove(o *op) {
	for i, q := range c.queue {
		if q == o {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			o.f.queued--
			return
		}
	}
}
