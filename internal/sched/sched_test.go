package sched

import (
	"math/rand"
	"testing"
	"time"
)

func TestClassStringParseRoundTrip(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Fatalf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseClass("turbo"); err == nil {
		t.Fatal("ParseClass accepted an unknown class")
	}
}

func TestPolicyStringParseRoundTrip(t *testing.T) {
	for _, p := range []Policy{FIFO, WFQ} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("lifo"); err == nil {
		t.Fatal("ParsePolicy accepted an unknown policy")
	}
}

// TestVirtualTimeMonotone drives the core with a seeded random op mix and
// asserts the virtual clock never moves backwards across grants.
func TestVirtualTimeMonotone(t *testing.T) {
	for _, policy := range []Policy{FIFO, WFQ} {
		c := newCore(Config{Policy: policy})
		rng := rand.New(rand.NewSource(7))
		flows := make([]*flow, 5)
		for i := range flows {
			flows[i] = &flow{class: Class(i % NumClasses), weight: uint32(1 + i)}
		}
		lastV := c.vtime
		for step := 0; step < 2000; step++ {
			f := flows[rng.Intn(len(flows))]
			if f.queued < 4 {
				c.enqueue(f, time.Duration(rng.Intn(1000)+1)*time.Microsecond, 0)
			}
			if rng.Intn(2) == 0 {
				if g := c.pick(); g != nil {
					if c.vtime < lastV {
						t.Fatalf("%v: virtual time moved backwards: %v -> %v", policy, lastV, c.vtime)
					}
					lastV = c.vtime
					c.charge(g, g.cost)
				}
			}
		}
	}
}

// TestWeightProportionalShares saturates one device with two same-class
// closed-loop tenants at 2:1 weights and equal op cost; served ops must
// split 2:1 within tolerance.
func TestWeightProportionalShares(t *testing.T) {
	res := Simulate(SimConfig{
		Seed:     1,
		Policy:   WFQ,
		Duration: 2 * time.Second,
		Tenants: []TenantSpec{
			{Name: "heavy", Class: Batch, Weight: 2, OpCost: time.Millisecond, Backlog: 4},
			{Name: "light", Class: Batch, Weight: 1, OpCost: time.Millisecond, Backlog: 4},
		},
	})
	var heavy, light uint64
	for _, tr := range res.Tenants {
		switch tr.Name {
		case "heavy":
			heavy = tr.Served
		case "light":
			light = tr.Served
		}
	}
	if light == 0 {
		t.Fatal("light tenant served nothing")
	}
	ratio := float64(heavy) / float64(light)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("2:1 weights served %d:%d (ratio %.2f), want ~2.0", heavy, light, ratio)
	}
}

// TestClassWeightedShares checks the priority-class multipliers divide a
// saturated device in proportion to DefaultClassWeights.
func TestClassWeightedShares(t *testing.T) {
	res := Simulate(SimConfig{
		Seed:     1,
		Policy:   WFQ,
		Duration: 2 * time.Second,
		Tenants: []TenantSpec{
			{Name: "rt", Class: Realtime, OpCost: time.Millisecond, Backlog: 4},
			{Name: "ba", Class: Batch, OpCost: time.Millisecond, Backlog: 4},
		},
	})
	var rt, ba uint64
	for _, tr := range res.Tenants {
		switch tr.Name {
		case "rt":
			rt = tr.Served
		case "ba":
			ba = tr.Served
		}
	}
	if ba == 0 {
		t.Fatal("batch tenant served nothing")
	}
	// DefaultClassWeights give realtime 100x batch's 10: a 10:1 split.
	ratio := float64(rt) / float64(ba)
	if ratio < 8 || ratio > 12 {
		t.Fatalf("realtime:batch served %d:%d (ratio %.2f), want ~10", rt, ba, ratio)
	}
}

// TestNoStarvationLowestClass saturates the device with higher classes and
// asserts besteffort still gets its weighted share — classes are weight
// multipliers, not absolute priorities.
func TestNoStarvationLowestClass(t *testing.T) {
	res := Simulate(SimConfig{
		Seed:     3,
		Policy:   WFQ,
		Duration: 4 * time.Second,
		Tenants: []TenantSpec{
			{Name: "rt", Class: Realtime, OpCost: 500 * time.Microsecond, Backlog: 8},
			{Name: "ba", Class: Batch, OpCost: 500 * time.Microsecond, Backlog: 8},
			{Name: "be", Class: BestEffort, OpCost: 500 * time.Microsecond, Backlog: 8},
		},
	})
	var be uint64
	for _, tr := range res.Tenants {
		if tr.Name == "be" {
			be = tr.Served
		}
	}
	if be == 0 {
		t.Fatal("besteffort starved under saturation")
	}
	// Weighted share: 1/111 of ~8000 total ops ≈ 72. Allow slack, but the
	// share must be material, not a single token grant.
	if be < 20 {
		t.Fatalf("besteffort served only %d ops, want its ~1/111 share", be)
	}
}

// TestDeterministicTieBreak asserts both that equal-tag ops resolve by
// arrival order and that a whole seeded scenario replays identically.
func TestDeterministicTieBreak(t *testing.T) {
	// Two identical flows enqueued back-to-back on a fresh core carry
	// identical virtual finish tags; arrival sequence must decide.
	c := newCore(Config{Policy: WFQ})
	a := &flow{class: Batch, weight: 1}
	b := &flow{class: Batch, weight: 1}
	oa := c.enqueue(a, time.Millisecond, 0)
	c.enqueue(b, time.Millisecond, 0)
	if got := c.pick(); got != oa {
		t.Fatal("equal tags: second arrival granted before first")
	}
	// Same tag, different class: the higher class wins the tie.
	c2 := newCore(Config{Policy: WFQ, ClassWeights: [NumClasses]uint32{1, 1, 1}})
	lo := &flow{class: BestEffort}
	hi := &flow{class: Realtime}
	c2.enqueue(lo, time.Millisecond, 0)
	ohi := c2.enqueue(hi, time.Millisecond, 0)
	if got := c2.pick(); got != ohi {
		t.Fatal("equal tags: lower class granted before higher")
	}

	// Whole-scenario determinism under a fixed seed.
	cfg := SimConfig{
		Seed:     42,
		Policy:   WFQ,
		Duration: time.Second,
		Tenants: []TenantSpec{
			{Name: "bulk", Class: Batch, OpCost: 2 * time.Millisecond, Backlog: 16},
			{Name: "rt-0", Class: Realtime, OpCost: 100 * time.Microsecond, MeanGap: 5 * time.Millisecond},
			{Name: "rt-1", Class: Realtime, OpCost: 100 * time.Microsecond, MeanGap: 7 * time.Millisecond},
		},
	}
	r1, r2 := Simulate(cfg), Simulate(cfg)
	if len(r1.Tenants) != len(r2.Tenants) {
		t.Fatal("runs disagree on tenant count")
	}
	for i := range r1.Tenants {
		if r1.Tenants[i] != r2.Tenants[i] {
			t.Fatalf("seeded runs diverged: %+v != %+v", r1.Tenants[i], r2.Tenants[i])
		}
	}
	if r1.TotalServed != r2.TotalServed || r1.Preemptions != r2.Preemptions {
		t.Fatalf("seeded runs diverged on totals: %+v != %+v", r1, r2)
	}
}

// TestFIFOIsArrivalOrder pins the baseline policy to strict arrival order
// regardless of class or weight.
func TestFIFOIsArrivalOrder(t *testing.T) {
	c := newCore(Config{Policy: FIFO})
	be := &flow{class: BestEffort}
	rt := &flow{class: Realtime, weight: 1000}
	obe := c.enqueue(be, time.Second, 0)
	c.enqueue(rt, time.Microsecond, 0)
	if got := c.pick(); got != obe {
		t.Fatal("FIFO reordered arrivals")
	}
}

// TestPreemptionAccounting verifies the preemption counter: a flow with
// more work queued that loses the device at an op boundary is counted.
func TestPreemptionAccounting(t *testing.T) {
	c := newCore(Config{Policy: WFQ})
	bulk := &flow{class: BestEffort}
	rt := &flow{class: Realtime}
	o1 := c.enqueue(bulk, time.Millisecond, 0)
	if c.pick() != o1 {
		t.Fatal("lone flow not granted")
	}
	c.charge(o1, time.Millisecond)
	// While bulk ran, both re-queued; rt's tag is far smaller.
	c.enqueue(bulk, time.Millisecond, 0)
	c.enqueue(rt, 10*time.Microsecond, 0)
	if got := c.pick(); got.f != rt {
		t.Fatal("realtime not granted at the boundary")
	}
	if got := c.preempted[BestEffort]; got != 1 {
		t.Fatalf("besteffort preemptions = %d, want 1", got)
	}
}

func TestCostModel(t *testing.T) {
	m := NewCostModel(func(bytes int) time.Duration {
		return time.Duration(bytes) * time.Nanosecond
	})
	if got := m.Estimate(KindCopy, 1000); got != 1000*time.Nanosecond {
		t.Fatalf("copy prior = %v, want 1µs", got)
	}
	if got := m.Estimate(KindLaunch, 0); got != DefaultOpCost {
		t.Fatalf("launch prior = %v, want %v", got, DefaultOpCost)
	}
	m.Observe(KindLaunch, 8*time.Millisecond)
	if got := m.Estimate(KindLaunch, 0); got != 8*time.Millisecond {
		t.Fatalf("first observation = %v, want 8ms", got)
	}
	for i := 0; i < 64; i++ {
		m.Observe(KindLaunch, 2*time.Millisecond)
	}
	got := m.Estimate(KindLaunch, 0)
	if got < 2*time.Millisecond || got > 3*time.Millisecond {
		t.Fatalf("EWMA did not converge: %v", got)
	}
}
