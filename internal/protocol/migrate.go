package protocol

import (
	"fmt"
	"hash/fnv"
)

// This file defines the live-migration extension: one daemon streams a
// serialized session (the Checkpoint) straight to another daemon over the
// chunked-transfer machinery, so a durable session can move between servers
// without the client relaying a byte. The dialogue on the daemon-to-daemon
// connection is:
//
//	source                          destination
//	  SessionRestore      ──────▶   reserve the session id + admission slot
//	             ◀──────  SessionRestoreResponse (abort here on refusal)
//	  MigrateBegin        ──────▶   size the checkpoint buffer
//	             ◀──────  MigrateBeginResponse
//	  MigrateChunk 0..n-1 ──────▶   reassemble (never individually acked)
//	  MigrateCommit       ──────▶   verify count + digest, materialize
//	             ◀──────  MigrateCommitResponse
//
// The client learns about the move lazily: a reattach at the old daemon is
// answered with CodeSessionMigrated (reject.go) and the broker has already
// re-pointed placement, so the next reconnect lands on the destination and
// resumes with zero replay — the batch seq-dedup window travels inside the
// checkpoint.

// Migration operations continue the Op space after the batch extension.
const (
	OpMigrateBegin Op = iota + opBatchSentinel
	OpMigrateChunk
	OpMigrateCommit
	OpSessionRestore
	opMigrateSentinel
)

// migrateOpNames extends Op.String for the migration operations.
var migrateOpNames = map[Op]string{
	OpMigrateBegin:   "rcudaMigrate (begin)",
	OpMigrateChunk:   "rcudaMigrate (chunk)",
	OpMigrateCommit:  "rcudaMigrate (commit)",
	OpSessionRestore: "rcudaSessionRestore",
}

// --- SessionRestore handshake ----------------------------------------------

// SessionRestoreRequest is the first message of a daemon-to-daemon
// migration connection: id (4) + session (8) = 12 bytes. It asks the
// destination to reserve the session id and an admission slot before any
// checkpoint bytes move. Like the reattach handshake it is recognized by
// sniffing the connection's opening payload (TryDecodeSessionRestore).
type SessionRestoreRequest struct {
	Session uint64
}

// Encode implements Message.
func (m *SessionRestoreRequest) Encode(dst []byte) []byte {
	return putU64(putU32(dst, uint32(OpSessionRestore)), m.Session)
}

// WireSize implements Message.
func (m *SessionRestoreRequest) WireSize() int { return 12 }

// Op implements Request.
func (m *SessionRestoreRequest) Op() Op { return OpSessionRestore }

// TryDecodeSessionRestore reports whether a connection's first payload is a
// session-restore handshake. Exactly one 12-byte spelling qualifies, so the
// sniff can never confuse it with an initialization module, a reattach, or
// a stats query.
func TryDecodeSessionRestore(b []byte) (*SessionRestoreRequest, bool) {
	if len(b) != 12 || Op(getU32(b, 0)) != OpSessionRestore {
		return nil, false
	}
	return &SessionRestoreRequest{Session: getU64(b, 4)}, true
}

// SessionRestoreResponse answers the handshake: CUDA error (4 bytes). A
// nonzero code (CodeServerBusy on an id collision or admission refusal)
// aborts the migration before any checkpoint bytes move.
type SessionRestoreResponse struct {
	Err uint32
}

// Encode implements Message.
func (m *SessionRestoreResponse) Encode(dst []byte) []byte { return putU32(dst, m.Err) }

// WireSize implements Message.
func (m *SessionRestoreResponse) WireSize() int { return 4 }

// DecodeSessionRestoreResponse parses a session-restore acknowledgement.
func DecodeSessionRestoreResponse(b []byte) (*SessionRestoreResponse, error) {
	if len(b) != 4 {
		return nil, ErrShortMessage
	}
	return &SessionRestoreResponse{Err: getU32(b, 0)}, nil
}

// --- Begin -------------------------------------------------------------------

// MigrateBeginRequest opens the checkpoint stream: id (4) + total size (4)
// + chunk size (4) = 12 bytes.
type MigrateBeginRequest struct {
	Total     uint32
	ChunkSize uint32
}

// Encode implements Message.
func (m *MigrateBeginRequest) Encode(dst []byte) []byte {
	dst = putU32(dst, uint32(OpMigrateBegin))
	dst = putU32(dst, m.Total)
	return putU32(dst, m.ChunkSize)
}

// WireSize implements Message.
func (m *MigrateBeginRequest) WireSize() int { return 12 }

// Op implements Request.
func (m *MigrateBeginRequest) Op() Op { return OpMigrateBegin }

// MigrateBeginResponse acknowledges (or rejects) the checkpoint stream
// before any payload moves: CUDA error (4 bytes).
type MigrateBeginResponse struct {
	Err uint32
}

// Encode implements Message.
func (m *MigrateBeginResponse) Encode(dst []byte) []byte { return putU32(dst, m.Err) }

// WireSize implements Message.
func (m *MigrateBeginResponse) WireSize() int { return 4 }

// DecodeMigrateBeginResponse parses a migrate-begin acknowledgement.
func DecodeMigrateBeginResponse(b []byte) (*MigrateBeginResponse, error) {
	if len(b) != 4 {
		return nil, ErrShortMessage
	}
	return &MigrateBeginResponse{Err: getU32(b, 0)}, nil
}

// --- Chunk -------------------------------------------------------------------

// MigrateChunk carries one checkpoint slice: id (4) + sequence (4) +
// size (4) + data (x) = x+12 bytes. Chunks are never individually
// acknowledged, exactly like the memcpy stream they mirror.
type MigrateChunk struct {
	Seq  uint32
	Data []byte
}

// Encode implements Message.
func (m *MigrateChunk) Encode(dst []byte) []byte {
	dst = m.SegmentHead(dst)
	return append(dst, m.Data...)
}

// WireSize implements Message.
func (m *MigrateChunk) WireSize() int { return 12 + len(m.Data) }

// Op implements Request.
func (m *MigrateChunk) Op() Op { return OpMigrateChunk }

// SegmentHead implements Segmented.
func (m *MigrateChunk) SegmentHead(dst []byte) []byte {
	dst = putU32(dst, uint32(OpMigrateChunk))
	dst = putU32(dst, m.Seq)
	return putU32(dst, uint32(len(m.Data)))
}

// SegmentBulk implements Segmented.
func (m *MigrateChunk) SegmentBulk() []byte { return m.Data }

// SegmentTail implements Segmented.
func (m *MigrateChunk) SegmentTail(dst []byte) []byte { return dst }

// DecodeMigrateChunk parses a migration chunk. Data aliases b — the caller
// owns b until the chunk has been consumed.
func DecodeMigrateChunk(b []byte) (*MigrateChunk, error) {
	if len(b) < 12 {
		return nil, ErrShortMessage
	}
	if op := Op(getU32(b, 0)); op != OpMigrateChunk {
		return nil, fmt.Errorf("%w: %d, want migrate chunk", ErrBadOp, uint32(op))
	}
	size := int(getU32(b, 8))
	if len(b) != 12+size {
		return nil, fmt.Errorf("protocol: migrate chunk size %d does not match payload %d", size, len(b)-12)
	}
	return &MigrateChunk{Seq: getU32(b, 4), Data: b[12:]}, nil
}

// Stream converts the chunk into the memcpy-stream shape so one
// ChunkAssembler validates and reassembles both kinds of stream.
func (m *MigrateChunk) Stream() *MemcpyStreamChunk {
	return &MemcpyStreamChunk{Seq: m.Seq, Data: m.Data}
}

// --- Commit ------------------------------------------------------------------

// MigrateCommitRequest closes the checkpoint stream and asks the
// destination to materialize the session: id (4) + chunk count (4) +
// digest (8) = 16 bytes. Digest is MigrateDigest over the full checkpoint
// payload, so a truncated or corrupted stream is detected before a broken
// session is installed.
type MigrateCommitRequest struct {
	Chunks uint32
	Digest uint64
}

// Encode implements Message.
func (m *MigrateCommitRequest) Encode(dst []byte) []byte {
	dst = putU32(dst, uint32(OpMigrateCommit))
	dst = putU32(dst, m.Chunks)
	return putU64(dst, m.Digest)
}

// WireSize implements Message.
func (m *MigrateCommitRequest) WireSize() int { return 16 }

// Op implements Request.
func (m *MigrateCommitRequest) Op() Op { return OpMigrateCommit }

// MigrateCommitResponse carries the migration's final result code
// (4 bytes). Zero means the destination owns the session from now on.
type MigrateCommitResponse struct {
	Err uint32
}

// Encode implements Message.
func (m *MigrateCommitResponse) Encode(dst []byte) []byte { return putU32(dst, m.Err) }

// WireSize implements Message.
func (m *MigrateCommitResponse) WireSize() int { return 4 }

// DecodeMigrateCommitResponse parses a migrate-commit status.
func DecodeMigrateCommitResponse(b []byte) (*MigrateCommitResponse, error) {
	if len(b) != 4 {
		return nil, ErrShortMessage
	}
	return &MigrateCommitResponse{Err: getU32(b, 0)}, nil
}

// MigrateDigest is the integrity check over a checkpoint payload (FNV-1a,
// 64 bit). It guards against truncation and bit corruption, not tampering.
func MigrateDigest(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// decodeMigrateRequest handles the migration operations for DecodeRequest.
// It terminates the dispatch chain.
func decodeMigrateRequest(op Op, b []byte) (Request, error) {
	switch op {
	case OpMigrateBegin:
		if len(b) != 12 {
			return nil, ErrShortMessage
		}
		m := &MigrateBeginRequest{Total: getU32(b, 4), ChunkSize: getU32(b, 8)}
		if m.Total > MaxFrameSize {
			return nil, fmt.Errorf("protocol: migrate total %d exceeds limit %d", m.Total, MaxFrameSize)
		}
		if m.ChunkSize == 0 || m.ChunkSize > MaxFrameSize {
			return nil, fmt.Errorf("protocol: migrate chunk size %d out of range", m.ChunkSize)
		}
		return m, nil
	case OpMigrateChunk:
		return DecodeMigrateChunk(b)
	case OpMigrateCommit:
		if len(b) != 16 {
			return nil, ErrShortMessage
		}
		return &MigrateCommitRequest{Chunks: getU32(b, 4), Digest: getU64(b, 8)}, nil
	case OpSessionRestore:
		m, ok := TryDecodeSessionRestore(b)
		if !ok {
			return nil, ErrShortMessage
		}
		return m, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadOp, uint32(op))
	}
}
