package protocol

// This file derives the paper's Table I ("Breakdown of some remote API
// messages") from the protocol implementation, so the published byte
// accounting is regenerated from code rather than transcribed.

// Field is one row of an operation's message breakdown. A size of -1 means
// the field is variable ("x" in the paper).
type Field struct {
	Name    string
	Send    int // bytes in the request; 0 if absent
	Receive int // bytes in the response; 0 if absent
}

// Variable marks a field whose size depends on the operation instance.
const Variable = -1

// Breakdown describes one operation of Table I.
type Breakdown struct {
	Operation string
	Fields    []Field
}

// Totals sums the fixed bytes of the request and response and reports
// whether each direction additionally carries a variable-size region.
func (b Breakdown) Totals() (send int, sendVar bool, recv int, recvVar bool) {
	for _, f := range b.Fields {
		switch f.Send {
		case Variable:
			sendVar = true
		default:
			send += f.Send
		}
		switch f.Receive {
		case Variable:
			recvVar = true
		default:
			recv += f.Receive
		}
	}
	return send, sendVar, recv, recvVar
}

// TableI returns the message breakdown for the most commonly used
// operations, in the paper's order.
func TableI() []Breakdown {
	return []Breakdown{
		{
			Operation: "Initialization",
			Fields: []Field{
				{Name: "Compute capability", Receive: 8},
				{Name: "Size", Send: 4},
				{Name: "Module", Send: Variable},
				{Name: "CUDA error", Receive: 4},
			},
		},
		{
			Operation: "cudaMalloc",
			Fields: []Field{
				{Name: "Function id.", Send: 4},
				{Name: "Size", Send: 4},
				{Name: "CUDA error", Receive: 4},
				{Name: "Device pointer", Receive: 4},
			},
		},
		{
			Operation: "cudaMemcpy (to device)",
			Fields: []Field{
				{Name: "Function id.", Send: 4},
				{Name: "Destination", Send: 4},
				{Name: "Source", Send: 4},
				{Name: "Size", Send: 4},
				{Name: "Kind", Send: 4},
				{Name: "Data", Send: Variable},
				{Name: "CUDA error", Receive: 4},
			},
		},
		{
			Operation: "cudaMemcpy (to host)",
			Fields: []Field{
				{Name: "Function id.", Send: 4},
				{Name: "Destination", Send: 4},
				{Name: "Source", Send: 4},
				{Name: "Size", Send: 4},
				{Name: "Kind", Send: 4},
				{Name: "Data", Receive: Variable},
				{Name: "CUDA error", Receive: 4},
			},
		},
		{
			Operation: "cudaLaunch",
			Fields: []Field{
				{Name: "Function id.", Send: 4},
				{Name: "Texture offset", Send: 4},
				{Name: "Parameters offset", Send: 4},
				{Name: "Number of textures", Send: 4},
				{Name: "Block dimension", Send: 12},
				{Name: "Grid dimension", Send: 8},
				{Name: "Shared size", Send: 4},
				{Name: "Stream", Send: 4},
				{Name: "Kernel name", Send: Variable},
				{Name: "CUDA error", Receive: 4},
			},
		},
		{
			Operation: "cudaFree",
			Fields: []Field{
				{Name: "Function id.", Send: 4},
				{Name: "Device pointer", Send: 4},
				{Name: "CUDA error", Receive: 4},
			},
		},
	}
}

// FixedSendBytes returns the fixed request bytes of an operation as encoded
// by this package (the Table I total with x = 0), so tests can assert that
// the documentation in TableI matches the actual encoders.
func FixedSendBytes(op Op) int {
	switch op {
	case OpInit:
		return (&InitRequest{}).WireSize()
	case OpMalloc:
		return (&MallocRequest{}).WireSize()
	case OpMemcpyToDevice:
		return (&MemcpyToDeviceRequest{}).WireSize()
	case OpMemcpyToHost:
		return (&MemcpyToHostRequest{}).WireSize()
	case OpLaunch:
		// The empty kernel name still carries its NUL terminator, which
		// belongs to the variable region x (a C string of length n
		// occupies n+1 bytes).
		return (&LaunchRequest{}).WireSize() - 1
	case OpFree:
		return (&FreeRequest{}).WireSize()
	case OpDeviceSynchronize:
		return (&SyncRequest{}).WireSize()
	case OpFinalize:
		return (&FinalizeRequest{}).WireSize()
	default:
		return 0
	}
}

// FixedReceiveBytes returns the fixed response bytes of an operation as
// encoded by this package (the Table I total with x = 0).
func FixedReceiveBytes(op Op) int {
	switch op {
	case OpInit:
		return (&InitResponse{}).WireSize()
	case OpMalloc:
		return (&MallocResponse{}).WireSize()
	case OpMemcpyToDevice:
		return (&MemcpyToDeviceResponse{}).WireSize()
	case OpMemcpyToHost:
		return (&MemcpyToHostResponse{}).WireSize()
	case OpLaunch:
		return (&LaunchResponse{}).WireSize()
	case OpFree:
		return (&FreeResponse{}).WireSize()
	case OpDeviceSynchronize:
		return (&SyncResponse{}).WireSize()
	default:
		return 0
	}
}
