package protocol

import "errors"

// This file defines the wire vocabulary of the multi-tenant scheduler: the
// class/weight pair a session announces in its extended hello, carries
// across a migration inside the checkpoint, and the per-class load block a
// daemon appends to its stats reply. The codes are deliberately distinct
// from the scheduler's internal enum — 0 on the wire means "unspecified,
// apply the server default", so a zero-filled extended hello is
// indistinguishable in meaning from the legacy bare one.

// Scheduling class codes.
const (
	// SchedClassUnspecified leaves the choice to the server (its default
	// class; Batch unless configured otherwise).
	SchedClassUnspecified uint32 = iota
	// SchedClassRealtime marks a latency-sensitive session.
	SchedClassRealtime
	// SchedClassBatch is the throughput-oriented default.
	SchedClassBatch
	// SchedClassBestEffort yields to everything else.
	SchedClassBestEffort

	maxSchedClass = SchedClassBestEffort
)

// MaxSchedWeight bounds the session weight an extended hello or a
// checkpoint may carry, mirroring sched.MaxWeight; decoders reject larger
// values with ErrBadSchedWeight.
const MaxSchedWeight = 1 << 16

// Typed decode errors for the scheduling fields; decoders wrap them with
// the offending value.
var (
	ErrBadSchedClass  = errors.New("protocol: scheduling class out of range")
	ErrBadSchedWeight = errors.New("protocol: scheduling weight out of range")
)

// NumSchedClasses is the number of concrete scheduling classes (excluding
// the unspecified code) — the row count of a stats reply's class block.
const NumSchedClasses = 3

// ClassLoad is one scheduling class's slice of a StatsReply: how many
// attached sessions declared the class and the class's p99 queue wait,
// merged across the daemon's devices. A broker placing a realtime session
// ranks servers by the realtime row's headroom.
type ClassLoad struct {
	// Sessions counts attached sessions of the class.
	Sessions uint32
	// P99WaitNanos is the class's 99th-percentile scheduler queue wait in
	// nanoseconds of the daemon's clock.
	P99WaitNanos uint64
}

// statsClassWire is the encoded size of one ClassLoad.
const statsClassWire = 12
