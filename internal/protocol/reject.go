package protocol

// This file defines the server-hardening rejection codes. They ride in the
// same 32-bit result field every response already carries (Table I's "CUDA
// error"), but occupy a vendor range far above any cudaError_t the CUDA 2.3
// runtime defines, so a hardened server stays wire-compatible with a stock
// client: an old client that cannot name the code still observes a failed
// call, while a retry-aware client classifies it precisely.
//
// CodeServerBusy is transient — the client may back off and try again
// (admission control refused this connection or session, or a reattach
// raced an accept deadline). CodeSessionEvicted is permanent — the parked
// durable session the client tried to reattach was reclaimed by the
// server's TTL garbage collector, and its allocations are gone.
const (
	// CodeServerBusy rejects a handshake or reattach under admission
	// control; the condition is transient and retryable.
	CodeServerBusy uint32 = 1001
	// CodeSessionEvicted refuses a reattach whose parked session the
	// server already reclaimed; the session cannot be recovered.
	CodeSessionEvicted uint32 = 1002
	// CodeSessionMigrated redirects a reattach: the session was live-
	// migrated to another daemon and the broker has re-pointed placement,
	// so the client should redial through its (now updated) route and
	// reattach there — nothing was lost and nothing needs replaying.
	CodeSessionMigrated uint32 = 1003
)
