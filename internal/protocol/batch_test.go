package protocol

import (
	"bytes"
	"strings"
	"testing"
)

func TestBatchOpNames(t *testing.T) {
	for op, want := range batchOpNames {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", uint32(op), got, want)
		}
	}
}

func batchOf(t *testing.T, seq uint64, subs ...Request) *BatchRequest {
	t.Helper()
	b := &BatchRequest{Seq: seq}
	for _, sub := range subs {
		b.Subs = append(b.Subs, sub.Encode(nil))
	}
	return b
}

func TestBatchRequestRoundTrip(t *testing.T) {
	req := batchOf(t, 7,
		&MemcpyToDeviceAsyncRequest{Dst: 16, Stream: 1, Data: []byte{1, 2, 3, 4, 5}},
		&LaunchRequest{Name: "sgemmNN", Params: []byte{9, 9, 9, 9}, Stream: 1},
		&EventRecordRequest{Event: 2, Stream: 1},
		&MemsetRequest{DevPtr: 32, Value: 0, Size: 64},
	)
	raw := req.Encode(nil)
	if len(raw) != req.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(raw), req.WireSize())
	}
	decoded, err := DecodeRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := decoded.(*BatchRequest)
	if !ok {
		t.Fatalf("decoded %#v", decoded)
	}
	if b.Seq != 7 || len(b.Subs) != 4 || len(b.Decoded) != 4 {
		t.Fatalf("decoded seq=%d with %d subs, %d parsed", b.Seq, len(b.Subs), len(b.Decoded))
	}
	wantOps := []Op{OpMemcpyToDeviceAsync, OpLaunch, OpEventRecord, OpMemset}
	for i, sub := range b.Decoded {
		if sub.Op() != wantOps[i] {
			t.Errorf("sub-op %d: got %v, want %v", i, sub.Op(), wantOps[i])
		}
	}
	if cp, ok := b.Decoded[0].(*MemcpyToDeviceAsyncRequest); !ok || !bytes.Equal(cp.Data, []byte{1, 2, 3, 4, 5}) {
		t.Fatalf("memcpy sub-op payload lost: %#v", b.Decoded[0])
	}
	if enc := b.Encode(nil); !bytes.Equal(enc, raw) {
		t.Fatalf("re-encode mismatch:\n in  %x\n out %x", raw, enc)
	}
}

// Requests parses lazily for locally built batches (the client path), and
// returns the decoder's slice verbatim for wire-parsed ones.
func TestBatchRequestsLazyDecode(t *testing.T) {
	req := batchOf(t, 1, &EventRecordRequest{Event: 3})
	subs, err := req.Requests()
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || subs[0].(*EventRecordRequest).Event != 3 {
		t.Fatalf("parsed %#v", subs)
	}
	req.Subs = [][]byte{{1, 2}} // corrupt raw form, Decoded still wins
	req.Decoded = subs
	again, err := req.Requests()
	if err != nil || len(again) != 1 {
		t.Fatalf("Requests with Decoded set: %v, %v", again, err)
	}
}

func TestBatchDecodeRejections(t *testing.T) {
	good := batchOf(t, 5,
		&LaunchRequest{Name: "sgemmNN", Params: []byte{1, 2, 3, 4}},
		&EventRecordRequest{Event: 1},
	).Encode(nil)
	if _, err := DecodeRequest(good); err != nil {
		t.Fatalf("control frame rejected: %v", err)
	}

	cases := []struct {
		name string
		raw  []byte
		want string
	}{
		{"truncated header", good[:12], "too short"},
		{"truncated sub-op header", good[:17], "truncated in sub-op"},
		{"truncated sub-op payload", good[:len(good)-2], "declares"},
		{"trailing bytes", append(append([]byte(nil), good...), 0), "trailing"},
		{"empty batch", (&BatchRequest{Seq: 9}).Encode(nil), "empty batch"},
		{"non-batchable sub-op", batchOf(t, 2, &SyncRequest{}).Encode(nil), "not batchable"},
		{"nested batch", batchOf(t, 3, batchOf(t, 4, &EventRecordRequest{})).Encode(nil), "not batchable"},
		{"undecodable sub-op", func() []byte {
			b := &BatchRequest{Seq: 1, Subs: [][]byte{{0xff, 0xff, 0xff, 0xff}}}
			return b.Encode(nil)
		}(), "sub-op 0"},
	}
	for _, tc := range cases {
		if _, err := DecodeRequest(tc.raw); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// A frame declaring more sub-ops than MaxBatchOps must be rejected
	// before any allocation proportional to the declared count.
	huge := append([]byte(nil), good[:16]...)
	putU32(huge[12:12:16], 1<<20)
	if _, err := DecodeRequest(huge); err == nil || !strings.Contains(err.Error(), "max") {
		t.Errorf("oversized count: %v", err)
	}
}

func TestBatchResponseRoundTrip(t *testing.T) {
	resp := &BatchResponse{Err: 11, Codes: []uint32{0, 11, 0}}
	raw := resp.Encode(nil)
	if len(raw) != resp.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(raw), resp.WireSize())
	}
	back, err := DecodeBatchResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Err != 11 || len(back.Codes) != 3 || back.Codes[1] != 11 {
		t.Fatalf("round trip %+v -> %+v", resp, back)
	}

	if _, err := DecodeBatchResponse(raw[:6]); err == nil {
		t.Error("short response accepted")
	}
	if _, err := DecodeBatchResponse(raw[:len(raw)-4]); err == nil {
		t.Error("count/payload mismatch accepted")
	}
	big := (&BatchResponse{Codes: make([]uint32, 4)}).Encode(nil)
	putU32(big[4:4:8], MaxBatchOps+1)
	if _, err := DecodeBatchResponse(big); err == nil {
		t.Error("oversized code count accepted")
	}
}

func TestBatchableOp(t *testing.T) {
	for _, op := range []Op{OpLaunch, OpMemcpyToDeviceAsync, OpEventRecord, OpMemset} {
		if !BatchableOp(op) {
			t.Errorf("%v should be batchable", op)
		}
	}
	// Everything returning data, handles, or touching session state stays
	// a standalone exchange.
	for _, op := range []Op{
		OpMalloc, OpMemcpyToDevice, OpMemcpyToHost, OpFree, OpDeviceSynchronize,
		OpFinalize, OpStreamCreate, OpStreamSynchronize, OpMemcpyToHostAsync,
		OpEventCreate, OpEventSynchronize, OpEventElapsed, OpGetDeviceCount,
		OpSetDevice, OpGetDeviceProperties, OpMemcpyDeviceToDevice, OpSessionHello,
		OpSessionReattach, OpStatsQuery, OpBatch,
	} {
		if BatchableOp(op) {
			t.Errorf("%v must not be batchable", op)
		}
	}
}
