package protocol

import (
	"bytes"
	"errors"
	"testing"
)

// TestMigrateRequestRoundTrip drives every migration request shape through
// the general decoder and back.
func TestMigrateRequestRoundTrip(t *testing.T) {
	cases := []Request{
		&SessionRestoreRequest{Session: 0xdeadbeefcafe},
		&MigrateBeginRequest{Total: 4096, ChunkSize: 256},
		&MigrateChunk{Seq: 7, Data: []byte{1, 2, 3, 4, 5}},
		&MigrateChunk{Seq: 0, Data: nil},
		&MigrateCommitRequest{Chunks: 16, Digest: 0x0123456789abcdef},
	}
	for _, want := range cases {
		raw := want.Encode(nil)
		if len(raw) != want.WireSize() {
			t.Fatalf("%v: encoded %d bytes, WireSize %d", want.Op(), len(raw), want.WireSize())
		}
		got, err := DecodeRequest(raw)
		if err != nil {
			t.Fatalf("%v: decode: %v", want.Op(), err)
		}
		if got.Op() != want.Op() {
			t.Fatalf("decoded op %v, want %v", got.Op(), want.Op())
		}
		if enc := got.Encode(nil); !bytes.Equal(enc, raw) {
			t.Fatalf("%v: re-encode mismatch", want.Op())
		}
	}
}

// TestMigrateBeginValidation rejects corrupt stream geometry before any
// buffer is sized from it.
func TestMigrateBeginValidation(t *testing.T) {
	encode := func(total, chunk uint32) []byte {
		dst := putU32(nil, uint32(OpMigrateBegin))
		dst = putU32(dst, total)
		return putU32(dst, chunk)
	}
	if _, err := DecodeRequest(encode(64, 0)); err == nil {
		t.Fatal("zero chunk size accepted")
	}
	if _, err := DecodeRequest(encode(64, 16)[:8]); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("truncated begin: %v, want ErrShortMessage", err)
	}
}

// TestMigrateResponsesRoundTrip covers the three acknowledgement shapes.
func TestMigrateResponsesRoundTrip(t *testing.T) {
	rr, err := DecodeSessionRestoreResponse((&SessionRestoreResponse{Err: CodeServerBusy}).Encode(nil))
	if err != nil || rr.Err != CodeServerBusy {
		t.Fatalf("restore response: %+v, %v", rr, err)
	}
	br, err := DecodeMigrateBeginResponse((&MigrateBeginResponse{Err: 3}).Encode(nil))
	if err != nil || br.Err != 3 {
		t.Fatalf("begin response: %+v, %v", br, err)
	}
	cr, err := DecodeMigrateCommitResponse((&MigrateCommitResponse{Err: 0}).Encode(nil))
	if err != nil || cr.Err != 0 {
		t.Fatalf("commit response: %+v, %v", cr, err)
	}
}

// TestTryDecodeSessionRestoreSniff pins the handshake sniff against the
// other first-payload shapes it shares a port with.
func TestTryDecodeSessionRestoreSniff(t *testing.T) {
	if _, ok := TryDecodeSessionRestore((&SessionRestoreRequest{Session: 1}).Encode(nil)); !ok {
		t.Fatal("restore request not recognized")
	}
	foreign := [][]byte{
		(&ReattachRequest{Session: 1}).Encode(nil),
		(&StatsQueryRequest{}).Encode(nil),
		(&InitRequest{Module: []byte("modmod")}).Encode(nil),
		nil,
	}
	for _, raw := range foreign {
		if _, ok := TryDecodeSessionRestore(raw); ok {
			t.Fatalf("foreign payload %x sniffed as restore", raw)
		}
	}
}

// TestCheckpointRoundTrip is the table-driven serialization suite: every
// session shape the server can checkpoint must survive encode→decode
// bit-exactly, including the nil-vs-present batch dedup window.
func TestCheckpointRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		c    *Checkpoint
	}{
		{"empty session", &Checkpoint{Session: 1, Module: "matmul"}},
		{"scheduling class", &Checkpoint{
			Session: 9, Module: "dnn", SchedClass: SchedClassRealtime, SchedWeight: 16,
		}},
		{"multi-device allocations", &Checkpoint{
			Session:   2,
			Module:    "fft",
			CurDevice: 1,
			Devices: []DeviceCheckpoint{
				{
					Device: 0,
					Allocs: []AllocCheckpoint{
						{Addr: 256, Size: 8, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
						{Addr: 1024, Size: 3, Data: []byte{9, 8, 7}},
					},
					Timeline: TimelineCheckpoint{
						EngineDone: [2]uint64{100, 250},
						Streams:    []TimelineEntry{{ID: 0, Done: 250}, {ID: 1, Done: 90}},
						Events:     []TimelineEntry{{ID: 1, Done: 120}},
						NextStream: 2,
						NextEvent:  2,
					},
				},
				{
					Device: 1,
					Allocs: []AllocCheckpoint{{Addr: 256, Size: 1, Data: []byte{42}}},
					Timeline: TimelineCheckpoint{
						Streams:    []TimelineEntry{{ID: 0, Done: 0}},
						NextStream: 1,
						NextEvent:  1,
					},
				},
			},
		}},
		{"pending async batch", &Checkpoint{
			Session:        3,
			Module:         "dnn",
			LastBatchSeq:   17,
			LastBatchCodes: []uint32{0, 0, 0, 2},
			Devices: []DeviceCheckpoint{{
				Device:   0,
				Timeline: TimelineCheckpoint{EngineDone: [2]uint64{0, 900}, NextStream: 3, NextEvent: 5},
			}},
		}},
		{"quota at limit", &Checkpoint{
			Session: 4,
			Module:  "matmul",
			Devices: []DeviceCheckpoint{{
				Device: 0,
				Allocs: []AllocCheckpoint{
					{Addr: 256, Size: 512, Data: make([]byte, 512)},
					{Addr: 768, Size: 512, Data: make([]byte, 512)},
				},
			}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := tc.c.Encode(nil)
			if len(raw) != tc.c.WireSize() {
				t.Fatalf("encoded %d bytes, WireSize %d", len(raw), tc.c.WireSize())
			}
			got, err := DecodeCheckpoint(raw)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if enc := got.Encode(nil); !bytes.Equal(enc, raw) {
				t.Fatal("re-encode mismatch")
			}
			if (got.LastBatchCodes == nil) != (tc.c.LastBatchCodes == nil) {
				t.Fatal("batch dedup window presence not preserved")
			}
			if got.Session != tc.c.Session || got.Module != tc.c.Module || got.CurDevice != tc.c.CurDevice {
				t.Fatalf("identity fields drifted: %+v", got)
			}
			if got.SchedClass != tc.c.SchedClass || got.SchedWeight != tc.c.SchedWeight {
				t.Fatalf("scheduling fields drifted: %+v", got)
			}
		})
	}
}

// TestCheckpointDecodeRejects pins the decoder's failure modes: trailing
// garbage, truncation, a foreign version, and an absurd list count.
func TestCheckpointDecodeRejects(t *testing.T) {
	good := (&Checkpoint{Session: 1, Module: "m"}).Encode(nil)
	if _, err := DecodeCheckpoint(append(good, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := DecodeCheckpoint(good[:len(good)-1]); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
	bad := append([]byte(nil), good...)
	putU32(bad[:0], CheckpointVersion+1)
	if _, err := DecodeCheckpoint(bad); err == nil {
		t.Fatal("foreign version accepted")
	}
	huge := append([]byte(nil), good...)
	putU32(huge[len(huge)-4:len(huge)-4], 0xffffffff) // device count
	if _, err := DecodeCheckpoint(huge); err == nil {
		t.Fatal("absurd device count accepted")
	}
}

// TestCheckpointRejectsBadSchedFields pins the typed errors for
// out-of-range scheduling parameters: a forged checkpoint cannot smuggle a
// hostile class or weight past the decoder.
func TestCheckpointRejectsBadSchedFields(t *testing.T) {
	base := &Checkpoint{Session: 1, Module: "m", SchedClass: SchedClassBatch, SchedWeight: 2}
	raw := base.Encode(nil)
	// SchedClass sits right after CurDevice: version(4)+session(8)+
	// module len(4)+module(1)+curdev(4) = offset 21.
	off := 4 + 8 + 4 + len(base.Module) + 4
	badClass := append([]byte(nil), raw...)
	putU32(badClass[off:off], maxSchedClass+1)
	if _, err := DecodeCheckpoint(badClass); !errors.Is(err, ErrBadSchedClass) {
		t.Fatalf("bad class: %v, want ErrBadSchedClass", err)
	}
	badWeight := append([]byte(nil), raw...)
	putU32(badWeight[off+4:off+4], MaxSchedWeight+1)
	if _, err := DecodeCheckpoint(badWeight); !errors.Is(err, ErrBadSchedWeight) {
		t.Fatalf("bad weight: %v, want ErrBadSchedWeight", err)
	}
}

// TestMigrateChunkAssembly streams a checkpoint through MigrateChunk
// frames into a ChunkAssembler and verifies the digest survives.
func TestMigrateChunkAssembly(t *testing.T) {
	c := &Checkpoint{Session: 5, Module: "fft", Devices: []DeviceCheckpoint{{
		Device: 0,
		Allocs: []AllocCheckpoint{{Addr: 256, Size: 64, Data: bytes.Repeat([]byte{0xab}, 64)}},
	}}}
	payload := c.Encode(nil)
	const chunkSize = 16
	dst := make([]byte, len(payload))
	asm, err := NewChunkAssembler(uint32(len(payload)), chunkSize, dst)
	if err != nil {
		t.Fatal(err)
	}
	var n uint32
	for off := 0; off < len(payload); off += chunkSize {
		end := off + chunkSize
		if end > len(payload) {
			end = len(payload)
		}
		mc := &MigrateChunk{Seq: n, Data: payload[off:end]}
		wire, err := DecodeMigrateChunk(mc.Encode(nil))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := asm.Add(wire.Stream()); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if !asm.Complete() {
		t.Fatal("assembler incomplete after all chunks")
	}
	if MigrateDigest(dst) != MigrateDigest(payload) {
		t.Fatal("digest mismatch after reassembly")
	}
	if _, err := DecodeCheckpoint(dst); err != nil {
		t.Fatalf("reassembled checkpoint does not decode: %v", err)
	}
}
