package protocol

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
)

// Frame header: a 4-byte little-endian payload length. The stream needs a
// delimiter because several messages (the initialization module, memcpy
// data, launch variable region) carry variable-length payloads. The header
// is transport overhead — it is not part of the Table I byte accounting,
// whose measured latency curves already include all per-message framing.
const frameHeaderSize = 4

// MaxFrameSize bounds a single frame. The largest legitimate payload is a
// cudaMemcpy of a full device allocation; the Tesla C1060 has 4 GB of
// device memory, but the paper's largest single transfer is a
// 1296 MB matrix, so 2 GiB leaves generous headroom while still rejecting
// corrupt headers.
const MaxFrameSize = 2 << 30

// WriteFrame writes one length-prefixed frame containing the encoded
// message. It performs a single Write call so a TCP transport with Nagle
// disabled emits the message eagerly, mirroring how the paper's middleware
// "explicitly control[s] the instant a frame must be sent out".
func WriteFrame(w io.Writer, m Message) error {
	buf := make([]byte, frameHeaderSize, frameHeaderSize+m.WireSize())
	binary.LittleEndian.PutUint32(buf, uint32(m.WireSize()))
	buf = m.Encode(buf)
	if len(buf) != frameHeaderSize+m.WireSize() {
		return fmt.Errorf("protocol: %T encoded %d bytes, declared %d",
			m, len(buf)-frameHeaderSize, m.WireSize())
	}
	_, err := w.Write(buf)
	return err
}

// Segmented is a message whose wire form is a small fixed head, a bulk
// payload that already exists as a caller-owned slice, and an optional
// small tail. Such messages can be framed with vectored I/O
// (WriteFrameBuffers) so the bulk bytes are never copied into a contiguous
// encode buffer.
type Segmented interface {
	Message
	// SegmentHead appends the fixed-size fields preceding the bulk payload.
	SegmentHead(dst []byte) []byte
	// SegmentBulk returns the bulk payload slice verbatim.
	SegmentBulk() []byte
	// SegmentTail appends the fixed-size fields following the bulk payload.
	SegmentTail(dst []byte) []byte
}

// FrameWriter frames messages with storage reused across calls: the
// header/head/tail encode buffer and the I/O vector both live on the writer,
// so a steady stream of frames allocates nothing. One FrameWriter serves one
// connection's send side; it is not safe for concurrent use.
type FrameWriter struct {
	scratch []byte
	vecs    net.Buffers
}

// WriteFrame writes one length-prefixed frame like the package-level
// WriteFrame, but when the message is Segmented it gathers the frame
// header, head, bulk payload and tail with a single vectored write
// (net.Buffers → writev on a TCP socket) instead of copying the bulk bytes
// into a contiguous buffer.
func (fw *FrameWriter) WriteFrame(w io.Writer, m Message) error {
	seg, ok := m.(Segmented)
	if !ok {
		// Fall back to a contiguous single-write frame, reusing scratch.
		buf := append(fw.scratch[:0], 0, 0, 0, 0)
		binary.LittleEndian.PutUint32(buf, uint32(m.WireSize()))
		buf = m.Encode(buf)
		fw.scratch = buf[:0]
		if len(buf) != frameHeaderSize+m.WireSize() {
			return fmt.Errorf("protocol: %T encoded %d bytes, declared %d",
				m, len(buf)-frameHeaderSize, m.WireSize())
		}
		_, err := w.Write(buf)
		return err
	}
	buf := append(fw.scratch[:0], 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(buf, uint32(m.WireSize()))
	buf = seg.SegmentHead(buf)
	headEnd := len(buf)
	buf = seg.SegmentTail(buf)
	fw.scratch = buf[:0]
	bulk := seg.SegmentBulk()
	if got := len(buf) - frameHeaderSize + len(bulk); got != m.WireSize() {
		return fmt.Errorf("protocol: %T segments encode %d bytes, declared %d",
			m, got, m.WireSize())
	}
	vecs := append(fw.vecs[:0], buf[:headEnd])
	if len(bulk) > 0 {
		vecs = append(vecs, bulk)
	}
	if headEnd < len(buf) {
		vecs = append(vecs, buf[headEnd:])
	}
	fw.vecs = vecs
	_, err := fw.vecs.WriteTo(w) // consumes fw.vecs in place
	// Restore the vector to its backing start and drop payload references
	// so a finished frame does not pin the caller's bulk slice.
	for i := range vecs {
		vecs[i] = nil
	}
	fw.vecs = vecs[:0]
	return err
}

// ReadFrame reads one length-prefixed frame and returns its payload.
func ReadFrame(r io.Reader) ([]byte, error) {
	n, err := ReadFrameHeader(r)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// ReadFrameHeader reads a frame's 4-byte length prefix and validates it,
// leaving the reader positioned at the payload. Transports use it to read
// the payload into a pooled buffer instead of a fresh allocation.
func ReadFrameHeader(r io.Reader) (int, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return 0, fmt.Errorf("protocol: frame of %d bytes exceeds limit %d", n, MaxFrameSize)
	}
	return int(n), nil
}
