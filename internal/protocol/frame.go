package protocol

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame header: a 4-byte little-endian payload length. The stream needs a
// delimiter because several messages (the initialization module, memcpy
// data, launch variable region) carry variable-length payloads. The header
// is transport overhead — it is not part of the Table I byte accounting,
// whose measured latency curves already include all per-message framing.
const frameHeaderSize = 4

// MaxFrameSize bounds a single frame. The largest legitimate payload is a
// cudaMemcpy of a full device allocation; the Tesla C1060 has 4 GB of
// device memory, but the paper's largest single transfer is a
// 1296 MB matrix, so 2 GiB leaves generous headroom while still rejecting
// corrupt headers.
const MaxFrameSize = 2 << 30

// WriteFrame writes one length-prefixed frame containing the encoded
// message. It performs a single Write call so a TCP transport with Nagle
// disabled emits the message eagerly, mirroring how the paper's middleware
// "explicitly control[s] the instant a frame must be sent out".
func WriteFrame(w io.Writer, m Message) error {
	buf := make([]byte, frameHeaderSize, frameHeaderSize+m.WireSize())
	binary.LittleEndian.PutUint32(buf, uint32(m.WireSize()))
	buf = m.Encode(buf)
	if len(buf) != frameHeaderSize+m.WireSize() {
		return fmt.Errorf("protocol: %T encoded %d bytes, declared %d",
			m, len(buf)-frameHeaderSize, m.WireSize())
	}
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one length-prefixed frame and returns its payload.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("protocol: frame of %d bytes exceeds limit %d", n, MaxFrameSize)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
