package protocol

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestStatsOpNames(t *testing.T) {
	for op, want := range statsOpNames {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", uint32(op), got, want)
		}
	}
}

func TestStatsQueryRoundTrip(t *testing.T) {
	req := &StatsQueryRequest{}
	raw := req.Encode(nil)
	if len(raw) != req.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(raw), req.WireSize())
	}
	decoded, err := DecodeRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := decoded.(*StatsQueryRequest); !ok {
		t.Fatalf("decoded %#v", decoded)
	}
	got, ok := TryDecodeStatsQuery(raw)
	if !ok || got == nil {
		t.Fatalf("TryDecodeStatsQuery = %+v, %v", got, ok)
	}
}

// statsReplySeeds are the boundary snapshots the broker must survive: a
// devices-free daemon and a daemon whose every gauge is pinned at its
// maximum.
func statsReplySeeds() []*StatsReply {
	return []*StatsReply{
		{},
		{Err: 3, SessionsLive: 2, SessionsParked: 1},
		{SessionsLive: 7, Devices: []DeviceStats{
			{BytesInUse: 4 << 30, Allocations: 3, Sessions: 2, BusyNanos: 12345678},
			{},
		}},
		{
			Err:            math.MaxUint32,
			SessionsLive:   math.MaxUint32,
			SessionsParked: math.MaxUint32,
			Devices: []DeviceStats{{
				BytesInUse:  math.MaxUint64,
				Allocations: math.MaxUint32,
				Sessions:    math.MaxUint32,
				BusyNanos:   math.MaxUint64,
			}},
		},
	}
}

func TestStatsReplyRoundTrip(t *testing.T) {
	for i, resp := range statsReplySeeds() {
		raw := resp.Encode(nil)
		if len(raw) != resp.WireSize() {
			t.Fatalf("seed %d: encoded %d bytes, WireSize says %d", i, len(raw), resp.WireSize())
		}
		back, err := DecodeStatsReply(raw)
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		if back.Err != resp.Err || back.SessionsLive != resp.SessionsLive ||
			back.SessionsParked != resp.SessionsParked || len(back.Devices) != len(resp.Devices) {
			t.Fatalf("seed %d: round trip %+v -> %+v", i, resp, back)
		}
		for d := range resp.Devices {
			if back.Devices[d] != resp.Devices[d] {
				t.Fatalf("seed %d device %d: %+v -> %+v", i, d, resp.Devices[d], back.Devices[d])
			}
		}
		if !bytes.Equal(back.Encode(nil), raw) {
			t.Fatalf("seed %d: re-encode mismatch", i)
		}
	}
}

// TestStatsReplyClassBlock covers the optional per-class trailer: a reply
// carrying it round-trips, a reply without it reads HasClasses false, and
// a partial trailer is rejected.
func TestStatsReplyClassBlock(t *testing.T) {
	resp := &StatsReply{
		SessionsLive: 5,
		Devices:      []DeviceStats{{BytesInUse: 1 << 20, Sessions: 5, BusyNanos: 42}},
		HasClasses:   true,
		Classes: [NumSchedClasses]ClassLoad{
			{Sessions: 2, P99WaitNanos: 1_500_000},
			{Sessions: 3, P99WaitNanos: 40_000_000},
			{Sessions: 0, P99WaitNanos: 0},
		},
	}
	raw := resp.Encode(nil)
	if len(raw) != resp.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(raw), resp.WireSize())
	}
	back, err := DecodeStatsReply(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !back.HasClasses || back.Classes != resp.Classes {
		t.Fatalf("class block round trip: %+v", back)
	}
	if !bytes.Equal(back.Encode(nil), raw) {
		t.Fatal("re-encode mismatch")
	}
	// Without the trailer the same reply decodes as a legacy snapshot.
	legacy := raw[:len(raw)-statsClassWire*NumSchedClasses]
	lback, err := DecodeStatsReply(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if lback.HasClasses {
		t.Fatal("legacy-length reply claims a class block")
	}
	// A torn trailer (any partial class block) must be rejected.
	for cut := 1; cut < statsClassWire*NumSchedClasses; cut++ {
		if _, err := DecodeStatsReply(raw[:len(raw)-cut]); err == nil {
			t.Fatalf("reply with %d-byte torn class block accepted", statsClassWire*NumSchedClasses-cut)
		}
	}
}

// TestDecodeStatsReplyTruncation walks every prefix of every seed through
// the reply decoder: errors only, no panics, no partial decodes.
func TestDecodeStatsReplyTruncation(t *testing.T) {
	for i, resp := range statsReplySeeds() {
		full := resp.Encode(nil)
		for cut := 0; cut < len(full); cut++ {
			if _, err := DecodeStatsReply(full[:cut]); err == nil {
				t.Fatalf("seed %d cut at %d: truncated reply accepted", i, cut)
			}
		}
	}
}

// TestDecodeStatsReplyRejectsAbsurdDeviceCount guards the allocation bound:
// a corrupt count field must not be believed.
func TestDecodeStatsReplyRejectsAbsurdDeviceCount(t *testing.T) {
	raw := (&StatsReply{}).Encode(nil)
	// Overwrite the device count with a huge value, leaving the length at
	// the zero-device 16 bytes.
	copy(raw[12:16], []byte{0xff, 0xff, 0xff, 0xff})
	if _, err := DecodeStatsReply(raw); err == nil {
		t.Fatal("absurd device count accepted")
	}
	// A count just above the cap with a matching payload length must still
	// be rejected, not allocated.
	big := &StatsReply{Devices: make([]DeviceStats, 2)}
	raw = big.Encode(nil)
	copy(raw[12:16], putU32(nil, MaxStatsDevices+1))
	if _, err := DecodeStatsReply(raw); err == nil {
		t.Fatal("over-cap device count accepted")
	}
}

// TestTryDecodeStatsQueryRejectsOtherOpenings guards the three-way opening
// message discrimination: init and reattach payloads must never be
// mistaken for a probe, and vice versa.
func TestTryDecodeStatsQueryRejectsOtherOpenings(t *testing.T) {
	others := [][]byte{
		(&InitRequest{Module: []byte("m")}).Encode(nil),
		(&InitRequest{}).Encode(nil), // 4 bytes: module length 0 != OpStatsQuery
		(&ReattachRequest{Session: 1}).Encode(nil),
	}
	for _, raw := range others {
		if q, ok := TryDecodeStatsQuery(raw); ok {
			t.Fatalf("payload %x misread as stats query %+v", raw, q)
		}
	}
	// The reverse: a probe frame must not decode as a plausible init. Its
	// leading u32 (the op) would be the declared module length, far beyond
	// the zero remaining bytes.
	probe := (&StatsQueryRequest{}).Encode(nil)
	if ir, err := DecodeInitRequest(probe); err == nil {
		t.Fatalf("stats query decoded as init with module %x", ir.Module)
	}
	if _, ok := TryDecodeReattach(probe); ok {
		t.Fatal("stats query misread as reattach")
	}
}

// FuzzDecodeStatsReply feeds arbitrary bytes to the reply decoder the
// broker's health loop trusts: never a panic, never an absurd allocation
// from a corrupt device count, and every accepted payload re-encodes
// canonically with a WireSize matching the bytes accepted.
func FuzzDecodeStatsReply(f *testing.F) {
	for _, resp := range statsReplySeeds() {
		full := resp.Encode(nil)
		f.Add(full)
		f.Add(full[:len(full)/2])
		if len(full) > 16 {
			f.Add(full[:len(full)-1]) // truncated mid-device
			f.Add(full[:17])          // cut inside the first device record
		}
	}
	withClasses := (&StatsReply{
		SessionsLive: 2,
		Devices:      []DeviceStats{{Sessions: 2, BusyNanos: 7}},
		HasClasses:   true,
		Classes:      [NumSchedClasses]ClassLoad{{Sessions: 1, P99WaitNanos: 9}, {Sessions: 1}, {}},
	}).Encode(nil)
	f.Add(withClasses)
	f.Add(withClasses[:len(withClasses)-1]) // torn class block
	huge := (&StatsReply{}).Encode(nil)
	huge[12], huge[13] = 0xff, 0xff // declares 65535 devices with no payload
	f.Add(huge)
	pastCap := (&StatsReply{Devices: make([]DeviceStats, 4)}).Encode(nil)
	putU32(pastCap[:12], MaxStatsDevices+1) // device count past the cap
	f.Add(pastCap)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := DecodeStatsReply(raw)
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("nil reply with nil error")
		}
		if len(m.Devices) > MaxStatsDevices {
			t.Fatalf("decoder accepted %d devices (max %d)", len(m.Devices), MaxStatsDevices)
		}
		if m.WireSize() != len(raw) {
			t.Fatalf("WireSize %d != accepted payload %d", m.WireSize(), len(raw))
		}
		if !bytes.Equal(m.Encode(nil), raw) {
			t.Fatalf("re-encode mismatch on %x", raw)
		}
	})
}

func TestDecodeRequestBeyondMigrateSentinel(t *testing.T) {
	raw := putU32(nil, uint32(opMigrateSentinel))
	if _, err := DecodeRequest(raw); !errors.Is(err, ErrBadOp) {
		t.Fatalf("op beyond the migrate block: %v, want ErrBadOp", err)
	}
}
