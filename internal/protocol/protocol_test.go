package protocol

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

// Table I fixed sizes: these are the paper's published numbers and must be
// derived unchanged from the encoders.
func TestTableIFixedSizes(t *testing.T) {
	cases := []struct {
		op         Op
		send, recv int
	}{
		{OpInit, 4, 12},           // x+4 / 12
		{OpMalloc, 8, 8},          // 8 / 8
		{OpMemcpyToDevice, 20, 4}, // x+20 / 4
		{OpMemcpyToHost, 20, 4},   // 20 / x+4
		{OpLaunch, 44, 4},         // x+44 / 4
		{OpFree, 8, 4},            // 8 / 4
		{OpDeviceSynchronize, 4, 4} /* extension */}
	for _, c := range cases {
		if got := FixedSendBytes(c.op); got != c.send {
			t.Errorf("%v: fixed send bytes = %d, want %d", c.op, got, c.send)
		}
		if got := FixedReceiveBytes(c.op); got != c.recv {
			t.Errorf("%v: fixed receive bytes = %d, want %d", c.op, got, c.recv)
		}
	}
}

// The documentation table must agree with the encoders.
func TestTableIDocumentationMatchesEncoders(t *testing.T) {
	ops := map[string]Op{
		"Initialization":         OpInit,
		"cudaMalloc":             OpMalloc,
		"cudaMemcpy (to device)": OpMemcpyToDevice,
		"cudaMemcpy (to host)":   OpMemcpyToHost,
		"cudaLaunch":             OpLaunch,
		"cudaFree":               OpFree,
	}
	rows := TableI()
	if len(rows) != len(ops) {
		t.Fatalf("TableI has %d rows, want %d", len(rows), len(ops))
	}
	for _, row := range rows {
		op, ok := ops[row.Operation]
		if !ok {
			t.Fatalf("unexpected Table I operation %q", row.Operation)
		}
		send, _, recv, _ := row.Totals()
		if send != FixedSendBytes(op) {
			t.Errorf("%s: documented send %d != encoder %d", row.Operation, send, FixedSendBytes(op))
		}
		if recv != FixedReceiveBytes(op) {
			t.Errorf("%s: documented recv %d != encoder %d", row.Operation, recv, FixedReceiveBytes(op))
		}
	}
}

// The paper's case studies: the MM module is 21,486 bytes, so the
// initialization message sends 21,490; the FFT module is 7,852 bytes,
// sending 7,856.
func TestModuleMessageSizes(t *testing.T) {
	mm := &InitRequest{Module: make([]byte, 21486)}
	if got := mm.WireSize(); got != 21490 {
		t.Fatalf("MM init message = %d bytes, want 21490", got)
	}
	fft := &InitRequest{Module: make([]byte, 7852)}
	if got := fft.WireSize(); got != 7856 {
		t.Fatalf("FFT init message = %d bytes, want 7856", got)
	}
}

// Launch messages in the case studies: Table II lists 52 bytes for the MM
// launch and 58 for the FFT launch, i.e. variable regions of 8 and 14
// bytes (kernel name plus NUL plus packed parameters).
func TestLaunchMessageSizeExamples(t *testing.T) {
	mm := &LaunchRequest{Name: "sgemmNN", Params: nil}
	if got := mm.WireSize(); got != 52 {
		t.Fatalf("MM launch = %d bytes, want 52", got)
	}
	fft := &LaunchRequest{Name: "fft512_batch", Params: []byte{1}}
	if got := fft.WireSize(); got != 58 {
		t.Fatalf("FFT launch = %d bytes, want 58", got)
	}
}

func TestInitRoundTrip(t *testing.T) {
	req := &InitRequest{Module: []byte("binary kernel module blob")}
	got, err := DecodeInitRequest(req.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Module, req.Module) {
		t.Fatal("init module corrupted in round trip")
	}
	resp := &InitResponse{CapabilityMajor: 1, CapabilityMinor: 3, Err: 0}
	gotResp, err := DecodeInitResponse(resp.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if *gotResp != *resp {
		t.Fatalf("init response round trip: got %+v, want %+v", gotResp, resp)
	}
}

func TestInitDecodeErrors(t *testing.T) {
	if _, err := DecodeInitRequest([]byte{1, 2}); err == nil {
		t.Fatal("want error for short init")
	}
	// Declared length disagrees with payload.
	bad := (&InitRequest{Module: []byte{1, 2, 3}}).Encode(nil)[:6]
	if _, err := DecodeInitRequest(bad); err == nil {
		t.Fatal("want error for truncated module")
	}
	if _, err := DecodeInitResponse([]byte{0}); err == nil {
		t.Fatal("want error for short init response")
	}
}

func TestRequestRoundTrips(t *testing.T) {
	reqs := []Request{
		&MallocRequest{Size: 1 << 26},
		&MemcpyToDeviceRequest{Dst: 0x1000, Src: 0xdead, Data: []byte{9, 8, 7}},
		&MemcpyToHostRequest{Dst: 0xbeef, Src: 0x2000, Size: 4096},
		&LaunchRequest{
			TextureOffset: 3, NumTextures: 1,
			BlockDim: [3]uint32{16, 16, 1}, GridDim: [2]uint32{256, 256},
			SharedSize: 2048, Stream: 0,
			Name: "sgemmNN", Params: []byte{1, 2, 3, 4},
		},
		&FreeRequest{DevPtr: 0x1000},
		&SyncRequest{},
		&FinalizeRequest{},
	}
	for _, req := range reqs {
		enc := req.Encode(nil)
		if len(enc) != req.WireSize() {
			t.Fatalf("%T: encoded %d bytes, WireSize says %d", req, len(enc), req.WireSize())
		}
		dec, err := DecodeRequest(enc)
		if err != nil {
			t.Fatalf("%T: decode: %v", req, err)
		}
		if !reflect.DeepEqual(normalize(dec), normalize(req)) {
			t.Fatalf("%T round trip mismatch:\n got %#v\nwant %#v", req, dec, req)
		}
	}
}

// normalize maps empty slices to nil so DeepEqual compares semantics, not
// allocation artifacts.
func normalize(r Request) Request {
	switch m := r.(type) {
	case *MemcpyToDeviceRequest:
		c := *m
		if len(c.Data) == 0 {
			c.Data = nil
		}
		return &c
	case *LaunchRequest:
		c := *m
		if len(c.Params) == 0 {
			c.Params = nil
		}
		return &c
	}
	return r
}

func TestResponseRoundTrips(t *testing.T) {
	{
		r := &MallocResponse{Err: 0, DevPtr: 0x40}
		got, err := DecodeMallocResponse(r.Encode(nil))
		if err != nil || *got != *r {
			t.Fatalf("malloc response: %v, %+v", err, got)
		}
	}
	{
		r := &MemcpyToDeviceResponse{Err: 2}
		got, err := DecodeMemcpyToDeviceResponse(r.Encode(nil))
		if err != nil || *got != *r {
			t.Fatalf("memcpy-to-device response: %v, %+v", err, got)
		}
	}
	{
		r := &MemcpyToHostResponse{Data: []byte{5, 6}, Err: 0}
		got, err := DecodeMemcpyToHostResponse(r.Encode(nil))
		if err != nil || got.Err != 0 || !bytes.Equal(got.Data, r.Data) {
			t.Fatalf("memcpy-to-host response: %v, %+v", err, got)
		}
	}
	{
		r := &LaunchResponse{Err: 0}
		got, err := DecodeLaunchResponse(r.Encode(nil))
		if err != nil || *got != *r {
			t.Fatalf("launch response: %v, %+v", err, got)
		}
	}
	{
		r := &FreeResponse{Err: 0}
		got, err := DecodeFreeResponse(r.Encode(nil))
		if err != nil || *got != *r {
			t.Fatalf("free response: %v, %+v", err, got)
		}
	}
	{
		r := &SyncResponse{Err: 0}
		got, err := DecodeSyncResponse(r.Encode(nil))
		if err != nil || *got != *r {
			t.Fatalf("sync response: %v, %+v", err, got)
		}
	}
}

func TestDecodeRequestErrors(t *testing.T) {
	if _, err := DecodeRequest(nil); err == nil {
		t.Fatal("want error for empty request")
	}
	if _, err := DecodeRequest([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Fatal("want error for unknown op")
	}
	// Memcpy with wrong kind.
	bad := (&MemcpyToDeviceRequest{Data: []byte{1}}).Encode(nil)
	bad[16] = 9 // corrupt the kind field
	if _, err := DecodeRequest(bad); err == nil {
		t.Fatal("want error for bad memcpy kind")
	}
	// Memcpy with inconsistent size.
	bad = (&MemcpyToDeviceRequest{Data: []byte{1, 2, 3}}).Encode(nil)
	bad[12] = 99
	if _, err := DecodeRequest(bad); err == nil {
		t.Fatal("want error for inconsistent memcpy size")
	}
	// Launch with corrupted params offset.
	badLaunch := (&LaunchRequest{Name: "k"}).Encode(nil)
	badLaunch[8] = 200
	if _, err := DecodeRequest(badLaunch); err == nil {
		t.Fatal("want error for out-of-range params offset")
	}
	// Launch whose name region lacks the NUL.
	badLaunch = (&LaunchRequest{Name: "kk", Params: []byte{7}}).Encode(nil)
	badLaunch[8] = 2 // points inside the name, where there is no NUL
	if _, err := DecodeRequest(badLaunch); err == nil {
		t.Fatal("want error for missing NUL terminator")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		&MallocRequest{Size: 123},
		&MemcpyToDeviceRequest{Dst: 1, Data: bytes.Repeat([]byte{0xab}, 1000)},
		&FinalizeRequest{},
	}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range msgs {
		payload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(payload, m.Encode(nil)) {
			t.Fatalf("%T: frame payload mismatch", m)
		}
	}
}

func TestReadFrameRejectsHugeHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // ~4 GiB declared length
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("want error for oversized frame header")
	}
}

func TestReadFrameShortStream(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{10, 0, 0, 0, 1, 2}) // declares 10, delivers 2
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("want error for truncated frame body")
	}
}

func TestOpStrings(t *testing.T) {
	for op := OpInit; op < opSentinel; op++ {
		if s := op.String(); s == "" || s[0] == 'O' && s[1] == 'p' && op != OpInit {
			t.Fatalf("op %d has placeholder name %q", op, s)
		}
	}
	if Op(99).String() != "Op(99)" {
		t.Fatal("unknown op should format numerically")
	}
}

// Property: every memcpy-to-device payload survives a wire round trip.
func TestMemcpyRoundTripProperty(t *testing.T) {
	f := func(dst, src uint32, data []byte) bool {
		req := &MemcpyToDeviceRequest{Dst: dst, Src: src, Data: data}
		dec, err := DecodeRequest(req.Encode(nil))
		if err != nil {
			return false
		}
		got, ok := dec.(*MemcpyToDeviceRequest)
		return ok && got.Dst == dst && got.Src == src && bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: launch requests with arbitrary printable names and parameter
// blobs round trip, and the wire size always equals 44 + len(name) + 1 +
// len(params), i.e. Table I's "x + 44".
func TestLaunchRoundTripProperty(t *testing.T) {
	f := func(nameBytes []byte, params []byte, shared uint32) bool {
		name := make([]byte, 0, len(nameBytes))
		for _, b := range nameBytes {
			if b == 0 {
				b = '_' // kernel names cannot contain NUL
			}
			name = append(name, b)
		}
		req := &LaunchRequest{Name: string(name), Params: params, SharedSize: shared}
		if req.WireSize() != 44+len(name)+1+len(params) {
			return false
		}
		dec, err := DecodeRequest(req.Encode(nil))
		if err != nil {
			return false
		}
		got, ok := dec.(*LaunchRequest)
		return ok && got.Name == string(name) && bytes.Equal(got.Params, params) &&
			got.SharedSize == shared
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: frames written back to back are read back intact in order.
func TestFrameSequenceProperty(t *testing.T) {
	f := func(blobs [][]byte) bool {
		var buf bytes.Buffer
		for _, b := range blobs {
			if err := WriteFrame(&buf, &MemcpyToDeviceRequest{Data: b}); err != nil {
				return false
			}
		}
		for _, b := range blobs {
			payload, err := ReadFrame(&buf)
			if err != nil {
				return false
			}
			dec, err := DecodeRequest(payload)
			if err != nil {
				return false
			}
			if !bytes.Equal(dec.(*MemcpyToDeviceRequest).Data, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
