package protocol

import (
	"bytes"
	"errors"
	"testing"
)

func TestSessionOpNames(t *testing.T) {
	for op, want := range sessionOpNames {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", uint32(op), got, want)
		}
	}
}

func TestSessionHelloRoundTrip(t *testing.T) {
	req := &SessionHelloRequest{}
	raw := req.Encode(nil)
	if len(raw) != req.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(raw), req.WireSize())
	}
	decoded, err := DecodeRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := decoded.(*SessionHelloRequest); !ok {
		t.Fatalf("decoded %#v", decoded)
	}

	resp := &SessionHelloResponse{Err: 0, Session: 0xDEADBEEFCAFE}
	rraw := resp.Encode(nil)
	if len(rraw) != resp.WireSize() {
		t.Fatalf("response encoded %d bytes, WireSize says %d", len(rraw), resp.WireSize())
	}
	back, err := DecodeSessionHelloResponse(rraw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Session != resp.Session || back.Err != resp.Err {
		t.Fatalf("round trip %+v -> %+v", resp, back)
	}
}

// TestSessionHelloClassForms covers the dual encoding: the bare 4-byte
// hello and the extended 12-byte class/weight form, plus the typed
// rejections for out-of-range fields.
func TestSessionHelloClassForms(t *testing.T) {
	bare := &SessionHelloRequest{}
	if got := bare.Encode(nil); len(got) != 4 || bare.WireSize() != 4 {
		t.Fatalf("bare hello encoded %d bytes (WireSize %d), want 4", len(got), bare.WireSize())
	}
	ext := &SessionHelloRequest{Class: SchedClassRealtime, Weight: 8}
	raw := ext.Encode(nil)
	if len(raw) != 12 || ext.WireSize() != 12 {
		t.Fatalf("extended hello encoded %d bytes (WireSize %d), want 12", len(raw), ext.WireSize())
	}
	decoded, err := DecodeRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := decoded.(*SessionHelloRequest)
	if !ok || got.Class != SchedClassRealtime || got.Weight != 8 {
		t.Fatalf("extended hello decoded as %#v", decoded)
	}

	badClass := (&SessionHelloRequest{Class: maxSchedClass + 1, Weight: 1}).Encode(nil)
	if _, err := DecodeRequest(badClass); !errors.Is(err, ErrBadSchedClass) {
		t.Fatalf("class out of range: %v, want ErrBadSchedClass", err)
	}
	badWeight := (&SessionHelloRequest{Class: SchedClassBatch, Weight: MaxSchedWeight + 1}).Encode(nil)
	if _, err := DecodeRequest(badWeight); !errors.Is(err, ErrBadSchedWeight) {
		t.Fatalf("weight out of range: %v, want ErrBadSchedWeight", err)
	}
	// The all-defaults extended spelling is non-canonical; only the bare
	// form encodes it.
	zeroExt := append(bare.Encode(nil), 0, 0, 0, 0, 0, 0, 0, 0)
	if _, err := DecodeRequest(zeroExt); err == nil {
		t.Fatal("non-canonical zero extended hello accepted")
	}
	// A truncated extended form is neither valid spelling.
	if _, err := DecodeRequest(raw[:8]); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("truncated hello: %v, want ErrShortMessage", err)
	}
}

func TestReattachRoundTrip(t *testing.T) {
	req := &ReattachRequest{Session: 42}
	raw := req.Encode(nil)
	if len(raw) != req.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(raw), req.WireSize())
	}
	got, ok := TryDecodeReattach(raw)
	if !ok || got.Session != 42 {
		t.Fatalf("TryDecodeReattach = %+v, %v", got, ok)
	}
	decoded, err := DecodeRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := decoded.(*ReattachRequest); !ok || r.Session != 42 {
		t.Fatalf("DecodeRequest gave %#v", decoded)
	}
	if !bytes.Equal(decoded.(*ReattachRequest).Encode(nil), raw) {
		t.Fatal("re-encode mismatch")
	}

	resp := &ReattachResponse{Err: 3, CapabilityMajor: 1, CapabilityMinor: 2}
	back, err := DecodeReattachResponse(resp.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if *back != *resp {
		t.Fatalf("round trip %+v -> %+v", resp, back)
	}
}

// TestTryDecodeReattachRejectsInitPayloads guards the handshake
// discrimination: genuine init payloads — including pathological module
// lengths — must never be mistaken for a reattach.
func TestTryDecodeReattachRejectsInitPayloads(t *testing.T) {
	inits := [][]byte{
		(&InitRequest{Module: []byte("m")}).Encode(nil),
		(&InitRequest{Module: []byte("12345678")}).Encode(nil), // 12 bytes total
		(&InitRequest{}).Encode(nil),
	}
	for _, raw := range inits {
		if r, ok := TryDecodeReattach(raw); ok {
			t.Fatalf("init payload %x misread as reattach %+v", raw, r)
		}
	}
	// And the reverse: a reattach frame must not decode as a plausible init.
	reattach := (&ReattachRequest{Session: 1}).Encode(nil)
	if ir, err := DecodeInitRequest(reattach); err == nil && len(ir.Module) == 8 {
		// A 12-byte frame would need a declared module length of
		// OpSessionReattach (the leading u32), which is far larger than the
		// 8 remaining bytes, so the init decoder must reject it.
		t.Fatalf("reattach frame decoded as init with module %x", ir.Module)
	}
}

// TestDecodeRequestNeverPanicsOnTruncation runs every request shape
// through DecodeRequest at every prefix length: the decoder must return an
// error or a valid request, never panic. This is the deterministic core of
// the truncated-frame fuzz coverage.
func TestDecodeRequestNeverPanicsOnTruncation(t *testing.T) {
	msgs := []Request{
		&MallocRequest{Size: 64},
		&MemcpyToDeviceRequest{Dst: 1, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		&MemcpyToHostRequest{Src: 2, Size: 8},
		&LaunchRequest{Name: "sgemmNN", Params: []byte{1, 2, 3, 4}},
		&FreeRequest{DevPtr: 3},
		&SyncRequest{},
		&FinalizeRequest{},
		&StreamCreateRequest{},
		&StreamOpRequest{Code: OpStreamSynchronize, Stream: 1},
		&MemcpyToDeviceAsyncRequest{Dst: 1, Stream: 1, Data: []byte{9, 8, 7}},
		&MemcpyToHostAsyncRequest{Src: 1, Size: 4, Stream: 1},
		&EventCreateRequest{},
		&EventRecordRequest{Event: 1, Stream: 1},
		&EventOpRequest{Code: OpEventDestroy, Event: 1},
		&EventElapsedRequest{Start: 1, End: 2},
		&GetDeviceCountRequest{},
		&SetDeviceRequest{Device: 1},
		&GetDevicePropertiesRequest{},
		&MemsetRequest{DevPtr: 1, Value: 2, Size: 3},
		&MemcpyD2DRequest{Dst: 1, Src: 2, Size: 3},
		&MemcpyStreamBeginRequest{Ptr: 1, Total: 64, Kind: KindHostToDevice, ChunkSize: 16},
		&MemcpyStreamChunk{Seq: 2, Data: []byte{1, 2, 3}},
		&MemcpyStreamEndRequest{Chunks: 4},
		&SessionHelloRequest{},
		&ReattachRequest{Session: 9},
		&StatsQueryRequest{},
	}
	for _, m := range msgs {
		full := m.Encode(nil)
		for cut := 0; cut <= len(full); cut++ {
			raw := full[:cut]
			req, err := DecodeRequest(raw) // must not panic
			if err == nil && req == nil {
				t.Fatalf("%v cut at %d: nil request, nil error", m.Op(), cut)
			}
			if cut < len(full) && err == nil && !bytes.Equal(req.Encode(nil), raw) {
				t.Fatalf("%v cut at %d decoded to a different message", m.Op(), cut)
			}
		}
		// Single-byte corruption of the op field must yield an error or a
		// message that still re-encodes canonically, never a panic.
		for bit := 0; bit < 8; bit++ {
			raw := bytes.Clone(full)
			raw[0] ^= 1 << bit
			req, err := DecodeRequest(raw)
			if err == nil {
				if req == nil {
					t.Fatalf("%v bitflip %d: nil request, nil error", m.Op(), bit)
				}
				if !bytes.Equal(req.Encode(nil), raw) {
					t.Fatalf("%v bitflip %d: corrupt frame re-encoded differently", m.Op(), bit)
				}
			}
		}
	}
	if _, err := DecodeRequest([]byte{}); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("empty payload: %v, want ErrShortMessage", err)
	}
	if _, err := DecodeRequest([]byte{0xEE, 0xFF, 0xFF, 0xFF}); !errors.Is(err, ErrBadOp) {
		t.Fatalf("unknown op: %v, want ErrBadOp", err)
	}
}
