package protocol

import (
	"bytes"
	"strings"
	"testing"
)

func TestChunkedOpNames(t *testing.T) {
	for op, want := range chunkedOpNames {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", uint32(op), got, want)
		}
	}
}

func TestChunkedRequestRoundTrips(t *testing.T) {
	reqs := []Request{
		&MemcpyStreamBeginRequest{Ptr: 0x100, Total: 1 << 20, Kind: KindHostToDevice, ChunkSize: 1 << 16},
		&MemcpyStreamBeginRequest{Ptr: 0x200, Total: 7, Kind: KindDeviceToHost, ChunkSize: 4},
		&MemcpyStreamChunk{Seq: 3, Data: []byte{1, 2, 3, 4, 5}},
		&MemcpyStreamChunk{Seq: 0, Data: nil},
		&MemcpyStreamEndRequest{Chunks: 16},
	}
	for _, req := range reqs {
		enc := req.Encode(nil)
		if len(enc) != req.WireSize() {
			t.Fatalf("%T encodes %d bytes, declares %d", req, len(enc), req.WireSize())
		}
		back, err := DecodeRequest(enc)
		if err != nil {
			t.Fatalf("%T: %v", req, err)
		}
		if !bytes.Equal(back.Encode(nil), enc) {
			t.Fatalf("%T does not round-trip", req)
		}
	}
}

func TestChunkedResponseRoundTrips(t *testing.T) {
	ack := &MemcpyStreamBeginResponse{Err: 11}
	back, err := DecodeMemcpyStreamBeginResponse(ack.Encode(nil))
	if err != nil || back.Err != 11 {
		t.Fatalf("begin response round trip: %+v, %v", back, err)
	}
	if _, err := DecodeMemcpyStreamBeginResponse([]byte{1, 2}); err == nil {
		t.Fatal("short begin response must fail")
	}
	end := &MemcpyStreamEndResponse{Err: 4}
	back2, err := DecodeMemcpyStreamEndResponse(end.Encode(nil))
	if err != nil || back2.Err != 4 {
		t.Fatalf("end response round trip: %+v, %v", back2, err)
	}
	if _, err := DecodeMemcpyStreamEndResponse([]byte{}); err == nil {
		t.Fatal("short end response must fail")
	}
}

// TestStreamBeginRejectsBeforeAllocation: corrupt Begin fields must be
// rejected at decode time — nothing downstream may size a buffer from them.
func TestStreamBeginRejectsBeforeAllocation(t *testing.T) {
	encode := func(ptr, total, kind, chunkSize uint32) []byte {
		return (&MemcpyStreamBeginRequest{Ptr: ptr, Total: total, Kind: kind, ChunkSize: chunkSize}).Encode(nil)
	}
	cases := map[string][]byte{
		"bad kind":         encode(0, 64, 9, 16),
		"kind zero":        encode(0, 64, 0, 16),
		"oversize total":   encode(0, MaxFrameSize+1, KindHostToDevice, 1<<20),
		"zero chunk size":  encode(0, 64, KindHostToDevice, 0),
		"huge chunk size":  encode(0, 64, KindHostToDevice, MaxFrameSize+1),
		"truncated":        encode(0, 64, KindHostToDevice, 16)[:12],
		"trailing garbage": append(encode(0, 64, KindHostToDevice, 16), 0xee),
	}
	for name, raw := range cases {
		if _, err := DecodeRequest(raw); err == nil {
			t.Errorf("%s: decode must fail", name)
		}
	}
}

func TestStreamChunkDecodeErrors(t *testing.T) {
	good := (&MemcpyStreamChunk{Seq: 1, Data: []byte{1, 2, 3}}).Encode(nil)
	if _, err := DecodeMemcpyStreamChunk(good[:8]); err == nil {
		t.Fatal("truncated chunk must fail")
	}
	// Declared size larger than the remaining payload.
	short := append([]byte(nil), good...)
	short = short[:len(short)-1]
	if _, err := DecodeMemcpyStreamChunk(short); err == nil {
		t.Fatal("chunk with missing payload bytes must fail")
	}
	// Declared size smaller than the payload present.
	long := append(append([]byte(nil), good...), 0xaa)
	if _, err := DecodeMemcpyStreamChunk(long); err == nil {
		t.Fatal("chunk with excess payload bytes must fail")
	}
	wrongOp := append((&MemcpyStreamEndRequest{}).Encode(nil), 0, 0, 0, 0)
	if _, err := DecodeMemcpyStreamChunk(wrongOp); err == nil {
		t.Fatal("wrong op must fail")
	}
	// Data must alias the input buffer, not copy it.
	c, err := DecodeMemcpyStreamChunk(good)
	if err != nil {
		t.Fatal(err)
	}
	good[12] = 0x55
	if c.Data[0] != 0x55 {
		t.Fatal("chunk Data must alias the frame buffer")
	}
}

func TestChunkAssemblerReassembles(t *testing.T) {
	src := []byte("the quick brown fox jumps over the lazy dog")
	total, chunkSize := uint32(len(src)), uint32(10)
	dst := make([]byte, total)
	asm, err := NewChunkAssembler(total, chunkSize, dst)
	if err != nil {
		t.Fatal(err)
	}
	var seq uint32
	for off := 0; off < len(src); off += int(chunkSize) {
		end := off + int(chunkSize)
		if end > len(src) {
			end = len(src)
		}
		gotOff, err := asm.Add(&MemcpyStreamChunk{Seq: seq, Data: src[off:end]})
		if err != nil {
			t.Fatal(err)
		}
		if gotOff != off {
			t.Fatalf("chunk %d placed at %d, want %d", seq, gotOff, off)
		}
		seq++
	}
	if !asm.Complete() {
		t.Fatal("assembler not complete after all chunks")
	}
	if err := asm.Finish(&MemcpyStreamEndRequest{Chunks: Chunks(total, chunkSize)}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("reassembled %q", dst)
	}
}

func TestChunkAssemblerRejectsProtocolViolations(t *testing.T) {
	mk := func() *ChunkAssembler {
		a, err := NewChunkAssembler(20, 8, nil)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	full := bytes.Repeat([]byte{1}, 8)

	if _, err := mk().Add(&MemcpyStreamChunk{Seq: 1, Data: full}); err == nil {
		t.Fatal("out-of-order first chunk must fail")
	}
	a := mk()
	if _, err := a.Add(&MemcpyStreamChunk{Seq: 0, Data: full}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Add(&MemcpyStreamChunk{Seq: 0, Data: full}); err == nil {
		t.Fatal("duplicate chunk must fail")
	}
	if _, err := mk().Add(&MemcpyStreamChunk{Seq: 0, Data: full[:5]}); err == nil {
		t.Fatal("undersized non-final chunk must fail")
	}
	// Final chunk must carry exactly the remainder (20 - 2*8 = 4).
	a = mk()
	a.Add(&MemcpyStreamChunk{Seq: 0, Data: full})
	a.Add(&MemcpyStreamChunk{Seq: 1, Data: full})
	if _, err := a.Add(&MemcpyStreamChunk{Seq: 2, Data: full}); err == nil {
		t.Fatal("oversized final chunk must fail")
	}
	if _, err := a.Add(&MemcpyStreamChunk{Seq: 2, Data: full[:4]}); err != nil {
		t.Fatal(err)
	}
	// A chunk past the declared total must fail.
	if _, err := a.Add(&MemcpyStreamChunk{Seq: 3, Data: full}); err == nil {
		t.Fatal("chunk past declared total must fail")
	}
	// Early End: out-of-order End before the stream completed.
	early := mk()
	early.Add(&MemcpyStreamChunk{Seq: 0, Data: full})
	if err := early.Finish(&MemcpyStreamEndRequest{Chunks: 1}); err == nil {
		t.Fatal("End before the declared total arrived must fail")
	} else if !strings.Contains(err.Error(), "stream end after") {
		t.Fatalf("unexpected early-End error: %v", err)
	}
	if err := a.Finish(&MemcpyStreamEndRequest{Chunks: 7}); err == nil {
		t.Fatal("End with wrong chunk count must fail")
	}
	if err := a.Finish(&MemcpyStreamEndRequest{Chunks: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestNewChunkAssemblerRejects(t *testing.T) {
	if _, err := NewChunkAssembler(MaxFrameSize+1, 1<<20, nil); err == nil {
		t.Fatal("oversize total must be rejected before any allocation")
	}
	if _, err := NewChunkAssembler(64, 0, nil); err == nil {
		t.Fatal("zero chunk size must fail")
	}
	if _, err := NewChunkAssembler(64, 16, make([]byte, 63)); err == nil {
		t.Fatal("mis-sized destination must fail")
	}
}

func TestChunks(t *testing.T) {
	cases := []struct{ total, chunk, want uint32 }{
		{0, 8, 0},
		{1, 8, 1},
		{8, 8, 1},
		{9, 8, 2},
		{64, 8, 8},
		{64, 0, 0},
	}
	for _, c := range cases {
		if got := Chunks(c.total, c.chunk); got != c.want {
			t.Errorf("Chunks(%d, %d) = %d, want %d", c.total, c.chunk, got, c.want)
		}
	}
}
