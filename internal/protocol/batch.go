package protocol

import "fmt"

// This file defines the wire-level batching extension. The paper's protocol
// pays one network round trip per CUDA call, which is fine for the
// bulk-transfer case studies but dominates latency-bound AI workloads:
// thousands of tiny kernel launches, async copies, and event records where
// RTT — not bandwidth — is the bottleneck. A batch coalesces a run of
// consecutive fire-and-forget operations (the ones whose response is a bare
// result code) into one OpBatch frame answered by one combined response, so
// a request loop of N small calls costs one round trip instead of N.
//
// The frame layout follows the Table I style: op (4) + sequence (8) +
// sub-op count (4) + per sub-op {length (4) + the sub-op's ordinary encoded
// request}. The sequence number makes a replayed batch idempotent-safe
// under the retry/reconnect machinery: the server remembers the last batch
// sequence it executed per session, and a batch that arrives again with
// that sequence — the retry of an exchange whose response was lost — is
// answered from the stored result codes without re-executing anything.
//
// Only operations whose response carries nothing but the result code are
// batchable (BatchableOp); the decoder enforces it, so a malformed or
// hostile frame cannot smuggle a data-returning or session-management
// operation past the per-op dispatch paths.

// Batch operations continue the Op space after the stats extension.
const (
	OpBatch Op = iota + opStatsSentinel
	opBatchSentinel
)

// batchOpNames extends Op.String for the batching extension.
var batchOpNames = map[Op]string{
	OpBatch: "batched calls",
}

// MaxBatchOps bounds the sub-op count one batch frame may declare, so a
// corrupt or hostile frame cannot make the decoder allocate absurd slices.
const MaxBatchOps = 1024

// BatchableOp reports whether op may ride inside an OpBatch frame: only
// fire-and-forget operations whose response is a bare result code qualify.
// Anything returning data or a handle, and anything touching session or
// connection state, must travel as its own exchange.
func BatchableOp(op Op) bool {
	switch op {
	case OpLaunch, OpMemcpyToDeviceAsync, OpEventRecord, OpMemset:
		return true
	default:
		return false
	}
}

// BatchRequest carries a run of coalesced sub-operations: op (4) +
// sequence (8) + count (4) + per sub-op {length (4) + encoded request} =
// 16 + Σ(4+len) bytes. Subs holds each sub-op's ordinary encoded form;
// Decoded, populated by the wire decoder, holds the parsed requests in the
// same order (Encode ignores it).
type BatchRequest struct {
	Seq     uint64
	Subs    [][]byte
	Decoded []Request
}

// Encode implements Message.
func (m *BatchRequest) Encode(dst []byte) []byte {
	dst = putU32(dst, uint32(OpBatch))
	dst = putU64(dst, m.Seq)
	dst = putU32(dst, uint32(len(m.Subs)))
	for _, sub := range m.Subs {
		dst = putU32(dst, uint32(len(sub)))
		dst = append(dst, sub...)
	}
	return dst
}

// WireSize implements Message.
func (m *BatchRequest) WireSize() int {
	n := 16
	for _, sub := range m.Subs {
		n += 4 + len(sub)
	}
	return n
}

// Op implements Request.
func (m *BatchRequest) Op() Op { return OpBatch }

// Requests returns the parsed sub-operations, decoding Subs when the
// request was built locally rather than parsed off the wire.
func (m *BatchRequest) Requests() ([]Request, error) {
	if m.Decoded != nil {
		return m.Decoded, nil
	}
	reqs := make([]Request, len(m.Subs))
	for i, sub := range m.Subs {
		r, err := DecodeRequest(sub)
		if err != nil {
			return nil, fmt.Errorf("protocol: batch sub-op %d: %w", i, err)
		}
		reqs[i] = r
	}
	return reqs, nil
}

// BatchResponse answers a whole batch: first nonzero sub-op code (4) +
// count (4) + one result code per sub-op (4n) = 8 + 4n bytes. Err echoes
// the first nonzero code so a client that only needs the CUDA-style
// "sticky first error" can skip scanning Codes.
type BatchResponse struct {
	Err   uint32
	Codes []uint32
}

// Encode implements Message.
func (m *BatchResponse) Encode(dst []byte) []byte {
	dst = putU32(putU32(dst, m.Err), uint32(len(m.Codes)))
	for _, c := range m.Codes {
		dst = putU32(dst, c)
	}
	return dst
}

// WireSize implements Message.
func (m *BatchResponse) WireSize() int { return 8 + 4*len(m.Codes) }

// DecodeBatchResponse parses a combined batch response. The declared code
// count must match the payload length exactly and stay within MaxBatchOps.
func DecodeBatchResponse(b []byte) (*BatchResponse, error) {
	if len(b) < 8 {
		return nil, ErrShortMessage
	}
	n := getU32(b, 4)
	if n > MaxBatchOps {
		return nil, fmt.Errorf("protocol: batch response declares %d codes (max %d)", n, MaxBatchOps)
	}
	if len(b) != 8+4*int(n) {
		return nil, fmt.Errorf("protocol: batch response declares %d codes but carries %d bytes", n, len(b)-8)
	}
	m := &BatchResponse{Err: getU32(b, 0)}
	if n > 0 {
		m.Codes = make([]uint32, n)
		for i := range m.Codes {
			m.Codes[i] = getU32(b, 8+4*i)
		}
	}
	return m, nil
}

// decodeBatchRequest handles OpBatch for DecodeRequest. Every sub-op is
// fully validated here — length in range, decodable, batchable — so the
// dispatcher never sees a half-parsed batch. Sub slices alias b under the
// same ownership contract as the memcpy payloads.
func decodeBatchRequest(op Op, b []byte) (Request, error) {
	if op != OpBatch {
		return decodeMigrateRequest(op, b)
	}
	if len(b) < 16 {
		return nil, ErrShortMessage
	}
	count := getU32(b, 12)
	if count == 0 {
		return nil, fmt.Errorf("protocol: empty batch")
	}
	if count > MaxBatchOps {
		return nil, fmt.Errorf("protocol: batch declares %d sub-ops (max %d)", count, MaxBatchOps)
	}
	m := &BatchRequest{
		Seq:     getU64(b, 4),
		Subs:    make([][]byte, 0, count),
		Decoded: make([]Request, 0, count),
	}
	off := 16
	for i := 0; i < int(count); i++ {
		if len(b)-off < 4 {
			return nil, fmt.Errorf("protocol: batch truncated in sub-op %d header: %w", i, ErrShortMessage)
		}
		size := int(getU32(b, off))
		off += 4
		if size > len(b)-off {
			return nil, fmt.Errorf("protocol: batch sub-op %d declares %d bytes, %d remain", i, size, len(b)-off)
		}
		raw := b[off : off+size]
		sub, err := DecodeRequest(raw)
		if err != nil {
			return nil, fmt.Errorf("protocol: batch sub-op %d: %w", i, err)
		}
		if !BatchableOp(sub.Op()) {
			return nil, fmt.Errorf("protocol: batch sub-op %d: %v is not batchable", i, sub.Op())
		}
		m.Subs = append(m.Subs, raw)
		m.Decoded = append(m.Decoded, sub)
		off += size
	}
	if off != len(b) {
		return nil, fmt.Errorf("protocol: batch carries %d trailing bytes", len(b)-off)
	}
	return m, nil
}
