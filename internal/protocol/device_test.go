package protocol

import "testing"

func TestDeviceOpNames(t *testing.T) {
	for op := OpGetDeviceCount; op < opDeviceSentinel; op++ {
		if s := op.String(); s == "" || s[:2] == "Op" {
			t.Fatalf("device op %d has placeholder name %q", op, s)
		}
	}
}

func TestDeviceRequestRoundTrips(t *testing.T) {
	reqs := []Request{
		&GetDeviceCountRequest{},
		&SetDeviceRequest{Device: 2},
		&GetDevicePropertiesRequest{},
		&MemsetRequest{DevPtr: 0x100, Value: 0xAB, Size: 4096},
		&MemcpyD2DRequest{Dst: 0x200, Src: 0x100, Size: 512},
	}
	for _, req := range reqs {
		enc := req.Encode(nil)
		if len(enc) != req.WireSize() {
			t.Fatalf("%T: encoded %d, WireSize %d", req, len(enc), req.WireSize())
		}
		dec, err := DecodeRequest(enc)
		if err != nil {
			t.Fatalf("%T: %v", req, err)
		}
		if dec.Op() != req.Op() {
			t.Fatalf("%T: op mismatch", req)
		}
	}
	// Field fidelity for the argument-bearing ones.
	dec, err := DecodeRequest((&MemsetRequest{DevPtr: 7, Value: 9, Size: 11}).Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	m := dec.(*MemsetRequest)
	if m.DevPtr != 7 || m.Value != 9 || m.Size != 11 {
		t.Fatalf("memset fields %+v", m)
	}
	dec, err = DecodeRequest((&MemcpyD2DRequest{Dst: 1, Src: 2, Size: 3}).Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	d := dec.(*MemcpyD2DRequest)
	if d.Dst != 1 || d.Src != 2 || d.Size != 3 {
		t.Fatalf("d2d fields %+v", d)
	}
}

func TestDeviceResponseRoundTrips(t *testing.T) {
	{
		r := &GetDeviceCountResponse{Err: 0, Count: 4}
		got, err := DecodeGetDeviceCountResponse(r.Encode(nil))
		if err != nil || *got != *r {
			t.Fatalf("device count response: %v %+v", err, got)
		}
	}
	{
		r := &GetDevicePropertiesResponse{
			MemoryBytes:     4 << 30,
			CapabilityMajor: 1, CapabilityMinor: 3,
			Multiprocessors: 30, ClockMHz: 1296, MemoryMBps: 73000,
			Name: "Tesla C1060 (simulated)",
		}
		enc := r.Encode(nil)
		if len(enc) != r.WireSize() {
			t.Fatalf("properties encoded %d, WireSize %d", len(enc), r.WireSize())
		}
		got, err := DecodeGetDevicePropertiesResponse(enc)
		if err != nil || *got != *r {
			t.Fatalf("properties response: %v\n got %+v\nwant %+v", err, got, r)
		}
	}
}

func TestDeviceDecodeErrors(t *testing.T) {
	if _, err := DecodeRequest((&MemsetRequest{}).Encode(nil)[:10]); err == nil {
		t.Fatal("short memset must fail")
	}
	if _, err := DecodeRequest((&SetDeviceRequest{}).Encode(nil)[:5]); err == nil {
		t.Fatal("short set-device must fail")
	}
	if _, err := DecodeGetDeviceCountResponse([]byte{1, 2}); err == nil {
		t.Fatal("short count response must fail")
	}
	if _, err := DecodeGetDevicePropertiesResponse(make([]byte, 10)); err == nil {
		t.Fatal("short properties response must fail")
	}
	// Corrupt name length.
	bad := (&GetDevicePropertiesResponse{Name: "x"}).Encode(nil)
	bad[32] = 200
	if _, err := DecodeGetDevicePropertiesResponse(bad); err == nil {
		t.Fatal("inconsistent properties name length must fail")
	}
}
