package protocol

import (
	"bytes"
	"testing"
)

// TestWriteFrameBuffersMatchesWriteFrame: the vectored framing must put
// byte-for-byte the same frames on the wire as the contiguous encoder, for
// segmented and non-segmented messages alike.
func TestWriteFrameBuffersMatchesWriteFrame(t *testing.T) {
	msgs := []Message{
		&MallocRequest{Size: 4096}, // non-Segmented fallback
		&InitRequest{Module: []byte("module bytes")},
		&MemcpyToDeviceRequest{Dst: 0x100, Data: bytes.Repeat([]byte{7}, 1000)},
		&MemcpyToDeviceRequest{Dst: 0x100, Data: nil}, // empty bulk segment
		&MemcpyToDeviceAsyncRequest{Dst: 0x100, Stream: 2, Data: []byte{1, 2, 3}},
		&MemcpyToHostResponse{Data: []byte{9, 8, 7}, Err: 0}, // head + bulk + tail
		&MemcpyStreamChunk{Seq: 5, Data: bytes.Repeat([]byte{3}, 100)},
	}
	var fw FrameWriter
	for _, m := range msgs {
		var classic, vectored bytes.Buffer
		if err := WriteFrame(&classic, m); err != nil {
			t.Fatalf("%T: WriteFrame: %v", m, err)
		}
		if err := fw.WriteFrame(&vectored, m); err != nil {
			t.Fatalf("%T: FrameWriter.WriteFrame: %v", m, err)
		}
		if !bytes.Equal(classic.Bytes(), vectored.Bytes()) {
			t.Fatalf("%T: vectored frame differs:\n classic  %x\n vectored %x",
				m, classic.Bytes(), vectored.Bytes())
		}
		payload, err := ReadFrame(&vectored)
		if err != nil {
			t.Fatalf("%T: ReadFrame: %v", m, err)
		}
		if !bytes.Equal(payload, m.Encode(nil)) {
			t.Fatalf("%T: frame payload does not match Encode", m)
		}
	}
}

// TestSegmentedEncodersAgree: for every Segmented message the three
// segments concatenated must equal the monolithic encoding.
func TestSegmentedEncodersAgree(t *testing.T) {
	msgs := []Segmented{
		&InitRequest{Module: []byte("mod")},
		&MemcpyToDeviceRequest{Dst: 1, Data: []byte{1, 2, 3}},
		&MemcpyToDeviceAsyncRequest{Dst: 1, Stream: 3, Data: []byte{4, 5}},
		&MemcpyToHostResponse{Data: []byte{6}, Err: 2},
		&MemcpyStreamChunk{Seq: 1, Data: []byte{7, 8}},
	}
	for _, m := range msgs {
		parts := m.SegmentHead(nil)
		parts = append(parts, m.SegmentBulk()...)
		parts = m.SegmentTail(parts)
		if whole := m.Encode(nil); !bytes.Equal(parts, whole) {
			t.Fatalf("%T: segments %x != encode %x", m, parts, whole)
		}
		if len(parts) != m.WireSize() {
			t.Fatalf("%T: segments total %d, WireSize %d", m, len(parts), m.WireSize())
		}
	}
}

func TestDecodeMemcpyToHostResponseInto(t *testing.T) {
	data := []byte{1, 2, 3, 4, 5}
	raw := (&MemcpyToHostResponse{Data: data}).Encode(nil)
	dst := make([]byte, len(data))
	code, err := DecodeMemcpyToHostResponseInto(raw, dst)
	if err != nil || code != 0 {
		t.Fatalf("decode into: code %d, err %v", code, err)
	}
	if !bytes.Equal(dst, data) {
		t.Fatalf("dst = %x", dst)
	}
	// An error response legitimately carries no payload.
	errRaw := (&MemcpyToHostResponse{Err: 11}).Encode(nil)
	code, err = DecodeMemcpyToHostResponseInto(errRaw, dst)
	if err != nil || code != 11 {
		t.Fatalf("error response: code %d, err %v", code, err)
	}
	// A success response with the wrong payload length is a protocol error.
	if _, err := DecodeMemcpyToHostResponseInto(raw, make([]byte, 3)); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if _, err := DecodeMemcpyToHostResponseInto([]byte{1, 2}, dst); err == nil {
		t.Fatal("short response must fail")
	}
}
