package protocol

import (
	"encoding/binary"
	"fmt"
)

// This file defines the durable-session extension behind the client's
// retry/reconnect policy. The base protocol ties a session's lifetime to
// its TCP connection: when the connection dies, the server destroys the
// GPU contexts and every allocation with it. That makes any transient
// network fault fatal to the application.
//
// A client that wants to survive faults sends SessionHello right after the
// init handshake. The server then assigns the session a stable identifier
// and, if the connection later dies without a clean Finalize, parks the
// session — device handles and allocations intact — instead of destroying
// it. The client reconnects and opens the new connection with
// SessionReattach carrying that identifier as its *first* message, in
// place of the init payload; the server splices the parked state onto the
// new connection and the dialogue resumes where it broke.
//
// Both messages are strictly opt-in: a client that never sends
// SessionHello gets the paper's original connection-scoped lifetime, and
// the init wire format (Table I) is untouched.

// Session operations continue the Op space after the chunked transfers.
const (
	OpSessionHello Op = iota + opChunkedSentinel
	OpSessionReattach
	opSessionSentinel
)

// sessionOpNames extends Op.String for the session operations.
var sessionOpNames = map[Op]string{
	OpSessionHello:    "session hello",
	OpSessionReattach: "session reattach",
}

func putU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func getU64(src []byte, off int) uint64 {
	return binary.LittleEndian.Uint64(src[off : off+8])
}

// --- Hello -------------------------------------------------------------------

// SessionHelloRequest asks the server to make the current session durable
// and, optionally, declares its scheduling class. Two encodings share the
// op: the legacy bare form, op (4) = 4 bytes, and the extended form,
// op (4) + class (4) + weight (4) = 12 bytes. A request whose Class and
// Weight are both zero encodes as the bare form, so old servers keep
// accepting default-class clients. Sent at most once, right after
// initialization (or after a reattach, to re-declare the class).
type SessionHelloRequest struct {
	// Class is a SchedClass code; SchedClassUnspecified (0) leaves the
	// server's default in place.
	Class uint32
	// Weight is the session's intra-class WFQ weight, 0 reading as 1;
	// bounded by MaxSchedWeight.
	Weight uint32
}

// Encode implements Message.
func (m *SessionHelloRequest) Encode(dst []byte) []byte {
	dst = putU32(dst, uint32(OpSessionHello))
	if m.Class == SchedClassUnspecified && m.Weight == 0 {
		return dst
	}
	return putU32(putU32(dst, m.Class), m.Weight)
}

// WireSize implements Message.
func (m *SessionHelloRequest) WireSize() int {
	if m.Class == SchedClassUnspecified && m.Weight == 0 {
		return 4
	}
	return 12
}

// Op implements Request.
func (m *SessionHelloRequest) Op() Op { return OpSessionHello }

// SessionHelloResponse returns the durable session identifier: CUDA error
// (4) + session id (8) = 12 bytes.
type SessionHelloResponse struct {
	Err     uint32
	Session uint64
}

// Encode implements Message.
func (m *SessionHelloResponse) Encode(dst []byte) []byte {
	return putU64(putU32(dst, m.Err), m.Session)
}

// WireSize implements Message.
func (m *SessionHelloResponse) WireSize() int { return 12 }

// DecodeSessionHelloResponse parses a hello acknowledgement.
func DecodeSessionHelloResponse(b []byte) (*SessionHelloResponse, error) {
	if len(b) != 12 {
		return nil, ErrShortMessage
	}
	return &SessionHelloResponse{Err: getU32(b, 0), Session: getU64(b, 4)}, nil
}

// --- Reattach ----------------------------------------------------------------

// ReattachRequest opens a replacement connection for a parked durable
// session: op (4) + session id (8) = 12 bytes. It is sent as the first
// message of the new connection, where the init payload would otherwise
// go; TryDecodeReattach distinguishes the two unambiguously because an
// init payload of 12 bytes would declare a module-name length equal to
// this op code, far beyond the 8-byte remainder.
type ReattachRequest struct {
	Session uint64
}

// Encode implements Message.
func (m *ReattachRequest) Encode(dst []byte) []byte {
	return putU64(putU32(dst, uint32(OpSessionReattach)), m.Session)
}

// WireSize implements Message.
func (m *ReattachRequest) WireSize() int { return 12 }

// Op implements Request.
func (m *ReattachRequest) Op() Op { return OpSessionReattach }

// TryDecodeReattach reports whether b is a reattach request and, if so,
// decodes it. Handshake code calls it on the first payload of a
// connection before falling back to the init decoder.
func TryDecodeReattach(b []byte) (*ReattachRequest, bool) {
	if len(b) != 12 || Op(getU32(b, 0)) != OpSessionReattach {
		return nil, false
	}
	return &ReattachRequest{Session: getU64(b, 4)}, true
}

// ReattachResponse accepts or rejects a reattach: CUDA error (4) +
// capability major (4) + capability minor (4) = 12 bytes. The capability
// pair repeats the init handshake's so a reattaching client can confirm it
// reached a compatible server.
type ReattachResponse struct {
	Err             uint32
	CapabilityMajor uint32
	CapabilityMinor uint32
}

// Encode implements Message.
func (m *ReattachResponse) Encode(dst []byte) []byte {
	return putU32(putU32(putU32(dst, m.Err), m.CapabilityMajor), m.CapabilityMinor)
}

// WireSize implements Message.
func (m *ReattachResponse) WireSize() int { return 12 }

// DecodeReattachResponse parses a reattach acknowledgement.
func DecodeReattachResponse(b []byte) (*ReattachResponse, error) {
	if len(b) != 12 {
		return nil, ErrShortMessage
	}
	return &ReattachResponse{
		Err:             getU32(b, 0),
		CapabilityMajor: getU32(b, 4),
		CapabilityMinor: getU32(b, 8),
	}, nil
}

// decodeSessionRequest handles the session operations for DecodeRequest.
func decodeSessionRequest(op Op, b []byte) (Request, error) {
	switch op {
	case OpSessionHello:
		switch len(b) {
		case 4:
			return &SessionHelloRequest{}, nil
		case 12:
			m := &SessionHelloRequest{Class: getU32(b, 4), Weight: getU32(b, 8)}
			if m.Class > maxSchedClass {
				return nil, fmt.Errorf("%w: class %d", ErrBadSchedClass, m.Class)
			}
			if m.Weight > MaxSchedWeight {
				return nil, fmt.Errorf("%w: weight %d", ErrBadSchedWeight, m.Weight)
			}
			if m.Class == SchedClassUnspecified && m.Weight == 0 {
				// The all-defaults pair has exactly one canonical spelling:
				// the bare form.
				return nil, fmt.Errorf("protocol: non-canonical extended hello")
			}
			return m, nil
		default:
			return nil, ErrShortMessage
		}
	case OpSessionReattach:
		if len(b) != 12 {
			return nil, ErrShortMessage
		}
		return &ReattachRequest{Session: getU64(b, 4)}, nil
	default:
		return decodeStatsRequest(op, b)
	}
}
