package protocol

import "fmt"

// This file defines the statistics extension behind the GPU pool broker.
// A broker federating several rcudad servers needs live load information —
// how many sessions each daemon serves, how much device memory is in use,
// how busy each accelerator has been — to place new sessions on the
// least-loaded server, the live counterpart of the cluster model's
// list-scheduling policy. StatsQuery/StatsReply carry a trimmed
// Server.StatsSnapshot over the wire.
//
// A StatsQuery is valid in two positions: inside an established session
// (an application asking its own server), and as a connection's *opening*
// message, where the init payload would otherwise go — the broker's health
// probes use the latter so monitoring never pays session admission and
// still works on a server that is refusing new sessions. The
// disambiguation is safe for the same reason reattach's is: a 4-byte init
// payload would declare a module-name length equal to this op code, far
// beyond the zero remaining bytes, so the init decoder rejects it.

// Stats operations continue the Op space after the durable sessions.
const (
	OpStatsQuery Op = iota + opSessionSentinel
	opStatsSentinel
)

// statsOpNames extends Op.String for the stats operations.
var statsOpNames = map[Op]string{
	OpStatsQuery: "stats query",
}

// MaxStatsDevices bounds the device count a StatsReply may declare. It is
// far above any real daemon (Figure 1's server nodes hold a handful of
// accelerators) and exists so a corrupt or hostile frame cannot make the
// decoder allocate absurd slices.
const MaxStatsDevices = 1024

// StatsQueryRequest asks the server for its load snapshot: op (4) = 4
// bytes. No session state is read or written; the query is idempotent.
type StatsQueryRequest struct{}

// Encode implements Message.
func (m *StatsQueryRequest) Encode(dst []byte) []byte {
	return putU32(dst, uint32(OpStatsQuery))
}

// WireSize implements Message.
func (m *StatsQueryRequest) WireSize() int { return 4 }

// Op implements Request.
func (m *StatsQueryRequest) Op() Op { return OpStatsQuery }

// TryDecodeStatsQuery reports whether b is a stats query and, if so,
// decodes it. Handshake code calls it on the first payload of a connection
// (after the reattach check) before falling back to the init decoder.
func TryDecodeStatsQuery(b []byte) (*StatsQueryRequest, bool) {
	if len(b) != 4 || Op(getU32(b, 0)) != OpStatsQuery {
		return nil, false
	}
	return &StatsQueryRequest{}, true
}

// DeviceStats is one device's slice of a StatsReply: live allocator
// occupancy plus the scheduling gauges a broker ranks servers by.
type DeviceStats struct {
	// BytesInUse is the device memory currently allocated.
	BytesInUse uint64
	// Allocations counts live allocations on the device.
	Allocations uint32
	// Sessions counts sessions holding a context on the device.
	Sessions uint32
	// BusyNanos is the cumulative time the daemon spent executing requests
	// on the device, in nanoseconds of the daemon's clock. The difference
	// between two probes is the device's recent load; the absolute value
	// ranks servers like the cluster model's per-GPU completion times.
	BusyNanos uint64
}

// statsDeviceWire is the encoded size of one DeviceStats.
const statsDeviceWire = 24

// StatsReply is the server's load snapshot: CUDA error (4) + live
// sessions (4) + parked sessions (4) + device count (4) + per device
// {bytes in use (8) + allocations (4) + sessions (4) + busy nanos (8)} =
// 16 + 24·n bytes, optionally followed by a per-scheduling-class block of
// NumSchedClasses × {sessions (4) + p99 wait nanos (8)} = 36 bytes. The
// class block's presence is length-determined, so a pre-scheduler reply
// still decodes (HasClasses false) and a pre-scheduler decoder rejects the
// longer frame rather than misreading it.
type StatsReply struct {
	Err uint32
	// SessionsLive counts GPU sessions currently attached to a connection;
	// probe-only connections like the one carrying this reply are excluded.
	SessionsLive uint32
	// SessionsParked counts durable sessions parked awaiting a reattach.
	SessionsParked uint32
	// Devices holds one entry per device the daemon serves.
	Devices []DeviceStats
	// HasClasses reports whether the per-class block was present; Classes
	// is indexed by SchedClass code minus one (realtime, batch, besteffort).
	HasClasses bool
	Classes    [NumSchedClasses]ClassLoad
}

// Encode implements Message.
func (m *StatsReply) Encode(dst []byte) []byte {
	dst = putU32(putU32(putU32(putU32(dst, m.Err), m.SessionsLive), m.SessionsParked), uint32(len(m.Devices)))
	for _, d := range m.Devices {
		dst = putU64(putU32(putU32(putU64(dst, d.BytesInUse), d.Allocations), d.Sessions), d.BusyNanos)
	}
	if m.HasClasses {
		for _, c := range m.Classes {
			dst = putU64(putU32(dst, c.Sessions), c.P99WaitNanos)
		}
	}
	return dst
}

// WireSize implements Message.
func (m *StatsReply) WireSize() int {
	n := 16 + statsDeviceWire*len(m.Devices)
	if m.HasClasses {
		n += statsClassWire * NumSchedClasses
	}
	return n
}

// DecodeStatsReply parses a load snapshot. The declared device count plus
// an optional class block must match the payload length exactly, and the
// device count must stay within MaxStatsDevices.
func DecodeStatsReply(b []byte) (*StatsReply, error) {
	if len(b) < 16 {
		return nil, ErrShortMessage
	}
	n := getU32(b, 12)
	if n > MaxStatsDevices {
		return nil, fmt.Errorf("protocol: stats reply declares %d devices (max %d)", n, MaxStatsDevices)
	}
	devEnd := 16 + statsDeviceWire*int(n)
	hasClasses := false
	switch len(b) {
	case devEnd:
	case devEnd + statsClassWire*NumSchedClasses:
		hasClasses = true
	default:
		return nil, ErrShortMessage
	}
	m := &StatsReply{
		Err:            getU32(b, 0),
		SessionsLive:   getU32(b, 4),
		SessionsParked: getU32(b, 8),
		HasClasses:     hasClasses,
	}
	if n > 0 {
		m.Devices = make([]DeviceStats, n)
		for i := range m.Devices {
			off := 16 + statsDeviceWire*i
			m.Devices[i] = DeviceStats{
				BytesInUse:  getU64(b, off),
				Allocations: getU32(b, off+8),
				Sessions:    getU32(b, off+12),
				BusyNanos:   getU64(b, off+16),
			}
		}
	}
	if hasClasses {
		for i := range m.Classes {
			off := devEnd + statsClassWire*i
			m.Classes[i] = ClassLoad{
				Sessions:     getU32(b, off),
				P99WaitNanos: getU64(b, off+4),
			}
		}
	}
	return m, nil
}

// decodeStatsRequest handles the stats operations for DecodeRequest.
func decodeStatsRequest(op Op, b []byte) (Request, error) {
	switch op {
	case OpStatsQuery:
		if len(b) != 4 {
			return nil, ErrShortMessage
		}
		return &StatsQueryRequest{}, nil
	default:
		return decodeBatchRequest(op, b)
	}
}
