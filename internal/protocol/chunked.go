package protocol

import "fmt"

// This file defines the pipelined chunked-memcpy extension. The paper's
// data path moves every cudaMemcpy payload in one monolithic frame and
// strictly serializes the network and PCIe stages; it explicitly leaves
// overlapping them as future work. The chunked protocol splits a bulk
// transfer into fixed-size chunks so the server can push chunk k across the
// PCIe link while chunk k+1 is still on the wire (and symmetrically for
// device-to-host reads), making the modeled transfer time approach
// max(network, PCIe) instead of their sum.
//
// Flow, host to device:
//
//	client                          server
//	  MemcpyStreamBegin  ──────▶    validate region, open stream
//	             ◀──────  MemcpyStreamBeginResponse (abort here on error)
//	  MemcpyStreamChunk 0 ─────▶    PCIe push booked at arrival instant
//	  MemcpyStreamChunk 1 ─────▶    ... overlapped with the next chunk's
//	  ...                           network transfer ...
//	  MemcpyStreamEnd    ──────▶    drain the stream
//	             ◀──────  MemcpyStreamEndResponse
//
// Device to host mirrors it: after the Begin acknowledgement the server
// streams the chunks and closes with the End response. Chunks are never
// individually acknowledged — that is what buys the overlap.
//
// The classic single-frame messages remain the default; this path is
// opt-in above a client-side size threshold, so the Table I byte
// accounting and the default wire format are unchanged.

// Chunked-transfer operations continue the Op space after the queries.
const (
	OpMemcpyStreamBegin Op = iota + opQuerySentinel
	OpMemcpyStreamChunk
	OpMemcpyStreamEnd
	opChunkedSentinel
)

// chunkedOpNames extends Op.String for the chunked-transfer operations.
var chunkedOpNames = map[Op]string{
	OpMemcpyStreamBegin: "cudaMemcpy (stream begin)",
	OpMemcpyStreamChunk: "cudaMemcpy (stream chunk)",
	OpMemcpyStreamEnd:   "cudaMemcpy (stream end)",
}

// DefaultChunkSize is the default payload size of one stream chunk. One
// MiB is large enough to amortize the 12-byte chunk header to noise and
// small enough that the first PCIe push starts early in the transfer.
const DefaultChunkSize = 1 << 20

// --- Begin -------------------------------------------------------------------

// MemcpyStreamBeginRequest opens a chunked transfer: id (4) + device
// pointer (4) + total size (4) + kind (4) + chunk size (4) = 20 bytes.
// Ptr is the destination for host-to-device transfers and the source for
// device-to-host ones.
type MemcpyStreamBeginRequest struct {
	Ptr       uint32
	Total     uint32
	Kind      uint32
	ChunkSize uint32
}

// Encode implements Message.
func (m *MemcpyStreamBeginRequest) Encode(dst []byte) []byte {
	dst = putU32(dst, uint32(OpMemcpyStreamBegin))
	dst = putU32(dst, m.Ptr)
	dst = putU32(dst, m.Total)
	dst = putU32(dst, m.Kind)
	return putU32(dst, m.ChunkSize)
}

// WireSize implements Message.
func (m *MemcpyStreamBeginRequest) WireSize() int { return 20 }

// Op implements Request.
func (m *MemcpyStreamBeginRequest) Op() Op { return OpMemcpyStreamBegin }

// MemcpyStreamBeginResponse acknowledges (or rejects) a chunked transfer
// before any payload moves: CUDA error (4 bytes). A nonzero error means no
// chunks will follow in either direction.
type MemcpyStreamBeginResponse struct {
	Err uint32
}

// Encode implements Message.
func (m *MemcpyStreamBeginResponse) Encode(dst []byte) []byte { return putU32(dst, m.Err) }

// WireSize implements Message.
func (m *MemcpyStreamBeginResponse) WireSize() int { return 4 }

// DecodeMemcpyStreamBeginResponse parses a stream-begin acknowledgement.
func DecodeMemcpyStreamBeginResponse(b []byte) (*MemcpyStreamBeginResponse, error) {
	if len(b) != 4 {
		return nil, ErrShortMessage
	}
	return &MemcpyStreamBeginResponse{Err: getU32(b, 0)}, nil
}

// --- Chunk -------------------------------------------------------------------

// MemcpyStreamChunk carries one payload slice: id (4) + sequence (4) +
// size (4) + data (x) = x+12 bytes. Chunks flow client→server on
// host-to-device transfers and server→client on device-to-host ones, and
// are never individually acknowledged.
type MemcpyStreamChunk struct {
	Seq  uint32
	Data []byte
}

// Encode implements Message.
func (m *MemcpyStreamChunk) Encode(dst []byte) []byte {
	dst = m.SegmentHead(dst)
	return append(dst, m.Data...)
}

// WireSize implements Message.
func (m *MemcpyStreamChunk) WireSize() int { return 12 + len(m.Data) }

// Op implements Request.
func (m *MemcpyStreamChunk) Op() Op { return OpMemcpyStreamChunk }

// SegmentHead implements Segmented.
func (m *MemcpyStreamChunk) SegmentHead(dst []byte) []byte {
	dst = putU32(dst, uint32(OpMemcpyStreamChunk))
	dst = putU32(dst, m.Seq)
	return putU32(dst, uint32(len(m.Data)))
}

// SegmentBulk implements Segmented.
func (m *MemcpyStreamChunk) SegmentBulk() []byte { return m.Data }

// SegmentTail implements Segmented.
func (m *MemcpyStreamChunk) SegmentTail(dst []byte) []byte { return dst }

// DecodeMemcpyStreamChunk parses a stream chunk. Data aliases b — the
// caller owns b until the chunk has been consumed.
func DecodeMemcpyStreamChunk(b []byte) (*MemcpyStreamChunk, error) {
	if len(b) < 12 {
		return nil, ErrShortMessage
	}
	if op := Op(getU32(b, 0)); op != OpMemcpyStreamChunk {
		return nil, fmt.Errorf("%w: %d, want stream chunk", ErrBadOp, uint32(op))
	}
	size := int(getU32(b, 8))
	if len(b) != 12+size {
		return nil, fmt.Errorf("protocol: stream chunk size %d does not match payload %d", size, len(b)-12)
	}
	return &MemcpyStreamChunk{Seq: getU32(b, 4), Data: b[12:]}, nil
}

// --- End ---------------------------------------------------------------------

// MemcpyStreamEndRequest closes a host-to-device stream and asks for the
// final status: id (4) + chunk count (4) = 8 bytes.
type MemcpyStreamEndRequest struct {
	Chunks uint32
}

// Encode implements Message.
func (m *MemcpyStreamEndRequest) Encode(dst []byte) []byte {
	return putU32(putU32(dst, uint32(OpMemcpyStreamEnd)), m.Chunks)
}

// WireSize implements Message.
func (m *MemcpyStreamEndRequest) WireSize() int { return 8 }

// Op implements Request.
func (m *MemcpyStreamEndRequest) Op() Op { return OpMemcpyStreamEnd }

// MemcpyStreamEndResponse carries the transfer's final result code
// (4 bytes). For device-to-host streams it follows the last chunk.
type MemcpyStreamEndResponse struct {
	Err uint32
}

// Encode implements Message.
func (m *MemcpyStreamEndResponse) Encode(dst []byte) []byte { return putU32(dst, m.Err) }

// WireSize implements Message.
func (m *MemcpyStreamEndResponse) WireSize() int { return 4 }

// DecodeMemcpyStreamEndResponse parses a stream-end status.
func DecodeMemcpyStreamEndResponse(b []byte) (*MemcpyStreamEndResponse, error) {
	if len(b) != 4 {
		return nil, ErrShortMessage
	}
	return &MemcpyStreamEndResponse{Err: getU32(b, 0)}, nil
}

// decodeChunkedRequest handles the chunked-transfer operations for
// DecodeRequest.
func decodeChunkedRequest(op Op, b []byte) (Request, error) {
	switch op {
	case OpMemcpyStreamBegin:
		if len(b) != 20 {
			return nil, ErrShortMessage
		}
		m := &MemcpyStreamBeginRequest{
			Ptr:       getU32(b, 4),
			Total:     getU32(b, 8),
			Kind:      getU32(b, 12),
			ChunkSize: getU32(b, 16),
		}
		if m.Kind != KindHostToDevice && m.Kind != KindDeviceToHost {
			return nil, fmt.Errorf("protocol: stream begin with kind %d", m.Kind)
		}
		// Reject corrupt totals before anything downstream sizes a buffer
		// from them.
		if m.Total > MaxFrameSize {
			return nil, fmt.Errorf("protocol: stream total %d exceeds limit %d", m.Total, MaxFrameSize)
		}
		if m.ChunkSize == 0 || m.ChunkSize > MaxFrameSize {
			return nil, fmt.Errorf("protocol: stream chunk size %d out of range", m.ChunkSize)
		}
		return m, nil
	case OpMemcpyStreamChunk:
		return DecodeMemcpyStreamChunk(b)
	case OpMemcpyStreamEnd:
		if len(b) != 8 {
			return nil, ErrShortMessage
		}
		return &MemcpyStreamEndRequest{Chunks: getU32(b, 4)}, nil
	default:
		return decodeSessionRequest(op, b)
	}
}

// --- Reassembly --------------------------------------------------------------

// ChunkAssembler validates the chunk sequence of one transfer and, when
// given a destination buffer, reassembles the payload into it with no
// intermediate copy. A nil destination validates only (the server's
// host-to-device path pushes each chunk straight to device memory).
type ChunkAssembler struct {
	dst       []byte
	total     int
	chunkSize int
	next      uint32
	off       int
}

// NewChunkAssembler prepares reassembly of a transfer of total bytes in
// chunkSize-byte chunks. dst must be nil or exactly total bytes long.
func NewChunkAssembler(total, chunkSize uint32, dst []byte) (*ChunkAssembler, error) {
	if total > MaxFrameSize {
		return nil, fmt.Errorf("protocol: stream total %d exceeds limit %d", total, MaxFrameSize)
	}
	if chunkSize == 0 {
		return nil, fmt.Errorf("protocol: zero stream chunk size")
	}
	if dst != nil && len(dst) != int(total) {
		return nil, fmt.Errorf("protocol: assembler buffer %d bytes, want %d", len(dst), total)
	}
	return &ChunkAssembler{dst: dst, total: int(total), chunkSize: int(chunkSize)}, nil
}

// Add validates the next chunk and copies it into place when the assembler
// owns a buffer. It returns the byte offset the chunk belongs at. Every
// chunk must be exactly chunkSize bytes except the final one, which
// carries the remainder.
func (a *ChunkAssembler) Add(c *MemcpyStreamChunk) (off int, err error) {
	if c.Seq != a.next {
		return 0, fmt.Errorf("protocol: stream chunk %d out of order, want %d", c.Seq, a.next)
	}
	want := a.total - a.off
	if want > a.chunkSize {
		want = a.chunkSize
	}
	if want <= 0 {
		return 0, fmt.Errorf("protocol: stream chunk %d past declared total %d", c.Seq, a.total)
	}
	if len(c.Data) != want {
		return 0, fmt.Errorf("protocol: stream chunk %d carries %d bytes, want %d", c.Seq, len(c.Data), want)
	}
	off = a.off
	if a.dst != nil {
		copy(a.dst[off:], c.Data)
	}
	a.off += len(c.Data)
	a.next++
	return off, nil
}

// Complete reports whether every declared byte has arrived.
func (a *ChunkAssembler) Complete() bool { return a.off == a.total }

// Finish validates the closing End message: the stream must be complete
// and the sender's chunk count must match what arrived. An early End (the
// out-of-order case) is an error.
func (a *ChunkAssembler) Finish(e *MemcpyStreamEndRequest) error {
	if !a.Complete() {
		return fmt.Errorf("protocol: stream end after %d of %d bytes", a.off, a.total)
	}
	if e.Chunks != a.next {
		return fmt.Errorf("protocol: stream end declares %d chunks, got %d", e.Chunks, a.next)
	}
	return nil
}

// Chunks returns how many chunks a transfer of total bytes takes at the
// given chunk size.
func Chunks(total, chunkSize uint32) uint32 {
	if chunkSize == 0 {
		return 0
	}
	return (total + chunkSize - 1) / chunkSize
}
