package protocol

// Non-blocking completion queries: cudaStreamQuery and cudaEventQuery.
// Both are 8-byte requests (function id + handle) answered by a bare
// result code — cudaSuccess when the work has drained, cudaErrorNotReady
// while it is pending. They reuse the StreamOpRequest/EventOpRequest
// message shapes with their own operation codes.
const (
	OpStreamQuery Op = iota + opDeviceSentinel
	OpEventQuery
	opQuerySentinel
)

// queryOpNames extends Op.String for the query operations.
var queryOpNames = map[Op]string{
	OpStreamQuery: "cudaStreamQuery",
	OpEventQuery:  "cudaEventQuery",
}

// decodeQueryRequest handles the query operations for DecodeRequest.
func decodeQueryRequest(op Op, b []byte) (Request, error) {
	switch op {
	case OpStreamQuery:
		if len(b) != 8 {
			return nil, ErrShortMessage
		}
		return &StreamOpRequest{Code: op, Stream: getU32(b, 4)}, nil
	case OpEventQuery:
		if len(b) != 8 {
			return nil, ErrShortMessage
		}
		return &EventOpRequest{Code: op, Event: getU32(b, 4)}, nil
	default:
		return decodeChunkedRequest(op, b)
	}
}
