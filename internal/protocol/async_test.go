package protocol

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAsyncOpNames(t *testing.T) {
	for op := OpStreamCreate; op < opAsyncSentinel; op++ {
		if s := op.String(); s == "" || s[:2] == "Op" {
			t.Fatalf("async op %d has placeholder name %q", op, s)
		}
	}
}

func TestAsyncRequestRoundTrips(t *testing.T) {
	reqs := []Request{
		&StreamCreateRequest{},
		&StreamOpRequest{Code: OpStreamDestroy, Stream: 3},
		&StreamOpRequest{Code: OpStreamSynchronize, Stream: 9},
		&MemcpyToDeviceAsyncRequest{Dst: 0x100, Src: 0x0, Stream: 2, Data: []byte{1, 2, 3}},
		&MemcpyToHostAsyncRequest{Dst: 0, Src: 0x200, Size: 64, Stream: 5},
		&EventCreateRequest{},
		&EventRecordRequest{Event: 7, Stream: 2},
		&EventOpRequest{Code: OpEventSynchronize, Event: 7},
		&EventOpRequest{Code: OpEventDestroy, Event: 8},
		&EventElapsedRequest{Start: 1, End: 2},
	}
	for _, req := range reqs {
		enc := req.Encode(nil)
		if len(enc) != req.WireSize() {
			t.Fatalf("%T: encoded %d, WireSize %d", req, len(enc), req.WireSize())
		}
		dec, err := DecodeRequest(enc)
		if err != nil {
			t.Fatalf("%T: %v", req, err)
		}
		if dec.Op() != req.Op() {
			t.Fatalf("%T: op %v round-tripped to %v", req, req.Op(), dec.Op())
		}
	}
}

func TestAsyncResponseRoundTrips(t *testing.T) {
	{
		r := &StreamCreateResponse{Err: 0, Stream: 4}
		got, err := DecodeStreamCreateResponse(r.Encode(nil))
		if err != nil || *got != *r {
			t.Fatalf("stream create response: %v %+v", err, got)
		}
	}
	{
		r := &EventCreateResponse{Err: 0, Event: 9}
		got, err := DecodeEventCreateResponse(r.Encode(nil))
		if err != nil || *got != *r {
			t.Fatalf("event create response: %v %+v", err, got)
		}
	}
	{
		r := &EventElapsedResponse{Err: 0, ElapsedNano: 123456789012345}
		enc := r.Encode(nil)
		if len(enc) != 12 {
			t.Fatalf("elapsed response %d bytes, want 12", len(enc))
		}
		got, err := DecodeEventElapsedResponse(enc)
		if err != nil || *got != *r {
			t.Fatalf("elapsed response: %v %+v", err, got)
		}
	}
}

func TestAsyncDecodeErrors(t *testing.T) {
	// Truncated async memcpy.
	bad := (&MemcpyToDeviceAsyncRequest{Data: []byte{1, 2}}).Encode(nil)
	bad[12] = 99 // size disagrees with payload
	if _, err := DecodeRequest(bad); err == nil {
		t.Fatal("inconsistent async memcpy size must fail")
	}
	// Wrong kind.
	bad = (&MemcpyToHostAsyncRequest{Size: 4}).Encode(nil)
	bad[16] = 1
	if _, err := DecodeRequest(bad); err == nil {
		t.Fatal("bad async memcpy kind must fail")
	}
	// Short stream op.
	if _, err := DecodeRequest((&StreamOpRequest{Code: OpStreamDestroy}).Encode(nil)[:5]); err == nil {
		t.Fatal("short stream op must fail")
	}
	if _, err := DecodeStreamCreateResponse([]byte{1}); err == nil {
		t.Fatal("short stream create response must fail")
	}
	if _, err := DecodeEventCreateResponse([]byte{1}); err == nil {
		t.Fatal("short event create response must fail")
	}
	if _, err := DecodeEventElapsedResponse([]byte{1}); err == nil {
		t.Fatal("short elapsed response must fail")
	}
	// Past every defined range.
	if _, err := DecodeRequest(putU32(nil, uint32(opQuerySentinel))); err == nil {
		t.Fatal("unknown extended op must fail")
	}
}

// Property: async memcpy payloads survive the wire.
func TestAsyncMemcpyRoundTripProperty(t *testing.T) {
	f := func(dst, stream uint32, data []byte) bool {
		req := &MemcpyToDeviceAsyncRequest{Dst: dst, Stream: stream, Data: data}
		dec, err := DecodeRequest(req.Encode(nil))
		if err != nil {
			return false
		}
		got, ok := dec.(*MemcpyToDeviceAsyncRequest)
		return ok && got.Dst == dst && got.Stream == stream && bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder never panics on arbitrary bytes — a corrupt or
// malicious client must not crash the daemon.
func TestDecodeRequestNeverPanicsProperty(t *testing.T) {
	f := func(raw []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = DecodeRequest(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: same for the response decoders.
func TestDecodeResponsesNeverPanicProperty(t *testing.T) {
	f := func(raw []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = DecodeInitRequest(raw)
		_, _ = DecodeInitResponse(raw)
		_, _ = DecodeMallocResponse(raw)
		_, _ = DecodeMemcpyToDeviceResponse(raw)
		_, _ = DecodeMemcpyToHostResponse(raw)
		_, _ = DecodeLaunchResponse(raw)
		_, _ = DecodeFreeResponse(raw)
		_, _ = DecodeSyncResponse(raw)
		_, _ = DecodeStreamCreateResponse(raw)
		_, _ = DecodeEventCreateResponse(raw)
		_, _ = DecodeEventElapsedResponse(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
