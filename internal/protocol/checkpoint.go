package protocol

import "fmt"

// The Checkpoint is the payload a migration streams: everything the
// destination daemon needs to rebuild a parked session bit-for-bit — the
// session identity, the GPU module it initialized with, per-device
// allocations with their contents, the simulated stream/event timelines,
// and the batch seq-dedup window (so a client retry after the move still
// answers from memory instead of executing twice). Quota accounting is
// deliberately absent: the server derives it live from the restored
// allocations, so it can never drift from them.
//
// The checkpoint travels inside MigrateChunk frames and is not itself a
// request; it has its own decoder (DecodeCheckpoint) and a version header
// so the format can evolve without ambiguity.

// CheckpointVersion is the serialization version this package writes.
// Version 2 added the scheduling class/weight pair after CurDevice. The
// decoder accepts exactly this version: migration streams run between
// daemons of one build, and a mixed-version pair must fail the transfer
// loudly (the source keeps the session) rather than guess at fields.
const CheckpointVersion = 2

// checkpointMaxList bounds every list count in the decoder before any
// allocation is sized from it. Each list entry occupies at least 4 wire
// bytes, so with the payload capped at MaxFrameSize this can never reject
// a legitimate checkpoint.
const checkpointMaxList = MaxFrameSize / 4

// Checkpoint is a serialized durable session.
type Checkpoint struct {
	// Session is the identity the client reattaches with; it is preserved
	// across the move (the reattach handshake cannot renumber).
	Session uint64
	// Module names the registered GPU module the session initialized with.
	Module string
	// CurDevice is the session's current cudaSetDevice selection.
	CurDevice uint32
	// SchedClass and SchedWeight are the session's scheduling parameters
	// (SchedClass codes; see sched.go), preserved across the move so a
	// migrated realtime session stays realtime on the destination.
	SchedClass  uint32
	SchedWeight uint32
	// LastBatchSeq and LastBatchCodes are the batch dedup window: the last
	// executed batch sequence and its per-sub-op result codes. A nil
	// LastBatchCodes means no batch has executed yet.
	LastBatchSeq   uint64
	LastBatchCodes []uint32
	// Devices holds one entry per device context the session created.
	Devices []DeviceCheckpoint
}

// DeviceCheckpoint is one device context's state.
type DeviceCheckpoint struct {
	// Device is the device ordinal.
	Device uint32
	// Allocs lists the live allocations, addresses preserved exactly (the
	// client still holds device pointers into this address space).
	Allocs []AllocCheckpoint
	// Timeline is the simulated stream/event engine state.
	Timeline TimelineCheckpoint
}

// AllocCheckpoint is one live device allocation with its contents.
type AllocCheckpoint struct {
	// Addr and Size are the allocation's device address and requested size.
	Addr uint32
	Size uint32
	// Data is the allocation's contents, exactly Size bytes.
	Data []byte
}

// TimelineCheckpoint captures a device context's simulated engine state:
// when each copy/exec engine drains, per-stream and per-event completion
// instants (nanoseconds on the context's virtual clock), and the id
// counters, so streams and events created after the move cannot collide
// with ones the client already holds.
type TimelineCheckpoint struct {
	EngineDone [2]uint64
	Streams    []TimelineEntry
	Events     []TimelineEntry
	NextStream uint32
	NextEvent  uint32
}

// TimelineEntry is one stream's or event's completion instant.
type TimelineEntry struct {
	ID   uint32
	Done uint64
}

// Encode implements Message.
func (c *Checkpoint) Encode(dst []byte) []byte {
	dst = putU32(dst, CheckpointVersion)
	dst = putU64(dst, c.Session)
	dst = putU32(dst, uint32(len(c.Module)))
	dst = append(dst, c.Module...)
	dst = putU32(dst, c.CurDevice)
	dst = putU32(dst, c.SchedClass)
	dst = putU32(dst, c.SchedWeight)
	dst = putU64(dst, c.LastBatchSeq)
	if c.LastBatchCodes == nil {
		dst = putU32(dst, 0)
	} else {
		dst = putU32(dst, 1)
		dst = putU32(dst, uint32(len(c.LastBatchCodes)))
		for _, code := range c.LastBatchCodes {
			dst = putU32(dst, code)
		}
	}
	dst = putU32(dst, uint32(len(c.Devices)))
	for i := range c.Devices {
		dst = encodeDeviceCheckpoint(dst, &c.Devices[i])
	}
	return dst
}

// WireSize implements Message.
func (c *Checkpoint) WireSize() int {
	n := 4 + 8 + 4 + len(c.Module) + 4 + 4 + 4 + 8 + 4
	if c.LastBatchCodes != nil {
		n += 4 + 4*len(c.LastBatchCodes)
	}
	n += 4
	for i := range c.Devices {
		n += deviceCheckpointWireSize(&c.Devices[i])
	}
	return n
}

func encodeDeviceCheckpoint(dst []byte, d *DeviceCheckpoint) []byte {
	dst = putU32(dst, d.Device)
	dst = putU32(dst, uint32(len(d.Allocs)))
	for i := range d.Allocs {
		a := &d.Allocs[i]
		dst = putU32(dst, a.Addr)
		dst = putU32(dst, a.Size)
		dst = putU32(dst, uint32(len(a.Data)))
		dst = append(dst, a.Data...)
	}
	dst = putU64(dst, d.Timeline.EngineDone[0])
	dst = putU64(dst, d.Timeline.EngineDone[1])
	dst = putU32(dst, d.Timeline.NextStream)
	dst = putU32(dst, d.Timeline.NextEvent)
	dst = encodeTimelineEntries(dst, d.Timeline.Streams)
	return encodeTimelineEntries(dst, d.Timeline.Events)
}

func deviceCheckpointWireSize(d *DeviceCheckpoint) int {
	n := 4 + 4
	for i := range d.Allocs {
		n += 12 + len(d.Allocs[i].Data)
	}
	n += 8 + 8 + 4 + 4
	n += 4 + 12*len(d.Timeline.Streams)
	n += 4 + 12*len(d.Timeline.Events)
	return n
}

func encodeTimelineEntries(dst []byte, entries []TimelineEntry) []byte {
	dst = putU32(dst, uint32(len(entries)))
	for _, e := range entries {
		dst = putU32(dst, e.ID)
		dst = putU64(dst, e.Done)
	}
	return dst
}

// checkpointReader walks a checkpoint payload with bounds checking; any
// read past the end latches an error instead of panicking.
type checkpointReader struct {
	b   []byte
	off int
	err error
}

func (r *checkpointReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.b) {
		r.err = ErrShortMessage
		return 0
	}
	v := getU32(r.b, r.off)
	r.off += 4
	return v
}

func (r *checkpointReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.err = ErrShortMessage
		return 0
	}
	v := getU64(r.b, r.off)
	r.off += 8
	return v
}

func (r *checkpointReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.err = ErrShortMessage
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

// count reads a list length and rejects absurd values before the caller
// sizes an allocation from it.
func (r *checkpointReader) count(what string) int {
	n := r.u32()
	if r.err == nil && n > checkpointMaxList {
		r.err = fmt.Errorf("protocol: checkpoint %s count %d exceeds limit", what, n)
	}
	return int(n)
}

// DecodeCheckpoint parses a reassembled checkpoint payload. Alloc data is
// copied out of b, so the caller may reuse the buffer after decoding.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	r := &checkpointReader{b: b}
	if v := r.u32(); r.err == nil && v != CheckpointVersion {
		return nil, fmt.Errorf("protocol: checkpoint version %d, want %d", v, CheckpointVersion)
	}
	c := &Checkpoint{Session: r.u64()}
	c.Module = string(r.bytes(r.count("module name")))
	c.CurDevice = r.u32()
	c.SchedClass = r.u32()
	c.SchedWeight = r.u32()
	if r.err == nil && c.SchedClass > maxSchedClass {
		return nil, fmt.Errorf("%w: checkpoint class %d", ErrBadSchedClass, c.SchedClass)
	}
	if r.err == nil && c.SchedWeight > MaxSchedWeight {
		return nil, fmt.Errorf("%w: checkpoint weight %d", ErrBadSchedWeight, c.SchedWeight)
	}
	c.LastBatchSeq = r.u64()
	switch flag := r.u32(); {
	case r.err != nil:
	case flag == 1:
		n := r.count("batch code")
		if r.err == nil {
			c.LastBatchCodes = make([]uint32, n)
			for i := range c.LastBatchCodes {
				c.LastBatchCodes[i] = r.u32()
			}
		}
	case flag != 0:
		return nil, fmt.Errorf("protocol: checkpoint batch-window flag %d", flag)
	}
	nDev := r.count("device")
	for i := 0; i < nDev && r.err == nil; i++ {
		c.Devices = append(c.Devices, decodeDeviceCheckpoint(r))
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("protocol: checkpoint has %d trailing bytes", len(b)-r.off)
	}
	return c, nil
}

func decodeDeviceCheckpoint(r *checkpointReader) DeviceCheckpoint {
	d := DeviceCheckpoint{Device: r.u32()}
	nAlloc := r.count("alloc")
	for i := 0; i < nAlloc && r.err == nil; i++ {
		a := AllocCheckpoint{Addr: r.u32(), Size: r.u32()}
		data := r.bytes(r.count("alloc data"))
		if r.err == nil {
			a.Data = append([]byte(nil), data...)
			d.Allocs = append(d.Allocs, a)
		}
	}
	d.Timeline.EngineDone[0] = r.u64()
	d.Timeline.EngineDone[1] = r.u64()
	d.Timeline.NextStream = r.u32()
	d.Timeline.NextEvent = r.u32()
	d.Timeline.Streams = decodeTimelineEntries(r)
	d.Timeline.Events = decodeTimelineEntries(r)
	return d
}

func decodeTimelineEntries(r *checkpointReader) []TimelineEntry {
	n := r.count("timeline entry")
	var entries []TimelineEntry
	for i := 0; i < n && r.err == nil; i++ {
		entries = append(entries, TimelineEntry{ID: r.u32(), Done: r.u64()})
	}
	return entries
}
