// Package protocol defines the rCUDA wire format.
//
// The client sends one message per CUDA Runtime API call. As in the paper,
// "the first 32 bits of the request identify the specific CUDA function
// called, while the subsequent data is function-dependent"; the server
// "always sends a 32-bit result code of the operation, and possibly more
// data depending on each particular function". The byte-level breakdown of
// every message reproduces Table I of the paper exactly; TableI() derives
// the table from the encoders themselves so a unit test can assert it.
//
// One operation is special: the initialization message is the first message
// on a fresh connection and carries no function identifier — the server
// recognizes it positionally, replies with the device compute capability
// (8 bytes) and a result code, and only then enters the request loop.
//
// All integers are little-endian. Device pointers are 32-bit, as in the
// CUDA 2.3 / Tesla C1060 (4 GB) era the paper targets. Messages travel in
// length-prefixed frames (see frame.go); the 4-byte frame header is
// transport overhead, already included in the measured per-message latency
// curves, and is not part of the Table I accounting.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Op identifies the remote CUDA function of a request.
type Op uint32

// Remote operations. OpInit never appears on the wire (the initialization
// exchange is positional) but is defined so traces can label it.
const (
	OpInit Op = iota
	OpMalloc
	OpMemcpyToDevice
	OpMemcpyToHost
	OpLaunch
	OpFree
	OpDeviceSynchronize
	OpFinalize
	opSentinel
)

// String returns the CUDA-level name of the operation.
func (o Op) String() string {
	switch o {
	case OpInit:
		return "Initialization"
	case OpMalloc:
		return "cudaMalloc"
	case OpMemcpyToDevice:
		return "cudaMemcpy (to device)"
	case OpMemcpyToHost:
		return "cudaMemcpy (to host)"
	case OpLaunch:
		return "cudaLaunch"
	case OpFree:
		return "cudaFree"
	case OpDeviceSynchronize:
		return "cudaDeviceSynchronize"
	case OpFinalize:
		return "Finalization"
	default:
		if name, ok := asyncOpNames[o]; ok {
			return name
		}
		if name, ok := deviceOpNames[o]; ok {
			return name
		}
		if name, ok := queryOpNames[o]; ok {
			return name
		}
		if name, ok := chunkedOpNames[o]; ok {
			return name
		}
		if name, ok := sessionOpNames[o]; ok {
			return name
		}
		if name, ok := statsOpNames[o]; ok {
			return name
		}
		if name, ok := batchOpNames[o]; ok {
			return name
		}
		if name, ok := migrateOpNames[o]; ok {
			return name
		}
		return fmt.Sprintf("Op(%d)", uint32(o))
	}
}

// Memcpy kinds, matching the CUDA Runtime API enumeration.
const (
	KindHostToDevice uint32 = 1
	KindDeviceToHost uint32 = 2
)

// Errors returned by decoders.
var (
	ErrShortMessage = errors.New("protocol: message too short")
	ErrBadOp        = errors.New("protocol: unexpected operation code")
	errNoNUL        = errors.New("protocol: kernel name not NUL-terminated")
)

// Message is any encodable request or response.
type Message interface {
	// Encode appends the wire representation to dst and returns it.
	Encode(dst []byte) []byte
	// WireSize returns the encoded size in bytes (the Table I total).
	WireSize() int
}

func putU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func getU32(src []byte, off int) uint32 {
	return binary.LittleEndian.Uint32(src[off : off+4])
}

// --- Initialization -------------------------------------------------------

// InitRequest is the connection's opening message: the size-prefixed GPU
// module (kernel code and statically allocated variables). Table I: send
// Size (4) + Module (x) = x+4 bytes.
type InitRequest struct {
	Module []byte
}

// Encode implements Message.
func (m *InitRequest) Encode(dst []byte) []byte {
	dst = m.SegmentHead(dst)
	return append(dst, m.Module...)
}

// WireSize implements Message.
func (m *InitRequest) WireSize() int { return 4 + len(m.Module) }

// SegmentHead implements Segmented.
func (m *InitRequest) SegmentHead(dst []byte) []byte { return putU32(dst, uint32(len(m.Module))) }

// SegmentBulk implements Segmented.
func (m *InitRequest) SegmentBulk() []byte { return m.Module }

// SegmentTail implements Segmented.
func (m *InitRequest) SegmentTail(dst []byte) []byte { return dst }

// DecodeInitRequest parses an initialization request.
func DecodeInitRequest(b []byte) (*InitRequest, error) {
	if len(b) < 4 {
		return nil, ErrShortMessage
	}
	n := int(getU32(b, 0))
	if len(b) != 4+n {
		return nil, fmt.Errorf("protocol: init module length %d does not match payload %d", n, len(b)-4)
	}
	mod := make([]byte, n)
	copy(mod, b[4:])
	return &InitRequest{Module: mod}, nil
}

// InitResponse carries the device compute capability and the result code.
// Table I: receive Compute capability (8) + CUDA error (4) = 12 bytes.
type InitResponse struct {
	CapabilityMajor uint32
	CapabilityMinor uint32
	Err             uint32
}

// Encode implements Message.
func (m *InitResponse) Encode(dst []byte) []byte {
	dst = putU32(dst, m.CapabilityMajor)
	dst = putU32(dst, m.CapabilityMinor)
	return putU32(dst, m.Err)
}

// WireSize implements Message.
func (m *InitResponse) WireSize() int { return 12 }

// DecodeInitResponse parses an initialization response.
func DecodeInitResponse(b []byte) (*InitResponse, error) {
	if len(b) != 12 {
		return nil, ErrShortMessage
	}
	return &InitResponse{
		CapabilityMajor: getU32(b, 0),
		CapabilityMinor: getU32(b, 4),
		Err:             getU32(b, 8),
	}, nil
}

// --- cudaMalloc -----------------------------------------------------------

// MallocRequest asks the server to allocate device memory. Table I: send
// Function id. (4) + Size (4) = 8 bytes.
type MallocRequest struct {
	Size uint32
}

// Encode implements Message.
func (m *MallocRequest) Encode(dst []byte) []byte {
	dst = putU32(dst, uint32(OpMalloc))
	return putU32(dst, m.Size)
}

// WireSize implements Message.
func (m *MallocRequest) WireSize() int { return 8 }

// MallocResponse returns the result code and the new device pointer.
// Table I: receive CUDA error (4) + Device pointer (4) = 8 bytes.
type MallocResponse struct {
	Err    uint32
	DevPtr uint32
}

// Encode implements Message.
func (m *MallocResponse) Encode(dst []byte) []byte {
	dst = putU32(dst, m.Err)
	return putU32(dst, m.DevPtr)
}

// WireSize implements Message.
func (m *MallocResponse) WireSize() int { return 8 }

// DecodeMallocResponse parses a cudaMalloc response.
func DecodeMallocResponse(b []byte) (*MallocResponse, error) {
	if len(b) != 8 {
		return nil, ErrShortMessage
	}
	return &MallocResponse{Err: getU32(b, 0), DevPtr: getU32(b, 4)}, nil
}

// --- cudaMemcpy -----------------------------------------------------------

// MemcpyToDeviceRequest moves host data into device memory. Table I: send
// Function id. (4) + Destination (4) + Source (4) + Size (4) + Kind (4) +
// Data (x) = x+20 bytes.
type MemcpyToDeviceRequest struct {
	Dst  uint32 // device pointer
	Src  uint32 // client-side host address tag (opaque to the server)
	Data []byte
}

// Encode implements Message.
func (m *MemcpyToDeviceRequest) Encode(dst []byte) []byte {
	dst = m.SegmentHead(dst)
	return append(dst, m.Data...)
}

// WireSize implements Message.
func (m *MemcpyToDeviceRequest) WireSize() int { return 20 + len(m.Data) }

// SegmentHead implements Segmented.
func (m *MemcpyToDeviceRequest) SegmentHead(dst []byte) []byte {
	dst = putU32(dst, uint32(OpMemcpyToDevice))
	dst = putU32(dst, m.Dst)
	dst = putU32(dst, m.Src)
	dst = putU32(dst, uint32(len(m.Data)))
	return putU32(dst, KindHostToDevice)
}

// SegmentBulk implements Segmented.
func (m *MemcpyToDeviceRequest) SegmentBulk() []byte { return m.Data }

// SegmentTail implements Segmented.
func (m *MemcpyToDeviceRequest) SegmentTail(dst []byte) []byte { return dst }

// MemcpyToDeviceResponse carries only the result code (4 bytes).
type MemcpyToDeviceResponse struct {
	Err uint32
}

// Encode implements Message.
func (m *MemcpyToDeviceResponse) Encode(dst []byte) []byte { return putU32(dst, m.Err) }

// WireSize implements Message.
func (m *MemcpyToDeviceResponse) WireSize() int { return 4 }

// DecodeMemcpyToDeviceResponse parses a host-to-device memcpy response.
func DecodeMemcpyToDeviceResponse(b []byte) (*MemcpyToDeviceResponse, error) {
	if len(b) != 4 {
		return nil, ErrShortMessage
	}
	return &MemcpyToDeviceResponse{Err: getU32(b, 0)}, nil
}

// MemcpyToHostRequest asks for device data. Table I: send Function id. (4) +
// Destination (4) + Source (4) + Size (4) + Kind (4) = 20 bytes.
type MemcpyToHostRequest struct {
	Dst  uint32 // client-side host address tag (opaque to the server)
	Src  uint32 // device pointer
	Size uint32
}

// Encode implements Message.
func (m *MemcpyToHostRequest) Encode(dst []byte) []byte {
	dst = putU32(dst, uint32(OpMemcpyToHost))
	dst = putU32(dst, m.Dst)
	dst = putU32(dst, m.Src)
	dst = putU32(dst, m.Size)
	return putU32(dst, KindDeviceToHost)
}

// WireSize implements Message.
func (m *MemcpyToHostRequest) WireSize() int { return 20 }

// MemcpyToHostResponse returns the data followed by the result code.
// Table I: receive Data (x) + CUDA error (4) = x+4 bytes.
type MemcpyToHostResponse struct {
	Data []byte
	Err  uint32
}

// Encode implements Message.
func (m *MemcpyToHostResponse) Encode(dst []byte) []byte {
	dst = append(dst, m.Data...)
	return putU32(dst, m.Err)
}

// WireSize implements Message.
func (m *MemcpyToHostResponse) WireSize() int { return len(m.Data) + 4 }

// SegmentHead implements Segmented.
func (m *MemcpyToHostResponse) SegmentHead(dst []byte) []byte { return dst }

// SegmentBulk implements Segmented.
func (m *MemcpyToHostResponse) SegmentBulk() []byte { return m.Data }

// SegmentTail implements Segmented.
func (m *MemcpyToHostResponse) SegmentTail(dst []byte) []byte { return putU32(dst, m.Err) }

// DecodeMemcpyToHostResponse parses a device-to-host memcpy response.
func DecodeMemcpyToHostResponse(b []byte) (*MemcpyToHostResponse, error) {
	if len(b) < 4 {
		return nil, ErrShortMessage
	}
	data := make([]byte, len(b)-4)
	copy(data, b[:len(b)-4])
	return &MemcpyToHostResponse{Data: data, Err: getU32(b, len(b)-4)}, nil
}

// DecodeMemcpyToHostResponseInto parses a device-to-host memcpy response,
// copying the payload directly into dst — the caller's destination buffer —
// with no intermediate allocation. The payload must be empty (an error
// reply carries no data) or exactly len(dst) bytes. It returns the CUDA
// result code; callers must inspect a nonzero code before faulting on a
// payload-length mismatch.
func DecodeMemcpyToHostResponseInto(b, dst []byte) (code uint32, err error) {
	if len(b) < 4 {
		return 0, ErrShortMessage
	}
	data := b[:len(b)-4]
	code = getU32(b, len(b)-4)
	if code != 0 && len(data) == 0 {
		return code, nil
	}
	if len(data) != len(dst) {
		return code, fmt.Errorf("protocol: memcpy-to-host payload %d bytes, want %d", len(data), len(dst))
	}
	copy(dst, data)
	return code, nil
}

// --- cudaLaunch -----------------------------------------------------------

// LaunchRequest executes a kernel. Table I: send Function id. (4) + Texture
// offset (4) + Parameters offset (4) + Number of textures (4) + Block
// dimension (12) + Grid dimension (8) + Shared size (4) + Stream (4) +
// Kernel name (x) = x+44 bytes. The variable region x holds the
// NUL-terminated kernel name followed by the packed parameter block;
// ParamsOffset locates the parameters within the region, exactly what the
// "Parameters offset" field is for.
type LaunchRequest struct {
	TextureOffset uint32
	NumTextures   uint32
	BlockDim      [3]uint32
	GridDim       [2]uint32
	SharedSize    uint32
	Stream        uint32
	Name          string
	Params        []byte
}

// paramsOffset returns the offset of the parameter block inside the
// variable region: just past the NUL-terminated name.
func (m *LaunchRequest) paramsOffset() uint32 { return uint32(len(m.Name) + 1) }

// Encode implements Message.
func (m *LaunchRequest) Encode(dst []byte) []byte {
	dst = putU32(dst, uint32(OpLaunch))
	dst = putU32(dst, m.TextureOffset)
	dst = putU32(dst, m.paramsOffset())
	dst = putU32(dst, m.NumTextures)
	for _, d := range m.BlockDim {
		dst = putU32(dst, d)
	}
	for _, d := range m.GridDim {
		dst = putU32(dst, d)
	}
	dst = putU32(dst, m.SharedSize)
	dst = putU32(dst, m.Stream)
	dst = append(dst, m.Name...)
	dst = append(dst, 0)
	return append(dst, m.Params...)
}

// WireSize implements Message.
func (m *LaunchRequest) WireSize() int { return 44 + len(m.Name) + 1 + len(m.Params) }

// LaunchResponse carries only the result code (4 bytes).
type LaunchResponse struct {
	Err uint32
}

// Encode implements Message.
func (m *LaunchResponse) Encode(dst []byte) []byte { return putU32(dst, m.Err) }

// WireSize implements Message.
func (m *LaunchResponse) WireSize() int { return 4 }

// DecodeLaunchResponse parses a cudaLaunch response.
func DecodeLaunchResponse(b []byte) (*LaunchResponse, error) {
	if len(b) != 4 {
		return nil, ErrShortMessage
	}
	return &LaunchResponse{Err: getU32(b, 0)}, nil
}

// --- cudaFree -------------------------------------------------------------

// FreeRequest releases device memory. Table I: send Function id. (4) +
// Device pointer (4) = 8 bytes.
type FreeRequest struct {
	DevPtr uint32
}

// Encode implements Message.
func (m *FreeRequest) Encode(dst []byte) []byte {
	dst = putU32(dst, uint32(OpFree))
	return putU32(dst, m.DevPtr)
}

// WireSize implements Message.
func (m *FreeRequest) WireSize() int { return 8 }

// FreeResponse carries only the result code (4 bytes).
type FreeResponse struct {
	Err uint32
}

// Encode implements Message.
func (m *FreeResponse) Encode(dst []byte) []byte { return putU32(dst, m.Err) }

// WireSize implements Message.
func (m *FreeResponse) WireSize() int { return 4 }

// DecodeFreeResponse parses a cudaFree response.
func DecodeFreeResponse(b []byte) (*FreeResponse, error) {
	if len(b) != 4 {
		return nil, ErrShortMessage
	}
	return &FreeResponse{Err: getU32(b, 0)}, nil
}

// --- cudaDeviceSynchronize (extension beyond Table I) ----------------------

// SyncRequest blocks until all preceding device work completes. Not listed
// in Table I; it follows the same shape as cudaFree without an argument.
type SyncRequest struct{}

// Encode implements Message.
func (m *SyncRequest) Encode(dst []byte) []byte { return putU32(dst, uint32(OpDeviceSynchronize)) }

// WireSize implements Message.
func (m *SyncRequest) WireSize() int { return 4 }

// SyncResponse carries only the result code (4 bytes).
type SyncResponse struct {
	Err uint32
}

// Encode implements Message.
func (m *SyncResponse) Encode(dst []byte) []byte { return putU32(dst, m.Err) }

// WireSize implements Message.
func (m *SyncResponse) WireSize() int { return 4 }

// DecodeSyncResponse parses a cudaDeviceSynchronize response.
func DecodeSyncResponse(b []byte) (*SyncResponse, error) {
	if len(b) != 4 {
		return nil, ErrShortMessage
	}
	return &SyncResponse{Err: getU32(b, 0)}, nil
}

// --- Finalization ----------------------------------------------------------

// FinalizeRequest announces that the client is closing the session; the
// daemon quits servicing the current execution and releases its resources.
type FinalizeRequest struct{}

// Encode implements Message.
func (m *FinalizeRequest) Encode(dst []byte) []byte { return putU32(dst, uint32(OpFinalize)) }

// WireSize implements Message.
func (m *FinalizeRequest) WireSize() int { return 4 }

// --- Request decoding on the server side -----------------------------------

// Request is any client-to-server message after initialization.
type Request interface {
	Message
	// Op identifies the remote function.
	Op() Op
}

// Op implementations for the request types.
func (m *MallocRequest) Op() Op         { return OpMalloc }
func (m *MemcpyToDeviceRequest) Op() Op { return OpMemcpyToDevice }
func (m *MemcpyToHostRequest) Op() Op   { return OpMemcpyToHost }
func (m *LaunchRequest) Op() Op         { return OpLaunch }
func (m *FreeRequest) Op() Op           { return OpFree }
func (m *SyncRequest) Op() Op           { return OpDeviceSynchronize }
func (m *FinalizeRequest) Op() Op       { return OpFinalize }

// DecodeRequest parses any post-initialization request by its leading
// function identifier.
func DecodeRequest(b []byte) (Request, error) {
	if len(b) < 4 {
		return nil, ErrShortMessage
	}
	op := Op(getU32(b, 0))
	switch op {
	case OpMalloc:
		if len(b) != 8 {
			return nil, ErrShortMessage
		}
		return &MallocRequest{Size: getU32(b, 4)}, nil
	case OpMemcpyToDevice:
		if len(b) < 20 {
			return nil, ErrShortMessage
		}
		size := int(getU32(b, 12))
		if kind := getU32(b, 16); kind != KindHostToDevice {
			return nil, fmt.Errorf("protocol: memcpy-to-device with kind %d", kind)
		}
		if len(b) != 20+size {
			return nil, fmt.Errorf("protocol: memcpy size %d does not match payload %d", size, len(b)-20)
		}
		// Data aliases b so bulk payloads decode without a copy; the caller
		// owns b until the request has been consumed (the server dispatches
		// each request before the next Recv reuses the frame buffer).
		return &MemcpyToDeviceRequest{Dst: getU32(b, 4), Src: getU32(b, 8), Data: b[20:]}, nil
	case OpMemcpyToHost:
		if len(b) != 20 {
			return nil, ErrShortMessage
		}
		if kind := getU32(b, 16); kind != KindDeviceToHost {
			return nil, fmt.Errorf("protocol: memcpy-to-host with kind %d", kind)
		}
		return &MemcpyToHostRequest{Dst: getU32(b, 4), Src: getU32(b, 8), Size: getU32(b, 12)}, nil
	case OpLaunch:
		return decodeLaunch(b)
	case OpFree:
		if len(b) != 8 {
			return nil, ErrShortMessage
		}
		return &FreeRequest{DevPtr: getU32(b, 4)}, nil
	case OpDeviceSynchronize:
		if len(b) != 4 {
			return nil, ErrShortMessage
		}
		return &SyncRequest{}, nil
	case OpFinalize:
		if len(b) != 4 {
			return nil, ErrShortMessage
		}
		return &FinalizeRequest{}, nil
	default:
		return decodeAsyncRequest(op, b)
	}
}

func decodeLaunch(b []byte) (*LaunchRequest, error) {
	if len(b) < 45 { // header + at least the name's NUL
		return nil, ErrShortMessage
	}
	m := &LaunchRequest{
		TextureOffset: getU32(b, 4),
		NumTextures:   getU32(b, 12),
		SharedSize:    getU32(b, 36),
		Stream:        getU32(b, 40),
	}
	paramsOff := int(getU32(b, 8))
	for i := range m.BlockDim {
		m.BlockDim[i] = getU32(b, 16+4*i)
	}
	for i := range m.GridDim {
		m.GridDim[i] = getU32(b, 28+4*i)
	}
	blob := b[44:]
	if paramsOff < 1 || paramsOff > len(blob) {
		return nil, fmt.Errorf("protocol: launch parameters offset %d out of range %d", paramsOff, len(blob))
	}
	if blob[paramsOff-1] != 0 {
		return nil, errNoNUL
	}
	m.Name = string(blob[:paramsOff-1])
	m.Params = make([]byte, len(blob)-paramsOff)
	copy(m.Params, blob[paramsOff:])
	return m, nil
}
