package protocol

import "fmt"

// This file extends the wire protocol with streams, asynchronous memory
// copies, and events — the surface the paper explicitly defers
// ("asynchronous transfers [are left] for future work"). The message style
// follows Table I: a 32-bit function identifier, fixed little-endian
// fields, and a 32-bit result code leading every response.
//
// One subtlety: the transport is synchronous request/response, so an
// asynchronous device-to-host copy still returns its data in the response;
// asynchrony is server-side (the copy is queued on a device stream and
// overlaps other device work). The data is only guaranteed meaningful to
// the application after the stream synchronizes, matching CUDA semantics.

// Additional operations. They extend the Op space after the synchronous
// set; opSentinel in protocol.go remains the exclusive upper bound for the
// synchronous ops only.
const (
	OpStreamCreate Op = iota + opSentinel
	OpStreamDestroy
	OpStreamSynchronize
	OpMemcpyToDeviceAsync
	OpMemcpyToHostAsync
	OpEventCreate
	OpEventRecord
	OpEventSynchronize
	OpEventElapsed
	OpEventDestroy
	opAsyncSentinel
)

// asyncOpNames extends Op.String for the asynchronous operations.
var asyncOpNames = map[Op]string{
	OpStreamCreate:        "cudaStreamCreate",
	OpStreamDestroy:       "cudaStreamDestroy",
	OpStreamSynchronize:   "cudaStreamSynchronize",
	OpMemcpyToDeviceAsync: "cudaMemcpyAsync (to device)",
	OpMemcpyToHostAsync:   "cudaMemcpyAsync (to host)",
	OpEventCreate:         "cudaEventCreate",
	OpEventRecord:         "cudaEventRecord",
	OpEventSynchronize:    "cudaEventSynchronize",
	OpEventElapsed:        "cudaEventElapsedTime",
	OpEventDestroy:        "cudaEventDestroy",
}

// --- Streams ----------------------------------------------------------------

// StreamCreateRequest allocates a stream: 4 bytes.
type StreamCreateRequest struct{}

// Encode implements Message.
func (m *StreamCreateRequest) Encode(dst []byte) []byte { return putU32(dst, uint32(OpStreamCreate)) }

// WireSize implements Message.
func (m *StreamCreateRequest) WireSize() int { return 4 }

// Op implements Request.
func (m *StreamCreateRequest) Op() Op { return OpStreamCreate }

// StreamCreateResponse carries the result code and the new stream handle.
type StreamCreateResponse struct {
	Err    uint32
	Stream uint32
}

// Encode implements Message.
func (m *StreamCreateResponse) Encode(dst []byte) []byte {
	return putU32(putU32(dst, m.Err), m.Stream)
}

// WireSize implements Message.
func (m *StreamCreateResponse) WireSize() int { return 8 }

// DecodeStreamCreateResponse parses a stream-creation response.
func DecodeStreamCreateResponse(b []byte) (*StreamCreateResponse, error) {
	if len(b) != 8 {
		return nil, ErrShortMessage
	}
	return &StreamCreateResponse{Err: getU32(b, 0), Stream: getU32(b, 4)}, nil
}

// StreamOpRequest is a destroy or synchronize request on one stream:
// id (4) + stream (4) = 8 bytes.
type StreamOpRequest struct {
	Code   Op // OpStreamDestroy or OpStreamSynchronize
	Stream uint32
}

// Encode implements Message.
func (m *StreamOpRequest) Encode(dst []byte) []byte {
	return putU32(putU32(dst, uint32(m.Code)), m.Stream)
}

// WireSize implements Message.
func (m *StreamOpRequest) WireSize() int { return 8 }

// Op implements Request.
func (m *StreamOpRequest) Op() Op { return m.Code }

// --- Asynchronous memory copies ----------------------------------------------

// MemcpyToDeviceAsyncRequest is the host-to-device copy with a stream:
// id (4) + dst (4) + src (4) + size (4) + kind (4) + stream (4) + data (x)
// = x+24 bytes.
type MemcpyToDeviceAsyncRequest struct {
	Dst    uint32
	Src    uint32
	Stream uint32
	Data   []byte
}

// Encode implements Message.
func (m *MemcpyToDeviceAsyncRequest) Encode(dst []byte) []byte {
	dst = m.SegmentHead(dst)
	return append(dst, m.Data...)
}

// WireSize implements Message.
func (m *MemcpyToDeviceAsyncRequest) WireSize() int { return 24 + len(m.Data) }

// Op implements Request.
func (m *MemcpyToDeviceAsyncRequest) Op() Op { return OpMemcpyToDeviceAsync }

// SegmentHead implements Segmented.
func (m *MemcpyToDeviceAsyncRequest) SegmentHead(dst []byte) []byte {
	dst = putU32(dst, uint32(OpMemcpyToDeviceAsync))
	dst = putU32(dst, m.Dst)
	dst = putU32(dst, m.Src)
	dst = putU32(dst, uint32(len(m.Data)))
	dst = putU32(dst, KindHostToDevice)
	return putU32(dst, m.Stream)
}

// SegmentBulk implements Segmented.
func (m *MemcpyToDeviceAsyncRequest) SegmentBulk() []byte { return m.Data }

// SegmentTail implements Segmented.
func (m *MemcpyToDeviceAsyncRequest) SegmentTail(dst []byte) []byte { return dst }

// MemcpyToHostAsyncRequest is the device-to-host copy with a stream:
// id (4) + dst (4) + src (4) + size (4) + kind (4) + stream (4) = 24 bytes.
type MemcpyToHostAsyncRequest struct {
	Dst    uint32
	Src    uint32
	Size   uint32
	Stream uint32
}

// Encode implements Message.
func (m *MemcpyToHostAsyncRequest) Encode(dst []byte) []byte {
	dst = putU32(dst, uint32(OpMemcpyToHostAsync))
	dst = putU32(dst, m.Dst)
	dst = putU32(dst, m.Src)
	dst = putU32(dst, m.Size)
	dst = putU32(dst, KindDeviceToHost)
	return putU32(dst, m.Stream)
}

// WireSize implements Message.
func (m *MemcpyToHostAsyncRequest) WireSize() int { return 24 }

// Op implements Request.
func (m *MemcpyToHostAsyncRequest) Op() Op { return OpMemcpyToHostAsync }

// --- Events -------------------------------------------------------------------

// EventCreateRequest allocates an event: 4 bytes.
type EventCreateRequest struct{}

// Encode implements Message.
func (m *EventCreateRequest) Encode(dst []byte) []byte { return putU32(dst, uint32(OpEventCreate)) }

// WireSize implements Message.
func (m *EventCreateRequest) WireSize() int { return 4 }

// Op implements Request.
func (m *EventCreateRequest) Op() Op { return OpEventCreate }

// EventCreateResponse carries the result code and the new event handle.
type EventCreateResponse struct {
	Err   uint32
	Event uint32
}

// Encode implements Message.
func (m *EventCreateResponse) Encode(dst []byte) []byte {
	return putU32(putU32(dst, m.Err), m.Event)
}

// WireSize implements Message.
func (m *EventCreateResponse) WireSize() int { return 8 }

// DecodeEventCreateResponse parses an event-creation response.
func DecodeEventCreateResponse(b []byte) (*EventCreateResponse, error) {
	if len(b) != 8 {
		return nil, ErrShortMessage
	}
	return &EventCreateResponse{Err: getU32(b, 0), Event: getU32(b, 4)}, nil
}

// EventRecordRequest records an event on a stream: id (4) + event (4) +
// stream (4) = 12 bytes.
type EventRecordRequest struct {
	Event  uint32
	Stream uint32
}

// Encode implements Message.
func (m *EventRecordRequest) Encode(dst []byte) []byte {
	return putU32(putU32(putU32(dst, uint32(OpEventRecord)), m.Event), m.Stream)
}

// WireSize implements Message.
func (m *EventRecordRequest) WireSize() int { return 12 }

// Op implements Request.
func (m *EventRecordRequest) Op() Op { return OpEventRecord }

// EventOpRequest is a synchronize or destroy request on one event:
// id (4) + event (4) = 8 bytes.
type EventOpRequest struct {
	Code  Op // OpEventSynchronize or OpEventDestroy
	Event uint32
}

// Encode implements Message.
func (m *EventOpRequest) Encode(dst []byte) []byte {
	return putU32(putU32(dst, uint32(m.Code)), m.Event)
}

// WireSize implements Message.
func (m *EventOpRequest) WireSize() int { return 8 }

// Op implements Request.
func (m *EventOpRequest) Op() Op { return m.Code }

// EventElapsedRequest queries the time between two events: id (4) +
// start (4) + end (4) = 12 bytes.
type EventElapsedRequest struct {
	Start uint32
	End   uint32
}

// Encode implements Message.
func (m *EventElapsedRequest) Encode(dst []byte) []byte {
	return putU32(putU32(putU32(dst, uint32(OpEventElapsed)), m.Start), m.End)
}

// WireSize implements Message.
func (m *EventElapsedRequest) WireSize() int { return 12 }

// Op implements Request.
func (m *EventElapsedRequest) Op() Op { return OpEventElapsed }

// EventElapsedResponse carries the result code and the elapsed time in
// nanoseconds: 4 + 8 = 12 bytes.
type EventElapsedResponse struct {
	Err         uint32
	ElapsedNano uint64
}

// Encode implements Message.
func (m *EventElapsedResponse) Encode(dst []byte) []byte {
	dst = putU32(dst, m.Err)
	dst = append(dst,
		byte(m.ElapsedNano), byte(m.ElapsedNano>>8), byte(m.ElapsedNano>>16), byte(m.ElapsedNano>>24),
		byte(m.ElapsedNano>>32), byte(m.ElapsedNano>>40), byte(m.ElapsedNano>>48), byte(m.ElapsedNano>>56))
	return dst
}

// WireSize implements Message.
func (m *EventElapsedResponse) WireSize() int { return 12 }

// DecodeEventElapsedResponse parses an elapsed-time response.
func DecodeEventElapsedResponse(b []byte) (*EventElapsedResponse, error) {
	if len(b) != 12 {
		return nil, ErrShortMessage
	}
	var n uint64
	for i := 0; i < 8; i++ {
		n |= uint64(b[4+i]) << (8 * i)
	}
	return &EventElapsedResponse{Err: getU32(b, 0), ElapsedNano: n}, nil
}

// decodeAsyncRequest handles the extended operations for DecodeRequest.
func decodeAsyncRequest(op Op, b []byte) (Request, error) {
	switch op {
	case OpStreamCreate:
		if len(b) != 4 {
			return nil, ErrShortMessage
		}
		return &StreamCreateRequest{}, nil
	case OpStreamDestroy, OpStreamSynchronize:
		if len(b) != 8 {
			return nil, ErrShortMessage
		}
		return &StreamOpRequest{Code: op, Stream: getU32(b, 4)}, nil
	case OpMemcpyToDeviceAsync:
		if len(b) < 24 {
			return nil, ErrShortMessage
		}
		size := int(getU32(b, 12))
		if kind := getU32(b, 16); kind != KindHostToDevice {
			return nil, fmt.Errorf("protocol: async memcpy-to-device with kind %d", kind)
		}
		if len(b) != 24+size {
			return nil, fmt.Errorf("protocol: async memcpy size %d does not match payload %d", size, len(b)-24)
		}
		// Data aliases b; see the synchronous memcpy decode in
		// DecodeRequest for the ownership contract.
		return &MemcpyToDeviceAsyncRequest{
			Dst: getU32(b, 4), Src: getU32(b, 8), Stream: getU32(b, 20), Data: b[24:],
		}, nil
	case OpMemcpyToHostAsync:
		if len(b) != 24 {
			return nil, ErrShortMessage
		}
		if kind := getU32(b, 16); kind != KindDeviceToHost {
			return nil, fmt.Errorf("protocol: async memcpy-to-host with kind %d", kind)
		}
		return &MemcpyToHostAsyncRequest{
			Dst: getU32(b, 4), Src: getU32(b, 8), Size: getU32(b, 12), Stream: getU32(b, 20),
		}, nil
	case OpEventCreate:
		if len(b) != 4 {
			return nil, ErrShortMessage
		}
		return &EventCreateRequest{}, nil
	case OpEventRecord:
		if len(b) != 12 {
			return nil, ErrShortMessage
		}
		return &EventRecordRequest{Event: getU32(b, 4), Stream: getU32(b, 8)}, nil
	case OpEventSynchronize, OpEventDestroy:
		if len(b) != 8 {
			return nil, ErrShortMessage
		}
		return &EventOpRequest{Code: op, Event: getU32(b, 4)}, nil
	case OpEventElapsed:
		if len(b) != 12 {
			return nil, ErrShortMessage
		}
		return &EventElapsedRequest{Start: getU32(b, 4), End: getU32(b, 8)}, nil
	default:
		return decodeDeviceRequest(op, b)
	}
}
