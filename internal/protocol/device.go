package protocol

import "fmt"

// Device-management and device-side memory operations: cudaGetDeviceCount,
// cudaSetDevice, cudaGetDeviceProperties, cudaMemset, and device-to-device
// cudaMemcpy. Figure 1 of the paper shows server nodes owning several
// accelerators, so the middleware must let a client discover and select
// among the server's devices.

// Operation codes continue past the asynchronous extension.
const (
	OpGetDeviceCount Op = iota + opAsyncSentinel
	OpSetDevice
	OpGetDeviceProperties
	OpMemset
	OpMemcpyDeviceToDevice
	opDeviceSentinel
)

// deviceOpNames extends Op.String for the device-management operations.
var deviceOpNames = map[Op]string{
	OpGetDeviceCount:       "cudaGetDeviceCount",
	OpSetDevice:            "cudaSetDevice",
	OpGetDeviceProperties:  "cudaGetDeviceProperties",
	OpMemset:               "cudaMemset",
	OpMemcpyDeviceToDevice: "cudaMemcpy (device to device)",
}

// --- cudaGetDeviceCount -------------------------------------------------------

// GetDeviceCountRequest asks how many GPUs the server owns: 4 bytes.
type GetDeviceCountRequest struct{}

// Encode implements Message.
func (m *GetDeviceCountRequest) Encode(dst []byte) []byte {
	return putU32(dst, uint32(OpGetDeviceCount))
}

// WireSize implements Message.
func (m *GetDeviceCountRequest) WireSize() int { return 4 }

// Op implements Request.
func (m *GetDeviceCountRequest) Op() Op { return OpGetDeviceCount }

// GetDeviceCountResponse carries the result code and the device count.
type GetDeviceCountResponse struct {
	Err   uint32
	Count uint32
}

// Encode implements Message.
func (m *GetDeviceCountResponse) Encode(dst []byte) []byte {
	return putU32(putU32(dst, m.Err), m.Count)
}

// WireSize implements Message.
func (m *GetDeviceCountResponse) WireSize() int { return 8 }

// DecodeGetDeviceCountResponse parses a device-count response.
func DecodeGetDeviceCountResponse(b []byte) (*GetDeviceCountResponse, error) {
	if len(b) != 8 {
		return nil, ErrShortMessage
	}
	return &GetDeviceCountResponse{Err: getU32(b, 0), Count: getU32(b, 4)}, nil
}

// --- cudaSetDevice -------------------------------------------------------------

// SetDeviceRequest selects the session's current device: id (4) +
// device (4) = 8 bytes.
type SetDeviceRequest struct {
	Device uint32
}

// Encode implements Message.
func (m *SetDeviceRequest) Encode(dst []byte) []byte {
	return putU32(putU32(dst, uint32(OpSetDevice)), m.Device)
}

// WireSize implements Message.
func (m *SetDeviceRequest) WireSize() int { return 8 }

// Op implements Request.
func (m *SetDeviceRequest) Op() Op { return OpSetDevice }

// --- cudaGetDeviceProperties -----------------------------------------------------

// GetDevicePropertiesRequest asks for the current device's description:
// 4 bytes.
type GetDevicePropertiesRequest struct{}

// Encode implements Message.
func (m *GetDevicePropertiesRequest) Encode(dst []byte) []byte {
	return putU32(dst, uint32(OpGetDeviceProperties))
}

// WireSize implements Message.
func (m *GetDevicePropertiesRequest) WireSize() int { return 4 }

// Op implements Request.
func (m *GetDevicePropertiesRequest) Op() Op { return OpGetDeviceProperties }

// GetDevicePropertiesResponse carries the result code and the device
// description: err (4) + mem (8) + major (4) + minor (4) + SMs (4) +
// clock (4) + membw (4) + name length (4) + name (x).
type GetDevicePropertiesResponse struct {
	Err             uint32
	MemoryBytes     uint64
	CapabilityMajor uint32
	CapabilityMinor uint32
	Multiprocessors uint32
	ClockMHz        uint32
	MemoryMBps      uint32
	Name            string
}

// Encode implements Message.
func (m *GetDevicePropertiesResponse) Encode(dst []byte) []byte {
	dst = putU32(dst, m.Err)
	dst = putU32(dst, uint32(m.MemoryBytes))
	dst = putU32(dst, uint32(m.MemoryBytes>>32))
	dst = putU32(dst, m.CapabilityMajor)
	dst = putU32(dst, m.CapabilityMinor)
	dst = putU32(dst, m.Multiprocessors)
	dst = putU32(dst, m.ClockMHz)
	dst = putU32(dst, m.MemoryMBps)
	dst = putU32(dst, uint32(len(m.Name)))
	return append(dst, m.Name...)
}

// WireSize implements Message.
func (m *GetDevicePropertiesResponse) WireSize() int { return 36 + len(m.Name) }

// DecodeGetDevicePropertiesResponse parses a device-properties response.
func DecodeGetDevicePropertiesResponse(b []byte) (*GetDevicePropertiesResponse, error) {
	if len(b) < 36 {
		return nil, ErrShortMessage
	}
	n := int(getU32(b, 32))
	if len(b) != 36+n {
		return nil, fmt.Errorf("protocol: properties name length %d does not match payload %d", n, len(b)-36)
	}
	return &GetDevicePropertiesResponse{
		Err:             getU32(b, 0),
		MemoryBytes:     uint64(getU32(b, 4)) | uint64(getU32(b, 8))<<32,
		CapabilityMajor: getU32(b, 12),
		CapabilityMinor: getU32(b, 16),
		Multiprocessors: getU32(b, 20),
		ClockMHz:        getU32(b, 24),
		MemoryMBps:      getU32(b, 28),
		Name:            string(b[36:]),
	}, nil
}

// --- cudaMemset ----------------------------------------------------------------

// MemsetRequest fills device memory: id (4) + pointer (4) + value (4) +
// size (4) = 16 bytes.
type MemsetRequest struct {
	DevPtr uint32
	Value  uint32 // low byte is the fill value, as in cudaMemset's int arg
	Size   uint32
}

// Encode implements Message.
func (m *MemsetRequest) Encode(dst []byte) []byte {
	dst = putU32(dst, uint32(OpMemset))
	dst = putU32(dst, m.DevPtr)
	dst = putU32(dst, m.Value)
	return putU32(dst, m.Size)
}

// WireSize implements Message.
func (m *MemsetRequest) WireSize() int { return 16 }

// Op implements Request.
func (m *MemsetRequest) Op() Op { return OpMemset }

// --- device-to-device cudaMemcpy ---------------------------------------------------

// MemcpyD2DRequest copies within device memory: id (4) + dst (4) + src (4)
// + size (4) = 16 bytes. No bulk payload crosses the network — the chief
// attraction of keeping intermediate results on the remote GPU.
type MemcpyD2DRequest struct {
	Dst  uint32
	Src  uint32
	Size uint32
}

// Encode implements Message.
func (m *MemcpyD2DRequest) Encode(dst []byte) []byte {
	dst = putU32(dst, uint32(OpMemcpyDeviceToDevice))
	dst = putU32(dst, m.Dst)
	dst = putU32(dst, m.Src)
	return putU32(dst, m.Size)
}

// WireSize implements Message.
func (m *MemcpyD2DRequest) WireSize() int { return 16 }

// Op implements Request.
func (m *MemcpyD2DRequest) Op() Op { return OpMemcpyDeviceToDevice }

// decodeDeviceRequest handles the device-management operations for
// DecodeRequest.
func decodeDeviceRequest(op Op, b []byte) (Request, error) {
	switch op {
	case OpGetDeviceCount:
		if len(b) != 4 {
			return nil, ErrShortMessage
		}
		return &GetDeviceCountRequest{}, nil
	case OpSetDevice:
		if len(b) != 8 {
			return nil, ErrShortMessage
		}
		return &SetDeviceRequest{Device: getU32(b, 4)}, nil
	case OpGetDeviceProperties:
		if len(b) != 4 {
			return nil, ErrShortMessage
		}
		return &GetDevicePropertiesRequest{}, nil
	case OpMemset:
		if len(b) != 16 {
			return nil, ErrShortMessage
		}
		return &MemsetRequest{DevPtr: getU32(b, 4), Value: getU32(b, 8), Size: getU32(b, 12)}, nil
	case OpMemcpyDeviceToDevice:
		if len(b) != 16 {
			return nil, ErrShortMessage
		}
		return &MemcpyD2DRequest{Dst: getU32(b, 4), Src: getU32(b, 8), Size: getU32(b, 12)}, nil
	default:
		return decodeQueryRequest(op, b)
	}
}
