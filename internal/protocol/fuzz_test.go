package protocol

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest feeds arbitrary bytes to the request decoder: it must
// never panic and never return both a nil request and a nil error. Seeds
// cover every legitimate request shape.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []Request{
		&MallocRequest{Size: 64},
		&MemcpyToDeviceRequest{Dst: 1, Data: []byte{1, 2, 3}},
		&MemcpyToHostRequest{Src: 2, Size: 8},
		&LaunchRequest{Name: "sgemmNN", Params: []byte{1, 2, 3, 4}},
		&FreeRequest{DevPtr: 3},
		&SyncRequest{},
		&FinalizeRequest{},
		&StreamCreateRequest{},
		&StreamOpRequest{Code: OpStreamSynchronize, Stream: 1},
		&MemcpyToDeviceAsyncRequest{Dst: 1, Stream: 1, Data: []byte{9}},
		&MemcpyToHostAsyncRequest{Src: 1, Size: 4, Stream: 1},
		&EventCreateRequest{},
		&EventRecordRequest{Event: 1, Stream: 1},
		&EventOpRequest{Code: OpEventDestroy, Event: 1},
		&EventElapsedRequest{Start: 1, End: 2},
		&GetDeviceCountRequest{},
		&SetDeviceRequest{Device: 1},
		&GetDevicePropertiesRequest{},
		&MemsetRequest{DevPtr: 1, Value: 2, Size: 3},
		&MemcpyD2DRequest{Dst: 1, Src: 2, Size: 3},
	}
	for _, s := range seeds {
		f.Add(s.Encode(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, raw []byte) {
		req, err := DecodeRequest(raw)
		if err == nil && req == nil {
			t.Fatal("nil request with nil error")
		}
		if err != nil {
			return
		}
		// Valid decodes must re-encode to the identical bytes
		// (canonical wire form round trip).
		enc := req.Encode(nil)
		if !bytes.Equal(enc, raw) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", raw, enc)
		}
	})
}

// FuzzReadFrame feeds arbitrary byte streams to the frame reader: it must
// never panic and never allocate absurd buffers from a corrupt header.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, &MallocRequest{Size: 64})
	f.Add(buf.Bytes())
	f.Add([]byte{4, 0, 0, 0, 1, 2, 3, 4})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, raw []byte) {
		payload, err := ReadFrame(bytes.NewReader(raw))
		if err != nil {
			return
		}
		if len(payload) > len(raw) {
			t.Fatalf("frame payload %d exceeds input %d", len(payload), len(raw))
		}
	})
}

// FuzzDecodeInitRequest covers the positional initialization message.
func FuzzDecodeInitRequest(f *testing.F) {
	f.Add((&InitRequest{Module: []byte("module")}).Encode(nil))
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		req, err := DecodeInitRequest(raw)
		if err == nil && req == nil {
			t.Fatal("nil request with nil error")
		}
		if err == nil {
			if !bytes.Equal(req.Encode(nil), raw) {
				t.Fatal("init re-encode mismatch")
			}
		}
	})
}
