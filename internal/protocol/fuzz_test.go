package protocol

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest feeds arbitrary bytes to the request decoder: it must
// never panic and never return both a nil request and a nil error. Seeds
// cover every legitimate request shape.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []Request{
		&MallocRequest{Size: 64},
		&MemcpyToDeviceRequest{Dst: 1, Data: []byte{1, 2, 3}},
		&MemcpyToHostRequest{Src: 2, Size: 8},
		&LaunchRequest{Name: "sgemmNN", Params: []byte{1, 2, 3, 4}},
		&FreeRequest{DevPtr: 3},
		&SyncRequest{},
		&FinalizeRequest{},
		&StreamCreateRequest{},
		&StreamOpRequest{Code: OpStreamSynchronize, Stream: 1},
		&MemcpyToDeviceAsyncRequest{Dst: 1, Stream: 1, Data: []byte{9}},
		&MemcpyToHostAsyncRequest{Src: 1, Size: 4, Stream: 1},
		&EventCreateRequest{},
		&EventRecordRequest{Event: 1, Stream: 1},
		&EventOpRequest{Code: OpEventDestroy, Event: 1},
		&EventElapsedRequest{Start: 1, End: 2},
		&GetDeviceCountRequest{},
		&SetDeviceRequest{Device: 1},
		&GetDevicePropertiesRequest{},
		&MemsetRequest{DevPtr: 1, Value: 2, Size: 3},
		&MemcpyD2DRequest{Dst: 1, Src: 2, Size: 3},
		&MemcpyStreamBeginRequest{Ptr: 1, Total: 64, Kind: KindHostToDevice, ChunkSize: 16},
		&MemcpyStreamChunk{Seq: 2, Data: []byte{1, 2, 3}},
		&MemcpyStreamEndRequest{Chunks: 4},
		&SessionHelloRequest{},
		&SessionHelloRequest{Class: SchedClassRealtime, Weight: 8},
		&SessionHelloRequest{Class: SchedClassBestEffort},
		&ReattachRequest{Session: 7},
		&StatsQueryRequest{},
		&BatchRequest{Seq: 1, Subs: [][]byte{
			(&LaunchRequest{Name: "sgemmNN", Params: []byte{1, 2, 3, 4}}).Encode(nil),
			(&EventRecordRequest{Event: 1, Stream: 1}).Encode(nil),
		}},
		&SessionRestoreRequest{Session: 9},
		&MigrateBeginRequest{Total: 64, ChunkSize: 16},
		&MigrateChunk{Seq: 2, Data: []byte{1, 2, 3}},
		&MigrateCommitRequest{Chunks: 4, Digest: 0xfeedface},
	}
	for _, s := range seeds {
		full := s.Encode(nil)
		f.Add(full)
		// Truncated prefixes model frames cut mid-payload by a fault; the
		// decoder must reject them without panicking.
		f.Add(full[:len(full)/2])
		if len(full) > 1 {
			f.Add(full[:len(full)-1])
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	// Op-space sweep: a bare header for every op code the protocol has ever
	// declared — plus one past the end for the unknown-op path — and a
	// padded variant of each, so every dispatch branch of DecodeRequest is
	// in the corpus from the first run. The wiremsg analyzer (rcuda-vet)
	// proves statically that every declared op is dispatched; these seeds
	// keep the dynamic corpus aligned with that invariant as ops are added.
	for op := Op(0); op <= opMigrateSentinel; op++ {
		hdr := putU32(nil, uint32(op))
		f.Add(hdr)
		f.Add(append(hdr, 0, 0, 0, 0, 0, 0, 0, 0))
	}

	f.Fuzz(func(t *testing.T, raw []byte) {
		req, err := DecodeRequest(raw)
		if err == nil && req == nil {
			t.Fatal("nil request with nil error")
		}
		if err != nil {
			return
		}
		// Valid decodes must re-encode to the identical bytes
		// (canonical wire form round trip).
		enc := req.Encode(nil)
		if !bytes.Equal(enc, raw) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", raw, enc)
		}
	})
}

// FuzzReadFrame feeds arbitrary byte streams to the frame reader: it must
// never panic and never allocate absurd buffers from a corrupt header.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, &MallocRequest{Size: 64})
	f.Add(buf.Bytes())
	f.Add([]byte{4, 0, 0, 0, 1, 2, 3, 4})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, raw []byte) {
		payload, err := ReadFrame(bytes.NewReader(raw))
		if err != nil {
			return
		}
		if len(payload) > len(raw) {
			t.Fatalf("frame payload %d exceeds input %d", len(payload), len(raw))
		}
	})
}

// FuzzChunkAssembler drives a chunk assembler with an arbitrary stream of
// decoded chunk/end messages: it must never panic, never write outside its
// destination, and only report success when the sequence was exactly the
// declared total in order.
func FuzzChunkAssembler(f *testing.F) {
	chunk := func(seq uint32, data []byte) []byte {
		return (&MemcpyStreamChunk{Seq: seq, Data: data}).Encode(nil)
	}
	end := func(n uint32) []byte { return (&MemcpyStreamEndRequest{Chunks: n}).Encode(nil) }
	f.Add(uint32(32), uint32(8), bytes.Join([][]byte{
		chunk(0, make([]byte, 8)), chunk(1, make([]byte, 8)),
		chunk(2, make([]byte, 8)), chunk(3, make([]byte, 8)), end(4),
	}, nil))
	f.Add(uint32(8), uint32(8), bytes.Join([][]byte{chunk(1, make([]byte, 8)), end(1)}, nil))
	f.Add(uint32(16), uint32(8), bytes.Join([][]byte{chunk(0, make([]byte, 8)), end(1)}, nil))
	f.Add(uint32(0), uint32(1), end(0))

	f.Fuzz(func(t *testing.T, total, chunkSize uint32, stream []byte) {
		if total > 1<<16 {
			total %= 1 << 16 // keep the destination buffer small
		}
		if chunkSize == 0 {
			chunkSize = 1
		}
		dst := make([]byte, total)
		asm, err := NewChunkAssembler(total, chunkSize, dst)
		if err != nil {
			t.Fatalf("in-range parameters rejected: %v", err)
		}
		// Walk the byte stream as consecutive frames: each is a chunk or an
		// end message, anything else terminates the walk.
		covered := 0
		for len(stream) >= 12 {
			if Op(getU32(stream, 0)) == OpMemcpyStreamChunk {
				size := int(getU32(stream, 8))
				if size < 0 || 12+size > len(stream) {
					break
				}
				c, err := DecodeMemcpyStreamChunk(stream[:12+size])
				if err != nil {
					break
				}
				if _, err := asm.Add(c); err == nil {
					covered += len(c.Data)
				}
				stream = stream[12+size:]
				continue
			}
			req, err := DecodeRequest(stream[:8])
			e, ok := req.(*MemcpyStreamEndRequest)
			if err != nil || !ok {
				break
			}
			if asm.Finish(e) == nil && covered != int(total) {
				t.Fatalf("Finish accepted %d of %d bytes", covered, total)
			}
			stream = stream[8:]
		}
		if asm.Complete() != (covered == int(total)) {
			t.Fatalf("Complete()=%v, accepted %d of %d bytes", asm.Complete(), covered, total)
		}
	})
}

// FuzzDecodeBatch stresses the OpBatch frame decoder: malformed sub-op
// lengths, truncated tails, sub-op counts past the cap, and non-batchable
// sub-ops must all be rejected without panics or absurd allocations, and
// every accepted frame must re-encode to the identical bytes.
func FuzzDecodeBatch(f *testing.F) {
	batch := func(seq uint64, subs ...Request) []byte {
		b := &BatchRequest{Seq: seq}
		for _, sub := range subs {
			b.Subs = append(b.Subs, sub.Encode(nil))
		}
		return b.Encode(nil)
	}
	good := batch(3,
		&MemcpyToDeviceAsyncRequest{Dst: 1, Stream: 1, Data: []byte{9, 8, 7}},
		&LaunchRequest{Name: "sgemmNN", Params: []byte{1, 2, 3, 4}},
		&EventRecordRequest{Event: 1, Stream: 1},
		&MemsetRequest{DevPtr: 1, Value: 0, Size: 16},
	)
	f.Add(good)
	f.Add(good[:len(good)-3])                          // truncated tail
	f.Add(good[:17])                                   // cut inside the first sub-op header
	f.Add(batch(0, &SyncRequest{}))                    // non-batchable sub-op
	f.Add(batch(1, &BatchRequest{Subs: [][]byte{{}}})) // nested batch
	f.Add((&BatchRequest{Seq: 2}).Encode(nil))         // empty batch
	corrupt := append([]byte(nil), good...)
	corrupt[16] = 0xff // first sub-op length overflows the frame
	f.Add(corrupt)
	huge := append([]byte(nil), good[:16]...)
	huge[12], huge[13] = 0xff, 0xff // declares 65535 sub-ops with no payload
	f.Add(huge)

	f.Fuzz(func(t *testing.T, raw []byte) {
		// Force the op header so the fuzzer exercises the batch decoder
		// (mutated headers land in the other decoders, covered elsewhere).
		if len(raw) >= 4 {
			raw = append([]byte(nil), raw...)
			putU32(raw[:0], uint32(OpBatch))
		}
		req, err := DecodeRequest(raw)
		if err != nil {
			return
		}
		b, ok := req.(*BatchRequest)
		if !ok {
			t.Fatalf("decodeBatchRequest returned %T", req)
		}
		if len(b.Decoded) != len(b.Subs) || len(b.Subs) == 0 || len(b.Subs) > MaxBatchOps {
			t.Fatalf("inconsistent batch: %d subs, %d decoded", len(b.Subs), len(b.Decoded))
		}
		for i, sub := range b.Decoded {
			if !BatchableOp(sub.Op()) {
				t.Fatalf("non-batchable sub-op %d: %v", i, sub.Op())
			}
		}
		if enc := b.Encode(nil); !bytes.Equal(enc, raw) {
			t.Fatalf("batch re-encode mismatch:\n in  %x\n out %x", raw, enc)
		}
	})
}

// FuzzTryDecodeStatsQuery covers the probe handshake's first-payload
// sniffing: exactly one 4-byte spelling of the op is a stats query, and
// the decision must agree with the general request decoder.
func FuzzTryDecodeStatsQuery(f *testing.F) {
	f.Add((&StatsQueryRequest{}).Encode(nil))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add((&SyncRequest{}).Encode(nil))
	f.Add(append((&StatsQueryRequest{}).Encode(nil), 0)) // trailing byte

	f.Fuzz(func(t *testing.T, raw []byte) {
		q, ok := TryDecodeStatsQuery(raw)
		if ok != (q != nil) {
			t.Fatalf("ok=%v but query=%v", ok, q)
		}
		want := len(raw) == 4 && Op(getU32(raw, 0)) == OpStatsQuery
		if ok != want {
			t.Fatalf("TryDecodeStatsQuery=%v on %x, want %v", ok, raw, want)
		}
		if ok {
			if enc := q.Encode(nil); !bytes.Equal(enc, raw) {
				t.Fatalf("query re-encode mismatch: %x vs %x", enc, raw)
			}
		}
	})
}

// FuzzTryDecodeSessionRestore covers the migration handshake's
// first-payload sniffing: exactly one 12-byte spelling of the op is a
// restore request, and the decision must agree with the general request
// decoder.
func FuzzTryDecodeSessionRestore(f *testing.F) {
	f.Add((&SessionRestoreRequest{Session: 7}).Encode(nil))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add((&ReattachRequest{Session: 7}).Encode(nil))
	f.Add(append((&SessionRestoreRequest{Session: 7}).Encode(nil), 0)) // trailing byte

	f.Fuzz(func(t *testing.T, raw []byte) {
		q, ok := TryDecodeSessionRestore(raw)
		if ok != (q != nil) {
			t.Fatalf("ok=%v but request=%v", ok, q)
		}
		want := len(raw) == 12 && Op(getU32(raw, 0)) == OpSessionRestore
		if ok != want {
			t.Fatalf("TryDecodeSessionRestore=%v on %x, want %v", ok, raw, want)
		}
		if ok {
			if enc := q.Encode(nil); !bytes.Equal(enc, raw) {
				t.Fatalf("restore re-encode mismatch: %x vs %x", enc, raw)
			}
		}
	})
}

// FuzzDecodeMigrateChunk stresses the migration-chunk decoder the
// daemon-to-daemon stream trusts for payload framing: truncated headers,
// mismatched declared sizes, and foreign ops must all be rejected without
// panics, and accepted chunks must re-encode canonically.
func FuzzDecodeMigrateChunk(f *testing.F) {
	full := (&MigrateChunk{Seq: 3, Data: []byte{1, 2, 3, 4}}).Encode(nil)
	f.Add(full)
	f.Add(full[:len(full)-1])
	f.Add(full[:11])
	f.Add((&MemcpyStreamChunk{Seq: 3, Data: []byte{1}}).Encode(nil))

	f.Fuzz(func(t *testing.T, raw []byte) {
		c, err := DecodeMigrateChunk(raw)
		if err != nil {
			return
		}
		if enc := c.Encode(nil); !bytes.Equal(enc, raw) {
			t.Fatalf("chunk re-encode mismatch:\n in  %x\n out %x", raw, enc)
		}
		if s := c.Stream(); s.Seq != c.Seq || !bytes.Equal(s.Data, c.Data) {
			t.Fatal("Stream() view disagrees with the chunk")
		}
	})
}

// FuzzDecodeCheckpoint feeds arbitrary bytes to the checkpoint decoder: it
// must never panic, never allocate absurd buffers from corrupt counts, and
// every accepted payload must re-encode to the identical bytes.
func FuzzDecodeCheckpoint(f *testing.F) {
	seeds := []*Checkpoint{
		{Session: 1, Module: "matmul"},
		{Session: 3, Module: "stencil", SchedClass: SchedClassRealtime, SchedWeight: 4},
		{
			Session:        7,
			Module:         "fft",
			CurDevice:      1,
			SchedClass:     SchedClassBatch,
			SchedWeight:    1,
			LastBatchSeq:   42,
			LastBatchCodes: []uint32{0, 0, 2},
			Devices: []DeviceCheckpoint{
				{
					Device: 0,
					Allocs: []AllocCheckpoint{
						{Addr: 256, Size: 4, Data: []byte{1, 2, 3, 4}},
						{Addr: 512, Size: 2, Data: []byte{9, 9}},
					},
					Timeline: TimelineCheckpoint{
						EngineDone: [2]uint64{10, 20},
						Streams:    []TimelineEntry{{ID: 0, Done: 5}, {ID: 1, Done: 7}},
						Events:     []TimelineEntry{{ID: 1, Done: 6}},
						NextStream: 2,
						NextEvent:  2,
					},
				},
				{Device: 1},
			},
		},
	}
	for _, s := range seeds {
		full := s.Encode(nil)
		f.Add(full)
		f.Add(full[:len(full)/2])
		if len(full) > 1 {
			f.Add(full[:len(full)-1])
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, raw []byte) {
		c, err := DecodeCheckpoint(raw)
		if err == nil && c == nil {
			t.Fatal("nil checkpoint with nil error")
		}
		if err != nil {
			return
		}
		if c.WireSize() != len(raw) {
			t.Fatalf("WireSize %d for %d-byte payload", c.WireSize(), len(raw))
		}
		if enc := c.Encode(nil); !bytes.Equal(enc, raw) {
			t.Fatalf("checkpoint re-encode mismatch:\n in  %x\n out %x", raw, enc)
		}
	})
}

// FuzzDecodeInitRequest covers the positional initialization message.
func FuzzDecodeInitRequest(f *testing.F) {
	f.Add((&InitRequest{Module: []byte("module")}).Encode(nil))
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		req, err := DecodeInitRequest(raw)
		if err == nil && req == nil {
			t.Fatal("nil request with nil error")
		}
		if err == nil {
			if !bytes.Equal(req.Encode(nil), raw) {
				t.Fatal("init re-encode mismatch")
			}
		}
	})
}
