package broker

import (
	"fmt"
	"sync"

	"rcuda/internal/protocol"
)

// Placer is the pool's placement core, factored out of Pool so the same
// code path decides placements whether the endpoints are live rcudad
// servers (Pool dials them and moves real frames) or the load generator's
// simulated daemons (internal/loadgen feeds gauges directly and never opens
// a socket). It owns the endpoint table, the live health/load view, the
// policy ranking, and the pool counters; everything wire-shaped — dialing,
// probing, session opening — stays in Pool.
//
// A Placer is safe for concurrent use. Endpoint indices are stable for the
// Placer's lifetime: retiring an endpoint excludes it from future picks but
// keeps its slot (and its accumulated stats) addressable, so sessions that
// recorded their placement index stay meaningful during elastic scale-down.
type Placer struct {
	// The zero value is unusable; NewPlacer initializes.
	state placerState
}

// placerState separates the lockable core so Pool (same package) can keep
// its probe-connection bookkeeping under the same mutex.
type placerState struct {
	mu     sync.Mutex
	eps    []*endpointState
	policy Policy
	rr     int
	stats  poolCounters
}

// NewPlacer returns an empty placer using the given policy. Endpoints are
// added with Add.
func NewPlacer(policy Policy) *Placer {
	p := &Placer{}
	p.state.policy = policy
	return p
}

// Add registers an endpoint and returns its stable index. The endpoint
// starts marked up, like New's. Only Name and Link matter to a pure
// placer; Dial may be nil when no real connections will be opened.
func (p *Placer) Add(ep Endpoint) int {
	s := &p.state
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.add(ep)
}

func (s *placerState) add(ep Endpoint) int {
	if ep.Name == "" {
		ep.Name = fmt.Sprintf("server-%d", len(s.eps))
	}
	s.eps = append(s.eps, &endpointState{ep: ep, up: true})
	return len(s.eps) - 1
}

// Retire permanently excludes the endpoint from future picks. Its index
// remains valid for stats and failure notes. Retiring twice is a no-op.
func (p *Placer) Retire(idx int) {
	s := &p.state
	s.mu.Lock()
	defer s.mu.Unlock()
	if idx >= 0 && idx < len(s.eps) && !s.eps[idx].retired {
		s.eps[idx].retired = true
		s.stats.retirements.Add(1)
	}
}

// Len returns the total endpoint count, including retired slots.
func (p *Placer) Len() int {
	s := &p.state
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.eps)
}

// ActiveLen returns the number of non-retired endpoints.
func (p *Placer) ActiveLen() int {
	s := &p.state
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, st := range s.eps {
		if !st.retired {
			n++
		}
	}
	return n
}

// Name returns the endpoint's name.
func (p *Placer) Name(idx int) string {
	s := &p.state
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eps[idx].ep.Name
}

// endpoint returns a copy of the endpoint record at idx, false when idx is
// out of range.
func (p *Placer) endpoint(idx int) (Endpoint, bool) {
	s := &p.state
	s.mu.Lock()
	defer s.mu.Unlock()
	if idx < 0 || idx >= len(s.eps) {
		return Endpoint{}, false
	}
	return s.eps[idx].ep, true
}

// failoverCandidates lists the non-retired endpoints a dead endpoint's
// sessions could resume on, marked-up ones first, excluding the dead one.
func (p *Placer) failoverCandidates(exclude int) []int {
	s := &p.state
	s.mu.Lock()
	defer s.mu.Unlock()
	var up, down []int
	for i, st := range s.eps {
		if i == exclude || st.retired {
			continue
		}
		if st.up {
			up = append(up, i)
		} else {
			down = append(down, i)
		}
	}
	return append(up, down...)
}

// Pick selects the next endpoint for a session under the policy,
// considering non-retired endpoints not in exclude. Marked-up endpoints
// are preferred; if every candidate is marked down they are considered
// anyway — a markdown is advisory and the alternative is refusing outright
// on possibly stale probe data.
func (p *Placer) Pick(spec JobSpec, exclude map[int]bool) (int, bool) {
	s := &p.state
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pick(spec, exclude)
}

func (s *placerState) pick(spec JobSpec, exclude map[int]bool) (int, bool) {
	candidate := func(i int, wantUp bool) bool {
		return !exclude[i] && !s.eps[i].retired && s.eps[i].up == wantUp
	}
	for _, wantUp := range []bool{true, false} {
		if idx, ok := s.pickAmong(spec, func(i int) bool { return candidate(i, wantUp) }); ok {
			return idx, true
		}
	}
	return 0, false
}

// NotePlaced records a successful placement on the endpoint: the placement
// counter increments and the endpoint's placed-since-probe guard grows so a
// burst of placements between probes does not stampede the currently
// least-loaded server.
func (p *Placer) NotePlaced(idx int) {
	s := &p.state
	s.mu.Lock()
	s.eps[idx].placed++
	s.mu.Unlock()
	s.stats.placements.Add(1)
}

// NoteSpill counts a placement that moved to the next-best endpoint after
// an admission refusal.
func (p *Placer) NoteSpill() { p.state.stats.spills.Add(1) }

// NoteFailover counts a job replayed on another endpoint after its session
// was lost mid-run.
func (p *Placer) NoteFailover() { p.state.stats.failovers.Add(1) }

// NoteMigration records a completed live migration onto the endpoint at
// destIdx: the migration counters grow and the destination's
// placed-since-probe guard rises so a burst of migrations cannot stampede
// the currently least-loaded server.
func (p *Placer) NoteMigration(destIdx int, bytes int64) {
	s := &p.state
	s.mu.Lock()
	if destIdx >= 0 && destIdx < len(s.eps) {
		s.eps[destIdx].placed++
	}
	s.mu.Unlock()
	s.stats.migrations.Add(1)
	s.stats.migrationBytes.Add(bytes)
}

// NoteMigrationFailure counts a live migration that failed; the session
// stays intact on its source.
func (p *Placer) NoteMigrationFailure() { p.state.stats.migrationFailures.Add(1) }

// NoteRestoreFailover counts a route redial that failed over to a peer
// endpoint after the pinned one became unreachable — the path by which a
// session resumes from a migrated or standby-checkpoint copy instead of
// being replayed.
func (p *Placer) NoteRestoreFailover() { p.state.stats.restoreFromCheckpoint.Add(1) }

// NoteFailure marks an endpoint down after a placement or session failure.
func (p *Placer) NoteFailure(idx int, err error) {
	s := &p.state
	s.mu.Lock()
	defer s.mu.Unlock()
	s.noteFailure(idx, err)
}

func (s *placerState) noteFailure(idx int, err error) {
	st := s.eps[idx]
	st.lastErr = err
	if st.up {
		st.up = false
		s.stats.markdowns.Add(1)
	}
}

// NoteProbe records one health-probe outcome: a successful probe replaces
// the endpoint's load gauges, resets the placed-since-probe guard, and
// marks the endpoint up; a failed probe marks it down. Markdown/markup
// transitions accumulate in the flap counters.
func (p *Placer) NoteProbe(idx int, load *protocol.StatsReply, err error) {
	s := &p.state
	s.mu.Lock()
	defer s.mu.Unlock()
	s.noteProbe(idx, load, err)
}

func (s *placerState) noteProbe(idx int, load *protocol.StatsReply, err error) {
	s.stats.probes.Add(1)
	st := s.eps[idx]
	if err != nil {
		s.stats.probeFailures.Add(1)
		s.noteFailure(idx, err)
		return
	}
	st.load = load
	st.placed = 0
	st.lastErr = nil
	if !st.up {
		st.up = true
		s.stats.markups.Add(1)
	}
}

// Stats returns a snapshot of the placement and health counters.
func (p *Placer) Stats() PoolStats {
	c := &p.state.stats
	return PoolStats{
		Placements:    c.placements.Load(),
		Spills:        c.spills.Load(),
		Failovers:     c.failovers.Load(),
		Probes:        c.probes.Load(),
		ProbeFailures: c.probeFailures.Load(),
		Markdowns:     c.markdowns.Load(),
		Markups:       c.markups.Load(),
		Retirements:   c.retirements.Load(),

		Migrations:            c.migrations.Load(),
		MigrationBytes:        c.migrationBytes.Load(),
		MigrationFailures:     c.migrationFailures.Load(),
		RestoreFromCheckpoint: c.restoreFromCheckpoint.Load(),
	}
}

// Endpoints reports every endpoint's health and last-probed load, in
// registration order (retired slots included).
func (p *Placer) Endpoints() []EndpointStatus {
	s := &p.state
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]EndpointStatus, 0, len(s.eps))
	for _, st := range s.eps {
		es := EndpointStatus{
			Name:             st.ep.Name,
			Up:               st.up,
			Retired:          st.retired,
			Probed:           st.load != nil,
			PlacedSinceProbe: st.placed,
		}
		if st.lastErr != nil {
			es.LastErr = st.lastErr.Error()
		}
		if st.load != nil {
			es.SessionsLive = st.load.SessionsLive
			es.SessionsParked = st.load.SessionsParked
			es.Devices = len(st.load.Devices)
			for _, d := range st.load.Devices {
				es.BytesInUse += d.BytesInUse
				es.BusyNanos += d.BusyNanos
			}
		}
		out = append(out, es)
	}
	return out
}
