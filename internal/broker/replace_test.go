package broker

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"testing"

	"rcuda/internal/calib"
	"rcuda/internal/cudart"
	"rcuda/internal/gpu"
	"rcuda/internal/kernels"
	"rcuda/internal/rcuda"
	"rcuda/internal/transport"
	"rcuda/internal/vclock"
)

// TestChaosFailoverToDifferentDeviceShape pins the cache-coherence property
// the broker relies on: a batching+caching session that fails over to a
// daemon with a differently shaped GPU must see the NEW device's
// properties, never the dead daemon's cached ones. The pool replays the job
// on a fresh client, so the cache is empty by construction — this test
// would catch any future change that carries client state across a
// re-placement.
func TestChaosFailoverToDifferentDeviceShape(t *testing.T) {
	shapes := []gpu.Config{
		{Name: "Tesla C1060 (shape A)", MemoryBytes: 4 << 30},
		{Name: "Tesla M2050 (shape B)", MemoryBytes: 3 << 30},
	}
	type server struct {
		srv *rcuda.Server
		ln  net.Listener
	}
	servers := make([]*server, len(shapes))
	eps := make([]Endpoint, len(shapes))
	for i, cfg := range shapes {
		cfg.Clock = vclock.NewWall()
		srv := rcuda.NewServer(gpu.New(cfg))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = srv.Serve(ln) }()
		addr := ln.Addr().String()
		servers[i] = &server{srv: srv, ln: ln}
		eps[i] = Endpoint{
			Name: fmt.Sprintf("s%d", i),
			Dial: func() (transport.Conn, error) { return transport.DialTCP(addr) },
		}
	}
	defer func() {
		for _, s := range servers {
			_ = s.srv.Close()
		}
	}()

	pool, err := New(eps, WithPolicy(RoundRobin),
		WithClientOptions(rcuda.WithBatching(0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	job := chaosJob{calib.MM, 32, 23}
	golden := goldenBytes(t, job)
	mod, err := kernels.ModuleFor(job.cs)
	if err != nil {
		t.Fatal(err)
	}
	img, err := mod.Binary()
	if err != nil {
		t.Fatal(err)
	}

	var attempts int
	propsSeen := make([]gpu.Properties, 0, 2)
	var result []byte
	err = pool.Run(img, JobSpec{CS: job.cs, Size: job.size}, func(rt cudart.Runtime) error {
		attempts++
		sess := rt.(*Session)
		// The serving-loop poll: fills the per-session cache, and a second
		// poll must be answered locally.
		props, err := sess.DeviceProperties()
		if err != nil {
			return err
		}
		propsSeen = append(propsSeen, props)
		again, err := sess.DeviceProperties()
		if err != nil {
			return err
		}
		if again != props {
			return fmt.Errorf("repeated poll drifted: %+v vs %+v", again, props)
		}
		if attempts == 1 {
			// First placement: round-robin starts on s0. Kill it under the
			// live session so the next exchange reports session loss and
			// the pool re-places the job on the other daemon.
			if sess.Endpoint != "s0" {
				return fmt.Errorf("first placement on %s, want s0", sess.Endpoint)
			}
			_ = servers[0].ln.Close()
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_ = servers[0].srv.Drain(ctx)
		}
		out, err := job.run(rt)
		if err != nil {
			return err
		}
		result = out
		return nil
	})
	if err != nil {
		t.Fatalf("job did not survive the failover: %v", err)
	}

	if attempts != 2 {
		t.Fatalf("job ran %d times, want 2 (original + one failover replay)", attempts)
	}
	if got := pool.Stats().Failovers; got != 1 {
		t.Fatalf("pool counted %d failovers, want 1", got)
	}
	if !bytes.Equal(result, golden) {
		t.Fatal("replayed result differs from the local run")
	}
	if propsSeen[0].Name != shapes[0].Name || propsSeen[0].MemoryBytes != shapes[0].MemoryBytes {
		t.Fatalf("first attempt saw %+v, want shape A", propsSeen[0])
	}
	// The decisive check: after re-placement the session reports shape B.
	// Serving shape A here would mean cached properties outlived the daemon
	// that produced them.
	if propsSeen[1].Name != shapes[1].Name || propsSeen[1].MemoryBytes != shapes[1].MemoryBytes {
		t.Fatalf("after failover the session saw %+v, want shape B (%s)", propsSeen[1], shapes[1].Name)
	}
}
