package broker

import (
	"fmt"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/cluster"
	"rcuda/internal/gpu"
	"rcuda/internal/kernels"
	"rcuda/internal/netsim"
	"rcuda/internal/rcuda"
	"rcuda/internal/transport"
	"rcuda/internal/vclock"
	"rcuda/internal/workload"
)

// SimJob is one job of the live-vs-predicted makespan experiment.
type SimJob struct {
	ID   int
	CS   calib.CaseStudy
	Size int
}

// LiveResult compares a live pool schedule with the cluster simulator's
// list-scheduling prediction of the same workload.
type LiveResult struct {
	// Makespan is the live schedule's span: the latest per-server clock
	// after every job finished.
	Makespan time.Duration
	// Predicted is cluster.Simulate's makespan for the same jobs, servers,
	// and policy.
	Predicted time.Duration
	// PerServer is each server's final clock reading.
	PerServer []time.Duration
	// Placements maps job index (in submission order) to server index.
	Placements []int
	// Stats are the pool's counters after the run.
	Stats PoolStats
}

// Delta is the live makespan's relative deviation from the prediction.
func (r LiveResult) Delta() float64 {
	if r.Predicted == 0 {
		return 0
	}
	return float64(r.Makespan-r.Predicted) / float64(r.Predicted)
}

// clusterPolicy maps a broker policy to the cluster simulator's equivalent.
// NetworkAware degenerates to least-loaded when every endpoint shares one
// link, which is the experiment's configuration.
func clusterPolicy(p Policy) cluster.Policy {
	if p == RoundRobin {
		return cluster.RoundRobin
	}
	return cluster.LeastLoaded
}

// SimulateLive runs the jobs through a live pool of nServers in-process
// rcudad servers — real protocol, real (simulated) devices, real data with
// CPU-oracle verification — each server on its own simulated clock, and
// compares the resulting makespan against cluster.Simulate's prediction.
//
// The correspondence with the offline model:
//
//   - Each server's Sim clock plays the role of the simulator's free[g].
//     Network, PCIe, and kernel time accrue on it through the transport
//     pipe and the device; the harness charges the management overhead,
//     and sleeps the clock to the job's ready time (arrival + data
//     generation + marshaling) before the session starts, mirroring
//     start = max(Ready, free[g]).
//   - Jobs are submitted sequentially in ready order with a probe round
//     before each placement, so the policy sees up-to-date gauges —
//     exactly the information the list scheduler has.
//   - Probe connections run on throwaway clocks (Endpoint.ProbeDial), so
//     monitoring does not perturb the timeline being measured.
//
// The live makespan and the prediction then differ only where the wire
// protocol differs from the analytic network model (real framing and
// per-message sizes versus the calibrated per-size transfer estimate).
func SimulateLive(link *netsim.Link, nServers int, jobs []SimJob, policy Policy) (LiveResult, error) {
	if nServers < 1 {
		return LiveResult{}, fmt.Errorf("broker: need at least one server, got %d", nServers)
	}

	// Offline prediction of the same workload.
	cjobs := make([]cluster.Job, len(jobs))
	for i, j := range jobs {
		cjobs[i] = cluster.Job{ID: j.ID, CS: j.CS, Size: j.Size}
	}
	pred, err := cluster.Simulate(cluster.Config{
		Nodes:   nServers,
		GPUs:    nServers,
		Network: link,
		Policy:  clusterPolicy(policy),
	}, cjobs)
	if err != nil {
		return LiveResult{}, err
	}

	// Live pool over in-process servers, one Sim clock per server.
	clocks := make([]*vclock.Sim, nServers)
	servers := make([]*rcuda.Server, nServers)
	eps := make([]Endpoint, nServers)
	for i := range clocks {
		clk := vclock.NewSim()
		srv := rcuda.NewServer(gpu.New(gpu.Config{Clock: clk}))
		clocks[i], servers[i] = clk, srv
		eps[i] = Endpoint{
			Name: fmt.Sprintf("sim-%d", i),
			Link: link,
			Dial: func() (transport.Conn, error) {
				cliEnd, srvEnd := transport.Pipe(link, clk, nil)
				go func() {
					_ = srv.ServeConn(srvEnd)
					_ = srvEnd.Close()
				}()
				return cliEnd, nil
			},
			ProbeDial: func() (transport.Conn, error) {
				// Out-of-band monitoring: probe wire time lands on a
				// throwaway clock, not the server's timeline.
				cliEnd, srvEnd := transport.Pipe(link, vclock.NewSim(), nil)
				go func() {
					_ = srv.ServeConn(srvEnd)
					_ = srvEnd.Close()
				}()
				return cliEnd, nil
			},
		}
	}
	pool, err := New(eps, WithPolicy(policy))
	if err != nil {
		return LiveResult{}, err
	}
	defer pool.Close()

	res := LiveResult{Predicted: pred.Makespan, Placements: make([]int, 0, len(jobs))}

	// waitDetached blocks until the server's session gauge has drained: the
	// handler decrements it after the connection closes, asynchronously to
	// the client's Close, and a probe racing that decrement would feed the
	// next placement a stale gauge and make the schedule nondeterministic.
	waitDetached := func(idx int) {
		for {
			pool.Refresh()
			if pool.Endpoints()[idx].SessionsLive == 0 {
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	// pred.Jobs is the schedule in ready order with Ready filled in.
	for _, cj := range pred.Jobs {
		mod, err := kernels.ModuleFor(cj.CS)
		if err != nil {
			return LiveResult{}, err
		}
		img, err := mod.Binary()
		if err != nil {
			return LiveResult{}, err
		}
		pool.Refresh()
		sess, err := pool.Open(img, JobSpec{CS: cj.CS, Size: cj.Size})
		if err != nil {
			return LiveResult{}, fmt.Errorf("broker: placing job %d: %w", cj.ID, err)
		}
		clk := clocks[sess.idx]
		if now := clk.Now(); now < cj.Ready {
			clk.Sleep(cj.Ready - now)
		}
		verified, err := workload.ExecuteFunctional(cj.CS, cj.Size, sess, int64(cj.ID)+1)
		if err == nil && !verified {
			err = fmt.Errorf("broker: job %d failed verification", cj.ID)
		}
		if err != nil {
			_ = sess.Close()
			return LiveResult{}, err
		}
		clk.Sleep(calib.Mgmt)
		if err := sess.Close(); err != nil {
			return LiveResult{}, err
		}
		waitDetached(sess.idx)
		res.Placements = append(res.Placements, sess.idx)
	}

	for _, clk := range clocks {
		d := clk.Now()
		res.PerServer = append(res.PerServer, d)
		if d > res.Makespan {
			res.Makespan = d
		}
	}
	res.Stats = pool.Stats()
	// Close the pool first: its persistent probe connections would otherwise
	// hold each server's drain open for the full close grace.
	_ = pool.Close()
	for _, srv := range servers {
		_ = srv.Close()
	}
	return res, nil
}
