package broker

import "sync/atomic"

// PoolStats are the pool's cumulative placement and health counters.
type PoolStats struct {
	// Placements counts sessions successfully opened through the pool.
	Placements int64
	// Spills counts placements that moved to the next-best endpoint
	// because the preferred server refused admission (ErrServerBusy).
	Spills int64
	// Failovers counts jobs replayed on another endpoint after their
	// session was lost mid-run.
	Failovers int64
	// Probes and ProbeFailures count health-probe exchanges.
	Probes        int64
	ProbeFailures int64
	// Markdowns and Markups count endpoint health transitions — one flap
	// is one markdown plus one markup.
	Markdowns int64
	Markups   int64
	// Retirements counts endpoints permanently removed from placement by
	// elastic scale-down.
	Retirements int64
	// Migrations counts sessions live-migrated between endpoints through
	// Pool.Migrate, and MigrationBytes the checkpoint bytes they streamed.
	Migrations     int64
	MigrationBytes int64
	// MigrationFailures counts migrations that failed; the session stays
	// intact on its source endpoint.
	MigrationFailures int64
	// RestoreFromCheckpoint counts route redials that failed over to a peer
	// endpoint, where a migrated or standby-checkpoint copy of the session
	// gets the chance to resume without a replay.
	RestoreFromCheckpoint int64
}

type poolCounters struct {
	placements    atomic.Int64
	spills        atomic.Int64
	failovers     atomic.Int64
	probes        atomic.Int64
	probeFailures atomic.Int64
	markdowns     atomic.Int64
	markups       atomic.Int64
	retirements   atomic.Int64

	migrations            atomic.Int64
	migrationBytes        atomic.Int64
	migrationFailures     atomic.Int64
	restoreFromCheckpoint atomic.Int64
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() PoolStats { return p.pl.Stats() }

// EndpointStatus is the pool's current view of one endpoint.
type EndpointStatus struct {
	Name string
	Up   bool
	// Retired marks an endpoint removed from placement by scale-down; its
	// slot is kept so indices stay stable.
	Retired bool
	// LastErr is the most recent probe or placement failure, empty when
	// healthy.
	LastErr string
	// Probed reports whether a probe has ever succeeded; the gauges below
	// are zero until it has.
	Probed         bool
	SessionsLive   uint32
	SessionsParked uint32
	Devices        int
	BytesInUse     uint64
	BusyNanos      uint64
	// PlacedSinceProbe counts sessions this pool placed since the gauges
	// were last refreshed.
	PlacedSinceProbe int64
}

// Endpoints reports every endpoint's health and last-probed load, in
// registration order.
func (p *Pool) Endpoints() []EndpointStatus { return p.pl.Endpoints() }
