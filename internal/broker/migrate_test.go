package broker

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/cudart"
	"rcuda/internal/gpu"
	"rcuda/internal/kernels"
	"rcuda/internal/netsim"
	"rcuda/internal/rcuda"
	"rcuda/internal/transport"
)

// mmPrepare stages the device half of an MM job without running it: the two
// seeded input matrices are uploaded and the result buffer is allocated. The
// returned pointers are live device state a migration must carry intact.
func mmPrepare(t *testing.T, rt cudart.Runtime, m int, seed int64) [3]cudart.DevicePtr {
	t.Helper()
	a, b := seededMatrices(m, seed)
	nbytes := uint32(4 * m * m)
	var ptrs [3]cudart.DevicePtr
	for i := range ptrs {
		p, err := rt.Malloc(nbytes)
		if err != nil {
			t.Fatal(err)
		}
		ptrs[i] = p
	}
	if err := rt.MemcpyToDevice(ptrs[0], cudart.Float32Bytes(a)); err != nil {
		t.Fatal(err)
	}
	if err := rt.MemcpyToDevice(ptrs[1], cudart.Float32Bytes(b)); err != nil {
		t.Fatal(err)
	}
	return ptrs
}

// mmFinish launches the multiply on the staged pointers and reads the result
// back — byte-compatible with runMMBytes for the golden comparison.
func mmFinish(t *testing.T, rt cudart.Runtime, m int, ptrs [3]cudart.DevicePtr) []byte {
	t.Helper()
	grid := cudart.Dim3{X: uint32(m / 16), Y: uint32(m / 16)}
	block := cudart.Dim3{X: 16, Y: 16}
	if err := rt.Launch(kernels.SgemmKernel, grid, block, 0,
		gpu.PackParams(uint32(ptrs[0]), uint32(ptrs[1]), uint32(ptrs[2]), uint32(m))); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 4*m*m)
	if err := rt.MemcpyToHost(out, ptrs[2]); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestPoolMigrateMovesSession live-migrates a pool-placed session between
// two daemons mid-job: inputs staged on the source, result computed on the
// destination, bit-exact against a local run, with nothing replayed.
func TestPoolMigrateMovesSession(t *testing.T) {
	link := netsim.IB40G()
	a := newSimServer()
	b := newSimServer(rcuda.WithSessionIDBase(1 << 20))
	pool, err := New([]Endpoint{a.endpoint("a", link), b.endpoint("b", link)})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const m, seed = 32, 41
	sess, err := pool.Open(moduleImage(t, calib.MM), JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Endpoint != "a" {
		t.Fatalf("session placed on %q, want the first endpoint", sess.Endpoint)
	}
	ptrs := mmPrepare(t, sess, m, seed)

	if err := pool.Migrate(sess, a.srv); err != nil {
		t.Fatal(err)
	}
	if sess.Endpoint != "b" || sess.idx != 1 || sess.route.current() != 1 {
		t.Fatalf("after migrate: endpoint %q idx %d route %d", sess.Endpoint, sess.idx, sess.route.current())
	}
	// The quiesce closed the session connection; lead with an idempotent op
	// so the retry machinery redials through the re-pointed route and
	// reattaches at the destination before the non-idempotent launch.
	if err := sess.DeviceSynchronize(); err != nil {
		t.Fatal(err)
	}
	out := mmFinish(t, sess, m, ptrs)
	if !bytes.Equal(out, goldenBytes(t, chaosJob{calib.MM, m, seed})) {
		t.Fatal("migrated result differs from the local run")
	}

	if ids := a.srv.DurableSessions(); len(ids) != 0 {
		t.Fatalf("source still holds sessions %v after migration", ids)
	}
	if ids := b.srv.DurableSessions(); len(ids) != 1 {
		t.Fatalf("destination holds %d sessions, want 1", len(ids))
	}
	if cs := sess.Stats(); cs.Reconnects != 1 {
		t.Fatalf("client stats = %+v, want exactly one reconnect", cs)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	ps := pool.Stats()
	if ps.Migrations != 1 || ps.MigrationBytes <= 0 || ps.MigrationFailures != 0 {
		t.Fatalf("pool migration stats = %+v", ps)
	}
	// The move itself: zero job replays, zero redial failovers.
	if ps.Failovers != 0 || ps.RestoreFromCheckpoint != 0 {
		t.Fatalf("migration was counted as a failover: %+v", ps)
	}
	if ss := a.srv.Stats(); ss.Migrations != 1 || ss.MigrationBytes != ps.MigrationBytes {
		t.Fatalf("source daemon stats = %+v", ss)
	}
	if ds := b.srv.Stats(); ds.RestoreFromCheckpoint != 1 || ds.Reattaches != 1 {
		t.Fatalf("destination daemon stats = %+v", ds)
	}
}

// TestPoolMigrateUnderLoad keeps a client hammering reads while its session
// is migrated out from under it. Every read must return the right bytes —
// served before the quiesce, refused-busy during it, healed at the
// destination after — and the pool must count zero failovers: nothing about
// the move replays work.
func TestPoolMigrateUnderLoad(t *testing.T) {
	link := netsim.IB40G()
	a := newSimServer()
	b := newSimServer(rcuda.WithSessionIDBase(1 << 20))
	pool, err := New(
		[]Endpoint{a.endpoint("a", link), b.endpoint("b", link)},
		// The default retry budget is sized for one redial, not for riding
		// out a whole migration window; give the client room to keep
		// retrying until the route is re-pointed.
		WithClientOptions(rcuda.WithRetry(20, 200*time.Microsecond)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const m, seed = 32, 43
	sess, err := pool.Open(moduleImage(t, calib.MM), JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	ptrs := mmPrepare(t, sess, m, seed)
	aMat, _ := seededMatrices(m, seed)
	aRaw := cudart.Float32Bytes(aMat)

	// Only this goroutine touches the client; Migrate drives the daemons
	// and the placer, never the session's connection.
	done := make(chan struct{})
	stopped := make(chan struct{})
	var wg sync.WaitGroup
	var readbacks atomic.Int64
	var loopErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stopped)
		buf := make([]byte, len(aRaw))
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := sess.MemcpyToHost(buf, ptrs[0]); err != nil {
				loopErr = err
				return
			}
			if !bytes.Equal(buf, aRaw) {
				loopErr = fmt.Errorf("readback %d returned wrong bytes", readbacks.Load())
				return
			}
			readbacks.Add(1)
		}
	}()
	waitReads := func(past int64, when string) {
		deadline := time.Now().Add(5 * time.Second)
		for readbacks.Load() <= past {
			select {
			case <-stopped:
				wg.Wait()
				t.Fatalf("readback loop died %s: %v", when, loopErr)
			default:
			}
			if time.Now().After(deadline) {
				t.Fatalf("no readback completed %s", when)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	// At least one read must be served by the source before the move and
	// one by the destination after it, so the loop provably brackets the
	// migration window.
	waitReads(0, "before the migration")

	if err := pool.Migrate(sess, a.srv); err != nil {
		t.Fatal(err)
	}
	waitReads(readbacks.Load(), "after the migration")
	close(done)
	wg.Wait()
	if loopErr != nil {
		t.Fatalf("concurrent readback failed: %v", loopErr)
	}

	out := mmFinish(t, sess, m, ptrs)
	if !bytes.Equal(out, goldenBytes(t, chaosJob{calib.MM, m, seed})) {
		t.Fatal("result after migration under load differs from the local run")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	ps := pool.Stats()
	if ps.Migrations != 1 || ps.MigrationFailures != 0 {
		t.Fatalf("pool migration stats = %+v", ps)
	}
	if ps.Failovers != 0 {
		t.Fatalf("live ops during migration were replayed as failovers: %+v", ps)
	}
}

// TestPoolRouteFailoverToStandby kills a daemon that has been streaming
// standby checkpoints of its parked sessions to a peer: the client's next
// redial fails over through the route, reattaches to the restored copy on
// the peer, and reads its device state back intact — a restore, not a
// replay.
func TestPoolRouteFailoverToStandby(t *testing.T) {
	link := netsim.IB40G()
	b := newSimServer(rcuda.WithSessionIDBase(1 << 20))
	epB := b.endpoint("b", link)
	a := newSimServer(rcuda.WithStandbyPeer(epB.Dial, 2*time.Millisecond))
	epA := a.endpoint("a", link)

	// Record the connections endpoint a hands out, so the test can cut the
	// session's wire and force the server side to park it.
	var connMu sync.Mutex
	var conns []transport.Conn
	innerDial := epA.Dial
	epA.Dial = func() (transport.Conn, error) {
		conn, err := innerDial()
		if err != nil {
			return nil, err
		}
		connMu.Lock()
		conns = append(conns, conn)
		connMu.Unlock()
		return conn, nil
	}

	pool, err := New([]Endpoint{epA, epB})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const m, seed = 32, 47
	sess, err := pool.Open(moduleImage(t, calib.MM), JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Endpoint != "a" {
		t.Fatalf("session placed on %q, want the standby-enabled endpoint", sess.Endpoint)
	}
	ptrs := mmPrepare(t, sess, m, seed)
	golden := goldenBytes(t, chaosJob{calib.MM, m, seed})
	if out := mmFinish(t, sess, m, ptrs); !bytes.Equal(out, golden) {
		t.Fatal("pre-failover result differs from the local run")
	}

	// Cut the wire: the server sees the loss and parks the session, making
	// it eligible for the next standby sweep. The client does not find out
	// until its next operation.
	connMu.Lock()
	for _, conn := range conns {
		_ = conn.Close()
	}
	connMu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for b.srv.Stats().RestoreFromCheckpoint == 0 {
		if time.Now().After(deadline) {
			t.Fatal("standby sweep never copied the parked session to the peer")
		}
		time.Sleep(time.Millisecond)
	}

	// The daemon dies: dials refuse and the server goes away entirely.
	a.setDead(true)
	_ = a.srv.Close()

	// The next read hits the dead connection, redials, fails over to the
	// peer, and resumes from the restored copy with the result intact.
	out := make([]byte, 4*m*m)
	if err := sess.MemcpyToHost(out, ptrs[2]); err != nil {
		t.Fatalf("readback after failover: %v", err)
	}
	if !bytes.Equal(out, golden) {
		t.Fatal("restored session returned different result bytes")
	}
	if sess.route.current() != 1 {
		t.Fatalf("route still points at endpoint %d", sess.route.current())
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	ps := pool.Stats()
	if ps.RestoreFromCheckpoint != 1 {
		t.Fatalf("pool stats = %+v, want exactly one restore failover", ps)
	}
	// The session resumed from the checkpoint: no job was replayed and no
	// live migration ran.
	if ps.Failovers != 0 || ps.Migrations != 0 {
		t.Fatalf("restore was double-counted: %+v", ps)
	}
	if ds := b.srv.Stats(); ds.Reattaches != 1 || ds.RestoreFromCheckpoint == 0 {
		t.Fatalf("peer daemon stats = %+v", ds)
	}
}
