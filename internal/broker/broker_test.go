package broker

import (
	"errors"
	"sync"
	"testing"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/gpu"
	"rcuda/internal/kernels"
	"rcuda/internal/netsim"
	"rcuda/internal/rcuda"
	"rcuda/internal/sched"
	"rcuda/internal/transport"
	"rcuda/internal/vclock"
)

// moduleImage returns the wire image of a case study's GPU module.
func moduleImage(t *testing.T, cs calib.CaseStudy) []byte {
	t.Helper()
	mod, err := kernels.ModuleFor(cs)
	if err != nil {
		t.Fatal(err)
	}
	img, err := mod.Binary()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// simServer is an in-process rcudad on its own Sim clock.
type simServer struct {
	srv *rcuda.Server
	clk *vclock.Sim
	mu  sync.Mutex
	// dead makes Dial refuse, emulating an unreachable server.
	dead bool
}

func newSimServer(opts ...rcuda.ServerOption) *simServer {
	clk := vclock.NewSim()
	return &simServer{
		srv: rcuda.NewServer(gpu.New(gpu.Config{Clock: clk}), opts...),
		clk: clk,
	}
}

func (s *simServer) endpoint(name string, link *netsim.Link) Endpoint {
	dial := func() (transport.Conn, error) {
		s.mu.Lock()
		dead := s.dead
		s.mu.Unlock()
		if dead {
			return nil, errors.New("connection refused")
		}
		cliEnd, srvEnd := transport.Pipe(link, s.clk, nil)
		go func() {
			_ = s.srv.ServeConn(srvEnd)
			_ = srvEnd.Close()
		}()
		return cliEnd, nil
	}
	return Endpoint{Name: name, Dial: dial, Link: link}
}

func (s *simServer) setDead(dead bool) {
	s.mu.Lock()
	s.dead = dead
	s.mu.Unlock()
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{LeastLoaded, RoundRobin, NetworkAware, ClassAware} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("best-effort"); err == nil {
		t.Fatal("ParsePolicy accepted an unknown name")
	}
}

func TestPoolRoundRobinCycles(t *testing.T) {
	link := netsim.IB40G()
	ss := []*simServer{newSimServer(), newSimServer(), newSimServer()}
	eps := make([]Endpoint, len(ss))
	for i, s := range ss {
		eps[i] = s.endpoint("", link)
	}
	p, err := New(eps, WithPolicy(RoundRobin))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	img := moduleImage(t, calib.MM)
	var got []int
	for i := 0; i < 6; i++ {
		sess, err := p.Open(img, JobSpec{})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, sess.idx)
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round-robin placements = %v, want %v", got, want)
		}
	}
	if s := p.Stats(); s.Placements != 6 || s.Spills != 0 || s.Failovers != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestPoolClassAwareFollowsClassBlocks drives the class-aware policy end
// to end: two scheduler-enabled daemons, one crowded with realtime
// tenants, and after a probe round a new realtime job lands on the calm
// one — with its class declared in the hello, so the destination daemon's
// realtime gauge counts it.
func TestPoolClassAwareFollowsClassBlocks(t *testing.T) {
	link := netsim.IB40G()
	crowded := newSimServer(rcuda.WithScheduler(sched.WFQ))
	calm := newSimServer(rcuda.WithScheduler(sched.WFQ))
	p, err := New([]Endpoint{
		crowded.endpoint("crowded", link),
		calm.endpoint("calm", link),
	}, WithPolicy(ClassAware))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	img := moduleImage(t, calib.MM)

	// Two realtime tenants occupy the first server, dialed directly so the
	// pool's stampede guard cannot spread them.
	crowdedEp := crowded.endpoint("crowded", link)
	for i := 0; i < 2; i++ {
		conn, err := crowdedEp.Dial()
		if err != nil {
			t.Fatal(err)
		}
		hog, err := rcuda.Open(conn, img, rcuda.WithSchedClass(rcuda.SchedRealtime, 2))
		if err != nil {
			t.Fatal(err)
		}
		defer hog.Close()
	}
	if got := crowded.srv.StatsSnapshot().Classes[sched.Realtime].Sessions; got != 2 {
		t.Fatalf("crowded daemon counts %d realtime sessions, want 2", got)
	}

	p.Refresh()
	sess, err := p.Open(img, JobSpec{Class: rcuda.SchedRealtime, Weight: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.Endpoint != "calm" {
		t.Fatalf("realtime job placed on %q, want the calm daemon", sess.Endpoint)
	}
	if got := calm.srv.StatsSnapshot().Classes[sched.Realtime].Sessions; got != 1 {
		t.Fatalf("calm daemon counts %d realtime sessions, want 1", got)
	}
}

// TestPoolLeastLoadedFollowsProbes loads one server with a live session and
// checks that after a probe round the pool avoids it.
func TestPoolLeastLoadedFollowsProbes(t *testing.T) {
	link := netsim.IB40G()
	busy, idle := newSimServer(), newSimServer()
	p, err := New([]Endpoint{
		busy.endpoint("busy", link),
		idle.endpoint("idle", link),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	img := moduleImage(t, calib.MM)

	// Occupy the first server so its SessionsLive gauge reads 1.
	hog, err := p.Open(img, JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if hog.Endpoint != "busy" {
		t.Fatalf("first placement on %q, want the first endpoint", hog.Endpoint)
	}
	p.Refresh()
	st := p.Endpoints()
	if !st[0].Probed || st[0].SessionsLive != 1 || st[1].SessionsLive != 0 {
		t.Fatalf("endpoint status after probe = %+v", st)
	}

	sess, err := p.Open(img, JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Endpoint != "idle" {
		t.Fatalf("least-loaded placed on %q, want %q", sess.Endpoint, "idle")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := hog.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolPlacedSinceProbeGuardsStampede opens two sessions between probe
// rounds: the second must not pile onto the same endpoint just because the
// gauges are stale.
func TestPoolPlacedSinceProbeGuardsStampede(t *testing.T) {
	link := netsim.IB40G()
	a, b := newSimServer(), newSimServer()
	p, err := New([]Endpoint{a.endpoint("a", link), b.endpoint("b", link)})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Refresh()
	img := moduleImage(t, calib.MM)
	s1, err := p.Open(img, JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Open(img, JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Endpoint == s2.Endpoint {
		t.Fatalf("both sessions landed on %q with stale gauges", s1.Endpoint)
	}
	_ = s1.Close()
	_ = s2.Close()
}

// TestPoolSpillOnBusy fills a server's connection cap and checks the next
// placement spills to the other endpoint with the spill counted.
func TestPoolSpillOnBusy(t *testing.T) {
	link := netsim.IB40G()
	capped := newSimServer(rcuda.WithMaxConns(1))
	spare := newSimServer()
	cappedEp := capped.endpoint("capped", link)
	p, err := New([]Endpoint{
		cappedEp,
		spare.endpoint("spare", link),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	img := moduleImage(t, calib.MM)

	// Occupy the capped server from outside the pool, so the pool's own
	// gauges don't know — the way a second broker or a direct client would.
	hogConn, err := cappedEp.Dial()
	if err != nil {
		t.Fatal(err)
	}
	hog, err := rcuda.Open(hogConn, img)
	if err != nil {
		t.Fatal(err)
	}
	// The pool's gauges are all zero, so the policy prefers the capped
	// server — and must spill off its admission refusal.
	sess, err := p.Open(img, JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Endpoint != "spare" {
		t.Fatalf("spilled session on %q, want %q", sess.Endpoint, "spare")
	}
	s := p.Stats()
	if s.Spills != 1 || s.Placements != 1 {
		t.Fatalf("stats = %+v, want 1 spill and 1 placement", s)
	}
	// The spill was an admission refusal, not a failure: the endpoint
	// stays up.
	if st := p.Endpoints(); !st[0].Up {
		t.Fatalf("capped endpoint marked down by a spill: %+v", st[0])
	}
	_ = sess.Close()
	_ = hog.Close()
}

// TestPoolNetworkAware ranks endpoints by transfer-time estimates over
// their declared links.
func TestPoolNetworkAware(t *testing.T) {
	slow, fast := newSimServer(), newSimServer()
	p, err := New([]Endpoint{
		slow.endpoint("gige", netsim.GigaE()),
		fast.endpoint("ib", netsim.IB40G()),
	}, WithPolicy(NetworkAware))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	img := moduleImage(t, calib.MM)

	// A calibrated case study ranks by the perfmodel estimate.
	sess, err := p.Open(img, JobSpec{CS: calib.MM, Size: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Endpoint != "ib" {
		t.Fatalf("MM job placed on %q, want the InfiniBand endpoint", sess.Endpoint)
	}
	_ = sess.Close()

	// A raw byte volume falls back to link payload time.
	sess, err = p.Open(img, JobSpec{TransferBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Endpoint != "ib" {
		t.Fatalf("bulk job placed on %q, want the InfiniBand endpoint", sess.Endpoint)
	}
	_ = sess.Close()

	// No declared volume: falls back to load ranking, first endpoint wins
	// the tie.
	sess, err = p.Open(img, JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Endpoint != "gige" {
		t.Fatalf("unknown job placed on %q, want the first endpoint", sess.Endpoint)
	}
	_ = sess.Close()
}

// TestPoolProbeFlap kills and revives a server and checks the mark-down,
// mark-up, and flap accounting.
func TestPoolProbeFlap(t *testing.T) {
	link := netsim.IB40G()
	flappy := newSimServer(rcuda.WithCloseGrace(50 * time.Millisecond))
	steady := newSimServer()
	p, err := New([]Endpoint{
		flappy.endpoint("flappy", link),
		steady.endpoint("steady", link),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	img := moduleImage(t, calib.MM)

	p.Refresh()
	if s := p.Stats(); s.Probes != 2 || s.ProbeFailures != 0 {
		t.Fatalf("after healthy round: %+v", s)
	}

	flappy.setDead(true)
	// The persistent probe conn is still alive even though Dial refuses;
	// kill the server itself so the probe exchange fails too.
	_ = flappy.srv.Close()
	p.Refresh()
	st := p.Endpoints()
	if st[0].Up || !st[1].Up {
		t.Fatalf("after flap down: %+v", st)
	}
	if s := p.Stats(); s.Markdowns != 1 || s.ProbeFailures == 0 {
		t.Fatalf("after flap down: %+v", s)
	}

	// Placements keep working by avoiding the dead endpoint.
	sess, err := p.Open(img, JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Endpoint != "steady" {
		t.Fatalf("placement on %q while flappy is down", sess.Endpoint)
	}
	_ = sess.Close()

	// Revive: a fresh server behind the same endpoint marks back up.
	revived := newSimServer()
	flappy.mu.Lock()
	flappy.srv, flappy.clk, flappy.dead = revived.srv, revived.clk, false
	flappy.mu.Unlock()
	p.Refresh()
	if st := p.Endpoints(); !st[0].Up {
		t.Fatalf("after revival: %+v", st[0])
	}
	if s := p.Stats(); s.Markups != 1 {
		t.Fatalf("after revival: %+v", s)
	}
}

// TestPoolOpenAllDown reports ErrNoServers when every endpoint refuses.
func TestPoolOpenAllDown(t *testing.T) {
	link := netsim.IB40G()
	a, b := newSimServer(), newSimServer()
	a.setDead(true)
	b.setDead(true)
	p, err := New([]Endpoint{a.endpoint("a", link), b.endpoint("b", link)})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Open(moduleImage(t, calib.MM), JobSpec{}); !errors.Is(err, ErrNoServers) {
		t.Fatalf("Open with all endpoints dead = %v, want ErrNoServers", err)
	}
	if st := p.Endpoints(); st[0].Up || st[1].Up {
		t.Fatalf("dead endpoints still marked up: %+v", st)
	}
}
