// Package broker federates multiple rcudad servers behind a single client:
// a GPU pool. The paper's Figure 1 cluster has a few GPU-equipped nodes
// serving many clients; package cluster answers the sizing question with an
// offline list-scheduling model, and this package is the live counterpart —
// a client-side pool that registers N server endpoints, tracks their load
// through the StatsQuery protocol, places each session on the best server
// under a pluggable policy, and fails sessions over when a server refuses
// admission or dies mid-job.
//
// Sessions opened through the pool are plain rcuda clients: every policy
// decision happens at placement time, after which the application talks to
// its server directly with no broker on the data path.
//
// The placement decisions themselves live in Placer, which Pool wraps with
// real dialing and probing; Autoscaler closes the elasticity loop by
// spawning and retiring endpoints from observed occupancy. Both are reused
// sans sockets by internal/loadgen to drive 10^5–10^6 simulated sessions.
package broker

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/cudart"
	"rcuda/internal/netsim"
	"rcuda/internal/protocol"
	"rcuda/internal/rcuda"
	"rcuda/internal/transport"
)

// ErrNoServers reports that every registered endpoint was tried (or is
// excluded) and none could take the session.
var ErrNoServers = errors.New("broker: no server available")

// Endpoint describes one rcudad server the pool can place sessions on.
type Endpoint struct {
	// Name identifies the server in stats and errors.
	Name string
	// Dial opens a fresh session connection to the server.
	Dial func() (transport.Conn, error)
	// ProbeDial, when set, opens health-probe connections instead of Dial —
	// an out-of-band management network, or in the simulated experiments a
	// pipe on a throwaway clock so probe traffic does not perturb the
	// server's timeline. Nil falls back to Dial.
	ProbeDial func() (transport.Conn, error)
	// Link optionally characterizes the interconnect to this server; the
	// network-aware policy ranks endpoints by estimated transfer time on it.
	Link *netsim.Link
}

// endpointState is the placer's live view of one endpoint.
type endpointState struct {
	ep      Endpoint
	up      bool
	retired bool
	lastErr error
	// load is the last successful probe reply; nil before the first probe.
	load *protocol.StatsReply
	// placed counts sessions placed on the endpoint since the last probe,
	// so a burst of placements between probes does not stampede the
	// currently least-loaded server.
	placed int64
	// probeMu guards the persistent probe-connection slot (Pool only). It
	// is held only while checking the connection in or out of the slot —
	// never across the wire exchange itself, so one endpoint stalled on
	// the network cannot stall placements behind the placer mutex
	// (enforced by rcuda-vet's locknet analyzer).
	probeMu sync.Mutex
	// probeConn is the persistent health-probe connection.
	probeConn transport.Conn
	// probeStopped permanently shuts the probe slot: the endpoint was
	// retired or the pool closed, so returned connections are refused and
	// closed instead of parked.
	probeStopped bool
}

// checkoutProbeConn takes the endpoint's persistent probe connection out
// of its slot, dialing a fresh one when the slot is empty. The caller owns
// the returned connection until it calls returnProbeConn or closes it.
func (st *endpointState) checkoutProbeConn() (transport.Conn, error) {
	st.probeMu.Lock()
	conn := st.probeConn
	st.probeConn = nil
	st.probeMu.Unlock()
	if conn != nil {
		return conn, nil
	}
	dial := st.ep.ProbeDial
	if dial == nil {
		dial = st.ep.Dial
	}
	return dial()
}

// returnProbeConn parks a healthy connection back in the slot. The loser
// of a return race — or a return after the slot was stopped — closes its
// connection instead.
func (st *endpointState) returnProbeConn(conn transport.Conn) {
	st.probeMu.Lock()
	if !st.probeStopped && st.probeConn == nil {
		st.probeConn = conn
		conn = nil
	}
	st.probeMu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// closeProbeConn permanently shuts the endpoint's probe slot.
func (st *endpointState) closeProbeConn() {
	st.probeMu.Lock()
	st.probeStopped = true
	conn := st.probeConn
	st.probeConn = nil
	st.probeMu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// JobSpec declares what a session is going to do, as far as the placement
// policy cares: either a calibrated case study at a size, or a raw transfer
// volume. The zero value is a valid "unknown" spec.
type JobSpec struct {
	CS   calib.CaseStudy
	Size int
	// TransferBytes is the declared data volume for jobs that are not one
	// of the calibrated case studies; the network-aware policy falls back
	// to ranking by payload time for this many bytes.
	TransferBytes int64
	// Class and Weight are the session's scheduling parameters
	// (rcuda.SchedRealtime/SchedBatch/SchedBestEffort; zero means
	// unspecified). The class-aware policy ranks endpoints by headroom in
	// this class, and the pool declares both in the session's hello so a
	// scheduler-enabled daemon enforces them.
	Class  uint32
	Weight uint32
}

// Pool is a client-side GPU pool over a set of rcudad endpoints.
type Pool struct {
	pl *Placer

	clientOpts []rcuda.ClientOption

	probeStop chan struct{}
	probeDone chan struct{}
}

// Option configures New.
type Option func(*Pool)

// WithPolicy selects the placement policy; the default is LeastLoaded.
func WithPolicy(p Policy) Option {
	return func(pl *Pool) { pl.pl.state.policy = p }
}

// WithClientOptions appends options applied to every session the pool
// opens, after the pool's own retry and reconnect defaults — so they can
// override them.
func WithClientOptions(opts ...rcuda.ClientOption) Option {
	return func(pl *Pool) { pl.clientOpts = append(pl.clientOpts, opts...) }
}

// WithProbeInterval starts a background prober that refreshes every
// endpoint's load and health at the given period. Zero (the default) means
// no background probing; call Refresh explicitly.
func WithProbeInterval(d time.Duration) Option {
	return func(pl *Pool) {
		if d > 0 {
			pl.probeStop = make(chan struct{})
			pl.probeDone = make(chan struct{})
			go pl.probeLoop(d)
		}
	}
}

// New builds a pool over the endpoints. All endpoints start marked up;
// probes and placement failures adjust the marks from there.
func New(eps []Endpoint, opts ...Option) (*Pool, error) {
	if len(eps) == 0 {
		return nil, errors.New("broker: a pool needs at least one endpoint")
	}
	p := &Pool{pl: NewPlacer(LeastLoaded)}
	for i, ep := range eps {
		if ep.Dial == nil {
			return nil, fmt.Errorf("broker: endpoint %d (%q) has no Dial", i, ep.Name)
		}
		p.pl.Add(ep)
	}
	for _, o := range opts {
		o(p)
	}
	return p, nil
}

// AddEndpoint registers a new endpoint on a live pool — the elastic
// scale-up primitive — and returns its stable index.
func (p *Pool) AddEndpoint(ep Endpoint) (int, error) {
	if ep.Dial == nil {
		return 0, fmt.Errorf("broker: endpoint %q has no Dial", ep.Name)
	}
	return p.pl.Add(ep), nil
}

// RetireEndpoint excludes an endpoint from future placements and closes its
// probe connection — the elastic scale-down primitive. Sessions already
// placed there are unaffected; the caller is responsible for draining them
// (or relying on failover) before stopping the server itself.
func (p *Pool) RetireEndpoint(idx int) {
	s := &p.pl.state
	s.mu.Lock()
	if idx < 0 || idx >= len(s.eps) {
		s.mu.Unlock()
		return
	}
	st := s.eps[idx]
	s.mu.Unlock()
	p.pl.Retire(idx)
	st.closeProbeConn()
}

// Close stops the background prober and closes every probe connection.
// Sessions already opened through the pool are unaffected.
func (p *Pool) Close() error {
	if p.probeStop != nil {
		close(p.probeStop)
		<-p.probeDone
		p.probeStop = nil
	}
	s := &p.pl.state
	s.mu.Lock()
	eps := append([]*endpointState(nil), s.eps...)
	s.mu.Unlock()
	for _, st := range eps {
		st.closeProbeConn()
	}
	return nil
}

func (p *Pool) probeLoop(d time.Duration) {
	defer close(p.probeDone)
	t := time.NewTicker(d)
	defer t.Stop()
	for {
		select {
		case <-p.probeStop:
			return
		case <-t.C:
			p.Refresh()
		}
	}
}

// Refresh synchronously probes every non-retired endpoint once: it sends a
// StatsQuery on the endpoint's persistent probe connection (dialing one if
// needed), records the load reply, and marks the endpoint up. A failed
// probe marks it down and drops the connection so the next round redials.
// The placer mutex is never held across the wire exchange: the endpoint
// set is snapshotted first, each probe runs against the endpoint's own
// probe-connection slot, and the result is folded back under the lock — so
// one server stalled on the network cannot stall placements.
func (p *Pool) Refresh() {
	s := &p.pl.state
	type target struct {
		idx int
		st  *endpointState
	}
	s.mu.Lock()
	targets := make([]target, 0, len(s.eps))
	for idx, st := range s.eps {
		if !st.retired {
			targets = append(targets, target{idx, st})
		}
	}
	s.mu.Unlock()
	for _, t := range targets {
		reply, err := t.st.probe()
		s.mu.Lock()
		if !t.st.retired {
			s.noteProbe(t.idx, reply, err)
		}
		s.mu.Unlock()
	}
}

// probe performs the wire exchange for one probe. No pool or placer mutex
// is held: the persistent connection is checked out of its slot (dialing a
// fresh one when the slot is empty), used for the exchange, and returned
// on success; a failed probe closes it so the next round redials.
func (st *endpointState) probe() (*protocol.StatsReply, error) {
	conn, err := st.checkoutProbeConn()
	if err != nil {
		return nil, fmt.Errorf("broker: probe dial %s: %w", st.ep.Name, err)
	}
	fail := func(err error) (*protocol.StatsReply, error) {
		_ = conn.Close()
		return nil, fmt.Errorf("broker: probe %s: %w", st.ep.Name, err)
	}
	if err := conn.Send(&protocol.StatsQueryRequest{}); err != nil {
		return fail(err)
	}
	payload, err := conn.Recv()
	if err != nil {
		return fail(err)
	}
	reply, err := protocol.DecodeStatsReply(payload)
	if err != nil {
		return fail(err)
	}
	if cerr := cudart.Error(reply.Err).AsError(); cerr != nil {
		return fail(cerr)
	}
	st.returnProbeConn(conn)
	return reply, nil
}

// Session is a pool-placed rcuda session: a full cudart runtime plus where
// it landed.
type Session struct {
	*rcuda.Client
	// Endpoint names the server the session was placed on (updated when the
	// session is live-migrated).
	Endpoint string
	idx      int
	route    *route
}

// route is the mutable redial target behind a session's reconnect policy.
// The pool hands the client rt.dial instead of a fixed endpoint dialer, so
// placement can be re-pointed after the session is opened: a live migration
// repoints it explicitly, and a dead endpoint fails the redial over to a
// peer that may hold the session restored from a checkpoint.
type route struct {
	p   *Pool
	mu  sync.Mutex
	idx int
}

func (r *route) current() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.idx
}

func (r *route) repoint(idx int) {
	r.mu.Lock()
	r.idx = idx
	r.mu.Unlock()
}

// dial opens a reconnect connection to the session's current endpoint. When
// that endpoint is unreachable — its daemon may have died — the dial fails
// over to the other live endpoints and re-points the route at the first
// that answers: if the session was migrated there, or a standby checkpoint
// restored it, the reattach riding this connection resumes it with zero
// replay; otherwise the reattach is refused and the job-level failover
// replays as before. The route mutex is never held across a dial.
func (r *route) dial() (transport.Conn, error) {
	cur := r.current()
	ep, ok := r.p.pl.endpoint(cur)
	if !ok {
		return nil, fmt.Errorf("broker: route names endpoint %d of %d", cur, r.p.pl.Len())
	}
	conn, err := ep.Dial()
	if err == nil {
		return conn, nil
	}
	for _, idx := range r.p.pl.failoverCandidates(cur) {
		cand, ok := r.p.pl.endpoint(idx)
		if !ok {
			continue
		}
		conn, candErr := cand.Dial()
		if candErr != nil {
			continue
		}
		r.repoint(idx)
		r.p.pl.NoteRestoreFailover()
		return conn, nil
	}
	return nil, fmt.Errorf("broker: redial %s: %w", ep.Name, err)
}

// Open places a new session on the best endpoint under the pool's policy
// and returns it. A server that refuses admission (rcuda.ErrServerBusy)
// spills the session to the next-best endpoint; a server whose connection
// fails outright is marked down and likewise skipped. Open fails with
// ErrNoServers only after every endpoint was tried.
func (p *Pool) Open(module []byte, spec JobSpec) (*Session, error) {
	return p.open(module, spec, make(map[int]bool))
}

func (p *Pool) open(module []byte, spec JobSpec, exclude map[int]bool) (*Session, error) {
	var lastErr error
	for {
		idx, ok := p.pl.Pick(spec, exclude)
		if !ok {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last error: %v)", ErrNoServers, lastErr)
			}
			return nil, ErrNoServers
		}
		sess, err := p.tryOpen(idx, module, spec)
		if err == nil {
			return sess, nil
		}
		exclude[idx] = true
		lastErr = err
		if errors.Is(err, rcuda.ErrServerBusy) {
			// Admission refusal: the server is healthy, just full. Spill.
			p.pl.NoteSpill()
			continue
		}
		// Connection-level failure: mark the endpoint down until a probe
		// sees it again.
		p.pl.NoteFailure(idx, err)
	}
}

// tryOpen dials one endpoint and opens a durable session on it. The
// session reconnects through a route rather than a fixed dialer, so a
// later migration can re-point it.
func (p *Pool) tryOpen(idx int, module []byte, spec JobSpec) (*Session, error) {
	s := &p.pl.state
	s.mu.Lock()
	ep := s.eps[idx].ep
	s.mu.Unlock()
	conn, err := ep.Dial()
	if err != nil {
		return nil, fmt.Errorf("broker: dial %s: %w", ep.Name, err)
	}
	rt := &route{p: p, idx: idx}
	opts := []rcuda.ClientOption{
		rcuda.WithRetry(4, time.Millisecond),
		rcuda.WithReconnect(rt.dial),
	}
	if spec.Class != 0 || spec.Weight != 0 {
		opts = append(opts, rcuda.WithSchedClass(spec.Class, spec.Weight))
	}
	opts = append(opts, p.clientOpts...)
	client, err := rcuda.Open(conn, module, opts...)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	p.pl.NotePlaced(idx)
	return &Session{Client: client, Endpoint: ep.Name, idx: idx, route: rt}, nil
}

// Migrator is the control interface the pool drives to move a session off
// its source daemon; *rcuda.Server implements it. In a deployment where the
// broker cannot hold daemon handles this would be a control RPC to the
// source, but the wire dialogue that actually moves the state — restore
// handshake, chunk stream, digest-checked commit — is daemon-to-daemon
// either way, and the client never relays a byte.
type Migrator interface {
	MigrateSession(id uint64, dial func() (transport.Conn, error)) (int64, error)
}

// Migrate live-migrates a pool-placed session off its current endpoint,
// picking the destination under the pool's placement policy. See MigrateTo.
func (p *Pool) Migrate(s *Session, src Migrator) error {
	exclude := map[int]bool{s.idx: true}
	idx, ok := p.pl.Pick(JobSpec{}, exclude)
	if !ok {
		return ErrNoServers
	}
	return p.MigrateTo(s, src, idx)
}

// MigrateTo live-migrates a pool-placed session to the endpoint at destIdx:
// the source daemon quiesces the session, streams its checkpoint straight
// to the destination daemon, and destroys its copy on commit; the pool then
// atomically re-points the session's route so the client's next redial —
// typically triggered by the source's CodeSessionMigrated redirect —
// reattaches at the destination with every allocation intact and nothing
// replayed. On failure the session is untouched and still placed where it
// was.
func (p *Pool) MigrateTo(s *Session, src Migrator, destIdx int) error {
	dest, ok := p.pl.endpoint(destIdx)
	if !ok {
		return fmt.Errorf("broker: migrate to unknown endpoint %d", destIdx)
	}
	id := s.SessionID()
	if id == 0 {
		return fmt.Errorf("broker: session on %s is not durable", s.Endpoint)
	}
	n, err := src.MigrateSession(id, dest.Dial)
	if err != nil {
		p.pl.NoteMigrationFailure()
		return fmt.Errorf("broker: migrate session %d to %s: %w", id, dest.Name, err)
	}
	p.pl.NoteMigration(destIdx, n)
	if s.route != nil {
		s.route.repoint(destIdx)
	}
	s.idx = destIdx
	s.Endpoint = dest.Name
	return nil
}

// Run executes job in a pool-placed session with failover: the session is
// opened on the best endpoint, and if the job is interrupted by a lost
// session — the server died and the client's own reattach could not revive
// it — the whole job is replayed from a clean session on another endpoint.
// The job closure must therefore be restartable from scratch: it sees a
// fresh runtime each attempt and must not keep device state across calls.
// CUDA errors and other non-connection failures are returned as-is, without
// failover — they would fail identically anywhere.
func (p *Pool) Run(module []byte, spec JobSpec, job func(cudart.Runtime) error) error {
	exclude := make(map[int]bool)
	for {
		sess, err := p.open(module, spec, exclude)
		if err != nil {
			return err
		}
		jobErr := job(sess)
		closeErr := sess.Close()
		if jobErr == nil {
			if closeErr != nil && isSessionLoss(closeErr) {
				// The job's work completed and verified; a connection that
				// died delivering the finalization is the server's problem.
				return nil
			}
			return closeErr
		}
		if !isSessionLoss(jobErr) {
			return jobErr
		}
		p.pl.NoteFailover()
		p.pl.NoteFailure(sess.idx, jobErr)
		exclude[sess.idx] = true
	}
}

// isSessionLoss reports whether err means the session (or its server) is
// gone, as opposed to a CUDA-level or application failure.
func isSessionLoss(err error) bool {
	return errors.Is(err, rcuda.ErrSessionLost) ||
		errors.Is(err, transport.ErrClosed) ||
		errors.Is(err, transport.ErrInjectedReset) ||
		errors.Is(err, transport.ErrTruncatedFrame)
}

// size returns the endpoint count.
func (p *Pool) size() int { return p.pl.Len() }
