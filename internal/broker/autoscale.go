package broker

import (
	"fmt"
	"sync"
	"time"
)

// This file closes the elasticity loop: the pool already *observes* load
// (probe gauges) and *reacts* to failure (markdown, spill, failover); the
// Autoscaler decides when the fleet itself should grow or shrink. It is
// deliberately policy-pure — it never touches sockets or daemons, it only
// calls a ScaleDriver — so the identical control law runs over live rcudad
// processes (Pool.AddEndpoint / RetireEndpoint) and over the load
// generator's simulated fleets, where it is chaos-tested against
// fault-injected daemon kills at 10^5–10^6 session scale.
//
// The control law is target occupancy with hysteresis and cooldown:
//
//   - occupancy = demand / (daemons · DaemonCapacity), where demand counts
//     live sessions plus queued placements (queued demand must push the
//     fleet up, or a saturated pool would look exactly "full" forever);
//   - above UpThreshold the fleet grows toward
//     ceil(demand / (capacity · TargetOccupancy));
//   - below DownThreshold it shrinks toward the same target;
//   - no two actions happen within Cooldown of each other, so a burst's
//     edge cannot flap the fleet.
//
// Scale-down must never strand a session: the driver's Retire is asked for
// one daemon at a time, drains a chosen daemon by live-migrating its
// resident durable sessions to peers with spare capacity, and may refuse
// (veto) when no daemon can drain cleanly — e.g. nowhere has room for the
// residents; vetoes are counted, not retried within the same decision.

// AutoscalerConfig parameterizes the control law. The zero value is
// completed by sensible defaults (see withDefaults).
type AutoscalerConfig struct {
	// Min and Max bound the fleet size. Min defaults to 1; Max defaults to
	// 64.
	Min, Max int
	// DaemonCapacity is the session capacity of one daemon, the
	// denominator of the occupancy signal. Defaults to 64.
	DaemonCapacity int
	// TargetOccupancy is the fleet utilization the controller steers
	// toward after a threshold trips. Defaults to 0.70.
	TargetOccupancy float64
	// UpThreshold and DownThreshold are the hysteresis band: no action is
	// taken while occupancy stays inside (Down, Up). Default 0.85 / 0.45.
	UpThreshold, DownThreshold float64
	// Cooldown is the minimum time between two scaling actions. Defaults
	// to 10 seconds (of the caller's clock — virtual in simulations).
	Cooldown time.Duration
	// MaxStep bounds how many daemons one decision may add or remove.
	// Zero means unbounded: jump straight to the target size.
	MaxStep int
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (c AutoscalerConfig) withDefaults() AutoscalerConfig {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 64
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.DaemonCapacity <= 0 {
		c.DaemonCapacity = 64
	}
	if c.TargetOccupancy <= 0 || c.TargetOccupancy > 1 {
		c.TargetOccupancy = 0.70
	}
	if c.UpThreshold <= 0 || c.UpThreshold > 1 {
		c.UpThreshold = 0.85
	}
	if c.DownThreshold < 0 || c.DownThreshold >= c.UpThreshold {
		c.DownThreshold = 0.45
		if c.DownThreshold >= c.UpThreshold {
			c.DownThreshold = c.UpThreshold / 2
		}
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * time.Second
	}
	return c
}

// ScaleDriver performs the fleet mutations the Autoscaler decides on.
type ScaleDriver interface {
	// Spawn starts one daemon and registers its endpoint.
	Spawn() error
	// Retire drains and retires one daemon of the driver's choosing,
	// live-migrating its resident durable sessions to peers with spare
	// capacity (Pool.MigrateTo over live daemons, drain-by-migration in
	// the load generator). It returns false (a veto, not an error) when no
	// daemon can currently retire without stranding a session — e.g. no
	// peer has room for any candidate's residents.
	Retire() (bool, error)
}

// AutoscalerStats are the controller's cumulative decision counters.
type AutoscalerStats struct {
	// ScaleUps and ScaleDowns count daemons added/removed (not decisions).
	ScaleUps, ScaleDowns int64
	// UpDecisions and DownDecisions count threshold trips that led to at
	// least one attempted action.
	UpDecisions, DownDecisions int64
	// CooldownHolds counts threshold trips suppressed by the cooldown.
	CooldownHolds int64
	// RetireVetoes counts scale-down attempts the driver refused because
	// draining would strand a session.
	RetireVetoes int64
	// SpawnErrors counts failed Spawn calls.
	SpawnErrors int64
}

// Autoscaler drives a ScaleDriver from observed occupancy. It keeps no
// clock of its own: Observe takes the current instant explicitly, so the
// controller is exactly as deterministic as its caller's timeline.
type Autoscaler struct {
	cfg    AutoscalerConfig
	driver ScaleDriver

	mu      sync.Mutex
	acted   bool
	lastAct time.Duration
	stats   AutoscalerStats
}

// NewAutoscaler builds a controller over the driver. cfg zero fields take
// defaults.
func NewAutoscaler(cfg AutoscalerConfig, driver ScaleDriver) *Autoscaler {
	if driver == nil {
		panic("broker: NewAutoscaler with nil driver")
	}
	return &Autoscaler{cfg: cfg.withDefaults(), driver: driver}
}

// Config returns the effective (default-completed) configuration.
func (a *Autoscaler) Config() AutoscalerConfig { return a.cfg }

// Stats returns a snapshot of the decision counters.
func (a *Autoscaler) Stats() AutoscalerStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Observe feeds one load observation into the controller: demand is the
// number of sessions wanting service (live plus queued), daemons the
// current fleet size. It returns the net fleet delta this observation
// caused (positive = spawned) and the first driver error, if any.
func (a *Autoscaler) Observe(now time.Duration, demand, daemons int) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()

	target := a.desired(demand)
	switch {
	case daemons < a.cfg.Min:
		// Below the floor — e.g. chaos killed daemons out from under us.
		// The floor is not subject to hysteresis or cooldown.
		target = max(target, a.cfg.Min)
	case a.occupancy(demand, daemons) >= a.cfg.UpThreshold && target > daemons:
		// grow
	case a.occupancy(demand, daemons) <= a.cfg.DownThreshold && target < daemons:
		// shrink
	default:
		return 0, nil
	}

	if a.acted && now-a.lastAct < a.cfg.Cooldown && daemons >= a.cfg.Min {
		a.stats.CooldownHolds++
		return 0, nil
	}

	step := target - daemons
	if a.cfg.MaxStep > 0 {
		if step > a.cfg.MaxStep {
			step = a.cfg.MaxStep
		}
		if step < -a.cfg.MaxStep {
			step = -a.cfg.MaxStep
		}
	}
	if step == 0 {
		return 0, nil
	}

	var delta int
	var firstErr error
	if step > 0 {
		a.stats.UpDecisions++
		for i := 0; i < step; i++ {
			if err := a.driver.Spawn(); err != nil {
				a.stats.SpawnErrors++
				if firstErr == nil {
					firstErr = fmt.Errorf("broker: autoscaler spawn: %w", err)
				}
				break
			}
			a.stats.ScaleUps++
			delta++
		}
	} else {
		a.stats.DownDecisions++
		for i := 0; i < -step; i++ {
			ok, err := a.driver.Retire()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("broker: autoscaler retire: %w", err)
				}
				break
			}
			if !ok {
				// Veto: nothing can drain right now. Stop trying this round.
				a.stats.RetireVetoes++
				break
			}
			a.stats.ScaleDowns++
			delta--
		}
	}
	if delta != 0 {
		a.acted = true
		a.lastAct = now
	}
	return delta, firstErr
}

// occupancy is the load signal: demand over fleet session capacity. An
// empty fleet with demand reads as above any threshold.
func (a *Autoscaler) occupancy(demand, daemons int) float64 {
	if daemons <= 0 {
		if demand > 0 {
			return 2 // > any threshold
		}
		return 0
	}
	return float64(demand) / float64(daemons*a.cfg.DaemonCapacity)
}

// desired is the fleet size that would put occupancy at the target,
// clamped to [Min, Max].
func (a *Autoscaler) desired(demand int) int {
	perDaemon := float64(a.cfg.DaemonCapacity) * a.cfg.TargetOccupancy
	n := int(ceilDiv(float64(demand), perDaemon))
	if n < a.cfg.Min {
		n = a.cfg.Min
	}
	if n > a.cfg.Max {
		n = a.cfg.Max
	}
	return n
}

func ceilDiv(a, b float64) float64 {
	n := a / b
	if n != float64(int(n)) {
		return float64(int(n)) + 1
	}
	return n
}
