package broker

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"

	"rcuda/internal/calib"
	"rcuda/internal/cudart"
	"rcuda/internal/fft"
	"rcuda/internal/gpu"
	"rcuda/internal/kernels"
	"rcuda/internal/rcuda"
	"rcuda/internal/transport"
	"rcuda/internal/vclock"
)

// chaosJob is one replayable unit of work: it builds its inputs from the
// seed, runs the case study on any runtime, and returns the result bytes as
// read back from the device — the basis of the bit-exactness check.
type chaosJob struct {
	cs   calib.CaseStudy
	size int
	seed int64
}

func (j chaosJob) run(rt cudart.Runtime) ([]byte, error) {
	switch j.cs {
	case calib.MM:
		return runMMBytes(rt, j.size, j.seed)
	default:
		return runFFTBytes(rt, j.size, j.seed)
	}
}

// runMMBytes multiplies two seeded m×m matrices on rt and returns the raw
// result bytes.
func runMMBytes(rt cudart.Runtime, m int, seed int64) ([]byte, error) {
	a, b := seededMatrices(m, seed)
	nbytes := uint32(4 * m * m)
	var ptrs [3]cudart.DevicePtr
	for i := range ptrs {
		p, err := rt.Malloc(nbytes)
		if err != nil {
			return nil, err
		}
		ptrs[i] = p
	}
	if err := rt.MemcpyToDevice(ptrs[0], cudart.Float32Bytes(a)); err != nil {
		return nil, err
	}
	if err := rt.MemcpyToDevice(ptrs[1], cudart.Float32Bytes(b)); err != nil {
		return nil, err
	}
	grid := cudart.Dim3{X: uint32(m / 16), Y: uint32(m / 16)}
	block := cudart.Dim3{X: 16, Y: 16}
	if err := rt.Launch(kernels.SgemmKernel, grid, block, 0,
		gpu.PackParams(uint32(ptrs[0]), uint32(ptrs[1]), uint32(ptrs[2]), uint32(m))); err != nil {
		return nil, err
	}
	out := make([]byte, nbytes)
	if err := rt.MemcpyToHost(out, ptrs[2]); err != nil {
		return nil, err
	}
	for _, p := range ptrs {
		if err := rt.Free(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func seededMatrices(m int, seed int64) (a, b []float32) {
	rng := rand.New(rand.NewSource(seed))
	a = make([]float32, m*m)
	b = make([]float32, m*m)
	for i := range a {
		a[i] = rng.Float32()*2 - 1
		b[i] = rng.Float32()*2 - 1
	}
	return a, b
}

// runFFTBytes transforms a seeded batch of signals on rt and returns the
// raw spectrum bytes.
func runFFTBytes(rt cudart.Runtime, batch int, seed int64) ([]byte, error) {
	rng := rand.New(rand.NewSource(seed))
	signal := make([]complex64, batch*fft.Points)
	for i := range signal {
		signal[i] = complex(rng.Float32()*2-1, rng.Float32()*2-1)
	}
	raw := cudart.Complex64Bytes(signal)
	ptr, err := rt.Malloc(uint32(len(raw)))
	if err != nil {
		return nil, err
	}
	if err := rt.MemcpyToDevice(ptr, raw); err != nil {
		return nil, err
	}
	if err := rt.Launch(kernels.FFTKernel, cudart.Dim3{X: uint32(batch)}, cudart.Dim3{X: 64}, 0,
		gpu.PackParams(uint32(ptr), uint32(batch), 0)); err != nil {
		return nil, err
	}
	out := make([]byte, len(raw))
	if err := rt.MemcpyToHost(out, ptr); err != nil {
		return nil, err
	}
	if err := rt.Free(ptr); err != nil {
		return nil, err
	}
	return out, nil
}

// goldenBytes runs the job on a local single-GPU runtime: the reference the
// pool's results must match bit for bit.
func goldenBytes(t *testing.T, j chaosJob) []byte {
	t.Helper()
	mod, err := kernels.ModuleFor(j.cs)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := cudart.OpenLocal(gpu.New(gpu.Config{Clock: vclock.NewSim()}), mod, cudart.Preinitialized())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	out, err := j.run(rt)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestChaosKillServerMidBatch runs a batch of MM and FFT jobs through a
// pool of three TCP servers and kills one while jobs are mid-flight on it.
// Every job must finish with results bit-identical to a local run, and the
// pool's books must balance: every extra invocation of a job closure is one
// counted failover.
func TestChaosKillServerMidBatch(t *testing.T) {
	const nServers = 3
	type server struct {
		srv  *rcuda.Server
		ln   net.Listener
		addr string
	}
	servers := make([]*server, nServers)
	eps := make([]Endpoint, nServers)
	for i := range servers {
		dev := gpu.New(gpu.Config{Clock: vclock.NewWall()})
		srv := rcuda.NewServer(dev)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = srv.Serve(ln) }()
		addr := ln.Addr().String()
		servers[i] = &server{srv: srv, ln: ln, addr: addr}
		eps[i] = Endpoint{
			Name: fmt.Sprintf("s%d", i),
			Dial: func() (transport.Conn, error) { return transport.DialTCP(addr) },
		}
	}
	defer func() {
		for _, s := range servers {
			_ = s.srv.Close()
		}
	}()

	pool, err := New(eps, WithPolicy(RoundRobin))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const victim = "s1"
	jobs := []chaosJob{
		{calib.MM, 32, 11}, {calib.FFT, 4, 12}, {calib.MM, 48, 13},
		{calib.FFT, 8, 14}, {calib.MM, 32, 15}, {calib.FFT, 4, 16},
		{calib.MM, 48, 17}, {calib.FFT, 8, 18}, {calib.MM, 32, 19},
	}
	golden := make([][]byte, len(jobs))
	for i, j := range jobs {
		golden[i] = goldenBytes(t, j)
	}

	// Jobs that land on the victim hold — session open, module loaded —
	// until the kill has happened, guaranteeing they are mid-batch on the
	// dying server rather than racing to finish first.
	readyToKill := make(chan struct{}, len(jobs))
	killDone := make(chan struct{})
	var attempts atomic.Int64

	results := make([][]byte, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mod, err := kernels.ModuleFor(j.cs)
			if err != nil {
				errs[i] = err
				return
			}
			img, err := mod.Binary()
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = pool.Run(img, JobSpec{CS: j.cs, Size: j.size}, func(rt cudart.Runtime) error {
				attempts.Add(1)
				if s, ok := rt.(*Session); ok && s.Endpoint == victim {
					select {
					case <-killDone:
						// Replaying after the kill: the victim cannot be
						// picked again, so this cannot happen; if it does,
						// just run.
					default:
						readyToKill <- struct{}{}
						<-killDone
					}
				}
				out, err := j.run(rt)
				if err != nil {
					return err
				}
				results[i] = out
				return nil
			})
		}()
	}

	// Kill the victim once at least one job is parked on it mid-batch.
	<-readyToKill
	_ = servers[1].ln.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired: force-close every connection immediately
	_ = servers[1].srv.Drain(ctx)
	close(killDone)

	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d failed: %v", i, err)
		}
		if !bytes.Equal(results[i], golden[i]) {
			t.Fatalf("job %d result differs from the local run", i)
		}
	}

	stats := pool.Stats()
	extra := attempts.Load() - int64(len(jobs))
	if stats.Failovers != extra {
		t.Fatalf("failovers = %d, but %d extra job invocations ran", stats.Failovers, extra)
	}
	if stats.Failovers == 0 {
		t.Fatal("the kill produced no failovers — nothing was mid-flight on the victim")
	}
	if stats.Placements != attempts.Load() {
		t.Fatalf("placements = %d, want one per job invocation (%d)", stats.Placements, attempts.Load())
	}
	if st := pool.Endpoints(); st[1].Up {
		t.Fatalf("victim endpoint still marked up: %+v", st[1])
	}
}
