package broker

import (
	"errors"
	"testing"
	"time"
)

// fakeDriver records scale actions and can veto retirements.
type fakeDriver struct {
	daemons  int
	vetoes   int // pending retire vetoes to emit
	spawnErr error
}

func (d *fakeDriver) Spawn() error {
	if d.spawnErr != nil {
		return d.spawnErr
	}
	d.daemons++
	return nil
}

func (d *fakeDriver) Retire() (bool, error) {
	if d.vetoes > 0 {
		d.vetoes--
		return false, nil
	}
	d.daemons--
	return true, nil
}

func TestAutoscalerDefaults(t *testing.T) {
	cfg := AutoscalerConfig{}.withDefaults()
	if cfg.Min != 1 || cfg.Max != 64 || cfg.DaemonCapacity != 64 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.DownThreshold >= cfg.UpThreshold || cfg.TargetOccupancy <= cfg.DownThreshold {
		t.Fatalf("thresholds out of order: %+v", cfg)
	}
}

func TestAutoscalerScalesUpTowardTarget(t *testing.T) {
	d := &fakeDriver{daemons: 1}
	a := NewAutoscaler(AutoscalerConfig{
		Min: 1, Max: 10, DaemonCapacity: 10, TargetOccupancy: 0.5,
		UpThreshold: 0.8, DownThreshold: 0.2, Cooldown: time.Second,
	}, d)
	// demand 40 on 1×10 capacity: occupancy 4.0 ≥ 0.8; desired =
	// ceil(40/(10·0.5)) = 8.
	delta, err := a.Observe(0, 40, d.daemons)
	if err != nil || delta != 7 || d.daemons != 8 {
		t.Fatalf("scale-up: delta=%d daemons=%d err=%v", delta, d.daemons, err)
	}
	if s := a.Stats(); s.ScaleUps != 7 || s.UpDecisions != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestAutoscalerHysteresisBand(t *testing.T) {
	d := &fakeDriver{daemons: 4}
	a := NewAutoscaler(AutoscalerConfig{
		Min: 1, Max: 10, DaemonCapacity: 10, TargetOccupancy: 0.5,
		UpThreshold: 0.8, DownThreshold: 0.2, Cooldown: time.Second,
	}, d)
	// Occupancy 0.5 sits inside (0.2, 0.8): no action even though desired
	// (4) happens to equal current — and none either at 0.75 or 0.25.
	for _, demand := range []int{20, 30, 10} {
		if delta, _ := a.Observe(0, demand, d.daemons); delta != 0 {
			t.Fatalf("demand %d inside band moved the fleet by %d", demand, delta)
		}
	}
	if d.daemons != 4 {
		t.Fatalf("fleet moved to %d inside the hysteresis band", d.daemons)
	}
}

func TestAutoscalerCooldownSuppresses(t *testing.T) {
	d := &fakeDriver{daemons: 1}
	a := NewAutoscaler(AutoscalerConfig{
		Min: 1, Max: 10, DaemonCapacity: 10, TargetOccupancy: 0.5,
		UpThreshold: 0.8, DownThreshold: 0.2, Cooldown: 10 * time.Second,
	}, d)
	if delta, _ := a.Observe(0, 20, d.daemons); delta != 3 {
		t.Fatalf("first action delta=%d", delta)
	}
	// Another trip 1s later is held by the 10s cooldown.
	if delta, _ := a.Observe(time.Second, 200, d.daemons); delta != 0 {
		t.Fatalf("cooldown breached: delta=%d", delta)
	}
	if s := a.Stats(); s.CooldownHolds != 1 {
		t.Fatalf("stats: %+v", s)
	}
	// After the cooldown expires the controller acts again.
	if delta, _ := a.Observe(11*time.Second, 200, d.daemons); delta <= 0 {
		t.Fatalf("post-cooldown delta=%d", delta)
	}
}

func TestAutoscalerScaleDownVeto(t *testing.T) {
	d := &fakeDriver{daemons: 6, vetoes: 1}
	a := NewAutoscaler(AutoscalerConfig{
		Min: 1, Max: 10, DaemonCapacity: 10, TargetOccupancy: 0.5,
		UpThreshold: 0.8, DownThreshold: 0.2, Cooldown: time.Second,
	}, d)
	// demand 5 on 6×10: occupancy 0.083 ≤ 0.2; desired = 1. The first
	// Retire is vetoed (a daemon still holds sessions), which ends the
	// decision without stranding anything.
	delta, err := a.Observe(0, 5, d.daemons)
	if err != nil || delta != 0 || d.daemons != 6 {
		t.Fatalf("vetoed scale-down: delta=%d daemons=%d err=%v", delta, d.daemons, err)
	}
	if s := a.Stats(); s.RetireVetoes != 1 || s.ScaleDowns != 0 || s.DownDecisions != 1 {
		t.Fatalf("stats: %+v", s)
	}
	// With the veto cleared the next trip drains toward the target.
	delta, err = a.Observe(2*time.Second, 5, d.daemons)
	if err != nil || delta != -5 || d.daemons != 1 {
		t.Fatalf("drained scale-down: delta=%d daemons=%d err=%v", delta, d.daemons, err)
	}
}

func TestAutoscalerFloorIgnoresCooldown(t *testing.T) {
	d := &fakeDriver{daemons: 3}
	a := NewAutoscaler(AutoscalerConfig{
		Min: 2, Max: 10, DaemonCapacity: 10, TargetOccupancy: 0.5,
		UpThreshold: 0.8, DownThreshold: 0.2, Cooldown: time.Hour,
	}, d)
	if delta, _ := a.Observe(0, 15, d.daemons); delta != 0 {
		t.Fatalf("in-band observation acted: %d", delta)
	}
	// Chaos kills the fleet below Min: the floor is restored immediately,
	// cooldown or not.
	d.daemons = 0
	delta, err := a.Observe(time.Millisecond, 0, d.daemons)
	if err != nil || delta < 2 || d.daemons < 2 {
		t.Fatalf("floor restore: delta=%d daemons=%d err=%v", delta, d.daemons, err)
	}
}

func TestAutoscalerMaxStepAndBounds(t *testing.T) {
	d := &fakeDriver{daemons: 1}
	a := NewAutoscaler(AutoscalerConfig{
		Min: 1, Max: 4, DaemonCapacity: 10, TargetOccupancy: 0.5,
		UpThreshold: 0.8, DownThreshold: 0.2, Cooldown: time.Second, MaxStep: 1,
	}, d)
	// Huge demand, but MaxStep caps each decision at one daemon and Max
	// caps the fleet at 4.
	for i := 0; i < 10; i++ {
		_, _ = a.Observe(time.Duration(i)*2*time.Second, 1000, d.daemons)
	}
	if d.daemons != 4 {
		t.Fatalf("fleet = %d, want Max=4 via single steps", d.daemons)
	}
	if s := a.Stats(); s.ScaleUps != 3 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestAutoscalerSpawnErrorSurfaces(t *testing.T) {
	boom := errors.New("no capacity")
	d := &fakeDriver{daemons: 1, spawnErr: boom}
	a := NewAutoscaler(AutoscalerConfig{
		Min: 1, Max: 10, DaemonCapacity: 10, TargetOccupancy: 0.5,
		UpThreshold: 0.8, DownThreshold: 0.2, Cooldown: time.Second,
	}, d)
	_, err := a.Observe(0, 100, d.daemons)
	if !errors.Is(err, boom) {
		t.Fatalf("spawn error not surfaced: %v", err)
	}
	if s := a.Stats(); s.SpawnErrors != 1 {
		t.Fatalf("stats: %+v", s)
	}
}
