package broker

import (
	"fmt"
	"time"

	"rcuda/internal/perfmodel"
	"rcuda/internal/protocol"
)

// Policy selects how the pool places sessions on endpoints. The names
// mirror package cluster's scheduling policies, so a live deployment can be
// configured with the same vocabulary the offline sizing study uses.
type Policy int

// Placement policies.
const (
	// LeastLoaded places each session on the endpoint with the lightest
	// live load, ranked by the last probe's gauges: attached sessions
	// first (plus any sessions this pool placed since the probe), then
	// cumulative device busy time, then memory in use, then endpoint
	// order. With sequential submission this reproduces the cluster
	// simulator's least-loaded list scheduling.
	LeastLoaded Policy = iota
	// RoundRobin cycles through the live endpoints regardless of load.
	RoundRobin
	// NetworkAware ranks endpoints by the estimated time to move the
	// job's data over each endpoint's declared interconnect — the
	// perfmodel transfer estimate for a calibrated case study, or the raw
	// payload time for a declared byte volume — breaking ties by load.
	// Endpoints with no declared link rank last.
	NetworkAware
	// ClassAware ranks endpoints by scheduling headroom in the job's
	// declared class (JobSpec.Class; unspecified reads as batch): lowest
	// p99 queue wait for the class in the endpoint's last probe first,
	// then fewest sessions of the class, then overall load. Endpoints
	// whose daemons do not run the scheduler (no class block in the probe
	// reply) rank after those that do, by overall load.
	ClassAware
)

// String implements fmt.Stringer with the cluster package's names.
func (p Policy) String() string {
	switch p {
	case LeastLoaded:
		return "least-loaded"
	case RoundRobin:
		return "round-robin"
	case NetworkAware:
		return "network-aware"
	case ClassAware:
		return "class-aware"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy maps a policy name (as printed by String) to its value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "least-loaded":
		return LeastLoaded, nil
	case "round-robin":
		return RoundRobin, nil
	case "network-aware":
		return NetworkAware, nil
	case "class-aware":
		return ClassAware, nil
	default:
		return 0, fmt.Errorf("broker: unknown policy %q", s)
	}
}

// loadKey is the lexicographic load ranking of one endpoint.
type loadKey struct {
	sessions int64
	busy     uint64
	bytes    uint64
}

func (st *endpointState) loadKey() loadKey {
	k := loadKey{sessions: st.placed}
	if st.load != nil {
		k.sessions += int64(st.load.SessionsLive)
		for _, d := range st.load.Devices {
			k.busy += d.BusyNanos
			k.bytes += d.BytesInUse
		}
	}
	return k
}

func lighterLoad(a, b loadKey) bool {
	if a.sessions != b.sessions {
		return a.sessions < b.sessions
	}
	if a.busy != b.busy {
		return a.busy < b.busy
	}
	return a.bytes < b.bytes
}

// transferEstimate is the network-aware policy's score: how long moving the
// job's declared data over this endpoint's link would take. ok is false
// when the endpoint declares no link or the spec declares no volume.
func transferEstimate(st *endpointState, spec JobSpec) (time.Duration, bool) {
	if st.ep.Link == nil {
		return 0, false
	}
	if spec.Size > 0 {
		return perfmodel.TotalTransferTime(st.ep.Link, spec.CS, spec.Size), true
	}
	if spec.TransferBytes > 0 {
		return st.ep.Link.PayloadTime(spec.TransferBytes), true
	}
	return 0, false
}

// classLoadOf extracts the endpoint's probe row for the job's class. ok is
// false when the endpoint has no probe yet or its daemon answered without
// the class block (scheduler off or pre-scheduler build).
func classLoadOf(st *endpointState, class uint32) (protocol.ClassLoad, bool) {
	if st.load == nil || !st.load.HasClasses {
		return protocol.ClassLoad{}, false
	}
	if class == protocol.SchedClassUnspecified {
		class = protocol.SchedClassBatch
	}
	if class < protocol.SchedClassRealtime || class > protocol.SchedClassBestEffort {
		return protocol.ClassLoad{}, false
	}
	return st.load.Classes[class-1], true
}

// pickAmong ranks the candidate endpoints under the policy. The caller
// holds the placer mutex (see placerState.pick for the up/down preference
// pass that drives the candidate predicate).
func (s *placerState) pickAmong(spec JobSpec, candidate func(int) bool) (int, bool) {
	switch s.policy {
	case RoundRobin:
		for k := 0; k < len(s.eps); k++ {
			i := (s.rr + k) % len(s.eps)
			if candidate(i) {
				s.rr = i + 1
				return i, true
			}
		}
		return 0, false
	case NetworkAware:
		best, found := 0, false
		var bestEst time.Duration
		var bestHas bool
		for i, st := range s.eps {
			if !candidate(i) {
				continue
			}
			est, has := transferEstimate(st, spec)
			better := false
			switch {
			case !found:
				better = true
			case has != bestHas:
				better = has // a linked endpoint beats an unranked one
			case has && est != bestEst:
				better = est < bestEst
			default:
				better = lighterLoad(st.loadKey(), s.eps[best].loadKey())
			}
			if better {
				best, found, bestEst, bestHas = i, true, est, has
			}
		}
		return best, found
	case ClassAware:
		best, found := 0, false
		var bestCL protocol.ClassLoad
		var bestHas bool
		for i, st := range s.eps {
			if !candidate(i) {
				continue
			}
			cl, has := classLoadOf(st, spec.Class)
			better := false
			switch {
			case !found:
				better = true
			case has != bestHas:
				better = has // a scheduler-reporting endpoint beats a blind one
			case has && cl.P99WaitNanos != bestCL.P99WaitNanos:
				better = cl.P99WaitNanos < bestCL.P99WaitNanos
			case has && cl.Sessions != bestCL.Sessions:
				better = cl.Sessions < bestCL.Sessions
			default:
				better = lighterLoad(st.loadKey(), s.eps[best].loadKey())
			}
			if better {
				best, found, bestCL, bestHas = i, true, cl, has
			}
		}
		return best, found
	default: // LeastLoaded
		best, found := 0, false
		for i, st := range s.eps {
			if !candidate(i) {
				continue
			}
			if !found || lighterLoad(st.loadKey(), s.eps[best].loadKey()) {
				best, found = i, true
			}
		}
		return best, found
	}
}
