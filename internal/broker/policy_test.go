package broker

import (
	"errors"
	"testing"

	"rcuda/internal/netsim"
	"rcuda/internal/protocol"
	"rcuda/internal/transport"
)

// badDial satisfies Endpoint.Dial for tests that never open a connection.
func badDial() (transport.Conn, error) {
	return nil, errors.New("test endpoint: not dialable")
}

// gauges builds a probe reply with the given load signal.
func gauges(sessions uint32, busy, bytes uint64) *protocol.StatsReply {
	return &protocol.StatsReply{
		SessionsLive: sessions,
		Devices:      []protocol.DeviceStats{{BusyNanos: busy, BytesInUse: bytes}},
	}
}

// newTestPlacer builds a placer over n named, link-less endpoints.
func newTestPlacer(policy Policy, n int) *Placer {
	p := NewPlacer(policy)
	for i := 0; i < n; i++ {
		p.Add(Endpoint{})
	}
	return p
}

func TestLeastLoadedTieBreaking(t *testing.T) {
	cases := []struct {
		name  string
		loads []*protocol.StatsReply
		want  int
	}{
		{
			name:  "fewest sessions wins",
			loads: []*protocol.StatsReply{gauges(3, 0, 0), gauges(1, 0, 0), gauges(2, 0, 0)},
			want:  1,
		},
		{
			name:  "sessions tie, least busy wins",
			loads: []*protocol.StatsReply{gauges(2, 900, 0), gauges(2, 100, 0), gauges(2, 500, 0)},
			want:  1,
		},
		{
			name:  "sessions and busy tie, fewest bytes wins",
			loads: []*protocol.StatsReply{gauges(1, 50, 4096), gauges(1, 50, 1024), gauges(1, 50, 2048)},
			want:  1,
		},
		{
			name:  "full tie, registration order wins",
			loads: []*protocol.StatsReply{gauges(1, 50, 64), gauges(1, 50, 64), gauges(1, 50, 64)},
			want:  0,
		},
		{
			name:  "unprobed endpoint counts as empty",
			loads: []*protocol.StatsReply{gauges(1, 0, 0), nil, gauges(2, 0, 0)},
			want:  1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := newTestPlacer(LeastLoaded, len(tc.loads))
			for i, l := range tc.loads {
				if l != nil {
					p.NoteProbe(i, l, nil)
				}
			}
			idx, ok := p.Pick(JobSpec{}, nil)
			if !ok || idx != tc.want {
				t.Fatalf("Pick = %d, %v; want %d", idx, ok, tc.want)
			}
		})
	}
}

func TestLeastLoadedStampedeGuard(t *testing.T) {
	p := newTestPlacer(LeastLoaded, 2)
	p.NoteProbe(0, gauges(0, 0, 0), nil)
	p.NoteProbe(1, gauges(2, 0, 0), nil)

	// Between probes, each placement on the idle server counts against it,
	// so a burst spreads out instead of stampeding server 0. (The third
	// pick ties at two sessions apiece and registration order keeps it on
	// server 0; the fourth overtakes.)
	for i, want := range []int{0, 0, 0, 1} {
		idx, ok := p.Pick(JobSpec{}, nil)
		if !ok || idx != want {
			t.Fatalf("pick %d = %d, %v; want %d", i, idx, ok, want)
		}
		p.NotePlaced(idx)
	}

	// A fresh probe resets the guard: the gauges speak again.
	p.NoteProbe(0, gauges(0, 0, 0), nil)
	if idx, _ := p.Pick(JobSpec{}, nil); idx != 0 {
		t.Fatalf("post-probe pick = %d, want 0", idx)
	}
}

func TestRoundRobinCyclesAndExcludes(t *testing.T) {
	p := newTestPlacer(RoundRobin, 3)
	var got []int
	for i := 0; i < 6; i++ {
		idx, ok := p.Pick(JobSpec{}, nil)
		if !ok {
			t.Fatalf("pick %d failed", i)
		}
		got = append(got, idx)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cycle = %v, want %v", got, want)
		}
	}

	// Excluded endpoints are skipped without derailing the cursor.
	if idx, _ := p.Pick(JobSpec{}, map[int]bool{0: true}); idx != 1 {
		t.Fatalf("exclusion pick = %d, want 1", idx)
	}
	// All excluded: no pick.
	if _, ok := p.Pick(JobSpec{}, map[int]bool{0: true, 1: true, 2: true}); ok {
		t.Fatal("pick succeeded with every endpoint excluded")
	}
}

func TestNetworkAwareRanking(t *testing.T) {
	p := NewPlacer(NetworkAware)
	p.Add(Endpoint{Name: "slow", Link: netsim.GigaE()})
	p.Add(Endpoint{Name: "fast", Link: netsim.AHT()})
	p.Add(Endpoint{Name: "unlinked"})
	spec := JobSpec{TransferBytes: 64 << 20}

	// The fastest declared link wins.
	if idx, _ := p.Pick(spec, nil); idx != 1 {
		t.Fatalf("pick = %d, want 1 (fast link)", idx)
	}
	// A linked endpoint beats an unlinked one even when slower.
	if idx, _ := p.Pick(spec, map[int]bool{1: true}); idx != 0 {
		t.Fatalf("pick = %d, want 0 (slow but linked)", idx)
	}
	// The unlinked endpoint is still usable as a last resort.
	if idx, _ := p.Pick(spec, map[int]bool{0: true, 1: true}); idx != 2 {
		t.Fatalf("pick = %d, want 2 (unlinked fallback)", idx)
	}
}

func TestNetworkAwareEstimateTieBreaksByLoad(t *testing.T) {
	p := NewPlacer(NetworkAware)
	p.Add(Endpoint{Name: "a", Link: netsim.TenGigE()})
	p.Add(Endpoint{Name: "b", Link: netsim.TenGigE()})
	p.NoteProbe(0, gauges(5, 0, 0), nil)
	p.NoteProbe(1, gauges(1, 0, 0), nil)
	// Identical links → identical estimates → the lighter endpoint wins.
	if idx, _ := p.Pick(JobSpec{TransferBytes: 1 << 20}, nil); idx != 1 {
		t.Fatalf("pick = %d, want 1 (lighter load on tied links)", idx)
	}
	// With no declared volume the estimate is unavailable for everyone and
	// the ranking likewise degrades to load.
	if idx, _ := p.Pick(JobSpec{}, nil); idx != 1 {
		t.Fatalf("no-volume pick = %d, want 1", idx)
	}
}

// classGauges builds a probe reply carrying the per-class block:
// rows[i] is (sessions, p99 wait nanos) for wire class i+1.
func classGauges(sessions uint32, rows [3][2]uint64) *protocol.StatsReply {
	r := &protocol.StatsReply{
		SessionsLive: sessions,
		Devices:      []protocol.DeviceStats{{}},
		HasClasses:   true,
	}
	for i, row := range rows {
		r.Classes[i] = protocol.ClassLoad{Sessions: uint32(row[0]), P99WaitNanos: row[1]}
	}
	return r
}

func TestClassAwareRanking(t *testing.T) {
	p := newTestPlacer(ClassAware, 3)
	// Endpoint 0: calm realtime row but crowded batch; endpoint 1 the
	// reverse; endpoint 2 reports no class block (scheduler off).
	p.NoteProbe(0, classGauges(4, [3][2]uint64{{1, 100}, {5, 9_000_000}, {0, 0}}), nil)
	p.NoteProbe(1, classGauges(4, [3][2]uint64{{3, 7_000_000}, {1, 200}, {0, 0}}), nil)
	p.NoteProbe(2, gauges(0, 0, 0), nil)

	// A realtime job goes where realtime p99 wait is lowest.
	if idx, _ := p.Pick(JobSpec{Class: protocol.SchedClassRealtime}, nil); idx != 0 {
		t.Fatalf("realtime pick = %d, want 0", idx)
	}
	// A batch job (and the unspecified default) goes the other way.
	if idx, _ := p.Pick(JobSpec{Class: protocol.SchedClassBatch}, nil); idx != 1 {
		t.Fatalf("batch pick = %d, want 1", idx)
	}
	if idx, _ := p.Pick(JobSpec{}, nil); idx != 1 {
		t.Fatalf("unspecified pick = %d, want 1 (batch default)", idx)
	}
	// A scheduler-reporting endpoint beats a blind one even when the blind
	// one is idle; the blind one remains a last resort.
	if idx, _ := p.Pick(JobSpec{Class: protocol.SchedClassRealtime}, map[int]bool{0: true}); idx != 1 {
		t.Fatalf("realtime spill pick = %d, want 1", idx)
	}
	if idx, _ := p.Pick(JobSpec{Class: protocol.SchedClassRealtime}, map[int]bool{0: true, 1: true}); idx != 2 {
		t.Fatalf("last-resort pick = %d, want 2", idx)
	}
}

func TestClassAwareTieBreaks(t *testing.T) {
	p := newTestPlacer(ClassAware, 2)
	// Equal p99 wait: fewer sessions of the class wins.
	p.NoteProbe(0, classGauges(2, [3][2]uint64{{4, 500}, {0, 0}, {0, 0}}), nil)
	p.NoteProbe(1, classGauges(2, [3][2]uint64{{1, 500}, {0, 0}, {0, 0}}), nil)
	if idx, _ := p.Pick(JobSpec{Class: protocol.SchedClassRealtime}, nil); idx != 1 {
		t.Fatalf("session tiebreak pick = %d, want 1", idx)
	}
	// Full class tie: overall load decides, including the stampede guard.
	p.NoteProbe(0, classGauges(1, [3][2]uint64{{1, 500}, {0, 0}, {0, 0}}), nil)
	p.NoteProbe(1, classGauges(5, [3][2]uint64{{1, 500}, {0, 0}, {0, 0}}), nil)
	if idx, _ := p.Pick(JobSpec{Class: protocol.SchedClassRealtime}, nil); idx != 0 {
		t.Fatalf("load tiebreak pick = %d, want 0", idx)
	}
	// No probes at all: the policy still places (registration order).
	blind := newTestPlacer(ClassAware, 2)
	if idx, ok := blind.Pick(JobSpec{Class: protocol.SchedClassRealtime}, nil); !ok || idx != 0 {
		t.Fatalf("unprobed pick = %d, %v; want 0, true", idx, ok)
	}
}

func TestPickPrefersUpFallsBackToDown(t *testing.T) {
	p := newTestPlacer(LeastLoaded, 2)
	p.NoteProbe(0, gauges(0, 0, 0), nil)
	p.NoteProbe(1, gauges(9, 0, 0), nil)
	p.NoteFailure(0, errors.New("connection refused"))

	// The loaded-but-up endpoint beats the idle-but-down one.
	if idx, _ := p.Pick(JobSpec{}, nil); idx != 1 {
		t.Fatalf("pick = %d, want 1 (up beats down)", idx)
	}
	// When every up endpoint is excluded, a markdown is only advisory.
	if idx, ok := p.Pick(JobSpec{}, map[int]bool{1: true}); !ok || idx != 0 {
		t.Fatalf("fallback pick = %d, %v; want 0, true", idx, ok)
	}
}

func TestRetireExcludesButKeepsSlot(t *testing.T) {
	p := newTestPlacer(LeastLoaded, 3)
	p.NoteProbe(1, gauges(0, 0, 0), nil) // idle: would win every pick
	p.Retire(1)
	p.Retire(1) // idempotent

	if idx, _ := p.Pick(JobSpec{}, nil); idx == 1 {
		t.Fatal("picked a retired endpoint")
	}
	if got := p.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3 (slots are stable)", got)
	}
	if got := p.ActiveLen(); got != 2 {
		t.Fatalf("ActiveLen = %d, want 2", got)
	}
	if s := p.Stats(); s.Retirements != 1 {
		t.Fatalf("Retirements = %d, want 1", s.Retirements)
	}
	eps := p.Endpoints()
	if !eps[1].Retired || eps[0].Retired || eps[2].Retired {
		t.Fatalf("Endpoints retired flags wrong: %+v", eps)
	}
	// Retiring everything leaves nothing to pick.
	p.Retire(0)
	p.Retire(2)
	if _, ok := p.Pick(JobSpec{}, nil); ok {
		t.Fatal("pick succeeded on a fully retired placer")
	}
}

func TestPoolAddRetireEndpoint(t *testing.T) {
	p, err := New([]Endpoint{{Name: "a", Dial: nil}})
	if err == nil {
		p.Close()
		t.Fatal("New accepted an endpoint with no Dial")
	}

	p, err = New([]Endpoint{{Name: "a", Dial: badDial}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()

	if _, err := p.AddEndpoint(Endpoint{Name: "b"}); err == nil {
		t.Fatal("AddEndpoint accepted an endpoint with no Dial")
	}
	idx, err := p.AddEndpoint(Endpoint{Name: "b", Dial: badDial})
	if err != nil || idx != 1 {
		t.Fatalf("AddEndpoint = %d, %v", idx, err)
	}
	if got := p.size(); got != 2 {
		t.Fatalf("size = %d, want 2", got)
	}

	p.RetireEndpoint(1)
	p.RetireEndpoint(99) // out of range: ignored
	eps := p.Endpoints()
	if !eps[1].Retired {
		t.Fatalf("endpoint 1 not retired: %+v", eps)
	}
	if s := p.Stats(); s.Retirements != 1 {
		t.Fatalf("Retirements = %d, want 1", s.Retirements)
	}
}
