package broker

import (
	"math"
	"testing"

	"rcuda/internal/calib"
	"rcuda/internal/netsim"
)

// MakespanTolerance is the stated bound on how far the live pool's
// makespan may deviate from the cluster simulator's list-scheduling
// prediction: the residual is the difference between real wire framing and
// the analytic per-size transfer model.
const MakespanTolerance = 0.05

// experimentJobs is the workload both the live pool and the predictor
// schedule: a deterministic mix of MM and FFT jobs, small enough to execute
// functionally.
func experimentJobs() []SimJob {
	sizes := []struct {
		cs   calib.CaseStudy
		size int
	}{
		{calib.MM, 128}, {calib.FFT, 16}, {calib.MM, 64},
		{calib.FFT, 32}, {calib.MM, 128}, {calib.MM, 48},
		{calib.FFT, 16}, {calib.MM, 96}, {calib.FFT, 8},
	}
	jobs := make([]SimJob, len(sizes))
	for i, s := range sizes {
		jobs[i] = SimJob{ID: i, CS: s.cs, Size: s.size}
	}
	return jobs
}

// TestLiveMakespanMatchesPrediction is the acceptance experiment: the live
// broker under least-loaded placement must land within MakespanTolerance of
// cluster.Simulate's prediction for the same jobs, servers, and policy.
func TestLiveMakespanMatchesPrediction(t *testing.T) {
	res, err := SimulateLive(netsim.IB40G(), 3, experimentJobs(), LeastLoaded)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || res.Predicted <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	delta := res.Delta()
	t.Logf("live makespan %v, predicted %v, delta %+.2f%%, placements %v",
		res.Makespan, res.Predicted, 100*delta, res.Placements)
	if math.Abs(delta) > MakespanTolerance {
		t.Fatalf("live makespan %v deviates %+.1f%% from prediction %v (tolerance %.0f%%)",
			res.Makespan, 100*delta, res.Predicted, 100*MakespanTolerance)
	}
	if res.Stats.Failovers != 0 || res.Stats.Spills != 0 {
		t.Fatalf("clean run recorded faults: %+v", res.Stats)
	}
	// Every server must have been used: a pool that piles everything on
	// one server can still pass a loose makespan bound on light loads.
	used := map[int]bool{}
	for _, p := range res.Placements {
		used[p] = true
	}
	if len(used) != 3 {
		t.Fatalf("placements %v left servers idle", res.Placements)
	}
}

// TestLiveMakespanDeterministic locks the experiment's byte-stability: the
// EXPERIMENTS.md table is generated from these numbers.
func TestLiveMakespanDeterministic(t *testing.T) {
	a, err := SimulateLive(netsim.IB40G(), 3, experimentJobs(), LeastLoaded)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateLive(netsim.IB40G(), 3, experimentJobs(), LeastLoaded)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Predicted != b.Predicted {
		t.Fatalf("nondeterministic experiment: %v/%v vs %v/%v",
			a.Makespan, a.Predicted, b.Makespan, b.Predicted)
	}
	for i := range a.Placements {
		if a.Placements[i] != b.Placements[i] {
			t.Fatalf("nondeterministic placements: %v vs %v", a.Placements, b.Placements)
		}
	}
}
