package kernels

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"rcuda/internal/cudart"
	"rcuda/internal/gpu"
	"rcuda/internal/vclock"
)

func openJacobi(t *testing.T) (*cudart.Local, *vclock.Sim) {
	t.Helper()
	clk := vclock.NewSim()
	dev := gpu.New(gpu.Config{Clock: clk})
	mod, err := gpu.LookupModule(JacobiModule)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := cudart.OpenLocal(dev, mod, cudart.Preinitialized())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	return rt, clk
}

func TestJacobiModuleImage(t *testing.T) {
	img, err := JacobiModuleImage()
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != jacobiModuleBytes {
		t.Fatalf("image %d bytes, want %d", len(img), jacobiModuleBytes)
	}
	if _, err := gpu.ResolveModule(img); err != nil {
		t.Fatal(err)
	}
}

func TestJacobiStepMatchesCPU(t *testing.T) {
	rt, _ := openJacobi(t)
	const w, h = 17, 13
	rng := rand.New(rand.NewSource(1))
	grid := make([]float32, w*h)
	for i := range grid {
		grid[i] = rng.Float32()
	}
	bytes := uint32(4 * w * h)
	src, _ := rt.Malloc(bytes)
	dst, _ := rt.Malloc(bytes)
	if err := rt.MemcpyToDevice(src, cudart.Float32Bytes(grid)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Launch(JacobiKernel, cudart.Dim3{X: 2, Y: 2}, cudart.Dim3{X: 16, Y: 16}, 0,
		gpu.PackParams(uint32(src), uint32(dst), w, h)); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, bytes)
	if err := rt.MemcpyToHost(out, dst); err != nil {
		t.Fatal(err)
	}
	want := JacobiCPU(grid, w, h)
	for i, v := range cudart.BytesFloat32(out) {
		if math.Abs(float64(v-want[i])) > 1e-6 {
			t.Fatalf("cell %d = %g, want %g", i, v, want[i])
		}
	}
}

func TestJacobiConvergesToLaplaceSolution(t *testing.T) {
	// With boundary 0 everywhere except one hot edge, repeated Jacobi
	// steps approach the harmonic solution; after many iterations the
	// residual between successive steps must shrink.
	rt, _ := openJacobi(t)
	const w, h = 16, 16
	grid := make([]float32, w*h)
	for j := 0; j < w; j++ {
		grid[j] = 100 // hot top edge
	}
	bytes := uint32(4 * w * h)
	a, _ := rt.Malloc(bytes)
	b, _ := rt.Malloc(bytes)
	if err := rt.MemcpyToDevice(a, cudart.Float32Bytes(grid)); err != nil {
		t.Fatal(err)
	}
	// The ping-pong target must hold the same boundary.
	if err := rt.MemcpyToDevice(b, cudart.Float32Bytes(grid)); err != nil {
		t.Fatal(err)
	}
	src, dst := a, b
	for iter := 0; iter < 200; iter++ {
		if err := rt.Launch(JacobiKernel, cudart.Dim3{X: 1}, cudart.Dim3{X: 256}, 0,
			gpu.PackParams(uint32(src), uint32(dst), w, h)); err != nil {
			t.Fatal(err)
		}
		src, dst = dst, src
	}
	out := make([]byte, bytes)
	if err := rt.MemcpyToHost(out, src); err != nil {
		t.Fatal(err)
	}
	final := cudart.BytesFloat32(out)
	// Interior center should have warmed well above zero but stay below
	// the hot edge.
	center := final[(h/2)*w+w/2]
	if center <= 1 || center >= 100 {
		t.Fatalf("center after 200 iterations = %g, want within (1, 100)", center)
	}
	// Monotone vertical gradient away from the hot edge at the middle
	// column (harmonic functions have no interior extrema).
	col := w / 2
	for i := 1; i < h-1; i++ {
		if final[i*w+col] > final[(i-1)*w+col]+1e-3 {
			t.Fatalf("temperature rises away from the hot edge at row %d", i)
		}
	}
}

func TestJacobiCostIsMemoryBound(t *testing.T) {
	rt, clk := openJacobi(t)
	const w, h = 512, 512
	bytes := uint32(4 * w * h)
	src, _ := rt.Malloc(bytes)
	dst, _ := rt.Malloc(bytes)
	_ = rt.MemcpyToDevice(src, make([]byte, bytes))
	before := clk.Now()
	if err := rt.Launch(JacobiKernel, cudart.Dim3{X: 32, Y: 32}, cudart.Dim3{X: 16, Y: 16}, 0,
		gpu.PackParams(uint32(src), uint32(dst), w, h)); err != nil {
		t.Fatal(err)
	}
	elapsed := clk.Now() - before
	// 3 sweeps of 1 MiB at ~73 GB/s ≈ 40 µs; well under a millisecond.
	if elapsed <= 0 || elapsed > time.Millisecond {
		t.Fatalf("jacobi cost %v out of the memory-bound range", elapsed)
	}
}

func TestJacobiParamErrors(t *testing.T) {
	rt, _ := openJacobi(t)
	buf, _ := rt.Malloc(64)
	if err := rt.Launch(JacobiKernel, cudart.Dim3{}, cudart.Dim3{}, 0,
		gpu.PackParams(uint32(buf), uint32(buf), 4, 4)); err == nil {
		t.Fatal("aliased ping-pong buffers must fail")
	}
	if err := rt.Launch(JacobiKernel, cudart.Dim3{}, cudart.Dim3{}, 0,
		gpu.PackParams(uint32(buf), uint32(buf)+64, 2, 2)); err == nil {
		t.Fatal("tiny grid must fail")
	}
	if err := rt.Launch(JacobiKernel, cudart.Dim3{}, cudart.Dim3{}, 0,
		gpu.PackParams(1, 2)); err == nil {
		t.Fatal("short params must fail")
	}
}

func TestJacobiCPUReference(t *testing.T) {
	in := []float32{
		0, 0, 0,
		0, 8, 0,
		0, 0, 0,
	}
	out := JacobiCPU(in, 3, 3)
	if out[4] != 0 {
		t.Fatalf("center = %g, want average of zero neighbors", out[4])
	}
	in[1] = 4 // top middle
	out = JacobiCPU(in, 3, 3)
	if out[4] != 1 {
		t.Fatalf("center = %g, want 1", out[4])
	}
}
