// Package kernels provides the GPU modules of the two case studies: a
// single-precision matrix-multiply kernel and a batched 512-point FFT
// kernel, standing in for Volkov's implementations on the Tesla C1060.
//
// Each kernel has two halves, per the gpu package contract: Run computes
// real results against device memory (validated by tests), and Cost reports
// the calibrated Tesla C1060 execution time that advances the simulation
// clock. Modules register themselves with the device's module registry at
// package initialization, so importing this package (directly, or through
// the server binary) makes the case studies launchable; the module binary
// images have the exact sizes the paper reports (21,486 and 7,852 bytes).
package kernels

import (
	"fmt"
	"time"

	"rcuda/internal/blas"
	"rcuda/internal/calib"
	"rcuda/internal/cudart"
	"rcuda/internal/fft"
	"rcuda/internal/gpu"
)

// Module and kernel names.
const (
	// MMModule is the matrix-multiply GPU module of the first case study.
	MMModule = "volkov_sgemm"
	// SgemmKernel computes C = A·B on square m×m single-precision
	// matrices. Parameters: aPtr, bPtr, cPtr, m.
	SgemmKernel = "sgemmNN"

	// FFTModule is the batched-FFT GPU module of the second case study.
	FFTModule = "volkov_fft"
	// FFTKernel computes `batch` independent in-place 512-point complex
	// transforms. Parameters: dataPtr, batch, direction (0 forward,
	// 1 inverse).
	FFTKernel = "fft512"
)

func init() {
	gpu.RegisterModule(&gpu.Module{
		Name:       MMModule,
		BinarySize: calib.ModuleBytes(calib.MM),
		Kernels:    []*gpu.Kernel{sgemmKernel()},
	})
	gpu.RegisterModule(&gpu.Module{
		Name:       FFTModule,
		BinarySize: calib.ModuleBytes(calib.FFT),
		Kernels:    []*gpu.Kernel{fftKernel()},
	})
}

// ModuleFor returns the registered module for a case study.
func ModuleFor(cs calib.CaseStudy) (*gpu.Module, error) {
	if cs == calib.MM {
		return gpu.LookupModule(MMModule)
	}
	return gpu.LookupModule(FFTModule)
}

func sgemmKernel() *gpu.Kernel {
	return &gpu.Kernel{
		Name: SgemmKernel,
		Run: func(ec *gpu.ExecContext) error {
			aPtr, bPtr, cPtr, m, err := sgemmParams(ec)
			if err != nil {
				return err
			}
			bytes := 4 * m * m
			aMem, err := ec.Mem(aPtr, bytes)
			if err != nil {
				return fmt.Errorf("A: %w", err)
			}
			bMem, err := ec.Mem(bPtr, bytes)
			if err != nil {
				return fmt.Errorf("B: %w", err)
			}
			cMem, err := ec.Mem(cPtr, bytes)
			if err != nil {
				return fmt.Errorf("C: %w", err)
			}
			a := cudart.BytesFloat32(aMem)
			b := cudart.BytesFloat32(bMem)
			c := make([]float32, int(m)*int(m))
			if err := blas.Sgemm(int(m), int(m), int(m), a, b, c); err != nil {
				return err
			}
			copy(cMem, cudart.Float32Bytes(c))
			return nil
		},
		Cost: func(ec *gpu.ExecContext) time.Duration {
			_, _, _, m, err := sgemmParams(ec)
			if err != nil {
				return 0
			}
			return calib.KernelTime(calib.MM, int(m))
		},
	}
}

func sgemmParams(ec *gpu.ExecContext) (aPtr, bPtr, cPtr, m uint32, err error) {
	read := func() uint32 {
		v, e := ec.Params.U32()
		if e != nil && err == nil {
			err = e
		}
		return v
	}
	aPtr, bPtr, cPtr, m = read(), read(), read(), read()
	if err == nil && m == 0 {
		err = fmt.Errorf("kernels: %s with zero dimension", SgemmKernel)
	}
	return aPtr, bPtr, cPtr, m, err
}

func fftKernel() *gpu.Kernel {
	return &gpu.Kernel{
		Name: FFTKernel,
		Run: func(ec *gpu.ExecContext) error {
			ptr, batch, dir, err := fftParams(ec)
			if err != nil {
				return err
			}
			mem, err := ec.Mem(ptr, batch*fft.BytesPerTransform)
			if err != nil {
				return err
			}
			signal := cudart.BytesComplex64(mem)
			d := fft.Forward
			if dir == 1 {
				d = fft.Inverse
			}
			if err := fft.TransformBatch(d, signal, fft.Points); err != nil {
				return err
			}
			copy(mem, cudart.Complex64Bytes(signal))
			return nil
		},
		Cost: func(ec *gpu.ExecContext) time.Duration {
			_, batch, _, err := fftParams(ec)
			if err != nil {
				return 0
			}
			return calib.KernelTime(calib.FFT, int(batch))
		},
	}
}

func fftParams(ec *gpu.ExecContext) (ptr, batch, dir uint32, err error) {
	read := func() uint32 {
		v, e := ec.Params.U32()
		if e != nil && err == nil {
			err = e
		}
		return v
	}
	ptr, batch, dir = read(), read(), read()
	if err == nil {
		if batch == 0 {
			err = fmt.Errorf("kernels: %s with zero batch", FFTKernel)
		} else if dir > 1 {
			err = fmt.Errorf("kernels: %s with direction %d", FFTKernel, dir)
		}
	}
	return ptr, batch, dir, err
}
