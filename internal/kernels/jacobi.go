package kernels

import (
	"fmt"
	"time"

	"rcuda/internal/cudart"
	"rcuda/internal/gpu"
)

// Jacobi 2-D stencil module — a third application beyond the paper's two
// case studies, standing in for the computational-fluid-dynamics workloads
// the paper's introduction motivates. An iterative solver is the ideal
// rCUDA citizen: the grid is uploaded once, every iteration is a single
// ~70-byte launch message (the ping-pong buffers swap client-side), and
// only the final grid comes back.
const (
	// JacobiModule is the stencil GPU module.
	JacobiModule = "jacobi2d"
	// JacobiKernel performs one Jacobi relaxation step. Parameters:
	// srcPtr, dstPtr, width, height. Interior points become the average
	// of their four neighbors; boundary rows and columns are copied.
	JacobiKernel = "jacobi_step"
)

// jacobiModuleBytes is the synthetic module image size; the stencil kernel
// is tiny compared to the case-study modules.
const jacobiModuleBytes = 3072

func init() {
	gpu.RegisterModule(&gpu.Module{
		Name:       JacobiModule,
		BinarySize: jacobiModuleBytes,
		Kernels:    []*gpu.Kernel{jacobiKernel()},
	})
}

// JacobiModuleImage returns the stencil module's wire image.
func JacobiModuleImage() ([]byte, error) {
	mod, err := gpu.LookupModule(JacobiModule)
	if err != nil {
		return nil, err
	}
	return mod.Binary()
}

func jacobiKernel() *gpu.Kernel {
	return &gpu.Kernel{
		Name: JacobiKernel,
		Run: func(ec *gpu.ExecContext) error {
			src, dst, w, h, err := jacobiParams(ec)
			if err != nil {
				return err
			}
			bytes := 4 * w * h
			srcMem, err := ec.Mem(src, bytes)
			if err != nil {
				return fmt.Errorf("src: %w", err)
			}
			dstMem, err := ec.Mem(dst, bytes)
			if err != nil {
				return fmt.Errorf("dst: %w", err)
			}
			in := cudart.BytesFloat32(srcMem)
			out := make([]float32, len(in))
			W, H := int(w), int(h)
			for i := 0; i < H; i++ {
				for j := 0; j < W; j++ {
					idx := i*W + j
					if i == 0 || j == 0 || i == H-1 || j == W-1 {
						out[idx] = in[idx] // fixed boundary
						continue
					}
					out[idx] = 0.25 * (in[idx-W] + in[idx+W] + in[idx-1] + in[idx+1])
				}
			}
			copy(dstMem, cudart.Float32Bytes(out))
			return nil
		},
		Cost: func(ec *gpu.ExecContext) time.Duration {
			src, _, w, h, err := jacobiParams(ec)
			_ = src
			if err != nil {
				return 0
			}
			// The stencil is memory-bound on the C1060: one streaming
			// read and one write of the grid plus neighbor re-reads
			// served mostly from shared memory — model it as three
			// grid sweeps at device-memory bandwidth.
			return 3 * ec.Device().MemsetTime(int64(4*w*h))
		},
	}
}

func jacobiParams(ec *gpu.ExecContext) (src, dst, w, h uint32, err error) {
	read := func() uint32 {
		v, e := ec.Params.U32()
		if e != nil && err == nil {
			err = e
		}
		return v
	}
	src, dst, w, h = read(), read(), read(), read()
	if err == nil {
		switch {
		case w < 3 || h < 3:
			err = fmt.Errorf("kernels: %s grid %dx%d too small", JacobiKernel, w, h)
		case src == dst:
			err = fmt.Errorf("kernels: %s requires distinct ping-pong buffers", JacobiKernel)
		}
	}
	return src, dst, w, h, err
}

// JacobiCPU performs one reference relaxation step on the host, used by
// tests and the example to verify the device results.
func JacobiCPU(in []float32, w, h int) []float32 {
	out := make([]float32, len(in))
	for i := 0; i < h; i++ {
		for j := 0; j < w; j++ {
			idx := i*w + j
			if i == 0 || j == 0 || i == h-1 || j == w-1 {
				out[idx] = in[idx]
				continue
			}
			out[idx] = 0.25 * (in[idx-w] + in[idx+w] + in[idx-1] + in[idx+1])
		}
	}
	return out
}
