package kernels

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"time"

	"rcuda/internal/blas"
	"rcuda/internal/calib"
	"rcuda/internal/cudart"
	"rcuda/internal/fft"
	"rcuda/internal/gpu"
	"rcuda/internal/vclock"
)

func openRuntime(t *testing.T, cs calib.CaseStudy) (*cudart.Local, *vclock.Sim) {
	t.Helper()
	clk := vclock.NewSim()
	dev := gpu.New(gpu.Config{Clock: clk})
	mod, err := ModuleFor(cs)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := cudart.OpenLocal(dev, mod, cudart.Preinitialized())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	return rt, clk
}

func TestModulesRegisteredWithPaperSizes(t *testing.T) {
	mm, err := gpu.LookupModule(MMModule)
	if err != nil {
		t.Fatal(err)
	}
	img, err := mm.Binary()
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != 21486 {
		t.Fatalf("MM module image = %d bytes, want 21486", len(img))
	}
	fftMod, err := gpu.LookupModule(FFTModule)
	if err != nil {
		t.Fatal(err)
	}
	img, err = fftMod.Binary()
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != 7852 {
		t.Fatalf("FFT module image = %d bytes, want 7852", len(img))
	}
}

func TestSgemmKernelComputesProduct(t *testing.T) {
	rt, _ := openRuntime(t, calib.MM)
	const m = 48
	rng := rand.New(rand.NewSource(1))
	a := make([]float32, m*m)
	b := make([]float32, m*m)
	for i := range a {
		a[i] = rng.Float32()*2 - 1
		b[i] = rng.Float32()*2 - 1
	}
	bytes := uint32(4 * m * m)
	aPtr, _ := rt.Malloc(bytes)
	bPtr, _ := rt.Malloc(bytes)
	cPtr, _ := rt.Malloc(bytes)
	if err := rt.MemcpyToDevice(aPtr, cudart.Float32Bytes(a)); err != nil {
		t.Fatal(err)
	}
	if err := rt.MemcpyToDevice(bPtr, cudart.Float32Bytes(b)); err != nil {
		t.Fatal(err)
	}
	err := rt.Launch(SgemmKernel, cudart.Dim3{X: m / 16, Y: m / 16}, cudart.Dim3{X: 16, Y: 16}, 0,
		gpu.PackParams(uint32(aPtr), uint32(bPtr), uint32(cPtr), m))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, bytes)
	if err := rt.MemcpyToHost(out, cPtr); err != nil {
		t.Fatal(err)
	}
	got := cudart.BytesFloat32(out)
	want := make([]float32, m*m)
	if err := blas.SgemmNaive(m, m, m, a, b, want); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-3 {
			t.Fatalf("C[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestSgemmKernelCostIsCalibrated(t *testing.T) {
	rt, clk := openRuntime(t, calib.MM)
	const m = 256
	bytes := uint32(4 * m * m)
	aPtr, _ := rt.Malloc(bytes)
	bPtr, _ := rt.Malloc(bytes)
	cPtr, _ := rt.Malloc(bytes)
	_ = rt.MemcpyToDevice(aPtr, make([]byte, bytes))
	_ = rt.MemcpyToDevice(bPtr, make([]byte, bytes))
	before := clk.Now()
	if err := rt.Launch(SgemmKernel, cudart.Dim3{X: 16}, cudart.Dim3{X: 16}, 0,
		gpu.PackParams(uint32(aPtr), uint32(bPtr), uint32(cPtr), m)); err != nil {
		t.Fatal(err)
	}
	if got, want := clk.Now()-before, calib.KernelTime(calib.MM, m); got != want {
		t.Fatalf("kernel charged %v, want calibrated %v", got, want)
	}
}

func TestSgemmKernelErrors(t *testing.T) {
	rt, _ := openRuntime(t, calib.MM)
	// Zero dimension.
	if err := rt.Launch(SgemmKernel, cudart.Dim3{}, cudart.Dim3{}, 0,
		gpu.PackParams(0, 0, 0, 0)); err == nil {
		t.Fatal("zero dimension must fail")
	}
	// Truncated parameter block.
	if err := rt.Launch(SgemmKernel, cudart.Dim3{}, cudart.Dim3{}, 0,
		gpu.PackParams(1, 2)); err == nil {
		t.Fatal("short params must fail")
	}
	// Bad device pointers.
	if err := rt.Launch(SgemmKernel, cudart.Dim3{}, cudart.Dim3{}, 0,
		gpu.PackParams(4, 8, 12, 16)); err == nil {
		t.Fatal("invalid pointers must fail")
	}
}

func TestFFTKernelMatchesReference(t *testing.T) {
	rt, _ := openRuntime(t, calib.FFT)
	const batch = 3
	rng := rand.New(rand.NewSource(2))
	signal := make([]complex64, batch*fft.Points)
	for i := range signal {
		signal[i] = complex(rng.Float32()*2-1, rng.Float32()*2-1)
	}
	data := cudart.Complex64Bytes(signal)
	ptr, err := rt.Malloc(uint32(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.MemcpyToDevice(ptr, data); err != nil {
		t.Fatal(err)
	}
	if err := rt.Launch(FFTKernel, cudart.Dim3{X: batch}, cudart.Dim3{X: 64}, 0,
		gpu.PackParams(uint32(ptr), batch, 0)); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(data))
	if err := rt.MemcpyToHost(out, ptr); err != nil {
		t.Fatal(err)
	}
	got := cudart.BytesComplex64(out)
	want := append([]complex64(nil), signal...)
	if err := fft.TransformBatch(fft.Forward, want, fft.Points); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if cmplx.Abs(complex128(got[i]-want[i])) > 1e-3 {
			t.Fatalf("point %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFFTKernelInverseRoundTrip(t *testing.T) {
	rt, _ := openRuntime(t, calib.FFT)
	const batch = 2
	rng := rand.New(rand.NewSource(3))
	signal := make([]complex64, batch*fft.Points)
	for i := range signal {
		signal[i] = complex(rng.Float32(), rng.Float32())
	}
	data := cudart.Complex64Bytes(signal)
	ptr, _ := rt.Malloc(uint32(len(data)))
	_ = rt.MemcpyToDevice(ptr, data)
	if err := rt.Launch(FFTKernel, cudart.Dim3{X: batch}, cudart.Dim3{X: 64}, 0,
		gpu.PackParams(uint32(ptr), batch, 0)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Launch(FFTKernel, cudart.Dim3{X: batch}, cudart.Dim3{X: 64}, 0,
		gpu.PackParams(uint32(ptr), batch, 1)); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(data))
	_ = rt.MemcpyToHost(out, ptr)
	got := cudart.BytesComplex64(out)
	for i := range signal {
		if cmplx.Abs(complex128(got[i]-signal[i])) > 1e-3 {
			t.Fatalf("round trip point %d = %v, want %v", i, got[i], signal[i])
		}
	}
}

func TestFFTKernelCostIsCalibrated(t *testing.T) {
	rt, clk := openRuntime(t, calib.FFT)
	const batch = 8
	data := make([]byte, batch*fft.BytesPerTransform)
	ptr, _ := rt.Malloc(uint32(len(data)))
	_ = rt.MemcpyToDevice(ptr, data)
	before := clk.Now()
	if err := rt.Launch(FFTKernel, cudart.Dim3{X: batch}, cudart.Dim3{X: 64}, 0,
		gpu.PackParams(uint32(ptr), batch, 0)); err != nil {
		t.Fatal(err)
	}
	if got, want := clk.Now()-before, calib.KernelTime(calib.FFT, batch); got != want {
		t.Fatalf("kernel charged %v, want calibrated %v", got, want)
	}
}

func TestFFTKernelErrors(t *testing.T) {
	rt, _ := openRuntime(t, calib.FFT)
	if err := rt.Launch(FFTKernel, cudart.Dim3{}, cudart.Dim3{}, 0,
		gpu.PackParams(0, 0, 0)); err == nil {
		t.Fatal("zero batch must fail")
	}
	if err := rt.Launch(FFTKernel, cudart.Dim3{}, cudart.Dim3{}, 0,
		gpu.PackParams(0, 1, 7)); err == nil {
		t.Fatal("bad direction must fail")
	}
}

func TestModuleFor(t *testing.T) {
	mm, err := ModuleFor(calib.MM)
	if err != nil || mm.Name != MMModule {
		t.Fatalf("ModuleFor(MM) = %v, %v", mm, err)
	}
	f, err := ModuleFor(calib.FFT)
	if err != nil || f.Name != FFTModule {
		t.Fatalf("ModuleFor(FFT) = %v, %v", f, err)
	}
}

func TestCostMonotoneAcrossPaperSizes(t *testing.T) {
	var prev time.Duration
	for _, m := range calib.Sizes(calib.MM) {
		k := calib.KernelTime(calib.MM, m)
		if k <= prev {
			t.Fatalf("MM kernel cost not monotone at %d", m)
		}
		prev = k
	}
}

func TestComplexByteHelpersRoundTrip(t *testing.T) {
	in := []complex64{1, complex(0, -1), complex(3.5, 2.25)}
	got := cudart.BytesComplex64(cudart.Complex64Bytes(in))
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("round trip %d: %v != %v", i, got[i], in[i])
		}
	}
}
