package des

import (
	"testing"
	"time"
)

func TestSingleProcessHolds(t *testing.T) {
	s := New()
	var at1, at2 time.Duration
	s.Spawn("p", 0, func(p *Process) {
		p.Hold(5 * time.Millisecond)
		at1 = p.Now()
		p.Hold(3 * time.Millisecond)
		at2 = p.Now()
	})
	end := s.Run()
	if at1 != 5*time.Millisecond || at2 != 8*time.Millisecond {
		t.Fatalf("holds landed at %v, %v", at1, at2)
	}
	if end != 8*time.Millisecond {
		t.Fatalf("final time %v", end)
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	s := New()
	var order []string
	log := func(p *Process) { order = append(order, p.Name()) }
	s.Spawn("a", 0, func(p *Process) {
		log(p) // t=0
		p.Hold(10 * time.Millisecond)
		log(p) // t=10
	})
	s.Spawn("b", 0, func(p *Process) {
		log(p) // t=0 (after a: spawn order breaks the tie)
		p.Hold(5 * time.Millisecond)
		log(p) // t=5
	})
	s.Run()
	want := []string{"a", "b", "b", "a"}
	if len(order) != len(want) {
		t.Fatalf("order %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestStartOffsets(t *testing.T) {
	s := New()
	var started time.Duration
	s.Spawn("late", 7*time.Millisecond, func(p *Process) { started = p.Now() })
	s.Run()
	if started != 7*time.Millisecond {
		t.Fatalf("late process started at %v", started)
	}
	// Negative offsets clamp to now.
	s2 := New()
	s2.Spawn("neg", -time.Second, func(p *Process) { started = p.Now() })
	s2.Run()
	if started != 0 {
		t.Fatalf("negative offset started at %v", started)
	}
}

func TestResourceSerializes(t *testing.T) {
	s := New()
	r := s.NewResource("gpu", 1)
	var ends []time.Duration
	for i := 0; i < 3; i++ {
		s.Spawn("w", 0, func(p *Process) {
			r.Acquire(p)
			p.Hold(10 * time.Millisecond)
			r.Release(p)
			ends = append(ends, p.Now())
		})
	}
	end := s.Run()
	if end != 30*time.Millisecond {
		t.Fatalf("three exclusive 10ms jobs end at %v, want 30ms", end)
	}
	want := []time.Duration{10, 20, 30}
	for i, e := range ends {
		if e != want[i]*time.Millisecond {
			t.Fatalf("job %d ended at %v (FIFO violated?)", i, e)
		}
	}
	if u := r.Utilization(); u < 0.999 || u > 1.001 {
		t.Fatalf("utilization %v, want 1.0", u)
	}
}

func TestResourceCapacityTwoOverlaps(t *testing.T) {
	s := New()
	r := s.NewResource("pool", 2)
	for i := 0; i < 4; i++ {
		s.Spawn("w", 0, func(p *Process) {
			r.Acquire(p)
			p.Hold(10 * time.Millisecond)
			r.Release(p)
		})
	}
	if end := s.Run(); end != 20*time.Millisecond {
		t.Fatalf("4 jobs on capacity 2 end at %v, want 20ms", end)
	}
}

func TestResourceFIFOUnderContention(t *testing.T) {
	s := New()
	r := s.NewResource("link", 1)
	var order []string
	s.Spawn("holder", 0, func(p *Process) {
		r.Acquire(p)
		p.Hold(10 * time.Millisecond)
		r.Release(p)
	})
	for _, name := range []string{"first", "second"} {
		n := name
		start := time.Millisecond
		if n == "second" {
			start = 2 * time.Millisecond
		}
		s.Spawn(n, start, func(p *Process) {
			r.Acquire(p)
			order = append(order, p.Name())
			p.Hold(time.Millisecond)
			r.Release(p)
		})
	}
	s.Run()
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("waiter order %v", order)
	}
}

func TestUtilizationPartial(t *testing.T) {
	s := New()
	r := s.NewResource("gpu", 1)
	s.Spawn("w", 0, func(p *Process) {
		r.Acquire(p)
		p.Hold(10 * time.Millisecond)
		r.Release(p)
		p.Hold(10 * time.Millisecond) // idle tail
	})
	s.Run()
	if u := r.Utilization(); u < 0.499 || u > 0.501 {
		t.Fatalf("utilization %v, want 0.5", u)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("deadlock must panic")
		}
	}()
	s := New()
	r := s.NewResource("r", 1)
	s.Spawn("a", 0, func(p *Process) {
		r.Acquire(p)
		// Never released; the second acquirer blocks forever.
	})
	s.Spawn("b", 0, func(p *Process) {
		r.Acquire(p)
	})
	s.Run()
}

func TestBadResourceCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity must panic")
		}
	}()
	New().NewResource("r", 0)
}

func TestSpawnDuringRun(t *testing.T) {
	s := New()
	var childAt time.Duration
	s.Spawn("parent", 0, func(p *Process) {
		p.Hold(5 * time.Millisecond)
		s.Spawn("child", 3*time.Millisecond, func(c *Process) {
			childAt = c.Now()
		})
		p.Hold(time.Millisecond)
	})
	s.Run()
	if childAt != 8*time.Millisecond {
		t.Fatalf("child started at %v, want 8ms", childAt)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() time.Duration {
		s := New()
		r := s.NewResource("gpu", 1)
		for i := 0; i < 10; i++ {
			d := time.Duration(i+1) * time.Millisecond
			s.Spawn("w", time.Duration(i)*time.Millisecond/2, func(p *Process) {
				r.Acquire(p)
				p.Hold(d)
				r.Release(p)
			})
		}
		return s.Run()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("runs diverged: %v vs %v", a, b)
	}
}
