package des

import (
	"testing"
	"time"
)

func TestEventLoopOrderAndTies(t *testing.T) {
	l := NewEventLoop()
	var order []int
	l.At(3*time.Millisecond, func() { order = append(order, 3) })
	l.At(time.Millisecond, func() { order = append(order, 1) })
	// Two events at the same instant fire in schedule order.
	l.At(2*time.Millisecond, func() { order = append(order, 20) })
	l.At(2*time.Millisecond, func() { order = append(order, 21) })
	end := l.Run()
	want := []int{1, 20, 21, 3}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
	if end != 3*time.Millisecond {
		t.Fatalf("final time %v, want 3ms", end)
	}
}

func TestEventLoopNestedScheduling(t *testing.T) {
	l := NewEventLoop()
	var ticks []time.Duration
	var tick func()
	tick = func() {
		ticks = append(ticks, l.Now())
		if len(ticks) < 5 {
			l.At(10*time.Millisecond, tick)
		}
	}
	l.At(0, tick)
	l.Run()
	if len(ticks) != 5 || ticks[4] != 40*time.Millisecond {
		t.Fatalf("ticks = %v", ticks)
	}
}

func TestEventLoopStopResume(t *testing.T) {
	l := NewEventLoop()
	var fired int
	l.At(time.Millisecond, func() { fired++; l.Stop() })
	l.At(2*time.Millisecond, func() { fired++ })
	l.Run()
	if fired != 1 || l.Pending() != 1 {
		t.Fatalf("after Stop: fired=%d pending=%d", fired, l.Pending())
	}
	l.Run()
	if fired != 2 || l.Pending() != 0 {
		t.Fatalf("after resume: fired=%d pending=%d", fired, l.Pending())
	}
}

func TestEventLoopNegativeDelayClamps(t *testing.T) {
	l := NewEventLoop()
	var at time.Duration
	l.At(time.Millisecond, func() {
		l.At(-time.Second, func() { at = l.Now() })
	})
	l.Run()
	if at != time.Millisecond {
		t.Fatalf("clamped event fired at %v, want 1ms", at)
	}
}
