// Package des is a deterministic discrete-event simulation engine: named
// processes advance a shared virtual clock by holding for modeled
// durations and queue FIFO on exclusive resources.
//
// The single global virtual clock of package vclock is enough for the
// paper's strictly synchronous single-client executions, but studying
// *contention* — several applications sharing one GPU server and one
// network link, the paper's declared future work — needs genuinely
// concurrent virtual timelines. This engine provides them with the classic
// coroutine construction: exactly one process runs at a time, the
// scheduler resumes the process with the earliest pending event, and ties
// break deterministically in schedule order, so runs are exactly
// reproducible.
package des

import (
	"container/heap"
	"fmt"
	"time"
)

// Simulator owns the event queue and the virtual clock.
type Simulator struct {
	now     time.Duration
	events  eventHeap
	seq     int64
	parked  chan struct{}
	running bool
	active  int // processes spawned and not yet finished
}

// New creates an empty simulator at virtual time zero.
func New() *Simulator {
	return &Simulator{parked: make(chan struct{})}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Process is one simulated thread of control. Its methods must only be
// called from within the function passed to Spawn.
type Process struct {
	sim    *Simulator
	name   string
	resume chan struct{}
}

// Name returns the process name given at Spawn.
func (p *Process) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Process) Now() time.Duration { return p.sim.now }

// Spawn registers a process that starts at the given virtual time offset
// from now. Spawn must be called before Run or from within a running
// process.
func (s *Simulator) Spawn(name string, startAfter time.Duration, fn func(p *Process)) {
	if startAfter < 0 {
		startAfter = 0
	}
	p := &Process{sim: s, name: name, resume: make(chan struct{})}
	s.active++
	s.schedule(s.now+startAfter, p)
	go func() {
		<-p.resume
		fn(p)
		s.active--
		s.parked <- struct{}{}
	}()
}

// schedule enqueues a wake-up for p at the given instant.
func (s *Simulator) schedule(at time.Duration, p *Process) {
	s.seq++
	heap.Push(&s.events, event{at: at, seq: s.seq, p: p})
}

// Run executes the simulation until no events remain, returning the final
// virtual time. It panics on deadlock (processes still active but no
// pending events — a process blocked forever on a resource), which is a
// modeling bug.
func (s *Simulator) Run() time.Duration {
	if s.running {
		panic("des: Run reentered")
	}
	s.running = true
	defer func() { s.running = false }()
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(event)
		if e.at < s.now {
			panic(fmt.Sprintf("des: time went backwards: %v -> %v", s.now, e.at))
		}
		s.now = e.at
		e.p.resume <- struct{}{}
		<-s.parked
	}
	if s.active > 0 {
		panic(fmt.Sprintf("des: deadlock: %d processes blocked with no pending events", s.active))
	}
	return s.now
}

// park suspends the calling process until its next scheduled event.
func (p *Process) park() {
	p.sim.parked <- struct{}{}
	<-p.resume
}

// Hold advances the process's virtual time by d.
func (p *Process) Hold(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.sim.schedule(p.sim.now+d, p)
	p.park()
}

// Resource is an exclusive-capacity resource with a deterministic FIFO
// wait queue (a GPU, a network link, a DMA engine).
type Resource struct {
	sim       *Simulator
	name      string
	capacity  int
	available int
	waiters   []*Process
	// busy accumulates capacity-occupancy time for utilization metrics.
	busy     time.Duration
	lastTick time.Duration
}

// NewResource creates a resource with the given capacity (≥ 1).
func (s *Simulator) NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("des: resource %q needs capacity >= 1", name))
	}
	return &Resource{sim: s, name: name, capacity: capacity, available: capacity}
}

// tick integrates occupancy over time.
func (r *Resource) tick() {
	inUse := r.capacity - r.available
	r.busy += time.Duration(inUse) * (r.sim.now - r.lastTick)
	r.lastTick = r.sim.now
}

// Acquire blocks the process until one unit of the resource is free, then
// takes it. Waiters are served strictly in arrival order.
func (r *Resource) Acquire(p *Process) {
	r.tick()
	if r.available > 0 && len(r.waiters) == 0 {
		r.available--
		return
	}
	r.waiters = append(r.waiters, p)
	p.park()
	// When resumed by Release, the unit has already been transferred.
}

// Release returns one unit; the longest-waiting process (if any) gets it
// immediately at the current virtual time.
func (r *Resource) Release(p *Process) {
	r.tick()
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		// Hand the unit directly to the waiter: availability is
		// unchanged, ownership transfers.
		r.sim.schedule(r.sim.now, next)
		return
	}
	r.available++
	if r.available > r.capacity {
		panic(fmt.Sprintf("des: resource %q over-released", r.name))
	}
}

// BusyTime returns the integrated capacity-occupancy (unit-seconds of use)
// up to the current virtual time.
func (r *Resource) BusyTime() time.Duration {
	r.tick()
	return r.busy
}

// Utilization returns the mean fraction of capacity in use over the span
// from time zero to now.
func (r *Resource) Utilization() float64 {
	if r.sim.now == 0 {
		return 0
	}
	return float64(r.BusyTime()) / float64(time.Duration(r.capacity)*r.sim.now)
}

// event is a heap entry.
type event struct {
	at  time.Duration
	seq int64
	p   *Process
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
