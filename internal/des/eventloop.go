package des

import (
	"container/heap"
	"fmt"
	"time"
)

// EventLoop is the package's second, goroutine-free execution model: timed
// callbacks on a deterministic virtual clock. The coroutine Simulator above
// gives each modeled thread of control its own stack, which reads naturally
// but costs a goroutine per process — fine for a handful of contending
// clients, prohibitive for the load generator's 10^5–10^6 simulated
// sessions. An EventLoop holds only a binary heap of pending callbacks, so
// a million-session run is a few million heap operations on one stack.
//
// Determinism matches the Simulator's: events fire in (time, schedule
// order), so two runs that schedule the same callbacks produce identical
// timelines.
type EventLoop struct {
	now     time.Duration
	events  timerHeap
	seq     int64
	running bool
	stopped bool
}

// NewEventLoop returns an empty loop at virtual time zero.
func NewEventLoop() *EventLoop { return &EventLoop{} }

// Now returns the current virtual time.
func (l *EventLoop) Now() time.Duration { return l.now }

// Pending returns the number of scheduled callbacks not yet fired.
func (l *EventLoop) Pending() int { return len(l.events) }

// At schedules fn to run at now+delay. Negative delays are clamped to now.
// Callbacks may schedule further callbacks; ties fire in schedule order.
func (l *EventLoop) At(delay time.Duration, fn func()) {
	if fn == nil {
		panic("des: EventLoop.At with nil callback")
	}
	if delay < 0 {
		delay = 0
	}
	l.seq++
	heap.Push(&l.events, timer{at: l.now + delay, seq: l.seq, fn: fn})
}

// Stop makes Run return before firing the next callback. Pending events
// stay queued; a subsequent Run resumes from them.
func (l *EventLoop) Stop() { l.stopped = true }

// Run fires callbacks in timestamp order until none remain (or Stop is
// called from within one), returning the final virtual time.
func (l *EventLoop) Run() time.Duration {
	if l.running {
		panic("des: EventLoop.Run reentered")
	}
	l.running = true
	l.stopped = false
	defer func() { l.running = false }()
	for len(l.events) > 0 && !l.stopped {
		e := heap.Pop(&l.events).(timer)
		if e.at < l.now {
			panic(fmt.Sprintf("des: event loop time went backwards: %v -> %v", l.now, e.at))
		}
		l.now = e.at
		e.fn()
	}
	return l.now
}

// timer is one pending callback.
type timer struct {
	at  time.Duration
	seq int64
	fn  func()
}

type timerHeap []timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(timer)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
