package cluster

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rcuda/internal/calib"
)

func TestTraceRoundTrip(t *testing.T) {
	jobs := GenerateTrace(TraceConfig{Jobs: 20, MeanInterarrival: time.Second, MMFraction: 0.5, Seed: 9})
	var buf bytes.Buffer
	if err := SaveTrace(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("loaded %d jobs, want %d", len(got), len(jobs))
	}
	for i := range jobs {
		if got[i].ID != jobs[i].ID || got[i].CS != jobs[i].CS || got[i].Size != jobs[i].Size {
			t.Fatalf("job %d changed: %+v vs %+v", i, got[i], jobs[i])
		}
		// Arrival precision is milliseconds in the file format.
		diff := got[i].Arrival - jobs[i].Arrival
		if diff < -time.Millisecond || diff > time.Millisecond {
			t.Fatalf("job %d arrival drifted by %v", i, diff)
		}
	}
}

func TestLoadTraceValid(t *testing.T) {
	in := `[
	  {"id": 0, "case": "MM",  "size": 8192, "arrival_ms": 0},
	  {"id": 1, "case": "FFT", "size": 4096, "arrival_ms": 1500}
	]`
	jobs, err := LoadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("%d jobs", len(jobs))
	}
	if jobs[0].CS != calib.MM || jobs[1].CS != calib.FFT {
		t.Fatal("case studies wrong")
	}
	if jobs[1].Arrival != 1500*time.Millisecond {
		t.Fatalf("arrival %v", jobs[1].Arrival)
	}
}

func TestLoadTraceErrors(t *testing.T) {
	cases := map[string]string{
		"not json":      `{`,
		"empty":         `[]`,
		"unknown case":  `[{"id":0,"case":"BLAS","size":8,"arrival_ms":0}]`,
		"zero size":     `[{"id":0,"case":"MM","size":0,"arrival_ms":0}]`,
		"negative time": `[{"id":0,"case":"MM","size":8,"arrival_ms":-5}]`,
		"duplicate id":  `[{"id":0,"case":"MM","size":8,"arrival_ms":0},{"id":0,"case":"MM","size":8,"arrival_ms":1}]`,
		"unknown field": `[{"id":0,"case":"MM","size":8,"arrival_ms":0,"color":"red"}]`,
	}
	for name, in := range cases {
		if _, err := LoadTrace(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: want error", name)
		}
	}
}

func TestLoadedTraceSimulates(t *testing.T) {
	in := `[
	  {"id": 0, "case": "MM", "size": 4096, "arrival_ms": 0},
	  {"id": 1, "case": "MM", "size": 4096, "arrival_ms": 100}
	]`
	jobs, err := LoadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(baseConfig(1), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || len(res.Jobs) != 2 {
		t.Fatalf("simulation of loaded trace: %+v", res)
	}
}
