// Package cluster simulates the deployment scenario that motivates the
// paper: an HPC cluster where only a few nodes have GPUs, every node can
// reach them through the rCUDA middleware, and a global scheduler maps GPU
// jobs to accelerators. The paper's conclusion section leaves "the exact
// amount of GPUs necessary in each particular case" and "scheduling of
// multiple GPUs being simultaneously accessed by several applications" to
// future work; this package implements that study.
//
// The model is list scheduling over calibrated job profiles. Each job is
// one case-study execution (MM or batched FFT at some size); its timing
// components come from the same analytic models as package workload:
//
//	prep    — data generation and middleware marshaling, on the job's own
//	          node; unlimited parallelism across nodes.
//	service — network messages plus PCIe plus kernel plus management;
//	          holds one GPU exclusively (the rCUDA daemon serializes
//	          device work across contexts).
//
// A scheduler assigns each ready job to a GPU; per-GPU FIFO queues model
// the contention. Optional fair-share network contention inflates a job's
// transfer time by the number of sessions concurrently assigned to the
// same server. Sweeping the GPU count answers the sizing question: the
// smallest number of accelerators whose makespan is within a tolerance of
// the one-GPU-per-node configuration.
package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/netsim"
	"rcuda/internal/workload"
)

// Policy selects how the global scheduler maps ready jobs to GPUs.
type Policy int

// Scheduling policies.
const (
	// LeastLoaded assigns each job to the GPU that frees up earliest —
	// the natural baseline for a global scheduler with full information.
	LeastLoaded Policy = iota
	// RoundRobin cycles through GPUs regardless of load.
	RoundRobin
	// RandomPick assigns uniformly at random (seeded, deterministic).
	RandomPick
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LeastLoaded:
		return "least-loaded"
	case RoundRobin:
		return "round-robin"
	case RandomPick:
		return "random"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Job is one GPU-accelerated application execution.
type Job struct {
	ID      int
	CS      calib.CaseStudy
	Size    int
	Arrival time.Duration
	// Network optionally overrides the cluster's interconnect for this
	// job — heterogeneous clusters where some racks reach the GPU nodes
	// over a faster fabric than others. Nil uses Config.Network.
	Network *netsim.Link

	// Filled by Simulate.
	Ready      time.Duration // arrival + prep
	Start      time.Duration // service start on the assigned GPU
	End        time.Duration
	GPU        int           // assigned accelerator
	QueueDelay time.Duration // Start - Ready
}

// Turnaround is the job's total latency from arrival to completion.
func (j Job) Turnaround() time.Duration { return j.End - j.Arrival }

// Config describes the cluster under study.
type Config struct {
	// Nodes is the total node count; it bounds GPUs and is the
	// denominator of the cost story.
	Nodes int
	// GPUs is the number of nodes equipped with an accelerator.
	GPUs int
	// Network interconnects the nodes; nil means every job runs on a
	// node-local GPU (the fully equipped configuration), paying the CUDA
	// context initialization instead of network transfers.
	Network *netsim.Link
	// Policy selects the global scheduler.
	Policy Policy
	// FairShareNetwork, when true, inflates a job's network time by the
	// number of sessions concurrently queued or running on its server,
	// a pessimistic TDM model of link contention at the GPU node.
	FairShareNetwork bool
	// Seed drives the RandomPick policy.
	Seed int64
}

func (c Config) validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("cluster: need at least one node, got %d", c.Nodes)
	}
	if c.Network != nil && (c.GPUs <= 0 || c.GPUs > c.Nodes) {
		return fmt.Errorf("cluster: GPUs = %d must be in [1, %d]", c.GPUs, c.Nodes)
	}
	return nil
}

// profile is the timing decomposition of one job on this cluster.
type profile struct {
	prep    time.Duration
	network time.Duration
	device  time.Duration // PCIe + kernel + mgmt (+ init when local)
}

// jobProfile derives a job's components from the workload models.
func jobProfile(cfg Config, j Job) (profile, error) {
	if cfg.Network == nil {
		r, err := workload.Run(j.CS, j.Size, workload.LocalGPU, workload.Options{})
		if err != nil {
			return profile{}, err
		}
		return profile{
			prep:   r.Parts.DataGen,
			device: r.Parts.Init + r.Parts.PCIe + r.Parts.Kernel + r.Parts.Mgmt,
		}, nil
	}
	link := cfg.Network
	if j.Network != nil {
		link = j.Network
	}
	r, err := workload.Run(j.CS, j.Size, workload.Remote, workload.Options{Link: link})
	if err != nil {
		return profile{}, err
	}
	return profile{
		prep:    r.Parts.DataGen + r.Parts.Marshal,
		network: r.Parts.Network,
		device:  r.Parts.PCIe + r.Parts.Kernel + r.Parts.Mgmt,
	}, nil
}

// Result summarizes one simulated schedule.
type Result struct {
	Jobs           []Job
	Makespan       time.Duration
	MeanTurnaround time.Duration
	P95Turnaround  time.Duration
	MeanQueueDelay time.Duration
	// Utilization is each GPU's busy fraction of the makespan.
	Utilization []float64
	// GPUs echoes the simulated accelerator count.
	GPUs int
}

// Simulate schedules the jobs on the cluster and returns per-job timings
// and aggregate metrics. The input jobs are not modified.
func Simulate(cfg Config, jobs []Job) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	nGPUs := cfg.GPUs
	if cfg.Network == nil {
		nGPUs = cfg.Nodes // fully equipped: a GPU wherever the job runs
	}

	scheduled := append([]Job(nil), jobs...)
	for i := range scheduled {
		p, err := jobProfile(cfg, scheduled[i])
		if err != nil {
			return Result{}, err
		}
		scheduled[i].Ready = scheduled[i].Arrival + p.prep
	}
	// List scheduling in ready order; ties broken by arrival then ID for
	// determinism.
	sort.Slice(scheduled, func(a, b int) bool {
		ja, jb := scheduled[a], scheduled[b]
		if ja.Ready != jb.Ready {
			return ja.Ready < jb.Ready
		}
		if ja.Arrival != jb.Arrival {
			return ja.Arrival < jb.Arrival
		}
		return ja.ID < jb.ID
	})

	free := make([]time.Duration, nGPUs)
	busy := make([]time.Duration, nGPUs)
	inFlight := make([]int, nGPUs)
	rng := rand.New(rand.NewSource(cfg.Seed))
	rr := 0

	for i := range scheduled {
		j := &scheduled[i]
		p, err := jobProfile(cfg, *j)
		if err != nil {
			return Result{}, err
		}
		g := pick(cfg.Policy, free, rng, &rr)
		service := p.device + p.network
		if cfg.FairShareNetwork && cfg.Network != nil {
			// Sessions already waiting on this server share its link.
			service = p.device + time.Duration(inFlight[g]+1)*p.network
		}
		start := j.Ready
		if free[g] > start {
			start = free[g]
		}
		j.GPU = g
		j.Start = start
		j.End = start + service
		j.QueueDelay = start - j.Ready
		free[g] = j.End
		busy[g] += service
		inFlight[g]++
	}

	return summarize(scheduled, busy, nGPUs), nil
}

func pick(p Policy, free []time.Duration, rng *rand.Rand, rr *int) int {
	switch p {
	case RoundRobin:
		g := *rr % len(free)
		*rr++
		return g
	case RandomPick:
		return rng.Intn(len(free))
	default: // LeastLoaded
		best := 0
		for i, f := range free {
			if f < free[best] {
				best = i
			}
		}
		return best
	}
}

func summarize(jobs []Job, busy []time.Duration, nGPUs int) Result {
	res := Result{Jobs: jobs, GPUs: nGPUs, Utilization: make([]float64, nGPUs)}
	if len(jobs) == 0 {
		return res
	}
	var sumTurn, sumQueue time.Duration
	turns := make([]time.Duration, 0, len(jobs))
	for _, j := range jobs {
		if j.End > res.Makespan {
			res.Makespan = j.End
		}
		sumTurn += j.Turnaround()
		sumQueue += j.QueueDelay
		turns = append(turns, j.Turnaround())
	}
	res.MeanTurnaround = sumTurn / time.Duration(len(jobs))
	res.MeanQueueDelay = sumQueue / time.Duration(len(jobs))
	sort.Slice(turns, func(a, b int) bool { return turns[a] < turns[b] })
	res.P95Turnaround = turns[(len(turns)*95)/100]
	if res.Makespan > 0 {
		for g := range res.Utilization {
			res.Utilization[g] = float64(busy[g]) / float64(res.Makespan)
		}
	}
	return res
}

// TraceConfig parameterizes the synthetic job generator.
type TraceConfig struct {
	Jobs int
	// MeanInterarrival is the average gap between job arrivals
	// (exponentially distributed, seeded).
	MeanInterarrival time.Duration
	// MMFraction is the share of matrix-product jobs; the rest are FFT
	// batches. MM jobs draw from the paper's matrix sizes, FFT jobs from
	// its batch counts.
	MMFraction float64
	Seed       int64
}

// GenerateTrace produces a deterministic synthetic job trace.
func GenerateTrace(tc TraceConfig) []Job {
	rng := rand.New(rand.NewSource(tc.Seed))
	mmSizes := calib.Sizes(calib.MM)
	fftSizes := calib.Sizes(calib.FFT)
	jobs := make([]Job, tc.Jobs)
	var at time.Duration
	for i := range jobs {
		at += time.Duration(rng.ExpFloat64() * float64(tc.MeanInterarrival))
		j := Job{ID: i, Arrival: at}
		if rng.Float64() < tc.MMFraction {
			j.CS = calib.MM
			j.Size = mmSizes[rng.Intn(len(mmSizes))]
		} else {
			j.CS = calib.FFT
			j.Size = fftSizes[rng.Intn(len(fftSizes))]
		}
		jobs[i] = j
	}
	return jobs
}

// SweepGPUs simulates the same trace with every GPU count from 1 to
// cfg.Nodes and returns the results in order (index 0 is one GPU).
func SweepGPUs(cfg Config, jobs []Job) ([]Result, error) {
	if cfg.Network == nil {
		return nil, fmt.Errorf("cluster: sweeping GPU counts needs a network configuration")
	}
	out := make([]Result, 0, cfg.Nodes)
	for g := 1; g <= cfg.Nodes; g++ {
		c := cfg
		c.GPUs = g
		r, err := Simulate(c, jobs)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// RequiredGPUs returns the smallest accelerator count whose makespan is
// within (1+tolerance) of the fully equipped local-GPU cluster's makespan —
// the paper's sizing question. It also returns both makespans.
func RequiredGPUs(cfg Config, jobs []Job, tolerance float64) (gpus int, remote, local time.Duration, err error) {
	localCfg := cfg
	localCfg.Network = nil
	localRes, err := Simulate(localCfg, jobs)
	if err != nil {
		return 0, 0, 0, err
	}
	sweep, err := SweepGPUs(cfg, jobs)
	if err != nil {
		return 0, 0, 0, err
	}
	limit := time.Duration(float64(localRes.Makespan) * (1 + tolerance))
	for _, r := range sweep {
		if r.Makespan <= limit {
			return r.GPUs, r.Makespan, localRes.Makespan, nil
		}
	}
	last := sweep[len(sweep)-1]
	return last.GPUs, last.Makespan, localRes.Makespan, nil
}
