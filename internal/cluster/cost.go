package cluster

import (
	"fmt"
	"time"
)

// The paper's economic motivation, made quantitative: "adding an
// accelerator to every node in an HPC cluster is not efficient neither
// from the performance point of view nor from the power consumption
// perspective — e.g., the power consumption of a GPU may well rate 25% of
// that of an HPC node." This file turns a simulated schedule into energy
// and acquisition-cost figures so configurations can be compared on the
// paper's own terms.

// CostModel holds the per-node economics.
type CostModel struct {
	// NodeWatts is a node's power draw without an accelerator.
	NodeWatts float64
	// GPUWatts is the additional draw of an installed accelerator. The
	// paper's figure: about 25% of a node.
	GPUWatts float64
	// GPUIdleFraction is the share of GPUWatts an idle accelerator still
	// draws (GPUs of the Tesla era idled hot).
	GPUIdleFraction float64
	// NodeCost and GPUCost are acquisition prices in arbitrary currency
	// units; only their ratio matters for comparisons.
	NodeCost float64
	GPUCost  float64
}

// DefaultCostModel follows the paper's 25% power figure with a 2008-era
// Tesla C1060 price point relative to a dual-socket node.
func DefaultCostModel() CostModel {
	return CostModel{
		NodeWatts:       250,
		GPUWatts:        62.5, // 25% of a node, per the paper
		GPUIdleFraction: 0.5,
		NodeCost:        3000,
		GPUCost:         1300,
	}
}

func (m CostModel) validate() error {
	if m.NodeWatts <= 0 || m.GPUWatts < 0 || m.NodeCost <= 0 || m.GPUCost < 0 {
		return fmt.Errorf("cluster: non-positive cost model %+v", m)
	}
	if m.GPUIdleFraction < 0 || m.GPUIdleFraction > 1 {
		return fmt.Errorf("cluster: GPU idle fraction %g outside [0,1]", m.GPUIdleFraction)
	}
	return nil
}

// CostReport prices one simulated schedule under a cost model.
type CostReport struct {
	// AcquisitionCost is nodes plus installed GPUs.
	AcquisitionCost float64
	// EnergyWh is the cluster's energy over the schedule's makespan:
	// every node at NodeWatts, every GPU at its idle draw plus its busy
	// draw while servicing jobs.
	EnergyWh float64
	// GPUEnergyWh isolates the accelerators' share.
	GPUEnergyWh float64
	// Makespan echoes the schedule length the energy integrates over.
	Makespan time.Duration
}

// Price evaluates a simulation result for a cluster configuration under
// the cost model. The GPU count is taken from the result (for a local
// configuration it equals the node count).
func Price(cfg Config, res Result, m CostModel) (CostReport, error) {
	if err := cfg.validate(); err != nil {
		return CostReport{}, err
	}
	if err := m.validate(); err != nil {
		return CostReport{}, err
	}
	gpus := res.GPUs
	hours := res.Makespan.Hours()

	var gpuEnergy float64
	for _, util := range res.Utilization {
		busy := util * hours
		idle := (1 - util) * hours
		gpuEnergy += m.GPUWatts*busy + m.GPUWatts*m.GPUIdleFraction*idle
	}
	// Configurations with more GPUs than utilization entries cannot
	// occur: Simulate always sizes Utilization to the GPU count.
	nodeEnergy := m.NodeWatts * float64(cfg.Nodes) * hours
	return CostReport{
		AcquisitionCost: m.NodeCost*float64(cfg.Nodes) + m.GPUCost*float64(gpus),
		EnergyWh:        nodeEnergy + gpuEnergy,
		GPUEnergyWh:     gpuEnergy,
		Makespan:        res.Makespan,
	}, nil
}

// Savings compares a shared-GPU configuration against the fully equipped
// one-GPU-per-node cluster on the same trace.
type Savings struct {
	Shared, Local CostReport
	// AcquisitionPc is the acquisition saving in percent.
	AcquisitionPc float64
	// EnergyPc is the energy saving in percent (can be negative if the
	// shared cluster runs much longer).
	EnergyPc float64
	// SlowdownPc is the makespan penalty in percent.
	SlowdownPc float64
}

// CompareCost simulates both configurations on the same trace and prices
// them.
func CompareCost(cfg Config, jobs []Job, m CostModel) (Savings, error) {
	if cfg.Network == nil {
		return Savings{}, fmt.Errorf("cluster: CompareCost needs a network configuration")
	}
	shared, err := Simulate(cfg, jobs)
	if err != nil {
		return Savings{}, err
	}
	localCfg := cfg
	localCfg.Network = nil
	local, err := Simulate(localCfg, jobs)
	if err != nil {
		return Savings{}, err
	}
	sharedCost, err := Price(cfg, shared, m)
	if err != nil {
		return Savings{}, err
	}
	localCost, err := Price(localCfg, local, m)
	if err != nil {
		return Savings{}, err
	}
	s := Savings{Shared: sharedCost, Local: localCost}
	s.AcquisitionPc = (1 - sharedCost.AcquisitionCost/localCost.AcquisitionCost) * 100
	s.EnergyPc = (1 - sharedCost.EnergyWh/localCost.EnergyWh) * 100
	s.SlowdownPc = (float64(shared.Makespan)/float64(local.Makespan) - 1) * 100
	return s, nil
}
