package cluster

import (
	"math"
	"testing"
	"time"

	"rcuda/internal/netsim"
)

func TestCostModelValidation(t *testing.T) {
	if err := (CostModel{}).validate(); err == nil {
		t.Fatal("zero model must fail")
	}
	m := DefaultCostModel()
	m.GPUIdleFraction = 2
	if err := m.validate(); err == nil {
		t.Fatal("idle fraction > 1 must fail")
	}
	if err := DefaultCostModel().validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultModelMatchesPaperPowerClaim(t *testing.T) {
	m := DefaultCostModel()
	if ratio := m.GPUWatts / m.NodeWatts; math.Abs(ratio-0.25) > 1e-9 {
		t.Fatalf("GPU/node power ratio %.3f, paper says ~25%%", ratio)
	}
}

func TestPriceArithmetic(t *testing.T) {
	cfg := Config{Nodes: 4, GPUs: 1, Network: netsim.IB40G(), Policy: LeastLoaded}
	res := Result{
		GPUs:        1,
		Makespan:    time.Hour,
		Utilization: []float64{0.5},
	}
	m := DefaultCostModel()
	got, err := Price(cfg, res, m)
	if err != nil {
		t.Fatal(err)
	}
	// Acquisition: 4 nodes + 1 GPU.
	if want := 4*m.NodeCost + m.GPUCost; got.AcquisitionCost != want {
		t.Fatalf("acquisition %v, want %v", got.AcquisitionCost, want)
	}
	// Energy over one hour: 4 nodes at 250 W plus one GPU half busy
	// (62.5 * 0.5) and half idle (62.5 * 0.5 * 0.5).
	wantGPU := m.GPUWatts*0.5 + m.GPUWatts*m.GPUIdleFraction*0.5
	if math.Abs(got.GPUEnergyWh-wantGPU) > 1e-9 {
		t.Fatalf("GPU energy %v, want %v", got.GPUEnergyWh, wantGPU)
	}
	if math.Abs(got.EnergyWh-(1000+wantGPU)) > 1e-9 {
		t.Fatalf("total energy %v, want %v", got.EnergyWh, 1000+wantGPU)
	}
}

func TestPriceValidation(t *testing.T) {
	cfg := Config{Nodes: 4, GPUs: 1, Network: netsim.IB40G()}
	if _, err := Price(cfg, Result{}, CostModel{}); err == nil {
		t.Fatal("bad model must fail")
	}
	if _, err := Price(Config{}, Result{}, DefaultCostModel()); err == nil {
		t.Fatal("bad config must fail")
	}
}

func TestCompareCostAtLightLoad(t *testing.T) {
	// The paper's thesis quantified: at light utilization a 2-GPU shared
	// cluster saves acquisition and energy for a small slowdown.
	jobs := GenerateTrace(TraceConfig{Jobs: 24, MeanInterarrival: time.Minute, MMFraction: 1.0, Seed: 7})
	cfg := Config{Nodes: 8, GPUs: 2, Network: netsim.IB40G(), Policy: LeastLoaded}
	s, err := CompareCost(cfg, jobs, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if s.AcquisitionPc <= 0 {
		t.Fatalf("shared cluster must be cheaper to buy: %+v", s)
	}
	// 6 fewer GPUs out of 8 nodes: acquisition saving is substantial.
	if s.AcquisitionPc < 15 {
		t.Fatalf("acquisition saving %.1f%% too small for 6 fewer GPUs", s.AcquisitionPc)
	}
	if s.EnergyPc <= 0 {
		t.Fatalf("fewer idle GPUs must save energy at light load: %+v", s)
	}
	if s.SlowdownPc > 15 {
		t.Fatalf("slowdown %.1f%% too large at light load", s.SlowdownPc)
	}
}

func TestCompareCostNeedsNetwork(t *testing.T) {
	if _, err := CompareCost(Config{Nodes: 2}, nil, DefaultCostModel()); err == nil {
		t.Fatal("CompareCost without a network must fail")
	}
}
