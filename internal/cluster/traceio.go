package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/netsim"
)

// Trace files let site operators feed their own job mixes to the sizing
// study instead of the synthetic generator. The format is a JSON array of
// jobs:
//
//	[
//	  {"id": 0, "case": "MM",  "size": 8192, "arrival_ms": 0},
//	  {"id": 1, "case": "FFT", "size": 4096, "arrival_ms": 1500}
//	]

// jobJSON is the on-disk representation of one job. The optional network
// field names the job's interconnect for heterogeneous clusters.
type jobJSON struct {
	ID        int    `json:"id"`
	Case      string `json:"case"`
	Size      int    `json:"size"`
	ArrivalMS int64  `json:"arrival_ms"`
	Network   string `json:"network,omitempty"`
}

// SaveTrace writes jobs as JSON.
func SaveTrace(w io.Writer, jobs []Job) error {
	out := make([]jobJSON, len(jobs))
	for i, j := range jobs {
		out[i] = jobJSON{
			ID:        j.ID,
			Case:      j.CS.String(),
			Size:      j.Size,
			ArrivalMS: j.Arrival.Milliseconds(),
		}
		if j.Network != nil {
			out[i].Network = j.Network.Name()
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadTrace parses and validates a JSON job trace.
func LoadTrace(r io.Reader) ([]Job, error) {
	var raw []jobJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("cluster: parse trace: %w", err)
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("cluster: empty trace")
	}
	jobs := make([]Job, len(raw))
	seen := make(map[int]bool, len(raw))
	for i, rj := range raw {
		if seen[rj.ID] {
			return nil, fmt.Errorf("cluster: duplicate job id %d", rj.ID)
		}
		seen[rj.ID] = true
		var cs calib.CaseStudy
		switch rj.Case {
		case "MM":
			cs = calib.MM
		case "FFT":
			cs = calib.FFT
		default:
			return nil, fmt.Errorf("cluster: job %d has unknown case %q (MM or FFT)", rj.ID, rj.Case)
		}
		if rj.Size <= 0 {
			return nil, fmt.Errorf("cluster: job %d has non-positive size %d", rj.ID, rj.Size)
		}
		if rj.ArrivalMS < 0 {
			return nil, fmt.Errorf("cluster: job %d arrives at negative time %d ms", rj.ID, rj.ArrivalMS)
		}
		jobs[i] = Job{
			ID:      rj.ID,
			CS:      cs,
			Size:    rj.Size,
			Arrival: time.Duration(rj.ArrivalMS) * time.Millisecond,
		}
		if rj.Network != "" {
			link, err := netsim.ByName(rj.Network)
			if err != nil {
				return nil, fmt.Errorf("cluster: job %d: %w", rj.ID, err)
			}
			jobs[i].Network = link
		}
	}
	return jobs, nil
}
