package cluster

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/netsim"
)

func mmJob(id int, size int, arrival time.Duration) Job {
	return Job{ID: id, CS: calib.MM, Size: size, Arrival: arrival}
}

func baseConfig(gpus int) Config {
	return Config{Nodes: 16, GPUs: gpus, Network: netsim.IB40G(), Policy: LeastLoaded}
}

func TestValidation(t *testing.T) {
	if _, err := Simulate(Config{}, nil); err == nil {
		t.Fatal("zero nodes must fail")
	}
	if _, err := Simulate(Config{Nodes: 4, GPUs: 0, Network: netsim.IB40G()}, nil); err == nil {
		t.Fatal("zero GPUs with a network must fail")
	}
	if _, err := Simulate(Config{Nodes: 4, GPUs: 5, Network: netsim.IB40G()}, nil); err == nil {
		t.Fatal("more GPUs than nodes must fail")
	}
	if _, err := SweepGPUs(Config{Nodes: 4}, nil); err == nil {
		t.Fatal("sweep without a network must fail")
	}
}

func TestSingleJobMatchesWorkloadModel(t *testing.T) {
	res, err := Simulate(baseConfig(1), []Job{mmJob(0, 4096, 0)})
	if err != nil {
		t.Fatal(err)
	}
	j := res.Jobs[0]
	// One job, no contention: turnaround equals the remote execution
	// time of the workload model (measured 40GI @4096 ≈ 2.03 s).
	want, _ := calib.PaperMeasured(calib.MM, "40GI", 4096)
	if diff := j.Turnaround() - want; diff < -100*time.Millisecond || diff > 100*time.Millisecond {
		t.Fatalf("single-job turnaround %v, want ≈ %v", j.Turnaround(), want)
	}
	if j.QueueDelay != 0 {
		t.Fatalf("lone job queued for %v", j.QueueDelay)
	}
	if res.Makespan != j.End {
		t.Fatal("makespan must equal the only job's end")
	}
}

func TestQueueingOnOneGPU(t *testing.T) {
	jobs := []Job{mmJob(0, 8192, 0), mmJob(1, 8192, 0), mmJob(2, 8192, 0)}
	res, err := Simulate(baseConfig(1), jobs)
	if err != nil {
		t.Fatal(err)
	}
	// All three share one GPU: the schedule serializes service.
	var queued int
	for _, j := range res.Jobs {
		if j.QueueDelay > 0 {
			queued++
		}
		if j.GPU != 0 {
			t.Fatalf("job %d on GPU %d, only GPU 0 exists", j.ID, j.GPU)
		}
	}
	if queued != 2 {
		t.Fatalf("%d jobs queued, want 2", queued)
	}
}

func TestMoreGPUsNeverHurt(t *testing.T) {
	jobs := GenerateTrace(TraceConfig{Jobs: 40, MeanInterarrival: 200 * time.Millisecond, MMFraction: 0.7, Seed: 1})
	prev := time.Duration(1<<62 - 1)
	for _, g := range []int{1, 2, 4, 8, 16} {
		res, err := Simulate(baseConfig(g), jobs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan > prev {
			t.Fatalf("makespan grew from %v to %v when adding GPUs (g=%d)", prev, res.Makespan, g)
		}
		prev = res.Makespan
	}
}

func TestLeastLoadedBeatsOrTiesRoundRobin(t *testing.T) {
	jobs := GenerateTrace(TraceConfig{Jobs: 60, MeanInterarrival: 100 * time.Millisecond, MMFraction: 0.8, Seed: 2})
	cfg := baseConfig(4)
	ll, err := Simulate(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = RoundRobin
	rr, err := Simulate(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if ll.Makespan > rr.Makespan {
		t.Fatalf("least-loaded (%v) lost to round-robin (%v)", ll.Makespan, rr.Makespan)
	}
}

func TestPoliciesDeterministic(t *testing.T) {
	jobs := GenerateTrace(TraceConfig{Jobs: 30, MeanInterarrival: 50 * time.Millisecond, MMFraction: 0.5, Seed: 3})
	for _, p := range []Policy{LeastLoaded, RoundRobin, RandomPick} {
		cfg := baseConfig(3)
		cfg.Policy = p
		cfg.Seed = 9
		a, err := Simulate(cfg, jobs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Simulate(cfg, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if a.Makespan != b.Makespan || a.MeanTurnaround != b.MeanTurnaround {
			t.Fatalf("policy %v is not deterministic", p)
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	if LeastLoaded.String() != "least-loaded" || RoundRobin.String() != "round-robin" ||
		RandomPick.String() != "random" {
		t.Fatal("policy names")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy must format")
	}
}

func TestFairShareContentionSlowsService(t *testing.T) {
	jobs := []Job{mmJob(0, 8192, 0), mmJob(1, 8192, 0), mmJob(2, 8192, 0)}
	cfg := Config{Nodes: 8, GPUs: 1, Network: netsim.GigaE(), Policy: LeastLoaded}
	plain, err := Simulate(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FairShareNetwork = true
	contended, err := Simulate(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if contended.Makespan <= plain.Makespan {
		t.Fatalf("fair-share contention (%v) should exceed the uncontended makespan (%v)",
			contended.Makespan, plain.Makespan)
	}
}

func TestLocalClusterHasNoNetworkTime(t *testing.T) {
	jobs := []Job{mmJob(0, 8192, 0)}
	res, err := Simulate(Config{Nodes: 4, Policy: LeastLoaded}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// A local run matches the local-GPU baseline (8.12 s at m=8192).
	want, _ := calib.PaperGPU(calib.MM, 8192)
	if diff := res.Jobs[0].Turnaround() - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("local turnaround %v, want %v", res.Jobs[0].Turnaround(), want)
	}
}

func TestGenerateTraceShape(t *testing.T) {
	tc := TraceConfig{Jobs: 200, MeanInterarrival: time.Second, MMFraction: 0.6, Seed: 4}
	jobs := GenerateTrace(tc)
	if len(jobs) != 200 {
		t.Fatalf("generated %d jobs", len(jobs))
	}
	var mm int
	prev := time.Duration(-1)
	for _, j := range jobs {
		if j.Arrival <= prev {
			t.Fatal("arrivals must be strictly increasing")
		}
		prev = j.Arrival
		if j.CS == calib.MM {
			mm++
			found := false
			for _, s := range calib.Sizes(calib.MM) {
				if s == j.Size {
					found = true
				}
			}
			if !found {
				t.Fatalf("MM job with non-paper size %d", j.Size)
			}
		}
	}
	if mm < 80 || mm > 160 {
		t.Fatalf("MM fraction off: %d of 200", mm)
	}
	// Determinism.
	again := GenerateTrace(tc)
	for i := range jobs {
		if jobs[i] != again[i] {
			t.Fatal("trace generation must be deterministic")
		}
	}
}

func TestSweepAndRequiredGPUs(t *testing.T) {
	// The paper's premise: cluster GPUs are not usually fully utilized.
	// With one ~tens-of-seconds MM job arriving per minute across 8
	// nodes, a couple of shared GPUs keep up with the fully equipped
	// cluster.
	jobs := GenerateTrace(TraceConfig{Jobs: 32, MeanInterarrival: time.Minute, MMFraction: 1.0, Seed: 5})
	cfg := Config{Nodes: 8, Network: netsim.IB40G(), Policy: LeastLoaded}
	sweep, err := SweepGPUs(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 8 {
		t.Fatalf("sweep produced %d results", len(sweep))
	}
	gpus, remote, local, err := RequiredGPUs(cfg, jobs, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if remote <= 0 || local <= 0 {
		t.Fatalf("degenerate makespans: remote %v, local %v", remote, local)
	}
	// The headline of the paper: far fewer GPUs than nodes suffice.
	if gpus > 3 {
		t.Fatalf("required %d GPUs of 8 at light utilization; the sharing argument should need <= 3", gpus)
	}
}

func TestRequiredGPUsSaturatedTraceNeedsMore(t *testing.T) {
	// Under a saturated trace, sharing cannot hide the queueing: the
	// required count climbs toward the node count.
	light := GenerateTrace(TraceConfig{Jobs: 32, MeanInterarrival: time.Minute, MMFraction: 1.0, Seed: 5})
	heavy := GenerateTrace(TraceConfig{Jobs: 32, MeanInterarrival: 500 * time.Millisecond, MMFraction: 1.0, Seed: 5})
	cfg := Config{Nodes: 8, Network: netsim.IB40G(), Policy: LeastLoaded}
	gLight, _, _, err := RequiredGPUs(cfg, light, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	gHeavy, _, _, err := RequiredGPUs(cfg, heavy, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if gHeavy <= gLight {
		t.Fatalf("saturated trace needs %d GPUs, light trace %d; want strictly more under load", gHeavy, gLight)
	}
}

func TestUtilizationRisesAsGPUsShrink(t *testing.T) {
	jobs := GenerateTrace(TraceConfig{Jobs: 40, MeanInterarrival: 300 * time.Millisecond, MMFraction: 1.0, Seed: 6})
	cfg := baseConfig(1)
	one, err := Simulate(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	cfg = baseConfig(8)
	eight, err := Simulate(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(one.Utilization) <= mean(eight.Utilization) {
		t.Fatalf("one-GPU utilization %.2f should exceed eight-GPU %.2f",
			mean(one.Utilization), mean(eight.Utilization))
	}
}

// Property: schedules are feasible — no job starts before it is ready, no
// GPU runs two jobs at once, and every job lands on a valid GPU.
func TestScheduleFeasibilityProperty(t *testing.T) {
	f := func(seed int64, nJobs uint8, gpus uint8) bool {
		g := int(gpus%8) + 1
		n := int(nJobs%50) + 1
		jobs := GenerateTrace(TraceConfig{
			Jobs: n, MeanInterarrival: 100 * time.Millisecond, MMFraction: 0.5, Seed: seed,
		})
		cfg := Config{Nodes: 8, GPUs: g, Network: netsim.TenGigE(), Policy: LeastLoaded}
		res, err := Simulate(cfg, jobs)
		if err != nil {
			return false
		}
		type span struct {
			s, e time.Duration
		}
		perGPU := make(map[int][]span)
		for _, j := range res.Jobs {
			if j.GPU < 0 || j.GPU >= g {
				return false
			}
			if j.Start < j.Ready || j.End <= j.Start {
				return false
			}
			perGPU[j.GPU] = append(perGPU[j.GPU], span{j.Start, j.End})
		}
		for _, spans := range perGPU {
			for i := range spans {
				for k := i + 1; k < len(spans); k++ {
					if spans[i].s < spans[k].e && spans[k].s < spans[i].e {
						return false // overlap on one GPU
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHeterogeneousNetworks(t *testing.T) {
	// Two identical jobs on one cluster, one reaching the GPU over GigaE
	// and one over A-HT: the fast-fabric job must finish first when each
	// gets its own GPU.
	aht, err := netsim.ByName("A-HT")
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{
		{ID: 0, CS: calib.MM, Size: 8192},               // cluster default (40GI)
		{ID: 1, CS: calib.MM, Size: 8192, Network: aht}, // faster rack
	}
	cfg := Config{Nodes: 4, GPUs: 2, Network: netsim.GigaE(), Policy: LeastLoaded}
	res, err := Simulate(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]Job{}
	for _, j := range res.Jobs {
		byID[j.ID] = j
	}
	if byID[1].Turnaround() >= byID[0].Turnaround() {
		t.Fatalf("A-HT job (%v) should beat the GigaE job (%v)",
			byID[1].Turnaround(), byID[0].Turnaround())
	}
}

func TestHeterogeneousTraceRoundTrip(t *testing.T) {
	aht, _ := netsim.ByName("A-HT")
	jobs := []Job{
		{ID: 0, CS: calib.MM, Size: 4096},
		{ID: 1, CS: calib.FFT, Size: 2048, Network: aht},
	}
	var buf bytes.Buffer
	if err := SaveTrace(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"network": "A-HT"`) {
		t.Fatalf("trace missing network field:\n%s", buf.String())
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Network != nil {
		t.Fatal("default-network job must load with nil network")
	}
	if got[1].Network == nil || got[1].Network.Name() != "A-HT" {
		t.Fatalf("job 1 network %v", got[1].Network)
	}
	// Unknown network names fail loading.
	bad := `[{"id":0,"case":"MM","size":8,"arrival_ms":0,"network":"smoke-signals"}]`
	if _, err := LoadTrace(strings.NewReader(bad)); err == nil {
		t.Fatal("unknown network must fail")
	}
}
