package cluster

import (
	"testing"
	"time"

	"rcuda/internal/netsim"
)

func BenchmarkSimulate64Jobs(b *testing.B) {
	jobs := GenerateTrace(TraceConfig{Jobs: 64, MeanInterarrival: 10 * time.Second, MMFraction: 0.8, Seed: 1})
	cfg := Config{Nodes: 16, GPUs: 4, Network: netsim.IB40G(), Policy: LeastLoaded}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateTrace(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		jobs := GenerateTrace(TraceConfig{Jobs: 256, MeanInterarrival: time.Second, MMFraction: 0.5, Seed: int64(i)})
		if len(jobs) != 256 {
			b.Fatal("short trace")
		}
	}
}
