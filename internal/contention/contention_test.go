package contention

import (
	"math"
	"testing"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/cluster"
	"rcuda/internal/netsim"
	"rcuda/internal/workload"
)

func TestValidation(t *testing.T) {
	link := netsim.IB40G()
	if _, err := Run(Params{CS: calib.MM, Size: 4096, Clients: 0, Link: link}); err == nil {
		t.Fatal("zero clients must fail")
	}
	if _, err := Run(Params{CS: calib.MM, Size: 4096, Clients: 1}); err == nil {
		t.Fatal("nil link must fail")
	}
	if _, err := Run(Params{CS: calib.MM, Size: 0, Clients: 1, Link: link}); err == nil {
		t.Fatal("zero size must fail")
	}
	if _, err := Sweep(Params{CS: calib.MM, Size: 4096, Link: link}, 0); err == nil {
		t.Fatal("zero sweep must fail")
	}
}

// The event-level model with one client must reproduce the synchronous
// analytic execution exactly: same components, same serialization.
func TestSingleClientMatchesWorkloadModel(t *testing.T) {
	for _, cs := range []calib.CaseStudy{calib.MM, calib.FFT} {
		for _, netName := range []string{"GigaE", "40GI"} {
			link, err := netsim.ByName(netName)
			if err != nil {
				t.Fatal(err)
			}
			size := calib.Sizes(cs)[0]
			res, err := Run(Params{CS: cs, Size: size, Clients: 1, Link: link})
			if err != nil {
				t.Fatal(err)
			}
			want, err := workload.Run(cs, size, workload.Remote, workload.Options{Link: link})
			if err != nil {
				t.Fatal(err)
			}
			if res.PerClient[0] != want.Total {
				t.Fatalf("%v over %s: DES %v, analytic %v", cs, netName, res.PerClient[0], want.Total)
			}
		}
	}
}

func TestContentionSlowsClientsDown(t *testing.T) {
	link := netsim.IB40G()
	single, err := Run(Params{CS: calib.MM, Size: 4096, Clients: 1, Link: link})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(Params{CS: calib.MM, Size: 4096, Clients: 4, Link: link})
	if err != nil {
		t.Fatal(err)
	}
	if len(four.PerClient) != 4 {
		t.Fatalf("per-client results: %d", len(four.PerClient))
	}
	// Every contended client is at least as slow as the lone one; the
	// worst is strictly slower.
	var worst time.Duration
	for _, d := range four.PerClient {
		if d < single.PerClient[0] {
			t.Fatalf("contended client (%v) beat the lone client (%v)", d, single.PerClient[0])
		}
		if d > worst {
			worst = d
		}
	}
	if worst <= single.PerClient[0] {
		t.Fatal("contention must slow someone down")
	}
	// But sharing still beats running the four serially: the prep phases
	// overlap.
	if four.Makespan >= 4*single.PerClient[0] {
		t.Fatalf("makespan %v not better than serial %v", four.Makespan, 4*single.PerClient[0])
	}
}

func TestGPUBoundSharingScalesByDeviceTime(t *testing.T) {
	// For MM over a fast link the GPU is the bottleneck: K clients'
	// makespan approaches K × (device time per job), not K × (full job).
	link := netsim.IB40G()
	const k = 4
	res, err := Run(Params{CS: calib.MM, Size: 8192, Clients: k, Link: link})
	if err != nil {
		t.Fatal(err)
	}
	device := 3*calib.PCIeTime(calib.MM, 8192) + calib.KernelTime(calib.MM, 8192)
	lower := time.Duration(k) * device
	if res.Makespan < lower {
		t.Fatalf("makespan %v below the GPU-serialization bound %v", res.Makespan, lower)
	}
	if res.Makespan > lower+lower/2 {
		t.Fatalf("makespan %v far above the GPU bound %v — device should dominate on 40GI", res.Makespan, lower)
	}
	if res.GPUUtilization < 0.6 {
		t.Fatalf("GPU utilization %.2f too low for a GPU-bound mix", res.GPUUtilization)
	}
}

func TestNetworkBoundSharingLoadsTheLink(t *testing.T) {
	// Over GigaE the wire dominates the FFT (two ~300 ms transfers versus
	// ~150 ms of device work per client): with several clients the link
	// is the busier resource by a wide margin.
	res, err := Run(Params{CS: calib.FFT, Size: 8192, Clients: 4, Link: netsim.GigaE()})
	if err != nil {
		t.Fatal(err)
	}
	if res.LinkUtilization <= 2*res.GPUUtilization {
		t.Fatalf("on GigaE the wire must dominate: link %.2f vs GPU %.2f",
			res.LinkUtilization, res.GPUUtilization)
	}
	if res.LinkUtilization < 0.5 {
		t.Fatalf("link utilization %.2f too low for four wire-bound clients", res.LinkUtilization)
	}
	// The mirror image on 40GI with MM: the GPU is the busier resource.
	res, err = Run(Params{CS: calib.MM, Size: 8192, Clients: 4, Link: netsim.IB40G()})
	if err != nil {
		t.Fatal(err)
	}
	if res.GPUUtilization <= res.LinkUtilization {
		t.Fatalf("on 40GI the GPU must dominate: GPU %.2f vs link %.2f",
			res.GPUUtilization, res.LinkUtilization)
	}
}

func TestStaggerReducesQueueing(t *testing.T) {
	link := netsim.IB40G()
	burst, err := Run(Params{CS: calib.FFT, Size: 4096, Clients: 6, Link: link})
	if err != nil {
		t.Fatal(err)
	}
	// Arrivals spread over ~6 job-lengths should reduce the worst
	// client's turnaround.
	spread, err := Run(Params{CS: calib.FFT, Size: 4096, Clients: 6, Link: link, Stagger: 400 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if P95Turnaround(spread) >= P95Turnaround(burst) {
		t.Fatalf("staggered p95 %v should beat burst p95 %v", P95Turnaround(spread), P95Turnaround(burst))
	}
}

func TestSweepAndSlowdownShape(t *testing.T) {
	link := netsim.IB40G()
	results, err := Sweep(Params{CS: calib.MM, Size: 4096, Link: link}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("sweep returned %d results", len(results))
	}
	slow := Slowdown(results)
	if math.Abs(slow[0]-1) > 1e-9 {
		t.Fatalf("single-client slowdown %v, want 1", slow[0])
	}
	for i := 1; i < len(slow); i++ {
		if slow[i] < slow[i-1]-1e-9 {
			t.Fatalf("slowdown must not improve with more clients: %v", slow)
		}
	}
	if slow[5] <= 1.5 {
		t.Fatalf("six clients on one GPU should slow each other markedly, got %.2fx", slow[5])
	}
}

func TestDeterminism(t *testing.T) {
	p := Params{CS: calib.FFT, Size: 2048, Clients: 5, Link: netsim.GigaE(), Stagger: time.Millisecond}
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("runs diverged: %v vs %v", a.Makespan, b.Makespan)
	}
	for i := range a.PerClient {
		if a.PerClient[i] != b.PerClient[i] {
			t.Fatal("per-client times diverged")
		}
	}
}

func TestP95Degenerate(t *testing.T) {
	if P95Turnaround(Result{}) != 0 {
		t.Fatal("empty result p95")
	}
	one := Result{PerClient: []time.Duration{time.Second}}
	if P95Turnaround(one) != time.Second {
		t.Fatal("single-client p95")
	}
}

// Consistency with the cluster-level list-scheduling model: the coarse
// model holds the GPU for a job's entire network+device service, so its
// makespan upper-bounds the event-level simulation, which overlaps one
// client's wire time with another's device time.
func TestDESConsistentWithClusterModel(t *testing.T) {
	link := netsim.IB40G()
	const k = 4
	fine, err := Run(Params{CS: calib.MM, Size: 8192, Clients: k, Link: link})
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]cluster.Job, k)
	for i := range jobs {
		jobs[i] = cluster.Job{ID: i, CS: calib.MM, Size: 8192}
	}
	coarse, err := cluster.Simulate(cluster.Config{
		Nodes: k, GPUs: 1, Network: link, Policy: cluster.LeastLoaded,
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if fine.Makespan > coarse.Makespan {
		t.Fatalf("event-level makespan %v exceeds the coarse upper bound %v",
			fine.Makespan, coarse.Makespan)
	}
	// And both sit above the trivial lower bound: the serialized device
	// work.
	device := time.Duration(k) * (3*calib.PCIeTime(calib.MM, 8192) + calib.KernelTime(calib.MM, 8192))
	if fine.Makespan < device {
		t.Fatalf("event-level makespan %v below the device bound %v", fine.Makespan, device)
	}
}
