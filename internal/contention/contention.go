// Package contention studies several applications sharing one rCUDA server
// at event granularity — the paper's remaining future-work item ("potential
// network contention caused by multiple applications running in a cluster
// featuring several GPGPU servers will also be covered in future work").
//
// Each client is a discrete-event process replaying its case study's exact
// message schedule. Two resources serialize the shared hardware: the
// server's network link (one frame on the wire at a time, FIFO) and the
// GPU (PCIe transfers and kernels execute exclusively, FIFO across
// sessions, as the daemon's time multiplexing implies). Client-local work
// — data generation and marshaling — proceeds in parallel on each client's
// own node.
//
// With one client the event-level execution collapses to the paper's
// synchronous model, and a test asserts it matches workload.Run exactly.
package contention

import (
	"fmt"
	"sort"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/des"
	"rcuda/internal/netsim"
	"rcuda/internal/workload"
)

// Params configures one contention experiment.
type Params struct {
	CS   calib.CaseStudy
	Size int
	// Clients is the number of concurrent applications sharing the
	// server.
	Clients int
	// Link is the interconnect into the GPU node, shared by all clients.
	Link *netsim.Link
	// Stagger is an optional arrival offset between consecutive clients.
	Stagger time.Duration
}

// Result summarizes one experiment.
type Result struct {
	// PerClient holds each client's completion instant minus its arrival.
	PerClient []time.Duration
	// Makespan is the instant the last client finishes.
	Makespan time.Duration
	// LinkUtilization and GPUUtilization are busy fractions of the run.
	LinkUtilization float64
	GPUUtilization  float64
}

// Run executes the experiment.
func Run(p Params) (Result, error) {
	if p.Clients < 1 {
		return Result{}, fmt.Errorf("contention: need at least one client, got %d", p.Clients)
	}
	if p.Link == nil {
		return Result{}, fmt.Errorf("contention: nil link")
	}
	if p.Size <= 0 {
		return Result{}, fmt.Errorf("contention: non-positive size %d", p.Size)
	}

	sim := des.New()
	link := sim.NewResource("link", 1)
	gpuRes := sim.NewResource("gpu", 1)

	prep := calib.DataGenTime(p.CS, p.Size) + calib.MarshalTime(p.CS, p.Size)
	pcie := calib.PCIeTime(p.CS, p.Size)
	kernel := calib.KernelTime(p.CS, p.Size)
	schedule := workload.Schedule(p.CS, p.Size)

	finished := make([]time.Duration, p.Clients)
	for c := 0; c < p.Clients; c++ {
		c := c
		arrival := time.Duration(c) * p.Stagger
		sim.Spawn(fmt.Sprintf("client-%d", c), arrival, func(proc *des.Process) {
			start := proc.Now()
			proc.Hold(prep) // node-local, fully parallel across clients
			for _, msg := range schedule {
				// Request frame occupies the shared wire.
				link.Acquire(proc)
				proc.Hold(p.Link.WireTime(msg.Send))
				link.Release(proc)
				// Server-side device work, exclusive per GPU.
				switch msg.Kind {
				case workload.MsgMemcpyIn:
					gpuRes.Acquire(proc)
					proc.Hold(pcie)
					gpuRes.Release(proc)
				case workload.MsgLaunch:
					gpuRes.Acquire(proc)
					proc.Hold(kernel)
					gpuRes.Release(proc)
				case workload.MsgMemcpyOut:
					gpuRes.Acquire(proc)
					proc.Hold(pcie)
					gpuRes.Release(proc)
				}
				// Response frame back over the shared wire.
				if msg.Recv > 0 {
					link.Acquire(proc)
					proc.Hold(p.Link.WireTime(msg.Recv))
					link.Release(proc)
				}
			}
			proc.Hold(calib.Mgmt)
			finished[c] = proc.Now() - start
		})
	}
	makespan := sim.Run()
	res := Result{
		PerClient:       finished,
		Makespan:        makespan,
		LinkUtilization: link.Utilization(),
		GPUUtilization:  gpuRes.Utilization(),
	}
	return res, nil
}

// Sweep runs the experiment for every client count in [1, maxClients] and
// returns the results in order.
func Sweep(base Params, maxClients int) ([]Result, error) {
	if maxClients < 1 {
		return nil, fmt.Errorf("contention: maxClients %d", maxClients)
	}
	out := make([]Result, 0, maxClients)
	for c := 1; c <= maxClients; c++ {
		p := base
		p.Clients = c
		r, err := Run(p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Slowdown reports each client count's mean per-client slowdown relative
// to the single-client execution — the contention penalty curve.
func Slowdown(results []Result) []float64 {
	if len(results) == 0 {
		return nil
	}
	base := results[0].PerClient[0].Seconds()
	out := make([]float64, len(results))
	for i, r := range results {
		var sum float64
		for _, d := range r.PerClient {
			sum += d.Seconds()
		}
		mean := sum / float64(len(r.PerClient))
		out[i] = mean / base
	}
	return out
}

// P95Turnaround returns the 95th-percentile per-client turnaround of a
// result (by nearest-rank on the sorted turnarounds).
func P95Turnaround(r Result) time.Duration {
	if len(r.PerClient) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.PerClient...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[(len(sorted)*95)/100]
}
