package calib

import "time"

// This file records the paper's published *estimates* (Table IV's
// cross-validated predictions and Table VI's projections onto the five HPC
// networks), so reports can print paper-vs-reproduction deltas side by
// side. Values are in the paper's printed units (seconds for MM,
// milliseconds for FFT).

// Target network order used by the estimate grids, matching Table VI.
var targetNetworks = []string{"10GE", "10GI", "Myr", "F-HT", "A-HT"}

// TargetNetworks returns the Table VI network column order.
func TargetNetworks() []string { return append([]string(nil), targetNetworks...) }

// Table IV: predicted execution time on the opposite testbed network.
var (
	mmEst40GIFromGigaE  = []float64{2.08, 4.94, 9.33, 15.67, 24.28, 35.75, 49.04, 65.90}
	mmEstGigaEFrom40GI  = []float64{3.60, 8.38, 15.61, 25.54, 38.53, 54.70, 75.02, 98.80}
	fftEst40GIFromGigaE = []float64{223.69, 294.38, 369.06, 441.75, 514.44, 587.46, 736.84}
	fftEstGigaEFrom40GI = []float64{297.65, 487.29, 698.27, 902.25, 1111.23, 1321.54, 1741.83}
)

// Table IV: published signed error rates in percent.
var (
	mmErrGigaEModel  = []float64{2.16, 1.76, -0.10, -0.41, -0.54, 0.73, -1.78, -1.72}
	mmErr40GIModel   = []float64{-1.21, -1.01, 0.06, 0.25, 0.35, -0.47, 1.20, 1.18}
	fftErrGigaEModel = []float64{33.95, 30.26, 20.48, 16.35, 12.32, 9.26, 5.77}
	fftErr40GIModel  = []float64{-16.00, -12.31, -8.24, -6.44, -4.83, -3.63, -2.25}
)

// PaperCrossEstimate returns the paper's Table IV prediction for the
// validation network implied by the model network (GigaE model predicts
// 40GI and vice versa).
func PaperCrossEstimate(cs CaseStudy, model string, size int) (time.Duration, bool) {
	var table []float64
	switch {
	case model == "GigaE":
		table = pick(cs, mmEst40GIFromGigaE, fftEst40GIFromGigaE)
	case model == "40GI":
		table = pick(cs, mmEstGigaEFrom40GI, fftEstGigaEFrom40GI)
	default:
		return 0, false
	}
	return published(cs, table, size)
}

// PaperCrossError returns the paper's Table IV signed error rate (percent).
func PaperCrossError(cs CaseStudy, model string, size int) (float64, bool) {
	i, ok := lookup(cs, size)
	if !ok {
		return 0, false
	}
	switch model {
	case "GigaE":
		return pick(cs, mmErrGigaEModel, fftErrGigaEModel)[i], true
	case "40GI":
		return pick(cs, mmErr40GIModel, fftErr40GIModel)[i], true
	default:
		return 0, false
	}
}

// Table VI estimate grids: rows follow Sizes(cs), columns TargetNetworks().
var (
	mmTableVIGigaE = [][]float64{
		{2.13, 2.15, 2.19, 2.07, 2.00},
		{5.07, 5.11, 5.20, 4.92, 4.77},
		{9.56, 9.64, 9.79, 9.30, 9.04},
		{16.03, 16.16, 16.39, 15.63, 15.21},
		{24.80, 24.98, 25.32, 24.22, 23.62},
		{36.46, 36.70, 37.17, 35.66, 34.85},
		{49.96, 50.29, 50.89, 48.93, 47.86},
		{67.06, 67.47, 68.24, 65.75, 64.40},
	}
	mmTableVI40GI = [][]float64{
		{2.09, 2.11, 2.15, 2.02, 1.96},
		{4.98, 5.03, 5.11, 4.84, 4.69},
		{9.57, 9.65, 9.80, 9.31, 9.05},
		{16.10, 16.22, 16.46, 15.69, 15.27},
		{24.93, 25.12, 25.46, 24.35, 23.75},
		{36.20, 36.44, 36.91, 35.40, 34.59},
		{50.85, 51.18, 51.78, 49.81, 48.75},
		{68.22, 68.63, 69.39, 66.90, 65.56},
	}
	fftTableVIGigaE = [][]float64{
		{228.48, 230.17, 233.32, 223.08, 217.53},
		{303.96, 307.33, 313.64, 293.16, 282.06},
		{383.44, 388.50, 397.95, 367.24, 350.60},
		{460.92, 467.67, 480.27, 439.32, 417.13},
		{538.40, 546.83, 562.59, 511.40, 483.66},
		{616.21, 626.33, 645.24, 583.82, 550.53},
		{775.17, 788.66, 813.88, 731.98, 687.59},
	}
	fftTableVI40GI = [][]float64{
		{171.79, 173.48, 176.63, 166.39, 160.84},
		{235.58, 238.96, 245.26, 224.78, 213.69},
		{320.71, 325.77, 335.22, 304.51, 287.87},
		{398.83, 405.58, 418.19, 377.24, 355.04},
		{481.96, 490.39, 506.15, 454.96, 427.22},
		{566.41, 576.54, 595.45, 534.02, 500.73},
		{735.00, 748.49, 773.70, 691.80, 647.42},
	}
)

// PaperTargetEstimate returns the paper's Table VI projection of the case
// study onto a target HPC network under the given source model.
func PaperTargetEstimate(cs CaseStudy, model, network string, size int) (time.Duration, bool) {
	var grid [][]float64
	switch model {
	case "GigaE":
		grid = pickGrid(cs, mmTableVIGigaE, fftTableVIGigaE)
	case "40GI":
		grid = pickGrid(cs, mmTableVI40GI, fftTableVI40GI)
	default:
		return 0, false
	}
	i, ok := lookup(cs, size)
	if !ok {
		return 0, false
	}
	j := -1
	for c, n := range targetNetworks {
		if n == network {
			j = c
		}
	}
	if j < 0 {
		return 0, false
	}
	return time.Duration(grid[i][j] * float64(unit(cs))), true
}

func pickGrid(cs CaseStudy, mm, fft [][]float64) [][]float64 {
	if cs == MM {
		return mm
	}
	return fft
}
